package reactive_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	reactive "repro"
)

var start = time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC)

// TestPublicAPIQuickstart exercises the documented quick-start flow through
// the public facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	kb := reactive.New(reactive.Config{Clock: reactive.NewManualClock(start)})
	if err := kb.DefineHub("A", "analysis hub", "Sequence", "Lab"); err != nil {
		t.Fatal(err)
	}
	if err := kb.InstallRule(reactive.Rule{
		Name:  "R2",
		Hub:   "A",
		Event: reactive.Event{Kind: reactive.CreateNode, Label: "Sequence"},
		Guard: "NEW.variant IS NULL",
		Alert: `MATCH (u:Sequence) WHERE u.variant IS NULL
		        WITH count(u) AS unassigned WHERE unassigned > 2
		        RETURN unassigned`,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := kb.Execute("CREATE (:Sequence {id: $id, hub: 'A'})",
			reactive.Params(map[string]any{"id": fmt.Sprintf("S%d", i)})); err != nil {
			t.Fatal(err)
		}
	}
	alerts, err := kb.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	if alerts[0].Rule != "R2" || alerts[0].Hub != "A" {
		t.Errorf("alert: %+v", alerts[0])
	}
	if v, ok := alerts[0].Props["unassigned"].AsInt(); !ok || v != 3 {
		t.Errorf("payload: %+v", alerts[0].Props)
	}
}

func TestPublicAPISchemaAndSummaries(t *testing.T) {
	clock := reactive.NewManualClock(start)
	kb := reactive.New(reactive.Config{Clock: clock})
	if _, err := kb.ApplySchema(`CREATE GRAPH TYPE T LOOSE {
		(ct: Case {severity STRING, hub STRING})
	}`); err != nil {
		t.Fatal(err)
	}
	if err := kb.EnableSummaries(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := kb.InstallRule(reactive.Rule{
		Name:  "severe",
		Hub:   "C",
		Event: reactive.Event{Kind: reactive.CreateNode, Label: "Case"},
		Guard: "NEW.severity = 'high'",
		Alert: "RETURN NEW.severity AS severity",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := kb.Execute("CREATE (:Case {severity: 'high', hub: 'C'})", nil); err != nil {
		t.Fatal(err)
	}
	// Type violation aborts.
	if _, err := kb.Execute("CREATE (:Case {severity: 5, hub: 'C'})", nil); err == nil {
		t.Error("schema violation should abort")
	}
	clock.Advance(25 * time.Hour)
	if err := kb.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, err := kb.Execute("CREATE (:Case {severity: 'high', hub: 'C'})", nil); err != nil {
		t.Fatal(err)
	}
	mgr, err := kb.Summaries()
	if err != nil {
		t.Fatal(err)
	}
	err = kb.Store().View(func(tx *reactive.Tx) error {
		if got := len(mgr.Chain(tx)); got != 2 {
			t.Errorf("summary chain = %d", got)
		}
		avg, ok := mgr.MovingAverage(tx, 2, reactive.WindowFilter{Rule: "severe", Prop: "dateTime"})
		_ = avg
		_ = ok // dateTime is not numeric; just ensure the call is usable
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIValueHelpers(t *testing.T) {
	v := reactive.V(42)
	if n, ok := v.AsInt(); !ok || n != 42 {
		t.Error("V helper")
	}
	if reactive.Params(nil) != nil {
		t.Error("empty params should be nil")
	}
	p := reactive.Params(map[string]any{"s": "x", "f": 1.5})
	if len(p) != 2 {
		t.Error("params size")
	}
}

func TestPublicAPIClassificationConstants(t *testing.T) {
	kb := reactive.New(reactive.Config{})
	_ = kb.DefineHub("E", "experimental", "Mutation", "Effect")
	_ = kb.InstallRule(reactive.Rule{
		Name:  "R1",
		Hub:   "E",
		Event: reactive.Event{Kind: reactive.CreateNode, Label: "Mutation"},
		Alert: "MATCH (NEW)-[:HasEffect]->(e:Effect) RETURN e",
	})
	cls, err := kb.ClassifyRule("R1")
	if err != nil {
		t.Fatal(err)
	}
	if cls.Scope != reactive.IntraHub || cls.State != reactive.SingleState {
		t.Errorf("classification: %+v", cls)
	}
	infos := kb.Rules()
	if len(infos) != 1 || infos[0].Name != "R1" {
		t.Error("Rules listing")
	}
}

func TestPublicAPIParseGraphType(t *testing.T) {
	g, err := reactive.ParseGraphType(`CREATE GRAPH TYPE X STRICT { (a: L {v INT}) }`)
	if err != nil || g.Name != "X" {
		t.Errorf("ParseGraphType: %v %v", g, err)
	}
}

func ExampleNew() {
	kb := reactive.New(reactive.Config{Clock: reactive.NewManualClock(start)})
	_ = kb.InstallRule(reactive.Rule{
		Name:  "hello",
		Hub:   "demo",
		Event: reactive.Event{Kind: reactive.CreateNode, Label: "Fact"},
		Alert: "RETURN NEW.text AS text",
	})
	_, _ = kb.Execute("CREATE (:Fact {text: 'knowledge changed'})", nil)
	alerts, _ := kb.Alerts()
	fmt.Println(len(alerts), alerts[0].Props["text"])
	// Output: 1 "knowledge changed"
}

func TestPublicAPIExplainAndAPOC(t *testing.T) {
	kb := reactive.New(reactive.Config{})
	_ = kb.CreateIndex("Sequence", "id")
	plan, err := kb.ExplainQuery("MATCH (s:Sequence {id: 'x'}) RETURN s")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "via index (Sequence.id)") {
		t.Errorf("plan:\n%s", plan)
	}
	if _, err := kb.ExplainQuery("NOT A QUERY"); err == nil {
		t.Error("bad query should fail to explain")
	}
	if _, err := kb.InstallRuleText(`CREATE TRIGGER t
AFTER CREATE OF NODE Sequence
ALERT RETURN NEW.id AS id`); err != nil {
		t.Fatal(err)
	}
	translated, skipped := kb.TranslateRulesAPOC("neo4j", "before")
	if len(translated) != 1 || len(skipped) != 0 {
		t.Errorf("apoc export: %d/%d", len(translated), len(skipped))
	}
	if !strings.Contains(translated[0], "apoc.trigger.install") {
		t.Errorf("translation:\n%s", translated[0])
	}
}

func TestPublicAPIFork(t *testing.T) {
	kb := reactive.New(reactive.Config{})
	if _, err := kb.Execute("CREATE (:Base)", nil); err != nil {
		t.Fatal(err)
	}
	fork, err := kb.Fork(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fork.Execute("CREATE (:ForkOnly)", nil); err != nil {
		t.Fatal(err)
	}
	if kb.GraphStats().Nodes != 1 || fork.GraphStats().Nodes != 2 {
		t.Errorf("isolation: parent=%d fork=%d", kb.GraphStats().Nodes, fork.GraphStats().Nodes)
	}
}
