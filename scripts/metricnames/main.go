// Command metricnames prints, one per line and sorted, every metric name a
// fully wired knowledge base registers: it opens a durable knowledge base
// under a throwaway directory (wiring the write-ahead-log metrics), loads
// the four-hub demo (wiring rules and summaries), wraps it in a federation
// node (wiring the fed_* delivery metrics) and makes it a replication
// leader with one attached follower (wiring the replica_* metrics on both
// roles), then dumps the union of both registries.
//
// scripts/check_metrics_docs.sh diffs this output against the metric names
// documented in OBSERVABILITY.md, so the catalog cannot drift from the code.
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"

	reactive "repro"
	"repro/internal/cep"
	"repro/internal/democovid"
	"repro/internal/fednet"
	"repro/internal/replica"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("metricnames: ")
	dir, err := os.MkdirTemp("", "rkm-metricnames-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	kb, _, err := reactive.OpenDurable(dir, reactive.Config{}, reactive.WALOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer kb.Close()
	if err := democovid.Setup(kb); err != nil {
		log.Fatal(err)
	}
	// Composite-event management registers the rkm_cep_* instruments.
	if _, err := cep.Enable(kb, cep.Options{}); err != nil {
		log.Fatal(err)
	}
	if _, err := fednet.NewNode("metricnames", kb, fednet.Options{}); err != nil {
		log.Fatal(err)
	}

	// Leader role registers its replica_* shipping metrics on kb; a follower
	// of it registers the lag/apply metrics on its own registry.
	ld, err := replica.NewLeader(kb, replica.Options{})
	if err != nil {
		log.Fatal(err)
	}
	mux := http.NewServeMux()
	ld.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	fol, err := replica.OpenFollower("", srv.URL, reactive.Config{}, replica.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer fol.Close()

	// A durable sharded node registers the per-shard rkm_shard_* family
	// (per-shard commits, cross-shard bridge commits, shard lock waits,
	// per-shard WAL fsyncs).
	sdir, err := os.MkdirTemp("", "rkm-metricnames-shard-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(sdir)
	skb, _, err := reactive.OpenShardedDurable(sdir, reactive.Config{}, []reactive.HubShard{
		{Hub: "A", Labels: []string{"Sequence"}},
		{Hub: "B", Labels: []string{"Trial"}},
	}, reactive.WALOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer skb.Close()
	if _, err := skb.UpdateBridgeShards(0, 1, func(bt *reactive.BridgeTx) error {
		a, err := bt.CreateNodeIn(0, []string{"Sequence"}, nil)
		if err != nil {
			return err
		}
		b, err := bt.CreateNodeIn(1, []string{"Trial"}, nil)
		if err != nil {
			return err
		}
		_, err = bt.CreateRel(a, b, "TESTED_IN", nil)
		return err
	}); err != nil {
		log.Fatal(err)
	}

	seen := map[string]bool{}
	for _, reg := range []*reactive.MetricsRegistry{kb.Metrics(), fol.KB().Metrics(), skb.Metrics()} {
		for _, name := range reg.Names() {
			seen[name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Println(name)
	}
}
