// Command metricnames prints, one per line and sorted, every metric name a
// fully wired knowledge base registers: it opens a durable knowledge base
// under a throwaway directory (wiring the write-ahead-log metrics), loads
// the four-hub demo (wiring rules and summaries) and wraps it in a
// federation node (wiring the fed_* delivery metrics), then dumps the
// registry.
//
// scripts/check_metrics_docs.sh diffs this output against the metric names
// documented in OBSERVABILITY.md, so the catalog cannot drift from the code.
package main

import (
	"fmt"
	"log"
	"os"

	reactive "repro"
	"repro/internal/democovid"
	"repro/internal/fednet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("metricnames: ")
	dir, err := os.MkdirTemp("", "rkm-metricnames-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	kb, _, err := reactive.OpenDurable(dir, reactive.Config{}, reactive.WALOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer kb.Close()
	if err := democovid.Setup(kb); err != nil {
		log.Fatal(err)
	}
	if _, err := fednet.NewNode("metricnames", kb, fednet.Options{}); err != nil {
		log.Fatal(err)
	}
	for _, name := range kb.Metrics().Names() {
		fmt.Println(name)
	}
}
