#!/usr/bin/env sh
# check_metrics_docs.sh — fail when OBSERVABILITY.md and the metrics registry
# disagree: every metric the code registers must be documented, and every
# rkm_* name the catalog documents must exist in the registry.
#
# Usage: ./scripts/check_metrics_docs.sh   (from the repository root)
set -eu

doc=OBSERVABILITY.md
if [ ! -f "$doc" ]; then
    echo "check_metrics_docs: $doc not found (run from the repository root)" >&2
    exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Names the code registers, from a fully wired knowledge base.
go run ./scripts/metricnames | sort -u > "$tmp/code"

# Names the catalog documents: any rkm_* token in backticks.
grep -o '`rkm_[a-z0-9_]*`' "$doc" | tr -d '`' | sort -u > "$tmp/doc"

status=0
if ! comm -23 "$tmp/code" "$tmp/doc" | grep -q .; then
    :
else
    echo "check_metrics_docs: metrics registered but not documented in $doc:" >&2
    comm -23 "$tmp/code" "$tmp/doc" | sed 's/^/  /' >&2
    status=1
fi
if comm -13 "$tmp/code" "$tmp/doc" | grep -q .; then
    echo "check_metrics_docs: metrics documented in $doc but not registered:" >&2
    comm -13 "$tmp/code" "$tmp/doc" | sed 's/^/  /' >&2
    status=1
fi

if [ "$status" -eq 0 ]; then
    echo "check_metrics_docs: $(wc -l < "$tmp/code" | tr -d ' ') metric names in sync"
fi
exit "$status"
