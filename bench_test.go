package reactive_test

// Benchmarks regenerating the paper's evaluation figures (see
// EXPERIMENTS.md for the recorded series and the paper-vs-measured
// comparison):
//
//	BenchmarkFig9Naive/N=…    — Fig. 9: naive per-patient trigger design
//	BenchmarkFig10Summary/N=… — Fig. 10: summary-based redesign
//	BenchmarkAblationRegions  — §V ablation: naive vs. summary across regions
//
// `go test -bench . -benchmem` runs laptop-scale sweeps;
// `go run ./cmd/rkm-bench -full` runs the paper-scale ones and prints the
// figure series.

import (
	"fmt"
	"testing"

	"repro/internal/bench"
)

func BenchmarkFig9Naive(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			cfg := bench.Config{PatientCounts: []int{n}, Regions: 20, Days: 2, Seed: 1, Batch: 1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pts, err := bench.RunFig9(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(pts[0].PerTrigger.Nanoseconds()), "ns/trigger")
			}
		})
	}
}

func BenchmarkFig10Summary(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			cfg := bench.Config{PatientCounts: []int{n}, Regions: 20, Days: 2, Seed: 1, Batch: 1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pts, err := bench.RunFig10(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(pts[0].SummaryTime.Nanoseconds()), "ns/summary-phase")
				b.ReportMetric(float64(pts[0].TriggerTime.Nanoseconds()), "ns/trigger-phase")
			}
		})
	}
}

func BenchmarkAblationRegions(b *testing.B) {
	for _, r := range []int{5, 20, 100} {
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pts, err := bench.RunAblation(2000, []int{r}, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pts[0].Speedup, "x-speedup")
			}
		})
	}
}
