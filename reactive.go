// Package reactive is a reactive knowledge management system in pure Go: a
// from-scratch reproduction of "Reactive Knowledge Management" (Ceri,
// Bernasconi, Gagliardi — ICDE 2024).
//
// A KnowledgeBase holds a property graph partitioned into knowledge hubs,
// optionally governed by a PG-Schema graph type, queried and updated
// through a Cypher subset, and made *reactive* by Event–Guard–Alert rules:
// graph changes (events) are filtered by cheap intra-hub guards; when a
// guard passes, an arbitrarily complex alert query inspects the situation
// and, if critical, produces Alert nodes that are logged period-by-period
// in the Essential Summary structure.
//
// Quick start:
//
//	kb := reactive.New(reactive.Config{})
//	_ = kb.DefineHub("A", "analysis hub", "Sequence", "Lab")
//	_ = kb.InstallRule(reactive.Rule{
//	    Name:  "R2",
//	    Hub:   "A",
//	    Event: reactive.Event{Kind: reactive.CreateNode, Label: "Sequence"},
//	    Guard: "NEW.variant IS NULL",
//	    Alert: `MATCH (u:Sequence) WHERE u.variant IS NULL
//	            WITH count(u) AS unassigned WHERE unassigned > 100
//	            RETURN unassigned`,
//	})
//	_, _ = kb.Execute("CREATE (:Sequence {id: 'S1'})", nil)
//	alerts, _ := kb.Alerts()
//
// See the examples directory for complete scenarios (the paper's four-hub
// COVID-19 running example, a climate-crisis transfer, and what-if
// exploration) and DESIGN.md for the system inventory.
package reactive

import (
	"time"

	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/federation"
	"repro/internal/graph"
	"repro/internal/hub"
	"repro/internal/metrics"
	"repro/internal/periodic"
	"repro/internal/schema"
	"repro/internal/summary"
	"repro/internal/trigger"
	"repro/internal/value"
	"repro/internal/wal"
)

// KnowledgeBase is a reactive knowledge management system instance.
type KnowledgeBase = core.KnowledgeBase

// Config tunes a KnowledgeBase.
type Config = core.Config

// Alert is a materialized alert node.
type Alert = core.Alert

// New creates an empty knowledge base.
func New(cfg Config) *KnowledgeBase { return core.New(cfg) }

// WALOptions tunes the write-ahead log of a durable knowledge base.
type WALOptions = wal.Options

// FsyncPolicy selects when log appends reach stable storage.
type FsyncPolicy = wal.FsyncPolicy

// Fsync policies, from safest to fastest.
const (
	FsyncAlways   = wal.FsyncAlways
	FsyncInterval = wal.FsyncInterval
	FsyncNone     = wal.FsyncNone
)

// ParseFsyncPolicy parses "always", "interval" or "none".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return wal.ParseFsyncPolicy(s) }

// RecoveryInfo reports what OpenDurable recovered.
type RecoveryInfo = wal.RecoveryInfo

// ErrFollowerWrite is returned by write operations on a knowledge base that
// runs as a replication read replica (rkm-server -replica-of); writes belong
// on the leader. See internal/replica and DESIGN.md §12.
var ErrFollowerWrite = core.ErrFollower

// OpenDurable opens (or creates) a durable knowledge base persisted under
// dir: committed transactions append to a write-ahead log,
// KnowledgeBase.Checkpoint compacts it into a snapshot, and OpenDurable
// recovers the pre-crash committed state on startup. Rules, schemas, hubs
// and indexes are configuration: re-install them after OpenDurable returns.
func OpenDurable(dir string, cfg Config, wopts WALOptions) (*KnowledgeBase, *RecoveryInfo, error) {
	return core.OpenDurable(dir, cfg, wopts)
}

// ShardedKB is a knowledge base whose graph is sharded by hub: each hub
// gets its own single-writer store and WAL stream, so intra-hub
// transactions on different hubs commit fully in parallel, and knowledge
// bridges take a two-shard commit path. See DESIGN.md §13.
type ShardedKB = core.ShardedKB

// HubShard declares one hub (and the labels it owns) of a sharded
// knowledge base; the slice order fixes the shard indexes.
type HubShard = core.HubShard

// BridgeTx is a two-shard transaction for writes that cross hub borders.
type BridgeTx = graph.BridgeTx

// MultiView is a read-only view spanning every shard of a sharded store.
type MultiView = graph.MultiView

// NewSharded creates an empty in-memory sharded knowledge base with one
// shard per declared hub.
func NewSharded(cfg Config, hubs []HubShard) (*ShardedKB, error) {
	return core.NewSharded(cfg, hubs)
}

// OpenShardedDurable opens (or creates) a durable sharded knowledge base:
// each shard persists to its own WAL stream under dir and recovers
// independently, with torn cross-shard bridge commits reconciled from the
// surviving commit records.
func OpenShardedDurable(dir string, cfg Config, hubs []HubShard, wopts WALOptions) (*ShardedKB, []*RecoveryInfo, error) {
	return core.OpenShardedDurable(dir, cfg, hubs, wopts)
}

// Rule is the reactive-rule quadruple <Event, Guard, Alert, AlertNode>.
type Rule = trigger.Rule

// Event selects the graph changes that activate a rule.
type Event = trigger.Event

// EventKind enumerates monitorable graph changes.
type EventKind = trigger.EventKind

// Event kinds (create/delete of nodes and relationships, set/removal of
// labels and properties).
const (
	CreateNode         = trigger.CreateNode
	DeleteNode         = trigger.DeleteNode
	CreateRelationship = trigger.CreateRelationship
	DeleteRelationship = trigger.DeleteRelationship
	SetLabel           = trigger.SetLabel
	RemoveLabel        = trigger.RemoveLabel
	SetProperty        = trigger.SetProperty
	RemoveProperty     = trigger.RemoveProperty
)

// Phase selects when a rule's alert query runs relative to the triggering
// transaction: synchronously inside it (PhaseBefore, the default) or
// asynchronously against a committed snapshot (PhaseAfterAsync), mirroring
// the APOC trigger phases of §IV-B.
type Phase = trigger.Phase

// Rule phases.
const (
	PhaseBefore     = trigger.Before
	PhaseAfterAsync = trigger.AfterAsync
)

// ParsePhase parses "before" (or ""), "afterAsync" or "async".
func ParsePhase(s string) (Phase, error) { return trigger.ParsePhase(s) }

// AsyncOptions tunes the asynchronous alert pipeline started with
// KnowledgeBase.StartAsync: worker count, queue bound and backpressure
// policy.
type AsyncOptions = core.AsyncOptions

// Backpressure selects how writers behave when the async pending queue is
// full: block until workers catch up, or shed the excess activations.
type Backpressure = core.Backpressure

// Backpressure policies.
const (
	BlockOnFull = core.BlockOnFull
	ShedOnFull  = core.ShedOnFull
)

// ParseBackpressure parses "block" or "shed".
func ParseBackpressure(s string) (Backpressure, error) { return core.ParseBackpressure(s) }

// PendingAlertLabel is the label of the durable pending-queue nodes staged
// by PhaseAfterAsync rules between their guard passing and their alert
// query running.
const PendingAlertLabel = core.PendingAlertLabel

// RuleInfo describes an installed rule and its §III-C classification.
type RuleInfo = trigger.RuleInfo

// Classification is the scope × state taxonomy of rules.
type Classification = trigger.Classification

// Rule scope and state classes.
const (
	IntraHub    = trigger.IntraHub
	InterHub    = trigger.InterHub
	SingleState = trigger.SingleState
	MultiState  = trigger.MultiState
)

// Report summarizes rule processing for one transaction.
type Report = trigger.Report

// IsTriggerStatement reports whether src is a PG-Triggers-style CREATE
// TRIGGER declaration (for routing text to InstallRuleText instead of
// Execute).
func IsTriggerStatement(src string) bool { return trigger.IsTriggerStatement(src) }

// ParseRule parses a CREATE TRIGGER declaration without installing it.
func ParseRule(src string) (Rule, error) { return trigger.ParseRule(src) }

// ConfluenceWarning reports a potentially order-dependent rule pair.
type ConfluenceWarning = trigger.ConfluenceWarning

// Result is the outcome of a query: columns, rows and update counters.
type Result = cypher.Result

// Value is a dynamically typed graph value.
type Value = value.Value

// Params builds a typed parameter map from native Go values.
func Params(m map[string]any) map[string]Value {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]Value, len(m))
	for k, v := range m {
		out[k] = value.FromGo(v)
	}
	return out
}

// V converts a native Go value into a graph Value.
func V(x any) Value { return value.FromGo(x) }

// Clock abstracts time for deterministic simulations.
type Clock = periodic.Clock

// ManualClock is an explicitly advanced clock.
type ManualClock = periodic.ManualClock

// NewManualClock returns a manual clock set to start.
func NewManualClock(start time.Time) *ManualClock { return periodic.NewManualClock(start) }

// RealClock reads the wall clock.
type RealClock = periodic.RealClock

// GraphType is a PG-Schema graph type.
type GraphType = schema.GraphType

// ParseGraphType parses the paper's textual PG-Schema syntax.
func ParseGraphType(src string) (*GraphType, error) { return schema.ParseGraphType(src) }

// HubStats summarizes the partitioning of the knowledge graph.
type HubStats = hub.Stats

// HubRegistry is the registry of knowledge hubs: names, descriptions and
// the node labels each hub owns.
type HubRegistry = hub.Registry

// SummaryManager maintains the Essential Summary structure.
type SummaryManager = summary.Manager

// WindowFilter selects alerts for Essential Summary window queries.
type WindowFilter = summary.WindowFilter

// Federation coordinates several knowledge bases run by distinct
// organizations and propagates alerts along subscriptions (§V's federated
// deployment).
type Federation = federation.Federation

// Participant is one organization's knowledge base inside a federation.
type Participant = federation.Participant

// RemoteAlertLabel is the label of alerts replicated from other federation
// participants.
const RemoteAlertLabel = federation.RemoteAlertLabel

// NewFederation returns an empty federation.
func NewFederation() *Federation { return federation.New() }

// RemoteAlerts lists the alerts replicated into kb from other participants.
func RemoteAlerts(kb *KnowledgeBase) ([]Alert, error) { return federation.RemoteAlerts(kb) }

// MetricsRegistry holds a knowledge base's runtime instrumentation —
// counters, gauges and latency histograms for the trigger engine, the graph
// store, the write-ahead log and the periodic scheduler. Obtain it with
// KnowledgeBase.Metrics; serve it with WritePrometheus or inspect it with
// Gather. See OBSERVABILITY.md for the full metric catalog.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is a point-in-time view of one metric family from
// MetricsRegistry.Gather.
type MetricsSnapshot = metrics.FamilySnapshot

// HistogramSnapshot is a consistent view of one histogram's buckets, with
// quantile estimation (used by rkm-bench's latency summaries).
type HistogramSnapshot = metrics.HistogramSnapshot

// Store is the underlying transactional property-graph store.
type Store = graph.Store

// Tx is a graph transaction (used with KnowledgeBase.WriteTx and
// Store.View for programmatic access).
type Tx = graph.Tx

// NodeID identifies a node.
type NodeID = graph.NodeID

// RelID identifies a relationship.
type RelID = graph.RelID
