// What-if exploration (§V future work): fork the knowledge base, attach a
// different reaction strategy to each fork, replay the same event stream,
// and compare how the knowledge evolves. KnowledgeBase.Fork gives each
// hypothesis an isolated copy of the graph, the rules and the Essential
// Summary, so the only difference between time-lines is the rule under
// test. Here two containment policies for a spreading pathogen are
// compared: an aggressive strategy restricts a region at 20% day-over-day
// case growth, a lenient one waits for 60%; restrictions damp subsequent
// growth in the simulated stream.
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	reactive "repro"
)

// strategy describes one hypothetical reaction policy.
type strategy struct {
	Name      string
	Threshold float64 // day-over-day growth triggering a restriction
	Damping   float64 // growth multiplier while restricted
}

type outcome struct {
	strategy     strategy
	totalCases   int
	peak         int
	restrictions int
}

func main() {
	strategies := []strategy{
		{Name: "aggressive", Threshold: 0.20, Damping: 0.55},
		{Name: "lenient", Threshold: 0.60, Damping: 0.55},
	}
	const days = 10

	// The shared base knowledge, built once.
	baseClock := reactive.NewManualClock(time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC))
	base := reactive.New(reactive.Config{Clock: baseClock})
	must(base.DefineHub("C", "clinical", "DayStat"))
	must(base.DefineHub("R", "regional", "Region", "Restriction"))
	must(base.CreateIndex("DayStat", "day"))
	must(base.CreateIndex("Region", "name"))
	mustExec(base, `CREATE (:Region {name: 'Lombardy', hub: 'R'})`)

	fmt.Printf("forking the knowledge base into %d hypothetical time-lines for %d days\n\n",
		len(strategies), days)
	var outcomes []outcome
	for _, st := range strategies {
		// Each hypothesis gets its own fork and its own clock.
		clock := reactive.NewManualClock(baseClock.Now())
		fork, err := base.Fork(clock)
		if err != nil {
			log.Fatal(err)
		}
		outcomes = append(outcomes, replay(fork, clock, st, days))
	}

	fmt.Printf("%-12s %12s %9s %14s\n", "strategy", "total-cases", "peak/day", "restrictions")
	for _, o := range outcomes {
		fmt.Printf("%-12s %12d %9d %14d\n",
			o.strategy.Name, o.totalCases, o.peak, o.restrictions)
	}

	// The parent knowledge base is untouched by either time-line.
	res, err := base.Query("MATCH (d:DayStat) RETURN count(d)", nil)
	must(err)
	if v, _ := res.Value(); v.String() == "0" {
		fmt.Println("\nparent knowledge base is untouched: the forks evolved independently —")
		fmt.Println("the hypothetical-reasoning infrastructure §V calls for.")
	}
}

// replay attaches the strategy's reaction rule to the fork and feeds the
// outbreak stream.
func replay(kb *reactive.KnowledgeBase, clock *reactive.ManualClock, st strategy, days int) outcome {
	o := outcome{strategy: st}

	// The reaction rule IS the what-if variable: above-threshold growth
	// imposes a restriction — a real side effect on the fork's graph that
	// the simulation then observes.
	must(kb.InstallRule(reactive.Rule{
		Name:  "contain",
		Hub:   "R",
		Event: reactive.Event{Kind: reactive.CreateNode, Label: "DayStat"},
		Guard: "NEW.day > 0",
		Alert: fmt.Sprintf(`MATCH (y:DayStat {day: NEW.day - 1})
		        WITH NEW.cases AS today, y.cases AS yesterday, NEW.day AS day
		        WHERE yesterday > 0 AND toFloat(today - yesterday) / toFloat(yesterday) > %g
		        MATCH (r:Region {name: 'Lombardy'})
		        WHERE NOT (r)<-[:AppliesTo]-(:Restriction {active: true})
		        RETURN day, today, yesterday, r AS region`, st.Threshold),
		Action: `CREATE (res:Restriction {since: day, active: true, hub: 'R'})
		         CREATE (res)-[:AppliesTo]->(region)`,
	}))

	cases := 40.0
	growth := 1.5
	for day := 0; day < days; day++ {
		res, err := kb.Query(
			`MATCH (:Restriction {active: true})-[:AppliesTo]->(:Region {name: 'Lombardy'})
			 RETURN count(*)`, nil)
		must(err)
		if v, _ := res.Value(); v.String() != "0" {
			growth = st.Damping // the imposed restriction damps the spread
		}
		today := int(math.Round(cases))
		o.totalCases += today
		if today > o.peak {
			o.peak = today
		}
		mustExec(kb, fmt.Sprintf(
			`CREATE (:DayStat {day: %d, cases: %d, hub: 'C'})`, day, today))
		cases *= growth
		if cases < 1 {
			cases = 1
		}
		clock.Advance(24 * time.Hour)
	}

	res, err := kb.Query(`MATCH (r:Restriction) RETURN count(r)`, nil)
	must(err)
	if v, ok := res.Value(); ok {
		n, _ := v.AsInt()
		o.restrictions = int(n)
	}
	return o
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustExec(kb *reactive.KnowledgeBase, q string) {
	if _, err := kb.Execute(q, nil); err != nil {
		log.Fatalf("%s: %v", q, err)
	}
}
