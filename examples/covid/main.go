// The paper's running example, end to end: four knowledge hubs
// (Experimental, Analysis, Clinical, Regional) over a COVID-19 knowledge
// graph, reactive rules R1–R3, the auxiliary R5 and the multi-state R4'
// built on the Essential Summary, simulated over several days.
//
//	go run ./examples/covid
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	reactive "repro"
	"repro/internal/democovid"
)

func main() {
	clock := reactive.NewManualClock(time.Date(2023, 4, 1, 8, 0, 0, 0, time.UTC))
	kb := reactive.New(reactive.Config{Clock: clock})

	if err := democovid.Setup(kb); err != nil {
		log.Fatal(err)
	}
	if err := democovid.Seed(kb); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== hubs ==")
	for _, h := range kb.Hubs().Hubs() {
		fmt.Printf("  %-2s %-45s %v\n", h.Name, h.Description, kb.Hubs().OwnedLabels(h.Name))
	}
	fmt.Println("\n== rules (§III-C classification) ==")
	for _, r := range kb.Rules() {
		fmt.Printf("  %-3s hub=%-2s on %-28s → %s, %s\n",
			r.Name, r.Hub, r.Event, r.Classification.Scope, r.Classification.State)
	}
	if cycles := kb.CheckTermination(); len(cycles) == 0 {
		fmt.Println("  triggering graph is acyclic: cascades terminate")
	}

	// ---- Day 1: experimental knowledge arrives ----
	fmt.Println("\n== day 1: experimental hub publishes a mutation ==")
	mustExec(kb, `MATCH (ef:Effect {type: 'vaccine escape'})
	             CREATE (:Mutation {id: 'S:E484K', hub: 'E'})-[:HasEffect]->(ef)`)
	mustExec(kb, `MATCH (v:Variant {name: 'B.1.351'}), (m:Mutation {id: 'S:E484K'})
	             CREATE (v)-[:Contains]->(m)`)

	// Sequencing backlog builds up in Lombardy.
	for i := 0; i < 4; i++ {
		must(democovid.AddSequence(kb, "MI-lab-1", fmt.Sprintf("d1-s%d", i), ""))
	}
	// Two ICU admissions in Lombardy (R5 logs the daily counts).
	must(democovid.AdmitIcuPatient(kb, "MI-hosp-1", "d1-p0"))
	must(democovid.AdmitIcuPatient(kb, "MI-hosp-1", "d1-p1"))
	printAlerts(kb, "after day 1")

	// ---- Day 2 ----
	nextDay(kb, clock)
	fmt.Println("\n== day 2: assigned sequences reveal the critical variant ==")
	for i := 0; i < 4; i++ {
		must(democovid.AddSequence(kb, "MI-lab-1", fmt.Sprintf("d2-s%d", i), "B.1.351"))
	}
	// One more unassigned probe evaluates R3 against the new picture.
	must(democovid.AddSequence(kb, "MI-lab-1", "d2-probe", ""))
	// ICU keeps growing: 3 patients today vs 2 yesterday → R4' fires.
	for i := 0; i < 3; i++ {
		must(democovid.AdmitIcuPatient(kb, "MI-hosp-1", fmt.Sprintf("d2-p%d", i)))
	}
	printAlerts(kb, "after day 2")

	// ---- Day 3: the Essential Summary accumulates history ----
	nextDay(kb, clock)
	fmt.Println("\n== day 3: summary window analytics (§III-D) ==")
	must(democovid.AdmitIcuPatient(kb, "MI-hosp-1", "d3-p0"))
	mgr, err := kb.Summaries()
	if err != nil {
		log.Fatal(err)
	}
	err = kb.Store().View(func(tx *reactive.Tx) error {
		chain := mgr.Chain(tx)
		fmt.Printf("  summary chain: %d periods\n", len(chain))
		win := mgr.Window(tx, 3, reactive.WindowFilter{
			Rule:  "R5",
			Prop:  "IcuPatients",
			Where: map[string]reactive.Value{"Region": reactive.V("Lombardy")},
		})
		fmt.Printf("  Lombardy ICU window (one value per period): %v\n", win)
		if avg, ok := mgr.MovingAverage(tx, 3, reactive.WindowFilter{
			Rule:  "R5",
			Prop:  "IcuPatients",
			Where: map[string]reactive.Value{"Region": reactive.V("Lombardy")},
		}); ok {
			fmt.Printf("  3-day moving average of ICU occupancy: %.2f\n", avg)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== Fig. 7: the APOC translation of rule R2 ==")
	translated, _ := kb.TranslateRulesAPOC("neo4j", "before")
	for _, trg := range translated {
		if strings.Contains(trg, "'R2'") {
			fmt.Println(trg)
		}
	}

	fmt.Println("\n== partitioning ==")
	hs, err := kb.HubStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  nodes per hub: %v (unassigned: %d)\n", hs.NodesPerHub, hs.Unassigned)
	fmt.Printf("  intra-hub edges: %d, knowledge bridges (inter-hub): %d\n",
		hs.IntraEdges, hs.InterEdges)
	for _, b := range hs.Bridges {
		fmt.Printf("    %s: %s → %s (%d)\n", b.Type, b.FromHub, b.ToHub, b.Count)
	}
}

func nextDay(kb *reactive.KnowledgeBase, clock *reactive.ManualClock) {
	clock.Advance(24 * time.Hour)
	if err := kb.Tick(); err != nil {
		log.Fatal(err)
	}
}

func mustExec(kb *reactive.KnowledgeBase, q string) {
	if _, err := kb.Execute(q, nil); err != nil {
		log.Fatalf("%s: %v", q, err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func printAlerts(kb *reactive.KnowledgeBase, when string) {
	alerts, err := kb.Alerts()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- alert log %s (%d total) --\n", when, len(alerts))
	for _, a := range alerts {
		fmt.Printf("  %s %-3s hub=%-2s %v\n",
			a.DateTime.Format("Jan 02 15:04"), a.Rule, a.Hub, a.Props)
	}
}
