// Quickstart: the smallest useful reactive knowledge base — one hub, one
// rule, a handful of events, and the alert log.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	reactive "repro"
)

func main() {
	// A manual clock makes the run deterministic; production systems omit
	// Clock and run on wall time.
	clock := reactive.NewManualClock(time.Date(2023, 4, 1, 9, 0, 0, 0, time.UTC))
	kb := reactive.New(reactive.Config{Clock: clock})

	// One knowledge hub owning the labels of its partition.
	if err := kb.DefineHub("A", "analysis hub: viral sequencing", "Sequence", "Lab"); err != nil {
		log.Fatal(err)
	}

	// The paper's R2 in miniature: when a new sequence arrives without a
	// variant assignment, count the unassigned backlog; more than two is
	// critical and produces an Alert node.
	if err := kb.InstallRule(reactive.Rule{
		Name:  "R2",
		Hub:   "A",
		Event: reactive.Event{Kind: reactive.CreateNode, Label: "Sequence"},
		Guard: "NEW.variant IS NULL",
		Alert: `MATCH (u:Sequence) WHERE u.variant IS NULL
		        WITH count(u) AS unassigned WHERE unassigned > 2
		        RETURN unassigned`,
	}); err != nil {
		log.Fatal(err)
	}

	// Feed knowledge changes. Each Execute runs in a transaction; rules
	// fire on the changes before the commit.
	for i := 1; i <= 4; i++ {
		query := "CREATE (:Sequence {id: $id, hub: 'A'})"
		params := reactive.Params(map[string]any{"id": fmt.Sprintf("seq-%d", i)})
		if i == 2 { // this one is already assigned and never alarms
			query = "CREATE (:Sequence {id: $id, hub: 'A', variant: 'B.1.1.7'})"
		}
		if _, err := kb.Execute(query, params); err != nil {
			log.Fatal(err)
		}
		clock.Advance(10 * time.Minute)
	}

	// Inspect what the reactive layer produced.
	alerts, err := kb.Alerts()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d alert(s)\n", len(alerts))
	for _, a := range alerts {
		fmt.Printf("  %s  rule=%s hub=%s unassigned=%s\n",
			a.DateTime.Format("15:04"), a.Rule, a.Hub, a.Props["unassigned"])
	}

	// The knowledge graph remains a regular graph database.
	res, err := kb.Query(
		"MATCH (s:Sequence) RETURN s.variant IS NULL AS unassigned, count(*) AS n ORDER BY unassigned", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sequences by assignment state:")
	for _, row := range res.Rows {
		fmt.Printf("  unassigned=%s  n=%s\n", row[0], row[1])
	}
}
