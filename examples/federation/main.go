// Federated deployment (§V): each organization — a hospital network, a
// sequencing consortium, a regional authority — runs its OWN knowledge
// base on its own infrastructure; alerts propagate between them through
// federation subscriptions, and the receiving organization's rules react
// to the replicated knowledge. This is the paper's "reactive interaction
// of several knowledge hubs" across administrative boundaries.
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"log"
	"time"

	reactive "repro"
)

func main() {
	clock := reactive.NewManualClock(time.Date(2023, 4, 1, 8, 0, 0, 0, time.UTC))

	// --- Organization 1: a hospital network (clinical hub) ---
	clinic := reactive.New(reactive.Config{Clock: clock})
	must(clinic.DefineHub("C", "hospital network", "IcuPatient", "Hospital"))
	must(clinic.InstallRule(reactive.Rule{
		Name:  "icu-pressure",
		Hub:   "C",
		Event: reactive.Event{Kind: reactive.CreateNode, Label: "IcuPatient"},
		Alert: `MATCH (i:IcuPatient {region: NEW.region})
		        WITH NEW.region AS region, count(i) AS occupied
		        WHERE occupied >= 3
		        RETURN region, occupied`,
	}))

	// --- Organization 2: a sequencing consortium (analysis hub) ---
	lab := reactive.New(reactive.Config{Clock: clock})
	must(lab.DefineHub("A", "sequencing consortium", "Sequence"))
	must(lab.InstallRule(reactive.Rule{
		Name:  "variant-surge",
		Hub:   "A",
		Event: reactive.Event{Kind: reactive.CreateNode, Label: "Sequence"},
		Guard: "NEW.variant = 'B.1.351'",
		Alert: `MATCH (s:Sequence {variant: 'B.1.351', region: NEW.region})
		        WITH NEW.region AS region, count(s) AS sequences
		        WHERE sequences >= 2
		        RETURN region, sequences`,
	}))

	// --- Organization 3: the regional authority ---
	authority := reactive.New(reactive.Config{Clock: clock})
	must(authority.DefineHub("R", "regional authority", "Region", "Measure"))
	// The authority's reaction rule watches REPLICATED alerts: when both
	// clinical pressure and a variant surge have been reported for the
	// same region, it enacts a containment measure.
	must(authority.InstallRule(reactive.Rule{
		Name:  "containment",
		Hub:   "R",
		Event: reactive.Event{Kind: reactive.CreateNode, Label: reactive.RemoteAlertLabel},
		Alert: `MATCH (c:RemoteAlert {rule: 'icu-pressure', region: NEW.region})
		        MATCH (v:RemoteAlert {rule: 'variant-surge', region: NEW.region})
		        WITH DISTINCT NEW.region AS region
		        WHERE NOT (:Measure {region: region})-[:Active]->(:Region)
		        RETURN region`,
		Action: `MERGE (r:Region {name: region, hub: 'R'})
		         CREATE (:Measure {region: region, kind: 'containment', hub: 'R'})-[:Active]->(r)`,
	}))

	// --- Wire the federation ---
	fed := reactive.NewFederation()
	_, _ = fed.Join("clinic", clinic)
	_, _ = fed.Join("lab", lab)
	_, _ = fed.Join("authority", authority)
	must(fed.Subscribe("clinic", "authority"))
	must(fed.Subscribe("lab", "authority"))

	fmt.Println("federation: clinic → authority, lab → authority")

	// --- The crisis unfolds in each organization independently ---
	for i := 0; i < 3; i++ {
		exec(clinic, fmt.Sprintf(
			`CREATE (:IcuPatient {id: 'p%d', region: 'Lombardy', hub: 'C'})`, i))
	}
	for i := 0; i < 2; i++ {
		exec(lab, fmt.Sprintf(
			`CREATE (:Sequence {id: 's%d', region: 'Lombardy', variant: 'B.1.351', hub: 'A'})`, i))
	}

	report := func(name string, kb *reactive.KnowledgeBase) {
		alerts, err := kb.Alerts()
		must(err)
		fmt.Printf("  %-9s local alerts: %d\n", name, len(alerts))
	}
	fmt.Println("\nbefore sync:")
	report("clinic", clinic)
	report("lab", lab)
	report("authority", authority)

	// --- Periodic federation sync (in production: an exchange protocol) ---
	n, err := fed.Sync()
	must(err)
	fmt.Printf("\nsync propagated %d alerts to subscribers\n", n)

	remote, err := reactive.RemoteAlerts(authority)
	must(err)
	fmt.Printf("\nauthority's replicated knowledge (%d remote alerts):\n", len(remote))
	for _, a := range remote {
		fmt.Printf("  from %-8s rule=%-14s region=%s\n",
			a.Props["origin"], a.Rule, a.Props["region"])
	}

	res, err := authority.Query(
		`MATCH (m:Measure)-[:Active]->(r:Region) RETURN m.kind, r.name`, nil)
	must(err)
	fmt.Println("\nenacted measures (the authority's rules reacted to the remote alerts):")
	for _, row := range res.Rows {
		fmt.Printf("  %s for %s\n", row[0], row[1])
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func exec(kb *reactive.KnowledgeBase, q string) {
	if _, err := kb.Execute(q, nil); err != nil {
		log.Fatalf("%s: %v", q, err)
	}
}
