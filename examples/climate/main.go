// Climate-crisis transfer of the paper's framework (§I motivates climate
// change as a second crisis scenario): four hubs — Meteorology (M),
// Hydrology (H), Civil Protection (P), Governance (G) — share a partitioned
// knowledge graph of stations, readings, rivers and basins. Reactive rules
// escalate from raw readings to flood risk to policy recommendations,
// demonstrating property-set events, Action rules with cascades, and
// multi-state moving-average analytics over the Essential Summary.
//
//	go run ./examples/climate
package main

import (
	"fmt"
	"log"
	"time"

	reactive "repro"
)

func main() {
	clock := reactive.NewManualClock(time.Date(2024, 10, 1, 6, 0, 0, 0, time.UTC))
	kb := reactive.New(reactive.Config{Clock: clock, StrictTermination: true})

	for _, h := range []struct {
		name, desc string
		labels     []string
	}{
		{"M", "Meteorology: stations and rainfall readings", []string{"Station", "Reading"}},
		{"H", "Hydrology: rivers and level gauges", []string{"River", "Gauge"}},
		{"P", "Civil protection: incidents and interventions", []string{"Incident", "FloodRisk"}},
		{"G", "Governance: basins and policies", []string{"Basin", "Policy"}},
	} {
		if err := kb.DefineHub(h.name, h.desc, h.labels...); err != nil {
			log.Fatal(err)
		}
	}
	if err := kb.EnableSummaries(24 * time.Hour); err != nil {
		log.Fatal(err)
	}

	rules := []reactive.Rule{
		// CR1 (Meteorology, intra-hub): extreme rainfall reading.
		{
			Name:  "CR1-extreme-rain",
			Hub:   "M",
			Event: reactive.Event{Kind: reactive.CreateNode, Label: "Reading"},
			Guard: "NEW.mm > 100",
			Alert: `MATCH (NEW)<-[:Measured]-(st:Station)-[:InBasin]->(b:Basin)
			        RETURN b.name AS basin, st.name AS station, NEW.mm AS mm`,
		},
		// CR2 (Hydrology → Civil protection, inter-hub Action rule): when a
		// river gauge level is SET above its flood threshold while heavy
		// rain was read in the same basin, materialize a FloodRisk node —
		// a genuine reactive side effect that cascades into CR3.
		{
			Name:  "CR2-flood-risk",
			Hub:   "H",
			Event: reactive.Event{Kind: reactive.SetProperty, Label: "Gauge", PropKey: "level"},
			Guard: "NEWVALUE > 4.5",
			Alert: `MATCH (NEW)-[:OnRiver]->(r:River)-[:Drains]->(b:Basin)
			        MATCH (:Station)-[:InBasin]->(b)
			        MATCH (rd:Reading) WHERE rd.basin = b.name AND rd.mm > 100
			        WITH DISTINCT b.name AS basin, r.name AS river, NEWVALUE AS level
			        RETURN basin, river, level`,
			Action: `CREATE (:FloodRisk {basin: basin, river: river, level: level, hub: 'P'})`,
		},
		// CR3 (Civil protection, fires on the cascaded FloodRisk nodes).
		{
			Name:  "CR3-alarm",
			Hub:   "P",
			Event: reactive.Event{Kind: reactive.CreateNode, Label: "FloodRisk"},
			Alert: `RETURN NEW.basin AS basin, NEW.river AS river, NEW.level AS level`,
		},
		// CR4 (Governance, multi-state): persistent rainfall — the 3-day
		// moving picture is read from the Essential Summary's CR1 alerts.
		{
			Name:  "CR4-persistent-rain",
			Hub:   "G",
			Event: reactive.Event{Kind: reactive.CreateNode, Label: "Summary"},
			Alert: `MATCH (a:Alert {rule: 'CR1-extreme-rain'})<-[:has]-(s:Summary)
			        WITH a.basin AS basin, count(a) AS extremes
			        WHERE extremes >= 3
			        RETURN basin, extremes`,
		},
	}
	for _, r := range rules {
		if err := kb.InstallRule(r); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("rules installed; triggering graph cycles:", kb.CheckTermination())

	// Base knowledge.
	mustExec(kb, `CREATE (:Basin {name: 'Po', hub: 'G'})`)
	mustExec(kb, `MATCH (b:Basin {name: 'Po'})
	             CREATE (:Station {name: 'Torino-1', hub: 'M'})-[:InBasin]->(b),
	                    (:Station {name: 'Piacenza-1', hub: 'M'})-[:InBasin]->(b)`)
	mustExec(kb, `MATCH (b:Basin {name: 'Po'})
	             CREATE (r:River {name: 'Po', hub: 'H'})-[:Drains]->(b),
	                    (:Gauge {name: 'Po-at-Cremona', level: 2.1, hub: 'H'})-[:OnRiver]->(r)`)

	// Three days of worsening weather.
	rain := []float64{120, 135, 160}
	for day, mm := range rain {
		fmt.Printf("\n== day %d: %0.f mm at Torino-1 ==\n", day+1, mm)
		mustExec(kb, fmt.Sprintf(`MATCH (st:Station {name: 'Torino-1'})
		     CREATE (rd:Reading {mm: %g, basin: 'Po', hub: 'M'})<-[:Measured]-(st)`, mm))
		if day == 2 {
			// The river finally exceeds its flood threshold: CR2 fires on
			// the property-set event and cascades into CR3.
			fmt.Println("   river gauge rises to 5.2 m")
			mustExec(kb, `MATCH (g:Gauge {name: 'Po-at-Cremona'}) SET g.level = 5.2`)
		}
		clock.Advance(24 * time.Hour)
		if err := kb.Tick(); err != nil {
			log.Fatal(err)
		}
	}

	alerts, err := kb.Alerts()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== alert log (%d) ==\n", len(alerts))
	for _, a := range alerts {
		fmt.Printf("  %s %-20s hub=%-2s %v\n",
			a.DateTime.Format("Jan 02"), a.Rule, a.Hub, a.Props)
	}

	// The moving-average machinery works for any domain.
	mgr, err := kb.Summaries()
	if err != nil {
		log.Fatal(err)
	}
	_ = kb.Store().View(func(tx *reactive.Tx) error {
		if avg, ok := mgr.MovingAverage(tx, 3, reactive.WindowFilter{
			Rule: "CR1-extreme-rain", Prop: "mm",
		}); ok {
			fmt.Printf("\n3-day moving average of extreme rainfall: %.1f mm\n", avg)
		}
		return nil
	})
}

func mustExec(kb *reactive.KnowledgeBase, q string) {
	if _, err := kb.Execute(q, nil); err != nil {
		log.Fatalf("%s: %v", q, err)
	}
}
