package replica

import (
	"repro/internal/metrics"
)

// Metric names registered by the replication subsystem. Every name is
// documented in OBSERVABILITY.md; the CI docs job keeps the two in sync
// (scripts/check_metrics_docs.sh, via scripts/metricnames).
const (
	// Follower side.
	mLagRecords   = "rkm_replica_lag_records"
	mLagSeconds   = "rkm_replica_lag_seconds"
	mApplied      = "rkm_replica_applied_records_total"
	mApplyBatches = "rkm_replica_apply_batches_total"
	mApplySeconds = "rkm_replica_apply_seconds"
	mConnects     = "rkm_replica_connects_total"
	mStreamErrors = "rkm_replica_stream_errors_total"
	mBootstraps   = "rkm_replica_bootstraps_total"
	// Leader side.
	mStreams         = "rkm_replica_streams_total"
	mShipped         = "rkm_replica_shipped_records_total"
	mSnapshotsServed = "rkm_replica_snapshots_served_total"
)

// followerMetrics caches the follower's instruments (nil-safe, like every
// instrument in internal/metrics).
type followerMetrics struct {
	applied      *metrics.Counter
	batches      *metrics.Counter
	applySeconds *metrics.Histogram
	connects     *metrics.Counter
	streamErrors *metrics.Counter
	bootstraps   *metrics.Counter
}

// wireMetrics registers the follower instruments on the follower knowledge
// base's registry; the lag gauges read the live cursor positions at scrape
// time, so lag is accurate even while the apply loop is wedged.
func (f *Follower) wireMetrics() {
	reg := f.kb.Metrics()
	f.m = followerMetrics{
		applied: reg.Counter(mApplied,
			"Leader records applied to the local graph and mirrored into the local log."),
		batches: reg.Counter(mApplyBatches,
			"Replicated record batches applied (each one transaction and one durability wait)."),
		applySeconds: reg.Histogram(mApplySeconds,
			"Latency of applying one replicated batch, in seconds.", nil),
		connects: reg.Counter(mConnects,
			"Stream connections established to the leader."),
		streamErrors: reg.Counter(mStreamErrors,
			"Stream attempts that failed (connect errors, mid-stream drops, apply errors)."),
		bootstraps: reg.Counter(mBootstraps,
			"Snapshot bootstraps performed (initial seeds plus re-bootstraps after leader truncation)."),
	}
	reg.GaugeFunc(mLagRecords,
		"Records the follower trails the leader's durable position by (bounded-staleness contract).",
		func() float64 {
			recs, _ := f.Lag()
			return float64(recs)
		})
	reg.GaugeFunc(mLagSeconds,
		"Seconds since the follower was last fully caught up with the leader (0 while caught up).",
		func() float64 {
			_, secs := f.Lag()
			return secs
		})
}

// leaderMetrics caches the leader's instruments.
type leaderMetrics struct {
	streams         *metrics.Counter
	shipped         *metrics.Counter
	snapshotsServed *metrics.Counter
}

func (ld *Leader) wireMetrics(reg *metrics.Registry) {
	ld.m = leaderMetrics{
		streams: reg.Counter(mStreams,
			"Stream requests served (each covers at most one StreamWindow)."),
		shipped: reg.Counter(mShipped,
			"Records shipped to followers across all streams."),
		snapshotsServed: reg.Counter(mSnapshotsServed,
			"Bootstrap snapshots served to followers."),
	}
}
