package replica

// Fault-injection suite for replication catch-up: crash the follower
// mid-stream, crash the leader mid-push, restart both, and require the
// follower to converge to a byte-identical Export of the leader — no
// duplicated and no lost records. Crashes are simulated the same way the
// wal and core suites do: copying a FsyncAlways log directory at an
// arbitrary instant is exactly the state a kill at that instant leaves
// (including torn tails, which recovery discards). Exactly-once apply is
// structurally checked too: a duplicated record would fail ApplyRecord (the
// node id already exists) and a gap would fail the contiguity check, so
// convergence without a "failed" follower state is a strong property.

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
)

// copyDir snapshots a log directory file-by-file — the crash image.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// swapHandler lets a test "kill" and "restart" the leader's HTTP face while
// the follower keeps the same URL: nil means down (502), non-nil serves.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	if h == nil {
		http.Error(w, "leader down", http.StatusBadGateway)
		return
	}
	h.ServeHTTP(w, r)
}

// leaderMux wires a fresh Leader over kb onto a new mux.
func leaderMux(t *testing.T, kb *core.KnowledgeBase) *http.ServeMux {
	t.Helper()
	ld, err := NewLeader(kb, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	ld.Register(mux)
	return mux
}

func TestFaultFollowerCrashMidStream(t *testing.T) {
	leader, srv := openLeader(t, t.TempDir())
	fdir := t.TempDir()
	fol, err := OpenFollower(fdir, srv.URL, core.Config{}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	fol.Start()

	// Write while the follower streams; crash it once it is mid-way.
	for i := 0; i < 120; i++ {
		writeDoc(t, leader, i)
	}
	deadline := time.Now().Add(15 * time.Second)
	for fol.KB().ReplicaAppliedSeq() < 40 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never reached seq 40 (at %d)", fol.KB().ReplicaAppliedSeq())
		}
		time.Sleep(time.Millisecond)
	}
	image := copyDir(t, fdir) // the kill: state at an arbitrary mid-stream instant
	fol.Stop()
	_ = fol.Close()

	// More writes land while the follower is "down".
	for i := 120; i < 150; i++ {
		writeDoc(t, leader, i)
	}

	// Restart from the crash image: recovery finds the durable apply cursor
	// and streaming resumes from exactly there.
	fol2, err := OpenFollower(image, srv.URL, core.Config{}, testOpts())
	if err != nil {
		t.Fatalf("restart from crash image: %v", err)
	}
	defer fol2.Close()
	if got := fol2.m.bootstraps.Value(); got != 0 {
		t.Fatalf("crash restart re-bootstrapped (%d)", got)
	}
	fol2.Start()
	waitCaughtUp(t, fol2, leader)
	if got, want := export(t, fol2.KB()), export(t, leader); got != want {
		t.Fatal("follower export differs from leader after follower crash/restart")
	}
	if fol2.KB().ReplicaAppliedSeq() != leader.WAL().LastSeq() {
		t.Fatal("cursor mismatch after convergence")
	}
}

func TestFaultLeaderCrashMidPush(t *testing.T) {
	ldir := t.TempDir()
	leader1, _, err := openDurableLeaderKB(ldir)
	if err != nil {
		t.Fatal(err)
	}
	sw := &swapHandler{}
	sw.set(leaderMux(t, leader1))
	srv := httptest.NewServer(sw)
	defer srv.Close()

	fdir := t.TempDir()
	fol, err := OpenFollower(fdir, srv.URL, core.Config{}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	fol.Start()

	for i := 0; i < 80; i++ {
		writeDoc(t, leader1, i)
	}
	deadline := time.Now().Add(15 * time.Second)
	for fol.KB().ReplicaAppliedSeq() < 30 {
		if time.Now().After(deadline) {
			t.Fatal("follower never got going")
		}
		time.Sleep(time.Millisecond)
	}

	// Kill the leader mid-push: connections start failing, and the process
	// state is whatever the log held at that instant.
	sw.set(nil)
	image := copyDir(t, ldir)
	if err := leader1.Close(); err != nil {
		t.Fatal(err)
	}

	// The follower retries with backoff; it must not reach a terminal state
	// from a down leader.
	time.Sleep(50 * time.Millisecond)
	if st := fol.State(); st != "streaming" {
		t.Fatalf("follower state while leader down = %q", st)
	}

	// Restart the leader from the crash image and keep writing.
	leader2, _, err := openDurableLeaderKB(image)
	if err != nil {
		t.Fatalf("leader restart: %v", err)
	}
	defer leader2.Close()
	sw.set(leaderMux(t, leader2))
	for i := 80; i < 120; i++ {
		writeDoc(t, leader2, i)
	}

	waitCaughtUp(t, fol, leader2)
	if got, want := export(t, fol.KB()), export(t, leader2); got != want {
		t.Fatal("follower export differs from leader after leader crash/restart")
	}
}

// TestFaultCrashBothSidesConverge kills the follower mid-stream, then the
// leader mid-push, restarts both from their crash images, and requires
// byte-identical convergence — the full satellite scenario in one run.
func TestFaultCrashBothSidesConverge(t *testing.T) {
	ldir := t.TempDir()
	leader1, _, err := openDurableLeaderKB(ldir)
	if err != nil {
		t.Fatal(err)
	}
	sw := &swapHandler{}
	sw.set(leaderMux(t, leader1))
	srv := httptest.NewServer(sw)
	defer srv.Close()

	fdir := t.TempDir()
	fol1, err := OpenFollower(fdir, srv.URL, core.Config{}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	fol1.Start()

	for i := 0; i < 100; i++ {
		writeDoc(t, leader1, i)
	}
	deadline := time.Now().Add(15 * time.Second)
	for fol1.KB().ReplicaAppliedSeq() < 30 {
		if time.Now().After(deadline) {
			t.Fatal("follower never got going")
		}
		time.Sleep(time.Millisecond)
	}

	// Crash the follower mid-stream.
	fimage := copyDir(t, fdir)
	_ = fol1.Close()

	// Crash the leader mid-push (more writes first, so there is a push).
	for i := 100; i < 130; i++ {
		writeDoc(t, leader1, i)
	}
	sw.set(nil)
	limage := copyDir(t, ldir)
	if err := leader1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart both.
	leader2, _, err := openDurableLeaderKB(limage)
	if err != nil {
		t.Fatal(err)
	}
	defer leader2.Close()
	sw.set(leaderMux(t, leader2))
	fol2, err := OpenFollower(fimage, srv.URL, core.Config{}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer fol2.Close()
	fol2.Start()

	for i := 130; i < 160; i++ {
		writeDoc(t, leader2, i)
	}
	waitCaughtUp(t, fol2, leader2)
	if got, want := export(t, fol2.KB()), export(t, leader2); got != want {
		t.Fatal("exports differ after crashing and restarting both sides")
	}
}

// openDurableLeaderKB opens a durable KB without the test-server wrapper, so
// crash-image restarts control the lifecycle explicitly.
func openDurableLeaderKB(dir string) (*core.KnowledgeBase, *wal.RecoveryInfo, error) {
	return core.OpenDurable(dir, core.Config{}, wal.Options{Fsync: wal.FsyncAlways})
}
