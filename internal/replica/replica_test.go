package replica

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/value"
	"repro/internal/wal"
)

// testOpts shrinks every timing knob so tests converge in milliseconds.
func testOpts() Options {
	return Options{
		WAL:               wal.Options{Fsync: wal.FsyncAlways},
		PollInterval:      2 * time.Millisecond,
		HeartbeatInterval: 10 * time.Millisecond,
		StreamWindow:      250 * time.Millisecond,
		BackoffBase:       5 * time.Millisecond,
		BackoffMax:        25 * time.Millisecond,
		BreakerThreshold:  3,
		BreakerCooldown:   30 * time.Millisecond,
		BatchSize:         64,
	}
}

// openLeader opens a durable leader KB in dir and serves its replication
// endpoints from an httptest server.
func openLeader(t *testing.T, dir string) (*core.KnowledgeBase, *httptest.Server) {
	t.Helper()
	kb, _, err := core.OpenDurable(dir, core.Config{}, wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	t.Cleanup(func() { _ = kb.Close() })
	ld, err := NewLeader(kb, testOpts())
	if err != nil {
		t.Fatalf("NewLeader: %v", err)
	}
	mux := http.NewServeMux()
	ld.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return kb, srv
}

func writeDoc(t *testing.T, kb *core.KnowledgeBase, i int) {
	t.Helper()
	if _, err := kb.WriteTx(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Doc"}, map[string]value.Value{"i": value.Int(int64(i))})
		return err
	}); err != nil {
		t.Fatalf("leader write %d: %v", i, err)
	}
}

func export(t *testing.T, kb *core.KnowledgeBase) string {
	t.Helper()
	var b strings.Builder
	if err := kb.SaveGraph(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// waitCaughtUp polls until the follower's apply cursor reaches the leader's
// current last sequence number.
func waitCaughtUp(t *testing.T, f *Follower, leader *core.KnowledgeBase) {
	t.Helper()
	target := leader.WAL().LastSeq()
	deadline := time.Now().Add(15 * time.Second)
	for f.KB().ReplicaAppliedSeq() < target {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at %d, leader at %d (state %s)",
				f.KB().ReplicaAppliedSeq(), target, f.State())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFollowerBootstrapsAndStreams(t *testing.T) {
	ldir := t.TempDir()
	leader, srv := openLeader(t, ldir)
	for i := 0; i < 20; i++ {
		writeDoc(t, leader, i)
	}

	fol, err := OpenFollower(t.TempDir(), srv.URL, core.Config{}, testOpts())
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	defer fol.Close()
	// The bootstrap snapshot alone already covers the leader's state.
	if got := fol.KB().ReplicaAppliedSeq(); got != 20 {
		t.Fatalf("bootstrap cursor = %d, want 20", got)
	}
	if fol.KB().Role() != "follower" {
		t.Fatalf("role = %q", fol.KB().Role())
	}

	fol.Start()
	// Writes made while streaming arrive without re-bootstrap.
	for i := 20; i < 50; i++ {
		writeDoc(t, leader, i)
	}
	waitCaughtUp(t, fol, leader)
	if got, want := export(t, fol.KB()), export(t, leader); got != want {
		t.Fatal("follower export differs from leader")
	}

	// Writes on the follower are rejected with the typed error.
	if _, err := fol.KB().Execute("CREATE (:X)", nil); !errors.Is(err, core.ErrFollower) {
		t.Fatalf("follower accepted a write: %v", err)
	}

	// Lag reads as caught up: no record lag, and the staleness clock was
	// refreshed by a recent heartbeat.
	if recs, secs := fol.Lag(); recs != 0 || secs > 2 {
		t.Fatalf("caught-up lag = %d records / %.3fs", recs, secs)
	}
	st := fol.Status()
	if st.State != "streaming" || st.AppliedSeq != leader.WAL().LastSeq() {
		t.Fatalf("status = %+v", st)
	}
}

func TestInMemoryFollower(t *testing.T) {
	leader, srv := openLeader(t, t.TempDir())
	for i := 0; i < 10; i++ {
		writeDoc(t, leader, i)
	}
	fol, err := OpenFollower("", srv.URL, core.Config{}, testOpts())
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	defer fol.Close()
	fol.Start()
	for i := 10; i < 25; i++ {
		writeDoc(t, leader, i)
	}
	waitCaughtUp(t, fol, leader)
	if got, want := export(t, fol.KB()), export(t, leader); got != want {
		t.Fatal("in-memory follower export differs from leader")
	}
}

func TestFollowerRestartResumesWithoutRebootstrap(t *testing.T) {
	leader, srv := openLeader(t, t.TempDir())
	for i := 0; i < 10; i++ {
		writeDoc(t, leader, i)
	}
	fdir := t.TempDir()
	fol, err := OpenFollower(fdir, srv.URL, core.Config{}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	fol.Start()
	waitCaughtUp(t, fol, leader)
	if err := fol.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// More leader writes while the follower is down.
	for i := 10; i < 30; i++ {
		writeDoc(t, leader, i)
	}

	fol2, err := OpenFollower(fdir, srv.URL, core.Config{}, testOpts())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fol2.Close()
	// The durable cursor survived; no snapshot was fetched again.
	if got := fol2.m.bootstraps.Value(); got != 0 {
		t.Fatalf("restart re-bootstrapped (%d times)", got)
	}
	if got := fol2.KB().ReplicaAppliedSeq(); got != 10 {
		t.Fatalf("restart cursor = %d, want 10", got)
	}
	fol2.Start()
	waitCaughtUp(t, fol2, leader)
	if got, want := export(t, fol2.KB()), export(t, leader); got != want {
		t.Fatal("follower export differs after restart")
	}
}

func TestFollowerRebootstrapsAfterLeaderTruncation(t *testing.T) {
	leader, srv := openLeader(t, t.TempDir())
	for i := 0; i < 5; i++ {
		writeDoc(t, leader, i)
	}
	fdir := t.TempDir()
	fol, err := OpenFollower(fdir, srv.URL, core.Config{}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	fol.Start()
	waitCaughtUp(t, fol, leader)
	if err := fol.Close(); err != nil {
		t.Fatal(err)
	}

	// While the follower is down, the leader moves on AND checkpoints: the
	// records the follower would need next are compacted away.
	for i := 5; i < 15; i++ {
		writeDoc(t, leader, i)
	}
	if err := leader.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	fol2, err := OpenFollower(fdir, srv.URL, core.Config{}, testOpts())
	if err != nil {
		t.Fatalf("reopen after truncation: %v", err)
	}
	defer fol2.Close()
	if got := fol2.m.bootstraps.Value(); got != 1 {
		t.Fatalf("bootstraps = %d, want 1 (re-seed after truncation)", got)
	}
	fol2.Start()
	writeDoc(t, leader, 15)
	waitCaughtUp(t, fol2, leader)
	if got, want := export(t, fol2.KB()), export(t, leader); got != want {
		t.Fatal("follower export differs after re-bootstrap")
	}
}

func TestFollowerReportsLagWhileLeaderUnreachable(t *testing.T) {
	leader, srv := openLeader(t, t.TempDir())
	for i := 0; i < 5; i++ {
		writeDoc(t, leader, i)
	}
	fol, err := OpenFollower(t.TempDir(), srv.URL, core.Config{}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	fol.Start()
	waitCaughtUp(t, fol, leader)

	// One more heartbeat cycle so the follower has a fresh leaderSeq, then
	// take the leader down and keep writing into its log directly — the
	// follower cannot see these, so record lag must stay at 0 only until a
	// reconnect would have told it otherwise; the robust observable here is
	// that the loop keeps retrying without reaching a terminal state.
	srv.Close()
	time.Sleep(50 * time.Millisecond)
	if st := fol.State(); st != "streaming" {
		t.Fatalf("state after leader loss = %q, want streaming (retrying)", st)
	}
	// The staleness clock keeps ticking while the leader is unreachable —
	// this is what -max-lag gates /healthz on.
	if _, secs := fol.Lag(); secs < 0.04 {
		t.Fatalf("lag seconds = %.3f after 50ms of leader loss", secs)
	}
}

// TestConcurrentLeaderWritesWhileStreaming hammers the leader with parallel
// writers while a follower streams; run with -race. The follower must end
// byte-identical, proving the cursor/rotation/apply path is race-free and
// exactly-once under contention.
func TestConcurrentLeaderWritesWhileStreaming(t *testing.T) {
	leader, srv := openLeader(t, t.TempDir())
	fol, err := OpenFollower(t.TempDir(), srv.URL, core.Config{}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	fol.Start()

	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				writeDoc(t, leader, w*perWriter+i)
				if i%20 == 19 {
					if _, err := leader.WAL().Cut(); err != nil {
						t.Errorf("cut: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	waitCaughtUp(t, fol, leader)
	if got, want := export(t, fol.KB()), export(t, leader); got != want {
		t.Fatal("follower export differs under concurrent load")
	}
}
