// Package replica is WAL-shipping read replication: one leader rkm-server
// streams its write-ahead-log record stream over HTTP to any number of
// followers, each of which mirrors the records into its own graph and log
// and serves all snapshot reads locally. Writes stay on the leader; reads
// scale horizontally at bounded staleness (the follower's lag is exported as
// rkm_replica_lag_records / rkm_replica_lag_seconds and can gate /healthz).
//
// The protocol has three leader endpoints (Leader.Register):
//
//   - GET /wal/status — role, protocol version, last/durable sequence
//     numbers and the earliest streamable position (TailStart).
//   - GET /wal/snapshot — a graph Export pinned to an exact log position,
//     carried in the X-Rkm-Snapshot-Seq header: every record at or below it
//     is in the snapshot, every later one is streamable. Followers bootstrap
//     from this.
//   - GET /wal/stream?after=<seq> — a chunked NDJSON stream of records
//     after the given sequence number, in order, each chunk stamped with the
//     leader's durable position so the follower can measure lag. Positions
//     compacted away by a checkpoint answer 410 Gone plus the tailStart to
//     re-bootstrap from.
//
// The Follower ties the loop together: it bootstraps (snapshot into a fresh
// durable directory via wal.SeedSnapshot, or straight into memory), applies
// the tail through core.ApplyReplicated — which mirrors leader sequence
// numbers into the follower's own log, making the follower's wal.LastSeq the
// durable apply cursor — and reconnects with capped backoff and a cooldown
// breaker, resuming exactly where the cursor points after either side
// crashes. At-least-once delivery plus the strictly sequential apply cursor
// yields exactly-once application.
package replica

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/wal"
)

// StreamVersion is the wire-protocol version; leader and follower must
// match exactly.
const StreamVersion = 1

// Header names of the replication protocol.
const (
	// HeaderSnapshotSeq carries the log position a /wal/snapshot response is
	// pinned to.
	HeaderSnapshotSeq = "X-Rkm-Snapshot-Seq"
	// HeaderStreamVersion carries StreamVersion on every response.
	HeaderStreamVersion = "X-Rkm-Stream-Version"
)

// chunk is one NDJSON line of /wal/stream: a batch of consecutive records
// (empty for heartbeats) plus the leader's durable sequence number at send
// time, the reference point for follower lag.
type chunk struct {
	LeaderSeq uint64        `json:"leaderSeq"`
	Records   []*wal.Record `json:"recs,omitempty"`
}

// statusDoc is the /wal/status response body.
type statusDoc struct {
	Role       string `json:"role"`
	Version    int    `json:"version"`
	LastSeq    uint64 `json:"lastSeq"`
	DurableSeq uint64 `json:"durableSeq"`
	TailStart  uint64 `json:"tailStart"`
}

// gone is the 410 response body of a truncated stream position.
type gone struct {
	Error     string `json:"error"`
	TailStart uint64 `json:"tailStart"`
}

// HTTPError is a leader response with an unexpected status.
type HTTPError struct {
	Status int
	Msg    string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("replica: leader returned %d: %s", e.Status, strings.TrimSpace(e.Msg))
}

// TruncatedStreamError reports that the follower's apply cursor precedes the
// leader's retained log tail (a leader checkpoint compacted it away): the
// follower must re-bootstrap from a fresh snapshot. OpenFollower does this
// automatically on startup; mid-run it is terminal for the streaming loop.
type TruncatedStreamError struct {
	// After is the cursor position the follower asked to stream from.
	After uint64
	// TailStart is the earliest position the leader can still serve.
	TailStart uint64
}

func (e *TruncatedStreamError) Error() string {
	return fmt.Sprintf("replica: leader compacted records after %d (tail starts at %d); re-bootstrap required",
		e.After, e.TailStart)
}

// ErrVersionMismatch reports a leader speaking a different protocol version.
var ErrVersionMismatch = errors.New("replica: leader stream version mismatch")

// Options tunes both sides of the replication wire. The zero value gives
// production defaults; tests shrink the timing knobs.
type Options struct {
	// WAL configures the durable follower's local log (fsync policy, segment
	// size). Ignored by in-memory followers and by the leader.
	WAL wal.Options
	// RequestTimeout bounds the point requests (status, snapshot); the
	// stream itself is long-lived and bounded by StreamWindow instead
	// (default 15s).
	RequestTimeout time.Duration
	// BatchSize caps the records per stream chunk (default 256).
	BatchSize int
	// PollInterval is how long the leader's stream handler sleeps when it is
	// caught up with the durable watermark (default 20ms).
	PollInterval time.Duration
	// HeartbeatInterval is how often an idle stream still sends an empty
	// chunk, so the follower keeps an up-to-date lag reference and detects
	// dead connections (default 500ms).
	HeartbeatInterval time.Duration
	// StreamWindow bounds one stream response; the follower transparently
	// reconnects, picking up any retention change (default 30s).
	StreamWindow time.Duration
	// BackoffBase is the follower's delay after the first failed connect or
	// stream; it doubles per consecutive failure (default 50ms).
	BackoffBase time.Duration
	// BackoffMax caps the backoff delay (default 2s).
	BackoffMax time.Duration
	// BreakerThreshold is the consecutive-failure count after which the
	// follower stops hammering the leader and cools down (default 3).
	BreakerThreshold int
	// BreakerCooldown is the cooldown after BreakerThreshold consecutive
	// failures (default 5s).
	BreakerCooldown time.Duration
	// Client overrides the HTTP client (tests inject httptest clients).
	Client *http.Client
	// Now overrides the clock for deterministic tests (default time.Now).
	Now func() time.Time
	// Logf receives replication diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 15 * time.Second
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 20 * time.Millisecond
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.StreamWindow <= 0 {
		o.StreamWindow = 30 * time.Second
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}
