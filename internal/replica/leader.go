package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
)

// Leader serves a durable knowledge base's write-ahead log to followers:
// status, bootstrap snapshots pinned to exact log positions, and the chunked
// record stream. It never blocks the leader's writers — snapshots pin a
// lock-free view, and the stream reads segment files through wal.Cursor,
// which takes no lock during disk I/O. A follower knowledge base can itself
// be a Leader (cascading replication): it re-serves the records it applied.
type Leader struct {
	kb   *core.KnowledgeBase
	opts Options
	m    leaderMetrics
}

// NewLeader wraps kb, which must be durable (the log is the replication
// stream), and registers the leader-side rkm_replica_* instruments on its
// metrics registry.
func NewLeader(kb *core.KnowledgeBase, opts Options) (*Leader, error) {
	if !kb.Durable() {
		return nil, errors.New("replica: leader requires a durable knowledge base")
	}
	ld := &Leader{kb: kb, opts: opts.withDefaults()}
	ld.wireMetrics(kb.Metrics())
	return ld, nil
}

// Register mounts the replication endpoints on mux.
func (ld *Leader) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /wal/status", ld.handleStatus)
	mux.HandleFunc("GET /wal/snapshot", ld.handleSnapshot)
	mux.HandleFunc("GET /wal/stream", ld.handleStream)
}

func (ld *Leader) handleStatus(w http.ResponseWriter, r *http.Request) {
	l := ld.kb.WAL()
	tail, err := l.TailStart()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set(HeaderStreamVersion, strconv.Itoa(StreamVersion))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(statusDoc{
		Role:       ld.kb.Role(),
		Version:    StreamVersion,
		LastSeq:    l.LastSeq(),
		DurableSeq: l.DurableSeq(),
		TailStart:  tail,
	})
}

// handleSnapshot streams a graph Export pinned to an exact log position. The
// barrier inside ReplicaSnapshotView syncs the log, so a follower loading
// this snapshot can immediately stream from the advertised position.
func (ld *Leader) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	view, seq, err := ld.kb.ReplicaSnapshotView()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer view.Rollback()
	w.Header().Set(HeaderStreamVersion, strconv.Itoa(StreamVersion))
	w.Header().Set(HeaderSnapshotSeq, strconv.FormatUint(seq, 10))
	w.Header().Set("Content-Type", "application/json")
	if err := view.Export(w); err != nil {
		// Headers are gone; the export is torn. The follower's JSON decode
		// fails and it retries.
		ld.opts.Logf("replica: snapshot export: %v", err)
		return
	}
	ld.m.snapshotsServed.Inc()
}

// handleStream ships records after ?after=<seq> as an NDJSON chunk stream:
// batches as they become durable, heartbeats while idle, for at most
// StreamWindow per request (the follower reconnects). A position compacted
// away by a checkpoint answers 410 Gone with the tailStart to re-bootstrap
// from — detected on the first read, before the response status is written.
func (ld *Leader) handleStream(w http.ResponseWriter, r *http.Request) {
	after, err := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad after parameter: %v", err), http.StatusBadRequest)
		return
	}
	cur := ld.kb.WAL().Cursor(after)
	defer cur.Close()

	recs, err := cur.Next(ld.opts.BatchSize)
	if err != nil {
		ld.streamError(w, err)
		return
	}
	ld.m.streams.Inc()
	w.Header().Set(HeaderStreamVersion, strconv.Itoa(StreamVersion))
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	deadline := ld.opts.Now().Add(ld.opts.StreamWindow)
	lastSent := ld.opts.Now()
	for {
		now := ld.opts.Now()
		if len(recs) > 0 || now.Sub(lastSent) >= ld.opts.HeartbeatInterval {
			if err := enc.Encode(chunk{LeaderSeq: ld.kb.WAL().DurableSeq(), Records: recs}); err != nil {
				return // follower hung up
			}
			if flusher != nil {
				flusher.Flush()
			}
			ld.m.shipped.Add(int64(len(recs)))
			lastSent = now
		}
		if now.After(deadline) {
			return
		}
		if len(recs) == 0 {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(ld.opts.PollInterval):
			}
		}
		if recs, err = cur.Next(ld.opts.BatchSize); err != nil {
			// Mid-stream truncation or read error: the status line is sent,
			// so cut the connection; the follower's reconnect gets the 410.
			ld.opts.Logf("replica: stream after %d: %v", after, err)
			return
		}
	}
}

// streamError maps a first-read cursor error onto the response status.
func (ld *Leader) streamError(w http.ResponseWriter, err error) {
	var te *wal.TruncatedError
	if errors.As(err, &te) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGone)
		json.NewEncoder(w).Encode(gone{Error: te.Error(), TailStart: te.TailStart})
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}
