package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
)

// Follower streams a leader's write-ahead log into a local follower
// knowledge base and keeps it within bounded staleness. Construct with
// OpenFollower (which bootstraps or resumes), then Start the streaming loop;
// the wrapped KB serves reads the whole time.
type Follower struct {
	kb        *core.KnowledgeBase
	leaderURL string
	opts      Options
	client    *http.Client
	m         followerMetrics

	// leaderSeq is the leader's durable position as of the last received
	// chunk; leaderSeq - ReplicaAppliedSeq is the record lag.
	leaderSeq atomic.Uint64
	// caughtUp is the wall time (UnixNano) the follower was last fully
	// caught up with leaderSeq; the time lag reads from it.
	caughtUp atomic.Int64

	mu    sync.Mutex
	state string // "streaming", "stopped", "failed", "bootstrap-required"

	startOnce sync.Once
	stopOnce  sync.Once
	cancel    context.CancelFunc
	done      chan struct{}
}

// FollowerStatus is a point-in-time view of the replication loop.
type FollowerStatus struct {
	LeaderURL  string  `json:"leaderUrl"`
	State      string  `json:"state"`
	AppliedSeq uint64  `json:"appliedSeq"`
	LeaderSeq  uint64  `json:"leaderSeq"`
	LagRecords uint64  `json:"lagRecords"`
	LagSeconds float64 `json:"lagSeconds"`
}

// OpenFollower builds a follower of the leader at leaderURL.
//
// With dataDir == "" the follower is in-memory: it always bootstraps from a
// fresh leader snapshot (the leader must be reachable). With a dataDir the
// follower is durable: an empty directory is seeded from a leader snapshot;
// a directory with state simply reopens and resumes from its own recovered
// apply cursor — unless that cursor has fallen behind the leader's retained
// tail (the leader checkpointed past it), in which case the local state is
// discarded and re-seeded from a fresh snapshot.
//
// OpenFollower only prepares the knowledge base; call Start to begin
// streaming, and Close when done.
func OpenFollower(dataDir, leaderURL string, cfg core.Config, opts Options) (*Follower, error) {
	opts = opts.withDefaults()
	f := &Follower{
		leaderURL: trimURL(leaderURL),
		opts:      opts,
		client:    opts.Client,
		state:     "stopped",
		done:      make(chan struct{}),
	}
	if f.client == nil {
		f.client = &http.Client{}
	}

	if dataDir == "" {
		st, err := f.fetchStatus(context.Background())
		if err != nil {
			return nil, fmt.Errorf("replica: leader status: %w", err)
		}
		if st.Version != StreamVersion {
			return nil, fmt.Errorf("%w: leader speaks v%d, follower v%d", ErrVersionMismatch, st.Version, StreamVersion)
		}
		kb := core.NewFollower(cfg)
		snap, seq, err := f.fetchSnapshot(context.Background())
		if err != nil {
			return nil, fmt.Errorf("replica: bootstrap: %w", err)
		}
		if err := kb.BootstrapReplica(bytes.NewReader(snap), seq); err != nil {
			return nil, fmt.Errorf("replica: bootstrap: %w", err)
		}
		f.kb = kb
		f.wireMetrics()
		f.m.bootstraps.Inc()
		f.caughtUp.Store(opts.Now().UnixNano())
		return f, nil
	}

	has, err := wal.HasState(dataDir)
	if err != nil {
		return nil, err
	}
	st, serr := f.fetchStatus(context.Background())
	if serr == nil && st.Version != StreamVersion {
		return nil, fmt.Errorf("%w: leader speaks v%d, follower v%d", ErrVersionMismatch, st.Version, StreamVersion)
	}
	bootstrapped := false
	if !has {
		// Fresh directory: seed it with a leader snapshot so recovery below
		// starts from the snapshot instead of replaying from zero.
		if serr != nil {
			return nil, fmt.Errorf("replica: bootstrap needs the leader: %w", serr)
		}
		snap, seq, err := f.fetchSnapshot(context.Background())
		if err != nil {
			return nil, fmt.Errorf("replica: bootstrap: %w", err)
		}
		if err := wal.SeedSnapshot(dataDir, seq, snap); err != nil {
			return nil, err
		}
		bootstrapped = true
	}
	kb, _, err := core.OpenFollowerDurable(dataDir, cfg, opts.WAL)
	if err != nil {
		return nil, err
	}
	if serr == nil && kb.ReplicaAppliedSeq() < st.TailStart {
		// The leader compacted past our cursor while we were down. Local
		// state is unrecoverable for streaming; start over from a snapshot.
		opts.Logf("replica: cursor %d behind leader tail %d; re-bootstrapping", kb.ReplicaAppliedSeq(), st.TailStart)
		if err := kb.Close(); err != nil {
			return nil, err
		}
		if err := wal.RemoveState(dataDir); err != nil {
			return nil, err
		}
		snap, seq, err := f.fetchSnapshot(context.Background())
		if err != nil {
			return nil, fmt.Errorf("replica: re-bootstrap: %w", err)
		}
		if err := wal.SeedSnapshot(dataDir, seq, snap); err != nil {
			return nil, err
		}
		if kb, _, err = core.OpenFollowerDurable(dataDir, cfg, opts.WAL); err != nil {
			return nil, err
		}
		bootstrapped = true
	}
	f.kb = kb
	f.wireMetrics()
	if bootstrapped {
		f.m.bootstraps.Inc()
	}
	f.caughtUp.Store(opts.Now().UnixNano())
	return f, nil
}

func trimURL(u string) string {
	for len(u) > 0 && u[len(u)-1] == '/' {
		u = u[:len(u)-1]
	}
	return u
}

// KB returns the follower knowledge base (reads only; writes fail with
// core.ErrFollower).
func (f *Follower) KB() *core.KnowledgeBase { return f.kb }

// Start launches the streaming loop. Safe to call once; returns immediately.
func (f *Follower) Start() {
	f.startOnce.Do(func() {
		ctx, cancel := context.WithCancel(context.Background())
		f.cancel = cancel
		f.setState("streaming")
		go f.run(ctx)
	})
}

// Stop halts the streaming loop and waits for it to exit. The knowledge base
// stays open and keeps serving (increasingly stale) reads. Idempotent.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() {
		if f.cancel != nil {
			f.cancel()
			<-f.done
		} else {
			close(f.done) // never started
		}
		f.setState("stopped")
	})
}

// Close stops the streaming loop and closes the knowledge base.
func (f *Follower) Close() error {
	f.Stop()
	return f.kb.Close()
}

func (f *Follower) setState(s string) {
	f.mu.Lock()
	f.state = s
	f.mu.Unlock()
}

// State reports the streaming loop's state: "streaming", "stopped", "failed"
// (in-memory divergence; restart the process), or "bootstrap-required" (the
// leader compacted past our cursor mid-run; restart re-bootstraps).
func (f *Follower) State() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state
}

// Lag returns how far the follower trails the leader. Records is the
// leader's durable position (as of the last received chunk) minus the apply
// cursor. Seconds is the time since the follower last confirmed it was fully
// caught up — heartbeats refresh it about every HeartbeatInterval while the
// stream is healthy, and it keeps growing while the leader is unreachable,
// which makes it the staleness bound -max-lag gates /healthz on: a follower
// cut off from its leader cannot know the record lag, but it always knows
// how old its view is.
func (f *Follower) Lag() (records uint64, seconds float64) {
	applied := f.kb.ReplicaAppliedSeq()
	leader := f.leaderSeq.Load()
	if leader > applied {
		records = leader - applied
	}
	seconds = f.opts.Now().Sub(time.Unix(0, f.caughtUp.Load())).Seconds()
	if seconds < 0 {
		seconds = 0
	}
	return records, seconds
}

// Status returns a point-in-time view for /stats and diagnostics.
func (f *Follower) Status() FollowerStatus {
	recs, secs := f.Lag()
	return FollowerStatus{
		LeaderURL:  f.leaderURL,
		State:      f.State(),
		AppliedSeq: f.kb.ReplicaAppliedSeq(),
		LeaderSeq:  f.leaderSeq.Load(),
		LagRecords: recs,
		LagSeconds: secs,
	}
}

// run is the reconnect loop: stream until the window closes or an error
// drops the connection, back off on consecutive failures (cooling down after
// BreakerThreshold of them), stop for good on terminal conditions.
func (f *Follower) run(ctx context.Context) {
	defer close(f.done)
	failures := 0
	for {
		if ctx.Err() != nil {
			return
		}
		err := f.streamOnce(ctx)
		switch {
		case err == nil:
			failures = 0
			continue
		case ctx.Err() != nil:
			return
		case errors.Is(err, core.ErrReplicaDiverged):
			// The local log is ahead of the in-memory graph; applying more
			// would compound the damage. A process restart recovers cleanly.
			f.opts.Logf("replica: %v", err)
			f.setState("failed")
			return
		}
		var te *TruncatedStreamError
		if errors.As(err, &te) {
			f.opts.Logf("replica: %v", te)
			f.setState("bootstrap-required")
			return
		}
		failures++
		f.m.streamErrors.Inc()
		f.opts.Logf("replica: stream attempt failed (%v), retrying", err)
		delay := f.backoff(failures)
		if failures >= f.opts.BreakerThreshold {
			delay = f.opts.BreakerCooldown
			failures = 0
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(delay):
		}
	}
}

func (f *Follower) backoff(failures int) time.Duration {
	d := f.opts.BackoffBase
	for i := 1; i < failures && d < f.opts.BackoffMax; i++ {
		d *= 2
	}
	if d > f.opts.BackoffMax {
		d = f.opts.BackoffMax
	}
	return d
}

// streamOnce opens one stream request at the current apply cursor and
// applies chunks until the leader closes the window (nil) or the connection
// errors. A 410 maps to *TruncatedStreamError.
func (f *Follower) streamOnce(ctx context.Context) error {
	after := f.kb.ReplicaAppliedSeq()
	url := fmt.Sprintf("%s/wal/stream?after=%d", f.leaderURL, after)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		var g gone
		if err := json.NewDecoder(resp.Body).Decode(&g); err != nil {
			return &TruncatedStreamError{After: after}
		}
		return &TruncatedStreamError{After: after, TailStart: g.TailStart}
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &HTTPError{Status: resp.StatusCode, Msg: string(msg)}
	}
	if v := resp.Header.Get(HeaderStreamVersion); v != "" && v != strconv.Itoa(StreamVersion) {
		return fmt.Errorf("%w: leader speaks v%s", ErrVersionMismatch, v)
	}
	f.m.connects.Inc()

	dec := json.NewDecoder(resp.Body)
	for {
		var ch chunk
		if err := dec.Decode(&ch); err != nil {
			if err == io.EOF {
				return nil // window closed; reconnect
			}
			return err
		}
		if ch.LeaderSeq > f.leaderSeq.Load() {
			f.leaderSeq.Store(ch.LeaderSeq)
		}
		if len(ch.Records) > 0 {
			// Drop any prefix a reconnect redelivered; apply is exactly-once.
			applied := f.kb.ReplicaAppliedSeq()
			recs := ch.Records
			for len(recs) > 0 && recs[0].Seq <= applied {
				recs = recs[1:]
			}
			if len(recs) > 0 {
				t0 := time.Now()
				err := f.kb.ApplyReplicated(recs)
				f.m.applySeconds.ObserveSince(t0)
				if err != nil {
					return err
				}
				f.m.applied.Add(int64(len(recs)))
				f.m.batches.Inc()
			}
		}
		if f.kb.ReplicaAppliedSeq() >= f.leaderSeq.Load() {
			f.caughtUp.Store(f.opts.Now().UnixNano())
		}
	}
}

// fetchStatus asks the leader for its stream status.
func (f *Follower) fetchStatus(ctx context.Context) (*statusDoc, error) {
	ctx, cancel := context.WithTimeout(ctx, f.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.leaderURL+"/wal/status", nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, &HTTPError{Status: resp.StatusCode, Msg: string(msg)}
	}
	var st statusDoc
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// fetchSnapshot downloads a bootstrap snapshot and the log position it
// covers.
func (f *Follower) fetchSnapshot(ctx context.Context) ([]byte, uint64, error) {
	ctx, cancel := context.WithTimeout(ctx, f.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.leaderURL+"/wal/snapshot", nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, 0, &HTTPError{Status: resp.StatusCode, Msg: string(msg)}
	}
	seq, err := strconv.ParseUint(resp.Header.Get(HeaderSnapshotSeq), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("bad %s header: %w", HeaderSnapshotSeq, err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return body, seq, nil
}
