package fednet

import (
	"sync"
	"time"
)

// breakerState enumerates the circuit-breaker states. The numeric values
// are exported as the rkm_fed_breaker_state gauge, ordered by severity.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerHalfOpen
	breakerOpen
)

// String returns the conventional state name.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	case breakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// breaker is a per-peer circuit breaker: after threshold consecutive
// failures the circuit opens and pushes to the peer are refused locally
// (fail-fast, no network traffic) until cooldown elapses; then a single
// half-open probe is let through — its success closes the circuit, its
// failure reopens it for another cooldown.
type breaker struct {
	now       func() time.Time
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{now: now, threshold: threshold, cooldown: cooldown}
}

// allow reports whether a push attempt may proceed. In the open state it
// transitions to half-open once the cooldown has elapsed and admits exactly
// one probe; concurrent callers are refused until that probe settles.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	case breakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// success records a successful push and closes the circuit.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
}

// failure records a failed push: a half-open probe reopens the circuit
// immediately, a closed circuit opens after threshold consecutive failures.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
		}
	}
}

// current returns the state for status reports and the breaker gauge.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
