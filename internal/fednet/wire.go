package fednet

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/value"
)

// Wire protocol version, sent in every push so incompatible peers fail
// loudly instead of silently misinterpreting payloads.
const wireVersion = 1

// WireAlert is one alert on the wire. Props use the value package's tagged
// JSON encoding (value.ToJSON), so integers, datetimes and durations
// round-trip with their kinds intact.
type WireAlert struct {
	OriginID int64          `json:"originId"`
	Rule     string         `json:"rule"`
	Hub      string         `json:"hub,omitempty"`
	DateTime time.Time      `json:"dateTime"`
	Props    map[string]any `json:"props,omitempty"`
}

// PushRequest is the body of POST /fed/push: a batch of alerts from one
// origin, in ascending originId order. Delivery is at-least-once — the
// receiver deduplicates by (origin, originId), so senders retry freely.
type PushRequest struct {
	Version int         `json:"version"`
	Origin  string      `json:"origin"`
	Alerts  []WireAlert `json:"alerts"`
}

// PushResponse acknowledges a push batch. Acked is the largest originId the
// receiver now has from this origin's batch; a sender that misses the
// response simply resends and sees the batch counted under Duplicates.
type PushResponse struct {
	Applied    int   `json:"applied"`
	Duplicates int   `json:"duplicates"`
	Acked      int64 `json:"acked"`
}

// PeerStatus is one outbox row of GET /fed/status.
type PeerStatus struct {
	Peer    string `json:"peer"`
	URL     string `json:"url"`
	Acked   int64  `json:"acked"`
	Pending int    `json:"pending"`
	Breaker string `json:"breaker"`
}

// Status is the body of GET /fed/status: this node's identity, its outbox
// per peer, and what it has received from other origins.
type Status struct {
	Name         string         `json:"name"`
	Peers        []PeerStatus   `json:"peers"`
	RemoteAlerts map[string]int `json:"remoteAlerts"`
}

// toWire converts a local alert into its wire form.
func toWire(a core.Alert) WireAlert {
	w := WireAlert{
		OriginID: int64(a.ID),
		Rule:     a.Rule,
		Hub:      a.Hub,
		DateTime: a.DateTime,
	}
	if len(a.Props) > 0 {
		w.Props = make(map[string]any, len(a.Props))
		for k, v := range a.Props {
			w.Props[k] = value.ToJSON(v)
		}
	}
	return w
}

// fromWire converts a wire alert back into the core form the apply side
// consumes; Alert.ID carries the origin id.
func fromWire(w WireAlert) (core.Alert, error) {
	if w.OriginID <= 0 {
		return core.Alert{}, fmt.Errorf("fednet: alert with non-positive originId %d", w.OriginID)
	}
	a := core.Alert{
		ID:       graph.NodeID(w.OriginID),
		Rule:     w.Rule,
		Hub:      w.Hub,
		DateTime: w.DateTime,
		Props:    make(map[string]value.Value, len(w.Props)),
	}
	for k, x := range w.Props {
		v, err := value.FromJSON(x)
		if err != nil {
			return core.Alert{}, fmt.Errorf("fednet: alert %d prop %s: %w", w.OriginID, k, err)
		}
		a.Props[k] = v
	}
	return a, nil
}
