package fednet

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// faultyHandler injects failures ahead of a live receiver handler. A test
// picks a fault mode and, optionally, a request count after which the peer
// heals — which makes retry scenarios fully deterministic.
type faultyHandler struct {
	inner    http.Handler
	requests atomic.Int64
	// mode selects the injected fault for incoming requests.
	mode atomic.Int64
	// limit, when positive, heals the peer after that many requests: later
	// requests are served by the inner handler regardless of mode.
	limit atomic.Int64
}

const (
	faultNone        = iota // healthy
	faultServerError        // respond 500 without applying
	faultAckLost            // apply the batch, then sever the connection
	faultHang               // stall past the sender's request timeout
)

func (f *faultyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := f.requests.Add(1)
	mode := f.mode.Load()
	if l := f.limit.Load(); l > 0 && n > l {
		mode = faultNone
	}
	switch mode {
	case faultServerError:
		http.Error(w, "injected failure", http.StatusInternalServerError)
	case faultAckLost:
		rec := newDiscardRecorder()
		f.inner.ServeHTTP(rec, r)   // the batch commits…
		panic(http.ErrAbortHandler) // …but the ack never reaches the sender
	case faultHang:
		time.Sleep(250 * time.Millisecond)
		http.Error(w, "too late", http.StatusServiceUnavailable)
	default:
		f.inner.ServeHTTP(w, r)
	}
}

// discardRecorder is a ResponseWriter that swallows the inner handler's
// response so faultAckLost can commit the batch yet answer with a severed
// connection.
type discardRecorder struct{ header http.Header }

func newDiscardRecorder() *discardRecorder             { return &discardRecorder{header: make(http.Header)} }
func (d *discardRecorder) Header() http.Header         { return d.header }
func (d *discardRecorder) WriteHeader(int)             {}
func (d *discardRecorder) Write(p []byte) (int, error) { return len(p), nil }

// newFaultyPair wires a sender to a receiver behind a faultyHandler.
func newFaultyPair(t *testing.T, opts Options) (*Node, *faultyHandler, *Node) {
	t.Helper()
	srcKB, dstKB := newMemKB(t), newMemKB(t)
	dst, url, sh := newReceiver(t, "region", dstKB)
	fh := &faultyHandler{inner: sh.h.Load().(http.Handler)}
	sh.set(fh)
	src, err := NewNode("clinic", srcKB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Subscribe("region", url); err != nil {
		t.Fatal(err)
	}
	return src, fh, dst
}

// TestRetryAfterServerError: transient 5xx responses are retried with
// backoff until the peer heals, and the healed delivery is exactly-once.
func TestRetryAfterServerError(t *testing.T) {
	src, fh, dst := newFaultyPair(t, testOpts())
	admit(t, src.KB(), "Lombardy")
	admit(t, src.KB(), "Veneto")

	fh.mode.Store(faultServerError)
	fh.limit.Store(2) // two failed attempts, then the peer heals
	n, err := src.SyncAll(context.Background())
	if err != nil {
		t.Fatalf("sync did not survive transient 5xx: %v", err)
	}
	if n != 2 {
		t.Fatalf("delivered = %d, want 2", n)
	}
	if ids := remoteIDs(t, dst.KB()); len(ids) != 2 {
		t.Fatalf("remote alerts = %d, want 2", len(ids))
	}
	if got := fh.requests.Load(); got != 3 {
		t.Fatalf("requests = %d, want 3 (two failures + one success)", got)
	}
}

// TestClientErrorNotRetried: a 4xx rejection means the request itself is
// wrong; retrying it would spin forever.
func TestClientErrorNotRetried(t *testing.T) {
	src, fh, _ := newFaultyPair(t, testOpts())
	admit(t, src.KB(), "Lombardy")

	fh.inner = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no thanks", http.StatusBadRequest)
	})
	_, err := src.SyncAll(context.Background())
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want HTTP 400", err)
	}
	if got := fh.requests.Load(); got != 1 {
		t.Fatalf("requests = %d, want 1 (4xx must not be retried)", got)
	}
}

// TestRetryAfterTimeout: a hanging peer trips the per-request timeout; the
// retry delivers, and nothing is lost or doubled.
func TestRetryAfterTimeout(t *testing.T) {
	opts := testOpts()
	opts.RequestTimeout = 30 * time.Millisecond
	src, fh, dst := newFaultyPair(t, opts)
	admit(t, src.KB(), "Lombardy")

	fh.mode.Store(faultHang)
	fh.limit.Store(1)
	if n, err := src.SyncAll(context.Background()); err != nil || n != 1 {
		t.Fatalf("sync across a timeout: n=%d err=%v", n, err)
	}
	if ids := remoteIDs(t, dst.KB()); len(ids) != 1 {
		t.Fatalf("remote alerts = %d, want 1", len(ids))
	}
}

// TestAckLostRedelivery is at-least-once's sharp edge: the receiver commits
// the batch but the ack is lost, so the sender must redeliver — and the
// receiver's (origin, originId) check must collapse the redelivery into
// duplicates instead of double-materializing.
func TestAckLostRedelivery(t *testing.T) {
	src, fh, dst := newFaultyPair(t, testOpts())
	admit(t, src.KB(), "Lombardy")
	admit(t, src.KB(), "Veneto")

	fh.mode.Store(faultAckLost)
	fh.limit.Store(1)
	if n, err := src.SyncAll(context.Background()); err != nil || n != 2 {
		t.Fatalf("sync across a lost ack: n=%d err=%v", n, err)
	}
	// Exactly once, despite the wire having carried the batch twice.
	if ids := remoteIDs(t, dst.KB()); len(ids) != 2 {
		t.Fatalf("remote alerts = %d, want 2", len(ids))
	}
	if got := fh.requests.Load(); got != 2 {
		t.Fatalf("requests = %d, want 2 (the batch must have been redelivered)", got)
	}
}

// TestBreakerFailsFastAndRecovers: a persistently down peer opens the
// circuit (no more wire traffic), and after the cooldown a half-open probe
// against the healed peer closes it and delivers the backlog.
func TestBreakerFailsFastAndRecovers(t *testing.T) {
	clk := &manualNow{t: netStart}
	opts := testOpts()
	opts.MaxAttempts = 2
	opts.BreakerThreshold = 2
	opts.BreakerCooldown = time.Minute
	opts.Now = clk.now
	src, fh, dst := newFaultyPair(t, opts)
	admit(t, src.KB(), "Lombardy")

	// Two failed attempts open the circuit.
	fh.mode.Store(faultServerError)
	if _, err := src.SyncAll(context.Background()); err == nil {
		t.Fatal("sync succeeded against a dead peer")
	}
	st, _ := src.Status()
	if st.Peers[0].Breaker != "open" {
		t.Fatalf("breaker = %s, want open", st.Peers[0].Breaker)
	}

	// While open, syncs fail fast without touching the wire.
	before := fh.requests.Load()
	if _, err := src.SyncAll(context.Background()); !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("open-circuit sync: %v", err)
	}
	if got := fh.requests.Load(); got != before {
		t.Fatalf("open circuit still sent %d requests", got-before)
	}
	if st, _ := src.Status(); st.Peers[0].Pending != 1 {
		t.Fatalf("pending = %d, want 1 (alert stays in the outbox)", st.Peers[0].Pending)
	}

	// Heal the peer and let the cooldown elapse: the half-open probe
	// succeeds, the circuit closes, the backlog flows.
	fh.mode.Store(faultNone)
	clk.t = clk.t.Add(time.Minute)
	if n, err := src.SyncAll(context.Background()); err != nil || n != 1 {
		t.Fatalf("post-cooldown sync: n=%d err=%v", n, err)
	}
	if st, _ := src.Status(); st.Peers[0].Breaker != "closed" || st.Peers[0].Pending != 0 {
		t.Fatalf("post-recovery status: %+v", st.Peers[0])
	}
	if ids := remoteIDs(t, dst.KB()); len(ids) != 1 {
		t.Fatalf("remote alerts = %d, want 1", len(ids))
	}
}
