package fednet

import (
	"repro/internal/metrics"
)

// Metric names registered by a node. Every name is documented in
// OBSERVABILITY.md; the CI docs job keeps the two in sync
// (scripts/check_metrics_docs.sh, via scripts/metricnames).
const (
	mPushTotal    = "rkm_fed_push_total"
	mPushErrors   = "rkm_fed_push_errors_total"
	mPushSeconds  = "rkm_fed_push_seconds"
	mRetries      = "rkm_fed_retries_total"
	mOutboxDepth  = "rkm_fed_outbox_depth"
	mBreakerState = "rkm_fed_breaker_state"
	mApplied      = "rkm_fed_apply_total"
	mDuplicates   = "rkm_fed_apply_duplicates_total"
)

// nodeMetrics caches the node's instruments (nil-safe when the registry is
// nil, like every instrument in internal/metrics).
type nodeMetrics struct {
	push        *metrics.CounterVec
	pushErrors  *metrics.CounterVec
	pushSeconds *metrics.Histogram
	retries     *metrics.CounterVec
	outboxDepth *metrics.Gauge
	applied     *metrics.CounterVec
	duplicates  *metrics.CounterVec
}

// wireMetrics registers the federation instruments on the knowledge base's
// registry. Registration is idempotent, so a node rebuilt over the same
// knowledge base (process restart without restart of the registry) reuses
// the existing families.
func (n *Node) wireMetrics(reg *metrics.Registry) {
	n.nm = nodeMetrics{
		push: reg.CounterVec(mPushTotal, "peer",
			"Alert batches successfully pushed and acknowledged, by peer."),
		pushErrors: reg.CounterVec(mPushErrors, "peer",
			"Failed push attempts (network errors, timeouts, non-2xx responses), by peer."),
		pushSeconds: reg.Histogram(mPushSeconds,
			"Latency of individual push attempts, in seconds.", nil),
		retries: reg.CounterVec(mRetries, "peer",
			"Push attempts retried after a retryable failure, by peer."),
		outboxDepth: reg.Gauge(mOutboxDepth,
			"Pending (unacknowledged) alerts across all peers, as of the last sync round."),
		applied: reg.CounterVec(mApplied, "origin",
			"Remote alerts materialized by the receiver, by origin."),
		duplicates: reg.CounterVec(mDuplicates, "origin",
			"Redelivered alerts suppressed by the (origin, originId) duplicate check, by origin."),
	}
	reg.GaugeFunc(mBreakerState,
		"Most severe per-peer circuit-breaker state (0 closed, 1 half-open, 2 open).",
		func() float64 {
			worst := breakerClosed
			for _, p := range n.peerList() {
				if s := p.breaker.current(); s > worst {
					worst = s
				}
			}
			return float64(worst)
		})
}

// updateDepth refreshes the outbox-depth gauge after a sync round.
func (n *Node) updateDepth() {
	depth := 0
	for _, p := range n.peerList() {
		depth += n.pendingFor(p)
	}
	n.nm.outboxDepth.Set(float64(depth))
}
