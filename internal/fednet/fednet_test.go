package fednet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/periodic"
	"repro/internal/trigger"
	"repro/internal/wal"
)

var netStart = time.Date(2023, 4, 1, 8, 0, 0, 0, time.UTC)

// icuRule is the demo rule every sender installs: ICU admissions fire alerts.
var icuRule = trigger.Rule{
	Name:  "icu",
	Hub:   "C",
	Event: trigger.Event{Kind: trigger.CreateNode, Label: "IcuPatient"},
	Alert: "RETURN NEW.region AS region",
}

func newMemKB(t *testing.T) *core.KnowledgeBase {
	t.Helper()
	kb := core.New(core.Config{Clock: periodic.NewManualClock(netStart)})
	if err := kb.InstallRule(icuRule); err != nil {
		t.Fatal(err)
	}
	return kb
}

// openDurable opens (or reopens) a durable KB under dir and reinstalls the
// demo rule, the way a restarted rkm-server process would.
func openDurable(t *testing.T, dir string) *core.KnowledgeBase {
	t.Helper()
	kb, _, err := core.OpenDurable(dir, core.Config{Clock: periodic.NewManualClock(netStart)}, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := kb.InstallRule(icuRule); err != nil {
		t.Fatal(err)
	}
	return kb
}

func admit(t *testing.T, kb *core.KnowledgeBase, region string) {
	t.Helper()
	if _, err := kb.Execute("CREATE (:IcuPatient {region: '"+region+"', hub: 'C'})", nil); err != nil {
		t.Fatal(err)
	}
}

// testOpts are Options with the timing knobs shrunk for tests.
func testOpts() Options {
	return Options{
		RequestTimeout: 2 * time.Second,
		BackoffBase:    time.Millisecond,
		BackoffMax:     4 * time.Millisecond,
		Seed:           1,
	}
}

// swapHandler lets a test "restart" a receiver behind a stable URL: the
// httptest server stays up while the node (and knowledge base) behind it is
// replaced, which models a receiver process restarting on the same address.
type swapHandler struct{ h atomic.Value }

// set wraps h in http.HandlerFunc so atomic.Value always stores one
// concrete type.
func (s *swapHandler) set(h http.Handler) { s.h.Store(http.HandlerFunc(h.ServeHTTP)) }
func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(http.Handler).ServeHTTP(w, r)
}

// newReceiver builds a receiver node and serves it; returns the node, its
// base URL and the swapHandler for mid-test surgery.
func newReceiver(t *testing.T, name string, kb *core.KnowledgeBase) (*Node, string, *swapHandler) {
	t.Helper()
	n, err := NewNode(name, kb, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	sh := &swapHandler{}
	sh.set(n.Handler())
	ts := httptest.NewServer(sh)
	t.Cleanup(ts.Close)
	return n, ts.URL, sh
}

// remoteIDs returns the origin ids of the RemoteAlert nodes in kb, failing
// the test on any duplicate — the exactly-once invariant.
func remoteIDs(t *testing.T, kb *core.KnowledgeBase) []int64 {
	t.Helper()
	remote, err := federation.RemoteAlerts(kb)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool, len(remote))
	ids := make([]int64, 0, len(remote))
	for _, a := range remote {
		if seen[int64(a.ID)] {
			t.Fatalf("origin id %d materialized twice", a.ID)
		}
		seen[int64(a.ID)] = true
		ids = append(ids, int64(a.ID))
	}
	return ids
}

func TestPushEndToEnd(t *testing.T) {
	srcKB, dstKB := newMemKB(t), newMemKB(t)
	_, url, _ := newReceiver(t, "region", dstKB)

	src, err := NewNode("clinic", srcKB, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Subscribe("region", url); err != nil {
		t.Fatal(err)
	}

	admit(t, srcKB, "Lombardy")
	admit(t, srcKB, "Veneto")
	admit(t, srcKB, "Lazio")
	n, err := src.SyncAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("delivered = %d, want 3", n)
	}
	if ids := remoteIDs(t, dstKB); len(ids) != 3 {
		t.Fatalf("remote alerts = %d, want 3", len(ids))
	}
	remote, _ := federation.RemoteAlerts(dstKB)
	if origin, _ := remote[0].Props[federation.OriginProp].AsString(); origin != "clinic" {
		t.Errorf("origin = %q", origin)
	}
	if region, _ := remote[0].Props["region"].AsString(); region != "Lombardy" {
		t.Errorf("alert props lost on the wire: %v", remote[0].Props)
	}

	// Nothing pending → second sync is a no-op.
	if n, err := src.SyncAll(context.Background()); err != nil || n != 0 {
		t.Fatalf("idle sync: n=%d err=%v", n, err)
	}
	// Incremental delivery.
	admit(t, srcKB, "Puglia")
	if n, err := src.SyncAll(context.Background()); err != nil || n != 1 {
		t.Fatalf("incremental sync: n=%d err=%v", n, err)
	}

	// Sender-side status.
	st, err := src.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Peers) != 1 || st.Peers[0].Peer != "region" || st.Peers[0].Pending != 0 ||
		st.Peers[0].Breaker != "closed" {
		t.Errorf("sender status: %+v", st.Peers)
	}
}

func TestStatusEndpoint(t *testing.T) {
	srcKB, dstKB := newMemKB(t), newMemKB(t)
	_, url, _ := newReceiver(t, "region", dstKB)
	src, _ := NewNode("clinic", srcKB, testOpts())
	if err := src.Subscribe("region", url); err != nil {
		t.Fatal(err)
	}
	admit(t, srcKB, "Lombardy")
	if _, err := src.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(url + "/fed/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Name != "region" || st.RemoteAlerts["clinic"] != 1 {
		t.Errorf("receiver status: %+v", st)
	}
}

func TestRuleFilteredSubscription(t *testing.T) {
	srcKB, dstKB := newMemKB(t), newMemKB(t)
	if err := srcKB.InstallRule(trigger.Rule{
		Name:  "noise",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Misc"},
		Alert: "RETURN 1 AS one",
	}); err != nil {
		t.Fatal(err)
	}
	_, url, _ := newReceiver(t, "region", dstKB)
	src, _ := NewNode("clinic", srcKB, testOpts())
	if err := src.Subscribe("region", url, "icu"); err != nil {
		t.Fatal(err)
	}

	admit(t, srcKB, "Lombardy")
	if _, err := srcKB.Execute("CREATE (:Misc)", nil); err != nil {
		t.Fatal(err)
	}
	if n, err := src.SyncAll(context.Background()); err != nil || n != 1 {
		t.Fatalf("filtered sync: n=%d err=%v", n, err)
	}
	remote, _ := federation.RemoteAlerts(dstKB)
	if len(remote) != 1 || remote[0].Rule != "icu" {
		t.Fatalf("remote: %+v", remote)
	}
	// The filtered-out alert advanced the mark; it never resurfaces.
	if n, err := src.SyncAll(context.Background()); err != nil || n != 0 {
		t.Fatalf("skipped alert resurfaced: n=%d err=%v", n, err)
	}
}

// TestReceiverRestartMidStream is the acceptance scenario: the receiver dies
// mid-stream (one batch applied, the connection severed on the next), comes
// back from its write-ahead log on the same address, and the stream resumes
// with every alert materialized exactly once.
func TestReceiverRestartMidStream(t *testing.T) {
	srcKB := newMemKB(t)
	dstDir := t.TempDir()
	dstKB := openDurable(t, dstDir)
	_, url, sh := newReceiver(t, "region", dstKB)

	opts := testOpts()
	opts.BatchSize = 2
	opts.BreakerThreshold = 100 // breaker behaviour has its own tests
	src, err := NewNode("clinic", srcKB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Subscribe("region", url); err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"a", "b", "c", "d", "e"} {
		admit(t, srcKB, r)
	}

	// Kill the receiver after the first batch commits: subsequent pushes die
	// without a response, like a process crash mid-request.
	live := sh.h.Load().(http.Handler)
	var pushes atomic.Int64
	sh.set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if pushes.Add(1) > 1 {
			panic(http.ErrAbortHandler)
		}
		live.ServeHTTP(w, r)
	}))
	sent, err := src.SyncAll(context.Background())
	if err == nil {
		t.Fatal("sync succeeded against a dead receiver")
	}
	if sent != 2 {
		t.Fatalf("delivered before crash = %d, want 2 (one batch)", sent)
	}

	// "Restart" the receiver: recover the knowledge base from its WAL and
	// mount a fresh node on the same address.
	if err := dstKB.Close(); err != nil {
		t.Fatal(err)
	}
	dstKB2 := openDurable(t, dstDir)
	t.Cleanup(func() { dstKB2.Close() })
	dst2, err := NewNode("region", dstKB2, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	sh.set(dst2.Handler())
	if ids := remoteIDs(t, dstKB2); len(ids) != 2 {
		t.Fatalf("recovered remote alerts = %d, want 2 (first batch survived the crash)", len(ids))
	}

	// The sender just retries on its next round; nothing is lost or doubled.
	if n, err := src.SyncAll(context.Background()); err != nil || n != 3 {
		t.Fatalf("resumed sync: n=%d err=%v, want 3", n, err)
	}
	if ids := remoteIDs(t, dstKB2); len(ids) != 5 {
		t.Fatalf("final remote alerts = %d, want 5", len(ids))
	}
}

// TestSenderRestartAfterPartialPush is the other acceptance half: the sender
// crashes after an acknowledged batch, restarts from its write-ahead log, and
// resumes from the durable outbox mark instead of re-sending history.
func TestSenderRestartAfterPartialPush(t *testing.T) {
	srcDir := t.TempDir()
	srcKB := openDurable(t, srcDir)
	dstKB := newMemKB(t)
	_, url, sh := newReceiver(t, "region", dstKB)

	opts := testOpts()
	opts.BatchSize = 2
	opts.MaxAttempts = 1 // fail fast; the restarted process is the retry
	src, err := NewNode("clinic", srcKB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Subscribe("region", url); err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"a", "b", "c", "d", "e"} {
		admit(t, srcKB, r)
	}

	// The peer vanishes after acknowledging the first batch.
	live := sh.h.Load().(http.Handler)
	var pushes atomic.Int64
	sh.set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if pushes.Add(1) > 1 {
			http.Error(w, "gone", http.StatusServiceUnavailable)
			return
		}
		live.ServeHTTP(w, r)
	}))
	if sent, err := src.SyncAll(context.Background()); err == nil || sent != 2 {
		t.Fatalf("partial push: sent=%d err=%v, want 2 and an error", sent, err)
	}

	// Sender process crashes and restarts: recover its graph (alert log and
	// outbox mark included) and rebuild the node.
	if err := srcKB.Close(); err != nil {
		t.Fatal(err)
	}
	srcKB2 := openDurable(t, srcDir)
	t.Cleanup(func() { srcKB2.Close() })
	src2, err := NewNode("clinic", srcKB2, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := src2.Subscribe("region", url); err != nil {
		t.Fatal(err)
	}
	sh.set(live) // peer is back

	// Only the three unacknowledged alerts go out — the recovered mark
	// spares the first batch a redelivery.
	if n, err := src2.SyncAll(context.Background()); err != nil || n != 3 {
		t.Fatalf("resumed sync after sender restart: n=%d err=%v, want 3", n, err)
	}
	if ids := remoteIDs(t, dstKB); len(ids) != 5 {
		t.Fatalf("final remote alerts = %d, want 5", len(ids))
	}
	if n, err := src2.SyncAll(context.Background()); err != nil || n != 0 {
		t.Fatalf("steady state: n=%d err=%v", n, err)
	}
}

func TestStartSchedulesPeriodicSync(t *testing.T) {
	clk := periodic.NewManualClock(netStart)
	srcKB := core.New(core.Config{Clock: clk})
	if err := srcKB.InstallRule(icuRule); err != nil {
		t.Fatal(err)
	}
	dstKB := newMemKB(t)
	_, url, _ := newReceiver(t, "region", dstKB)
	src, _ := NewNode("clinic", srcKB, testOpts())
	if err := src.Subscribe("region", url); err != nil {
		t.Fatal(err)
	}
	if err := src.Start(time.Minute); err != nil {
		t.Fatal(err)
	}

	admit(t, srcKB, "Lombardy")
	clk.Advance(time.Minute)
	if _, err := srcKB.Scheduler().Tick(); err != nil {
		t.Fatal(err)
	}
	if ids := remoteIDs(t, dstKB); len(ids) != 1 {
		t.Fatalf("periodic sync delivered %d alerts, want 1", len(ids))
	}

	// A dead peer must not error the scheduler loop (that would take the
	// summary tasks down with it); the failure is logged and retried later.
	clk2 := periodic.NewManualClock(netStart)
	srcKB2 := core.New(core.Config{Clock: clk2})
	if err := srcKB2.InstallRule(icuRule); err != nil {
		t.Fatal(err)
	}
	src2, _ := NewNode("clinic2", srcKB2, testOpts())
	if err := src2.Subscribe("ghost", "http://127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if err := src2.Start(time.Minute); err != nil {
		t.Fatal(err)
	}
	admit(t, srcKB2, "Veneto")
	clk2.Advance(time.Minute)
	if _, err := srcKB2.Scheduler().Tick(); err != nil {
		t.Fatalf("scheduler tick propagated a sync failure: %v", err)
	}
}

func TestSubscribeValidation(t *testing.T) {
	kb := newMemKB(t)
	n, err := NewNode("clinic", kb, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Subscribe("", "http://x"); err == nil {
		t.Error("empty peer accepted")
	}
	if err := n.Subscribe("clinic", "http://x"); err == nil {
		t.Error("self peer accepted")
	}
	if err := n.Subscribe("region", "not a url"); err == nil {
		t.Error("bad URL accepted")
	}
	if err := n.Subscribe("region", "http://127.0.0.1:9"); err != nil {
		t.Fatal(err)
	}
	if err := n.Subscribe("region", "http://127.0.0.1:9"); !errors.Is(err, ErrPeerExists) {
		t.Errorf("duplicate subscribe: %v", err)
	}
	if _, err := NewNode("", kb, testOpts()); err == nil {
		t.Error("empty node name accepted")
	}
}

func TestInspect(t *testing.T) {
	srcKB, dstKB := newMemKB(t), newMemKB(t)
	_, url, _ := newReceiver(t, "region", dstKB)
	src, _ := NewNode("clinic", srcKB, testOpts())
	if err := src.Subscribe("region", url); err != nil {
		t.Fatal(err)
	}
	admit(t, srcKB, "Lombardy")
	if _, err := src.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	srcInfo, err := Inspect(srcKB)
	if err != nil {
		t.Fatal(err)
	}
	if srcInfo.OutboxMarks["region"] == 0 {
		t.Errorf("sender outbox mark not persisted: %+v", srcInfo)
	}
	dstInfo, err := Inspect(dstKB)
	if err != nil {
		t.Fatal(err)
	}
	if dstInfo.RemoteByOrigin["clinic"] != 1 {
		t.Errorf("receiver remote counts: %+v", dstInfo)
	}
}
