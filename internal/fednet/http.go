package fednet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/federation"
)

// maxPushBody bounds a push request body (1 MiB is hundreds of alerts; a
// sender's batches are far smaller).
const maxPushBody = 1 << 20

// Register mounts the receiver endpoints on mux:
//
//	POST /fed/push    apply a batch of alerts from a peer (idempotent)
//	GET  /fed/status  this node's outbox, breakers and received origins
func (n *Node) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /fed/push", n.handlePush)
	mux.HandleFunc("GET /fed/status", n.handleStatus)
}

// Handler returns a mux with just the federation endpoints, for embedding
// the receiver into tests or auxiliary listeners.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	n.Register(mux)
	return mux
}

func fedWriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func fedWriteErr(w http.ResponseWriter, status int, err error) {
	fedWriteJSON(w, status, map[string]string{"error": err.Error()})
}

// handlePush applies one pushed batch. The response is only sent after the
// batch committed, so an acknowledged batch is durable on a durable
// receiver; a response lost on the wire just means the sender redelivers
// and every alert lands in Duplicates.
func (n *Node) handlePush(w http.ResponseWriter, r *http.Request) {
	var req PushRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxPushBody)).Decode(&req); err != nil {
		fedWriteErr(w, http.StatusBadRequest, fmt.Errorf("bad push body: %w", err))
		return
	}
	if req.Version != wireVersion {
		fedWriteErr(w, http.StatusBadRequest,
			fmt.Errorf("wire version %d not supported (want %d)", req.Version, wireVersion))
		return
	}
	if req.Origin == "" {
		fedWriteErr(w, http.StatusBadRequest, fmt.Errorf("missing origin"))
		return
	}
	if req.Origin == n.name {
		fedWriteErr(w, http.StatusBadRequest, fmt.Errorf("push from my own origin %q", n.name))
		return
	}
	alerts := make([]core.Alert, len(req.Alerts))
	var acked int64
	for i, wa := range req.Alerts {
		a, err := fromWire(wa)
		if err != nil {
			fedWriteErr(w, http.StatusBadRequest, err)
			return
		}
		alerts[i] = a
		if wa.OriginID > acked {
			acked = wa.OriginID
		}
	}
	applied, dups, err := federation.ApplyRemoteAlerts(n.kb, req.Origin, alerts)
	if err != nil {
		fedWriteErr(w, http.StatusInternalServerError, err)
		return
	}
	n.nm.applied.With(req.Origin).Add(int64(applied))
	n.nm.duplicates.With(req.Origin).Add(int64(dups))
	fedWriteJSON(w, http.StatusOK, PushResponse{Applied: applied, Duplicates: dups, Acked: acked})
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := n.Status()
	if err != nil {
		fedWriteErr(w, http.StatusInternalServerError, err)
		return
	}
	fedWriteJSON(w, http.StatusOK, st)
}
