// Package fednet is the cross-process federation transport: it moves alert
// nodes between rkm-server processes over HTTP with at-least-once delivery,
// turning the in-process prototype of internal/federation into the networked
// deployment the paper's §V projects (each knowledge hub on its own
// infrastructure, alerts as the cross-hub currency).
//
// A Node wraps one KnowledgeBase and plays both sides of the protocol:
//
//   - Sender: Subscribe registers a peer URL; SyncAll (or the periodic task
//     Start schedules) pushes every not-yet-acknowledged alert to each peer
//     in ascending-id batches via POST /fed/push. The acknowledged mark is a
//     durable outbox node in the sender's own graph (see OutboxLabel), so
//     replication state survives crashes through the existing write-ahead
//     log and snapshot machinery — a restarted sender resumes from the last
//     acknowledged batch, never from zero.
//   - Receiver: Handler (or Register) mounts POST /fed/push and GET
//     /fed/status. Apply is idempotent by (origin, originId) — the
//     federation package's shared contract — so redelivered batches count as
//     duplicates instead of materializing twice. At-least-once delivery plus
//     idempotent apply yields exactly-once materialization.
//
// The wire path is defensive: requests carry timeouts, failed pushes retry
// with capped exponential backoff and jitter, and a per-peer circuit breaker
// fails fast while a peer is down, probing it again after a cooldown.
// Delivery metrics are registered on the knowledge base's registry (see
// OBSERVABILITY.md).
package fednet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/graph"
)

// SyncTaskName is the periodic-scheduler task Start registers.
const SyncTaskName = "fednet-sync"

// Errors reported by a node.
var (
	ErrPeerExists      = errors.New("fednet: peer already subscribed")
	ErrPeerUnavailable = errors.New("fednet: circuit open")
)

// HTTPError is a push rejected by the peer with a non-2xx status. 5xx
// statuses are retryable (the peer may heal), 4xx are not (the request
// itself is wrong).
type HTTPError struct {
	Status int
	Msg    string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("fednet: peer returned %d: %s", e.Status, strings.TrimSpace(e.Msg))
}

// retryable reports whether a failed push attempt is worth repeating.
func retryable(err error) bool {
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Status >= 500
	}
	return true // network errors and timeouts
}

// Options tunes a node's wire behaviour. The zero value gives production
// defaults; tests shrink the timing knobs.
type Options struct {
	// RequestTimeout bounds each push HTTP request (default 5s).
	RequestTimeout time.Duration
	// MaxAttempts is the per-batch attempt budget, first try included
	// (default 4).
	MaxAttempts int
	// BackoffBase is the delay before the first retry; it doubles per
	// attempt with ±50% jitter (default 50ms).
	BackoffBase time.Duration
	// BackoffMax caps the backoff delay (default 2s).
	BackoffMax time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a peer's
	// circuit (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit refuses pushes before
	// letting a half-open probe through (default 5s).
	BreakerCooldown time.Duration
	// BatchSize is the maximum alerts per push request (default 256).
	BatchSize int
	// Client overrides the HTTP client (tests inject httptest clients);
	// nil builds one. Per-request timeouts come from RequestTimeout either
	// way.
	Client *http.Client
	// Now overrides the breaker clock for deterministic tests (default
	// time.Now).
	Now func() time.Time
	// Logf receives delivery diagnostics (retries, open circuits); nil
	// discards them.
	Logf func(format string, args ...any)
	// Seed fixes the jitter source for reproducible tests (0 = time-based).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.Seed == 0 {
		o.Seed = time.Now().UnixNano()
	}
	return o
}

// peerLink is one outgoing subscription: a peer's address, the rule filter,
// the durable outbox node and the in-memory copy of its acknowledged mark,
// and the peer's circuit breaker.
type peerLink struct {
	name    string
	baseURL string
	rules   map[string]bool // empty = all rules
	outbox  graph.NodeID
	breaker *breaker

	mu    sync.Mutex
	acked graph.NodeID
}

func (p *peerLink) mark() graph.NodeID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acked
}

func (p *peerLink) setMark(id graph.NodeID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id > p.acked {
		p.acked = id
	}
}

func (p *peerLink) wants(rule string) bool {
	return len(p.rules) == 0 || p.rules[rule]
}

// Node is one federation participant on the network: the sender and
// receiver half of the wire protocol around a single KnowledgeBase. All
// methods are safe for concurrent use.
type Node struct {
	name   string
	kb     *core.KnowledgeBase
	opts   Options
	client *http.Client

	rngMu sync.Mutex
	rng   *rand.Rand

	mu    sync.Mutex
	peers map[string]*peerLink

	// syncMu serializes SyncAll so overlapping sync rounds (periodic task
	// plus a manual /fed/sync) cannot push the same pending batch twice.
	syncMu sync.Mutex

	nm nodeMetrics
}

// NewNode wraps kb as federation participant name. It ensures the
// (RemoteAlert, originId) duplicate-check index and registers the fed_*
// instruments on the knowledge base's metrics registry.
func NewNode(name string, kb *core.KnowledgeBase, opts Options) (*Node, error) {
	if name == "" {
		return nil, fmt.Errorf("fednet: node name must not be empty")
	}
	opts = opts.withDefaults()
	if err := federation.EnsureRemoteAlertIndex(kb); err != nil {
		return nil, err
	}
	n := &Node{
		name:   name,
		kb:     kb,
		opts:   opts,
		client: opts.Client,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		peers:  make(map[string]*peerLink),
	}
	if n.client == nil {
		n.client = &http.Client{}
	}
	n.wireMetrics(kb.Metrics())
	return n, nil
}

// Name returns the node's participant name (the origin its pushes carry).
func (n *Node) Name() string { return n.name }

// KB returns the wrapped knowledge base.
func (n *Node) KB() *core.KnowledgeBase { return n.kb }

// Subscribe registers an outgoing subscription: this node's alerts (all of
// them, or only the named rules') replicate to the peer at baseURL. The
// durable outbox state for the peer is loaded if an earlier process life
// left one, so a restart resumes instead of re-sending history.
func (n *Node) Subscribe(peer, baseURL string, rules ...string) error {
	if peer == "" || peer == n.name {
		return fmt.Errorf("fednet: bad peer name %q", peer)
	}
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("fednet: bad peer URL %q", baseURL)
	}
	node, acked, err := loadOrCreateOutbox(n.kb, peer)
	if err != nil {
		return fmt.Errorf("fednet: outbox for %s: %w", peer, err)
	}
	p := &peerLink{
		name:    peer,
		baseURL: strings.TrimSuffix(baseURL, "/"),
		rules:   make(map[string]bool),
		outbox:  node,
		acked:   acked,
		breaker: newBreaker(n.opts.BreakerThreshold, n.opts.BreakerCooldown, n.opts.Now),
	}
	for _, r := range rules {
		p.rules[r] = true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.peers[peer]; dup {
		return fmt.Errorf("%w: %s", ErrPeerExists, peer)
	}
	n.peers[peer] = p
	return nil
}

// peerList snapshots the peers sorted by name.
func (n *Node) peerList() []*peerLink {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*peerLink, 0, len(n.peers))
	for _, p := range n.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// SyncAll pushes every pending alert to every peer and returns the number
// of alerts delivered (acknowledged by a peer, duplicates included). A
// failing peer does not block the others; the first error is returned after
// all peers were attempted, and undelivered alerts simply stay pending —
// the outbox mark only advances past acknowledged batches.
func (n *Node) SyncAll(ctx context.Context) (int, error) {
	n.syncMu.Lock()
	defer n.syncMu.Unlock()
	total := 0
	var firstErr error
	for _, p := range n.peerList() {
		sent, err := n.syncPeer(ctx, p)
		total += sent
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("fednet: %s→%s: %w", n.name, p.name, err)
		}
	}
	n.updateDepth()
	return total, firstErr
}

// syncPeer delivers one peer's pending alerts in batches, advancing the
// durable mark after each acknowledged batch so a crash between batches
// re-sends at most one batch (which the receiver deduplicates).
func (n *Node) syncPeer(ctx context.Context, p *peerLink) (int, error) {
	acked := p.mark()
	alerts, err := n.kb.AlertsAfter(acked)
	if err != nil {
		return 0, err
	}
	maxScanned := acked
	fresh := alerts[:0]
	for _, a := range alerts {
		if a.ID > maxScanned {
			maxScanned = a.ID
		}
		if p.wants(a.Rule) {
			fresh = append(fresh, a)
		}
	}
	if len(fresh) == 0 {
		// Nothing to send, but filtered-out alerts still advance the mark
		// so they are not rescanned forever.
		if maxScanned > acked {
			if err := n.persistMark(p, maxScanned); err != nil {
				return 0, err
			}
		}
		return 0, nil
	}
	sent := 0
	for start := 0; start < len(fresh); start += n.opts.BatchSize {
		end := start + n.opts.BatchSize
		if end > len(fresh) {
			end = len(fresh)
		}
		chunk := fresh[start:end]
		if !p.breaker.allow() {
			return sent, fmt.Errorf("%w: %s", ErrPeerUnavailable, p.name)
		}
		if _, err := n.pushBatch(ctx, p, chunk); err != nil {
			return sent, err
		}
		sent += len(chunk)
		mark := chunk[len(chunk)-1].ID
		if end == len(fresh) {
			mark = maxScanned // cover trailing filtered-out alerts too
		}
		if err := n.persistMark(p, mark); err != nil {
			return sent, err
		}
	}
	return sent, nil
}

func (n *Node) persistMark(p *peerLink, mark graph.NodeID) error {
	if err := saveMark(n.kb, p.outbox, mark); err != nil {
		return fmt.Errorf("persist mark: %w", err)
	}
	p.setMark(mark)
	return nil
}

// pushBatch sends one batch with bounded retries: capped exponential
// backoff with jitter between attempts, breaker bookkeeping around each.
func (n *Node) pushBatch(ctx context.Context, p *peerLink, chunk []core.Alert) (*PushResponse, error) {
	req := PushRequest{Version: wireVersion, Origin: n.name, Alerts: make([]WireAlert, len(chunk))}
	for i, a := range chunk {
		req.Alerts[i] = toWire(a)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("encode batch: %w", err)
	}
	for attempt := 1; ; attempt++ {
		t0 := time.Now()
		resp, err := n.doPush(ctx, p, body)
		n.nm.pushSeconds.ObserveSince(t0)
		if err == nil {
			p.breaker.success()
			n.nm.push.With(p.name).Inc()
			return resp, nil
		}
		p.breaker.failure()
		n.nm.pushErrors.With(p.name).Inc()
		if attempt >= n.opts.MaxAttempts || !retryable(err) {
			return nil, err
		}
		if !p.breaker.allow() {
			return nil, fmt.Errorf("%w: %s (after %v)", ErrPeerUnavailable, p.name, err)
		}
		n.nm.retries.With(p.name).Inc()
		n.opts.Logf("fednet: %s→%s: attempt %d failed (%v), retrying", n.name, p.name, attempt, err)
		if err := n.sleepBackoff(ctx, attempt); err != nil {
			return nil, err
		}
	}
}

// doPush performs one push HTTP request under the configured timeout.
func (n *Node) doPush(ctx context.Context, p *peerLink, body []byte) (*PushResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, n.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.baseURL+"/fed/push", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, &HTTPError{Status: resp.StatusCode, Msg: string(msg)}
	}
	var out PushResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode ack: %w", err)
	}
	return &out, nil
}

// sleepBackoff waits the capped exponential backoff for the given attempt
// number, with ±50% jitter, honoring ctx cancellation.
func (n *Node) sleepBackoff(ctx context.Context, attempt int) error {
	d := n.opts.BackoffBase
	for i := 1; i < attempt && d < n.opts.BackoffMax; i++ {
		d *= 2
	}
	if d > n.opts.BackoffMax {
		d = n.opts.BackoffMax
	}
	// Jitter to d/2 .. d so synchronized senders spread out.
	n.rngMu.Lock()
	d = d/2 + time.Duration(n.rng.Int63n(int64(d/2)+1))
	n.rngMu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Start schedules the background sync loop on the knowledge base's periodic
// scheduler (internal/periodic): one SyncAll every interval. Push failures
// are logged and retried on the next round instead of erroring the
// scheduler, so a down peer never stalls summary rollovers or other tasks.
func (n *Node) Start(every time.Duration) error {
	return n.kb.Scheduler().Repeat(SyncTaskName, every, func(now time.Time) error {
		if _, err := n.SyncAll(context.Background()); err != nil {
			n.opts.Logf("fednet: background sync: %v", err)
		}
		return nil
	})
}

// pendingFor counts the alerts not yet acknowledged by p.
func (n *Node) pendingFor(p *peerLink) int {
	alerts, err := n.kb.AlertsAfter(p.mark())
	if err != nil {
		return 0
	}
	pending := 0
	for _, a := range alerts {
		if p.wants(a.Rule) {
			pending++
		}
	}
	return pending
}

// Status reports the node's identity, its outbox per peer and the remote
// alerts it has received, grouped by origin.
func (n *Node) Status() (Status, error) {
	counts, err := remoteCounts(n.kb)
	if err != nil {
		return Status{}, err
	}
	st := Status{Name: n.name, Peers: []PeerStatus{}, RemoteAlerts: counts}
	for _, p := range n.peerList() {
		st.Peers = append(st.Peers, PeerStatus{
			Peer:    p.name,
			URL:     p.baseURL,
			Acked:   int64(p.mark()),
			Pending: n.pendingFor(p),
			Breaker: p.breaker.current().String(),
		})
	}
	return st, nil
}

// remoteCounts tallies RemoteAlert nodes by origin.
func remoteCounts(kb *core.KnowledgeBase) (map[string]int, error) {
	counts := make(map[string]int)
	err := kb.Store().View(func(tx *graph.Tx) error {
		for _, id := range tx.NodesByLabel(federation.RemoteAlertLabel) {
			n, ok := tx.Node(id)
			if !ok {
				continue
			}
			origin, _ := n.Props[federation.OriginProp].AsString()
			counts[origin]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return counts, nil
}

// KBInfo is the federation-relevant state visible in a knowledge graph
// without a running node: what was received, and the persisted outbox marks
// of what was sent. rkm-shell's :fed prints it.
type KBInfo struct {
	// RemoteByOrigin counts RemoteAlert nodes per origin participant.
	RemoteByOrigin map[string]int
	// OutboxMarks maps peer name to the persisted acknowledged alert id.
	OutboxMarks map[string]int64
}

// Inspect summarizes a knowledge base's federation state from the graph
// alone.
func Inspect(kb *core.KnowledgeBase) (KBInfo, error) {
	counts, err := remoteCounts(kb)
	if err != nil {
		return KBInfo{}, err
	}
	marks, err := Outboxes(kb)
	if err != nil {
		return KBInfo{}, err
	}
	return KBInfo{RemoteByOrigin: counts, OutboxMarks: marks}, nil
}
