package fednet

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/graph"
	"repro/internal/value"
)

// TestSyncDuringOpenWrite: federation sync scans the source's alerts from a
// published snapshot, so delivery to the peer proceeds while a write
// transaction is open on the source knowledge base. Only the outbox-mark
// persist (itself a write) queues behind the open writer, so SyncAll
// completes as soon as the writer commits.
func TestSyncDuringOpenWrite(t *testing.T) {
	srcKB, dstKB := newMemKB(t), newMemKB(t)
	_, url, _ := newReceiver(t, "region", dstKB)
	src, err := NewNode("clinic", srcKB, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Subscribe("region", url); err != nil {
		t.Fatal(err)
	}
	admit(t, srcKB, "Lombardy")
	admit(t, srcKB, "Veneto")

	type syncResult struct {
		sent int
		err  error
	}
	syncDone := make(chan syncResult, 1)
	_, err = srcKB.WriteTx(func(tx *graph.Tx) error {
		if _, err := tx.CreateNode([]string{"Note"}, map[string]value.Value{
			"text": value.Str("open while syncing"),
		}); err != nil {
			return err
		}
		// The source's alert scan is lock-free: from inside the open write
		// transaction (same goroutine, write lock held) it must return the
		// committed alerts without deadlocking.
		alerts, err := srcKB.AlertsAfter(0)
		if err != nil {
			return err
		}
		if len(alerts) != 2 {
			return fmt.Errorf("AlertsAfter saw %d alerts during open write, want 2", len(alerts))
		}

		go func() {
			sent, err := src.SyncAll(context.Background())
			syncDone <- syncResult{sent, err}
		}()
		// Delivery must reach the receiver while this transaction still
		// holds the source's write lock.
		deadline := time.Now().Add(5 * time.Second)
		for {
			remote, err := federation.RemoteAlerts(dstKB)
			if err != nil {
				return err
			}
			if len(remote) == 2 {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("receiver got %d remote alerts while source write was open, want 2", len(remote))
			}
			time.Sleep(time.Millisecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// With the writer committed, the mark persist unblocks and SyncAll
	// reports both deliveries.
	select {
	case res := <-syncDone:
		if res.err != nil {
			t.Fatalf("SyncAll: %v", res.err)
		}
		if res.sent != 2 {
			t.Fatalf("SyncAll delivered %d alerts, want 2", res.sent)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SyncAll did not complete after the write transaction committed")
	}
	if ids := remoteIDs(t, dstKB); len(ids) != 2 {
		t.Fatalf("receiver has %d remote alerts, want 2", len(ids))
	}
}
