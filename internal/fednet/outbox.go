package fednet

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/value"
)

// OutboxLabel is the label of the per-peer replication-state nodes a fednet
// node keeps in its own knowledge graph. Storing the acknowledged mark as a
// graph node means the outbox rides the existing durability machinery for
// free: mark updates commit through the store, the write-ahead-log hook
// appends them, checkpoints snapshot them, and recovery replays them — so a
// crashed sender resumes exactly where the last acknowledged batch left it.
//
// The pending half of the outbox needs no storage of its own: pending(peer)
// is, by definition, every alert node with id greater than the acked mark
// that the subscription's rule filter admits, and the alert log is already
// durable graph content.
const OutboxLabel = "FedOutbox"

// Outbox node property keys.
const (
	outboxPeerProp  = "peer"
	outboxAckedProp = "ackedId"
)

// loadOrCreateOutbox returns the outbox node for peer, creating it with an
// empty mark on first subscription. Outbox writes go directly through the
// store — replication bookkeeping is not knowledge, so rules must not fire
// on it — but still commit through the write-ahead log.
func loadOrCreateOutbox(kb *core.KnowledgeBase, peer string) (node graph.NodeID, acked graph.NodeID, err error) {
	err = kb.Store().Update(func(tx *graph.Tx) error {
		for _, id := range tx.NodesByLabel(OutboxLabel) {
			n, ok := tx.Node(id)
			if !ok {
				continue
			}
			if got, _ := n.Props[outboxPeerProp].AsString(); got == peer {
				node = id
				mark, _ := n.Props[outboxAckedProp].AsInt()
				acked = graph.NodeID(mark)
				return nil
			}
		}
		id, err := tx.CreateNode([]string{OutboxLabel}, map[string]value.Value{
			outboxPeerProp:  value.Str(peer),
			outboxAckedProp: value.Int(0),
		})
		if err != nil {
			return err
		}
		node, acked = id, 0
		return nil
	})
	return node, acked, err
}

// saveMark durably advances the outbox node's acknowledged mark.
func saveMark(kb *core.KnowledgeBase, node graph.NodeID, mark graph.NodeID) error {
	return kb.Store().Update(func(tx *graph.Tx) error {
		return tx.SetNodeProp(node, outboxAckedProp, value.Int(int64(mark)))
	})
}

// Outboxes lists the persisted outbox marks of a knowledge base, for status
// displays (rkm-shell's :fed) that inspect a graph without a running node.
func Outboxes(kb *core.KnowledgeBase) (map[string]int64, error) {
	out := make(map[string]int64)
	err := kb.Store().View(func(tx *graph.Tx) error {
		for _, id := range tx.NodesByLabel(OutboxLabel) {
			n, ok := tx.Node(id)
			if !ok {
				continue
			}
			peer, _ := n.Props[outboxPeerProp].AsString()
			mark, _ := n.Props[outboxAckedProp].AsInt()
			out[peer] = mark
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
