package fednet

import (
	"testing"
	"time"
)

// manualNow is a settable clock for breaker tests.
type manualNow struct{ t time.Time }

func (m *manualNow) now() time.Time { return m.t }

func TestBreakerTransitions(t *testing.T) {
	clk := &manualNow{t: time.Unix(0, 0)}
	b := newBreaker(3, 5*time.Second, clk.now)

	if got := b.current(); got != breakerClosed {
		t.Fatalf("initial state %v", got)
	}
	// Failures below the threshold keep the circuit closed.
	b.failure()
	b.failure()
	if !b.allow() {
		t.Fatal("closed circuit refused a push")
	}
	// A success resets the consecutive-failure count.
	b.success()
	b.failure()
	b.failure()
	if got := b.current(); got != breakerClosed {
		t.Fatalf("state after reset+2 failures = %v", got)
	}
	// The threshold-th consecutive failure opens the circuit.
	b.failure()
	if got := b.current(); got != breakerOpen {
		t.Fatalf("state after 3 consecutive failures = %v", got)
	}
	if b.allow() {
		t.Fatal("open circuit allowed a push before cooldown")
	}

	// After the cooldown, exactly one half-open probe is admitted.
	clk.t = clk.t.Add(5 * time.Second)
	if !b.allow() {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if got := b.current(); got != breakerHalfOpen {
		t.Fatalf("state during probe = %v", got)
	}
	if b.allow() {
		t.Fatal("second concurrent probe admitted in half-open")
	}

	// A failed probe reopens for another full cooldown.
	b.failure()
	if got := b.current(); got != breakerOpen {
		t.Fatalf("state after failed probe = %v", got)
	}
	clk.t = clk.t.Add(4 * time.Second)
	if b.allow() {
		t.Fatal("reopened circuit admitted a push before its new cooldown")
	}
	clk.t = clk.t.Add(time.Second)
	if !b.allow() {
		t.Fatal("second probe refused after cooldown")
	}

	// A successful probe closes the circuit.
	b.success()
	if got := b.current(); got != breakerClosed {
		t.Fatalf("state after successful probe = %v", got)
	}
	if !b.allow() {
		t.Fatal("closed circuit refused a push")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for s, want := range map[breakerState]string{
		breakerClosed:   "closed",
		breakerHalfOpen: "half-open",
		breakerOpen:     "open",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}
