package periodic

import (
	"errors"
	"testing"
	"time"
)

var t0 = time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC)

func TestManualClock(t *testing.T) {
	c := NewManualClock(t0)
	if !c.Now().Equal(t0) {
		t.Error("initial time")
	}
	if got := c.Advance(time.Hour); !got.Equal(t0.Add(time.Hour)) {
		t.Error("advance")
	}
	c.Set(t0)
	if !c.Now().Equal(t0) {
		t.Error("set")
	}
}

func TestRealClock(t *testing.T) {
	before := time.Now()
	got := RealClock{}.Now()
	if got.Before(before.Add(-time.Second)) {
		t.Error("real clock is off")
	}
}

func TestRepeatAndTick(t *testing.T) {
	c := NewManualClock(t0)
	s := NewScheduler(c)
	var runs []time.Time
	if err := s.Repeat("daily", 24*time.Hour, func(now time.Time) error {
		runs = append(runs, now)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Not due yet.
	if n, _ := s.Tick(); n != 0 {
		t.Error("should not run before the first period elapses")
	}
	c.Advance(23 * time.Hour)
	if n, _ := s.Tick(); n != 0 {
		t.Error("still within the first period")
	}
	c.Advance(time.Hour)
	if n, _ := s.Tick(); n != 1 {
		t.Errorf("one execution due, got %d", n)
	}
	// Tick again immediately: nothing new.
	if n, _ := s.Tick(); n != 0 {
		t.Error("no catch-up needed")
	}
	// Jump three days: catch-up executes three times.
	c.Advance(72 * time.Hour)
	if n, _ := s.Tick(); n != 3 {
		t.Errorf("catch-up runs = %d, want 3", n)
	}
	if len(runs) != 4 {
		t.Errorf("total runs = %d", len(runs))
	}
	info := s.Tasks()
	if len(info) != 1 || info[0].Runs != 4 || info[0].Every != 24*time.Hour {
		t.Errorf("task info: %+v", info)
	}
}

func TestTaskErrorsStillReschedule(t *testing.T) {
	c := NewManualClock(t0)
	s := NewScheduler(c)
	boom := errors.New("boom")
	calls := 0
	_ = s.Repeat("fail", time.Hour, func(time.Time) error {
		calls++
		return boom
	})
	c.Advance(time.Hour)
	if _, err := s.Tick(); !errors.Is(err, boom) {
		t.Error("error should propagate")
	}
	c.Advance(time.Hour)
	if _, err := s.Tick(); !errors.Is(err, boom) {
		t.Error("task should keep running after an error")
	}
	if calls != 2 {
		t.Errorf("calls = %d", calls)
	}
}

func TestCancelAndDuplicates(t *testing.T) {
	s := NewScheduler(NewManualClock(t0))
	noop := func(time.Time) error { return nil }
	if err := s.Repeat("t", time.Hour, noop); err != nil {
		t.Fatal(err)
	}
	if err := s.Repeat("t", time.Hour, noop); !errors.Is(err, ErrTaskExists) {
		t.Error("duplicate schedule")
	}
	if err := s.Repeat("bad", 0, noop); err == nil {
		t.Error("non-positive period")
	}
	if err := s.Cancel("t"); err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel("t"); !errors.Is(err, ErrTaskNotFound) {
		t.Error("double cancel")
	}
}

func TestMultipleTasksOrdered(t *testing.T) {
	c := NewManualClock(t0)
	s := NewScheduler(c)
	var order []string
	_ = s.Repeat("a", time.Hour, func(time.Time) error { order = append(order, "a"); return nil })
	_ = s.Repeat("b", time.Hour, func(time.Time) error { order = append(order, "b"); return nil })
	c.Advance(time.Hour)
	if n, _ := s.Tick(); n != 2 {
		t.Fatalf("runs = %d", n)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("scheduling order not respected: %v", order)
	}
}

func TestRunWithRealClock(t *testing.T) {
	s := NewScheduler(RealClock{})
	done := make(chan struct{})
	fired := make(chan struct{}, 1)
	_ = s.Repeat("fast", 5*time.Millisecond, func(time.Time) error {
		select {
		case fired <- struct{}{}:
		default:
		}
		return nil
	})
	go func() {
		_ = s.Run(done, time.Millisecond)
	}()
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Error("task never fired under Run")
	}
	close(done)
}
