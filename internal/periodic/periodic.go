// Package periodic provides the periodic-execution substrate the paper's
// prototype obtains from apoc.periodic.repeat: named tasks executed every N
// duration, driven either by the wall clock or by a manual clock that tests
// and simulations advance explicitly (e.g. one day per step, as in the
// Essential Summary experiments).
//
// The package has two halves:
//
//   - Clock, RealClock and ManualClock abstract time for every
//     time-dependent component of the system (alert timestamps, datetime()
//     in queries, summary rollovers). A deployment runs on RealClock; a
//     simulation or test injects a ManualClock and advances it explicitly,
//     which makes periodic behaviour fully deterministic.
//   - Scheduler executes named TaskFuncs at fixed periods against whichever
//     Clock it was built on. In simulation mode the driver calls Tick after
//     each clock advance; a task that is several periods overdue runs once
//     per elapsed period (catch-up), matching apoc.periodic.repeat's
//     behaviour when the database was busy. In wall-clock mode Run polls
//     Tick at a chosen resolution until stopped.
//
// The first execution of a task is due one full period after scheduling —
// scheduling is not an execution. Task executions can be observed through
// SchedulerMetrics (run counts, durations and error counts per task), which
// the knowledge base wires into its metrics registry.
package periodic

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Clock abstracts time for schedulers, summary managers and rule engines.
type Clock interface {
	Now() time.Time
}

// RealClock reads the wall clock.
type RealClock struct{}

// Now returns time.Now().
func (RealClock) Now() time.Time { return time.Now() }

// ManualClock is an explicitly advanced clock for deterministic tests and
// simulations.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewManualClock returns a manual clock set to start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{t: start}
}

// Now returns the clock's current time.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d and returns the new time.
func (c *ManualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}

// Set moves the clock to t.
func (c *ManualClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = t
}

// Errors reported by the scheduler.
var (
	ErrTaskExists   = errors.New("periodic: task already scheduled")
	ErrTaskNotFound = errors.New("periodic: task not found")
)

// TaskFunc is the body of a periodic task.
type TaskFunc func(now time.Time) error

type task struct {
	name  string
	every time.Duration
	fn    TaskFunc
	next  time.Time
	runs  int
	seq   int
}

// SchedulerMetrics holds the scheduler's optional instrumentation. All
// fields may be nil (instrument methods on nil receivers no-op).
type SchedulerMetrics struct {
	// TaskRuns counts executions, labelled by task name.
	TaskRuns *metrics.CounterVec
	// TaskSeconds observes per-execution duration, labelled by task name.
	TaskSeconds *metrics.HistogramVec
	// TaskErrors counts executions that returned an error, labelled by
	// task name.
	TaskErrors *metrics.CounterVec
}

// Scheduler executes named tasks at fixed periods against a Clock. Due
// tasks run when Tick is called (simulation mode) or continuously from Run
// (wall-clock mode). The first execution of a task is due one full period
// after scheduling, matching apoc.periodic.repeat.
type Scheduler struct {
	mu      sync.Mutex
	clock   Clock
	tasks   map[string]*task
	nextSeq int
	metrics SchedulerMetrics
}

// SetMetrics installs the scheduler's instrumentation.
func (s *Scheduler) SetMetrics(m SchedulerMetrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = m
}

// NewScheduler returns a scheduler over the given clock (nil = RealClock).
func NewScheduler(clock Clock) *Scheduler {
	if clock == nil {
		clock = RealClock{}
	}
	return &Scheduler{clock: clock, tasks: make(map[string]*task)}
}

// Repeat schedules fn to run every period (apoc.periodic.repeat).
func (s *Scheduler) Repeat(name string, every time.Duration, fn TaskFunc) error {
	if every <= 0 {
		return fmt.Errorf("periodic: period must be positive")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tasks[name]; dup {
		return fmt.Errorf("%w: %s", ErrTaskExists, name)
	}
	s.tasks[name] = &task{
		name:  name,
		every: every,
		fn:    fn,
		next:  s.clock.Now().Add(every),
		seq:   s.nextSeq,
	}
	s.nextSeq++
	return nil
}

// Cancel removes a task.
func (s *Scheduler) Cancel(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tasks[name]; !ok {
		return fmt.Errorf("%w: %s", ErrTaskNotFound, name)
	}
	delete(s.tasks, name)
	return nil
}

// TaskInfo describes a scheduled task.
type TaskInfo struct {
	Name  string
	Every time.Duration
	Next  time.Time
	Runs  int
}

// Tasks lists the scheduled tasks in scheduling order.
func (s *Scheduler) Tasks() []TaskInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TaskInfo, 0, len(s.tasks))
	for _, t := range s.tasks {
		out = append(out, TaskInfo{Name: t.name, Every: t.every, Next: t.next, Runs: t.runs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Tick runs every task whose next execution time has arrived, repeatedly
// per task if several periods have elapsed (catch-up). It returns the
// number of executions and the first error encountered; a failing task is
// still rescheduled.
func (s *Scheduler) Tick() (int, error) {
	now := s.clock.Now()
	s.mu.Lock()
	due := make([]*task, 0, len(s.tasks))
	for _, t := range s.tasks {
		if !t.next.After(now) {
			due = append(due, t)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i].seq < due[j].seq })
	s.mu.Unlock()

	ran := 0
	var firstErr error
	for _, t := range due {
		for {
			s.mu.Lock()
			if _, still := s.tasks[t.name]; !still || t.next.After(now) {
				s.mu.Unlock()
				break
			}
			t.next = t.next.Add(t.every)
			t.runs++
			m := s.metrics
			s.mu.Unlock()
			ran++
			var t0 time.Time
			if m.TaskSeconds != nil {
				t0 = time.Now()
			}
			err := t.fn(now)
			if !t0.IsZero() {
				m.TaskSeconds.With(t.name).ObserveSince(t0)
			}
			m.TaskRuns.With(t.name).Inc()
			if err != nil {
				m.TaskErrors.With(t.name).Inc()
				if firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	return ran, firstErr
}

// Run drives Tick in a goroutine-friendly loop until stop is closed,
// polling at the given resolution. Intended for wall-clock deployments; the
// benchmarks and tests use Tick with a ManualClock instead.
func (s *Scheduler) Run(stop <-chan struct{}, resolution time.Duration) error {
	if resolution <= 0 {
		resolution = time.Second
	}
	ticker := time.NewTicker(resolution)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return nil
		case <-ticker.C:
			if _, err := s.Tick(); err != nil {
				return err
			}
		}
	}
}
