package schema

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/value"
)

// essentialSummarySrc is the paper's Fig. 4 schema, verbatim modulo
// whitespace.
const essentialSummarySrc = `
CREATE GRAPH TYPE EssentialSummary STRICT {
  (summaryType: Summary {date DATE}),
  (alertType: Alert {rule STRING, hub STRING, dateTime DATETIME, OPEN}),
  (currentType: summaryType & Current),
  (:summaryType)-[nextType: next]->(:summaryType),
  (:summaryType)-[hasType: has]->(:alertType)
  // Constraints
  FOR (x:summaryType) EXCLUSIVE MANDATORY SINGLETON x.date,
  FOR (x:alertType) EXCLUSIVE MANDATORY SINGLETON x.dateTime
}`

func TestParseEssentialSummary(t *testing.T) {
	g, err := ParseGraphType(essentialSummarySrc)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "EssentialSummary" || !g.Strict {
		t.Error("header")
	}
	if len(g.Nodes) != 3 || len(g.Edges) != 2 {
		t.Fatalf("nodes=%d edges=%d", len(g.Nodes), len(g.Edges))
	}
	alert := findType(g, "alertType")
	if alert == nil || !alert.Open || len(alert.Props) != 3 {
		t.Errorf("alertType: %+v", alert)
	}
	if len(alert.Keys) != 1 || alert.Keys[0].Prop != "dateTime" || !alert.Keys[0].Exclusive {
		t.Errorf("alert key: %+v", alert.Keys)
	}
	cur := findType(g, "currentType")
	if cur == nil || len(cur.Labels) != 2 || cur.Labels[0] != "Summary" || cur.Labels[1] != "Current" {
		t.Errorf("currentType labels: %+v", cur)
	}
	if len(cur.Props) != 1 || cur.Props[0].Name != "date" {
		t.Error("currentType should inherit the date property")
	}
	next := g.Edges[0]
	if next.Name != "nextType" || next.Type != "next" || next.From != "summaryType" || next.To != "summaryType" {
		t.Errorf("next edge: %+v", next)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"CREATE GRAPH TYPE X STRICT { (a: L { p BADTYPE }) }",
		"CREATE GRAPH TYPE X STRICT { (:a)-[e: t]->(:b) }",                 // dangling refs
		"CREATE GRAPH TYPE X STRICT { (a: L), FOR (x:zzz) MANDATORY x.p }", // unknown type in FOR
		"CREATE GRAPH TYPE X STRICT { (a: L), FOR (x:a) x.p }",             // missing facets
		"CREATE GRAPH TYPE X STRICT { (a: L), FOR (y:a) MANDATORY x.p }",   // var mismatch
		"CREATE GRAPH TYPE X STRICT { (a: L), (a: M) }",                    // duplicate alias
		"CREATE GRAPH TYPE X STRICT { (a: L",                               // unterminated
	}
	for _, src := range bad {
		if _, err := ParseGraphType(src); err == nil {
			t.Errorf("ParseGraphType(%q) should fail", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseGraphType should panic on bad input")
		}
	}()
	MustParseGraphType("garbage")
}

func boundStore(t *testing.T, src string) *graph.Store {
	t.Helper()
	g := MustParseGraphType(src)
	s := graph.NewStore()
	if err := g.Bind(s); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStrictRejectsUnknownLabel(t *testing.T) {
	s := boundStore(t, essentialSummarySrc)
	err := s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Mystery"}, nil)
		return err
	})
	var ev *ErrViolations
	if !errors.As(err, &ev) {
		t.Fatalf("expected ErrViolations, got %v", err)
	}
	if !strings.Contains(err.Error(), "no declared node type") {
		t.Errorf("message: %v", err)
	}
	if s.Stats().Nodes != 0 {
		t.Error("violating commit must roll back")
	}
}

func TestLooseAllowsUnknownLabel(t *testing.T) {
	s := boundStore(t, "CREATE GRAPH TYPE T LOOSE { (a: Known {v INT}) }")
	err := s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Mystery"}, nil)
		return err
	})
	if err != nil {
		t.Errorf("loose schema should allow undeclared labels: %v", err)
	}
}

func TestMandatoryProperty(t *testing.T) {
	s := boundStore(t, essentialSummarySrc)
	err := s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Summary"}, nil) // missing date
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "missing mandatory property date") {
		t.Errorf("got %v", err)
	}
	err = s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Summary"},
			map[string]value.Value{"date": value.DateTime(time.Now())})
		return err
	})
	if err != nil {
		t.Errorf("valid summary rejected: %v", err)
	}
}

func TestOptionalProperty(t *testing.T) {
	s := boundStore(t, "CREATE GRAPH TYPE T STRICT { (a: L {must STRING, OPTIONAL may INT}) }")
	err := s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"L"}, map[string]value.Value{"must": value.Str("x")})
		return err
	})
	if err != nil {
		t.Errorf("optional property may be absent: %v", err)
	}
}

func TestPropertyTypeChecking(t *testing.T) {
	s := boundStore(t, essentialSummarySrc)
	err := s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Alert"}, map[string]value.Value{
			"rule":     value.Int(42), // should be STRING
			"hub":      value.Str("E"),
			"dateTime": value.DateTime(time.Now()),
		})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "kind INTEGER, want STRING") {
		t.Errorf("got %v", err)
	}
}

func TestOpenTypeAllowsExtraProps(t *testing.T) {
	s := boundStore(t, essentialSummarySrc)
	err := s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Alert"}, map[string]value.Value{
			"rule": value.Str("R2"), "hub": value.Str("A"),
			"dateTime": value.DateTime(time.Now()),
			"counter":  value.Int(150), // extra, allowed by OPEN
		})
		return err
	})
	if err != nil {
		t.Errorf("OPEN type should allow extras: %v", err)
	}
}

func TestClosedTypeRejectsExtraProps(t *testing.T) {
	s := boundStore(t, essentialSummarySrc)
	err := s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Summary"}, map[string]value.Value{
			"date":  value.DateTime(time.Now()),
			"extra": value.Int(1),
		})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "undeclared property extra") {
		t.Errorf("got %v", err)
	}
}

func TestExclusiveKey(t *testing.T) {
	s := boundStore(t, essentialSummarySrc)
	d := time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC)
	err := s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Summary"}, map[string]value.Value{"date": value.DateTime(d)})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Summary"}, map[string]value.Value{"date": value.DateTime(d)})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "not exclusive") {
		t.Errorf("duplicate key accepted: %v", err)
	}
	// A different date is fine.
	err = s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Summary"},
			map[string]value.Value{"date": value.DateTime(d.Add(24 * time.Hour))})
		return err
	})
	if err != nil {
		t.Errorf("distinct key rejected: %v", err)
	}
}

func TestSingletonKeyRejectsList(t *testing.T) {
	s := boundStore(t, "CREATE GRAPH TYPE T STRICT { (a: L {k ANY}), FOR (x:a) SINGLETON x.k }")
	err := s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"L"},
			map[string]value.Value{"k": value.List(value.Int(1), value.Int(2))})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "singleton") {
		t.Errorf("got %v", err)
	}
}

func TestEdgeEndpointTyping(t *testing.T) {
	s := boundStore(t, essentialSummarySrc)
	d := time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC)
	var sum1, sum2, alert graph.NodeID
	err := s.Update(func(tx *graph.Tx) error {
		var err error
		sum1, err = tx.CreateNode([]string{"Summary"}, map[string]value.Value{"date": value.DateTime(d)})
		if err != nil {
			return err
		}
		sum2, err = tx.CreateNode([]string{"Summary"},
			map[string]value.Value{"date": value.DateTime(d.Add(24 * time.Hour))})
		if err != nil {
			return err
		}
		alert, err = tx.CreateNode([]string{"Alert"}, map[string]value.Value{
			"rule": value.Str("R2"), "hub": value.Str("A"), "dateTime": value.DateTime(d)})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Valid edges.
	if err := s.Update(func(tx *graph.Tx) error {
		if _, err := tx.CreateRel(sum1, sum2, "next", nil); err != nil {
			return err
		}
		_, err := tx.CreateRel(sum2, alert, "has", nil)
		return err
	}); err != nil {
		t.Fatalf("valid edges rejected: %v", err)
	}
	// Invalid: next from summary to alert.
	err = s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateRel(sum1, alert, "next", nil)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "do not satisfy") {
		t.Errorf("bad endpoints accepted: %v", err)
	}
	// Invalid in STRICT: undeclared relationship type.
	err = s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateRel(sum1, sum2, "mystery", nil)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "not declared") {
		t.Errorf("undeclared rel type accepted: %v", err)
	}
}

func TestValidationOnUpdateNotJustCreate(t *testing.T) {
	s := boundStore(t, essentialSummarySrc)
	var id graph.NodeID
	d := time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC)
	_ = s.Update(func(tx *graph.Tx) error {
		id, _ = tx.CreateNode([]string{"Summary"}, map[string]value.Value{"date": value.DateTime(d)})
		return nil
	})
	// Removing the mandatory property must fail at commit.
	err := s.Update(func(tx *graph.Tx) error { return tx.RemoveNodeProp(id, "date") })
	if err == nil {
		t.Error("removing mandatory property should violate schema")
	}
	// Adding a label that changes the type match is re-validated.
	err = s.Update(func(tx *graph.Tx) error { return tx.SetLabel(id, "Current") })
	if err != nil {
		t.Errorf("Summary → Summary&Current is declared and should pass: %v", err)
	}
}

func TestNodeTypeForMostSpecific(t *testing.T) {
	g := MustParseGraphType(essentialSummarySrc)
	nt, ok := g.NodeTypeFor([]string{"Summary", "Current"})
	if !ok || nt.Name != "currentType" {
		t.Errorf("most specific type = %+v", nt)
	}
	nt, ok = g.NodeTypeFor([]string{"Summary"})
	if !ok || nt.Name != "summaryType" {
		t.Errorf("plain summary type = %+v", nt)
	}
	if _, ok := g.NodeTypeFor([]string{"Nope"}); ok {
		t.Error("unknown label should not match")
	}
}

func TestPropTypeAccepts(t *testing.T) {
	if !TypeFloat.Accepts(value.Int(1)) {
		t.Error("INT widens to FLOAT")
	}
	if TypeInt.Accepts(value.Float(1)) {
		t.Error("FLOAT does not narrow to INT")
	}
	if !TypeDateTime.Accepts(value.Str("2023-04-01")) {
		t.Error("DATE accepts ISO strings for ergonomic population")
	}
	if !TypeAny.Accepts(value.List()) {
		t.Error("ANY accepts everything")
	}
	for pt, name := range map[PropType]string{
		TypeString: "STRING", TypeInt: "INT", TypeFloat: "FLOAT",
		TypeBool: "BOOL", TypeDateTime: "DATETIME", TypeDuration: "DURATION",
		TypeAny: "ANY",
	} {
		if pt.String() != name {
			t.Errorf("PropType(%d).String() = %s", int(pt), pt)
		}
	}
}

func TestRunningExampleSchemaFig2(t *testing.T) {
	// A condensed version of the paper's Fig. 2 running-example schema.
	src := `
	CREATE GRAPH TYPE CovidScenario STRICT {
	  (effectType: Effect {type STRING, level STRING}),
	  (mutationType: Mutation {id STRING, hub STRING}),
	  (labType: Lab {name STRING, hub STRING}),
	  (sequenceType: Sequence {id STRING, hub STRING, OPTIONAL variant STRING}),
	  (variantType: Variant {name STRING, hub STRING}),
	  (hospitalType: Hospital {name STRING, hub STRING}),
	  (regionType: Region {name STRING, hub STRING}),
	  (patientType: Patient {id STRING, hub STRING, OPEN}),
	  (:mutationType)-[hasEffectType: HasEffect]->(:effectType),
	  (:sequenceType)-[sequencedAtType: SequencedAt]->(:labType),
	  (:sequenceType)-[assignedToType: AssignedTo]->(:variantType),
	  (:variantType)-[containsType: Contains]->(:mutationType),
	  (:labType)-[labInType: LocatedIn]->(:regionType),
	  (:hospitalType)-[hospInType: LocatedIn]->(:regionType),
	  (:patientType)-[treatedAtType: TreatedAt]->(:hospitalType),
	  FOR (x:regionType) EXCLUSIVE MANDATORY SINGLETON x.name,
	  FOR (x:sequenceType) EXCLUSIVE MANDATORY SINGLETON x.id
	}`
	g, err := ParseGraphType(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 8 || len(g.Edges) != 7 {
		t.Errorf("nodes=%d edges=%d", len(g.Nodes), len(g.Edges))
	}
	s := graph.NewStore()
	if err := g.Bind(s); err != nil {
		t.Fatal(err)
	}
	// LocatedIn is declared twice with different endpoints; both must work.
	err = s.Update(func(tx *graph.Tx) error {
		region, _ := tx.CreateNode([]string{"Region"},
			map[string]value.Value{"name": value.Str("Lombardy"), "hub": value.Str("R")})
		lab, _ := tx.CreateNode([]string{"Lab"},
			map[string]value.Value{"name": value.Str("L1"), "hub": value.Str("A")})
		hosp, _ := tx.CreateNode([]string{"Hospital"},
			map[string]value.Value{"name": value.Str("H1"), "hub": value.Str("C")})
		if _, err := tx.CreateRel(lab, region, "LocatedIn", nil); err != nil {
			return err
		}
		_, err := tx.CreateRel(hosp, region, "LocatedIn", nil)
		return err
	})
	if err != nil {
		t.Errorf("overloaded edge type: %v", err)
	}
}

func TestEdgePropertyValidation(t *testing.T) {
	s := boundStore(t, `CREATE GRAPH TYPE T STRICT {
		(at: A), (bt: B),
		(:at)-[et: LINK {weight FLOAT, OPTIONAL note STRING}]->(:bt),
		(:at)-[ot: OPENLINK {OPEN}]->(:bt)
	}`)
	var a, b graph.NodeID
	_ = s.Update(func(tx *graph.Tx) error {
		a, _ = tx.CreateNode([]string{"A"}, nil)
		b, _ = tx.CreateNode([]string{"B"}, nil)
		return nil
	})
	// Valid edge.
	if err := s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateRel(a, b, "LINK", map[string]value.Value{"weight": value.Float(0.5)})
		return err
	}); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	// Missing mandatory property.
	err := s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateRel(a, b, "LINK", nil)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "missing mandatory property weight") {
		t.Errorf("missing edge prop: %v", err)
	}
	// Wrong kind.
	err = s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateRel(a, b, "LINK", map[string]value.Value{"weight": value.Str("heavy")})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "want FLOAT") {
		t.Errorf("wrong edge prop kind: %v", err)
	}
	// Undeclared extra property on a closed edge type.
	err = s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateRel(a, b, "LINK", map[string]value.Value{
			"weight": value.Float(1), "bogus": value.Int(1)})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "undeclared property bogus") {
		t.Errorf("extra edge prop: %v", err)
	}
	// OPEN edge types accept anything.
	if err := s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateRel(a, b, "OPENLINK", map[string]value.Value{"x": value.Int(1)})
		return err
	}); err != nil {
		t.Errorf("open edge rejected: %v", err)
	}
}
