// Package schema implements PG-Schema for the property-graph store: typed
// node and edge declarations, STRICT/LOOSE graph types, OPEN types, and
// PG-Key constraints (EXCLUSIVE MANDATORY SINGLETON), following the
// PG-Schema proposal the paper builds on (Fig. 2 and Fig. 4).
//
// A GraphType can be authored programmatically or parsed from the paper's
// textual syntax:
//
//	CREATE GRAPH TYPE EssentialSummary STRICT {
//	  (summaryType: Summary {date DATE}),
//	  (alertType: Alert {rule STRING, hub STRING, dateTime DATETIME, OPEN}),
//	  (currentType: summaryType & Current),
//	  (:summaryType)-[nextType: next]->(:summaryType),
//	  (:summaryType)-[hasType: has]->(:alertType)
//	  FOR (x:summaryType) EXCLUSIVE MANDATORY SINGLETON x.date,
//	  FOR (x:alertType) EXCLUSIVE MANDATORY SINGLETON x.dateTime
//	}
//
// Bind attaches the graph type to a store as a commit-time validator and
// creates the property indexes that back EXCLUSIVE keys.
package schema

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/value"
)

// PropType is the declared type of a property.
type PropType int

// Property types supported by PG-Schema declarations.
const (
	TypeAny PropType = iota
	TypeString
	TypeInt
	TypeFloat
	TypeBool
	TypeDateTime
	TypeDuration
)

// String returns the schema-syntax name of the type.
func (t PropType) String() string {
	switch t {
	case TypeString:
		return "STRING"
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeBool:
		return "BOOL"
	case TypeDateTime:
		return "DATETIME"
	case TypeDuration:
		return "DURATION"
	default:
		return "ANY"
	}
}

// Accepts reports whether a concrete value conforms to the declared type.
func (t PropType) Accepts(v value.Value) bool {
	switch t {
	case TypeAny:
		return true
	case TypeString:
		return v.Kind() == value.KindString
	case TypeInt:
		return v.Kind() == value.KindInt
	case TypeFloat:
		return v.Kind() == value.KindFloat || v.Kind() == value.KindInt
	case TypeBool:
		return v.Kind() == value.KindBool
	case TypeDateTime:
		return v.Kind() == value.KindDateTime || v.Kind() == value.KindString
	case TypeDuration:
		return v.Kind() == value.KindDuration
	default:
		return true
	}
}

// PropSpec declares one property of a node or edge type.
type PropSpec struct {
	Name     string
	Type     PropType
	Optional bool
}

// Key is a PG-Key constraint on a node type. In the paper's syntax every
// key is EXCLUSIVE MANDATORY SINGLETON; the three facets can be toggled
// individually here.
type Key struct {
	Prop      string
	Exclusive bool // no two nodes of the type share the value
	Mandatory bool // every node of the type carries the property
	Singleton bool // the property holds a single (non-list) value
}

// NodeType declares a typed class of nodes identified by a label set.
type NodeType struct {
	Name   string // type alias, e.g. "summaryType"
	Labels []string
	Props  []PropSpec
	Open   bool // extra properties allowed
	Keys   []Key
}

// primaryLabel returns the first (defining) label of the type.
func (nt *NodeType) primaryLabel() string {
	if len(nt.Labels) == 0 {
		return ""
	}
	return nt.Labels[0]
}

// EdgeType declares a relationship type with endpoint node types.
type EdgeType struct {
	Name  string // type alias, e.g. "nextType"
	Type  string // relationship type, e.g. "next"
	From  string // node type name
	To    string // node type name
	Props []PropSpec
	Open  bool
}

// GraphType is a complete PG-Schema graph type.
type GraphType struct {
	Name   string
	Strict bool
	Nodes  []*NodeType
	Edges  []*EdgeType

	byName  map[string]*NodeType
	byLabel map[string][]*NodeType
}

// Violation describes one schema or key violation found at commit time.
type Violation struct {
	Entity string // "node" or "edge"
	ID     int64
	Msg    string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s %d: %s", v.Entity, v.ID, v.Msg)
}

// ErrViolations wraps the violations that aborted a commit.
type ErrViolations struct {
	GraphType string
	List      []Violation
}

func (e *ErrViolations) Error() string {
	msgs := make([]string, len(e.List))
	for i, v := range e.List {
		msgs[i] = v.String()
	}
	return fmt.Sprintf("schema %s: %d violation(s): %s",
		e.GraphType, len(e.List), strings.Join(msgs, "; "))
}

// ErrUnknownType is returned for dangling node-type references.
var ErrUnknownType = errors.New("schema: unknown node type")

// Finalize resolves internal lookup tables and validates the declaration
// itself (duplicate names, dangling edge endpoints). It must be called
// before Bind or Check; the parser calls it automatically.
func (g *GraphType) Finalize() error {
	g.byName = make(map[string]*NodeType, len(g.Nodes))
	g.byLabel = make(map[string][]*NodeType)
	for _, nt := range g.Nodes {
		if nt.Name != "" {
			if _, dup := g.byName[nt.Name]; dup {
				return fmt.Errorf("schema: duplicate node type %s", nt.Name)
			}
			g.byName[nt.Name] = nt
		}
		if len(nt.Labels) == 0 {
			return fmt.Errorf("schema: node type %s has no labels", nt.Name)
		}
		g.byLabel[nt.primaryLabel()] = append(g.byLabel[nt.primaryLabel()], nt)
		for _, k := range nt.Keys {
			found := false
			for _, p := range nt.Props {
				if p.Name == k.Prop {
					found = true
					break
				}
			}
			if !found && !nt.Open {
				return fmt.Errorf("schema: key %s.%s not among declared properties", nt.Name, k.Prop)
			}
		}
	}
	for _, et := range g.Edges {
		if _, ok := g.byName[et.From]; !ok {
			return fmt.Errorf("%w: %s (edge %s)", ErrUnknownType, et.From, et.Type)
		}
		if _, ok := g.byName[et.To]; !ok {
			return fmt.Errorf("%w: %s (edge %s)", ErrUnknownType, et.To, et.Type)
		}
	}
	return nil
}

// NodeTypeFor returns the node type whose label set is carried by the given
// labels (most specific match: the type with the largest matching label
// set wins).
func (g *GraphType) NodeTypeFor(labels []string) (*NodeType, bool) {
	set := make(map[string]bool, len(labels))
	for _, l := range labels {
		set[l] = true
	}
	var best *NodeType
	for _, nt := range g.Nodes {
		all := true
		for _, l := range nt.Labels {
			if !set[l] {
				all = false
				break
			}
		}
		if all && (best == nil || len(nt.Labels) > len(best.Labels)) {
			best = nt
		}
	}
	return best, best != nil
}

// edgeTypesFor returns the declared edge types with the given relationship
// type name.
func (g *GraphType) edgeTypesFor(relType string) []*EdgeType {
	var out []*EdgeType
	for _, et := range g.Edges {
		if et.Type == relType {
			out = append(out, et)
		}
	}
	return out
}

// Bind installs the graph type on a store: EXCLUSIVE keys get property
// indexes, and a commit-time validator enforces the schema on every
// transaction from now on.
func (g *GraphType) Bind(s *graph.Store) error {
	if g.byName == nil {
		if err := g.Finalize(); err != nil {
			return err
		}
	}
	for _, nt := range g.Nodes {
		for _, k := range nt.Keys {
			if !k.Exclusive {
				continue
			}
			err := s.CreateIndex(nt.primaryLabel(), k.Prop)
			if err != nil && !errors.Is(err, graph.ErrIndexExists) {
				return err
			}
		}
	}
	s.AddValidator(func(tx *graph.Tx) error {
		violations := g.Check(tx)
		if len(violations) == 0 {
			return nil
		}
		return &ErrViolations{GraphType: g.Name, List: violations}
	})
	return nil
}

// Check validates the changes of the transaction against the graph type and
// returns all violations found. Only entities touched by the transaction
// are inspected, so validation cost is proportional to the change set.
func (g *GraphType) Check(tx *graph.Tx) []Violation {
	var out []Violation
	data := tx.Data()

	touchedNodes := make(map[graph.NodeID]bool)
	for _, id := range data.CreatedNodes {
		touchedNodes[id] = true
	}
	for _, lc := range data.AssignedLabels {
		touchedNodes[lc.Node] = true
	}
	for _, lc := range data.RemovedLabels {
		touchedNodes[lc.Node] = true
	}
	for _, pc := range data.AssignedProps {
		if pc.Kind == graph.NodeEntity {
			touchedNodes[pc.Node] = true
		}
	}
	for _, pc := range data.RemovedProps {
		if pc.Kind == graph.NodeEntity {
			touchedNodes[pc.Node] = true
		}
	}

	ids := make([]graph.NodeID, 0, len(touchedNodes))
	for id := range touchedNodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, id := range ids {
		n, ok := tx.Node(id)
		if !ok {
			continue // deleted later in the same transaction
		}
		out = append(out, g.checkNode(tx, n)...)
	}

	for _, rid := range data.CreatedRels {
		r, ok := tx.Rel(rid)
		if !ok {
			continue
		}
		out = append(out, g.checkEdge(tx, r)...)
	}
	return out
}

func (g *GraphType) checkNode(tx *graph.Tx, n graph.Node) []Violation {
	var out []Violation
	nt, ok := g.NodeTypeFor(n.Labels)
	if !ok {
		if g.Strict {
			out = append(out, Violation{Entity: "node", ID: int64(n.ID),
				Msg: fmt.Sprintf("labels %v match no declared node type", n.Labels)})
		}
		return out
	}
	declared := make(map[string]PropSpec, len(nt.Props))
	for _, p := range nt.Props {
		declared[p.Name] = p
	}
	for _, p := range nt.Props {
		v, has := n.Props[p.Name]
		if !has {
			if !p.Optional {
				out = append(out, Violation{Entity: "node", ID: int64(n.ID),
					Msg: fmt.Sprintf("missing mandatory property %s (type %s)", p.Name, nt.Name)})
			}
			continue
		}
		if !p.Type.Accepts(v) {
			out = append(out, Violation{Entity: "node", ID: int64(n.ID),
				Msg: fmt.Sprintf("property %s has kind %s, want %s", p.Name, v.Kind(), p.Type)})
		}
	}
	if !nt.Open {
		keys := make([]string, 0, len(n.Props))
		for k := range n.Props {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if _, ok := declared[k]; !ok {
				out = append(out, Violation{Entity: "node", ID: int64(n.ID),
					Msg: fmt.Sprintf("undeclared property %s on closed type %s", k, nt.Name)})
			}
		}
	}
	for _, key := range nt.Keys {
		v, has := n.Props[key.Prop]
		if !has {
			if key.Mandatory {
				out = append(out, Violation{Entity: "node", ID: int64(n.ID),
					Msg: fmt.Sprintf("missing mandatory key %s.%s", nt.Name, key.Prop)})
			}
			continue
		}
		if key.Singleton && v.Kind() == value.KindList {
			out = append(out, Violation{Entity: "node", ID: int64(n.ID),
				Msg: fmt.Sprintf("key %s.%s must be a singleton value", nt.Name, key.Prop)})
		}
		if key.Exclusive {
			if cnt, ok := tx.CountByProp(nt.primaryLabel(), key.Prop, v); ok && cnt > 1 {
				out = append(out, Violation{Entity: "node", ID: int64(n.ID),
					Msg: fmt.Sprintf("key %s.%s value %s is not exclusive (%d holders)",
						nt.Name, key.Prop, v, cnt)})
			}
		}
	}
	return out
}

func (g *GraphType) checkEdge(tx *graph.Tx, r graph.Rel) []Violation {
	var out []Violation
	ets := g.edgeTypesFor(r.Type)
	if len(ets) == 0 {
		if g.Strict {
			out = append(out, Violation{Entity: "edge", ID: int64(r.ID),
				Msg: fmt.Sprintf("relationship type %s is not declared", r.Type)})
		}
		return out
	}
	start, ok1 := tx.Node(r.Start)
	end, ok2 := tx.Node(r.End)
	if !ok1 || !ok2 {
		return out
	}
	for _, et := range ets {
		fromT := g.byName[et.From]
		toT := g.byName[et.To]
		if nodeHasAllLabels(start, fromT.Labels) && nodeHasAllLabels(end, toT.Labels) {
			// Endpoint typing satisfied; validate the declared properties.
			out = append(out, g.checkEdgeProps(r, et)...)
			return out
		}
	}
	out = append(out, Violation{Entity: "edge", ID: int64(r.ID),
		Msg: fmt.Sprintf("endpoints of %s do not satisfy any declaration", r.Type)})
	return out
}

func (g *GraphType) checkEdgeProps(r graph.Rel, et *EdgeType) []Violation {
	var out []Violation
	declared := make(map[string]PropSpec, len(et.Props))
	for _, p := range et.Props {
		declared[p.Name] = p
	}
	for _, p := range et.Props {
		v, has := r.Props[p.Name]
		if !has {
			if !p.Optional {
				out = append(out, Violation{Entity: "edge", ID: int64(r.ID),
					Msg: fmt.Sprintf("missing mandatory property %s (edge type %s)", p.Name, et.Name)})
			}
			continue
		}
		if !p.Type.Accepts(v) {
			out = append(out, Violation{Entity: "edge", ID: int64(r.ID),
				Msg: fmt.Sprintf("property %s has kind %s, want %s", p.Name, v.Kind(), p.Type)})
		}
	}
	if !et.Open {
		keys := make([]string, 0, len(r.Props))
		for k := range r.Props {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if _, ok := declared[k]; !ok {
				out = append(out, Violation{Entity: "edge", ID: int64(r.ID),
					Msg: fmt.Sprintf("undeclared property %s on closed edge type %s", k, et.Name)})
			}
		}
	}
	return out
}

func nodeHasAllLabels(n graph.Node, labels []string) bool {
	for _, l := range labels {
		if !n.HasLabel(l) {
			return false
		}
	}
	return true
}
