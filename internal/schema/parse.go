package schema

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseGraphType parses the paper's textual PG-Schema syntax (see the
// package comment for an example). The grammar subset:
//
//	graphType  := CREATE GRAPH TYPE name (STRICT|LOOSE) { element (',' element)* }
//	element    := nodeDecl | edgeDecl | keyDecl
//	nodeDecl   := '(' alias ':' base ('&' label)* props? ')'
//	base       := label | previously-declared-alias (inherits labels+props)
//	props      := '{' (propSpec (',' propSpec)*)? (',' OPEN)? '}'
//	propSpec   := [OPTIONAL] name type | OPEN
//	edgeDecl   := '(' ':' alias ')' '-' '[' alias ':' relType props? ']' '->' '(' ':' alias ')'
//	keyDecl    := FOR '(' var ':' alias ')' EXCLUSIVE MANDATORY SINGLETON var '.' prop
//
// Comments starting with // run to end of line.
func ParseGraphType(src string) (*GraphType, error) {
	p := &sparser{toks: stokenize(src)}
	if err := p.expectWords("CREATE", "GRAPH", "TYPE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	g := &GraphType{Name: name}
	switch {
	case p.acceptWord("STRICT"):
		g.Strict = true
	case p.acceptWord("LOOSE"):
		g.Strict = false
	default:
		g.Strict = true // the paper's examples default to STRICT
	}
	if !p.accept("{") {
		return nil, p.errf("expected '{'")
	}
	for !p.accept("}") {
		if p.eof() {
			return nil, p.errf("unterminated graph type body")
		}
		if p.accept(",") {
			continue
		}
		switch {
		case p.peekWord("FOR"):
			if err := p.parseKey(g); err != nil {
				return nil, err
			}
		case p.peek() == "(":
			if err := p.parseNodeOrEdge(g); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unexpected %q in graph type body", p.peek())
		}
	}
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustParseGraphType panics on error; for package-level schema constants.
func MustParseGraphType(src string) *GraphType {
	g, err := ParseGraphType(src)
	if err != nil {
		panic(err)
	}
	return g
}

type sparser struct {
	toks []string
	pos  int
}

func stokenize(src string) []string {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case strings.ContainsRune("(){}[]:,&.", rune(c)):
			toks = append(toks, string(c))
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '>':
			toks = append(toks, "->")
			i += 2
		case c == '<' && i+1 < len(src) && src[i+1] == '-':
			toks = append(toks, "<-")
			i += 2
		case c == '-':
			toks = append(toks, "-")
			i++
		default:
			start := i
			for i < len(src) && (src[i] == '_' || unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i]))) {
				i++
			}
			if i == start {
				toks = append(toks, string(c))
				i++
			} else {
				toks = append(toks, src[start:i])
			}
		}
	}
	return toks
}

func (p *sparser) eof() bool { return p.pos >= len(p.toks) }
func (p *sparser) peek() string {
	if p.eof() {
		return ""
	}
	return p.toks[p.pos]
}

func (p *sparser) peekWord(w string) bool {
	return strings.EqualFold(p.peek(), w)
}

func (p *sparser) accept(tok string) bool {
	if p.peek() == tok {
		p.pos++
		return true
	}
	return false
}

func (p *sparser) acceptWord(w string) bool {
	if p.peekWord(w) {
		p.pos++
		return true
	}
	return false
}

func (p *sparser) expectWords(ws ...string) error {
	for _, w := range ws {
		if !p.acceptWord(w) {
			return p.errf("expected %s", w)
		}
	}
	return nil
}

func (p *sparser) ident() (string, error) {
	t := p.peek()
	if t == "" || strings.ContainsAny(t, "(){}[]:,&.") {
		return "", p.errf("expected identifier, found %q", t)
	}
	p.pos++
	return t, nil
}

func (p *sparser) errf(format string, args ...any) error {
	return fmt.Errorf("pg-schema: %s (token %d)", fmt.Sprintf(format, args...), p.pos)
}

// parseNodeOrEdge handles both "(alias: ... )" node declarations and
// "(:from)-[alias: type]->(:to)" edge declarations.
func (p *sparser) parseNodeOrEdge(g *GraphType) error {
	if !p.accept("(") {
		return p.errf("expected '('")
	}
	if p.accept(":") {
		// Edge declaration: (:from)-[alias: type props]->(:to)
		from, err := p.ident()
		if err != nil {
			return err
		}
		if !p.accept(")") {
			return p.errf("expected ')' after edge source")
		}
		if !p.accept("-") {
			return p.errf("expected '-' in edge declaration")
		}
		if !p.accept("[") {
			return p.errf("expected '[' in edge declaration")
		}
		alias, err := p.ident()
		if err != nil {
			return err
		}
		if !p.accept(":") {
			return p.errf("expected ':' after edge alias")
		}
		relType, err := p.ident()
		if err != nil {
			return err
		}
		et := &EdgeType{Name: alias, Type: relType, From: from}
		if p.peek() == "{" {
			props, open, err := p.parseProps()
			if err != nil {
				return err
			}
			et.Props, et.Open = props, open
		}
		if !p.accept("]") {
			return p.errf("expected ']' in edge declaration")
		}
		if !p.accept("->") {
			return p.errf("expected '->' in edge declaration")
		}
		if !p.accept("(") || !p.accept(":") {
			return p.errf("expected '(:' for edge target")
		}
		to, err := p.ident()
		if err != nil {
			return err
		}
		if !p.accept(")") {
			return p.errf("expected ')' after edge target")
		}
		et.To = to
		g.Edges = append(g.Edges, et)
		return nil
	}

	// Node declaration: (alias: Base (& Label)* props?)
	alias, err := p.ident()
	if err != nil {
		return err
	}
	if !p.accept(":") {
		return p.errf("expected ':' after node type alias")
	}
	base, err := p.ident()
	if err != nil {
		return err
	}
	nt := &NodeType{Name: alias}
	// The base may reference an earlier alias, inheriting labels and props.
	if parent := findType(g, base); parent != nil {
		nt.Labels = append(nt.Labels, parent.Labels...)
		nt.Props = append(nt.Props, parent.Props...)
		nt.Open = parent.Open
	} else {
		nt.Labels = append(nt.Labels, base)
	}
	for p.accept("&") {
		extra, err := p.ident()
		if err != nil {
			return err
		}
		if parent := findType(g, extra); parent != nil {
			nt.Labels = append(nt.Labels, parent.Labels...)
			nt.Props = append(nt.Props, parent.Props...)
			if parent.Open {
				nt.Open = true
			}
		} else {
			nt.Labels = append(nt.Labels, extra)
		}
	}
	if p.peek() == "{" {
		props, open, err := p.parseProps()
		if err != nil {
			return err
		}
		nt.Props = append(nt.Props, props...)
		if open {
			nt.Open = true
		}
	}
	if !p.accept(")") {
		return p.errf("expected ')' after node declaration")
	}
	g.Nodes = append(g.Nodes, nt)
	return nil
}

func findType(g *GraphType, name string) *NodeType {
	for _, nt := range g.Nodes {
		if nt.Name == name {
			return nt
		}
	}
	return nil
}

func (p *sparser) parseProps() ([]PropSpec, bool, error) {
	if !p.accept("{") {
		return nil, false, p.errf("expected '{'")
	}
	var props []PropSpec
	open := false
	for !p.accept("}") {
		if p.eof() {
			return nil, false, p.errf("unterminated property list")
		}
		if p.accept(",") {
			continue
		}
		if p.acceptWord("OPEN") {
			open = true
			continue
		}
		optional := p.acceptWord("OPTIONAL")
		name, err := p.ident()
		if err != nil {
			return nil, false, err
		}
		typeName, err := p.ident()
		if err != nil {
			return nil, false, err
		}
		pt, err := parsePropType(typeName)
		if err != nil {
			return nil, false, err
		}
		props = append(props, PropSpec{Name: name, Type: pt, Optional: optional})
	}
	return props, open, nil
}

func parsePropType(name string) (PropType, error) {
	switch strings.ToUpper(name) {
	case "STRING", "STR":
		return TypeString, nil
	case "INT", "INTEGER":
		return TypeInt, nil
	case "FLOAT", "DOUBLE":
		return TypeFloat, nil
	case "BOOL", "BOOLEAN":
		return TypeBool, nil
	case "DATE", "DATETIME", "TIMESTAMP":
		return TypeDateTime, nil
	case "DURATION":
		return TypeDuration, nil
	case "ANY":
		return TypeAny, nil
	default:
		return TypeAny, fmt.Errorf("pg-schema: unknown property type %s", name)
	}
}

// parseKey parses FOR (x:alias) EXCLUSIVE MANDATORY SINGLETON x.prop.
// Any subset of the three facet keywords is accepted, in any order.
func (p *sparser) parseKey(g *GraphType) error {
	if !p.acceptWord("FOR") {
		return p.errf("expected FOR")
	}
	if !p.accept("(") {
		return p.errf("expected '(' after FOR")
	}
	varName, err := p.ident()
	if err != nil {
		return err
	}
	if !p.accept(":") {
		return p.errf("expected ':' in FOR binding")
	}
	typeName, err := p.ident()
	if err != nil {
		return err
	}
	if !p.accept(")") {
		return p.errf("expected ')' after FOR binding")
	}
	key := Key{}
	for {
		switch {
		case p.acceptWord("EXCLUSIVE"):
			key.Exclusive = true
			continue
		case p.acceptWord("MANDATORY"):
			key.Mandatory = true
			continue
		case p.acceptWord("SINGLETON"):
			key.Singleton = true
			continue
		}
		break
	}
	if !key.Exclusive && !key.Mandatory && !key.Singleton {
		return p.errf("key constraint requires at least one of EXCLUSIVE/MANDATORY/SINGLETON")
	}
	v, err := p.ident()
	if err != nil {
		return err
	}
	if v != varName {
		return p.errf("key references %s, but FOR bound %s", v, varName)
	}
	if !p.accept(".") {
		return p.errf("expected '.' in key property reference")
	}
	prop, err := p.ident()
	if err != nil {
		return err
	}
	key.Prop = prop
	nt := findType(g, typeName)
	if nt == nil {
		return fmt.Errorf("%w: %s (in FOR)", ErrUnknownType, typeName)
	}
	nt.Keys = append(nt.Keys, key)
	return nil
}
