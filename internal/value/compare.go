package value

import "math"

// Equal implements Cypher value equality with ternary logic: comparing NULL
// with anything yields NULL (unknown). INTEGER and FLOAT compare numerically
// across kinds. Lists compare element-wise, maps key-wise. Entity references
// compare by kind and identifier. The result is reported as (equal, known).
func Equal(a, b Value) (eq bool, known bool) {
	if a.kind == KindNull || b.kind == KindNull {
		return false, false
	}
	if a.IsNumber() && b.IsNumber() {
		return numericEqual(a, b), true
	}
	if a.kind != b.kind {
		return false, true
	}
	switch a.kind {
	case KindBool:
		return a.b == b.b, true
	case KindString:
		return a.s == b.s, true
	case KindDateTime:
		return a.t.Equal(b.t), true
	case KindDuration:
		return a.i == b.i, true
	case KindNode, KindRelationship:
		return a.i == b.i, true
	case KindList:
		if len(a.list) != len(b.list) {
			return false, true
		}
		unknown := false
		for i := range a.list {
			e, k := Equal(a.list[i], b.list[i])
			if !k {
				unknown = true
				continue
			}
			if !e {
				return false, true
			}
		}
		if unknown {
			return false, false
		}
		return true, true
	case KindMap:
		if len(a.m) != len(b.m) {
			return false, true
		}
		unknown := false
		for k, av := range a.m {
			bv, ok := b.m[k]
			if !ok {
				return false, true
			}
			e, kn := Equal(av, bv)
			if !kn {
				unknown = true
				continue
			}
			if !e {
				return false, true
			}
		}
		if unknown {
			return false, false
		}
		return true, true
	default:
		return false, true
	}
}

func numericEqual(a, b Value) bool {
	if a.kind == KindInt && b.kind == KindInt {
		return a.i == b.i
	}
	af, _ := a.NumberAsFloat()
	bf, _ := b.NumberAsFloat()
	return af == bf
}

// SameValue reports strict sameness usable for grouping keys and DISTINCT:
// unlike Equal, NULL is the same as NULL, and NaN is the same as NaN.
func SameValue(a, b Value) bool {
	if a.kind == KindNull && b.kind == KindNull {
		return true
	}
	if a.IsNumber() && b.IsNumber() {
		af, _ := a.NumberAsFloat()
		bf, _ := b.NumberAsFloat()
		if math.IsNaN(af) && math.IsNaN(bf) {
			return a.kind == b.kind
		}
		if a.kind != b.kind {
			return false
		}
		return numericEqual(a, b)
	}
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case KindList:
		if len(a.list) != len(b.list) {
			return false
		}
		for i := range a.list {
			if !SameValue(a.list[i], b.list[i]) {
				return false
			}
		}
		return true
	case KindMap:
		if len(a.m) != len(b.m) {
			return false
		}
		for k, av := range a.m {
			bv, ok := b.m[k]
			if !ok || !SameValue(av, bv) {
				return false
			}
		}
		return true
	default:
		eq, known := Equal(a, b)
		return known && eq
	}
}

// kindOrder assigns each kind a rank for the cross-kind total order used by
// ORDER BY, following the openCypher ordering: maps < nodes < relationships
// < lists < strings < booleans < numbers < datetimes < durations < null.
func kindOrder(k Kind) int {
	switch k {
	case KindMap:
		return 0
	case KindNode:
		return 1
	case KindRelationship:
		return 2
	case KindList:
		return 3
	case KindString:
		return 4
	case KindBool:
		return 5
	case KindInt, KindFloat:
		return 6
	case KindDateTime:
		return 7
	case KindDuration:
		return 8
	case KindNull:
		return 9
	default:
		return 10
	}
}

// Compare imposes a total order over all values, used by ORDER BY, min and
// max. Within numbers, INTEGER and FLOAT compare numerically; across kinds
// the openCypher kind ranking applies and NULL sorts last.
func Compare(a, b Value) int {
	ka, kb := kindOrder(a.kind), kindOrder(b.kind)
	if ka != kb {
		if ka < kb {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindNull:
		return 0
	case KindBool:
		switch {
		case a.b == b.b:
			return 0
		case !a.b:
			return -1
		default:
			return 1
		}
	case KindInt, KindFloat:
		return compareNumeric(a, b)
	case KindString:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		default:
			return 0
		}
	case KindDateTime:
		switch {
		case a.t.Before(b.t):
			return -1
		case a.t.After(b.t):
			return 1
		default:
			return 0
		}
	case KindDuration, KindNode, KindRelationship:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		default:
			return 0
		}
	case KindList:
		n := len(a.list)
		if len(b.list) < n {
			n = len(b.list)
		}
		for i := 0; i < n; i++ {
			if c := Compare(a.list[i], b.list[i]); c != 0 {
				return c
			}
		}
		switch {
		case len(a.list) < len(b.list):
			return -1
		case len(a.list) > len(b.list):
			return 1
		default:
			return 0
		}
	case KindMap:
		// Maps are ordered by size then by sorted key sequence; a stable
		// arbitrary-but-deterministic order is all ORDER BY requires.
		if len(a.m) != len(b.m) {
			if len(a.m) < len(b.m) {
				return -1
			}
			return 1
		}
		ak, bk := sortedKeys(a.m), sortedKeys(b.m)
		for i := range ak {
			if ak[i] != bk[i] {
				if ak[i] < bk[i] {
					return -1
				}
				return 1
			}
		}
		for _, k := range ak {
			if c := Compare(a.m[k], b.m[k]); c != 0 {
				return c
			}
		}
		return 0
	default:
		return 0
	}
}

func compareNumeric(a, b Value) int {
	if a.kind == KindInt && b.kind == KindInt {
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		default:
			return 0
		}
	}
	af, _ := a.NumberAsFloat()
	bf, _ := b.NumberAsFloat()
	// NaN sorts after all other numbers for determinism.
	an, bn := math.IsNaN(af), math.IsNaN(bf)
	switch {
	case an && bn:
		return 0
	case an:
		return 1
	case bn:
		return -1
	case af < bf:
		return -1
	case af > bf:
		return 1
	default:
		return 0
	}
}

func sortedKeys(m map[string]Value) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
	return ks
}

// Less3 applies ternary ordering semantics for the < operator: if either
// operand is NULL, or the operands are of incomparable kinds, the result is
// unknown.
func Less3(a, b Value) (less bool, known bool) {
	if a.kind == KindNull || b.kind == KindNull {
		return false, false
	}
	if a.IsNumber() && b.IsNumber() {
		return compareNumeric(a, b) < 0, true
	}
	if a.kind != b.kind {
		return false, false
	}
	switch a.kind {
	case KindString, KindDateTime, KindDuration, KindBool, KindList:
		return Compare(a, b) < 0, true
	default:
		return false, false
	}
}

// HashKey returns a string that is identical for values that are SameValue,
// usable as a Go map key for grouping and DISTINCT.
func (v Value) HashKey() string {
	switch v.kind {
	case KindNull:
		return "\x00"
	case KindBool:
		if v.b {
			return "\x01t"
		}
		return "\x01f"
	case KindInt:
		return "\x02" + itoa(v.i)
	case KindFloat:
		f := v.f
		if f == 0 {
			f = 0 // normalize -0.0 so it groups with +0.0
		}
		return "\x03" + ftoa(f)
	case KindString:
		return "\x04" + v.s
	case KindDateTime:
		return "\x05" + itoa(v.t.UnixNano()) + v.t.Location().String()
	case KindDuration:
		return "\x06" + itoa(v.i)
	case KindNode:
		return "\x07" + itoa(v.i)
	case KindRelationship:
		return "\x08" + itoa(v.i)
	case KindList:
		out := "\x09"
		for _, e := range v.list {
			k := e.HashKey()
			out += itoa(int64(len(k))) + ":" + k
		}
		return out
	case KindMap:
		out := "\x0a"
		for _, k := range sortedKeys(v.m) {
			vk := v.m[k].HashKey()
			out += itoa(int64(len(k))) + ":" + k + itoa(int64(len(vk))) + ":" + vk
		}
		return out
	default:
		return "\x0b"
	}
}

func itoa(i int64) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	var buf [24]byte
	pos := len(buf)
	u := uint64(i)
	if neg {
		u = uint64(-i)
	}
	for u > 0 {
		pos--
		buf[pos] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		pos--
		buf[pos] = '-'
	}
	return string(buf[pos:])
}

func ftoa(f float64) string {
	bits := math.Float64bits(f)
	var buf [16]byte
	for i := 0; i < 16; i++ {
		buf[i] = "0123456789abcdef"[(bits>>(60-4*i))&0xf]
	}
	return string(buf[:])
}
