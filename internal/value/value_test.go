package value

import (
	"math"
	"testing"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindBool: "BOOLEAN", KindInt: "INTEGER",
		KindFloat: "FLOAT", KindString: "STRING", KindDateTime: "DATETIME",
		KindDuration: "DURATION", KindList: "LIST", KindMap: "MAP",
		KindNode: "NODE", KindRelationship: "RELATIONSHIP",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() {
		t.Error("Null should be null")
	}
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Error("Bool(true) accessor failed")
	}
	if i, ok := Int(42).AsInt(); !ok || i != 42 {
		t.Error("Int(42) accessor failed")
	}
	if f, ok := Float(2.5).AsFloat(); !ok || f != 2.5 {
		t.Error("Float(2.5) accessor failed")
	}
	if s, ok := Str("hi").AsString(); !ok || s != "hi" {
		t.Error("Str accessor failed")
	}
	now := time.Now()
	if tt, ok := DateTime(now).AsDateTime(); !ok || !tt.Equal(now) {
		t.Error("DateTime accessor failed")
	}
	if d, ok := Duration(time.Hour).AsDuration(); !ok || d != time.Hour {
		t.Error("Duration accessor failed")
	}
	l, ok := List(Int(1), Int(2)).AsList()
	if !ok || len(l) != 2 {
		t.Error("List accessor failed")
	}
	m, ok := Map(map[string]Value{"a": Int(1)}).AsMap()
	if !ok || len(m) != 1 {
		t.Error("Map accessor failed")
	}
	if id, ok := Node(7).EntityID(); !ok || id != 7 {
		t.Error("Node accessor failed")
	}
	if id, ok := Relationship(9).EntityID(); !ok || id != 9 {
		t.Error("Relationship accessor failed")
	}
	if _, ok := Int(1).EntityID(); ok {
		t.Error("Int should not be an entity")
	}
}

func TestWrongKindAccessors(t *testing.T) {
	if _, ok := Int(1).AsBool(); ok {
		t.Error("AsBool on Int should fail")
	}
	if _, ok := Str("x").AsInt(); ok {
		t.Error("AsInt on Str should fail")
	}
	if _, ok := Bool(true).AsFloat(); ok {
		t.Error("AsFloat on Bool should fail")
	}
	if _, ok := Null.AsList(); ok {
		t.Error("AsList on Null should fail")
	}
}

func TestNumberAsFloat(t *testing.T) {
	if f, ok := Int(3).NumberAsFloat(); !ok || f != 3 {
		t.Error("Int→float failed")
	}
	if f, ok := Float(1.5).NumberAsFloat(); !ok || f != 1.5 {
		t.Error("Float→float failed")
	}
	if _, ok := Str("3").NumberAsFloat(); ok {
		t.Error("Str should not be a number")
	}
}

func TestTruthy(t *testing.T) {
	if v, k := Bool(true).Truthy(); !k || !v {
		t.Error("true truthy")
	}
	if v, k := Bool(false).Truthy(); !k || v {
		t.Error("false truthy")
	}
	if _, k := Null.Truthy(); k {
		t.Error("null should be unknown")
	}
	if _, k := Int(1).Truthy(); k {
		t.Error("non-boolean should be unknown")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "null"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Int(-5), "-5"},
		{Float(2), "2.0"},
		{Float(2.25), "2.25"},
		{Str("a\"b"), `"a\"b"`},
		{List(Int(1), Str("x")), `[1, "x"]`},
		{Map(map[string]Value{"b": Int(2), "a": Int(1)}), "{a: 1, b: 2}"},
		{Node(3), "Node(3)"},
		{Relationship(4), "Rel(4)"},
		{Duration(90 * time.Second), "1m30s"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.kind, got, c.want)
		}
	}
}

func TestFromGoRoundTrip(t *testing.T) {
	now := time.Now()
	inputs := []any{nil, true, 42, int64(7), 3.5, "s", now, time.Minute,
		[]any{1, "a"}, map[string]any{"k": 1}}
	for _, in := range inputs {
		v := FromGo(in)
		out := v.Go()
		switch want := in.(type) {
		case nil:
			if out != nil {
				t.Errorf("nil round trip got %v", out)
			}
		case int:
			if out.(int64) != int64(want) {
				t.Errorf("int round trip got %v", out)
			}
		case []any:
			got := out.([]any)
			if len(got) != len(want) {
				t.Errorf("list round trip got %v", out)
			}
		case map[string]any:
			got := out.(map[string]any)
			if len(got) != len(want) {
				t.Errorf("map round trip got %v", out)
			}
		case time.Time:
			if !out.(time.Time).Equal(want) {
				t.Errorf("time round trip got %v", out)
			}
		default:
			if out != in {
				t.Errorf("round trip %v got %v", in, out)
			}
		}
	}
}

func TestFromGoValuePassThrough(t *testing.T) {
	v := Int(5)
	if got := FromGo(v); got.kind != KindInt || got.i != 5 {
		t.Error("FromGo(Value) should pass through")
	}
	if got := FromGo(uint32(9)); got.kind != KindInt || got.i != 9 {
		t.Error("FromGo(uint32) failed")
	}
	if got := FromGo(float32(1.5)); got.kind != KindFloat || got.f != 1.5 {
		t.Error("FromGo(float32) failed")
	}
	type odd struct{}
	if got := FromGo(odd{}); got.kind != KindString {
		t.Error("FromGo(unknown) should stringify")
	}
}

func TestEqualTernary(t *testing.T) {
	if _, known := Equal(Null, Int(1)); known {
		t.Error("null = 1 should be unknown")
	}
	if eq, known := Equal(Int(1), Float(1.0)); !known || !eq {
		t.Error("1 = 1.0 should be true")
	}
	if eq, known := Equal(Int(1), Str("1")); !known || eq {
		t.Error("1 = '1' should be false")
	}
	if eq, known := Equal(Str("a"), Str("a")); !known || !eq {
		t.Error("'a' = 'a' should be true")
	}
	if eq, known := Equal(Node(1), Node(1)); !known || !eq {
		t.Error("node(1) = node(1)")
	}
	if eq, known := Equal(Node(1), Relationship(1)); !known || eq {
		t.Error("node vs rel should be false")
	}
}

func TestEqualLists(t *testing.T) {
	a := List(Int(1), Int(2))
	b := List(Int(1), Int(2))
	c := List(Int(1), Int(3))
	d := List(Int(1))
	if eq, known := Equal(a, b); !known || !eq {
		t.Error("equal lists")
	}
	if eq, known := Equal(a, c); !known || eq {
		t.Error("unequal lists")
	}
	if eq, known := Equal(a, d); !known || eq {
		t.Error("different length lists")
	}
	// List with null element vs equal prefix: unknown.
	e := List(Int(1), Null)
	f := List(Int(1), Int(2))
	if _, known := Equal(e, f); known {
		t.Error("list with null should be unknown")
	}
	// But a definite mismatch dominates the null.
	g := List(Int(9), Null)
	if eq, known := Equal(g, f); !known || eq {
		t.Error("definite mismatch should be known false")
	}
}

func TestEqualMaps(t *testing.T) {
	a := Map(map[string]Value{"x": Int(1), "y": Str("s")})
	b := Map(map[string]Value{"x": Int(1), "y": Str("s")})
	c := Map(map[string]Value{"x": Int(1), "z": Str("s")})
	if eq, known := Equal(a, b); !known || !eq {
		t.Error("equal maps")
	}
	if eq, known := Equal(a, c); !known || eq {
		t.Error("maps with different keys")
	}
}

func TestSameValue(t *testing.T) {
	if !SameValue(Null, Null) {
		t.Error("null same as null")
	}
	if SameValue(Int(1), Float(1)) {
		t.Error("1 and 1.0 are not the same value for grouping")
	}
	if !SameValue(List(Int(1), Null), List(Int(1), Null)) {
		t.Error("lists with nulls group together")
	}
	if !SameValue(Map(map[string]Value{"a": Null}), Map(map[string]Value{"a": Null})) {
		t.Error("maps with nulls group together")
	}
}

func TestCompareOrdering(t *testing.T) {
	// Within numbers.
	if Compare(Int(1), Int(2)) >= 0 {
		t.Error("1 < 2")
	}
	if Compare(Float(1.5), Int(1)) <= 0 {
		t.Error("1.5 > 1")
	}
	if Compare(Int(3), Float(3)) != 0 {
		t.Error("3 == 3.0 in ordering")
	}
	// Strings order before numbers (openCypher kind order).
	if Compare(Str("z"), Int(0)) >= 0 {
		t.Error("strings sort before numbers")
	}
	// NULL last.
	if Compare(Null, Int(1)) <= 0 {
		t.Error("null sorts last")
	}
	if Compare(Null, Null) != 0 {
		t.Error("null == null in ordering")
	}
	// Lists element-wise, then by length.
	if Compare(List(Int(1)), List(Int(1), Int(0))) >= 0 {
		t.Error("shorter prefix list sorts first")
	}
	// Booleans: false < true.
	if Compare(Bool(false), Bool(true)) >= 0 {
		t.Error("false < true")
	}
	// DateTimes.
	t0 := time.Now()
	if Compare(DateTime(t0), DateTime(t0.Add(time.Second))) >= 0 {
		t.Error("earlier datetime sorts first")
	}
}

func TestLess3(t *testing.T) {
	if _, known := Less3(Null, Int(1)); known {
		t.Error("null < 1 is unknown")
	}
	if less, known := Less3(Int(1), Float(1.5)); !known || !less {
		t.Error("1 < 1.5")
	}
	if _, known := Less3(Int(1), Str("a")); known {
		t.Error("cross-kind < is unknown")
	}
	if less, known := Less3(Str("a"), Str("b")); !known || !less {
		t.Error("'a' < 'b'")
	}
}

func TestHashKeyDistinguishes(t *testing.T) {
	vals := []Value{
		Null, Bool(true), Bool(false), Int(0), Int(1), Float(0), Float(1),
		Str(""), Str("0"), Node(0), Relationship(0),
		List(), List(Int(1)), List(Str("1")),
		Map(map[string]Value{}), Map(map[string]Value{"a": Int(1)}),
		Duration(0), DateTime(time.Unix(0, 0)),
	}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.HashKey()
		if prev, dup := seen[k]; dup {
			t.Errorf("hash collision between %s and %s", prev, v)
		}
		seen[k] = v
	}
}

func TestHashKeyStable(t *testing.T) {
	a := Map(map[string]Value{"x": Int(1), "y": List(Str("a"), Null)})
	b := Map(map[string]Value{"y": List(Str("a"), Null), "x": Int(1)})
	if a.HashKey() != b.HashKey() {
		t.Error("hash key should not depend on map iteration order")
	}
}

func TestHashKeyNegativeZero(t *testing.T) {
	pos := Float(0.0)
	neg := Float(math.Copysign(0, -1))
	if !SameValue(pos, neg) {
		t.Fatal("+0.0 and -0.0 are the same value")
	}
	if pos.HashKey() != neg.HashKey() {
		t.Error("+0.0 and -0.0 must hash identically")
	}
}
