package value

import (
	"fmt"
	"math"
	"time"
)

// ErrType reports an arithmetic or conversion type error.
type ErrType struct {
	Op   string
	A, B Kind
}

func (e *ErrType) Error() string {
	if e.B == KindNull && e.A != KindNull {
		return fmt.Sprintf("invalid operand for %s: %s", e.Op, e.A)
	}
	return fmt.Sprintf("invalid operands for %s: %s, %s", e.Op, e.A, e.B)
}

func typeErr(op string, a, b Value) error { return &ErrType{Op: op, A: a.kind, B: b.kind} }

// Add implements the Cypher + operator: numeric addition with int/float
// promotion, string concatenation, list concatenation, list+element append,
// and datetime/duration arithmetic. NULL propagates.
func Add(a, b Value) (Value, error) {
	if a.kind == KindNull || b.kind == KindNull {
		return Null, nil
	}
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		return Int(a.i + b.i), nil
	case a.IsNumber() && b.IsNumber():
		af, _ := a.NumberAsFloat()
		bf, _ := b.NumberAsFloat()
		return Float(af + bf), nil
	case a.kind == KindString && b.kind == KindString:
		return String_(a.s + b.s), nil
	case a.kind == KindList && b.kind == KindList:
		out := make([]Value, 0, len(a.list)+len(b.list))
		out = append(out, a.list...)
		out = append(out, b.list...)
		return ListOf(out), nil
	case a.kind == KindList:
		out := make([]Value, 0, len(a.list)+1)
		out = append(out, a.list...)
		out = append(out, b)
		return ListOf(out), nil
	case b.kind == KindList:
		out := make([]Value, 0, len(b.list)+1)
		out = append(out, a)
		out = append(out, b.list...)
		return ListOf(out), nil
	case a.kind == KindDateTime && b.kind == KindDuration:
		return DateTime(a.t.Add(time.Duration(b.i))), nil
	case a.kind == KindDuration && b.kind == KindDateTime:
		return DateTime(b.t.Add(time.Duration(a.i))), nil
	case a.kind == KindDuration && b.kind == KindDuration:
		return Duration(time.Duration(a.i + b.i)), nil
	default:
		return Null, typeErr("+", a, b)
	}
}

// Sub implements the Cypher - operator with NULL propagation.
func Sub(a, b Value) (Value, error) {
	if a.kind == KindNull || b.kind == KindNull {
		return Null, nil
	}
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		return Int(a.i - b.i), nil
	case a.IsNumber() && b.IsNumber():
		af, _ := a.NumberAsFloat()
		bf, _ := b.NumberAsFloat()
		return Float(af - bf), nil
	case a.kind == KindDateTime && b.kind == KindDuration:
		return DateTime(a.t.Add(-time.Duration(b.i))), nil
	case a.kind == KindDateTime && b.kind == KindDateTime:
		return Duration(a.t.Sub(b.t)), nil
	case a.kind == KindDuration && b.kind == KindDuration:
		return Duration(time.Duration(a.i - b.i)), nil
	default:
		return Null, typeErr("-", a, b)
	}
}

// Mul implements the Cypher * operator with NULL propagation.
func Mul(a, b Value) (Value, error) {
	if a.kind == KindNull || b.kind == KindNull {
		return Null, nil
	}
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		return Int(a.i * b.i), nil
	case a.IsNumber() && b.IsNumber():
		af, _ := a.NumberAsFloat()
		bf, _ := b.NumberAsFloat()
		return Float(af * bf), nil
	case a.kind == KindDuration && b.kind == KindInt:
		return Duration(time.Duration(a.i * b.i)), nil
	case a.kind == KindInt && b.kind == KindDuration:
		return Duration(time.Duration(a.i * b.i)), nil
	default:
		return Null, typeErr("*", a, b)
	}
}

// Div implements the Cypher / operator. Integer division truncates;
// dividing an integer by integer zero is an error, while float division by
// zero follows IEEE semantics. NULL propagates.
func Div(a, b Value) (Value, error) {
	if a.kind == KindNull || b.kind == KindNull {
		return Null, nil
	}
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		if b.i == 0 {
			return Null, fmt.Errorf("division by zero")
		}
		return Int(a.i / b.i), nil
	case a.IsNumber() && b.IsNumber():
		af, _ := a.NumberAsFloat()
		bf, _ := b.NumberAsFloat()
		return Float(af / bf), nil
	case a.kind == KindDuration && b.kind == KindInt:
		if b.i == 0 {
			return Null, fmt.Errorf("division by zero")
		}
		return Duration(time.Duration(a.i / b.i)), nil
	default:
		return Null, typeErr("/", a, b)
	}
}

// Mod implements the Cypher % operator with NULL propagation.
func Mod(a, b Value) (Value, error) {
	if a.kind == KindNull || b.kind == KindNull {
		return Null, nil
	}
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		if b.i == 0 {
			return Null, fmt.Errorf("modulo by zero")
		}
		return Int(a.i % b.i), nil
	case a.IsNumber() && b.IsNumber():
		af, _ := a.NumberAsFloat()
		bf, _ := b.NumberAsFloat()
		return Float(math.Mod(af, bf)), nil
	default:
		return Null, typeErr("%", a, b)
	}
}

// Pow implements the Cypher ^ operator with NULL propagation. The result is
// always a FLOAT, matching Neo4j.
func Pow(a, b Value) (Value, error) {
	if a.kind == KindNull || b.kind == KindNull {
		return Null, nil
	}
	if !a.IsNumber() || !b.IsNumber() {
		return Null, typeErr("^", a, b)
	}
	af, _ := a.NumberAsFloat()
	bf, _ := b.NumberAsFloat()
	return Float(math.Pow(af, bf)), nil
}

// Neg implements unary minus with NULL propagation.
func Neg(a Value) (Value, error) {
	switch a.kind {
	case KindNull:
		return Null, nil
	case KindInt:
		return Int(-a.i), nil
	case KindFloat:
		return Float(-a.f), nil
	case KindDuration:
		return Duration(time.Duration(-a.i)), nil
	default:
		return Null, typeErr("-", a, Null)
	}
}
