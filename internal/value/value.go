// Package value implements the dynamically typed values stored in property
// graphs and manipulated by the Cypher-subset query language.
//
// The type system follows the Cypher/GQL data model: NULL, BOOLEAN, INTEGER
// (64-bit), FLOAT (64-bit), STRING, DATETIME, DURATION, LIST and MAP, plus
// graph references (NODE and RELATIONSHIP) that hold entity identifiers.
// Values are immutable once constructed; lists and maps must not be mutated
// after being wrapped.
package value

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the dynamic type of a Value.
type Kind int

// The kinds of values, mirroring the Cypher data model.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindDateTime
	KindDuration
	KindList
	KindMap
	KindNode
	KindRelationship
)

// String returns the GQL-style name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindDateTime:
		return "DATETIME"
	case KindDuration:
		return "DURATION"
	case KindList:
		return "LIST"
	case KindMap:
		return "MAP"
	case KindNode:
		return "NODE"
	case KindRelationship:
		return "RELATIONSHIP"
	default:
		return fmt.Sprintf("KIND(%d)", int(k))
	}
}

// Value is a dynamically typed property or query value. The zero Value is
// NULL.
type Value struct {
	kind Kind
	b    bool
	i    int64 // also entity id for Node/Relationship
	f    float64
	s    string
	t    time.Time
	list []Value
	m    map[string]Value
}

// Null is the NULL value.
var Null = Value{kind: KindNull}

// Bool returns a BOOLEAN value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Int returns an INTEGER value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a FLOAT value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String_ returns a STRING value. The underscore avoids clashing with the
// fmt.Stringer method on Value.
func String_(s string) Value { return Value{kind: KindString, s: s} }

// Str is a shorthand alias for String_.
func Str(s string) Value { return String_(s) }

// DateTime returns a DATETIME value.
func DateTime(t time.Time) Value { return Value{kind: KindDateTime, t: t} }

// Duration returns a DURATION value.
func Duration(d time.Duration) Value { return Value{kind: KindDuration, i: int64(d)} }

// List returns a LIST value wrapping vs. The slice is owned by the Value.
func List(vs ...Value) Value { return Value{kind: KindList, list: vs} }

// ListOf wraps an existing slice as a LIST value without copying.
func ListOf(vs []Value) Value { return Value{kind: KindList, list: vs} }

// Map returns a MAP value wrapping m. The map is owned by the Value.
func Map(m map[string]Value) Value { return Value{kind: KindMap, m: m} }

// Node returns a NODE reference holding a graph node identifier.
func Node(id int64) Value { return Value{kind: KindNode, i: id} }

// Relationship returns a RELATIONSHIP reference holding an edge identifier.
func Relationship(id int64) Value { return Value{kind: KindRelationship, i: id} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload; ok is false if v is not a BOOLEAN.
func (v Value) AsBool() (b bool, ok bool) { return v.b, v.kind == KindBool }

// AsInt returns the integer payload; ok is false if v is not an INTEGER.
func (v Value) AsInt() (i int64, ok bool) { return v.i, v.kind == KindInt }

// AsFloat returns the float payload; ok is false if v is not a FLOAT.
func (v Value) AsFloat() (f float64, ok bool) { return v.f, v.kind == KindFloat }

// AsString returns the string payload; ok is false if v is not a STRING.
func (v Value) AsString() (s string, ok bool) { return v.s, v.kind == KindString }

// AsDateTime returns the time payload; ok is false if v is not a DATETIME.
func (v Value) AsDateTime() (t time.Time, ok bool) { return v.t, v.kind == KindDateTime }

// AsDuration returns the duration payload; ok is false if v is not a DURATION.
func (v Value) AsDuration() (d time.Duration, ok bool) {
	return time.Duration(v.i), v.kind == KindDuration
}

// AsList returns the list payload; ok is false if v is not a LIST. The
// returned slice must not be mutated.
func (v Value) AsList() (vs []Value, ok bool) { return v.list, v.kind == KindList }

// AsMap returns the map payload; ok is false if v is not a MAP. The returned
// map must not be mutated.
func (v Value) AsMap() (m map[string]Value, ok bool) { return v.m, v.kind == KindMap }

// EntityID returns the node or relationship identifier; ok is false if v is
// not a NODE or RELATIONSHIP reference.
func (v Value) EntityID() (id int64, ok bool) {
	return v.i, v.kind == KindNode || v.kind == KindRelationship
}

// NumberAsFloat returns the numeric payload widened to float64; ok is false
// if v is neither INTEGER nor FLOAT.
func (v Value) NumberAsFloat() (f float64, ok bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// IsNumber reports whether v is an INTEGER or FLOAT.
func (v Value) IsNumber() bool { return v.kind == KindInt || v.kind == KindFloat }

// Truthy implements Cypher's ternary logic for predicates: it returns
// (true,true) for TRUE, (false,true) for FALSE, and (false,false) for NULL.
// Non-boolean, non-null values are an error in strict Cypher; we map them to
// NULL (unknown) to keep predicate evaluation total.
func (v Value) Truthy() (val bool, known bool) {
	switch v.kind {
	case KindBool:
		return v.b, true
	default:
		return false, false
	}
}

// String renders v in a Cypher-literal-like syntax, usable in logs, shells
// and test expectations.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		if math.IsInf(v.f, 1) {
			return "Infinity"
		}
		if math.IsInf(v.f, -1) {
			return "-Infinity"
		}
		if v.f == math.Trunc(v.f) && math.Abs(v.f) < 1e15 {
			return strconv.FormatFloat(v.f, 'f', 1, 64)
		}
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindDateTime:
		return v.t.Format(time.RFC3339Nano)
	case KindDuration:
		return time.Duration(v.i).String()
	case KindList:
		var sb strings.Builder
		sb.WriteByte('[')
		for i, e := range v.list {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.String())
		}
		sb.WriteByte(']')
		return sb.String()
	case KindMap:
		keys := make([]string, 0, len(v.m))
		for k := range v.m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		sb.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(k)
			sb.WriteString(": ")
			sb.WriteString(v.m[k].String())
		}
		sb.WriteByte('}')
		return sb.String()
	case KindNode:
		return fmt.Sprintf("Node(%d)", v.i)
	case KindRelationship:
		return fmt.Sprintf("Rel(%d)", v.i)
	default:
		return fmt.Sprintf("value(kind=%d)", int(v.kind))
	}
}

// FromGo converts a native Go value into a Value. Supported inputs: nil,
// bool, all integer types, float32/float64, string, time.Time,
// time.Duration, []any, map[string]any, []Value, map[string]Value and Value
// itself. Unsupported types are rendered via fmt as STRING.
func FromGo(x any) Value {
	switch t := x.(type) {
	case nil:
		return Null
	case Value:
		return t
	case bool:
		return Bool(t)
	case int:
		return Int(int64(t))
	case int8:
		return Int(int64(t))
	case int16:
		return Int(int64(t))
	case int32:
		return Int(int64(t))
	case int64:
		return Int(t)
	case uint:
		return Int(int64(t))
	case uint8:
		return Int(int64(t))
	case uint16:
		return Int(int64(t))
	case uint32:
		return Int(int64(t))
	case uint64:
		return Int(int64(t))
	case float32:
		return Float(float64(t))
	case float64:
		return Float(t)
	case string:
		return String_(t)
	case time.Time:
		return DateTime(t)
	case time.Duration:
		return Duration(t)
	case []Value:
		return ListOf(t)
	case map[string]Value:
		return Map(t)
	case []any:
		vs := make([]Value, len(t))
		for i, e := range t {
			vs[i] = FromGo(e)
		}
		return ListOf(vs)
	case map[string]any:
		m := make(map[string]Value, len(t))
		for k, e := range t {
			m[k] = FromGo(e)
		}
		return Map(m)
	default:
		return String_(fmt.Sprint(x))
	}
}

// Go converts v back into a native Go value: nil, bool, int64, float64,
// string, time.Time, time.Duration, []any, map[string]any, or int64 for
// entity references.
func (v Value) Go() any {
	switch v.kind {
	case KindNull:
		return nil
	case KindBool:
		return v.b
	case KindInt:
		return v.i
	case KindFloat:
		return v.f
	case KindString:
		return v.s
	case KindDateTime:
		return v.t
	case KindDuration:
		return time.Duration(v.i)
	case KindList:
		out := make([]any, len(v.list))
		for i, e := range v.list {
			out[i] = e.Go()
		}
		return out
	case KindMap:
		out := make(map[string]any, len(v.m))
		for k, e := range v.m {
			out[k] = e.Go()
		}
		return out
	case KindNode, KindRelationship:
		return v.i
	default:
		return nil
	}
}
