package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// ToFloat implements Cypher's toFloat(): numbers convert numerically,
// strings are parsed (returning NULL on parse failure), NULL stays NULL.
func ToFloat(v Value) (Value, error) {
	switch v.kind {
	case KindNull:
		return Null, nil
	case KindInt:
		return Float(float64(v.i)), nil
	case KindFloat:
		return v, nil
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		if err != nil {
			return Null, nil
		}
		return Float(f), nil
	default:
		return Null, fmt.Errorf("toFloat: cannot convert %s", v.kind)
	}
}

// ToInteger implements Cypher's toInteger(): floats truncate toward zero,
// strings are parsed (returning NULL on parse failure), NULL stays NULL.
func ToInteger(v Value) (Value, error) {
	switch v.kind {
	case KindNull:
		return Null, nil
	case KindInt:
		return v, nil
	case KindFloat:
		if math.IsNaN(v.f) || math.IsInf(v.f, 0) {
			return Null, nil
		}
		return Int(int64(v.f)), nil
	case KindString:
		s := strings.TrimSpace(v.s)
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return Int(i), nil
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return Int(int64(f)), nil
		}
		return Null, nil
	case KindBool:
		if v.b {
			return Int(1), nil
		}
		return Int(0), nil
	default:
		return Null, fmt.Errorf("toInteger: cannot convert %s", v.kind)
	}
}

// ToString implements Cypher's toString() for scalar values.
func ToString(v Value) (Value, error) {
	switch v.kind {
	case KindNull:
		return Null, nil
	case KindString:
		return v, nil
	case KindBool, KindInt, KindFloat, KindDuration:
		s := v.String()
		return String_(s), nil
	case KindDateTime:
		return String_(v.t.Format(time.RFC3339Nano)), nil
	default:
		return Null, fmt.Errorf("toString: cannot convert %s", v.kind)
	}
}

// ToBoolean implements Cypher's toBoolean().
func ToBoolean(v Value) (Value, error) {
	switch v.kind {
	case KindNull:
		return Null, nil
	case KindBool:
		return v, nil
	case KindString:
		switch strings.ToLower(strings.TrimSpace(v.s)) {
		case "true":
			return Bool(true), nil
		case "false":
			return Bool(false), nil
		default:
			return Null, nil
		}
	case KindInt:
		return Bool(v.i != 0), nil
	default:
		return Null, fmt.Errorf("toBoolean: cannot convert %s", v.kind)
	}
}

// ParseDateTime parses a DATETIME from a string, accepting RFC 3339 with or
// without a time component ("2023-04-01", "2023-04-01T12:30:00Z").
func ParseDateTime(s string) (Value, error) {
	s = strings.TrimSpace(s)
	for _, layout := range []string{
		time.RFC3339Nano,
		time.RFC3339,
		"2006-01-02T15:04:05",
		"2006-01-02 15:04:05",
		"2006-01-02",
	} {
		if t, err := time.Parse(layout, s); err == nil {
			return DateTime(t), nil
		}
	}
	return Null, fmt.Errorf("datetime: cannot parse %q", s)
}

// ParseDuration parses a DURATION from either a Go duration string ("72h")
// or a restricted ISO-8601 form ("P2D", "PT12H", "P1DT6H30M").
func ParseDuration(s string) (Value, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Null, fmt.Errorf("duration: empty string")
	}
	if s[0] == 'P' || (len(s) > 1 && s[0] == '-' && s[1] == 'P') {
		d, err := parseISODuration(s)
		if err != nil {
			return Null, err
		}
		return Duration(d), nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return Null, fmt.Errorf("duration: cannot parse %q", s)
	}
	return Duration(d), nil
}

func parseISODuration(s string) (time.Duration, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	if !strings.HasPrefix(s, "P") {
		return 0, fmt.Errorf("duration: cannot parse %q", s)
	}
	s = s[1:]
	var total time.Duration
	inTime := false
	num := ""
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9' || r == '.':
			num += string(r)
		case r == 'T':
			inTime = true
		default:
			if num == "" {
				return 0, fmt.Errorf("duration: missing number before %c", r)
			}
			f, err := strconv.ParseFloat(num, 64)
			if err != nil {
				return 0, fmt.Errorf("duration: bad number %q", num)
			}
			num = ""
			var unit time.Duration
			switch {
			case r == 'W':
				unit = 7 * 24 * time.Hour
			case r == 'D':
				unit = 24 * time.Hour
			case r == 'H' && inTime:
				unit = time.Hour
			case r == 'M' && inTime:
				unit = time.Minute
			case r == 'M' && !inTime:
				unit = 30 * 24 * time.Hour // calendar month approximated
			case r == 'S' && inTime:
				unit = time.Second
			case r == 'Y':
				unit = 365 * 24 * time.Hour // calendar year approximated
			default:
				return 0, fmt.Errorf("duration: unknown unit %c", r)
			}
			total += time.Duration(f * float64(unit))
		}
	}
	if num != "" {
		return 0, fmt.Errorf("duration: trailing number %q", num)
	}
	if neg {
		total = -total
	}
	return total, nil
}
