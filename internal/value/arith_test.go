package value

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func mustOp(t *testing.T) func(Value, error) Value {
	return func(v Value, err error) Value {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		return v
	}
}

func TestAdd(t *testing.T) {
	if v := mustOp(t)(Add(Int(2), Int(3))); !SameValue(v, Int(5)) {
		t.Errorf("2+3 = %s", v)
	}
	if v := mustOp(t)(Add(Int(2), Float(0.5))); !SameValue(v, Float(2.5)) {
		t.Errorf("2+0.5 = %s", v)
	}
	if v := mustOp(t)(Add(Str("a"), Str("b"))); !SameValue(v, Str("ab")) {
		t.Errorf("'a'+'b' = %s", v)
	}
	if v := mustOp(t)(Add(Null, Int(1))); !v.IsNull() {
		t.Error("null + 1 should be null")
	}
	if _, err := Add(Bool(true), Int(1)); err == nil {
		t.Error("true + 1 should error")
	}
	// Lists.
	v := mustOp(t)(Add(List(Int(1)), List(Int(2))))
	if l, _ := v.AsList(); len(l) != 2 {
		t.Error("list concat")
	}
	v = mustOp(t)(Add(List(Int(1)), Int(2)))
	if l, _ := v.AsList(); len(l) != 2 || !SameValue(l[1], Int(2)) {
		t.Error("list append")
	}
	v = mustOp(t)(Add(Int(0), List(Int(1))))
	if l, _ := v.AsList(); len(l) != 2 || !SameValue(l[0], Int(0)) {
		t.Error("list prepend")
	}
	// Temporal.
	t0 := time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC)
	v = mustOp(t)(Add(DateTime(t0), Duration(24*time.Hour)))
	if ts, _ := v.AsDateTime(); ts.Day() != 2 {
		t.Error("datetime + duration")
	}
	v = mustOp(t)(Add(Duration(time.Hour), Duration(time.Minute)))
	if d, _ := v.AsDuration(); d != time.Hour+time.Minute {
		t.Error("duration + duration")
	}
	v = mustOp(t)(Add(Duration(time.Hour), DateTime(t0)))
	if ts, _ := v.AsDateTime(); ts.Hour() != 1 {
		t.Error("duration + datetime")
	}
}

func TestSub(t *testing.T) {
	if v := mustOp(t)(Sub(Int(5), Int(3))); !SameValue(v, Int(2)) {
		t.Errorf("5-3 = %s", v)
	}
	if v := mustOp(t)(Sub(Float(1), Int(2))); !SameValue(v, Float(-1)) {
		t.Errorf("1.0-2 = %s", v)
	}
	t0 := time.Date(2023, 4, 2, 0, 0, 0, 0, time.UTC)
	t1 := t0.Add(-24 * time.Hour)
	v := mustOp(t)(Sub(DateTime(t0), DateTime(t1)))
	if d, _ := v.AsDuration(); d != 24*time.Hour {
		t.Error("datetime - datetime")
	}
	v = mustOp(t)(Sub(DateTime(t0), Duration(time.Hour)))
	if ts, _ := v.AsDateTime(); ts.Hour() != 23 {
		t.Error("datetime - duration")
	}
	if v := mustOp(t)(Sub(Null, Null)); !v.IsNull() {
		t.Error("null propagation")
	}
	if _, err := Sub(Str("a"), Str("b")); err == nil {
		t.Error("string - string should error")
	}
}

func TestMulDivMod(t *testing.T) {
	if v := mustOp(t)(Mul(Int(4), Int(3))); !SameValue(v, Int(12)) {
		t.Error("4*3")
	}
	if v := mustOp(t)(Mul(Float(0.5), Int(4))); !SameValue(v, Float(2)) {
		t.Error("0.5*4")
	}
	if v := mustOp(t)(Mul(Duration(time.Minute), Int(3))); !SameValue(v, Duration(3*time.Minute)) {
		t.Error("duration * int")
	}
	if v := mustOp(t)(Div(Int(7), Int(2))); !SameValue(v, Int(3)) {
		t.Error("integer division truncates")
	}
	if v := mustOp(t)(Div(Int(7), Float(2))); !SameValue(v, Float(3.5)) {
		t.Error("mixed division")
	}
	if _, err := Div(Int(1), Int(0)); err == nil {
		t.Error("int/0 should error")
	}
	v := mustOp(t)(Div(Float(1), Float(0)))
	if f, _ := v.AsFloat(); !math.IsInf(f, 1) {
		t.Error("float/0 is +Inf")
	}
	if v := mustOp(t)(Mod(Int(7), Int(3))); !SameValue(v, Int(1)) {
		t.Error("7%3")
	}
	if _, err := Mod(Int(1), Int(0)); err == nil {
		t.Error("mod by zero should error")
	}
	if v := mustOp(t)(Mod(Float(7.5), Int(2))); !SameValue(v, Float(1.5)) {
		t.Error("float mod")
	}
}

func TestPowNeg(t *testing.T) {
	if v := mustOp(t)(Pow(Int(2), Int(10))); !SameValue(v, Float(1024)) {
		t.Error("2^10")
	}
	if v := mustOp(t)(Pow(Null, Int(2))); !v.IsNull() {
		t.Error("null^2")
	}
	if _, err := Pow(Str("x"), Int(2)); err == nil {
		t.Error("string pow should error")
	}
	if v := mustOp(t)(Neg(Int(5))); !SameValue(v, Int(-5)) {
		t.Error("-5")
	}
	if v := mustOp(t)(Neg(Float(2.5))); !SameValue(v, Float(-2.5)) {
		t.Error("-2.5")
	}
	if v := mustOp(t)(Neg(Duration(time.Hour))); !SameValue(v, Duration(-time.Hour)) {
		t.Error("-duration")
	}
	if v := mustOp(t)(Neg(Null)); !v.IsNull() {
		t.Error("-null")
	}
	if _, err := Neg(Str("a")); err == nil {
		t.Error("-string should error")
	}
}

func TestConversions(t *testing.T) {
	if v := mustOp(t)(ToFloat(Int(3))); !SameValue(v, Float(3)) {
		t.Error("toFloat(3)")
	}
	if v := mustOp(t)(ToFloat(Str("2.5"))); !SameValue(v, Float(2.5)) {
		t.Error("toFloat('2.5')")
	}
	if v := mustOp(t)(ToFloat(Str("junk"))); !v.IsNull() {
		t.Error("toFloat('junk') is null")
	}
	if v := mustOp(t)(ToInteger(Float(3.9))); !SameValue(v, Int(3)) {
		t.Error("toInteger truncates")
	}
	if v := mustOp(t)(ToInteger(Str("41"))); !SameValue(v, Int(41)) {
		t.Error("toInteger('41')")
	}
	if v := mustOp(t)(ToInteger(Str("4.9"))); !SameValue(v, Int(4)) {
		t.Error("toInteger('4.9')")
	}
	if v := mustOp(t)(ToInteger(Bool(true))); !SameValue(v, Int(1)) {
		t.Error("toInteger(true)")
	}
	if v := mustOp(t)(ToInteger(Float(math.NaN()))); !v.IsNull() {
		t.Error("toInteger(NaN) is null")
	}
	if v := mustOp(t)(ToString(Int(7))); !SameValue(v, Str("7")) {
		t.Error("toString(7)")
	}
	if v := mustOp(t)(ToBoolean(Str("TRUE"))); !SameValue(v, Bool(true)) {
		t.Error("toBoolean('TRUE')")
	}
	if v := mustOp(t)(ToBoolean(Str("nah"))); !v.IsNull() {
		t.Error("toBoolean('nah') is null")
	}
	if v := mustOp(t)(ToBoolean(Int(0))); !SameValue(v, Bool(false)) {
		t.Error("toBoolean(0)")
	}
	if _, err := ToFloat(List()); err == nil {
		t.Error("toFloat(list) should error")
	}
}

func TestParseDateTime(t *testing.T) {
	v, err := ParseDateTime("2023-04-01")
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := v.AsDateTime()
	if ts.Year() != 2023 || ts.Month() != 4 || ts.Day() != 1 {
		t.Error("date-only parse")
	}
	if _, err := ParseDateTime("2023-04-01T12:30:00Z"); err != nil {
		t.Error("RFC3339 parse")
	}
	if _, err := ParseDateTime("not a date"); err == nil {
		t.Error("bad date should error")
	}
}

func TestParseDuration(t *testing.T) {
	cases := map[string]time.Duration{
		"2h":      2 * time.Hour,
		"P1D":     24 * time.Hour,
		"PT12H":   12 * time.Hour,
		"P1DT6H":  30 * time.Hour,
		"PT1M30S": 90 * time.Second,
		"P2W":     14 * 24 * time.Hour,
		"-P1D":    -24 * time.Hour,
		"PT0.5S":  500 * time.Millisecond,
	}
	for in, want := range cases {
		v, err := ParseDuration(in)
		if err != nil {
			t.Errorf("ParseDuration(%q): %v", in, err)
			continue
		}
		if d, _ := v.AsDuration(); d != want {
			t.Errorf("ParseDuration(%q) = %v, want %v", in, d, want)
		}
	}
	for _, bad := range []string{"", "P", "PX", "P1"} {
		if _, err := ParseDuration(bad); err == nil && bad != "P" {
			t.Errorf("ParseDuration(%q) should error", bad)
		}
	}
}

// Property-based tests on arithmetic and ordering invariants.

func TestPropAddCommutative(t *testing.T) {
	f := func(a, b int32) bool {
		x, err1 := Add(Int(int64(a)), Int(int64(b)))
		y, err2 := Add(Int(int64(b)), Int(int64(a)))
		return err1 == nil && err2 == nil && SameValue(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64, fa, fb float64) bool {
		vals := []Value{Int(a), Int(b), Float(fa), Float(fb), Null, Str("x")}
		for _, x := range vals {
			for _, y := range vals {
				if Compare(x, y) != -Compare(y, x) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropCompareTransitiveOnInts(t *testing.T) {
	f := func(a, b, c int64) bool {
		x, y, z := Int(a), Int(b), Int(c)
		if Compare(x, y) <= 0 && Compare(y, z) <= 0 {
			return Compare(x, z) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropHashKeyConsistentWithSameValue(t *testing.T) {
	f := func(a, b int64, s1, s2 string) bool {
		vals := []Value{Int(a), Int(b), Str(s1), Str(s2),
			List(Int(a), Str(s1)), List(Int(b), Str(s2))}
		for _, x := range vals {
			for _, y := range vals {
				if SameValue(x, y) != (x.HashKey() == y.HashKey()) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropEqualSymmetric(t *testing.T) {
	f := func(a, b int64, s string) bool {
		vals := []Value{Int(a), Float(float64(b)), Str(s), Null, Bool(a%2 == 0)}
		for _, x := range vals {
			for _, y := range vals {
				e1, k1 := Equal(x, y)
				e2, k2 := Equal(y, x)
				if k1 != k2 || (k1 && e1 != e2) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
