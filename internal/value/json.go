package value

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// ToJSON converts a Value into a JSON-encodable form that round-trips
// through FromJSON without losing type information. Booleans and strings
// map naturally; every other kind uses a single-key tag object so that
// integers survive float64 coercion and temporal types keep their kind:
//
//	42            → {"$int": "42"}
//	2.5           → {"$float": 2.5}
//	datetime      → {"$datetime": "2023-04-01T00:00:00Z"}
//	duration      → {"$duration": "24h0m0s"}
//	{a: 1}        → {"$map": {"a": …}}
//	node ref      → {"$node": "7"}
//	rel ref       → {"$rel": "9"}
func ToJSON(v Value) any {
	switch v.kind {
	case KindNull:
		return nil
	case KindBool:
		return v.b
	case KindString:
		return v.s
	case KindInt:
		return map[string]any{"$int": strconv.FormatInt(v.i, 10)}
	case KindFloat:
		if math.IsNaN(v.f) || math.IsInf(v.f, 0) {
			return map[string]any{"$float": strconv.FormatFloat(v.f, 'g', -1, 64)}
		}
		return map[string]any{"$float": v.f}
	case KindDateTime:
		return map[string]any{"$datetime": v.t.Format(time.RFC3339Nano)}
	case KindDuration:
		return map[string]any{"$duration": time.Duration(v.i).String()}
	case KindList:
		out := make([]any, len(v.list))
		for i, e := range v.list {
			out[i] = ToJSON(e)
		}
		return out
	case KindMap:
		inner := make(map[string]any, len(v.m))
		for k, e := range v.m {
			inner[k] = ToJSON(e)
		}
		return map[string]any{"$map": inner}
	case KindNode:
		return map[string]any{"$node": strconv.FormatInt(v.i, 10)}
	case KindRelationship:
		return map[string]any{"$rel": strconv.FormatInt(v.i, 10)}
	default:
		return nil
	}
}

// FromJSON reverses ToJSON. Plain JSON numbers (from hand-written files)
// are accepted and mapped to INTEGER when integral, FLOAT otherwise.
func FromJSON(x any) (Value, error) {
	switch t := x.(type) {
	case nil:
		return Null, nil
	case bool:
		return Bool(t), nil
	case string:
		return Str(t), nil
	case float64:
		if t == math.Trunc(t) && math.Abs(t) < 1e15 {
			return Int(int64(t)), nil
		}
		return Float(t), nil
	case []any:
		out := make([]Value, len(t))
		for i, e := range t {
			v, err := FromJSON(e)
			if err != nil {
				return Null, err
			}
			out[i] = v
		}
		return ListOf(out), nil
	case map[string]any:
		if len(t) == 1 {
			for tag, payload := range t {
				switch tag {
				case "$int":
					s, ok := payload.(string)
					if !ok {
						return Null, fmt.Errorf("value: $int payload must be a string")
					}
					i, err := strconv.ParseInt(s, 10, 64)
					if err != nil {
						return Null, fmt.Errorf("value: bad $int %q", s)
					}
					return Int(i), nil
				case "$float":
					switch p := payload.(type) {
					case float64:
						return Float(p), nil
					case string:
						f, err := strconv.ParseFloat(p, 64)
						if err != nil {
							return Null, fmt.Errorf("value: bad $float %q", p)
						}
						return Float(f), nil
					default:
						return Null, fmt.Errorf("value: bad $float payload %T", payload)
					}
				case "$datetime":
					s, ok := payload.(string)
					if !ok {
						return Null, fmt.Errorf("value: $datetime payload must be a string")
					}
					ts, err := time.Parse(time.RFC3339Nano, s)
					if err != nil {
						return Null, fmt.Errorf("value: bad $datetime %q", s)
					}
					return DateTime(ts), nil
				case "$duration":
					s, ok := payload.(string)
					if !ok {
						return Null, fmt.Errorf("value: $duration payload must be a string")
					}
					d, err := time.ParseDuration(s)
					if err != nil {
						return Null, fmt.Errorf("value: bad $duration %q", s)
					}
					return Duration(d), nil
				case "$map":
					inner, ok := payload.(map[string]any)
					if !ok {
						return Null, fmt.Errorf("value: $map payload must be an object")
					}
					m := make(map[string]Value, len(inner))
					for k, e := range inner {
						v, err := FromJSON(e)
						if err != nil {
							return Null, err
						}
						m[k] = v
					}
					return Map(m), nil
				case "$node":
					id, err := parseID(payload)
					if err != nil {
						return Null, err
					}
					return Node(id), nil
				case "$rel":
					id, err := parseID(payload)
					if err != nil {
						return Null, err
					}
					return Relationship(id), nil
				}
			}
		}
		// A plain object without a tag: interpret as a MAP for ergonomic
		// hand-written files.
		m := make(map[string]Value, len(t))
		for k, e := range t {
			v, err := FromJSON(e)
			if err != nil {
				return Null, err
			}
			m[k] = v
		}
		return Map(m), nil
	default:
		return Null, fmt.Errorf("value: cannot decode %T", x)
	}
}

func parseID(payload any) (int64, error) {
	switch p := payload.(type) {
	case string:
		return strconv.ParseInt(p, 10, 64)
	case float64:
		return int64(p), nil
	default:
		return 0, fmt.Errorf("value: bad entity id payload %T", payload)
	}
}
