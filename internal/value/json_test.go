package value

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestToJSONShapes(t *testing.T) {
	if ToJSON(Null) != nil {
		t.Error("null")
	}
	if ToJSON(Bool(true)) != true {
		t.Error("bool")
	}
	if ToJSON(Str("x")) != "x" {
		t.Error("string")
	}
	m := ToJSON(Int(42)).(map[string]any)
	if m["$int"] != "42" {
		t.Errorf("int tag: %v", m)
	}
	m = ToJSON(Float(2.5)).(map[string]any)
	if m["$float"] != 2.5 {
		t.Errorf("float tag: %v", m)
	}
	// Non-finite floats go through strings.
	m = ToJSON(Float(math.Inf(1))).(map[string]any)
	if _, isStr := m["$float"].(string); !isStr {
		t.Errorf("inf tag: %v", m)
	}
	l := ToJSON(List(Int(1), Null)).([]any)
	if len(l) != 2 || l[1] != nil {
		t.Errorf("list: %v", l)
	}
	mm := ToJSON(Map(map[string]Value{"a": Int(1)})).(map[string]any)
	if _, ok := mm["$map"]; !ok {
		t.Errorf("map tag: %v", mm)
	}
	if ToJSON(Node(7)).(map[string]any)["$node"] != "7" {
		t.Error("node tag")
	}
	if ToJSON(Relationship(8)).(map[string]any)["$rel"] != "8" {
		t.Error("rel tag")
	}
	if ToJSON(Duration(time.Hour)).(map[string]any)["$duration"] != "1h0m0s" {
		t.Error("duration tag")
	}
}

func TestFromJSONPlainValues(t *testing.T) {
	// Hand-written JSON uses plain numbers: integral → INTEGER.
	v, err := FromJSON(float64(5))
	if err != nil || v.Kind() != KindInt {
		t.Errorf("plain int: %s %v", v.Kind(), err)
	}
	v, _ = FromJSON(float64(5.5))
	if v.Kind() != KindFloat {
		t.Errorf("plain float: %s", v.Kind())
	}
	// Untagged object → MAP.
	v, err = FromJSON(map[string]any{"a": float64(1), "b": "x"})
	if err != nil || v.Kind() != KindMap {
		t.Errorf("plain map: %s %v", v.Kind(), err)
	}
	m, _ := v.AsMap()
	if m["a"].Kind() != KindInt {
		t.Error("nested plain int")
	}
}

func TestFromJSONErrors(t *testing.T) {
	bad := []any{
		map[string]any{"$int": 5},             // payload must be string
		map[string]any{"$int": "abc"},         // unparsable
		map[string]any{"$float": true},        // bad payload
		map[string]any{"$datetime": 42},       // bad payload
		map[string]any{"$datetime": "junk"},   // unparsable
		map[string]any{"$duration": "junk"},   // unparsable
		map[string]any{"$duration": 1.0},      // bad payload
		map[string]any{"$map": "not-a-map"},   // bad payload
		map[string]any{"$node": true},         // bad id
		[]any{map[string]any{"$int": "bad-"}}, // nested failure propagates
		struct{}{},                            // unknown Go type
	}
	for i, in := range bad {
		if _, err := FromJSON(in); err == nil {
			t.Errorf("case %d should fail: %v", i, in)
		}
	}
	// $float accepts string payloads (non-finite round trip).
	v, err := FromJSON(map[string]any{"$float": "+Inf"})
	if err != nil || v.Kind() != KindFloat {
		t.Errorf("string float: %v %v", v, err)
	}
	// Entity ids accept numbers for hand-written files.
	v, err = FromJSON(map[string]any{"$node": float64(3)})
	if err != nil {
		t.Fatal(err)
	}
	if id, _ := v.EntityID(); id != 3 {
		t.Errorf("numeric node id: %v", v)
	}
}

func TestErrTypeMessages(t *testing.T) {
	_, err := Add(Bool(true), Int(1))
	if err == nil || !strings.Contains(err.Error(), "BOOLEAN") {
		t.Errorf("binary type error: %v", err)
	}
	_, err = Neg(Str("x"))
	if err == nil || !strings.Contains(err.Error(), "STRING") {
		t.Errorf("unary type error: %v", err)
	}
}

func TestCompareAllKindPairs(t *testing.T) {
	vals := []Value{
		Map(map[string]Value{"a": Int(1)}),
		Map(map[string]Value{"b": Int(1)}),
		Map(map[string]Value{"a": Int(2)}),
		Map(map[string]Value{"a": Int(1), "b": Int(2)}),
		Node(1), Node(2), Relationship(1),
		List(Int(1)), List(Int(2)),
		Str("a"), Bool(false), Bool(true), Int(1), Float(1.5),
		DateTime(time.Unix(0, 0)), DateTime(time.Unix(1, 0)),
		Duration(time.Second), Duration(time.Minute), Null,
	}
	// Total order sanity: antisymmetry and reflexivity across every pair.
	for _, a := range vals {
		if Compare(a, a) != 0 {
			t.Errorf("Compare(%s, %s) != 0", a, a)
		}
		for _, b := range vals {
			if Compare(a, b) != -Compare(b, a) {
				t.Errorf("antisymmetry violated for %s vs %s", a, b)
			}
		}
	}
	// Kind ranking spot checks (openCypher order).
	ordered := []Value{
		Map(map[string]Value{}), Node(1), Relationship(1), List(Int(1)),
		Str("z"), Bool(true), Int(999), DateTime(time.Unix(0, 0)),
		Duration(time.Second), Null,
	}
	for i := 1; i < len(ordered); i++ {
		if Compare(ordered[i-1], ordered[i]) >= 0 {
			t.Errorf("kind order broken between %s and %s", ordered[i-1], ordered[i])
		}
	}
}

func TestDivDurationAndErrors(t *testing.T) {
	v, err := Div(Duration(time.Hour), Int(2))
	if err != nil || !SameValue(v, Duration(30*time.Minute)) {
		t.Errorf("duration/int: %v %v", v, err)
	}
	if _, err := Div(Duration(time.Hour), Int(0)); err == nil {
		t.Error("duration/0")
	}
	if _, err := Div(Str("x"), Int(1)); err == nil {
		t.Error("string division")
	}
}

func TestToStringAllKinds(t *testing.T) {
	cases := map[string]Value{
		"true":   Bool(true),
		"7":      Int(7),
		"2.5":    Float(2.5),
		"1h0m0s": Duration(time.Hour),
	}
	for want, in := range cases {
		v, err := ToString(in)
		if err != nil {
			t.Fatal(err)
		}
		if s, _ := v.AsString(); s != want {
			t.Errorf("ToString(%s) = %q, want %q", in, s, want)
		}
	}
	v, _ := ToString(DateTime(time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC)))
	if s, _ := v.AsString(); !strings.HasPrefix(s, "2023-04-01") {
		t.Errorf("ToString(datetime) = %q", s)
	}
	if _, err := ToString(List()); err == nil {
		t.Error("ToString(list) should error")
	}
}

func TestToBooleanAndToIntegerEdges(t *testing.T) {
	if v, _ := ToBoolean(Bool(true)); !SameValue(v, Bool(true)) {
		t.Error("bool passthrough")
	}
	if _, err := ToBoolean(List()); err == nil {
		t.Error("ToBoolean(list)")
	}
	if _, err := ToInteger(List()); err == nil {
		t.Error("ToInteger(list)")
	}
	if v, _ := ToInteger(Str("  junk  ")); !v.IsNull() {
		t.Error("ToInteger(junk) is null")
	}
}

func TestKindStringUnknown(t *testing.T) {
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind: %s", got)
	}
}
