// Package democovid wires the paper's running example (Fig. 1): four
// knowledge hubs — Experimental (E), Analysis (A), Clinical (C), Regional
// (R) — over a COVID-19 knowledge graph, with the reactive rules R1–R3 of
// §III-C, the auxiliary ICU-count rule R5, and the Essential-Summary-based
// R4' of §III-D. The shell, the HTTP server and the covid example all reuse
// this setup.
package democovid

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/trigger"
	"repro/internal/value"
)

// Options tunes the demo thresholds; the zero value uses demo-scale
// defaults (the paper's production thresholds, e.g. 100 unassigned
// sequences, are impractical for an interactive demo).
type Options struct {
	// UnassignedThreshold is R2's critical number of unassigned sequences
	// per region (default 3).
	UnassignedThreshold int
	// CriticalSequencesThreshold is R3's critical number of sequences
	// assigned to variants with critical effects per region (default 3).
	CriticalSequencesThreshold int
	// IcuGrowthThreshold is R4's relative day-over-day ICU growth
	// (default 0.1, the paper's 10%).
	IcuGrowthThreshold float64
	// SummaryPeriod is the Essential Summary period (default 24h).
	SummaryPeriod time.Duration
}

func (o Options) withDefaults() Options {
	if o.UnassignedThreshold <= 0 {
		o.UnassignedThreshold = 3
	}
	if o.CriticalSequencesThreshold <= 0 {
		o.CriticalSequencesThreshold = 3
	}
	if o.IcuGrowthThreshold <= 0 {
		o.IcuGrowthThreshold = 0.1
	}
	if o.SummaryPeriod <= 0 {
		o.SummaryPeriod = 24 * time.Hour
	}
	return o
}

// Setup configures kb with the four hubs, helpful indexes, the Essential
// Summary, and rules R1, R2, R3, R5 and R4' with default thresholds.
func Setup(kb *core.KnowledgeBase) error { return SetupWith(kb, Options{}) }

// SetupWith is Setup with explicit thresholds.
func SetupWith(kb *core.KnowledgeBase, opt Options) error {
	opt = opt.withDefaults()
	for _, h := range []struct {
		name, desc string
		labels     []string
	}{
		{"E", "Experimental hub: mutations and their effects", []string{"Mutation", "Effect"}},
		{"A", "Analysis hub: sequencing labs and variant assignment", []string{"Lab", "Sequence", "Variant"}},
		{"C", "Clinical hub: hospitals and patients", []string{"Hospital", "Patient", "IcuPatient", "Treatment"}},
		{"R", "Regional hub: region policies", []string{"Region"}},
	} {
		if err := kb.DefineHub(h.name, h.desc, h.labels...); err != nil {
			return err
		}
	}
	// The Fig. 2 schema (LOOSE: alert and summary machinery coexists with
	// the declared domain types) and the paper's hub-property discipline.
	if _, err := kb.ApplySchema(`
	CREATE GRAPH TYPE CovidScenario LOOSE {
	  (effectType: Effect {type STRING, level STRING, hub STRING}),
	  (mutationType: Mutation {id STRING, hub STRING, OPEN}),
	  (labType: Lab {name STRING, hub STRING}),
	  (sequenceType: Sequence {id STRING, hub STRING, OPTIONAL variant STRING}),
	  (variantType: Variant {name STRING, hub STRING}),
	  (hospitalType: Hospital {name STRING, hub STRING}),
	  (regionType: Region {name STRING, hub STRING}),
	  (icuType: IcuPatient {id STRING, hub STRING, OPEN}),
	  (:mutationType)-[hasEffectType: HasEffect]->(:effectType),
	  (:sequenceType)-[sequencedAtType: SequencedAt]->(:labType),
	  (:sequenceType)-[assignedToType: AssignedTo]->(:variantType),
	  (:variantType)-[containsType: Contains]->(:mutationType),
	  (:labType)-[labLocatedType: LocatedIn]->(:regionType),
	  (:hospitalType)-[hospLocatedType: LocatedIn]->(:regionType),
	  (:icuType)-[treatedAtType: TreatedAt]->(:hospitalType),
	  FOR (x:regionType) EXCLUSIVE MANDATORY SINGLETON x.name,
	  FOR (x:sequenceType) EXCLUSIVE MANDATORY SINGLETON x.id,
	  FOR (x:mutationType) EXCLUSIVE MANDATORY SINGLETON x.id
	}`); err != nil {
		return err
	}
	kb.EnforceHubOwnership()
	if err := kb.EnableSummaries(opt.SummaryPeriod); err != nil {
		return err
	}

	rules := []trigger.Rule{
		// R1 (Experimental; intra-hub, single-state): a newly created
		// mutation connected to a critical effect.
		{
			Name:  "R1",
			Hub:   "E",
			Event: trigger.Event{Kind: trigger.CreateNode, Label: "Mutation"},
			Alert: `MATCH (NEW)-[:HasEffect]->(ef:Effect {level: 'critical'})
			        RETURN NEW.id AS mutation, ef.type AS effect`,
		},
		// R2 (Analysis; inter-hub, single-state): unassigned sequences per
		// region above a threshold (the Fig. 3 rule).
		{
			Name:  "R2",
			Hub:   "A",
			Event: trigger.Event{Kind: trigger.CreateNode, Label: "Sequence"},
			Guard: "NEW.variant IS NULL",
			Alert: fmt.Sprintf(`MATCH (NEW)-[:SequencedAt]->(:Lab)-[:LocatedIn]->(r:Region)
			        MATCH (u:Sequence)-[:SequencedAt]->(:Lab)-[:LocatedIn]->(r)
			        WHERE u.variant IS NULL
			        WITH r.name AS region, count(u) AS counter
			        WHERE counter > %d
			        RETURN region, counter`, opt.UnassignedThreshold),
		},
		// R3 (Analysis; inter-hub across A, E and R; single-state): shares
		// R2's guard, but the alert counts the region's sequences assigned
		// to variants containing mutations with critical effects.
		{
			Name:  "R3",
			Hub:   "A",
			Event: trigger.Event{Kind: trigger.CreateNode, Label: "Sequence"},
			Guard: "NEW.variant IS NULL",
			Alert: fmt.Sprintf(`MATCH (NEW)-[:SequencedAt]->(:Lab)-[:LocatedIn]->(r:Region)
			        MATCH (s:Sequence)-[:SequencedAt]->(:Lab)-[:LocatedIn]->(r)
			        MATCH (s)-[:AssignedTo]->(:Variant)-[:Contains]->(:Mutation)
			              -[:HasEffect]->(:Effect {level: 'critical'})
			        WITH r.name AS region, count(DISTINCT s) AS critical
			        WHERE critical > %d
			        RETURN region, critical`, opt.CriticalSequencesThreshold),
		},
		// R5 (Clinical; auxiliary rule of the R4' walkthrough): each ICU
		// admission records the region's current ICU count; the Essential
		// Summary clusters these per day.
		{
			Name:  "R5",
			Hub:   "C",
			Event: trigger.Event{Kind: trigger.CreateNode, Label: "IcuPatient"},
			Alert: `MATCH (NEW)-[:TreatedAt]->(:Hospital)-[:LocatedIn]->(r:Region)
			        MATCH (i:IcuPatient)-[:TreatedAt]->(:Hospital)-[:LocatedIn]->(r)
			        RETURN r.name AS Region, count(i) AS IcuPatients`,
		},
		// R4' (Clinical; inter-hub, multi-state): compares today's ICU
		// count with yesterday's, read from the previous summary via the R5
		// alerts — the §III-D listing.
		{
			Name:  "R4",
			Hub:   "C",
			Event: trigger.Event{Kind: trigger.CreateNode, Label: "IcuPatient"},
			Alert: fmt.Sprintf(`MATCH (NEW)-[:TreatedAt]->(:Hospital)-[:LocatedIn]->(r:Region)
			        MATCH (i:IcuPatient)-[:TreatedAt]->(:Hospital)-[:LocatedIn]->(r)
			        WITH r.name AS Region, count(i) AS TodayIcu
			        MATCH (a:Alert {rule: 'R5', Region: Region})<-[:has]-(s:Summary)-[:next]->(:Current)
			        WITH Region, TodayIcu, max(a.IcuPatients) AS YesterdayIcu
			        WHERE toFloat(TodayIcu - YesterdayIcu) / toFloat(TodayIcu) > %g
			        RETURN Region, TodayIcu, YesterdayIcu,
			               'Significant increase of ICU patients' AS description`,
				opt.IcuGrowthThreshold),
		},
	}
	for _, r := range rules {
		if err := kb.InstallRule(r); err != nil {
			return err
		}
	}
	return nil
}

// Seed populates the base knowledge: two regions with labs and hospitals,
// a critical effect, a variant containing a mutation with that effect.
func Seed(kb *core.KnowledgeBase) error {
	stmts := []string{
		`CREATE (:Region {name: 'Lombardy', hub: 'R'}),
		        (:Region {name: 'Veneto', hub: 'R'})`,
		`MATCH (r:Region {name: 'Lombardy'})
		 CREATE (:Lab {name: 'MI-lab-1', hub: 'A'})-[:LocatedIn]->(r),
		        (:Hospital {name: 'MI-hosp-1', hub: 'C'})-[:LocatedIn]->(r)`,
		`MATCH (r:Region {name: 'Veneto'})
		 CREATE (:Lab {name: 'VE-lab-1', hub: 'A'})-[:LocatedIn]->(r),
		        (:Hospital {name: 'VE-hosp-1', hub: 'C'})-[:LocatedIn]->(r)`,
		`CREATE (:Effect {type: 'vaccine escape', level: 'critical', hub: 'E'}),
		        (:Effect {type: 'higher transmissibility', level: 'moderate', hub: 'E'})`,
		`CREATE (:Variant {name: 'B.1.351', hub: 'A'})`,
	}
	for _, s := range stmts {
		if _, err := kb.Execute(s, nil); err != nil {
			return fmt.Errorf("seed %q: %w", s, err)
		}
	}
	return nil
}

// AdmitIcuPatient creates one ICU patient at the named hospital, firing R5
// (and R4' once a previous period exists).
func AdmitIcuPatient(kb *core.KnowledgeBase, hospital, patientID string) error {
	_, err := kb.Execute(
		`MATCH (h:Hospital {name: $h})
		 CREATE (:IcuPatient {id: $id, hub: 'C'})-[:TreatedAt]->(h)`,
		map[string]value.Value{"h": value.Str(hospital), "id": value.Str(patientID)})
	return err
}

// AddSequence creates one sequence at the named lab; variant may be empty
// (unassigned), which is what R2 and R3 watch for.
func AddSequence(kb *core.KnowledgeBase, lab, seqID, variant string) error {
	params := map[string]value.Value{"lab": value.Str(lab), "id": value.Str(seqID)}
	q := `MATCH (l:Lab {name: $lab})
	      CREATE (:Sequence {id: $id, hub: 'A'})-[:SequencedAt]->(l)`
	if variant != "" {
		params["v"] = value.Str(variant)
		q = `MATCH (l:Lab {name: $lab}), (v:Variant {name: $v})
		     CREATE (s:Sequence {id: $id, hub: 'A', variant: $v})-[:SequencedAt]->(l),
		            (s)-[:AssignedTo]->(v)`
	}
	_, err := kb.Execute(q, params)
	return err
}
