package democovid

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/periodic"
	"repro/internal/trigger"
)

func demoKB(t *testing.T) (*core.KnowledgeBase, *periodic.ManualClock) {
	t.Helper()
	clock := periodic.NewManualClock(time.Date(2023, 4, 1, 8, 0, 0, 0, time.UTC))
	kb := core.New(core.Config{Clock: clock})
	if err := Setup(kb); err != nil {
		t.Fatal(err)
	}
	if err := Seed(kb); err != nil {
		t.Fatal(err)
	}
	return kb, clock
}

func alertsByRule(t *testing.T, kb *core.KnowledgeBase) map[string]int {
	t.Helper()
	alerts, err := kb.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]int{}
	for _, a := range alerts {
		out[a.Rule]++
	}
	return out
}

func TestSetupInstallsFiveRules(t *testing.T) {
	kb, _ := demoKB(t)
	rules := kb.Rules()
	if len(rules) != 5 {
		t.Fatalf("rules = %d, want 5", len(rules))
	}
	names := map[string]bool{}
	for _, r := range rules {
		names[r.Name] = true
	}
	for _, want := range []string{"R1", "R2", "R3", "R5", "R4"} {
		if !names[want] {
			t.Errorf("missing rule %s", want)
		}
	}
	// Classifications follow §III-C.
	c1, _ := kb.ClassifyRule("R1")
	if c1.Scope != trigger.IntraHub || c1.State != trigger.SingleState {
		t.Errorf("R1: %+v", c1)
	}
	c2, _ := kb.ClassifyRule("R2")
	if c2.Scope != trigger.InterHub || c2.State != trigger.SingleState {
		t.Errorf("R2: %+v", c2)
	}
	c3, _ := kb.ClassifyRule("R3")
	if c3.Scope != trigger.InterHub {
		t.Errorf("R3: %+v", c3)
	}
	c4, _ := kb.ClassifyRule("R4")
	if c4.State != trigger.MultiState {
		t.Errorf("R4 should be multi-state: %+v", c4)
	}
	// The rule set terminates.
	if cycles := kb.CheckTermination(); len(cycles) > 0 {
		t.Errorf("triggering cycles: %v", cycles)
	}
}

func TestR1FiresOnCriticalMutation(t *testing.T) {
	kb, _ := demoKB(t)
	if _, err := kb.Execute(`MATCH (ef:Effect {level: 'critical'})
		CREATE (:Mutation {id: 'S:E484K', hub: 'E'})-[:HasEffect]->(ef)`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := kb.Execute(`MATCH (ef:Effect {level: 'moderate'})
		CREATE (:Mutation {id: 'S:D614G', hub: 'E'})-[:HasEffect]->(ef)`, nil); err != nil {
		t.Fatal(err)
	}
	counts := alertsByRule(t, kb)
	if counts["R1"] != 1 {
		t.Errorf("R1 alerts = %d, want 1 (only the critical effect)", counts["R1"])
	}
}

func TestR2ThresholdPerRegion(t *testing.T) {
	kb, _ := demoKB(t)
	// 4 unassigned sequences in Lombardy; threshold is 3.
	for i := 0; i < 4; i++ {
		if err := AddSequence(kb, "MI-lab-1", fmt.Sprintf("MI-s%d", i), ""); err != nil {
			t.Fatal(err)
		}
	}
	// 2 unassigned in Veneto: below threshold.
	for i := 0; i < 2; i++ {
		if err := AddSequence(kb, "VE-lab-1", fmt.Sprintf("VE-s%d", i), ""); err != nil {
			t.Fatal(err)
		}
	}
	counts := alertsByRule(t, kb)
	if counts["R2"] != 1 {
		t.Errorf("R2 alerts = %d, want 1 (only Lombardy's 4th sequence crosses)", counts["R2"])
	}
	alerts, _ := kb.Alerts()
	for _, a := range alerts {
		if a.Rule == "R2" {
			if r, _ := a.Props["region"].AsString(); r != "Lombardy" {
				t.Errorf("R2 region = %s", r)
			}
			if c, _ := a.Props["counter"].AsInt(); c != 4 {
				t.Errorf("R2 counter = %d", c)
			}
		}
	}
}

func TestR3CountsCriticalVariantSequences(t *testing.T) {
	kb, _ := demoKB(t)
	// Wire the variant to a critical mutation.
	if _, err := kb.Execute(`MATCH (ef:Effect {level: 'critical'})
		CREATE (:Mutation {id: 'S:N501Y', hub: 'E'})-[:HasEffect]->(ef)`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := kb.Execute(`MATCH (v:Variant {name: 'B.1.351'}), (m:Mutation {id: 'S:N501Y'})
		CREATE (v)-[:Contains]->(m)`, nil); err != nil {
		t.Fatal(err)
	}
	// 4 sequences assigned to the critical variant in Lombardy.
	for i := 0; i < 4; i++ {
		if err := AddSequence(kb, "MI-lab-1", fmt.Sprintf("as%d", i), "B.1.351"); err != nil {
			t.Fatal(err)
		}
	}
	// R3 (and R2) trigger on unassigned sequences; add one to evaluate.
	if err := AddSequence(kb, "MI-lab-1", "probe", ""); err != nil {
		t.Fatal(err)
	}
	counts := alertsByRule(t, kb)
	if counts["R3"] != 1 {
		t.Errorf("R3 alerts = %d, want 1", counts["R3"])
	}
}

func TestR4PrimeAcrossDays(t *testing.T) {
	kb, clock := demoKB(t)
	// Day 0: two ICU patients in Lombardy (R5 logs counts 1 and 2).
	for i := 0; i < 2; i++ {
		if err := AdmitIcuPatient(kb, "MI-hosp-1", fmt.Sprintf("d0-p%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	counts := alertsByRule(t, kb)
	if counts["R5"] != 2 {
		t.Fatalf("R5 day-0 alerts = %d", counts["R5"])
	}
	if counts["R4"] != 0 {
		t.Fatalf("R4 must stay quiet without a previous period, got %d", counts["R4"])
	}
	// Next day.
	clock.Advance(25 * time.Hour)
	if err := kb.Tick(); err != nil {
		t.Fatal(err)
	}
	// Day 1: a third patient → today=3, yesterday(max)=2 → growth 1/3 > 10%.
	if err := AdmitIcuPatient(kb, "MI-hosp-1", "d1-p0"); err != nil {
		t.Fatal(err)
	}
	counts = alertsByRule(t, kb)
	if counts["R4"] != 1 {
		t.Fatalf("R4 alerts = %d, want 1", counts["R4"])
	}
	alerts, _ := kb.Alerts()
	for _, a := range alerts {
		if a.Rule != "R4" {
			continue
		}
		today, _ := a.Props["TodayIcu"].AsInt()
		yesterday, _ := a.Props["YesterdayIcu"].AsInt()
		if today != 3 || yesterday != 2 {
			t.Errorf("R4 counters: today=%d yesterday=%d", today, yesterday)
		}
		if d, _ := a.Props["description"].AsString(); d == "" {
			t.Error("R4 description missing")
		}
	}
}

func TestVenetoIndependentOfLombardy(t *testing.T) {
	kb, clock := demoKB(t)
	// ICU growth in Lombardy only; Veneto stays flat.
	_ = AdmitIcuPatient(kb, "MI-hosp-1", "l0")
	_ = AdmitIcuPatient(kb, "VE-hosp-1", "v0")
	clock.Advance(25 * time.Hour)
	if err := kb.Tick(); err != nil {
		t.Fatal(err)
	}
	_ = AdmitIcuPatient(kb, "MI-hosp-1", "l1")
	alerts, _ := kb.Alerts()
	for _, a := range alerts {
		if a.Rule == "R4" {
			if r, _ := a.Props["Region"].AsString(); r != "Lombardy" {
				t.Errorf("R4 fired for %s", r)
			}
		}
	}
}

func TestSetupWithCustomThresholds(t *testing.T) {
	clock := periodic.NewManualClock(time.Date(2023, 4, 1, 8, 0, 0, 0, time.UTC))
	kb := core.New(core.Config{Clock: clock})
	if err := SetupWith(kb, Options{UnassignedThreshold: 1}); err != nil {
		t.Fatal(err)
	}
	if err := Seed(kb); err != nil {
		t.Fatal(err)
	}
	_ = AddSequence(kb, "MI-lab-1", "s0", "")
	_ = AddSequence(kb, "MI-lab-1", "s1", "")
	counts := alertsByRule(t, kb)
	if counts["R2"] != 1 {
		t.Errorf("lowered threshold should fire on the 2nd sequence: %v", counts)
	}
}
