package cep

import "repro/internal/metrics"

// Metric names (documented in OBSERVABILITY.md; check_metrics_docs.sh
// keeps the catalog in sync).
const (
	mPartialsOpen = "rkm_cep_partials_open"
	mOpened       = "rkm_cep_opened_total"
	mSteps        = "rkm_cep_steps_total"
	mCompleted    = "rkm_cep_completed_total"
	mExpired      = "rkm_cep_expired_total"
	mKilled       = "rkm_cep_killed_total"
	mEvictions    = "rkm_cep_window_evictions_total"
	mAlerts       = "rkm_cep_alerts_total"
	mOrphaned     = "rkm_cep_orphaned_total"
	mRecovered    = "rkm_cep_recovered_total"
	mMatchSeconds = "rkm_cep_match_seconds"
)

// cepMetrics holds the manager's instruments (nil-safe when unregistered).
type cepMetrics struct {
	opened       *metrics.Counter
	steps        *metrics.Counter
	completed    *metrics.Counter
	expired      *metrics.Counter
	killed       *metrics.Counter
	evictions    *metrics.Counter
	alerts       *metrics.Counter
	orphaned     *metrics.Counter
	recovered    *metrics.Counter
	matchSeconds *metrics.Histogram
}

// matchBuckets cover event-time spans from sub-second to hours: composite
// windows are typically minutes, and absence matches complete a full
// window after they open.
var matchBuckets = []float64{1, 5, 15, 60, 300, 900, 1800, 3600, 7200}

func (m *Manager) wireMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc(mPartialsOpen,
		"Durable partial-match nodes currently on the graph (open and completed-but-undrained).",
		func() float64 { return float64(m.h.partialCount()) })
	m.m.opened = reg.Counter(mOpened, "Partial matches opened.")
	m.m.steps = reg.Counter(mSteps, "Composite-step occurrences handled by the automaton.")
	m.m.completed = reg.Counter(mCompleted, "Partial matches completed (composite event detected).")
	m.m.expired = reg.Counter(mExpired, "Partial matches evicted because their window closed before completion.")
	m.m.killed = reg.Counter(mKilled, "Armed absence matches killed by an occurrence of the negated event.")
	m.m.evictions = reg.Counter(mEvictions, "Occurrence timestamps evicted from sliding count windows.")
	m.m.alerts = reg.Counter(mAlerts, "Alert nodes materialized from completed composite matches.")
	m.m.orphaned = reg.Counter(mOrphaned, "Partial matches discarded because their rule was dropped.")
	m.m.recovered = reg.Counter(mRecovered, "Partial matches recovered from a previous run at Enable.")
	m.m.matchSeconds = reg.Histogram(mMatchSeconds,
		"Event-time span from a match's opening occurrence to its completion, in seconds.",
		matchBuckets)
}
