package cep

// Crash-recovery tests for durable partial-match state: the process is
// "killed" (by copying the FsyncAlways log directory — exactly what a crash
// leaves behind) with partial matches at every stage of their life cycle —
// open mid-sequence, completed but undrained, completion transaction
// mid-write, window expired but unresolved, and absence armed — and after
// reopening, every staged composite match must materialize exactly one
// alert: none lost, none duplicated.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/periodic"
	"repro/internal/wal"
)

var faultT0 = time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC)

func cepCopyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	cepCopyInto(t, src, dst)
	return dst
}

// cepCopyInto recursively copies src into dst (sharded stores keep one
// subdirectory per shard).
func cepCopyInto(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		sp, dp := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			if err := os.Mkdir(dp, 0o755); err != nil {
				t.Fatal(err)
			}
			cepCopyInto(t, sp, dp)
			continue
		}
		data, err := os.ReadFile(sp)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dp, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// openDurableCEP opens a durable knowledge base at dir with the clock set
// to at, enables composite events and re-installs the rules (rules are
// configuration, re-installed on every open).
func openDurableCEP(t *testing.T, dir string, at time.Time, rules ...Rule) (*core.KnowledgeBase, *periodic.ManualClock, *Manager) {
	t.Helper()
	clock := periodic.NewManualClock(at)
	kb, _, err := core.OpenDurable(dir,
		core.Config{Clock: clock},
		wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	t.Cleanup(func() { _ = kb.Close() })
	m, err := Enable(kb, Options{})
	if err != nil {
		t.Fatalf("Enable: %v", err)
	}
	for _, r := range rules {
		if err := m.Install(r); err != nil {
			t.Fatal(err)
		}
	}
	return kb, clock, m
}

// assertAlertKeys drains m and asserts exactly one alert per expected key —
// the exactly-once contract — no matter how many times the drain runs.
func assertAlertKeys(t *testing.T, kb *core.KnowledgeBase, m *Manager, want ...string) {
	t.Helper()
	for i := 0; i < 3; i++ { // repeated drains must not duplicate
		if _, err := m.DrainOnce(); err != nil {
			t.Fatalf("DrainOnce: %v", err)
		}
	}
	alerts, err := kb.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, a := range alerts {
		k, _ := a.Props["key"].AsString()
		got[k]++
	}
	if len(alerts) != len(want) {
		t.Fatalf("%d alerts after recovery, want %d: %v", len(alerts), len(want), got)
	}
	for _, k := range want {
		if got[k] != 1 {
			t.Fatalf("key %q materialized %d alerts, want exactly 1 (%v)", k, got[k], got)
		}
	}
	if m.Depth() != 0 {
		t.Fatalf("depth after recovery drain = %d, want 0", m.Depth())
	}
}

func TestCEPFaultCrashWithOpenPartial(t *testing.T) {
	dir := t.TempDir()
	kb, _, _ := openDurableCEP(t, dir, faultT0, seq2("pair", 5*time.Minute))
	cepExec(t, kb, "CREATE (:E0 {k: 'a'})")

	// Crash with the match open mid-sequence: the staged partial rode the
	// WAL with its triggering transaction and must survive verbatim.
	kb2, _, m2 := openDurableCEP(t, cepCopyDir(t, dir), faultT0.Add(time.Minute),
		seq2("pair", 5*time.Minute))
	if m2.Recovered() != 1 {
		t.Fatalf("Recovered = %d, want 1", m2.Recovered())
	}
	if m2.Depth() != 1 {
		t.Fatalf("depth after reopen = %d, want 1", m2.Depth())
	}
	if m2.m.recovered.Value() != 1 {
		t.Fatalf("recovered counter = %d, want 1", m2.m.recovered.Value())
	}
	// The surviving partial still advances: the closing step completes it.
	cepExec(t, kb2, "CREATE (:E1 {k: 'a'})")
	assertAlertKeys(t, kb2, m2, "a")
}

func TestCEPFaultCrashDoneUndrained(t *testing.T) {
	dir := t.TempDir()
	kb, _, m := openDurableCEP(t, dir, faultT0, seq2("pair", 5*time.Minute))
	cepExec(t, kb, "CREATE (:E0 {k: 'a'})")
	cepExec(t, kb, "CREATE (:E1 {k: 'a'})")
	if m.Depth() != 1 {
		t.Fatalf("depth = %d, want 1 done partial awaiting drain", m.Depth())
	}

	// Crash after completion committed but before any drain ran: recovery
	// must deliver the match exactly once.
	kb2, _, m2 := openDurableCEP(t, cepCopyDir(t, dir), faultT0.Add(time.Minute),
		seq2("pair", 5*time.Minute))
	assertAlertKeys(t, kb2, m2, "a")
}

func TestCEPFaultCompletionTxMidWrite(t *testing.T) {
	dir := t.TempDir()
	kb, _, _ := openDurableCEP(t, dir, faultT0, seq2("pair", 5*time.Minute))
	cepExec(t, kb, "CREATE (:E0 {k: 'a'})")
	cepExec(t, kb, "CREATE (:E1 {k: 'a'})")
	crash := cepCopyDir(t, dir)

	// Reopen and replay the drain up to the brink of its commit: partial
	// deleted and alert created inside the follow-up transaction — then
	// crash (rollback). Nothing may reach the log, so the done partial must
	// still be queued and deliver exactly once.
	kb2, _, m2 := openDurableCEP(t, crash, faultT0.Add(time.Minute),
		seq2("pair", 5*time.Minute))
	var pid graph.NodeID
	err := kb2.Store().View(func(tx *graph.Tx) error {
		ids := tx.NodesByLabel(PartialLabel)
		if len(ids) != 1 {
			return fmt.Errorf("%d partials, want 1", len(ids))
		}
		pid = ids[0]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m2.mu.RLock()
	cr := m2.rules["pair"]
	m2.mu.RUnlock()
	wtx := kb2.Store().Begin(graph.ReadWrite)
	if err := m2.complete(wtx, cr, pid); err != nil {
		t.Fatal(err)
	}
	wtx.Rollback() // the crash: the completion transaction never commits

	// The second crash image is byte-identical to the first (rollback wrote
	// nothing durable): reopen it and the match still delivers exactly once.
	kb3, _, m3 := openDurableCEP(t, cepCopyDir(t, crash), faultT0.Add(time.Minute),
		seq2("pair", 5*time.Minute))
	if m3.Depth() != 1 {
		t.Fatalf("depth after mid-write crash = %d, want 1", m3.Depth())
	}
	assertAlertKeys(t, kb3, m3, "a")
	// And the instance that rolled back also converges to exactly once.
	assertAlertKeys(t, kb2, m2, "a")
}

func TestCEPFaultWindowExpiredUncommitted(t *testing.T) {
	dir := t.TempDir()
	kb, _, _ := openDurableCEP(t, dir, faultT0, seq2("pair", 5*time.Minute))
	cepExec(t, kb, "CREATE (:E0 {k: 'a'})")

	// Crash with the partial open; by the time the process is back, the
	// window has expired. The eviction was never committed pre-crash, so
	// recovery must evict — not alert, not leak.
	kb2, _, m2 := openDurableCEP(t, cepCopyDir(t, dir), faultT0.Add(10*time.Minute),
		seq2("pair", 5*time.Minute))
	if m2.Depth() != 1 {
		t.Fatalf("depth after reopen = %d, want 1", m2.Depth())
	}
	assertAlertKeys(t, kb2, m2) // zero alerts
	if m2.m.expired.Value() != 1 {
		t.Fatalf("expired = %d, want 1", m2.m.expired.Value())
	}
}

func TestCEPFaultAbsenceArmedAcrossCrash(t *testing.T) {
	dir := t.TempDir()
	kb, _, _ := openDurableCEP(t, dir, faultT0, absenceRule(5*time.Minute))
	cepExec(t, kb, "CREATE (:Txn {k: 'a'})")

	// Crash while the absence match is armed; the deadline passes while the
	// process is down. The window closing without the forbidden event IS
	// the composite event — it must still be detected after recovery, with
	// the completion stamped at the deadline.
	kb2, _, m2 := openDurableCEP(t, cepCopyDir(t, dir), faultT0.Add(time.Hour),
		absenceRule(5*time.Minute))
	assertAlertKeys(t, kb2, m2, "a")
	alerts, err := kb2.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	if at, ok := alerts[0].Props["completedAt"].AsDateTime(); !ok || !at.Equal(faultT0.Add(5*time.Minute)) {
		t.Fatalf("completedAt = %v, want the original deadline %v",
			alerts[0].Props["completedAt"], faultT0.Add(5*time.Minute))
	}
}

func TestCEPFaultEveryStageExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	kb, _, m := openDurableCEP(t, dir, faultT0, seq2("pair", time.Hour))
	// Stage matches at each point of the life cycle, one key per stage:
	// drained: completed AND drained before the crash — its alert exists.
	cepExec(t, kb, "CREATE (:E0 {k: 'drained'})")
	cepExec(t, kb, "CREATE (:E1 {k: 'drained'})")
	if _, err := m.DrainOnce(); err != nil {
		t.Fatal(err)
	}
	// done: completed, still awaiting drain.
	cepExec(t, kb, "CREATE (:E0 {k: 'done'})")
	cepExec(t, kb, "CREATE (:E1 {k: 'done'})")
	// open1, open2: mid-sequence.
	cepExec(t, kb, "CREATE (:E0 {k: 'open1'})")
	cepExec(t, kb, "CREATE (:E0 {k: 'open2'})")
	if m.Depth() != 3 {
		t.Fatalf("staged depth = %d, want 3", m.Depth())
	}

	kb2, _, m2 := openDurableCEP(t, cepCopyDir(t, dir), faultT0.Add(time.Minute),
		seq2("pair", time.Hour))
	if m2.Recovered() != 3 {
		t.Fatalf("Recovered = %d, want 3", m2.Recovered())
	}
	// Finish the open matches after recovery.
	cepExec(t, kb2, "CREATE (:E1 {k: 'open1'})")
	cepExec(t, kb2, "CREATE (:E1 {k: 'open2'})")
	assertAlertKeys(t, kb2, m2, "drained", "done", "open1", "open2")
}

func TestCEPFaultShardedCrashRecovery(t *testing.T) {
	hubs := []core.HubShard{
		{Hub: "P", Description: "payments", Labels: []string{"E0", "E1"}},
		{Hub: "M", Description: "merchants", Labels: []string{"Merchant"}},
	}
	open := func(dir string, at time.Time) (*core.ShardedKB, *Manager) {
		t.Helper()
		kb, _, err := core.OpenShardedDurable(dir,
			core.Config{Clock: periodic.NewManualClock(at)}, hubs,
			wal.Options{Fsync: wal.FsyncAlways})
		if err != nil {
			t.Fatalf("OpenShardedDurable: %v", err)
		}
		t.Cleanup(func() { _ = kb.Close() })
		m, err := EnableSharded(kb, Options{})
		if err != nil {
			t.Fatal(err)
		}
		r := seq2("pair", time.Hour)
		r.Hub = "P"
		if err := m.Install(r); err != nil {
			t.Fatal(err)
		}
		return kb, m
	}

	dir := t.TempDir()
	kb, _ := open(dir, faultT0)
	if _, _, err := kb.ExecuteInHub("P", "CREATE (:E0 {k: 'a'})", nil); err != nil {
		t.Fatal(err)
	}

	// Crash with the partial staged in P's shard; it recovers there and the
	// match completes after reopen.
	kb2, m2 := open(cepCopyDir(t, dir), faultT0.Add(time.Minute))
	if m2.Recovered() != 1 {
		t.Fatalf("Recovered = %d, want 1", m2.Recovered())
	}
	if _, _, err := kb2.ExecuteInHub("P", "CREATE (:E1 {k: 'a'})", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := m2.DrainOnce(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := kb2.QueryInHub("P", "MATCH (a:Alert) RETURN count(a) AS n", nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Value()
	if n, _ := v.AsInt(); n != 1 {
		t.Fatalf("alerts in P after recovery = %d, want exactly 1", n)
	}
	if m2.Depth() != 0 {
		t.Fatalf("depth = %d, want 0", m2.Depth())
	}
}
