package cep

// Parser tests for the composite DSL: accepted forms, byte-offset error
// reporting, statement routing, canonical-text round trips, and the APOC
// export.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/trigger"
)

func TestCEPParseRuleForms(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want func(t *testing.T, r Rule)
	}{
		{
			name: "count with guard and key",
			src: "CREATE TRIGGER velocity ON HUB P\n" +
				"WHEN COUNT(CREATE NODE Txn IF NEW.flagged BY NEW.account) >= 3 WITHIN 5m",
			want: func(t *testing.T, r Rule) {
				if r.Name != "velocity" || r.Hub != "P" || r.Op != Count {
					t.Fatalf("header = %+v", r)
				}
				if r.Threshold != 3 || r.Window != 5*time.Minute {
					t.Fatalf("threshold/window = %d/%v", r.Threshold, r.Window)
				}
				st := r.Steps[0]
				if st.Event.Kind != trigger.CreateNode || st.Event.Label != "Txn" {
					t.Fatalf("event = %+v", st.Event)
				}
				if st.Guard != "NEW.flagged" || st.Key != "NEW.account" {
					t.Fatalf("guard/key = %q/%q", st.Guard, st.Key)
				}
			},
		},
		{
			name: "multi-line sequence",
			src: "CREATE TRIGGER big-pair ON HUB P\n" +
				"WHEN SEQUENCE(CREATE NODE Txn IF NEW.amount > 900 BY NEW.account,\n" +
				"              CREATE NODE Txn IF NEW.amount > 900 BY NEW.account)\n" +
				"WITHIN 5m",
			want: func(t *testing.T, r Rule) {
				if r.Op != Sequence || len(r.Steps) != 2 {
					t.Fatalf("rule = %+v", r)
				}
				if r.Steps[1].Guard != "NEW.amount > 900" {
					t.Fatalf("step guard = %q", r.Steps[1].Guard)
				}
			},
		},
		{
			name: "absence with alert query",
			src: "CREATE TRIGGER unconfirmed ON HUB P\n" +
				"WHEN SEQUENCE(CREATE NODE Txn BY NEW.account,\n" +
				"              NOT CREATE NODE Confirmation BY NEW.account)\n" +
				"WITHIN 30m\n" +
				"THEN ALERT\n" +
				"  RETURN KEY AS account, MATCHES AS hits",
			want: func(t *testing.T, r Rule) {
				if !r.Steps[1].Negated {
					t.Fatal("NOT atom not negated")
				}
				if r.Window != 30*time.Minute {
					t.Fatalf("window = %v", r.Window)
				}
				if r.Alert != "RETURN KEY AS account, MATCHES AS hits" {
					t.Fatalf("alert = %q", r.Alert)
				}
			},
		},
		{
			name: "AND with OF keyword and bare THEN",
			src: "CREATE TRIGGER both\n" +
				"WHEN AND(CREATE OF NODE A, DELETE OF NODE B) WITHIN 1h\n" +
				"THEN RETURN RULE AS r",
			want: func(t *testing.T, r Rule) {
				if r.Hub != "" || r.Op != All || len(r.Steps) != 2 {
					t.Fatalf("rule = %+v", r)
				}
				if r.Steps[1].Event.Kind != trigger.DeleteNode {
					t.Fatalf("step 1 = %+v", r.Steps[1].Event)
				}
				if r.Alert != "RETURN RULE AS r" {
					t.Fatalf("alert = %q", r.Alert)
				}
			},
		},
		{
			name: "keywords inside guard parens are opaque",
			src: "CREATE TRIGGER tricky\n" +
				"WHEN COUNT(CREATE NODE Txn IF (NEW.tag = 'WITHIN THEN BY') BY NEW.k) >= 2 WITHIN 90s",
			want: func(t *testing.T, r Rule) {
				if r.Steps[0].Guard != "(NEW.tag = 'WITHIN THEN BY')" {
					t.Fatalf("guard = %q", r.Steps[0].Guard)
				}
				if r.Window != 90*time.Second {
					t.Fatalf("window = %v", r.Window)
				}
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r, err := ParseRule(c.src)
			if err != nil {
				t.Fatalf("ParseRule: %v", err)
			}
			c.want(t, r)
			if _, err := compile(r); err != nil {
				t.Fatalf("parsed rule does not compile: %v", err)
			}
		})
	}
}

func TestCEPParseRuleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring the error must contain
	}{
		{"no when", "CREATE TRIGGER x", "missing WHEN clause"},
		{"bad header", "WHEN SEQUENCE(CREATE NODE A) WITHIN 5m", "expected CREATE TRIGGER"},
		{"header junk", "CREATE TRIGGER x y z\nWHEN SEQUENCE(CREATE NODE A) WITHIN 5m", `unexpected "y z"`},
		{"bad op", "CREATE TRIGGER x\nWHEN MERGE(CREATE NODE A) WITHIN 5m", "expected SEQUENCE(, AND( or COUNT("},
		{"no paren", "CREATE TRIGGER x\nWHEN SEQUENCE CREATE NODE A WITHIN 5m", "expected ( after SEQUENCE"},
		{"unclosed", "CREATE TRIGGER x\nWHEN SEQUENCE(CREATE NODE A WITHIN 5m", "unclosed ( in SEQUENCE"},
		{"empty atoms", "CREATE TRIGGER x\nWHEN SEQUENCE() WITHIN 5m", "at least one atom"},
		{"bad event", "CREATE TRIGGER x\nWHEN SEQUENCE(EXPLODE NODE A) WITHIN 5m", "EXPLODE"},
		{"empty atom event", "CREATE TRIGGER x\nWHEN SEQUENCE(IF NEW.v > 1) WITHIN 5m", "atom needs an event"},
		{"empty if", "CREATE TRIGGER x\nWHEN SEQUENCE(CREATE NODE A IF ) WITHIN 5m", "IF needs a predicate"},
		{"empty by", "CREATE TRIGGER x\nWHEN SEQUENCE(CREATE NODE A BY ) WITHIN 5m", "BY needs a key expression"},
		{"by before if", "CREATE TRIGGER x\nWHEN SEQUENCE(CREATE NODE A BY NEW.k IF NEW.v) WITHIN 5m", "BY must follow IF"},
		{"count no threshold", "CREATE TRIGGER x\nWHEN COUNT(CREATE NODE A) WITHIN 5m", "COUNT needs >="},
		{"count bad threshold", "CREATE TRIGGER x\nWHEN COUNT(CREATE NODE A) >= zero WITHIN 5m", `bad COUNT threshold "zero"`},
		{"count zero threshold", "CREATE TRIGGER x\nWHEN COUNT(CREATE NODE A) >= 0 WITHIN 5m", `bad COUNT threshold "0"`},
		{"no within", "CREATE TRIGGER x\nWHEN SEQUENCE(CREATE NODE A)", "expected WITHIN"},
		{"within no duration", "CREATE TRIGGER x\nWHEN SEQUENCE(CREATE NODE A) WITHIN", "WITHIN needs a duration"},
		{"bad duration", "CREATE TRIGGER x\nWHEN SEQUENCE(CREATE NODE A) WITHIN fortnight", `bad WITHIN duration "fortnight"`},
		{"negative duration", "CREATE TRIGGER x\nWHEN SEQUENCE(CREATE NODE A) WITHIN -5m", `bad WITHIN duration "-5m"`},
		{"trailing junk", "CREATE TRIGGER x\nWHEN SEQUENCE(CREATE NODE A) WITHIN 5m junk", `unexpected "junk"`},
		{"empty then", "CREATE TRIGGER x\nWHEN SEQUENCE(CREATE NODE A) WITHIN 5m\nTHEN ALERT", "THEN needs an alert query"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseRule(c.src)
			if err == nil {
				t.Fatalf("ParseRule(%q) should fail", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
			if !strings.Contains(err.Error(), "byte ") {
				t.Fatalf("error %q carries no byte offset", err)
			}
		})
	}
}

func TestCEPParseErrorOffsets(t *testing.T) {
	// The reported offset must point into the offending clause, not at 0.
	src := "CREATE TRIGGER x\nWHEN COUNT(CREATE NODE A) >= 3 WITHIN fortnight"
	_, err := ParseRule(src)
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	i := strings.Index(msg, "byte ")
	if i < 0 {
		t.Fatalf("no byte offset in %q", msg)
	}
	var off int
	if _, scanErr := fmt.Sscanf(msg[i:], "byte %d", &off); scanErr != nil {
		t.Fatalf("unparsable offset in %q: %v", msg, scanErr)
	}
	within := strings.Index(src, "WITHIN")
	if off != within {
		t.Fatalf("offset = %d, want %d (start of the WITHIN tail)", off, within)
	}
}

func TestCEPIsCompositeStatement(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"CREATE TRIGGER x\nWHEN SEQUENCE(CREATE NODE A) WITHIN 5m", true},
		{"  create trigger x\nwhen count(CREATE NODE A) >= 2 within 5m", true},
		{"CREATE TRIGGER x\nWHEN AND(CREATE NODE A, CREATE NODE B) WITHIN 5m", true},
		// Single-event trigger DSL: WHEN holds a predicate, not an operator.
		{"CREATE TRIGGER x\nAFTER CREATE OF NODE A\nWHEN true", false},
		// AND as a predicate conjunction, not a call.
		{"CREATE TRIGGER x\nAFTER CREATE OF NODE A\nWHEN NEW.a AND NEW.b", false},
		// COUNTER is not COUNT at a word boundary.
		{"CREATE TRIGGER x\nWHEN COUNTER(1) WITHIN 5m", false},
		{"MATCH (n) RETURN n", false},
		{"CREATE (:Trigger)", false},
	}
	for _, c := range cases {
		if got := IsCompositeStatement(c.src); got != c.want {
			t.Errorf("IsCompositeStatement(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestCEPTextRoundTrip(t *testing.T) {
	srcs := []string{
		"CREATE TRIGGER velocity ON HUB P\n" +
			"WHEN COUNT(CREATE NODE Txn IF NEW.flagged BY NEW.account) >= 3 WITHIN 5m",
		"CREATE TRIGGER unconfirmed ON HUB P\n" +
			"WHEN SEQUENCE(CREATE NODE Txn BY NEW.account, NOT CREATE NODE Confirmation BY NEW.account) WITHIN 30m\n" +
			"THEN ALERT\n  RETURN KEY AS account",
		"CREATE TRIGGER both\nWHEN AND(CREATE NODE A, DELETE NODE B) WITHIN 1h30m",
	}
	for _, src := range srcs {
		r1, err := ParseRule(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		text := r1.Text()
		r2, err := ParseRule(text)
		if err != nil {
			t.Fatalf("re-parse %q: %v", text, err)
		}
		if r2.Name != r1.Name || r2.Hub != r1.Hub || r2.Op != r1.Op ||
			r2.Threshold != r1.Threshold || r2.Window != r1.Window ||
			r2.Alert != r1.Alert || len(r2.Steps) != len(r1.Steps) {
			t.Fatalf("round trip drifted:\n%+v\n%+v", r1, r2)
		}
		for i := range r1.Steps {
			if r1.Steps[i] != r2.Steps[i] {
				t.Fatalf("step %d drifted: %+v vs %+v", i, r1.Steps[i], r2.Steps[i])
			}
		}
	}
}

func TestCEPFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		90 * time.Second:             "1m30s",
		5 * time.Minute:              "5m",
		time.Hour:                    "1h",
		time.Hour + 30*time.Minute:   "1h30m",
		2*time.Hour + 15*time.Second: "2h0m15s",
		30 * time.Minute:             "30m",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestCEPTranslateAPOC(t *testing.T) {
	r, err := ParseRule("CREATE TRIGGER unconfirmed ON HUB P\n" +
		"WHEN SEQUENCE(CREATE NODE Txn IF NEW.amount > 900 BY NEW.account,\n" +
		"              NOT CREATE NODE Confirmation BY NEW.account)\n" +
		"WITHIN 30m")
	if err != nil {
		t.Fatal(err)
	}
	stmts, err := TranslateAPOC(r, "neo4j")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 { // one per step + the drain job
		t.Fatalf("statements = %d, want 3", len(stmts))
	}
	for i := 0; i < 2; i++ {
		if !strings.Contains(stmts[i], "apoc.trigger.install") {
			t.Fatalf("statement %d is not a trigger install:\n%s", i, stmts[i])
		}
		if !strings.Contains(stmts[i], stepRuleName("unconfirmed", i)) {
			t.Fatalf("statement %d misses its step name:\n%s", i, stmts[i])
		}
		if !strings.Contains(stmts[i], "CEPPartial") {
			t.Fatalf("statement %d does not maintain CEPPartial:\n%s", i, stmts[i])
		}
	}
	if !strings.Contains(stmts[0], "MERGE") || !strings.Contains(stmts[1], "DETACH DELETE") {
		t.Fatalf("opener/killer shapes wrong:\n%s\n%s", stmts[0], stmts[1])
	}
	if !strings.Contains(stmts[2], "apoc.periodic.repeat") {
		t.Fatalf("last statement is not the drain job:\n%s", stmts[2])
	}

	// COUNT renders the sliding-window list comprehension.
	cnt, err := ParseRule("CREATE TRIGGER velocity\n" +
		"WHEN COUNT(CREATE NODE Txn BY NEW.account) >= 3 WITHIN 5m")
	if err != nil {
		t.Fatal(err)
	}
	stmts, err = TranslateAPOC(cnt, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 || !strings.Contains(stmts[0], "p.times") {
		t.Fatalf("COUNT translation wrong:\n%v", stmts)
	}

	// Property events are outside the Fig. 6 scheme.
	bad := Rule{
		Name: "x", Op: Sequence, Window: time.Minute,
		Steps: []Step{{Event: trigger.Event{Kind: trigger.SetProperty, PropKey: "v"}}},
	}
	if _, err := TranslateAPOC(bad, ""); err == nil {
		t.Fatal("property-event step should not translate")
	}
}

func TestCEPManagerTranslateAllAPOC(t *testing.T) {
	_, _, m := newCEPKB(t)
	if err := m.Install(seq2("pair", 5*time.Minute)); err != nil {
		t.Fatal(err)
	}
	err := m.Install(Rule{
		Name: "props", Hub: "H", Op: Sequence, Window: time.Minute,
		Steps: []Step{{Event: trigger.Event{Kind: trigger.SetProperty, PropKey: "v"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	translated, skipped := m.TranslateAllAPOC("neo4j")
	if len(translated) != 3 { // pair's two steps + drain
		t.Fatalf("translated = %d statements, want 3", len(translated))
	}
	if len(skipped) != 1 || !strings.Contains(skipped[0], "props") {
		t.Fatalf("skipped = %v, want the property-event rule", skipped)
	}
}
