package cep

// The composite extension of the PG-Triggers-style DSL. Where a
// single-event trigger declares AFTER <event>, a composite rule declares a
// WHEN operator over event atoms and a window:
//
//	CREATE TRIGGER velocity ON HUB P
//	WHEN COUNT(CREATE NODE Txn IF NEW.flagged BY NEW.account) >= 3 WITHIN 5m
//	THEN ALERT
//	  MATCH (a:Account {id: KEY}) RETURN a.id AS account, MATCHES AS hits
//
//	CREATE TRIGGER big-pair ON HUB P
//	WHEN SEQUENCE(CREATE NODE Txn IF NEW.amount > 900 BY NEW.account,
//	              CREATE NODE Txn IF NEW.amount > 900 BY NEW.account)
//	WITHIN 5m
//
//	CREATE TRIGGER unconfirmed ON HUB P
//	WHEN SEQUENCE(CREATE NODE Txn IF NEW.amount > 900 BY NEW.account,
//	              NOT CREATE NODE Confirmation BY NEW.account)
//	WITHIN 30m
//
// Atoms are `[NOT] <verb> [OF] <target> [selector] [IF <predicate>] [BY
// <key-expr>]` — the event grammar of the trigger DSL, plus an optional
// synchronous guard (IF) and correlation key (BY). COUNT takes one atom
// and `>= <threshold>`. The THEN clause is optional; `THEN ALERT <query>`
// (or bare `THEN <query>`) supplies the completion alert query, run with
// KEY, RULE, MATCHES, WINDOW, STARTEDAT, DONEAT, FIRST and LAST bound.
//
// Keywords are case insensitive and recognized only outside parentheses,
// brackets and quotes, so guards and alert queries may use them freely.
// Parse errors carry the byte offset and text of the offending clause.

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/trigger"
)

// cepErrf builds a parse error carrying the offending clause and its byte
// offset within the declaration source.
func cepErrf(off int, clause, format string, args ...any) error {
	c := strings.Join(strings.Fields(clause), " ")
	if len(c) > 60 {
		c = c[:57] + "..."
	}
	msg := fmt.Sprintf(format, args...)
	return fmt.Errorf("cep dsl: %s (byte %d: %q)", msg, off, c)
}

// IsCompositeStatement reports whether src looks like a composite CREATE
// TRIGGER declaration — one whose WHEN clause opens with a composite
// operator — so servers and shells can route it to a Manager instead of
// the single-event trigger DSL.
func IsCompositeStatement(src string) bool {
	if !trigger.IsTriggerStatement(src) {
		return false
	}
	wi := findKeyword(src, 0, "WHEN")
	if wi < 0 {
		return false
	}
	rest := strings.TrimSpace(src[wi+len("WHEN"):])
	for _, op := range []string{"SEQUENCE", "AND", "COUNT"} {
		if len(rest) > len(op) && strings.EqualFold(rest[:len(op)], op) &&
			strings.HasPrefix(strings.TrimSpace(rest[len(op):]), "(") {
			return true
		}
	}
	return false
}

// ParseRule parses one composite CREATE TRIGGER declaration. The result
// still needs Manager.Install (which compiles the embedded Cypher).
func ParseRule(src string) (Rule, error) {
	var r Rule
	wi := findKeyword(src, 0, "WHEN")
	if wi < 0 {
		return r, cepErrf(0, src, "missing WHEN clause")
	}
	if err := parseHeader(src[:wi], &r); err != nil {
		return r, err
	}
	whenEnd := len(src)
	ti := findKeyword(src, wi+len("WHEN"), "THEN")
	if ti >= 0 {
		whenEnd = ti
	}
	if err := parseWhen(src, wi+len("WHEN"), whenEnd, &r); err != nil {
		return r, err
	}
	if ti >= 0 {
		alert := strings.TrimSpace(src[ti+len("THEN"):])
		if rest, ok := cutKeyword(alert, "ALERT"); ok {
			alert = rest
		}
		if alert == "" {
			return r, cepErrf(ti, src[ti:], "THEN needs an alert query")
		}
		r.Alert = alert
	}
	return r, nil
}

func parseHeader(header string, r *Rule) error {
	fields := strings.Fields(header)
	if len(fields) < 3 || !strings.EqualFold(fields[0], "CREATE") ||
		!strings.EqualFold(fields[1], "TRIGGER") {
		return cepErrf(0, header, "expected CREATE TRIGGER <name>")
	}
	r.Name = fields[2]
	rest := fields[3:]
	if len(rest) == 0 {
		return nil
	}
	if len(rest) >= 3 && strings.EqualFold(rest[0], "ON") && strings.EqualFold(rest[1], "HUB") {
		r.Hub = rest[2]
		rest = rest[3:]
	}
	if len(rest) != 0 {
		return cepErrf(0, header, "unexpected %q after trigger header", strings.Join(rest, " "))
	}
	return nil
}

// parseWhen parses src[start:end): `<OP>(atom, …) [>= k] WITHIN <dur>`.
func parseWhen(src string, start, end int, r *Rule) error {
	clause := src[start:end]
	lead := len(clause) - len(strings.TrimLeft(clause, " \t\r\n"))
	opStart := start + lead
	rest := src[opStart:end]
	var op Op
	var opWord string
	switch {
	case hasWordPrefix(rest, "SEQUENCE"):
		op, opWord = Sequence, "SEQUENCE"
	case hasWordPrefix(rest, "AND"):
		op, opWord = All, "AND"
	case hasWordPrefix(rest, "COUNT"):
		op, opWord = Count, "COUNT"
	default:
		return cepErrf(opStart, rest, "expected SEQUENCE(, AND( or COUNT( after WHEN")
	}
	r.Op = op
	parenRel := strings.Index(rest, "(")
	if parenRel < 0 || strings.TrimSpace(rest[len(opWord):parenRel]) != "" {
		return cepErrf(opStart, rest, "expected ( after %s", opWord)
	}
	openAbs := opStart + parenRel
	closeAbs := matchParen(src, openAbs, end)
	if closeAbs < 0 {
		return cepErrf(openAbs, src[openAbs:end], "unclosed ( in %s", opWord)
	}
	atoms, offs := splitTopLevel(src, openAbs+1, closeAbs)
	if len(atoms) == 0 {
		return cepErrf(openAbs, src[openAbs:closeAbs+1], "%s needs at least one atom", opWord)
	}
	for i, atom := range atoms {
		st, err := parseAtom(atom, offs[i])
		if err != nil {
			return err
		}
		r.Steps = append(r.Steps, st)
	}

	tail := src[closeAbs+1 : end]
	tailOff := closeAbs + 1
	lead = len(tail) - len(strings.TrimLeft(tail, " \t\r\n"))
	tail, tailOff = tail[lead:], tailOff+lead
	if op == Count {
		if !strings.HasPrefix(tail, ">=") {
			return cepErrf(tailOff, tail, "COUNT needs >= <threshold> after the atom")
		}
		numStr := tail[2:]
		lead = len(numStr) - len(strings.TrimLeft(numStr, " \t\r\n"))
		numStr = numStr[lead:]
		fields := strings.Fields(numStr)
		if len(fields) == 0 {
			return cepErrf(tailOff, tail, "COUNT needs >= <threshold>")
		}
		k, err := strconv.Atoi(fields[0])
		if err != nil || k < 1 {
			return cepErrf(tailOff, tail, "bad COUNT threshold %q", fields[0])
		}
		r.Threshold = k
		cut := strings.Index(numStr, fields[0]) + len(fields[0])
		tailOff += 2 + lead + cut
		tail = numStr[cut:]
		lead = len(tail) - len(strings.TrimLeft(tail, " \t\r\n"))
		tail, tailOff = tail[lead:], tailOff+lead
	}
	if !hasWordPrefix(tail, "WITHIN") {
		return cepErrf(tailOff, tail, "expected WITHIN <duration> after the atom list")
	}
	fields := strings.Fields(tail[len("WITHIN"):])
	if len(fields) == 0 {
		return cepErrf(tailOff, tail, "WITHIN needs a duration (e.g. 5m, 90s, 1h)")
	}
	d, err := time.ParseDuration(fields[0])
	if err != nil || d <= 0 {
		return cepErrf(tailOff, tail, "bad WITHIN duration %q", fields[0])
	}
	r.Window = d
	if len(fields) > 1 {
		return cepErrf(tailOff, tail, "unexpected %q after WITHIN duration",
			strings.Join(fields[1:], " "))
	}
	return nil
}

// parseAtom parses `[NOT] <event spec> [IF <expr>] [BY <expr>]`.
func parseAtom(atom string, off int) (Step, error) {
	var st Step
	text := atom
	lead := len(text) - len(strings.TrimLeft(text, " \t\r\n"))
	text, off = strings.TrimSpace(text), off+lead
	if rest, ok := cutKeyword(text, "NOT"); ok {
		st.Negated = true
		text = rest
	}
	ifIdx := findKeyword(text, 0, "IF")
	byIdx := findKeyword(text, 0, "BY")
	specEnd := len(text)
	if ifIdx >= 0 {
		specEnd = ifIdx
	}
	if byIdx >= 0 && byIdx < specEnd {
		specEnd = byIdx
	}
	spec := strings.TrimSpace(text[:specEnd])
	if spec == "" {
		return st, cepErrf(off, atom, "atom needs an event (e.g. CREATE NODE Txn)")
	}
	ev, err := trigger.ParseEventSpec(spec)
	if err != nil {
		return st, cepErrf(off, atom, "%s", err)
	}
	st.Event = ev
	if ifIdx >= 0 {
		guardEnd := len(text)
		if byIdx > ifIdx {
			guardEnd = byIdx
		}
		st.Guard = strings.TrimSpace(text[ifIdx+len("IF") : guardEnd])
		if st.Guard == "" {
			return st, cepErrf(off+ifIdx, atom, "IF needs a predicate")
		}
	}
	if byIdx >= 0 {
		if byIdx < ifIdx {
			return st, cepErrf(off+byIdx, atom, "BY must follow IF")
		}
		st.Key = strings.TrimSpace(text[byIdx+len("BY"):])
		if st.Key == "" {
			return st, cepErrf(off+byIdx, atom, "BY needs a key expression")
		}
	}
	return st, nil
}

// ---- canonical rendering ----

// Text renders the rule in canonical DSL form (the inverse of ParseRule).
func (r Rule) Text() string {
	var b strings.Builder
	b.WriteString("CREATE TRIGGER ")
	b.WriteString(r.Name)
	if r.Hub != "" {
		b.WriteString(" ON HUB ")
		b.WriteString(r.Hub)
	}
	b.WriteString("\nWHEN ")
	b.WriteString(r.Op.String())
	b.WriteString("(")
	for i, st := range r.Steps {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(atomText(st))
	}
	b.WriteString(")")
	if r.Op == Count {
		fmt.Fprintf(&b, " >= %d", r.Threshold)
	}
	b.WriteString(" WITHIN ")
	b.WriteString(FormatDuration(r.Window))
	if r.Alert != "" {
		b.WriteString("\nTHEN ALERT\n  ")
		b.WriteString(r.Alert)
	}
	return b.String()
}

func atomText(st Step) string {
	var b strings.Builder
	if st.Negated {
		b.WriteString("NOT ")
	}
	b.WriteString(eventSpecText(st.Event))
	if st.Guard != "" {
		b.WriteString(" IF ")
		b.WriteString(st.Guard)
	}
	if st.Key != "" {
		b.WriteString(" BY ")
		b.WriteString(st.Key)
	}
	return b.String()
}

// eventSpecText renders a trigger event in the DSL's spec grammar.
func eventSpecText(ev trigger.Event) string {
	verb, target, sel := "", "", ev.Label
	switch ev.Kind {
	case trigger.CreateNode:
		verb, target = "CREATE", "NODE"
	case trigger.DeleteNode:
		verb, target = "DELETE", "NODE"
	case trigger.CreateRelationship:
		verb, target = "CREATE", "RELATIONSHIP"
	case trigger.DeleteRelationship:
		verb, target = "DELETE", "RELATIONSHIP"
	case trigger.SetLabel:
		verb, target = "SET", "LABEL"
	case trigger.RemoveLabel:
		verb, target = "REMOVE", "LABEL"
	case trigger.SetProperty, trigger.RemoveProperty:
		verb, target = "SET", "PROPERTY"
		if ev.Kind == trigger.RemoveProperty {
			verb = "REMOVE"
		}
		switch {
		case ev.Label != "" && ev.PropKey != "":
			sel = ev.Label + "." + ev.PropKey
		case ev.PropKey != "":
			sel = ev.PropKey
		}
	}
	out := verb + " " + target
	if sel != "" {
		out += " " + sel
	}
	return out
}

// FormatDuration renders a duration the way the DSL reads it: "5m" rather
// than time.Duration's "5m0s".
func FormatDuration(d time.Duration) string {
	s := d.String()
	if strings.HasSuffix(s, "m0s") {
		s = s[:len(s)-2]
	}
	if strings.HasSuffix(s, "h0m") {
		s = s[:len(s)-2]
	}
	return s
}

// ---- keyword scanning ----

// findKeyword returns the byte index of the first occurrence of word at or
// after from — case insensitive, at word boundaries, outside parentheses,
// brackets, braces and quotes — or -1.
func findKeyword(src string, from int, word string) int {
	depth := 0
	var quote byte
	for i := from; i < len(src); i++ {
		c := src[i]
		if quote != 0 {
			if c == '\\' {
				i++
			} else if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '\'', '"', '`':
			quote = c
			continue
		case '(', '[', '{':
			depth++
			continue
		case ')', ']', '}':
			depth--
			continue
		}
		if depth != 0 {
			continue
		}
		if len(src)-i >= len(word) && strings.EqualFold(src[i:i+len(word)], word) &&
			wordBoundary(src, i-1) && wordBoundary(src, i+len(word)) {
			return i
		}
	}
	return -1
}

func wordBoundary(src string, i int) bool {
	if i < 0 || i >= len(src) {
		return true
	}
	c := src[i]
	return !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '.')
}

// hasWordPrefix reports whether s starts with word at a word boundary.
func hasWordPrefix(s, word string) bool {
	return len(s) >= len(word) && strings.EqualFold(s[:len(word)], word) &&
		wordBoundary(s, len(word))
}

// cutKeyword strips a leading keyword (and following space) from s.
func cutKeyword(s, word string) (string, bool) {
	if hasWordPrefix(s, word) {
		return strings.TrimSpace(s[len(word):]), true
	}
	return s, false
}

// matchParen returns the index of the ) matching the ( at open, scanning
// no further than end; -1 if unbalanced.
func matchParen(src string, open, end int) int {
	depth := 0
	var quote byte
	for i := open; i < end && i < len(src); i++ {
		c := src[i]
		if quote != 0 {
			if c == '\\' {
				i++
			} else if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '\'', '"', '`':
			quote = c
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

// splitTopLevel splits src[start:end) on top-level commas, returning the
// pieces and their absolute byte offsets.
func splitTopLevel(src string, start, end int) (parts []string, offs []int) {
	depth := 0
	var quote byte
	last := start
	flush := func(to int) {
		piece := src[last:to]
		if strings.TrimSpace(piece) != "" {
			parts = append(parts, piece)
			offs = append(offs, last)
		}
		last = to + 1
	}
	for i := start; i < end && i < len(src); i++ {
		c := src[i]
		if quote != 0 {
			if c == '\\' {
				i++
			} else if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '\'', '"', '`':
			quote = c
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		case ',':
			if depth == 0 {
				flush(i)
			}
		}
	}
	flush(end)
	return parts, offs
}
