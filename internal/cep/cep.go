package cep

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/periodic"
	"repro/internal/trigger"
	"repro/internal/value"
)

// PartialLabel is the label of the durable partial-match bookkeeping
// nodes. Like PendingAlert, the label is registered in the engine's
// SkipLabels, so automaton churn is invisible to user rule matching while
// still riding the WAL, snapshots, recovery and replication.
const PartialLabel = "CEPPartial"

// CEPPartial node properties.
const (
	propRule      = "cepRule"   // composite rule name
	propKey       = "ckey"      // correlation-key string ("" when unkeyed)
	propPKey      = "pkey"      // rule + NUL + key; indexed for lookup
	propState     = "state"     // sequence: next step index; AND: seen bitmask
	propTimes     = "times"     // COUNT: JSON array of unix-nano timestamps
	propStartedAt = "startedAt" // clock time of the opening occurrence
	propUpdatedAt = "updatedAt" // clock time of the latest advance
	propDeadline  = "deadline"  // window close
	propDone      = "done"      // completed, awaiting drain
	propDoneAt    = "doneAt"    // clock time of completion
	propFirst     = "first"     // encoded binding of the opening occurrence
	propLast      = "last"      // encoded binding of the latest occurrence
)

// DefaultDrainInterval paces the background drain loop when Start is
// called with a non-positive interval.
const DefaultDrainInterval = 200 * time.Millisecond

// ErrEnabled is returned when Enable is called twice on one knowledge base.
var ErrEnabled = errors.New("cep: composite events already enabled on this knowledge base")

// Options configures a Manager.
type Options struct {
	// AlertLabel is the default label of composite alert nodes; empty
	// means the trigger engine's default ("Alert"). Individual rules can
	// override it.
	AlertLabel string
	// Logf receives background drain-loop errors; nil discards them.
	Logf func(format string, args ...any)
}

// host abstracts the per-queue surface the manager needs, so one automaton
// serves both a KnowledgeBase (one queue) and a ShardedKB (one queue per
// hub shard, with per-shard partial state — composite rules correlate
// within a shard, as the async pipeline does).
type host interface {
	queues() int
	view(q int, fn func(tx *graph.Tx) error) error
	update(q int, fn func(tx *graph.Tx) error) error
	engine() *trigger.Engine
	clock() periodic.Clock
	registry() *metrics.Registry
	createIndex(label, prop string) error
	partialCount() int
}

type kbHost struct{ kb *core.KnowledgeBase }

func (h kbHost) queues() int { return 1 }
func (h kbHost) view(_ int, fn func(tx *graph.Tx) error) error {
	return h.kb.Store().View(fn)
}
func (h kbHost) update(_ int, fn func(tx *graph.Tx) error) error {
	_, err := h.kb.WriteTx(fn)
	return err
}
func (h kbHost) engine() *trigger.Engine     { return h.kb.Engine() }
func (h kbHost) clock() periodic.Clock       { return h.kb.Clock() }
func (h kbHost) registry() *metrics.Registry { return h.kb.Metrics() }
func (h kbHost) createIndex(label, prop string) error {
	return h.kb.CreateIndex(label, prop)
}
func (h kbHost) partialCount() int { return h.kb.Store().LabelCount(PartialLabel) }

type shardHost struct{ kb *core.ShardedKB }

func (h shardHost) queues() int { return h.kb.NumShards() }
func (h shardHost) view(q int, fn func(tx *graph.Tx) error) error {
	return h.kb.ViewShard(q, fn)
}
func (h shardHost) update(q int, fn func(tx *graph.Tx) error) error {
	_, err := h.kb.UpdateShard(q, fn)
	return err
}
func (h shardHost) engine() *trigger.Engine     { return h.kb.Engine() }
func (h shardHost) clock() periodic.Clock       { return h.kb.Clock() }
func (h shardHost) registry() *metrics.Registry { return h.kb.Metrics() }
func (h shardHost) createIndex(label, prop string) error {
	for i := 0; i < h.kb.Store().NumShards(); i++ {
		if err := h.kb.Store().Shard(i).CreateIndex(label, prop); err != nil {
			return err
		}
	}
	return nil
}
func (h shardHost) partialCount() int {
	n := 0
	for i := 0; i < h.kb.Store().NumShards(); i++ {
		n += h.kb.Store().Shard(i).LabelCount(PartialLabel)
	}
	return n
}

// Manager runs composite-event rules over one knowledge base: it installs
// their compiled step rules, advances durable partial-match state from the
// engine's StepSink, and drains completed or expired partials into alerts.
type Manager struct {
	h    host
	opts Options
	m    cepMetrics

	mu    sync.RWMutex
	rules map[string]*compiledRule
	seq   int

	recovered int

	workerMu sync.Mutex
	wake     chan struct{}
	stop     chan struct{}
	done     chan struct{}
}

// Enable attaches composite-event support to a knowledge base: it
// registers the CEPPartial skip label and lookup index, wires the
// rkm_cep_* metrics, installs the engine StepSink, and counts any partial
// matches recovered from a previous run. Call it after New/OpenDurable and
// before the first write (the sink and skip label must not change under
// concurrent transactions); refused on replication followers, whose
// partial state arrives from the leader.
func Enable(kb *core.KnowledgeBase, opts Options) (*Manager, error) {
	if kb.Role() == "follower" {
		return nil, core.ErrFollower
	}
	return newManager(kbHost{kb}, opts)
}

// EnableSharded is Enable for a hub-sharded knowledge base. Partial-match
// state is kept per shard (each occurrence correlates within the shard its
// transaction wrote), mirroring the per-shard async queues.
func EnableSharded(kb *core.ShardedKB, opts Options) (*Manager, error) {
	if kb.Follower() {
		return nil, core.ErrFollower
	}
	return newManager(shardHost{kb}, opts)
}

func newManager(h host, opts Options) (*Manager, error) {
	eng := h.engine()
	if eng.StepSink != nil {
		return nil, ErrEnabled
	}
	m := &Manager{h: h, opts: opts, rules: make(map[string]*compiledRule)}
	if eng.SkipLabels == nil {
		eng.SkipLabels = make(map[string]bool)
	}
	eng.SkipLabels[PartialLabel] = true
	if err := h.createIndex(PartialLabel, propPKey); err != nil {
		return nil, fmt.Errorf("cep: create partial index: %w", err)
	}
	m.wireMetrics(h.registry())
	m.recovered = h.partialCount()
	m.m.recovered.Add(int64(m.recovered))
	eng.StepSink = m.step
	return m, nil
}

func (m *Manager) alertLabel(cr *compiledRule) string {
	if cr.AlertLabel != "" {
		return cr.AlertLabel
	}
	if m.opts.AlertLabel != "" {
		return m.opts.AlertLabel
	}
	return trigger.DefaultAlertLabel
}

func (m *Manager) logf(format string, args ...any) {
	if m.opts.Logf != nil {
		m.opts.Logf(format, args...)
	}
}

// Recovered returns the number of partial matches found on the graph when
// the manager was enabled — state a previous process left behind.
func (m *Manager) Recovered() int { return m.recovered }

// Depth returns the number of partial-match nodes currently on the graph
// (open and completed-but-undrained).
func (m *Manager) Depth() int { return m.h.partialCount() }

// ---- rule management ----

// Install compiles a composite rule and installs its step rules on the
// engine.
func (m *Manager) Install(r Rule) error {
	cr, err := compile(r)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.rules[r.Name]; dup {
		return fmt.Errorf("%w: %s", ErrRuleExists, r.Name)
	}
	eng := m.h.engine()
	installed := make([]string, 0, len(cr.Steps))
	for _, sr := range cr.stepRules() {
		if err := eng.Install(sr); err != nil {
			for _, name := range installed {
				_ = eng.Drop(name)
			}
			return fmt.Errorf("cep: rule %s: %w", r.Name, err)
		}
		installed = append(installed, sr.Name)
	}
	cr.seq = m.seq
	m.seq++
	m.rules[r.Name] = cr
	return nil
}

// InstallText parses a composite CREATE TRIGGER declaration (see ParseRule)
// and installs it.
func (m *Manager) InstallText(src string) (Rule, error) {
	r, err := ParseRule(src)
	if err != nil {
		return r, err
	}
	return r, m.Install(r)
}

// Drop removes a composite rule and its step rules. Partial matches the
// rule left behind are discarded (as orphans) by the next drain.
func (m *Manager) Drop(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cr, ok := m.rules[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrRuleNotFound, name)
	}
	eng := m.h.engine()
	for i := range cr.Steps {
		_ = eng.Drop(stepRuleName(name, i))
	}
	delete(m.rules, name)
	return nil
}

// RuleInfo describes one installed composite rule.
type RuleInfo struct {
	Rule
	// Text is the canonical DSL rendering of the rule.
	Text string
}

// Rules lists installed composite rules in installation order.
func (m *Manager) Rules() []RuleInfo {
	m.mu.RLock()
	defer m.mu.RUnlock()
	crs := make([]*compiledRule, 0, len(m.rules))
	for _, cr := range m.rules {
		crs = append(crs, cr)
	}
	sort.Slice(crs, func(i, j int) bool { return crs[i].seq < crs[j].seq })
	out := make([]RuleInfo, len(crs))
	for i, cr := range crs {
		out[i] = RuleInfo{Rule: cr.Rule, Text: cr.Rule.Text()}
	}
	return out
}

// Owns reports whether an engine rule name is an internal per-step rule
// installed by the composite manager (they are implementation detail and
// rule listings usually hide them).
func (m *Manager) Owns(name string) bool {
	return strings.HasPrefix(name, "cep:")
}

// Has reports whether a composite rule with the given name is installed.
func (m *Manager) Has(name string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.rules[name]
	return ok
}

// ---- the step sink: advancing partial matches in the writing tx ----

func partialKey(rule, key string) string { return rule + "\x00" + key }

// step is the engine StepSink: one passing step-rule activation, inside
// the writing transaction. All state it touches is durable graph state, so
// a crash either keeps the whole triggering transaction (with the advance)
// or none of it.
func (m *Manager) step(tx *graph.Tx, item trigger.StepItem) error {
	m.mu.RLock()
	cr := m.rules[item.Composite]
	m.mu.RUnlock()
	if cr == nil || item.Step < 0 || item.Step >= len(cr.Steps) {
		return nil // dropped concurrently: the occurrence is inert
	}
	m.onCommit(tx, func() { m.m.steps.Inc() })

	now := m.h.clock().Now()
	key := ""
	if ke := cr.keys[item.Step]; ke != nil {
		v, err := ke.Eval(tx, &cypher.Options{
			Bindings: item.Binding,
			Now:      func() time.Time { return now },
		})
		if err != nil {
			return fmt.Errorf("cep: rule %s step %d BY: %w", cr.Name, item.Step, err)
		}
		if s, ok := v.AsString(); ok {
			key = s // unquoted: the key is an identity, not a rendering
		} else {
			key = v.String()
		}
	}

	id, open := m.lookup(tx, cr.Name, key)
	if open && m.boolProp(tx, id, propDone) {
		// Completed, awaiting drain: the key is occupied until the
		// follow-up transaction materializes the alert.
		return nil
	}
	switch cr.Op {
	case Sequence:
		return m.stepSequence(tx, cr, item, id, open, key, now)
	case All:
		return m.stepAll(tx, cr, item, id, open, key, now)
	default:
		return m.stepCount(tx, cr, item, id, open, key, now)
	}
}

func (m *Manager) stepSequence(tx *graph.Tx, cr *compiledRule, item trigger.StepItem,
	id graph.NodeID, open bool, key string, now time.Time) error {
	final := len(cr.Steps) - 1
	absence := cr.Steps[final].Negated
	st := cr.Steps[item.Step]
	if open {
		state := int(m.intProp(tx, id, propState))
		deadline, _ := m.timeProp(tx, id, propDeadline)
		switch {
		case !now.Before(deadline):
			if absence && state == final {
				// Armed absence match: the window closed without the
				// negated event. Complete it; the incoming occurrence is
				// outside the window and cannot kill it.
				return m.markDone(tx, cr, id, deadline)
			}
			// Timed out mid-sequence: evict, then treat the incoming
			// occurrence as a fresh opener below.
			if err := m.evict(tx, id); err != nil {
				return err
			}
			open = false
		case st.Negated && item.Step == final:
			if state == final {
				// The forbidden event occurred while armed: kill the match.
				return m.kill(tx, id)
			}
			return nil // NOT only guards the tail of a full prefix match
		case item.Step == state:
			// The expected next step, in order and in the window.
			if err := m.advance(tx, id, item, now, value.Int(int64(state+1))); err != nil {
				return err
			}
			if !absence && item.Step == final {
				return m.markDone(tx, cr, id, now)
			}
			return nil
		default:
			return nil // out-of-order occurrence: ignored
		}
	}
	if !open {
		if item.Step != 0 || st.Negated {
			return nil
		}
		id, err := m.openPartial(tx, cr, item, key, now, value.Int(1), "")
		if err != nil {
			return err
		}
		if !absence && final == 0 {
			return m.markDone(tx, cr, id, now) // degenerate 1-step sequence
		}
	}
	return nil
}

func (m *Manager) stepAll(tx *graph.Tx, cr *compiledRule, item trigger.StepItem,
	id graph.NodeID, open bool, key string, now time.Time) error {
	full := int64(1)<<len(cr.Steps) - 1
	bit := int64(1) << item.Step
	if open {
		deadline, _ := m.timeProp(tx, id, propDeadline)
		if !now.Before(deadline) {
			if err := m.evict(tx, id); err != nil {
				return err
			}
			open = false
		} else {
			mask := m.intProp(tx, id, propState) | bit
			if err := m.advance(tx, id, item, now, value.Int(mask)); err != nil {
				return err
			}
			if mask == full {
				return m.markDone(tx, cr, id, now)
			}
			return nil
		}
	}
	if !open {
		id, err := m.openPartial(tx, cr, item, key, now, value.Int(bit), "")
		if err != nil {
			return err
		}
		if bit == full {
			return m.markDone(tx, cr, id, now) // degenerate 1-step AND
		}
	}
	return nil
}

func (m *Manager) stepCount(tx *graph.Tx, cr *compiledRule, item trigger.StepItem,
	id graph.NodeID, open bool, key string, now time.Time) error {
	if open {
		times := m.times(tx, id)
		kept := pruneTimes(times, now.Add(-cr.Window))
		if ev := len(times) - len(kept); ev > 0 {
			m.onCommit(tx, func() { m.m.evictions.Add(int64(ev)) })
		}
		kept = append(kept, now.UnixNano())
		if err := m.setTimes(tx, id, kept); err != nil {
			return err
		}
		if err := m.advance(tx, id, item, now, value.Int(int64(len(kept)))); err != nil {
			return err
		}
		if err := tx.SetNodeProp(id, propDeadline,
			value.DateTime(time.Unix(0, kept[0]).UTC().Add(cr.Window))); err != nil {
			return err
		}
		if len(kept) >= cr.Threshold {
			return m.markDone(tx, cr, id, now)
		}
		return nil
	}
	times := []int64{now.UnixNano()}
	id, err := m.openPartial(tx, cr, item, key, now, value.Int(1), encodeTimes(times))
	if err != nil {
		return err
	}
	if cr.Threshold <= 1 {
		return m.markDone(tx, cr, id, now)
	}
	return nil
}

// ---- durable partial-node primitives ----

func (m *Manager) lookup(tx *graph.Tx, rule, key string) (graph.NodeID, bool) {
	pk := partialKey(rule, key)
	if ids, ok := tx.NodesByProp(PartialLabel, propPKey, value.Str(pk)); ok {
		if len(ids) == 0 {
			return 0, false
		}
		return ids[0], true
	}
	// No index (not Enable-d storage, e.g. a fork): scan.
	for _, id := range tx.NodesByLabel(PartialLabel) {
		if m.strProp(tx, id, propPKey) == pk {
			return id, true
		}
	}
	return 0, false
}

func (m *Manager) openPartial(tx *graph.Tx, cr *compiledRule, item trigger.StepItem,
	key string, now time.Time, state value.Value, times string) (graph.NodeID, error) {
	enc, err := trigger.EncodeBinding(item.Binding)
	if err != nil {
		return 0, fmt.Errorf("cep: rule %s: %w", cr.Name, err)
	}
	props := map[string]value.Value{
		propRule:      value.Str(cr.Name),
		propKey:       value.Str(key),
		propPKey:      value.Str(partialKey(cr.Name, key)),
		propState:     state,
		propStartedAt: value.DateTime(now),
		propUpdatedAt: value.DateTime(now),
		propDeadline:  value.DateTime(now.Add(cr.Window)),
		propDone:      value.Bool(false),
		propFirst:     value.Str(enc),
		propLast:      value.Str(enc),
	}
	if times != "" {
		props[propTimes] = value.Str(times)
	}
	id, err := tx.CreateNode([]string{PartialLabel}, props)
	if err != nil {
		return 0, err
	}
	m.onCommit(tx, func() { m.m.opened.Inc() })
	return id, nil
}

func (m *Manager) advance(tx *graph.Tx, id graph.NodeID, item trigger.StepItem,
	now time.Time, state value.Value) error {
	enc, err := trigger.EncodeBinding(item.Binding)
	if err != nil {
		return err
	}
	if err := tx.SetNodeProp(id, propState, state); err != nil {
		return err
	}
	if err := tx.SetNodeProp(id, propUpdatedAt, value.DateTime(now)); err != nil {
		return err
	}
	return tx.SetNodeProp(id, propLast, value.Str(enc))
}

// markDone flags a partial as completed; the drain's follow-up transaction
// deletes it and materializes the alert, exactly-once.
func (m *Manager) markDone(tx *graph.Tx, cr *compiledRule, id graph.NodeID, at time.Time) error {
	if err := tx.SetNodeProp(id, propDone, value.Bool(true)); err != nil {
		return err
	}
	if err := tx.SetNodeProp(id, propDoneAt, value.DateTime(at)); err != nil {
		return err
	}
	started, _ := m.timeProp(tx, id, propStartedAt)
	m.onCommit(tx, func() {
		m.m.completed.Inc()
		m.m.matchSeconds.Observe(at.Sub(started).Seconds())
		m.kick()
	})
	return nil
}

func (m *Manager) evict(tx *graph.Tx, id graph.NodeID) error {
	if err := tx.DeleteNode(id, true); err != nil {
		return err
	}
	m.onCommit(tx, func() { m.m.expired.Inc() })
	return nil
}

func (m *Manager) kill(tx *graph.Tx, id graph.NodeID) error {
	if err := tx.DeleteNode(id, true); err != nil {
		return err
	}
	m.onCommit(tx, func() { m.m.killed.Inc() })
	return nil
}

func (m *Manager) onCommit(tx *graph.Tx, fn func()) {
	_ = tx.OnCommitted(func() error { fn(); return nil })
}

// ---- prop accessors ----

func (m *Manager) boolProp(tx *graph.Tx, id graph.NodeID, key string) bool {
	v, _ := tx.NodeProp(id, key)
	b, _ := v.AsBool()
	return b
}

func (m *Manager) intProp(tx *graph.Tx, id graph.NodeID, key string) int64 {
	v, _ := tx.NodeProp(id, key)
	i, _ := v.AsInt()
	return i
}

func (m *Manager) strProp(tx *graph.Tx, id graph.NodeID, key string) string {
	v, _ := tx.NodeProp(id, key)
	s, _ := v.AsString()
	return s
}

func (m *Manager) timeProp(tx *graph.Tx, id graph.NodeID, key string) (time.Time, bool) {
	v, _ := tx.NodeProp(id, key)
	return v.AsDateTime()
}

func (m *Manager) times(tx *graph.Tx, id graph.NodeID) []int64 {
	s := m.strProp(tx, id, propTimes)
	var out []int64
	if s != "" {
		_ = json.Unmarshal([]byte(s), &out)
	}
	return out
}

func (m *Manager) setTimes(tx *graph.Tx, id graph.NodeID, times []int64) error {
	return tx.SetNodeProp(id, propTimes, value.Str(encodeTimes(times)))
}

func encodeTimes(times []int64) string {
	raw, _ := json.Marshal(times)
	return string(raw)
}

// pruneTimes returns the suffix of ascending times at or after cutoff.
func pruneTimes(times []int64, cutoff time.Time) []int64 {
	c := cutoff.UnixNano()
	i := 0
	for i < len(times) && times[i] < c {
		i++
	}
	return times[i:]
}

// ---- the drain: resolving completed and expired partials ----

// DrainOnce resolves every completed or expired partial match across all
// queues, each in its own follow-up transaction that deletes the partial
// node and (for completions) materializes the composite alert atomically.
// It returns the number of partials resolved. Safe to call concurrently
// with writers and with the background loop; deterministic tests drive it
// directly with a manual clock.
func (m *Manager) DrainOnce() (int, error) {
	processed := 0
	var errs []error
	for q := 0; q < m.h.queues(); q++ {
		now := m.h.clock().Now()
		ids, err := m.collect(q, now)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		for _, id := range ids {
			n, err := m.resolve(q, id)
			processed += n
			if err != nil {
				errs = append(errs, err)
			}
		}
	}
	return processed, errors.Join(errs...)
}

// collect lists the partials of one queue that are ready to resolve:
// completed, past their window, or orphaned by a dropped rule.
func (m *Manager) collect(q int, now time.Time) ([]graph.NodeID, error) {
	var out []graph.NodeID
	err := m.h.view(q, func(tx *graph.Tx) error {
		for _, id := range tx.NodesByLabel(PartialLabel) {
			if m.boolProp(tx, id, propDone) {
				out = append(out, id)
				continue
			}
			if !m.Has(m.strProp(tx, id, propRule)) {
				out = append(out, id)
				continue
			}
			if deadline, ok := m.timeProp(tx, id, propDeadline); ok && !now.Before(deadline) {
				out = append(out, id)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Node IDs are assigned in commit order; resolve oldest first.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// resolve handles one ready partial in its own follow-up transaction.
// Returns 1 when the partial was resolved (deleted), 0 when it turned out
// to still be live (e.g. a count window that merely slid).
func (m *Manager) resolve(q int, id graph.NodeID) (int, error) {
	n := 0
	err := m.h.update(q, func(tx *graph.Tx) error {
		if !tx.NodeExists(id) {
			return nil // another drain got here first
		}
		now := m.h.clock().Now()
		ruleName := m.strProp(tx, id, propRule)
		m.mu.RLock()
		cr := m.rules[ruleName]
		m.mu.RUnlock()
		if cr == nil {
			// Orphaned by a dropped rule: discard.
			if err := tx.DeleteNode(id, true); err != nil {
				return err
			}
			m.onCommit(tx, func() { m.m.orphaned.Inc() })
			n = 1
			return nil
		}
		if m.boolProp(tx, id, propDone) {
			n = 1
			return m.complete(tx, cr, id)
		}
		deadline, _ := m.timeProp(tx, id, propDeadline)
		if now.Before(deadline) {
			return nil // no longer ready (clock moved, state advanced)
		}
		final := len(cr.Steps) - 1
		if cr.Op == Sequence && cr.Steps[final].Negated &&
			int(m.intProp(tx, id, propState)) == final {
			// Absence detection: the window closed with the match armed and
			// the forbidden event never came — that IS the composite event.
			started, _ := m.timeProp(tx, id, propStartedAt)
			if err := tx.SetNodeProp(id, propDoneAt, value.DateTime(deadline)); err != nil {
				return err
			}
			m.onCommit(tx, func() {
				m.m.completed.Inc()
				m.m.matchSeconds.Observe(deadline.Sub(started).Seconds())
			})
			n = 1
			return m.complete(tx, cr, id)
		}
		if cr.Op == Count {
			times := m.times(tx, id)
			kept := pruneTimes(times, now.Add(-cr.Window))
			if ev := len(times) - len(kept); ev > 0 {
				m.onCommit(tx, func() { m.m.evictions.Add(int64(ev)) })
			}
			if len(kept) > 0 {
				// The window slid but occurrences remain: keep the partial.
				if err := m.setTimes(tx, id, kept); err != nil {
					return err
				}
				if err := tx.SetNodeProp(id, propState, value.Int(int64(len(kept)))); err != nil {
					return err
				}
				return tx.SetNodeProp(id, propDeadline,
					value.DateTime(time.Unix(0, kept[0]).UTC().Add(cr.Window)))
			}
		}
		// Window closed without completing: evict.
		n = 1
		return m.evict(tx, id)
	})
	if err != nil {
		return 0, fmt.Errorf("cep: resolve partial %d: %w", id, err)
	}
	return n, nil
}

// complete deletes a done partial and materializes its composite alert —
// one atomic follow-up transaction, the exactly-once point.
func (m *Manager) complete(tx *graph.Tx, cr *compiledRule, id graph.NodeID) error {
	key, _ := tx.NodeProp(id, propKey)
	started, _ := m.timeProp(tx, id, propStartedAt)
	doneAt, _ := m.timeProp(tx, id, propDoneAt)
	matches := int64(0)
	switch cr.Op {
	case Count:
		matches = m.intProp(tx, id, propState)
	default:
		for _, st := range cr.Steps {
			if !st.Negated {
				matches++
			}
		}
	}
	firstBind := m.decodedBinding(tx, id, propFirst)
	lastBind := m.decodedBinding(tx, id, propLast)
	if err := tx.DeleteNode(id, true); err != nil {
		return err
	}

	now := m.h.clock().Now()
	bind := trigger.Binding{
		"RULE":      value.Str(cr.Name),
		"KEY":       key,
		"MATCHES":   value.Int(matches),
		"WINDOW":    value.Duration(cr.Window),
		"STARTEDAT": value.DateTime(started),
		"DONEAT":    value.DateTime(doneAt),
		"FIRST":     firstBind,
		"LAST":      lastBind,
	}
	alerts := 0
	if cr.alert != nil {
		res, err := cr.alert.Execute(tx, &cypher.Options{
			Bindings: bind,
			Now:      func() time.Time { return now },
		})
		if err != nil {
			return fmt.Errorf("cep: rule %s alert: %w", cr.Name, err)
		}
		for _, row := range res.Rows {
			if err := m.createAlertNode(tx, cr, now, res.Columns, row); err != nil {
				return err
			}
			alerts++
		}
	} else {
		props := map[string]value.Value{
			"key":         key,
			"matches":     value.Int(matches),
			"window":      value.Duration(cr.Window),
			"startedAt":   value.DateTime(started),
			"completedAt": value.DateTime(doneAt),
		}
		if err := m.createAlertNodeProps(tx, cr, now, props); err != nil {
			return err
		}
		alerts = 1
	}
	na := alerts
	m.onCommit(tx, func() { m.m.alerts.Add(int64(na)) })
	return nil
}

// decodedBinding returns the NEW transition value of a stored occurrence
// binding, or Null.
func (m *Manager) decodedBinding(tx *graph.Tx, id graph.NodeID, prop string) value.Value {
	s := m.strProp(tx, id, prop)
	if s == "" {
		return value.Null
	}
	b, err := trigger.DecodeBinding(s)
	if err != nil {
		return value.Null
	}
	if v, ok := b["NEW"]; ok {
		return v
	}
	return value.Null
}

func (m *Manager) createAlertNode(tx *graph.Tx, cr *compiledRule, now time.Time,
	cols []string, row []value.Value) error {
	props := map[string]value.Value{}
	for i, c := range cols {
		v := row[i]
		if eid, ok := v.EntityID(); ok {
			v = value.Int(eid) // entity references stored by identifier
		}
		props[c] = v
	}
	return m.createAlertNodeProps(tx, cr, now, props)
}

func (m *Manager) createAlertNodeProps(tx *graph.Tx, cr *compiledRule, now time.Time,
	props map[string]value.Value) error {
	props["rule"] = value.Str(cr.Name)
	props["hub"] = value.Str(cr.Hub)
	props["dateTime"] = value.DateTime(now)
	_, err := tx.CreateNode([]string{m.alertLabel(cr)}, props)
	return err
}

// ---- the background drain loop ----

// Start launches the background drain loop: a ticker (plus completion
// kicks) driving DrainOnce. A non-positive interval means
// DefaultDrainInterval. Returns an error if already running.
func (m *Manager) Start(interval time.Duration) error {
	if interval <= 0 {
		interval = DefaultDrainInterval
	}
	m.workerMu.Lock()
	defer m.workerMu.Unlock()
	if m.stop != nil {
		return errors.New("cep: drain loop already running")
	}
	m.wake = make(chan struct{}, 1)
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go m.loop(interval, m.wake, m.stop, m.done)
	return nil
}

// Stop halts the background drain loop, finishing any in-flight drain.
func (m *Manager) Stop() {
	m.workerMu.Lock()
	defer m.workerMu.Unlock()
	if m.stop == nil {
		return
	}
	close(m.stop)
	<-m.done
	m.stop, m.done, m.wake = nil, nil, nil
}

func (m *Manager) loop(interval time.Duration, wake, stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-wake:
		case <-t.C:
		}
		if _, err := m.DrainOnce(); err != nil {
			m.logf("cep: drain: %v", err)
		}
	}
}

// kick nudges the background loop after a completion commit.
func (m *Manager) kick() {
	m.workerMu.Lock()
	wake := m.wake
	m.workerMu.Unlock()
	if wake != nil {
		select {
		case wake <- struct{}{}:
		default:
		}
	}
}
