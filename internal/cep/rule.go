// Package cep layers composite events over the single-event trigger
// engine: sequences, conjunctions, absence (NOT … WITHIN), and sliding
// count windows, in the spirit of the ECA-LP / Reaction RuleML
// composite-event algebra the paper's reaction rules descend from.
//
// A composite rule compiles down to ordinary trigger rules — one per step
// atom, marked with Rule.Composite — whose passing activations feed a
// partial-match automaton via the engine's StepSink. Partial-match state
// lives in durable, skip-labeled CEPPartial graph nodes created inside the
// triggering transaction, so it rides the WAL, snapshots, crash recovery,
// per-shard queues and replication exactly as the async pipeline's
// PendingAlert nodes do. Completed or expired partials are resolved by a
// drain (Manager.DrainOnce) whose follow-up transaction deletes the
// partial node and materializes the composite alert atomically —
// exactly-once across crashes.
package cep

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/cypher"
	"repro/internal/trigger"
)

// Errors reported by composite-rule validation and the manager.
var (
	ErrRuleExists   = errors.New("cep: composite rule already installed")
	ErrRuleNotFound = errors.New("cep: composite rule not found")
)

// Op is a composite-event operator.
type Op int

// Composite-event operators.
const (
	// Sequence matches its steps in order, all within Window of the first
	// match. A final negated step (NOT …) turns the rule into absence
	// detection: the match completes when the window closes without the
	// negated event occurring, and is killed if it does occur.
	Sequence Op = iota
	// All matches when every step has occurred, in any order, within
	// Window of the first match (conjunction).
	All
	// Count matches when Threshold occurrences of its single step fall
	// within a sliding Window; on completion the window resets.
	Count
)

// String returns the DSL operator name.
func (o Op) String() string {
	switch o {
	case All:
		return "AND"
	case Count:
		return "COUNT"
	default:
		return "SEQUENCE"
	}
}

// Step is one atom of a composite rule.
type Step struct {
	// Event selects the graph changes that constitute this atom.
	Event trigger.Event
	// Guard is an optional Cypher predicate over the transition variables
	// (IF clause); it runs synchronously in the triggering transaction.
	Guard string
	// Key is an optional Cypher expression (BY clause) whose value
	// correlates occurrences: each distinct key tracks its own partial
	// match. Steps of one rule should agree on the key expression's
	// meaning (e.g. all keyed by account id).
	Key string
	// Negated marks the step as an absence atom (NOT …). Only valid as
	// the final step of a Sequence.
	Negated bool
}

// Rule is a composite-event rule: operator, step atoms, window, and the
// alert to materialize on completion.
type Rule struct {
	// Name identifies the rule (unique within a manager, and distinct
	// from single-event trigger rules' names).
	Name string
	// Hub is the knowledge hub that owns the rule; recorded on alerts.
	Hub string
	// Op is the composite operator.
	Op Op
	// Steps are the atoms. Count takes exactly one.
	Steps []Step
	// Threshold is the occurrence count for Count (≥ 1).
	Threshold int
	// Window bounds the time span of a match, measured on the knowledge
	// base's clock at the commit that carries each occurrence (event time
	// = tx commit order).
	Window time.Duration
	// Alert is an optional Cypher query run on completion with the
	// bindings KEY, RULE, MATCHES, WINDOW, STARTEDAT, DONEAT, FIRST and
	// LAST visible; each row becomes one alert node. Empty produces a
	// single alert node carrying the match summary.
	Alert string
	// AlertLabel overrides the label of produced alert nodes ("Alert").
	AlertLabel string
}

type compiledRule struct {
	Rule
	keys  []*cypher.CompiledExpr // prepared BY expressions, index-aligned with Steps
	alert *cypher.Plan
	seq   int
}

// stepRuleName is the engine name of a composite rule's i-th step rule.
func stepRuleName(rule string, i int) string {
	return fmt.Sprintf("cep:%s#%d", rule, i)
}

func compile(r Rule) (*compiledRule, error) {
	if r.Name == "" {
		return nil, fmt.Errorf("cep: rule needs a name")
	}
	if strings.ContainsAny(r.Name, "\x00") {
		return nil, fmt.Errorf("cep: rule %s: name must not contain NUL", r.Name)
	}
	if r.Window <= 0 {
		return nil, fmt.Errorf("cep: rule %s: needs WITHIN window > 0", r.Name)
	}
	if len(r.Steps) == 0 {
		return nil, fmt.Errorf("cep: rule %s: needs at least one step", r.Name)
	}
	switch r.Op {
	case Sequence:
		positive := 0
		for i, st := range r.Steps {
			if st.Negated && i != len(r.Steps)-1 {
				return nil, fmt.Errorf("cep: rule %s: NOT is only valid as the final SEQUENCE step", r.Name)
			}
			if !st.Negated {
				positive++
			}
		}
		if positive == 0 {
			return nil, fmt.Errorf("cep: rule %s: SEQUENCE needs a positive step before NOT", r.Name)
		}
	case All:
		if len(r.Steps) < 2 {
			return nil, fmt.Errorf("cep: rule %s: AND needs at least two steps", r.Name)
		}
		if len(r.Steps) > 62 {
			return nil, fmt.Errorf("cep: rule %s: AND supports at most 62 steps", r.Name)
		}
		for _, st := range r.Steps {
			if st.Negated {
				return nil, fmt.Errorf("cep: rule %s: NOT is not supported under AND", r.Name)
			}
		}
	case Count:
		if len(r.Steps) != 1 {
			return nil, fmt.Errorf("cep: rule %s: COUNT takes exactly one step", r.Name)
		}
		if r.Steps[0].Negated {
			return nil, fmt.Errorf("cep: rule %s: NOT is not supported under COUNT", r.Name)
		}
		if r.Threshold < 1 {
			return nil, fmt.Errorf("cep: rule %s: COUNT needs a threshold ≥ 1", r.Name)
		}
	default:
		return nil, fmt.Errorf("cep: rule %s: unknown operator %d", r.Name, r.Op)
	}
	if r.Op != Count && r.Threshold != 0 {
		return nil, fmt.Errorf("cep: rule %s: threshold is only valid with COUNT", r.Name)
	}
	cr := &compiledRule{Rule: r, keys: make([]*cypher.CompiledExpr, len(r.Steps))}
	for i, st := range r.Steps {
		if st.Guard != "" {
			if _, err := cypher.ParseExpr(st.Guard); err != nil {
				return nil, fmt.Errorf("cep: rule %s step %d IF: %w", r.Name, i, err)
			}
		}
		if st.Key != "" {
			ke, err := cypher.PrepareExpr(st.Key)
			if err != nil {
				return nil, fmt.Errorf("cep: rule %s step %d BY: %w", r.Name, i, err)
			}
			cr.keys[i] = ke
		}
	}
	if r.Alert != "" {
		plan, err := cypher.Prepare(r.Alert)
		if err != nil {
			return nil, fmt.Errorf("cep: rule %s alert: %w", r.Name, err)
		}
		cr.alert = plan
	}
	return cr, nil
}

// stepRules returns the trigger rules a composite rule compiles to.
func (cr *compiledRule) stepRules() []trigger.Rule {
	out := make([]trigger.Rule, len(cr.Steps))
	for i, st := range cr.Steps {
		out[i] = trigger.Rule{
			Name:      stepRuleName(cr.Name, i),
			Hub:       cr.Hub,
			Event:     st.Event,
			Guard:     st.Guard,
			Composite: cr.Name,
			StepIndex: i,
		}
	}
	return out
}
