package cep

// Behavior tests for the composite-event subsystem: operator semantics
// (sequence, conjunction, count, absence), correlation keys, window expiry,
// guards, alert queries, rule management, sharded and follower hosts, and
// the background drain loop. Crash recovery is covered in fault_test.go,
// the DSL in dsl_test.go.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/periodic"
	"repro/internal/trigger"
)

var cepT0 = time.Date(2023, 4, 1, 8, 0, 0, 0, time.UTC)

func newCEPKB(t *testing.T) (*core.KnowledgeBase, *periodic.ManualClock, *Manager) {
	t.Helper()
	clock := periodic.NewManualClock(cepT0)
	kb := core.New(core.Config{Clock: clock})
	m, err := Enable(kb, Options{})
	if err != nil {
		t.Fatalf("Enable: %v", err)
	}
	return kb, clock, m
}

func cepExec(t *testing.T, kb *core.KnowledgeBase, query string) *trigger.Report {
	t.Helper()
	_, rep, err := kb.ExecuteReport(query, nil)
	if err != nil {
		t.Fatalf("execute %q: %v", query, err)
	}
	return rep
}

func cepAlerts(t *testing.T, kb *core.KnowledgeBase) []core.Alert {
	t.Helper()
	alerts, err := kb.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	return alerts
}

func drain(t *testing.T, m *Manager) int {
	t.Helper()
	n, err := m.DrainOnce()
	if err != nil {
		t.Fatalf("DrainOnce: %v", err)
	}
	return n
}

// seq2 is a two-step keyed sequence: E0 then E1, correlated by NEW.k.
func seq2(name string, window time.Duration) Rule {
	return Rule{
		Name: name, Hub: "H", Op: Sequence, Window: window,
		Steps: []Step{
			{Event: trigger.Event{Kind: trigger.CreateNode, Label: "E0"}, Key: "NEW.k"},
			{Event: trigger.Event{Kind: trigger.CreateNode, Label: "E1"}, Key: "NEW.k"},
		},
	}
}

func TestCEPSequenceMatchAndDrain(t *testing.T) {
	kb, _, m := newCEPKB(t)
	if err := m.Install(seq2("pair", 5*time.Minute)); err != nil {
		t.Fatal(err)
	}
	rep := cepExec(t, kb, "CREATE (:E0 {k: 'a'})")
	if rep.CompositeSteps != 1 {
		t.Fatalf("CompositeSteps = %d, want 1", rep.CompositeSteps)
	}
	if m.Depth() != 1 {
		t.Fatalf("depth after step 0 = %d, want 1", m.Depth())
	}
	if len(cepAlerts(t, kb)) != 0 {
		t.Fatal("alert before the sequence completed")
	}
	cepExec(t, kb, "CREATE (:E1 {k: 'a'})")
	if n := drain(t, m); n != 1 {
		t.Fatalf("drained %d, want 1", n)
	}
	alerts := cepAlerts(t, kb)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	a := alerts[0]
	if a.Rule != "pair" || a.Hub != "H" {
		t.Fatalf("alert = %+v", a)
	}
	if k, _ := a.Props["key"].AsString(); k != "a" {
		t.Fatalf("alert key = %v, want a", a.Props["key"])
	}
	if n, _ := a.Props["matches"].AsInt(); n != 2 {
		t.Fatalf("alert matches = %v, want 2", a.Props["matches"])
	}
	if m.Depth() != 0 {
		t.Fatalf("depth after drain = %d, want 0", m.Depth())
	}
	if m.m.completed.Value() != 1 || m.m.alerts.Value() != 1 {
		t.Fatalf("completed = %d alerts = %d, want 1/1",
			m.m.completed.Value(), m.m.alerts.Value())
	}
	// Repeated drains find nothing more.
	if n := drain(t, m); n != 0 {
		t.Fatalf("second drain resolved %d, want 0", n)
	}
}

func TestCEPSequenceOutOfOrderIgnored(t *testing.T) {
	kb, _, m := newCEPKB(t)
	if err := m.Install(seq2("pair", 5*time.Minute)); err != nil {
		t.Fatal(err)
	}
	// The second step without an open partial does not open one.
	cepExec(t, kb, "CREATE (:E1 {k: 'a'})")
	if m.Depth() != 0 {
		t.Fatalf("depth after orphan step 1 = %d, want 0", m.Depth())
	}
	// A repeated first step does not advance the match.
	cepExec(t, kb, "CREATE (:E0 {k: 'a'})")
	cepExec(t, kb, "CREATE (:E0 {k: 'a'})")
	drain(t, m)
	if len(cepAlerts(t, kb)) != 0 {
		t.Fatal("E0,E0 completed a sequence that needs E0,E1")
	}
	cepExec(t, kb, "CREATE (:E1 {k: 'a'})")
	drain(t, m)
	if len(cepAlerts(t, kb)) != 1 {
		t.Fatal("sequence did not complete after the missing step arrived")
	}
}

func TestCEPSequenceWindowExpiry(t *testing.T) {
	kb, clock, m := newCEPKB(t)
	if err := m.Install(seq2("pair", 5*time.Minute)); err != nil {
		t.Fatal(err)
	}
	cepExec(t, kb, "CREATE (:E0 {k: 'a'})")
	clock.Advance(6 * time.Minute)
	// The window closed before step 1: the stale partial is evicted on
	// contact, and a non-opening step cannot reopen it.
	cepExec(t, kb, "CREATE (:E1 {k: 'a'})")
	if m.Depth() != 0 {
		t.Fatalf("depth after late step = %d, want 0", m.Depth())
	}
	if m.m.expired.Value() != 1 {
		t.Fatalf("expired = %d, want 1", m.m.expired.Value())
	}
	drain(t, m)
	if len(cepAlerts(t, kb)) != 0 {
		t.Fatal("expired sequence produced an alert")
	}

	// A fresh opening step after expiry starts a new match.
	cepExec(t, kb, "CREATE (:E0 {k: 'a'})")
	clock.Advance(6 * time.Minute)
	cepExec(t, kb, "CREATE (:E0 {k: 'a'})") // evicts the stale one, reopens
	if m.Depth() != 1 {
		t.Fatalf("depth after reopen = %d, want 1", m.Depth())
	}
	if m.m.expired.Value() != 2 {
		t.Fatalf("expired = %d, want 2", m.m.expired.Value())
	}
	cepExec(t, kb, "CREATE (:E1 {k: 'a'})")
	drain(t, m)
	if len(cepAlerts(t, kb)) != 1 {
		t.Fatal("reopened sequence did not complete")
	}
}

func TestCEPSequenceDrainEvictsExpired(t *testing.T) {
	kb, clock, m := newCEPKB(t)
	if err := m.Install(seq2("pair", 5*time.Minute)); err != nil {
		t.Fatal(err)
	}
	cepExec(t, kb, "CREATE (:E0 {k: 'a'})")
	clock.Advance(10 * time.Minute)
	// No further event touches the key: the drain reaps the stale partial.
	if n := drain(t, m); n != 1 {
		t.Fatalf("drained %d, want 1 eviction", n)
	}
	if m.Depth() != 0 || m.m.expired.Value() != 1 {
		t.Fatalf("depth = %d expired = %d, want 0/1", m.Depth(), m.m.expired.Value())
	}
	if len(cepAlerts(t, kb)) != 0 {
		t.Fatal("evicted partial produced an alert")
	}
}

func TestCEPAndAnyOrder(t *testing.T) {
	kb, _, m := newCEPKB(t)
	err := m.Install(Rule{
		Name: "conj", Hub: "H", Op: All, Window: 5 * time.Minute,
		Steps: []Step{
			{Event: trigger.Event{Kind: trigger.CreateNode, Label: "A0"}, Key: "NEW.k"},
			{Event: trigger.Event{Kind: trigger.CreateNode, Label: "A1"}, Key: "NEW.k"},
			{Event: trigger.Event{Kind: trigger.CreateNode, Label: "A2"}, Key: "NEW.k"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cepExec(t, kb, "CREATE (:A2 {k: 'a'})")
	cepExec(t, kb, "CREATE (:A0 {k: 'a'})")
	cepExec(t, kb, "CREATE (:A0 {k: 'a'})") // duplicate: already-set bit
	drain(t, m)
	if len(cepAlerts(t, kb)) != 0 {
		t.Fatal("conjunction completed without all steps")
	}
	cepExec(t, kb, "CREATE (:A1 {k: 'a'})")
	if n := drain(t, m); n != 1 {
		t.Fatalf("drained %d, want 1", n)
	}
	alerts := cepAlerts(t, kb)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	if n, _ := alerts[0].Props["matches"].AsInt(); n != 3 {
		t.Fatalf("matches = %v, want 3", alerts[0].Props["matches"])
	}
}

func TestCEPCountSlidingWindow(t *testing.T) {
	kb, clock, m := newCEPKB(t)
	err := m.Install(Rule{
		Name: "velocity", Hub: "H", Op: Count, Threshold: 3, Window: 5 * time.Minute,
		Steps: []Step{
			{Event: trigger.Event{Kind: trigger.CreateNode, Label: "Txn"}, Key: "NEW.account"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cepExec(t, kb, "CREATE (:Txn {account: 'acct-1'})")
	clock.Advance(time.Minute)
	cepExec(t, kb, "CREATE (:Txn {account: 'acct-1'})")
	drain(t, m)
	if len(cepAlerts(t, kb)) != 0 {
		t.Fatal("count fired below threshold")
	}
	clock.Advance(time.Minute)
	cepExec(t, kb, "CREATE (:Txn {account: 'acct-1'})")
	if n := drain(t, m); n != 1 {
		t.Fatalf("drained %d, want 1", n)
	}
	alerts := cepAlerts(t, kb)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	if n, _ := alerts[0].Props["matches"].AsInt(); n != 3 {
		t.Fatalf("matches = %v, want 3", alerts[0].Props["matches"])
	}

	// Occurrences spaced wider than the window slide past each other and
	// never accumulate to the threshold.
	clock.Advance(10 * time.Minute)
	cepExec(t, kb, "CREATE (:Txn {account: 'acct-1'})")
	clock.Advance(6 * time.Minute)
	cepExec(t, kb, "CREATE (:Txn {account: 'acct-1'})")
	if m.m.evictions.Value() == 0 {
		t.Fatal("sliding the window evicted no timestamps")
	}
	if m.Depth() != 1 {
		t.Fatalf("depth = %d, want 1 (window slid, partial kept)", m.Depth())
	}
	drain(t, m)
	if len(cepAlerts(t, kb)) != 1 {
		t.Fatal("spaced occurrences crossed the threshold")
	}
}

func TestCEPCountDrainSlidesThenEvicts(t *testing.T) {
	kb, clock, m := newCEPKB(t)
	err := m.Install(Rule{
		Name: "velocity", Hub: "H", Op: Count, Threshold: 3, Window: 5 * time.Minute,
		Steps: []Step{
			{Event: trigger.Event{Kind: trigger.CreateNode, Label: "Txn"}, Key: "NEW.account"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cepExec(t, kb, "CREATE (:Txn {account: 'a'})")
	clock.Advance(4 * time.Minute)
	cepExec(t, kb, "CREATE (:Txn {account: 'a'})")
	clock.Advance(2 * time.Minute)
	// Past the first occurrence's deadline; the second is still in-window,
	// so the drain slides rather than evicts.
	if n := drain(t, m); n != 0 {
		t.Fatalf("drained %d, want 0 (slide keeps the partial)", n)
	}
	if m.Depth() != 1 {
		t.Fatalf("depth after slide = %d, want 1", m.Depth())
	}
	clock.Advance(10 * time.Minute)
	// Now every occurrence is stale: the drain evicts.
	if n := drain(t, m); n != 1 {
		t.Fatalf("drained %d, want 1 eviction", n)
	}
	if m.Depth() != 0 {
		t.Fatalf("depth after eviction = %d, want 0", m.Depth())
	}
	if len(cepAlerts(t, kb)) != 0 {
		t.Fatal("sliding count produced an alert below threshold")
	}
}

// absenceRule matches a Txn with no Confirmation inside the window.
func absenceRule(window time.Duration) Rule {
	return Rule{
		Name: "unconfirmed", Hub: "H", Op: Sequence, Window: window,
		Steps: []Step{
			{Event: trigger.Event{Kind: trigger.CreateNode, Label: "Txn"}, Key: "NEW.k"},
			{Event: trigger.Event{Kind: trigger.CreateNode, Label: "Confirmation"}, Key: "NEW.k", Negated: true},
		},
	}
}

func TestCEPAbsenceDetected(t *testing.T) {
	kb, clock, m := newCEPKB(t)
	if err := m.Install(absenceRule(5 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	cepExec(t, kb, "CREATE (:Txn {k: 'a'})")
	drain(t, m)
	if len(cepAlerts(t, kb)) != 0 {
		t.Fatal("absence fired before its window closed")
	}
	clock.Advance(6 * time.Minute)
	// The window closed without a Confirmation: that IS the composite event.
	if n := drain(t, m); n != 1 {
		t.Fatalf("drained %d, want 1", n)
	}
	alerts := cepAlerts(t, kb)
	if len(alerts) != 1 || alerts[0].Rule != "unconfirmed" {
		t.Fatalf("alerts = %+v, want one from unconfirmed", alerts)
	}
	// Completion is stamped at the deadline, not discovery time.
	if at, ok := alerts[0].Props["completedAt"].AsDateTime(); !ok || !at.Equal(cepT0.Add(5*time.Minute)) {
		t.Fatalf("completedAt = %v, want deadline %v", alerts[0].Props["completedAt"], cepT0.Add(5*time.Minute))
	}
}

func TestCEPAbsenceKilledByOccurrence(t *testing.T) {
	kb, clock, m := newCEPKB(t)
	if err := m.Install(absenceRule(5 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	cepExec(t, kb, "CREATE (:Txn {k: 'a'})")
	clock.Advance(time.Minute)
	cepExec(t, kb, "CREATE (:Confirmation {k: 'a'})")
	if m.Depth() != 0 {
		t.Fatalf("depth after kill = %d, want 0", m.Depth())
	}
	if m.m.killed.Value() != 1 {
		t.Fatalf("killed = %d, want 1", m.m.killed.Value())
	}
	clock.Advance(10 * time.Minute)
	drain(t, m)
	if len(cepAlerts(t, kb)) != 0 {
		t.Fatal("killed absence still produced an alert")
	}
	// A Confirmation with no armed match is inert.
	cepExec(t, kb, "CREATE (:Confirmation {k: 'b'})")
	if m.Depth() != 0 {
		t.Fatal("negated step opened a partial")
	}
}

func TestCEPAbsenceLateDiscoveryStillCompletes(t *testing.T) {
	kb, clock, m := newCEPKB(t)
	if err := m.Install(absenceRule(5 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	cepExec(t, kb, "CREATE (:Txn {k: 'a'})")
	clock.Advance(10 * time.Minute)
	// The Confirmation arrives after the window closed: too late to kill.
	cepExec(t, kb, "CREATE (:Confirmation {k: 'a'})")
	drain(t, m)
	alerts := cepAlerts(t, kb)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1 (absence held for the full window)", len(alerts))
	}
}

func TestCEPKeyIsolation(t *testing.T) {
	kb, _, m := newCEPKB(t)
	if err := m.Install(seq2("pair", 5*time.Minute)); err != nil {
		t.Fatal(err)
	}
	cepExec(t, kb, "CREATE (:E0 {k: 'a'})")
	cepExec(t, kb, "CREATE (:E0 {k: 'b'})")
	if m.Depth() != 2 {
		t.Fatalf("depth = %d, want 2 (one partial per key)", m.Depth())
	}
	cepExec(t, kb, "CREATE (:E1 {k: 'b'})")
	cepExec(t, kb, "CREATE (:E1 {k: 'a'})")
	drain(t, m)
	alerts := cepAlerts(t, kb)
	if len(alerts) != 2 {
		t.Fatalf("alerts = %d, want 2", len(alerts))
	}
	keys := map[string]int{}
	for _, a := range alerts {
		k, _ := a.Props["key"].AsString()
		keys[k]++
	}
	if keys["a"] != 1 || keys["b"] != 1 {
		t.Fatalf("alert keys = %v, want one per key", keys)
	}
}

func TestCEPGuardFilters(t *testing.T) {
	kb, _, m := newCEPKB(t)
	err := m.Install(Rule{
		Name: "big-pair", Hub: "H", Op: Sequence, Window: 5 * time.Minute,
		Steps: []Step{
			{Event: trigger.Event{Kind: trigger.CreateNode, Label: "Txn"}, Guard: "NEW.amount > 900", Key: "NEW.k"},
			{Event: trigger.Event{Kind: trigger.CreateNode, Label: "Txn"}, Guard: "NEW.amount > 900", Key: "NEW.k"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cepExec(t, kb, "CREATE (:Txn {k: 'a', amount: 50})")
	if m.Depth() != 0 {
		t.Fatal("guarded step fired on a failing guard")
	}
	cepExec(t, kb, "CREATE (:Txn {k: 'a', amount: 950})")
	cepExec(t, kb, "CREATE (:Txn {k: 'a', amount: 100})")
	cepExec(t, kb, "CREATE (:Txn {k: 'a', amount: 1200})")
	drain(t, m)
	if len(cepAlerts(t, kb)) != 1 {
		t.Fatalf("alerts = %d, want 1 (only >900 transactions count)", len(cepAlerts(t, kb)))
	}
}

func TestCEPAlertQueryBindings(t *testing.T) {
	kb, _, m := newCEPKB(t)
	r := seq2("pair", 5*time.Minute)
	r.Alert = "RETURN KEY AS k, MATCHES AS hits, RULE AS r, LAST.v AS lastv"
	if err := m.Install(r); err != nil {
		t.Fatal(err)
	}
	cepExec(t, kb, "CREATE (:E0 {k: 'a', v: 1})")
	cepExec(t, kb, "CREATE (:E1 {k: 'a', v: 2})")
	drain(t, m)
	alerts := cepAlerts(t, kb)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	p := alerts[0].Props
	if k, _ := p["k"].AsString(); k != "a" {
		t.Fatalf("k = %v", p["k"])
	}
	if n, _ := p["hits"].AsInt(); n != 2 {
		t.Fatalf("hits = %v", p["hits"])
	}
	if r, _ := p["r"].AsString(); r != "pair" {
		t.Fatalf("r = %v", p["r"])
	}
	if v, _ := p["lastv"].AsInt(); v != 2 {
		t.Fatalf("lastv = %v, want the closing occurrence's NEW.v", p["lastv"])
	}
}

func TestCEPDropOrphansPartials(t *testing.T) {
	kb, _, m := newCEPKB(t)
	if err := m.Install(seq2("pair", 5*time.Minute)); err != nil {
		t.Fatal(err)
	}
	cepExec(t, kb, "CREATE (:E0 {k: 'a'})")
	if err := m.Drop("pair"); err != nil {
		t.Fatal(err)
	}
	if m.Has("pair") {
		t.Fatal("rule still installed after Drop")
	}
	for _, info := range kb.Rules() {
		if info.Composite != "" {
			t.Fatalf("step rule %s survived Drop", info.Name)
		}
	}
	// The stranded partial is discarded (not alerted) by the next drain.
	if n := drain(t, m); n != 1 {
		t.Fatalf("drained %d, want 1 orphan", n)
	}
	if m.Depth() != 0 || m.m.orphaned.Value() != 1 {
		t.Fatalf("depth = %d orphaned = %d, want 0/1", m.Depth(), m.m.orphaned.Value())
	}
	if len(cepAlerts(t, kb)) != 0 {
		t.Fatal("orphaned partial produced an alert")
	}
	if err := m.Drop("pair"); !errors.Is(err, ErrRuleNotFound) {
		t.Fatalf("double Drop = %v, want ErrRuleNotFound", err)
	}
}

func TestCEPInstallValidation(t *testing.T) {
	_, _, m := newCEPKB(t)
	if err := m.Install(seq2("pair", 5*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := m.Install(seq2("pair", time.Minute)); !errors.Is(err, ErrRuleExists) {
		t.Fatalf("duplicate install = %v, want ErrRuleExists", err)
	}
	step := Step{Event: trigger.Event{Kind: trigger.CreateNode, Label: "X"}}
	bad := []Rule{
		{Name: "", Op: Sequence, Window: time.Minute, Steps: []Step{step}},
		{Name: "w", Op: Sequence, Window: 0, Steps: []Step{step}},
		{Name: "s", Op: Sequence, Window: time.Minute},
		{Name: "n", Op: Sequence, Window: time.Minute,
			Steps: []Step{{Event: step.Event, Negated: true}, step}}, // NOT not final
		{Name: "o", Op: Sequence, Window: time.Minute,
			Steps: []Step{{Event: step.Event, Negated: true}}}, // no positive step
		{Name: "a1", Op: All, Window: time.Minute, Steps: []Step{step}},
		{Name: "an", Op: All, Window: time.Minute,
			Steps: []Step{step, {Event: step.Event, Negated: true}}},
		{Name: "c2", Op: Count, Window: time.Minute, Steps: []Step{step, step}},
		{Name: "c0", Op: Count, Window: time.Minute, Steps: []Step{step}, Threshold: 0},
		{Name: "t", Op: Sequence, Window: time.Minute, Steps: []Step{step, step}, Threshold: 2},
		{Name: "g", Op: Sequence, Window: time.Minute,
			Steps: []Step{{Event: step.Event, Guard: "NEW.v >"}}}, // bad guard
		{Name: "k", Op: Sequence, Window: time.Minute,
			Steps: []Step{{Event: step.Event, Key: "NEW."}}}, // bad key
		{Name: "q", Op: Sequence, Window: time.Minute, Steps: []Step{step},
			Alert: "RETURN ("}, // bad alert query
	}
	for _, r := range bad {
		if err := m.Install(r); err == nil {
			t.Errorf("Install(%+v) should fail", r)
		}
	}
}

func TestCEPEnableTwiceRefused(t *testing.T) {
	kb, _, _ := newCEPKB(t)
	if _, err := Enable(kb, Options{}); !errors.Is(err, ErrEnabled) {
		t.Fatalf("second Enable = %v, want ErrEnabled", err)
	}
}

func TestCEPFollowerRefused(t *testing.T) {
	kb := core.NewFollower(core.Config{Clock: periodic.NewManualClock(cepT0)})
	if _, err := Enable(kb, Options{}); !errors.Is(err, core.ErrFollower) {
		t.Fatalf("Enable on follower = %v, want ErrFollower", err)
	}
}

func TestCEPSharded(t *testing.T) {
	kb, err := core.NewSharded(core.Config{Clock: periodic.NewManualClock(cepT0)},
		[]core.HubShard{
			{Hub: "P", Description: "payments", Labels: []string{"Txn", "Confirmation", "Account"}},
			{Hub: "M", Description: "merchants", Labels: []string{"Merchant"}},
		})
	if err != nil {
		t.Fatal(err)
	}
	m, err := EnableSharded(kb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = m.Install(Rule{
		Name: "pair", Hub: "P", Op: Sequence, Window: 5 * time.Minute,
		Steps: []Step{
			{Event: trigger.Event{Kind: trigger.CreateNode, Label: "Txn"}, Key: "NEW.k"},
			{Event: trigger.Event{Kind: trigger.CreateNode, Label: "Confirmation"}, Key: "NEW.k"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := kb.ExecuteInHub("P", "CREATE (:Txn {k: 'a'})", nil); err != nil {
		t.Fatal(err)
	}
	// Writes to the other hub's shard never touch P's partial state.
	if _, _, err := kb.ExecuteInHub("M", "CREATE (:Merchant {k: 'a'})", nil); err != nil {
		t.Fatal(err)
	}
	if m.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", m.Depth())
	}
	if _, _, err := kb.ExecuteInHub("P", "CREATE (:Confirmation {k: 'a'})", nil); err != nil {
		t.Fatal(err)
	}
	if n := drain(t, m); n != 1 {
		t.Fatalf("drained %d, want 1", n)
	}
	shard, _ := kb.ShardOf("P")
	res, err := kb.QueryInHub("P", "MATCH (a:Alert) RETURN count(a) AS n", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Value(); func() int64 { n, _ := v.AsInt(); return n }() != 1 {
		t.Fatalf("alerts in shard %d: %v, want 1", shard, res.Rows)
	}
	if m.Depth() != 0 {
		t.Fatalf("depth after drain = %d, want 0", m.Depth())
	}
}

func TestCEPShardedFollowerRefused(t *testing.T) {
	kb, err := core.NewSharded(core.Config{Clock: periodic.NewManualClock(cepT0)},
		[]core.HubShard{
			{Hub: "P", Description: "payments", Labels: []string{"Txn"}},
			{Hub: "M", Description: "merchants", Labels: []string{"Merchant"}},
		})
	if err != nil {
		t.Fatal(err)
	}
	kb.SetFollowerMode(true)
	if _, err := EnableSharded(kb, Options{}); !errors.Is(err, core.ErrFollower) {
		t.Fatalf("EnableSharded on follower = %v, want ErrFollower", err)
	}
}

func TestCEPBackgroundDrainLoop(t *testing.T) {
	kb, _, m := newCEPKB(t)
	if err := m.Install(seq2("pair", 5*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	if err := m.Start(10 * time.Millisecond); err == nil {
		t.Fatal("double Start should fail")
	}
	cepExec(t, kb, "CREATE (:E0 {k: 'a'})")
	cepExec(t, kb, "CREATE (:E1 {k: 'a'})")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(cepAlerts(t, kb)) == 1 && m.Depth() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background drain never materialized the alert (depth %d)", m.Depth())
		}
		time.Sleep(time.Millisecond)
	}
	m.Stop()
	m.Stop() // idempotent
}

func TestCEPConcurrentWritersAndDrainRace(t *testing.T) {
	kb, _, m := newCEPKB(t)
	// Threshold-1 count: every occurrence is its own completed match, so
	// the expected alert total is exact even with the drain racing writers.
	err := m.Install(Rule{
		Name: "each", Hub: "H", Op: Count, Threshold: 1, Window: time.Hour,
		Steps: []Step{
			{Event: trigger.Event{Kind: trigger.CreateNode, Label: "Txn"}, Key: "NEW.k"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	const writers, per = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q := fmt.Sprintf("CREATE (:Txn {k: 'w%d-%d'})", w, i)
				if _, err := kb.Execute(q, nil); err != nil {
					t.Errorf("execute: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if len(cepAlerts(t, kb)) == writers*per && m.Depth() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alerts = %d depth = %d, want %d/0",
				len(cepAlerts(t, kb)), m.Depth(), writers*per)
		}
		time.Sleep(time.Millisecond)
	}
	if got := m.m.alerts.Value(); got != writers*per {
		t.Fatalf("alert counter = %d, want %d", got, writers*per)
	}
}

func TestCEPRulesListingAndInstallText(t *testing.T) {
	_, _, m := newCEPKB(t)
	r, err := m.InstallText("CREATE TRIGGER velocity ON HUB P\n" +
		"WHEN COUNT(CREATE NODE Txn IF NEW.flagged BY NEW.account) >= 3 WITHIN 5m")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "velocity" || r.Op != Count || r.Threshold != 3 {
		t.Fatalf("parsed rule = %+v", r)
	}
	if err := m.Install(seq2("pair", time.Minute)); err != nil {
		t.Fatal(err)
	}
	infos := m.Rules()
	if len(infos) != 2 || infos[0].Name != "velocity" || infos[1].Name != "pair" {
		t.Fatalf("Rules() = %+v, want installation order", infos)
	}
	if infos[0].Text == "" {
		t.Fatal("RuleInfo.Text empty")
	}
	if _, err := ParseRule(infos[0].Text); err != nil {
		t.Fatalf("canonical text does not re-parse: %v", err)
	}
}

func TestCEPPartialsInvisibleToRules(t *testing.T) {
	kb, _, m := newCEPKB(t)
	if err := m.Install(seq2("pair", 5*time.Minute)); err != nil {
		t.Fatal(err)
	}
	// A rule watching CEPPartial creations must never fire: the automaton's
	// bookkeeping nodes are skip-labeled, invisible to rule matching.
	err := kb.InstallRule(trigger.Rule{
		Name:  "watch-partial",
		Hub:   "H",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: PartialLabel},
		Alert: "RETURN 1 AS one",
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := cepExec(t, kb, "CREATE (:E0 {k: 'a'})")
	if m.Depth() != 1 {
		t.Fatalf("depth = %d, want 1 (partial staged)", m.Depth())
	}
	if rep.AlertNodes != 0 {
		t.Fatalf("watch-partial produced %d alerts; partials must be invisible", rep.AlertNodes)
	}
	if len(cepAlerts(t, kb)) != 0 {
		t.Fatal("partial churn reached rule matching")
	}
}
