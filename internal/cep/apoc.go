package cep

// APOC export of composite rules: the same partial-match design this
// package runs natively, rendered as Neo4j triggers. Each step atom
// becomes one CALL apoc.trigger.install statement that maintains
// :CEPPartial nodes with MERGE/CASE logic, and a final
// apoc.periodic.repeat job plays the drain: it materializes alerts from
// completed partials and deletes expired ones. The emitted statements are
// a faithful porting aid for the operator semantics documented in
// DESIGN.md §14 — review window arithmetic and alert payloads before
// production use, as the paper advises for its own Fig. 6/7 translation.

import (
	"fmt"
	"strings"

	"repro/internal/trigger"
)

// apocSources mirrors the trigger package's Fig. 6 sources: the APOC
// transaction-data parameter each event kind UNWINDs.
var apocSources = map[trigger.EventKind]string{
	trigger.CreateNode:         "$createdNodes",
	trigger.DeleteNode:         "$deletedNodes",
	trigger.CreateRelationship: "$createdRelationships",
	trigger.DeleteRelationship: "$deletedRelationships",
}

// TranslateAPOC renders a composite rule as apoc.trigger.install
// statements — one per step atom — plus an apoc.periodic.repeat drain job.
// dbName is the target database ("neo4j" by convention).
func TranslateAPOC(r Rule, dbName string) ([]string, error) {
	cr, err := compile(r)
	if err != nil {
		return nil, err
	}
	if dbName == "" {
		dbName = "neo4j"
	}
	out := make([]string, 0, len(cr.Steps)+1)
	for i, st := range cr.Steps {
		stmt, err := apocStep(cr, i, st)
		if err != nil {
			return nil, err
		}
		out = append(out, fmt.Sprintf(
			"CALL apoc.trigger.install('%s', '%s',\n%s,\n{phase: 'before'});",
			dbName, stepRuleName(cr.Name, i), apocQuote(stmt)))
	}
	out = append(out, apocDrain(cr))
	return out, nil
}

// apocStep renders the trigger statement of one step atom.
func apocStep(cr *compiledRule, i int, st Step) (string, error) {
	source, ok := apocSources[st.Event.Kind]
	if !ok {
		return "", fmt.Errorf("cep: rule %s step %d: APOC export covers creation and deletion events, not %s",
			cr.Name, i, st.Event.Kind)
	}
	conds := []string{}
	switch st.Event.Kind {
	case trigger.CreateNode, trigger.DeleteNode:
		if st.Event.Label != "" {
			conds = append(conds, fmt.Sprintf("'%s' IN labels(NEW)", st.Event.Label))
		}
	default:
		if st.Event.Label != "" {
			conds = append(conds, fmt.Sprintf("type(NEW) = '%s'", st.Event.Label))
		}
	}
	if st.Guard != "" {
		conds = append(conds, "("+collapseSpace(st.Guard)+")")
	}
	where := ""
	if len(conds) > 0 {
		where = "\nWHERE " + strings.Join(conds, " AND ")
	}
	key := "''"
	if st.Key != "" {
		key = "toString(" + collapseSpace(st.Key) + ")"
	}
	winMs := cr.Window.Milliseconds()

	var body string
	final := len(cr.Steps) - 1
	switch {
	case cr.Op == Sequence && st.Negated:
		// Absence atom: an occurrence kills an armed partial in-window.
		body = fmt.Sprintf(
			"MATCH (p:CEPPartial {rule: '%s', key: ck})\nWHERE p.state = %d AND NOT p.done AND timestamp() < p.deadline\nDETACH DELETE p",
			cr.Name, final)
	case cr.Op == Sequence && i == 0:
		onMatch := "p.updatedAt = timestamp()"
		if final == 0 {
			// Degenerate single-step sequence completes on open.
			body = fmt.Sprintf(
				"MERGE (p:CEPPartial {rule: '%s', key: ck})\nON CREATE SET p.state = 1, p.done = true, p.startedAt = timestamp(), p.doneAt = timestamp(), p.deadline = timestamp() + %d",
				cr.Name, winMs)
			break
		}
		body = fmt.Sprintf(
			"MERGE (p:CEPPartial {rule: '%s', key: ck})\nON CREATE SET p.state = 1, p.done = false, p.startedAt = timestamp(), p.deadline = timestamp() + %d\nON MATCH SET %s",
			cr.Name, winMs, onMatch)
	case cr.Op == Sequence:
		set := fmt.Sprintf("p.state = %d, p.updatedAt = timestamp()", i+1)
		if i == final && !cr.Steps[final].Negated {
			set += ", p.done = true, p.doneAt = timestamp()"
		}
		body = fmt.Sprintf(
			"MATCH (p:CEPPartial {rule: '%s', key: ck})\nWHERE p.state = %d AND NOT p.done AND timestamp() < p.deadline\nSET %s",
			cr.Name, i, set)
	case cr.Op == All:
		bit := int64(1) << i
		full := int64(1)<<len(cr.Steps) - 1
		body = fmt.Sprintf(
			"MERGE (p:CEPPartial {rule: '%s', key: ck})\nON CREATE SET p.state = %d, p.done = %t, p.startedAt = timestamp(), p.deadline = timestamp() + %d\nON MATCH SET p.state = CASE WHEN NOT p.done AND timestamp() < p.deadline AND p.state / %d %% 2 = 0 THEN p.state + %d ELSE p.state END,\n  p.done = p.done OR p.state = %d, p.doneAt = CASE WHEN p.state = %d AND p.doneAt IS NULL THEN timestamp() ELSE p.doneAt END",
			cr.Name, bit, bit == full, winMs, bit, bit, full, full)
	default: // Count
		body = fmt.Sprintf(
			"MERGE (p:CEPPartial {rule: '%s', key: ck})\nON CREATE SET p.times = [timestamp()], p.done = %t, p.startedAt = timestamp(), p.deadline = timestamp() + %d\nON MATCH SET p.times = [t IN coalesce(p.times, []) WHERE t >= timestamp() - %d] + timestamp(),\n  p.done = p.done OR size([t IN coalesce(p.times, []) WHERE t >= timestamp() - %d]) + 1 >= %d,\n  p.doneAt = CASE WHEN p.done AND p.doneAt IS NULL THEN timestamp() ELSE p.doneAt END",
			cr.Name, cr.Threshold <= 1, winMs, winMs, winMs, cr.Threshold)
	}

	return fmt.Sprintf("UNWIND %s AS cNode\nWITH cNode AS NEW%s\nWITH NEW, %s AS ck\n%s",
		source, where, key, body), nil
}

// apocDrain renders the periodic drain: materialize alerts from completed
// partials, evict expired ones.
func apocDrain(cr *compiledRule) string {
	alertLabel := cr.AlertLabel
	if alertLabel == "" {
		alertLabel = trigger.DefaultAlertLabel
	}
	stmt := fmt.Sprintf(
		"MATCH (p:CEPPartial {rule: '%s'})\nWITH p, p.done OR (p.state = %d AND timestamp() >= p.deadline) AS completed\nFOREACH (_ IN CASE WHEN completed THEN [1] ELSE [] END |\n  CREATE (:%s {rule: '%s', hub: '%s', dateTime: datetime(), key: p.key}))\nWITH p, completed\nWHERE completed OR timestamp() >= p.deadline\nDETACH DELETE p",
		cr.Name, armedState(cr), alertLabel, cr.Name, cr.Hub)
	return fmt.Sprintf("CALL apoc.periodic.repeat('%s', %s, 1);",
		"cep-drain:"+cr.Name, apocQuote(stmt))
}

// armedState is the state value at which an absence rule waits for its
// deadline; rules without a final NOT never reach it via the drain
// (completion is recorded by the step triggers), so any sentinel works.
func armedState(cr *compiledRule) int {
	if cr.Op == Sequence && cr.Steps[len(cr.Steps)-1].Negated {
		return len(cr.Steps) - 1
	}
	return -1
}

// TranslateAllAPOC renders every installed composite rule; rules whose
// steps the Fig. 6 scheme cannot cover are skipped and reported.
func (m *Manager) TranslateAllAPOC(dbName string) (translated []string, skipped []string) {
	for _, info := range m.Rules() {
		out, err := TranslateAPOC(info.Rule, dbName)
		if err != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %v", info.Name, err))
			continue
		}
		translated = append(translated, out...)
	}
	return translated, skipped
}

// apocQuote renders s as a double-quoted Cypher string literal.
func apocQuote(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return `"` + s + `"`
}

// collapseSpace normalizes embedded Cypher whitespace.
func collapseSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
