package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestPlanSmoke runs the prepared-pipeline comparison at smoke scale and
// checks the scale-independent invariants: both arms finish, each event's
// passing rule runs exactly one alert, the cache converges to one plan per
// rule with hits, and the report renders.
func TestPlanSmoke(t *testing.T) {
	pts, err := RunPlan([]int{8}, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1", len(pts))
	}
	p := pts[0]
	if p.Cold <= 0 || p.Cached <= 0 {
		t.Fatalf("non-positive timings: %+v", p)
	}
	// 50 events over 8 rules: each event matches exactly one rule, so the
	// cache sees 50 alert lookups across at most 8 distinct queries.
	if total := p.Cache.Hits + p.Cache.Misses; total != 50 {
		t.Errorf("cache lookups = %d, want 50", total)
	}
	if p.Cache.Size > 8 {
		t.Errorf("cache size = %d, want <= 8", p.Cache.Size)
	}
	if p.Cache.Hits == 0 {
		t.Error("no cache hits across repeated events")
	}

	var buf bytes.Buffer
	WritePlan(&buf, pts)
	if !strings.Contains(buf.String(), "plan cache") {
		t.Errorf("report lacks cache line:\n%s", buf.String())
	}
}
