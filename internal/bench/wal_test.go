package bench

import (
	"strings"
	"testing"
)

func TestRunWALOverheadSmall(t *testing.T) {
	cfg := Config{PatientCounts: []int{40}, Regions: 3, Days: 2, Seed: 1, Batch: 4}
	pts, err := RunWALOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(walModes) {
		t.Fatalf("points = %d, want %d", len(pts), len(walModes))
	}
	if pts[0].Mode != "memory" || pts[0].Overhead != 1.0 {
		t.Errorf("baseline point: %+v", pts[0])
	}
	for _, p := range pts {
		if p.Elapsed <= 0 || p.PerTx <= 0 {
			t.Errorf("non-positive timing: %+v", p)
		}
		if p.Overhead <= 0 {
			t.Errorf("missing overhead ratio: %+v", p)
		}
	}
	var b strings.Builder
	WriteWAL(&b, pts)
	out := b.String()
	for _, want := range []string{"memory", "wal-none", "wal-interval", "wal-always", "overhead"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
