package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestReplicaSmoke runs the replica series at smoke scale and checks the
// invariants that hold at any scale: every point's readers and the writer
// make progress, followers stay close to the leader, and the renderer
// emits the expected columns.
func TestReplicaSmoke(t *testing.T) {
	cfg := SmokeReplicaConfig()
	pts, err := RunReplicaScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(cfg.Followers) {
		t.Fatalf("got %d points, want %d", len(pts), len(cfg.Followers))
	}
	for i, p := range pts {
		if p.Followers != cfg.Followers[i] {
			t.Errorf("point %d followers = %d, want %d", i, p.Followers, cfg.Followers[i])
		}
		if p.Reads <= 0 {
			t.Errorf("k=%d: readers made no reads", p.Followers)
		}
		if p.WriterTxs <= 0 {
			t.Errorf("k=%d: writer made no progress", p.Followers)
		}
		serving := 1
		if p.Followers > 0 {
			serving = p.Followers
		}
		if want := serving * cfg.ReadersPerInstance; p.Readers != want {
			t.Errorf("k=%d: %d readers, want %d", p.Followers, p.Readers, want)
		}
		if p.CatchUpPct <= 0 || p.CatchUpPct > 100 {
			t.Errorf("k=%d: catch-up %.1f%% out of range", p.Followers, p.CatchUpPct)
		}
	}

	var buf bytes.Buffer
	WriteReplica(&buf, pts)
	for _, col := range []string{"reads/sec", "followers", "lag-recs", "caught-up"} {
		if !strings.Contains(buf.String(), col) {
			t.Errorf("WriteReplica output missing %q", col)
		}
	}
}
