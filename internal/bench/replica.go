package bench

// Replica series: aggregate read throughput versus replica count under
// sustained write load.
//
// One durable leader (Fsync: interval — the realistic server setting) takes
// a continuous stream of single-node write transactions while serving the
// WAL-shipping endpoints over HTTP. For each point, k followers bootstrap
// from the leader's snapshot and stream its tail; a fixed pool of reader
// goroutines per serving instance runs count queries against the local
// store — against the leader when k = 0 (the baseline every replica
// deployment starts from), against the followers only when k > 0 (followers
// take all snapshot reads, the leader keeps writing). Because each follower
// brings its own MVCC snapshot, aggregate read QPS should scale roughly
// linearly with k while the write rate stays flat, bounded only by
// replication lag — which the point also reports.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/periodic"
	"repro/internal/replica"
	"repro/internal/value"
	"repro/internal/wal"
)

// ReplicaConfig parameterizes the replica series.
type ReplicaConfig struct {
	// Nodes is the number of Person nodes seeded before followers attach.
	Nodes int
	// Followers is the sweep over follower counts (0 = leader-only baseline).
	Followers []int
	// ReadersPerInstance is the reader-goroutine pool attached to each
	// serving instance (leader at k = 0, each follower at k > 0).
	ReadersPerInstance int
	// Window is how long each point measures.
	Window time.Duration
	Seed   int64
}

func (c ReplicaConfig) withDefaults() ReplicaConfig {
	if c.Nodes <= 0 {
		c.Nodes = 2000
	}
	if len(c.Followers) == 0 {
		c.Followers = []int{0, 1, 2}
	}
	if c.ReadersPerInstance <= 0 {
		c.ReadersPerInstance = 4
	}
	if c.Window <= 0 {
		c.Window = 400 * time.Millisecond
	}
	return c
}

// SmokeReplicaConfig shrinks the sweep for CI: it proves a follower can
// bootstrap, stream and serve reads under write load, not absolute numbers.
func SmokeReplicaConfig() ReplicaConfig {
	return ReplicaConfig{
		Nodes:              200,
		Followers:          []int{0, 1},
		ReadersPerInstance: 2,
		Window:             80 * time.Millisecond,
	}
}

// ReplicaPoint is one follower-count measurement.
type ReplicaPoint struct {
	Followers     int
	Readers       int // total reader goroutines across serving instances
	Reads         int64
	ReadsPerSec   float64
	WriterTxs     int64   // leader write transactions inside the window
	LagRecords    uint64  // worst follower record lag at window end
	LagSeconds    float64 // worst follower staleness at window end
	CatchUpPct    float64 // worst follower applied/leader seq ratio at end
	PerReaderQPS  float64
	SpeedupVsBase float64 // aggregate QPS / the k=0 baseline QPS
}

// RunReplicaScaling measures aggregate read throughput for each follower
// count under an identical sustained write load.
func RunReplicaScaling(cfg ReplicaConfig) ([]ReplicaPoint, error) {
	cfg = cfg.withDefaults()
	var out []ReplicaPoint
	var base float64
	for _, k := range cfg.Followers {
		p, err := runReplicaOnce(cfg, k)
		if err != nil {
			return nil, err
		}
		if k == 0 {
			base = p.ReadsPerSec
		}
		if base > 0 {
			p.SpeedupVsBase = p.ReadsPerSec / base
		}
		out = append(out, p)
	}
	return out, nil
}

func runReplicaOnce(cfg ReplicaConfig, followers int) (ReplicaPoint, error) {
	dir, err := os.MkdirTemp("", "rkm-bench-replica-*")
	if err != nil {
		return ReplicaPoint{}, err
	}
	defer os.RemoveAll(dir)
	leader, _, err := core.OpenDurable(dir,
		core.Config{Clock: periodic.NewManualClock(simStart)},
		wal.Options{Fsync: wal.FsyncInterval, FsyncInterval: 2 * time.Millisecond})
	if err != nil {
		return ReplicaPoint{}, err
	}
	defer leader.Close()
	if err := seedPersons(leader, cfg.Nodes); err != nil {
		return ReplicaPoint{}, err
	}

	// Replication endpoints over loopback HTTP, exactly as rkm-server mounts
	// them.
	ld, err := replica.NewLeader(leader, replica.Options{})
	if err != nil {
		return ReplicaPoint{}, err
	}
	mux := http.NewServeMux()
	ld.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Followers bootstrap before the measured window so the point measures
	// steady-state streaming, not snapshot transfer. In-memory followers:
	// the read path under test is the MVCC store, and a disk mirror would
	// fold follower fsync cost into a read-throughput figure.
	opts := replica.Options{
		PollInterval:      time.Millisecond,
		HeartbeatInterval: 10 * time.Millisecond,
		BatchSize:         512,
	}
	var fols []*replica.Follower
	for i := 0; i < followers; i++ {
		fol, err := replica.OpenFollower("", srv.URL, core.Config{}, opts)
		if err != nil {
			return ReplicaPoint{}, err
		}
		defer fol.Close()
		fol.Start()
		fols = append(fols, fol)
	}

	// Reads go to the followers; only the k = 0 baseline reads the leader.
	serving := []*core.KnowledgeBase{leader}
	if followers > 0 {
		serving = serving[:0]
		for _, fol := range fols {
			serving = append(serving, fol.KB())
		}
	}

	var (
		stop      atomic.Bool
		reads     atomic.Int64
		writerTxs atomic.Int64
		wg        sync.WaitGroup
		errOnce   sync.Once
		firstErr  error
	)
	fail := func(err error) { errOnce.Do(func() { firstErr = err }); stop.Store(true) }

	// The sustained write load: one writer streams admissions on the leader
	// for the whole window, whatever k is.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			err := leader.Store().Update(func(tx *graph.Tx) error {
				_, err := tx.CreateNode([]string{"Admission"},
					map[string]value.Value{"i": value.Int(int64(i))})
				return err
			})
			if err != nil {
				fail(err)
				return
			}
			writerTxs.Add(1)
		}
	}()

	for _, kb := range serving {
		for r := 0; r < cfg.ReadersPerInstance; r++ {
			wg.Add(1)
			go func(kb *core.KnowledgeBase) {
				defer wg.Done()
				n := int64(0)
				for !stop.Load() {
					res, err := kb.Query("MATCH (p:Person) RETURN count(p) AS n", nil)
					if err != nil {
						fail(err)
						return
					}
					if v, ok := res.Value(); ok {
						if got, _ := v.AsInt(); got != int64(cfg.Nodes) {
							fail(fmt.Errorf("reader saw %d Person nodes, want %d", got, cfg.Nodes))
							return
						}
					}
					n++
				}
				reads.Add(n)
			}(kb)
		}
	}

	time.Sleep(cfg.Window)
	stop.Store(true)
	wg.Wait()
	if firstErr != nil {
		return ReplicaPoint{}, firstErr
	}

	p := ReplicaPoint{
		Followers:   followers,
		Readers:     len(serving) * cfg.ReadersPerInstance,
		Reads:       reads.Load(),
		ReadsPerSec: float64(reads.Load()) / cfg.Window.Seconds(),
		WriterTxs:   writerTxs.Load(),
		CatchUpPct:  100,
	}
	if p.Readers > 0 {
		p.PerReaderQPS = p.ReadsPerSec / float64(p.Readers)
	}
	leaderSeq := leader.WAL().LastSeq()
	for _, fol := range fols {
		recs, secs := fol.Lag()
		if recs > p.LagRecords {
			p.LagRecords = recs
		}
		if secs > p.LagSeconds {
			p.LagSeconds = secs
		}
		if leaderSeq > 0 {
			pct := 100 * float64(fol.KB().ReplicaAppliedSeq()) / float64(leaderSeq)
			if pct < p.CatchUpPct {
				p.CatchUpPct = pct
			}
		}
	}
	return p, nil
}

// WriteReplica renders the series.
func WriteReplica(w io.Writer, pts []ReplicaPoint) {
	fmt.Fprintln(w, "aggregate read QPS vs replica count under sustained leader writes")
	fmt.Fprintln(w, "(k = 0 reads the leader; k > 0 reads only the followers)")
	fmt.Fprintf(w, "%10s  %8s  %10s  %14s  %12s  %8s  %10s  %10s  %9s\n",
		"followers", "readers", "reads", "reads/sec", "qps/reader", "speedup",
		"writer-tx", "lag-recs", "caught-up")
	for _, p := range pts {
		speedup := ""
		if p.SpeedupVsBase > 0 {
			speedup = fmt.Sprintf("%.2fx", p.SpeedupVsBase)
		}
		fmt.Fprintf(w, "%10d  %8d  %10d  %14.0f  %12.0f  %8s  %10d  %10d  %8.1f%%\n",
			p.Followers, p.Readers, p.Reads, p.ReadsPerSec, p.PerReaderQPS,
			speedup, p.WriterTxs, p.LagRecords, p.CatchUpPct)
	}
}
