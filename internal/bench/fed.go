package bench

// Federated-replication series: alerts produced on one knowledge base are
// pushed over HTTP to a second one (internal/fednet), sweeping the push
// batch size. The measured axes are replication lag for a backlog of N
// alerts and the per-alert cost; the delivered count doubles as an
// exactly-once check — it must equal N at every point.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/fednet"
	"repro/internal/trigger"
)

// FedPoint is one (alerts, batch-size) replication measurement.
type FedPoint struct {
	Alerts   int
	Batch    int           // alerts per push request
	Elapsed  time.Duration // one sync round draining the whole backlog
	PerAlert time.Duration // Elapsed / Alerts
	Requests int64         // HTTP push requests the round took
	Received int           // RemoteAlert nodes on the receiver afterwards
	PushHist string        // rkm_fed_push_seconds summary (last rep)
}

// fedRule fires one alert per admission, like the clinical hub's R1.
var fedRule = trigger.Rule{
	Name:  "icu",
	Hub:   "C",
	Event: trigger.Event{Kind: trigger.CreateNode, Label: "IcuPatient"},
	Alert: "RETURN NEW.region AS region",
}

// RunFedLag measures, for each backlog size in cfg.PatientCounts and each
// batch size, how long one federation sync round takes to drain the backlog
// into a fresh receiver over a real HTTP hop (httptest, loopback).
func RunFedLag(cfg Config, batches []int) ([]FedPoint, error) {
	cfg = cfg.withDefaults()
	if len(batches) == 0 {
		batches = []int{1, 32, 256}
	}
	var out []FedPoint
	for _, n := range cfg.PatientCounts {
		for _, batch := range batches {
			var elapsed []time.Duration
			var pt FedPoint
			for rep := 0; rep < cfg.Reps; rep++ {
				p, err := runFedOnce(n, batch)
				if err != nil {
					return nil, err
				}
				elapsed = append(elapsed, p.Elapsed)
				pt = p
			}
			pt.Elapsed = medianDuration(elapsed)
			pt.PerAlert = pt.Elapsed / time.Duration(n)
			out = append(out, pt)
		}
	}
	return out, nil
}

func runFedOnce(n, batch int) (FedPoint, error) {
	src := newKB()
	if err := src.InstallRule(fedRule); err != nil {
		return FedPoint{}, err
	}
	dst := newKB()
	receiver, err := fednet.NewNode("receiver", dst, fednet.Options{})
	if err != nil {
		return FedPoint{}, err
	}
	var requests atomic.Int64
	inner := receiver.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	sender, err := fednet.NewNode("sender", src, fednet.Options{BatchSize: batch})
	if err != nil {
		return FedPoint{}, err
	}
	if err := sender.Subscribe("receiver", ts.URL); err != nil {
		return FedPoint{}, err
	}

	// Build the backlog: one alert per admission.
	for i := 0; i < n; i++ {
		region := fmt.Sprintf("R%02d", i%20)
		if _, err := src.Execute(
			"CREATE (:IcuPatient {region: '"+region+"', hub: 'C'})", nil); err != nil {
			return FedPoint{}, err
		}
	}

	t0 := time.Now()
	sent, err := sender.SyncAll(context.Background())
	d := time.Since(t0)
	if err != nil {
		return FedPoint{}, err
	}
	if sent != n {
		return FedPoint{}, fmt.Errorf("fed bench: delivered %d of %d alerts", sent, n)
	}
	received, err := countRemote(dst)
	if err != nil {
		return FedPoint{}, err
	}
	if received != n {
		return FedPoint{}, fmt.Errorf("fed bench: receiver materialized %d of %d alerts", received, n)
	}
	return FedPoint{
		Alerts:   n,
		Batch:    batch,
		Elapsed:  d,
		Requests: requests.Load(),
		Received: received,
		PushHist: histSummary(src, "rkm_fed_push_seconds"),
	}, nil
}

func countRemote(kb *core.KnowledgeBase) (int, error) {
	remote, err := federation.RemoteAlerts(kb)
	if err != nil {
		return 0, err
	}
	return len(remote), nil
}

// WriteFed renders the replication table.
func WriteFed(w io.Writer, pts []FedPoint) {
	fmt.Fprintln(w, "Federated replication: backlog drain over HTTP (internal/fednet)")
	fmt.Fprintln(w, "  alerts    batch    elapsed      per-alert   requests   received")
	for _, p := range pts {
		fmt.Fprintf(w, "%8d %8d %10s %12s %10d %10d\n",
			p.Alerts, p.Batch, p.Elapsed.Round(time.Microsecond),
			p.PerAlert.Round(time.Nanosecond), p.Requests, p.Received)
	}
	if len(pts) == 0 {
		return
	}
	// Per-batch push-latency distributions, at the largest backlog only.
	largest := pts[len(pts)-1].Alerts
	for _, p := range pts {
		if p.Alerts == largest && p.PushHist != "" {
			fmt.Fprintf(w, "push latency (N=%d, batch=%d): %s\n", p.Alerts, p.Batch, p.PushHist)
		}
	}
}
