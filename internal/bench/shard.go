package bench

// Shard series: how the hub-sharded storage engine scales writes.
//
// Scaling: W concurrent writers commit small durable transactions against
// a sharded knowledge base with H hubs, each writer pinned to shard
// w mod H. At H = 1 every writer queues on the one shard's write lock —
// the single-shard baseline, equivalent to the unsharded engine. As H
// grows, writers spread over independent locks and independent WAL
// streams, so the lock hold times (copy-on-write, validation, rule
// processing, log append) parallelize; committed tx/sec should scale with
// H until writers or cores saturate. The logs run Fsync: interval — the
// durability wait is off the commit path, so the series isolates the
// writer-lock parallelism the sharding exists to buy; under
// Fsync: always on a single device, all shards' fsyncs serialize at the
// disk and the device, not the lock, is what saturates.
//
// Bridge mix: same setup at a fixed hub count, but each transaction is,
// with probability p, a two-shard bridge commit (a node in each of two
// adjacent shards plus a knowledge bridge between them) instead of an
// intra-hub write. Bridges hold two shard locks through a two-stream
// durable commit, so throughput degrades smoothly as p grows — the cost of
// cross-hub knowledge made visible.

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/periodic"
	"repro/internal/value"
	"repro/internal/wal"
)

// ShardConfig parameterizes the shard series.
type ShardConfig struct {
	// Hubs is the sweep over hub (= shard) counts; 1 is the baseline.
	Hubs []int
	// Writers is the sweep over concurrent writer counts.
	Writers []int
	// Window is how long each point measures.
	Window time.Duration
	// BridgeMix is the sweep over the fraction of two-shard bridge
	// transactions in the mixed workload.
	BridgeMix []float64
	// MixHubs and MixWriters fix the shape of the bridge-mix sweep
	// (defaults: 4 hubs, 4 writers).
	MixHubs    int
	MixWriters int
	// TxNodes is the number of nodes each transaction creates — the work
	// done under the shard's write lock (default 4).
	TxNodes int
	Seed    int64
}

func (c ShardConfig) withDefaults() ShardConfig {
	if len(c.Hubs) == 0 {
		c.Hubs = []int{1, 4, 16}
	}
	if len(c.Writers) == 0 {
		c.Writers = []int{1, 4, 16}
	}
	if c.Window <= 0 {
		c.Window = 300 * time.Millisecond
	}
	if len(c.BridgeMix) == 0 {
		c.BridgeMix = []float64{0, 0.01, 0.1, 0.5}
	}
	if c.MixHubs <= 0 {
		c.MixHubs = 4
	}
	if c.MixWriters <= 0 {
		c.MixWriters = 4
	}
	if c.TxNodes <= 0 {
		c.TxNodes = 4
	}
	return c
}

// SmokeShardConfig shrinks the sweep for CI.
func SmokeShardConfig() ShardConfig {
	return ShardConfig{
		Hubs:       []int{1, 4},
		Writers:    []int{4},
		Window:     80 * time.Millisecond,
		BridgeMix:  []float64{0, 0.25},
		MixHubs:    4,
		MixWriters: 4,
	}
}

// ShardPoint is one (hubs, writers) durable-commit measurement.
type ShardPoint struct {
	Hubs     int
	Writers  int
	Txs      int64
	TxPerSec float64
	// Speedup is TxPerSec over the 1-hub point at the same writer count
	// (0 when no baseline was measured).
	Speedup float64
}

// shardHubs builds H bench hubs; hub i owns label Li.
func shardHubs(n int) []core.HubShard {
	defs := make([]core.HubShard, n)
	for i := range defs {
		defs[i] = core.HubShard{
			Hub:         fmt.Sprintf("H%d", i),
			Description: "bench hub",
			Labels:      []string{fmt.Sprintf("L%d", i)},
		}
	}
	return defs
}

// RunShardScaling measures committed tx/sec for each (hubs, writers) pair.
func RunShardScaling(cfg ShardConfig) ([]ShardPoint, error) {
	cfg = cfg.withDefaults()
	var out []ShardPoint
	base := make(map[int]float64) // writers -> 1-hub tx/sec
	for _, hubs := range cfg.Hubs {
		for _, writers := range cfg.Writers {
			p, err := runShardOnce(cfg, hubs, writers)
			if err != nil {
				return nil, err
			}
			if hubs == 1 {
				base[writers] = p.TxPerSec
			} else if b := base[writers]; b > 0 {
				p.Speedup = p.TxPerSec / b
			}
			out = append(out, p)
		}
	}
	return out, nil
}

func runShardOnce(cfg ShardConfig, hubs, writers int) (ShardPoint, error) {
	dir, err := os.MkdirTemp("", "rkm-bench-shard-*")
	if err != nil {
		return ShardPoint{}, err
	}
	defer os.RemoveAll(dir)
	kb, _, err := core.OpenShardedDurable(dir,
		core.Config{Clock: periodic.NewManualClock(simStart)},
		shardHubs(hubs), wal.Options{Fsync: wal.FsyncInterval})
	if err != nil {
		return ShardPoint{}, err
	}
	defer kb.Close()

	var (
		stop     atomic.Bool
		txs      atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) { errOnce.Do(func() { firstErr = err }); stop.Store(true) }

	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := w % hubs
			label := fmt.Sprintf("L%d", shard)
			for i := 0; !stop.Load(); i++ {
				_, err := kb.UpdateShard(shard, func(tx *graph.Tx) error {
					for j := 0; j < cfg.TxNodes; j++ {
						if _, err := tx.CreateNode([]string{label}, map[string]value.Value{
							"w": value.Int(int64(w)), "i": value.Int(int64(i)), "j": value.Int(int64(j)),
						}); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					fail(err)
					return
				}
				txs.Add(1)
			}
		}(w)
	}
	time.Sleep(cfg.Window)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return ShardPoint{}, firstErr
	}
	p := ShardPoint{Hubs: hubs, Writers: writers, Txs: txs.Load()}
	if elapsed > 0 {
		p.TxPerSec = float64(p.Txs) / elapsed.Seconds()
	}
	return p, nil
}

// BridgeMixPoint is one bridge-fraction measurement.
type BridgeMixPoint struct {
	Hubs       int
	Writers    int
	BridgeFrac float64
	Txs        int64
	BridgeTxs  int64
	TxPerSec   float64
}

// RunShardBridgeMix measures mixed intra-hub/bridge throughput for each
// bridge fraction at the configured MixHubs/MixWriters shape.
func RunShardBridgeMix(cfg ShardConfig) ([]BridgeMixPoint, error) {
	cfg = cfg.withDefaults()
	var out []BridgeMixPoint
	for _, frac := range cfg.BridgeMix {
		p, err := runShardBridgeOnce(cfg, cfg.MixHubs, cfg.MixWriters, frac)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func runShardBridgeOnce(cfg ShardConfig, hubs, writers int, frac float64) (BridgeMixPoint, error) {
	dir, err := os.MkdirTemp("", "rkm-bench-shard-mix-*")
	if err != nil {
		return BridgeMixPoint{}, err
	}
	defer os.RemoveAll(dir)
	kb, _, err := core.OpenShardedDurable(dir,
		core.Config{Clock: periodic.NewManualClock(simStart)},
		shardHubs(hubs), wal.Options{Fsync: wal.FsyncInterval})
	if err != nil {
		return BridgeMixPoint{}, err
	}
	defer kb.Close()

	var (
		stop      atomic.Bool
		txs       atomic.Int64
		bridgeTxs atomic.Int64
		wg        sync.WaitGroup
		errOnce   sync.Once
		firstErr  error
	)
	fail := func(err error) { errOnce.Do(func() { firstErr = err }); stop.Store(true) }

	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			shard := w % hubs
			label := fmt.Sprintf("L%d", shard)
			for i := 0; !stop.Load(); i++ {
				if hubs > 1 && rng.Float64() < frac {
					peer := (shard + 1) % hubs
					peerLabel := fmt.Sprintf("L%d", peer)
					_, err := kb.UpdateBridgeShards(shard, peer, func(bt *graph.BridgeTx) error {
						a, err := bt.CreateNodeIn(shard, []string{label}, nil)
						if err != nil {
							return err
						}
						b, err := bt.CreateNodeIn(peer, []string{peerLabel}, nil)
						if err != nil {
							return err
						}
						_, err = bt.CreateRel(a, b, "BRIDGES", nil)
						return err
					})
					if err != nil {
						fail(err)
						return
					}
					bridgeTxs.Add(1)
				} else {
					_, err := kb.UpdateShard(shard, func(tx *graph.Tx) error {
						_, err := tx.CreateNode([]string{label}, map[string]value.Value{
							"i": value.Int(int64(i)),
						})
						return err
					})
					if err != nil {
						fail(err)
						return
					}
				}
				txs.Add(1)
			}
		}(w)
	}
	time.Sleep(cfg.Window)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return BridgeMixPoint{}, firstErr
	}
	p := BridgeMixPoint{
		Hubs: hubs, Writers: writers, BridgeFrac: frac,
		Txs: txs.Load(), BridgeTxs: bridgeTxs.Load(),
	}
	if elapsed > 0 {
		p.TxPerSec = float64(p.Txs) / elapsed.Seconds()
	}
	return p, nil
}

// WriteShard renders both series.
func WriteShard(w io.Writer, scaling []ShardPoint, mix []BridgeMixPoint) {
	fmt.Fprintln(w, "durable commit throughput vs writers, by hub count (fsync = interval)")
	fmt.Fprintf(w, "%6s  %8s  %10s  %12s  %8s\n",
		"hubs", "writers", "txs", "tx/sec", "speedup")
	for _, p := range scaling {
		speedup := ""
		if p.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", p.Speedup)
		}
		fmt.Fprintf(w, "%6d  %8d  %10d  %12.0f  %8s\n",
			p.Hubs, p.Writers, p.Txs, p.TxPerSec, speedup)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "mixed workload: intra-hub writes with a fraction of two-shard bridge commits")
	fmt.Fprintf(w, "%6s  %8s  %8s  %10s  %10s  %12s\n",
		"hubs", "writers", "bridge%", "txs", "bridges", "tx/sec")
	for _, p := range mix {
		fmt.Fprintf(w, "%6d  %8d  %7.0f%%  %10d  %10d  %12.0f\n",
			p.Hubs, p.Writers, p.BridgeFrac*100, p.Txs, p.BridgeTxs, p.TxPerSec)
	}
}
