package bench

// Async series: what deferring alert evaluation buys the write path.
//
// A paced writer offers single-reading transactions at a fixed rate
// (modeling a request stream) while an expensive alert rule is installed —
// its guard passes on ~9% of writes and its alert query enumerates a
// cartesian pair set over the Ref seed, so each evaluation costs tens of
// thousands of matches. Three modes, same offered load:
//
//   - baseline: no rules installed; the raw write path.
//   - sync:     the rule runs in the Before phase — every passing guard
//     evaluates the alert query inside the writer's transaction, so the
//     write path pays for it and the writer falls behind the offered rate.
//   - async:    the same rule in the AfterAsync phase with the pipeline
//     running — the writer only stages a PendingAlert node; workers
//     evaluate against committed snapshots in the writer's idle slack.
//
// The figure reports achieved throughput (async should hold the offered
// rate alongside baseline while sync collapses), per-write latency, how
// long the pending queue took to drain after the burst, and the alert
// counts, which must match between sync and async: deferral changes when
// alerts appear, not whether.

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/periodic"
	"repro/internal/trigger"
	"repro/internal/value"
)

// AsyncConfig parameterizes the async-pipeline series.
type AsyncConfig struct {
	// Writes is the number of single-reading transactions per mode.
	Writes int
	// Interval is the offered-load pacing: one write is offered every
	// Interval (writes that fall behind run back-to-back to catch up).
	Interval time.Duration
	// RefNodes sizes the cartesian alert query (cost grows quadratically).
	RefNodes int
	// Workers is the async pipeline's worker count.
	Workers int
}

func (c AsyncConfig) withDefaults() AsyncConfig {
	if c.Writes <= 0 {
		c.Writes = 2000
	}
	if c.Interval <= 0 {
		c.Interval = 500 * time.Microsecond
	}
	if c.RefNodes <= 0 {
		c.RefNodes = 150
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	return c
}

// SmokeAsyncConfig shrinks the series for CI.
func SmokeAsyncConfig() AsyncConfig {
	return AsyncConfig{Writes: 300, Interval: time.Millisecond, RefNodes: 60, Workers: 2}
}

// AsyncPoint is one mode's measurement.
type AsyncPoint struct {
	Mode     string // "baseline", "sync" or "async"
	Writes   int
	Elapsed  time.Duration
	Offered  float64 // offered write rate, tx/sec
	Achieved float64 // achieved write rate, tx/sec
	// RelBaseline is this mode's achieved throughput relative to baseline.
	RelBaseline float64
	// MeanLatency and MaxLatency cover the write call only (the pacing
	// sleep is not part of the write path).
	MeanLatency time.Duration
	MaxLatency  time.Duration
	// Alerts is how many alert nodes the rule materialized (0 for baseline).
	Alerts int
	// Drain is how long the pending queue took to empty after the last
	// write (async mode only; sync work is already done at commit).
	Drain time.Duration
}

// asyncBenchRule is the expensive rule: a rarely-passing guard in front of
// a cartesian alert query over the Ref seed.
func asyncBenchRule(phase trigger.Phase, refs int) trigger.Rule {
	return trigger.Rule{
		Name:  "expensive",
		Hub:   "B",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Reading"},
		Guard: "NEW.v > 90",
		Phase: phase,
		Alert: fmt.Sprintf(`MATCH (a:Ref), (b:Ref)
		        WITH count(b) AS pairs WHERE pairs = %d
		        RETURN pairs`, refs*refs),
	}
}

// RunAsyncPipeline measures the offered-load writer in all three modes.
func RunAsyncPipeline(cfg AsyncConfig) ([]AsyncPoint, error) {
	cfg = cfg.withDefaults()
	var out []AsyncPoint
	var base float64
	for _, mode := range []string{"baseline", "sync", "async"} {
		p, err := runAsyncOnce(cfg, mode)
		if err != nil {
			return nil, err
		}
		if mode == "baseline" {
			base = p.Achieved
		} else if base > 0 {
			p.RelBaseline = p.Achieved / base
		}
		out = append(out, p)
	}
	return out, nil
}

func runAsyncOnce(cfg AsyncConfig, mode string) (AsyncPoint, error) {
	kb := core.New(core.Config{Clock: periodic.NewManualClock(simStart)})
	err := kb.Store().Update(func(tx *graph.Tx) error {
		for i := 0; i < cfg.RefNodes; i++ {
			if _, err := tx.CreateNode([]string{"Ref"}, nil); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return AsyncPoint{}, err
	}
	switch mode {
	case "sync":
		err = kb.InstallRule(asyncBenchRule(trigger.Before, cfg.RefNodes))
	case "async":
		if err = kb.InstallRule(asyncBenchRule(trigger.AfterAsync, cfg.RefNodes)); err == nil {
			err = kb.StartAsync(core.AsyncOptions{Workers: cfg.Workers})
		}
	}
	if err != nil {
		return AsyncPoint{}, err
	}

	var totLat, maxLat time.Duration
	t0 := time.Now()
	for i := 0; i < cfg.Writes; i++ {
		// Offered load: write i is due at t0 + i*Interval. A mode that
		// keeps up sleeps here; one that fell behind runs immediately.
		if d := time.Until(t0.Add(time.Duration(i) * cfg.Interval)); d > 0 {
			time.Sleep(d)
		}
		w0 := time.Now()
		if _, err := kb.Execute("CREATE (:Reading {v: $v})",
			map[string]value.Value{"v": value.Int(int64(i % 100))}); err != nil {
			return AsyncPoint{}, err
		}
		lat := time.Since(w0)
		totLat += lat
		if lat > maxLat {
			maxLat = lat
		}
	}
	elapsed := time.Since(t0)

	p := AsyncPoint{
		Mode:        mode,
		Writes:      cfg.Writes,
		Elapsed:     elapsed,
		Offered:     1 / cfg.Interval.Seconds(),
		Achieved:    float64(cfg.Writes) / elapsed.Seconds(),
		MeanLatency: totLat / time.Duration(cfg.Writes),
		MaxLatency:  maxLat,
	}
	if mode == "async" {
		d0 := time.Now()
		if err := kb.WaitAsyncIdle(5 * time.Minute); err != nil {
			return AsyncPoint{}, err
		}
		p.Drain = time.Since(d0)
		kb.StopAsync()
	}
	if mode != "baseline" {
		alerts, err := kb.Alerts()
		if err != nil {
			return AsyncPoint{}, err
		}
		p.Alerts = len(alerts)
	}
	return p, nil
}

// WriteAsync renders the async figure as an aligned text table.
func WriteAsync(w io.Writer, pts []AsyncPoint) {
	fmt.Fprintln(w, "paced writer with an expensive alert rule (sync vs async evaluation)")
	fmt.Fprintf(w, "%-9s  %8s  %10s  %10s  %12s  %10s  %10s  %8s  %10s\n",
		"mode", "writes", "offered/s", "tx/sec", "vs baseline", "mean-lat", "max-lat", "alerts", "drain")
	for _, p := range pts {
		rel, drain := "", ""
		if p.RelBaseline > 0 {
			rel = fmt.Sprintf("%.1f%%", 100*p.RelBaseline)
		}
		if p.Mode == "async" {
			drain = p.Drain.Round(time.Millisecond).String()
		}
		fmt.Fprintf(w, "%-9s  %8d  %10.0f  %10.0f  %12s  %10s  %10s  %8d  %10s\n",
			p.Mode, p.Writes, p.Offered, p.Achieved, rel,
			p.MeanLatency.Round(time.Microsecond), p.MaxLatency.Round(time.Microsecond),
			p.Alerts, drain)
	}
}
