package bench

// Concurrency series: how the snapshot-isolated read path and WAL group
// commit behave under contention.
//
// Reads: a fixed pool of reader goroutines runs count queries against a
// knowledge base while one writer streams admissions. The "snapshot" mode
// is the store as shipped — readers pin the published snapshot and never
// touch the write lock. The "rwmutex" mode re-creates the seed's contract
// with a bench-local sync.RWMutex: every read holds RLock, every write
// holds Lock, so readers stall behind the writer. Same queries, same
// writer, only the locking differs.
//
// Commits: concurrent writers commit small transactions against a durable
// knowledge base with Fsync: always. Group commit lets committers share
// batched fsyncs, so fsyncs per transaction fall below 1 as writer count
// grows while commit throughput rises.

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/periodic"
	"repro/internal/value"
	"repro/internal/wal"
)

// ConcConfig parameterizes the concurrency series.
type ConcConfig struct {
	// Nodes is the number of Person nodes seeded before measuring reads.
	Nodes int
	// Readers is the sweep over concurrent reader counts.
	Readers []int
	// Writers is the sweep over concurrent committer counts.
	Writers []int
	// Window is how long each read point measures.
	Window time.Duration
	// CommitsPerWriter is the per-goroutine commit count in the write sweep.
	CommitsPerWriter int
	Seed             int64
}

func (c ConcConfig) withDefaults() ConcConfig {
	if c.Nodes <= 0 {
		c.Nodes = 2000
	}
	if len(c.Readers) == 0 {
		c.Readers = []int{1, 2, 4, 8}
	}
	if len(c.Writers) == 0 {
		c.Writers = []int{1, 2, 4, 8}
	}
	if c.Window <= 0 {
		c.Window = 400 * time.Millisecond
	}
	if c.CommitsPerWriter <= 0 {
		c.CommitsPerWriter = 50
	}
	return c
}

// SmokeConcConfig shrinks the sweep for CI: it proves the machinery works
// and the shapes hold, not the absolute numbers.
func SmokeConcConfig() ConcConfig {
	return ConcConfig{
		Nodes:            200,
		Readers:          []int{1, 4},
		Writers:          []int{1, 4, 8},
		Window:           80 * time.Millisecond,
		CommitsPerWriter: 50,
	}
}

// ConcReadPoint is one (readers, mode) throughput measurement.
type ConcReadPoint struct {
	Readers     int
	Mode        string // "snapshot" or "rwmutex"
	Reads       int64
	ReadsPerSec float64
	WriterTxs   int64   // write transactions committed inside the window
	Speedup     float64 // snapshot / rwmutex reads-per-sec at the same reader count
}

// RunConcReads measures read throughput under a streaming writer for each
// reader count, in both locking modes.
func RunConcReads(cfg ConcConfig) ([]ConcReadPoint, error) {
	cfg = cfg.withDefaults()
	var out []ConcReadPoint
	for _, readers := range cfg.Readers {
		var base float64
		for _, mode := range []string{"rwmutex", "snapshot"} {
			p, err := runConcReadsOnce(cfg, readers, mode == "rwmutex")
			if err != nil {
				return nil, err
			}
			if mode == "rwmutex" {
				base = p.ReadsPerSec
			} else if base > 0 {
				p.Speedup = p.ReadsPerSec / base
			}
			out = append(out, p)
		}
	}
	return out, nil
}

func runConcReadsOnce(cfg ConcConfig, readers int, emulateRWMutex bool) (ConcReadPoint, error) {
	kb := core.New(core.Config{Clock: periodic.NewManualClock(simStart)})
	if err := seedPersons(kb, cfg.Nodes); err != nil {
		return ConcReadPoint{}, err
	}

	// The seed's contract, bench-local: one RWMutex over the whole store.
	var mu sync.RWMutex
	lockR, unlockR := func() {}, func() {}
	lockW, unlockW := func() {}, func() {}
	if emulateRWMutex {
		lockR, unlockR = mu.RLock, mu.RUnlock
		lockW, unlockW = mu.Lock, mu.Unlock
	}

	var (
		stop      atomic.Bool
		reads     atomic.Int64
		writerTxs atomic.Int64
		wg        sync.WaitGroup
		errOnce   sync.Once
		firstErr  error
	)
	fail := func(err error) { errOnce.Do(func() { firstErr = err }); stop.Store(true) }

	// One writer streams single-node transactions for the whole window.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			lockW()
			_, err := kb.Execute("CREATE (:Admission {i: $i})",
				map[string]value.Value{"i": value.Int(int64(i))})
			unlockW()
			if err != nil {
				fail(err)
				return
			}
			writerTxs.Add(1)
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := int64(0)
			for !stop.Load() {
				lockR()
				res, err := kb.Query("MATCH (p:Person) RETURN count(p) AS n", nil)
				unlockR()
				if err != nil {
					fail(err)
					return
				}
				if v, ok := res.Value(); ok {
					if got, _ := v.AsInt(); got != int64(cfg.Nodes) {
						fail(fmt.Errorf("reader saw %d Person nodes, want %d", got, cfg.Nodes))
						return
					}
				}
				n++
			}
			reads.Add(n)
		}()
	}

	time.Sleep(cfg.Window)
	stop.Store(true)
	wg.Wait()
	if firstErr != nil {
		return ConcReadPoint{}, firstErr
	}
	mode := "snapshot"
	if emulateRWMutex {
		mode = "rwmutex"
	}
	return ConcReadPoint{
		Readers:     readers,
		Mode:        mode,
		Reads:       reads.Load(),
		ReadsPerSec: float64(reads.Load()) / cfg.Window.Seconds(),
		WriterTxs:   writerTxs.Load(),
	}, nil
}

func seedPersons(kb *core.KnowledgeBase, n int) error {
	return kb.Store().Update(func(tx *graph.Tx) error {
		for i := 0; i < n; i++ {
			if _, err := tx.CreateNode([]string{"Person"},
				map[string]value.Value{"i": value.Int(int64(i))}); err != nil {
				return err
			}
		}
		return nil
	})
}

// ConcCommitPoint is one durable-commit measurement.
type ConcCommitPoint struct {
	Writers       int
	Commits       int64
	Elapsed       time.Duration
	CommitsPerSec float64
	Fsyncs        int64
	FsyncsPerTx   float64
}

// RunConcCommits measures durable commit throughput and fsyncs per
// transaction for each writer count, with Fsync: always.
func RunConcCommits(cfg ConcConfig) ([]ConcCommitPoint, error) {
	cfg = cfg.withDefaults()
	var out []ConcCommitPoint
	for _, writers := range cfg.Writers {
		p, err := runConcCommitsOnce(cfg, writers)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func runConcCommitsOnce(cfg ConcConfig, writers int) (ConcCommitPoint, error) {
	dir, err := os.MkdirTemp("", "rkm-bench-conc-*")
	if err != nil {
		return ConcCommitPoint{}, err
	}
	defer os.RemoveAll(dir)
	kb, _, err := core.OpenDurable(dir,
		core.Config{Clock: periodic.NewManualClock(simStart)},
		wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		return ConcCommitPoint{}, err
	}
	defer kb.Close()

	reg := kb.Metrics()
	txsBefore := reg.Counter("rkm_wal_group_commit_txs_total", "").Value()
	syncsBefore := reg.Counter("rkm_wal_group_commit_syncs_total", "").Value()

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Direct store transactions: the point is the commit/WAL path,
			// not the query pipeline, so keep the lock-hold time minimal.
			for i := 0; i < cfg.CommitsPerWriter; i++ {
				err := kb.Store().Update(func(tx *graph.Tx) error {
					_, err := tx.CreateNode([]string{"Admission"}, map[string]value.Value{
						"w": value.Int(int64(w)), "i": value.Int(int64(i)),
					})
					return err
				})
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return ConcCommitPoint{}, firstErr
	}

	commits := reg.Counter("rkm_wal_group_commit_txs_total", "").Value() - txsBefore
	fsyncs := reg.Counter("rkm_wal_group_commit_syncs_total", "").Value() - syncsBefore
	p := ConcCommitPoint{
		Writers: writers,
		Commits: commits,
		Elapsed: elapsed,
		Fsyncs:  fsyncs,
	}
	if elapsed > 0 {
		p.CommitsPerSec = float64(commits) / elapsed.Seconds()
	}
	if commits > 0 {
		p.FsyncsPerTx = float64(fsyncs) / float64(commits)
	}
	return p, nil
}

// WriteConc renders both series.
func WriteConc(w io.Writer, reads []ConcReadPoint, commits []ConcCommitPoint) {
	fmt.Fprintln(w, "concurrent reads under a streaming writer (snapshot vs RWMutex-emulated seed)")
	fmt.Fprintf(w, "%8s  %-9s  %10s  %14s  %10s  %8s\n",
		"readers", "mode", "reads", "reads/sec", "writer-tx", "speedup")
	for _, p := range reads {
		speedup := ""
		if p.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", p.Speedup)
		}
		fmt.Fprintf(w, "%8d  %-9s  %10d  %14.0f  %10d  %8s\n",
			p.Readers, p.Mode, p.Reads, p.ReadsPerSec, p.WriterTxs, speedup)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "durable commit throughput with group commit (fsync = always)")
	fmt.Fprintf(w, "%8s  %8s  %12s  %14s  %8s  %10s\n",
		"writers", "commits", "elapsed", "commits/sec", "fsyncs", "fsyncs/tx")
	for _, p := range commits {
		fmt.Fprintf(w, "%8d  %8d  %12s  %14.0f  %8d  %10.2f\n",
			p.Writers, p.Commits, p.Elapsed.Round(time.Microsecond),
			p.CommitsPerSec, p.Fsyncs, p.FsyncsPerTx)
	}
}
