package bench

// Durable-ingest series: the same admission workload run against an
// in-memory knowledge base and against durable ones under each fsync
// policy, reporting the write-ahead-log overhead as a ratio over the
// in-memory baseline.

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/periodic"
	"repro/internal/wal"
	"repro/internal/workload"
)

// WALPoint is one (patients, mode) ingest measurement.
type WALPoint struct {
	Patients  int
	Mode      string        // "memory", "wal-none", "wal-interval", "wal-always"
	Elapsed   time.Duration // total ingest time
	PerTx     time.Duration // Elapsed / transactions
	Overhead  float64       // Elapsed / the in-memory Elapsed at the same N
	TxHist    string        // rkm_graph_tx_seconds summary (last rep)
	FsyncHist string        // rkm_wal_fsync_seconds summary (last rep; durable modes only)
}

// walModes orders the series from baseline to safest.
var walModes = []struct {
	name  string
	fsync wal.FsyncPolicy
	inMem bool
}{
	{"memory", 0, true},
	{"wal-none", wal.FsyncNone, false},
	{"wal-interval", wal.FsyncInterval, false},
	{"wal-always", wal.FsyncAlways, false},
}

// RunWALOverhead ingests the admission workload once per (N, mode) pair.
// Durable runs write under a fresh temporary directory that is removed
// afterwards.
func RunWALOverhead(cfg Config) ([]WALPoint, error) {
	cfg = cfg.withDefaults()
	var out []WALPoint
	for _, n := range cfg.PatientCounts {
		var baseline time.Duration
		for _, mode := range walModes {
			var elapsed []time.Duration
			var txHist, fsyncHist string
			for rep := 0; rep < cfg.Reps; rep++ {
				d, tx, fs, err := runWALOnce(cfg, n, mode.inMem, mode.fsync)
				if err != nil {
					return nil, err
				}
				elapsed = append(elapsed, d)
				txHist, fsyncHist = tx, fs
			}
			med := medianDuration(elapsed)
			if mode.inMem {
				baseline = med
			}
			p := WALPoint{Patients: n, Mode: mode.name, Elapsed: med,
				TxHist: txHist, FsyncHist: fsyncHist}
			txs := n / cfg.Batch
			if txs > 0 {
				p.PerTx = med / time.Duration(txs)
			}
			if baseline > 0 {
				p.Overhead = float64(med) / float64(baseline)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

func runWALOnce(cfg Config, n int, inMem bool, fsync wal.FsyncPolicy) (elapsed time.Duration, txHist, fsyncHist string, err error) {
	var kb *core.KnowledgeBase
	if inMem {
		kb = newKB()
	} else {
		dir, err := os.MkdirTemp("", "rkm-bench-wal-*")
		if err != nil {
			return 0, "", "", err
		}
		defer os.RemoveAll(dir)
		kb, _, err = core.OpenDurable(dir,
			core.Config{Clock: periodic.NewManualClock(simStart)},
			wal.Options{Fsync: fsync})
		if err != nil {
			return 0, "", "", err
		}
		defer kb.Close()
	}
	sc, err := workload.Build(kb, workload.Config{Seed: cfg.Seed, Regions: cfg.Regions})
	if err != nil {
		return 0, "", "", err
	}
	counts := dayCounts(n, cfg.Days, cfg.Growth)
	runtime.GC()
	start := time.Now()
	for day, count := range counts {
		adms := sc.Admissions(count, day)
		if err := sc.Admit(kb, adms, workload.AdmitOptions{
			Batch:        cfg.Batch,
			LinkHospital: true,
		}); err != nil {
			return 0, "", "", err
		}
	}
	elapsed = time.Since(start)
	txHist = histSummary(kb, "rkm_graph_tx_seconds")
	fsyncHist = histSummary(kb, "rkm_wal_fsync_seconds")
	return elapsed, txHist, fsyncHist, nil
}

// WriteWAL renders the series as a table, then the transaction and fsync
// latency distributions captured on each mode's last repetition.
func WriteWAL(w io.Writer, pts []WALPoint) {
	fmt.Fprintln(w, "WAL ingest overhead (durable vs in-memory)")
	fmt.Fprintf(w, "%10s  %-12s  %12s  %12s  %9s\n",
		"patients", "mode", "elapsed", "per-tx", "overhead")
	for _, p := range pts {
		fmt.Fprintf(w, "%10d  %-12s  %12s  %12s  %8.2fx\n",
			p.Patients, p.Mode, p.Elapsed.Round(time.Microsecond),
			p.PerTx.Round(time.Nanosecond), p.Overhead)
	}
	printed := false
	for _, p := range pts {
		if p.TxHist == "" && p.FsyncHist == "" {
			continue
		}
		if !printed {
			fmt.Fprintln(w, "latency histograms (rkm_graph_tx_seconds / rkm_wal_fsync_seconds, last rep):")
			printed = true
		}
		if p.TxHist != "" {
			fmt.Fprintf(w, "%10d  %-12s  tx     %s\n", p.Patients, p.Mode, p.TxHist)
		}
		if p.FsyncHist != "" {
			fmt.Fprintf(w, "%10d  %-12s  fsync  %s\n", p.Patients, p.Mode, p.FsyncHist)
		}
	}
}
