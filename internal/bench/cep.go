package bench

// The cep figure: composite-event throughput on the fraud stream. Two
// designs detect the same anomalies — the composite rules of internal/cep
// (durable partial-match automata, O(1) state per correlation key) and the
// naive single-event strawman that re-scans the account's recent history on
// every flagged transaction. The sweep runs both over the same seeded
// stream for a set of window sizes: the naive re-scan grows with the
// window (more history matched per firing) while the automaton pays a
// constant small update, and only the automaton covers sequences and
// absences at all.

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cep"
	"repro/internal/core"
	"repro/internal/periodic"
	"repro/internal/workload"
)

// CEPConfig parameterizes the composite-event figure.
type CEPConfig struct {
	// Minutes of simulated stream per measurement.
	Minutes int
	// Windows to sweep (composite window / naive re-scan horizon).
	Windows []time.Duration
	// Fraud tunes the event stream (zero value = defaults).
	Fraud workload.FraudConfig
	// Batch is events per transaction during ingest.
	Batch int
}

func (c CEPConfig) withDefaults() CEPConfig {
	if c.Minutes <= 0 {
		c.Minutes = 120
	}
	if len(c.Windows) == 0 {
		c.Windows = []time.Duration{time.Minute, 5 * time.Minute, 30 * time.Minute}
	}
	if c.Fraud.BurstChance == 0 && c.Fraud.PairChance == 0 {
		seed := c.Fraud.Seed
		c.Fraud = workload.DefaultFraudConfig()
		c.Fraud.TxnsPerMinute = 50
		if seed != 0 {
			c.Fraud.Seed = seed
		}
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	return c
}

// SmokeCEPConfig is the tiny CI-sized sweep.
func SmokeCEPConfig() CEPConfig {
	f := workload.DefaultFraudConfig()
	f.Accounts = 10
	f.TxnsPerMinute = 10
	f.BurstChance = 0.5
	f.PairChance = 0.5
	return CEPConfig{
		Minutes: 20,
		Windows: []time.Duration{time.Minute, 5 * time.Minute},
		Fraud:   f,
	}
}

// CEPPoint is one measurement of the cep figure.
type CEPPoint struct {
	Window       time.Duration
	Mode         string // "cep" (composite rules) or "naive" (re-scan)
	Events       int    // stream events ingested
	Elapsed      time.Duration
	EventsPerSec float64
	Alerts       int // alerts materialized
	Partials     int // partial matches still open at the end (cep only)
}

// RunCEP sweeps window sizes, running the composite-rule pack and the
// naive re-scan rule over identical seeded streams.
func RunCEP(cfg CEPConfig) ([]CEPPoint, error) {
	cfg = cfg.withDefaults()
	var pts []CEPPoint
	for _, w := range cfg.Windows {
		for _, mode := range []string{"cep", "naive"} {
			p, err := runCEPOnce(cfg, w, mode)
			if err != nil {
				return nil, fmt.Errorf("window %s mode %s: %w", w, mode, err)
			}
			pts = append(pts, p)
		}
	}
	return pts, nil
}

func runCEPOnce(cfg CEPConfig, window time.Duration, mode string) (CEPPoint, error) {
	clock := periodic.NewManualClock(simStart)
	kb := core.New(core.Config{Clock: clock})
	sc, err := workload.BuildFraud(kb, cfg.Fraud)
	if err != nil {
		return CEPPoint{}, err
	}
	var m *cep.Manager
	switch mode {
	case "cep":
		m, err = cep.Enable(kb, cep.Options{})
		if err != nil {
			return CEPPoint{}, err
		}
		for _, r := range workload.CompositeRulePack(window) {
			if err := m.Install(r); err != nil {
				return CEPPoint{}, err
			}
		}
	case "naive":
		minutes := int(window / time.Minute)
		if minutes < 1 {
			minutes = 1
		}
		if err := kb.InstallRule(workload.NaiveVelocityRuleSpec(minutes)); err != nil {
			return CEPPoint{}, err
		}
	default:
		return CEPPoint{}, fmt.Errorf("unknown mode %q", mode)
	}

	p := CEPPoint{Window: window, Mode: mode}
	start := time.Now()
	for min := 0; min < cfg.Minutes; min++ {
		events := sc.Minute(min)
		p.Events += len(events)
		if err := sc.Ingest(kb, events, workload.IngestOptions{Batch: cfg.Batch}); err != nil {
			return CEPPoint{}, err
		}
		clock.Advance(time.Minute)
		if m != nil {
			if _, err := m.DrainOnce(); err != nil {
				return CEPPoint{}, err
			}
		}
	}
	p.Elapsed = time.Since(start)
	if p.Elapsed > 0 {
		p.EventsPerSec = float64(p.Events) / p.Elapsed.Seconds()
	}
	alerts, err := kb.Alerts()
	if err != nil {
		return CEPPoint{}, err
	}
	p.Alerts = len(alerts)
	if m != nil {
		p.Partials = m.Depth()
	}
	return p, nil
}

// WriteCEP renders the figure as an aligned table.
func WriteCEP(w io.Writer, pts []CEPPoint) {
	fmt.Fprintln(w, "Composite events: durable partial-match automata vs naive re-scan (fraud stream)")
	fmt.Fprintf(w, "%8s  %6s  %8s  %12s  %12s  %7s  %8s\n",
		"window", "mode", "events", "elapsed", "events/s", "alerts", "partials")
	for _, p := range pts {
		fmt.Fprintf(w, "%8s  %6s  %8d  %12s  %12.0f  %7d  %8d\n",
			p.Window, p.Mode, p.Events, p.Elapsed.Round(time.Millisecond),
			p.EventsPerSec, p.Alerts, p.Partials)
	}
}
