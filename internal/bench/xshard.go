package bench

// XShard series: reading across hub borders. The same bridge-heavy sharded
// graph is queried two ways:
//
//   - cross:  one ShardedKB.Query — the engine pins every shard's snapshot,
//     plans against cardinalities aggregated over all shards, and executes
//     once over the multi-shard view. A knowledge bridge is stored in both
//     endpoint shards but bound exactly once.
//   - fanout: the pre-cross-shard strategy — one QueryInHub per hub plus a
//     client-side merge that must dedupe bridges by relationship ID,
//     because each bridge surfaces from both of its endpoint shards.
//
// Both return identical result sets (the smoke gate checks it); the series
// measures what the fan-out costs as hubs multiply: H plan executions, H
// rounds of row materialization and a merge pass, against one.

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/periodic"
	"repro/internal/value"
)

// XShardConfig parameterizes the cross-shard read series.
type XShardConfig struct {
	// Hubs is the sweep over hub counts.
	Hubs []int
	// NodesPerHub is the number of :Item nodes seeded in each shard.
	NodesPerHub int
	// IntraRels is the number of intra-shard LINK relationships per shard.
	IntraRels int
	// Bridges is the number of LINK bridges between each adjacent shard
	// pair (shard i to shard i+1).
	Bridges int
	// Window is how long each strategy measures per hub count.
	Window time.Duration
	Seed   int64
}

func (c XShardConfig) withDefaults() XShardConfig {
	if len(c.Hubs) == 0 {
		c.Hubs = []int{2, 4, 8}
	}
	if c.NodesPerHub <= 0 {
		c.NodesPerHub = 2000
	}
	if c.IntraRels <= 0 {
		c.IntraRels = 2000
	}
	if c.Bridges <= 0 {
		c.Bridges = 500
	}
	if c.Window <= 0 {
		c.Window = 300 * time.Millisecond
	}
	return c
}

// SmokeXShardConfig shrinks the sweep for CI.
func SmokeXShardConfig() XShardConfig {
	return XShardConfig{
		Hubs:        []int{2, 4},
		NodesPerHub: 200,
		IntraRels:   200,
		Bridges:     50,
		Window:      60 * time.Millisecond,
	}
}

// XShardPoint is one (hubs, strategy) measurement.
type XShardPoint struct {
	Hubs     int
	Strategy string // "cross" or "fanout"
	Rows     int    // result rows per query (after dedupe for fanout)
	Queries  int64
	QPS      float64
}

// xshardQuery matches every LINK — intra-shard and bridge alike — and
// returns its identifier, so the fan-out strategy has something to dedupe
// on (a bridge is visible from both endpoint shards). The far endpoint
// stays anonymous deliberately: a per-hub transaction cannot inspect the
// labels of a node across the hub border, so a `(:Item)` on both ends
// would silently drop every bridge from the fan-out — the strategy's
// fundamental limitation, kept out of the timing comparison.
const xshardQuery = "MATCH (:Item)-[r:LINK]->() RETURN id(r)"

// buildXShard seeds a sharded knowledge base: per shard, NodesPerHub
// :Item nodes and IntraRels intra-shard LINKs; between each adjacent shard
// pair, Bridges LINK bridges.
func buildXShard(cfg XShardConfig, hubs int) (*core.ShardedKB, error) {
	kb, err := core.NewSharded(
		core.Config{Clock: periodic.NewManualClock(simStart)}, shardHubs(hubs))
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(hubs)))
	nodes := make([][]graph.NodeID, hubs)
	for s := 0; s < hubs; s++ {
		s := s
		if _, err := kb.UpdateShard(s, func(tx *graph.Tx) error {
			for i := 0; i < cfg.NodesPerHub; i++ {
				id, err := tx.CreateNode([]string{"Item"}, map[string]value.Value{
					"n": value.Int(int64(i)),
				})
				if err != nil {
					return err
				}
				nodes[s] = append(nodes[s], id)
			}
			for i := 0; i < cfg.IntraRels; i++ {
				a := nodes[s][rng.Intn(len(nodes[s]))]
				b := nodes[s][rng.Intn(len(nodes[s]))]
				if _, err := tx.CreateRel(a, b, "LINK", nil); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	for s := 0; s+1 < hubs; s++ {
		s := s
		if _, err := kb.UpdateBridgeShards(s, s+1, func(bt *graph.BridgeTx) error {
			for i := 0; i < cfg.Bridges; i++ {
				a := nodes[s][rng.Intn(len(nodes[s]))]
				b := nodes[s+1][rng.Intn(len(nodes[s+1]))]
				if _, err := bt.CreateRel(a, b, "LINK", nil); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return kb, nil
}

// xshardFanout runs the query once per hub and merges, deduping by the
// returned relationship ID.
func xshardFanout(kb *core.ShardedKB, hubs int) (int, error) {
	seen := make(map[string]bool)
	for s := 0; s < hubs; s++ {
		res, err := kb.QueryInHub(fmt.Sprintf("H%d", s), xshardQuery, nil)
		if err != nil {
			return 0, err
		}
		for _, row := range res.Rows {
			seen[row[0].String()] = true
		}
	}
	return len(seen), nil
}

// RunXShard measures both strategies at every hub count. The expected row
// count per query is hubs*IntraRels + (hubs-1)*Bridges; a strategy
// returning anything else (a bridge double-counted or dropped) is an error,
// not a data point.
func RunXShard(cfg XShardConfig) ([]XShardPoint, error) {
	cfg = cfg.withDefaults()
	var out []XShardPoint
	for _, hubs := range cfg.Hubs {
		kb, err := buildXShard(cfg, hubs)
		if err != nil {
			return nil, err
		}
		wantRows := hubs*cfg.IntraRels + (hubs-1)*cfg.Bridges

		res, err := kb.Query(xshardQuery, nil)
		if err != nil {
			return nil, err
		}
		if len(res.Rows) != wantRows {
			return nil, fmt.Errorf("xshard: cross-shard query returned %d rows at %d hubs, want %d (bridges must bind exactly once)",
				len(res.Rows), hubs, wantRows)
		}
		merged, err := xshardFanout(kb, hubs)
		if err != nil {
			return nil, err
		}
		if merged != wantRows {
			return nil, fmt.Errorf("xshard: fan-out merge yielded %d rows at %d hubs, want %d",
				merged, hubs, wantRows)
		}

		cross := XShardPoint{Hubs: hubs, Strategy: "cross", Rows: wantRows}
		deadline := time.Now().Add(cfg.Window)
		for time.Now().Before(deadline) {
			if _, err := kb.Query(xshardQuery, nil); err != nil {
				return nil, err
			}
			cross.Queries++
		}
		cross.QPS = float64(cross.Queries) / cfg.Window.Seconds()

		fan := XShardPoint{Hubs: hubs, Strategy: "fanout", Rows: merged}
		deadline = time.Now().Add(cfg.Window)
		for time.Now().Before(deadline) {
			if _, err := xshardFanout(kb, hubs); err != nil {
				return nil, err
			}
			fan.Queries++
		}
		fan.QPS = float64(fan.Queries) / cfg.Window.Seconds()

		out = append(out, cross, fan)
	}
	return out, nil
}

// WriteXShard renders the series.
func WriteXShard(w io.Writer, pts []XShardPoint) {
	fmt.Fprintln(w, "cross-shard MATCH over a multi-shard view vs per-hub fan-out + client merge")
	fmt.Fprintf(w, "%6s  %8s  %8s  %10s  %10s\n",
		"hubs", "strategy", "rows", "queries", "qps")
	for _, p := range pts {
		fmt.Fprintf(w, "%6d  %8s  %8d  %10d  %10.0f\n",
			p.Hubs, p.Strategy, p.Rows, p.Queries, p.QPS)
	}
}
