// Package bench regenerates the paper's evaluation (§IV-D): Fig. 9 (naive
// per-patient trigger design, execution time vs. number of patients) and
// Fig. 10 (summary-based redesign: summary computation time grows with
// patients while trigger time stays flat), plus an ablation over the number
// of regions that §V's discussion of rule design motivates.
//
// Absolute times differ from the paper's Neo4j-on-56-core-Xeon setup; the
// shapes — naive total time linear in N, summary-based trigger time flat in
// N, summary design globally much cheaper — are the reproduction target.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/periodic"
	"repro/internal/trigger"
	"repro/internal/workload"
)

// simStart anchors the simulated clock.
var simStart = time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC)

// Config parameterizes one experiment run.
type Config struct {
	// PatientCounts is the sweep over N (e.g. 100, 1k, 10k, 100k).
	PatientCounts []int
	// Regions is the number of regions (the paper uses Italy's 20).
	Regions int
	// Days spreads each N over consecutive days; the paper's critical
	// condition compares two consecutive days, so the default is 2.
	Days int
	// Seed drives the deterministic workload.
	Seed int64
	// Batch is patients per transaction (1 = one trigger activation per
	// transaction, the paper's setting).
	Batch int
	// Growth is the day-over-day admission growth factor; the paper's
	// critical condition is 10% growth, so the default of 1.3 keeps the
	// alerting rules firing at every scale.
	Growth float64
	// Reps repeats each measurement and reports the median, damping noise
	// from shared machines (default 1).
	Reps int
}

// DefaultConfig is a laptop-scale sweep.
func DefaultConfig() Config {
	return Config{
		PatientCounts: []int{100, 1000, 10000},
		Regions:       20,
		Days:          2,
		Seed:          1,
		Batch:         1,
	}
}

func (c Config) withDefaults() Config {
	if len(c.PatientCounts) == 0 {
		c.PatientCounts = DefaultConfig().PatientCounts
	}
	if c.Regions <= 0 {
		c.Regions = 20
	}
	if c.Days <= 0 {
		c.Days = 2
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.Growth <= 0 {
		c.Growth = 1.3
	}
	if c.Reps <= 0 {
		c.Reps = 1
	}
	return c
}

// medianDuration returns the median of ds (ds is sorted in place).
func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return ds[len(ds)/2]
}

// dayCounts splits n admissions over days with day-over-day growth, so the
// later days carry proportionally more admissions.
func dayCounts(n, days int, growth float64) []int {
	weights := make([]float64, days)
	total := 0.0
	w := 1.0
	for d := 0; d < days; d++ {
		weights[d] = w
		total += w
		w *= growth
	}
	counts := make([]int, days)
	assigned := 0
	for d := 0; d < days; d++ {
		counts[d] = int(float64(n) * weights[d] / total)
		assigned += counts[d]
	}
	counts[days-1] += n - assigned
	return counts
}

// newKB builds a knowledge base on a manual clock for one measurement.
func newKB() *core.KnowledgeBase {
	return core.New(core.Config{Clock: periodic.NewManualClock(simStart)})
}

// histSummary returns the count/mean/quantile summary of the named latency
// histogram from kb's metrics registry, or "" when it is absent or empty.
// The bench reports these alongside the figure tables: the table gives the
// paper's aggregate axes, the histogram shows the per-operation distribution
// behind them.
func histSummary(kb *core.KnowledgeBase, name string) string {
	for _, fam := range kb.Metrics().Gather() {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Samples {
			if s.Hist != nil && s.Hist.Count > 0 {
				return s.Hist.Summary()
			}
		}
	}
	return ""
}

// Fig9Point is one measurement of the naive design.
type Fig9Point struct {
	Patients    int
	Elapsed     time.Duration // total time to process all patient events
	PerTrigger  time.Duration // Elapsed / Patients
	GuardChecks int
	Alerts      int
	AlertQuery  string // rkm_trigger_alert_query_seconds summary (last rep)
}

// RunFig9 measures the naive design: a rule whose guard is the creation of
// a patient and whose alert compares the two-day admission counters of the
// patient's region, executed once per patient.
func RunFig9(cfg Config) ([]Fig9Point, error) {
	cfg = cfg.withDefaults()
	var out []Fig9Point
	for _, n := range cfg.PatientCounts {
		var best Fig9Point
		var elapsed []time.Duration
		for rep := 0; rep < cfg.Reps; rep++ {
			p, err := runFig9Once(cfg, n)
			if err != nil {
				return nil, err
			}
			elapsed = append(elapsed, p.Elapsed)
			best = p
		}
		best.Elapsed = medianDuration(elapsed)
		if n > 0 {
			best.PerTrigger = best.Elapsed / time.Duration(n)
		}
		out = append(out, best)
	}
	return out, nil
}

func runFig9Once(cfg Config, n int) (Fig9Point, error) {
	kb := newKB()
	sc, err := workload.Build(kb, workload.Config{Seed: cfg.Seed, Regions: cfg.Regions})
	if err != nil {
		return Fig9Point{}, err
	}
	name, guard, alert := workload.NaiveRuleSpec()
	if err := kb.InstallRule(trigger.Rule{
		Name:  name,
		Hub:   "R",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Patient"},
		Guard: guard,
		Alert: alert,
	}); err != nil {
		return Fig9Point{}, err
	}

	counts := dayCounts(n, cfg.Days, cfg.Growth)
	point := Fig9Point{Patients: n}
	runtime.GC()
	start := time.Now()
	for day, count := range counts {
		adms := sc.Admissions(count, day)
		if err := sc.Admit(kb, adms, workload.AdmitOptions{
			Batch:        cfg.Batch,
			LinkHospital: true,
		}); err != nil {
			return point, err
		}
	}
	point.Elapsed = time.Since(start)
	if n > 0 {
		point.PerTrigger = point.Elapsed / time.Duration(n)
	}
	alerts, err := kb.Alerts()
	if err != nil {
		return point, err
	}
	point.Alerts = len(alerts)
	point.GuardChecks = n
	point.AlertQuery = histSummary(kb, "rkm_trigger_alert_query_seconds")
	return point, nil
}

// Fig10Point is one measurement of the summary-based design.
type Fig10Point struct {
	Patients    int
	SummaryTime time.Duration // maintaining per-region daily statistics
	TriggerTime time.Duration // closing each day and firing per-region rules
	Triggers    int           // rule activations (regions × days with data)
	Alerts      int
	AlertQuery  string // rkm_trigger_alert_query_seconds summary (last rep)
}

// RunFig10 measures the redesigned rules: patient creation maintains
// per-(region, day) statistics (summary computation), and a rule fires once
// per region per day on the daily statistic nodes (trigger execution).
func RunFig10(cfg Config) ([]Fig10Point, error) {
	cfg = cfg.withDefaults()
	var out []Fig10Point
	for _, n := range cfg.PatientCounts {
		var best Fig10Point
		var sums, trigs []time.Duration
		for rep := 0; rep < cfg.Reps; rep++ {
			p, err := runFig10Once(cfg, n)
			if err != nil {
				return nil, err
			}
			sums = append(sums, p.SummaryTime)
			trigs = append(trigs, p.TriggerTime)
			best = p
		}
		best.SummaryTime = medianDuration(sums)
		best.TriggerTime = medianDuration(trigs)
		out = append(out, best)
	}
	return out, nil
}

func runFig10Once(cfg Config, n int) (Fig10Point, error) {
	kb := newKB()
	sc, err := workload.Build(kb, workload.Config{Seed: cfg.Seed, Regions: cfg.Regions})
	if err != nil {
		return Fig10Point{}, err
	}
	name, guard, alert := workload.SummaryRuleSpec()
	if err := kb.InstallRule(trigger.Rule{
		Name:  name,
		Hub:   "R",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "DailyRegionStat"},
		Guard: guard,
		Alert: alert,
	}); err != nil {
		return Fig10Point{}, err
	}

	counts := dayCounts(n, cfg.Days, cfg.Growth)
	point := Fig10Point{Patients: n}
	for day, count := range counts {
		adms := sc.Admissions(count, day)
		runtime.GC()
		t0 := time.Now()
		if err := sc.Admit(kb, adms, workload.AdmitOptions{
			Batch:         cfg.Batch,
			LinkHospital:  true,
			MaintainStats: true,
		}); err != nil {
			return point, err
		}
		point.SummaryTime += time.Since(t0)

		runtime.GC()
		t1 := time.Now()
		if err := sc.CloseDay(kb, day); err != nil {
			return point, err
		}
		point.TriggerTime += time.Since(t1)
		if day > 0 {
			point.Triggers += cfg.Regions
		}
	}
	alerts, err := kb.Alerts()
	if err != nil {
		return point, err
	}
	point.Alerts = len(alerts)
	point.AlertQuery = histSummary(kb, "rkm_trigger_alert_query_seconds")
	return point, nil
}

// AblationPoint compares the two designs at one (regions, patients) cell.
// Baseline is the cost of inserting the same stream with no rules at all;
// the overheads (design cost minus baseline) isolate what the reactive
// machinery adds, which is the comparison the paper's Fig. 9/Fig. 10 pair
// makes.
type AblationPoint struct {
	Regions         int
	Patients        int
	Baseline        time.Duration
	Naive           time.Duration
	Summary         time.Duration // summary maintenance + triggers
	NaiveOverhead   time.Duration
	SummaryOverhead time.Duration
	Speedup         float64 // overhead ratio naive/summary
}

// runBaseline inserts the stream with no rules installed.
func runBaseline(cfg Config, n int) (time.Duration, error) {
	kb := newKB()
	sc, err := workload.Build(kb, workload.Config{Seed: cfg.Seed, Regions: cfg.Regions})
	if err != nil {
		return 0, err
	}
	counts := dayCounts(n, cfg.Days, cfg.Growth)
	runtime.GC()
	start := time.Now()
	for day, count := range counts {
		adms := sc.Admissions(count, day)
		if err := sc.Admit(kb, adms, workload.AdmitOptions{
			Batch:        cfg.Batch,
			LinkHospital: true,
		}); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// RunAblation sweeps the number of regions to show where summarization pays
// off (§V: "data summarization in rule design may lead to significant
// global savings"). Every cell is measured reps times and medians are
// reported: the overhead subtraction amplifies machine noise otherwise.
func RunAblation(patients int, regionSweep []int, seed int64) ([]AblationPoint, error) {
	return RunAblationReps(patients, regionSweep, seed, 3)
}

// RunAblationReps is RunAblation with an explicit repetition count.
func RunAblationReps(patients int, regionSweep []int, seed int64, reps int) ([]AblationPoint, error) {
	if len(regionSweep) == 0 {
		regionSweep = []int{5, 20, 100}
	}
	if reps <= 0 {
		reps = 1
	}
	var out []AblationPoint
	for _, r := range regionSweep {
		cfg := Config{PatientCounts: []int{patients}, Regions: r, Days: 2, Seed: seed, Batch: 1, Reps: reps}
		f9, err := RunFig9(cfg)
		if err != nil {
			return nil, err
		}
		f10, err := RunFig10(cfg)
		if err != nil {
			return nil, err
		}
		var bases []time.Duration
		for rep := 0; rep < reps; rep++ {
			b, err := runBaseline(cfg, patients)
			if err != nil {
				return nil, err
			}
			bases = append(bases, b)
		}
		base := medianDuration(bases)
		summaryTotal := f10[0].SummaryTime + f10[0].TriggerTime
		pt := AblationPoint{
			Regions:  r,
			Patients: patients,
			Baseline: base,
			Naive:    f9[0].Elapsed,
			Summary:  summaryTotal,
		}
		pt.NaiveOverhead = pt.Naive - base
		if pt.NaiveOverhead < 0 {
			pt.NaiveOverhead = 0
		}
		pt.SummaryOverhead = summaryTotal - base
		if pt.SummaryOverhead < 0 {
			pt.SummaryOverhead = 0
		}
		if pt.SummaryOverhead > 0 {
			pt.Speedup = float64(pt.NaiveOverhead) / float64(pt.SummaryOverhead)
		}
		out = append(out, pt)
	}
	return out, nil
}

// RuleScalingPoint measures event-processing cost against the number of
// installed rules watching the same event.
type RuleScalingPoint struct {
	Rules      int
	Patients   int
	Elapsed    time.Duration
	PerPatient time.Duration
}

// RunRuleScaling installs one real alerting rule plus (rules-1) additional
// guard-only rules on the same patient-creation event and measures the
// ingest cost, isolating the dispatch-and-guard overhead of growing rule
// sets — the rule-design-cost dimension §V opens up.
func RunRuleScaling(patients int, ruleCounts []int, seed int64) ([]RuleScalingPoint, error) {
	if len(ruleCounts) == 0 {
		ruleCounts = []int{1, 4, 16, 64}
	}
	var out []RuleScalingPoint
	for _, k := range ruleCounts {
		if k < 1 {
			k = 1
		}
		kb := newKB()
		sc, err := workload.Build(kb, workload.Config{Seed: seed, Regions: 20})
		if err != nil {
			return nil, err
		}
		name, guard, alert := workload.NaiveRuleSpec()
		if err := kb.InstallRule(trigger.Rule{
			Name:  name,
			Hub:   "R",
			Event: trigger.Event{Kind: trigger.CreateNode, Label: "Patient"},
			Guard: guard,
			Alert: alert,
		}); err != nil {
			return nil, err
		}
		for i := 1; i < k; i++ {
			if err := kb.InstallRule(trigger.Rule{
				Name:  fmt.Sprintf("aux-%d", i),
				Hub:   "R",
				Event: trigger.Event{Kind: trigger.CreateNode, Label: "Patient"},
				Guard: "NEW.day < 0", // never passes: measures dispatch + guard cost
				Alert: "RETURN 1 AS one",
			}); err != nil {
				return nil, err
			}
		}
		counts := dayCounts(patients, 2, 1.3)
		runtime.GC()
		start := time.Now()
		for day, count := range counts {
			adms := sc.Admissions(count, day)
			if err := sc.Admit(kb, adms, workload.AdmitOptions{Batch: 1, LinkHospital: true}); err != nil {
				return nil, err
			}
		}
		pt := RuleScalingPoint{Rules: k, Patients: patients, Elapsed: time.Since(start)}
		if patients > 0 {
			pt.PerPatient = pt.Elapsed / time.Duration(patients)
		}
		out = append(out, pt)
	}
	return out, nil
}

// ---- reporting ----

// WriteRuleScaling prints the rule-count scaling series.
func WriteRuleScaling(w io.Writer, pts []RuleScalingPoint) {
	fmt.Fprintln(w, "Rule scaling — ingest cost vs. number of installed rules on one event")
	fmt.Fprintf(w, "%8s  %10s  %14s  %14s\n", "rules", "patients", "total", "per-patient")
	for _, p := range pts {
		fmt.Fprintf(w, "%8d  %10d  %14s  %14s\n",
			p.Rules, p.Patients, p.Elapsed.Round(time.Microsecond),
			p.PerPatient.Round(time.Nanosecond))
	}
}

// WriteFig9 prints the Fig. 9 series in the paper's axes (patients,
// trigger execution time), then the alert-query latency distribution behind
// each row.
func WriteFig9(w io.Writer, pts []Fig9Point) {
	fmt.Fprintln(w, "Figure 9 — execution time for triggers enacted at each new patient")
	fmt.Fprintf(w, "%12s  %14s  %14s  %8s\n", "patients", "total", "per-trigger", "alerts")
	for _, p := range pts {
		fmt.Fprintf(w, "%12d  %14s  %14s  %8d\n",
			p.Patients, p.Elapsed.Round(time.Microsecond),
			p.PerTrigger.Round(time.Nanosecond), p.Alerts)
	}
	writeAlertQuerySummaries(w, pts, func(p Fig9Point) (int, string) { return p.Patients, p.AlertQuery })
}

// writeAlertQuerySummaries prints one alert-query latency histogram line per
// point that recorded one (captured on the point's last repetition).
func writeAlertQuerySummaries[T any](w io.Writer, pts []T, get func(T) (int, string)) {
	printed := false
	for _, p := range pts {
		n, s := get(p)
		if s == "" {
			continue
		}
		if !printed {
			fmt.Fprintln(w, "alert-query latency (rkm_trigger_alert_query_seconds, last rep):")
			printed = true
		}
		fmt.Fprintf(w, "%12d  %s\n", n, s)
	}
}

// WriteFig10 prints the Fig. 10 series (summary computation time and
// trigger execution time per patient count).
func WriteFig10(w io.Writer, pts []Fig10Point) {
	fmt.Fprintln(w, "Figure 10 — summary computation and per-summary trigger execution")
	fmt.Fprintf(w, "%12s  %14s  %14s  %9s  %8s\n",
		"patients", "summary-time", "trigger-time", "triggers", "alerts")
	for _, p := range pts {
		fmt.Fprintf(w, "%12d  %14s  %14s  %9d  %8d\n",
			p.Patients, p.SummaryTime.Round(time.Microsecond),
			p.TriggerTime.Round(time.Microsecond), p.Triggers, p.Alerts)
	}
	writeAlertQuerySummaries(w, pts, func(p Fig10Point) (int, string) { return p.Patients, p.AlertQuery })
}

// WriteAblation prints the naive-vs-summary comparison across region counts.
func WriteAblation(w io.Writer, pts []AblationPoint) {
	fmt.Fprintln(w, "Ablation — naive vs. summary rule overhead across region counts")
	fmt.Fprintf(w, "%8s  %10s  %12s  %12s  %12s  %8s\n",
		"regions", "patients", "baseline", "naive-ovh", "summary-ovh", "speedup")
	for _, p := range pts {
		fmt.Fprintf(w, "%8d  %10d  %12s  %12s  %12s  %7.1fx\n",
			p.Regions, p.Patients, p.Baseline.Round(time.Microsecond),
			p.NaiveOverhead.Round(time.Microsecond),
			p.SummaryOverhead.Round(time.Microsecond), p.Speedup)
	}
}
