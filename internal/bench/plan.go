package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/value"
)

// PlanPoint compares event-processing throughput with many installed rules
// between the retired per-event-parse behavior (cold: every guard and alert
// is parsed and compiled for every event) and the staged pipeline (cached:
// guards prepared once, alert plans served from a shared PlanCache). Both
// arms evaluate the identical guard and alert workload; the only difference
// is where parsing and compilation happen.
type PlanPoint struct {
	Rules      int
	Events     int
	Cold       time.Duration
	Cached     time.Duration
	ColdRate   float64 // events/sec, per-event parse + compile
	CachedRate float64 // events/sec, prepared pipeline
	Speedup    float64 // CachedRate / ColdRate
	Cache      cypher.PlanCacheStats
}

// planWorkload is one rule set over a shared store: per rule an equality
// guard on the event binding and an alert query over the graph.
type planWorkload struct {
	store     *graph.Store
	guardSrc  []string
	alertSrc  []string
	guards    []*cypher.CompiledExpr
	alertHits int
}

func buildPlanWorkload(rules int) (*planWorkload, error) {
	w := &planWorkload{
		guardSrc: make([]string, rules),
		alertSrc: make([]string, rules),
		guards:   make([]*cypher.CompiledExpr, rules),
	}
	w.store = graph.NewStore()
	err := w.store.Update(func(tx *graph.Tx) error {
		for i := 0; i < 200; i++ {
			if _, err := tx.CreateNode([]string{"Person"}, map[string]value.Value{
				"age": value.Int(int64(i % 90))}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for k := 0; k < rules; k++ {
		// Exactly one guard passes per event (event age cycles over the rule
		// count), so every event pays rules guard evaluations plus one alert.
		w.guardSrc[k] = fmt.Sprintf("NEW.age = %d AND NEW.severity >= 0", k)
		w.alertSrc[k] = fmt.Sprintf(
			"MATCH (p:Person) WHERE p.age > NEW.age - %d RETURN count(*) AS n", k%7)
		ce, err := cypher.PrepareExpr(w.guardSrc[k])
		if err != nil {
			return nil, err
		}
		w.guards[k] = ce
	}
	return w, nil
}

func (w *planWorkload) binding(event int) map[string]value.Value {
	return map[string]value.Value{
		"NEW": value.Map(map[string]value.Value{
			"age":      value.Int(int64(event % len(w.guardSrc))),
			"severity": value.Int(int64(event % 3)),
		}),
	}
}

// runCold processes events the way the retired tree-walk engine did: parse
// every guard for every event, and parse + plan + execute every passing
// rule's alert query from scratch.
func (w *planWorkload) runCold(events int) (time.Duration, error) {
	tx := w.store.Begin(graph.ReadOnly)
	defer tx.Rollback()
	runtime.GC()
	start := time.Now()
	for e := 0; e < events; e++ {
		opts := &cypher.Options{Bindings: w.binding(e)}
		for k := range w.guardSrc {
			g, err := cypher.ParseExpr(w.guardSrc[k])
			if err != nil {
				return 0, err
			}
			ok, err := cypher.EvalPredicate(tx, g, opts)
			if err != nil {
				return 0, err
			}
			if !ok {
				continue
			}
			if _, err := cypher.Run(tx, w.alertSrc[k], opts); err != nil {
				return 0, err
			}
		}
	}
	return time.Since(start), nil
}

// runCached processes the same events through the staged pipeline: guards
// were prepared once at install time, alert plans come from the shared
// cache, and steady state performs no parsing.
func (w *planWorkload) runCached(events int, cache *cypher.PlanCache) (time.Duration, error) {
	tx := w.store.Begin(graph.ReadOnly)
	defer tx.Rollback()
	runtime.GC()
	start := time.Now()
	for e := 0; e < events; e++ {
		opts := &cypher.Options{Bindings: w.binding(e)}
		for k := range w.guards {
			ok, err := w.guards[k].EvalBool(tx, opts)
			if err != nil {
				return 0, err
			}
			if !ok {
				continue
			}
			plan, err := cache.Get(w.alertSrc[k])
			if err != nil {
				return 0, err
			}
			if _, err := plan.Execute(tx, opts); err != nil {
				return 0, err
			}
			w.alertHits++
		}
	}
	return time.Since(start), nil
}

// RunPlan measures the prepared-pipeline speedup for each rule count.
// events <= 0 picks a default sized to the rule count.
func RunPlan(ruleCounts []int, events int, reps int) ([]PlanPoint, error) {
	if len(ruleCounts) == 0 {
		ruleCounts = []int{10, 100, 250}
	}
	if reps <= 0 {
		reps = 1
	}
	var out []PlanPoint
	for _, rules := range ruleCounts {
		n := events
		if n <= 0 {
			n = 200000 / rules // keep total guard evaluations comparable
			if n < 200 {
				n = 200
			}
		}
		w, err := buildPlanWorkload(rules)
		if err != nil {
			return nil, err
		}
		var colds, cacheds []time.Duration
		cache := cypher.NewPlanCache(0)
		for r := 0; r < reps; r++ {
			cold, err := w.runCold(n)
			if err != nil {
				return nil, err
			}
			cached, err := w.runCached(n, cache)
			if err != nil {
				return nil, err
			}
			colds = append(colds, cold)
			cacheds = append(cacheds, cached)
		}
		pt := PlanPoint{
			Rules:  rules,
			Events: n,
			Cold:   medianDuration(colds),
			Cached: medianDuration(cacheds),
			Cache:  cache.Stats(),
		}
		if pt.Cold > 0 {
			pt.ColdRate = float64(n) / pt.Cold.Seconds()
		}
		if pt.Cached > 0 {
			pt.CachedRate = float64(n) / pt.Cached.Seconds()
		}
		if pt.ColdRate > 0 {
			pt.Speedup = pt.CachedRate / pt.ColdRate
		}
		out = append(out, pt)
	}
	return out, nil
}

// WritePlan prints the prepared-pipeline comparison.
func WritePlan(w io.Writer, pts []PlanPoint) {
	fmt.Fprintln(w, "Plan pipeline — event throughput, per-event parse vs prepared plans")
	fmt.Fprintf(w, "%8s  %8s  %12s  %12s  %12s  %12s  %8s\n",
		"rules", "events", "cold", "cached", "cold-ev/s", "cached-ev/s", "speedup")
	for _, p := range pts {
		fmt.Fprintf(w, "%8d  %8d  %12s  %12s  %12.0f  %12.0f  %7.1fx\n",
			p.Rules, p.Events, p.Cold.Round(time.Microsecond),
			p.Cached.Round(time.Microsecond), p.ColdRate, p.CachedRate, p.Speedup)
	}
	for _, p := range pts {
		total := p.Cache.Hits + p.Cache.Misses
		if total == 0 {
			continue
		}
		fmt.Fprintf(w, "%8d  plan cache: %d plans, %d/%d hits (%.1f%%)\n",
			p.Rules, p.Cache.Size, p.Cache.Hits, total,
			100*float64(p.Cache.Hits)/float64(total))
	}
}
