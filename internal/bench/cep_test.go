package bench

import "testing"

func TestCEPSmoke(t *testing.T) {
	pts, err := RunCEP(SmokeCEPConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 2 windows x 2 modes.
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	for _, p := range pts {
		if p.Events == 0 {
			t.Errorf("window %s mode %s: no events", p.Window, p.Mode)
		}
		if p.Mode == "cep" && p.Alerts == 0 {
			t.Errorf("window %s: composite rules produced no alerts", p.Window)
		}
	}
	// Both modes ingest the identical seeded stream.
	if pts[0].Events != pts[1].Events {
		t.Errorf("stream mismatch: cep=%d naive=%d events", pts[0].Events, pts[1].Events)
	}
}
