package bench

import (
	"strings"
	"testing"
)

func TestRunFedLagSmall(t *testing.T) {
	cfg := Config{PatientCounts: []int{20}, Seed: 1}
	pts, err := RunFedLag(cfg, []int{4, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	for _, p := range pts {
		if p.Received != 20 {
			t.Fatalf("batch %d: received %d of 20 alerts", p.Batch, p.Received)
		}
		if p.Elapsed <= 0 || p.PerAlert <= 0 {
			t.Errorf("batch %d: non-positive timings %+v", p.Batch, p)
		}
	}
	// batch=4 over 20 alerts is 5 requests; batch=32 is 1.
	if pts[0].Requests != 5 || pts[1].Requests != 1 {
		t.Errorf("requests: %d and %d, want 5 and 1", pts[0].Requests, pts[1].Requests)
	}

	var sb strings.Builder
	WriteFed(&sb, pts)
	out := sb.String()
	for _, want := range []string{"Federated replication", "batch", "push latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteFed output missing %q:\n%s", want, out)
		}
	}
}
