package bench

import (
	"strings"
	"testing"
	"time"
)

func TestRunFig9ShapeSmall(t *testing.T) {
	cfg := Config{PatientCounts: []int{50, 200}, Regions: 4, Days: 2, Seed: 1, Batch: 1}
	pts, err := RunFig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Patients != 50 || pts[1].Patients != 200 {
		t.Error("sweep order")
	}
	// More patients must cost more total time (linear-ish growth).
	if pts[1].Elapsed <= pts[0].Elapsed {
		t.Errorf("naive total time should grow: %v then %v", pts[0].Elapsed, pts[1].Elapsed)
	}
	// Day-1 growth fires alerts.
	if pts[1].Alerts == 0 {
		t.Error("expected alerts at larger N")
	}
	if pts[0].PerTrigger <= 0 {
		t.Error("per-trigger time")
	}
}

func TestRunFig10ShapeSmall(t *testing.T) {
	cfg := Config{PatientCounts: []int{50, 400}, Regions: 4, Days: 2, Seed: 1, Batch: 10}
	pts, err := RunFig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatal("points")
	}
	// Summary computation grows with patients.
	if pts[1].SummaryTime <= pts[0].SummaryTime {
		t.Errorf("summary time should grow with N: %v then %v",
			pts[0].SummaryTime, pts[1].SummaryTime)
	}
	// Trigger executions depend only on regions × (days-1).
	if pts[0].Triggers != 4 || pts[1].Triggers != 4 {
		t.Errorf("trigger counts: %d, %d (want 4, 4)", pts[0].Triggers, pts[1].Triggers)
	}
}

func TestRunAblation(t *testing.T) {
	pts, err := RunAblation(300, []int{2, 6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Regions != 2 || pts[1].Regions != 6 {
		t.Fatalf("points: %+v", pts)
	}
	for _, p := range pts {
		if p.Naive <= 0 || p.Summary <= 0 {
			t.Errorf("non-positive timings: %+v", p)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := Config{}.withDefaults()
	if len(c.PatientCounts) == 0 || c.Regions != 20 || c.Days != 2 || c.Batch != 1 {
		t.Errorf("defaults: %+v", c)
	}
}

func TestWriters(t *testing.T) {
	var sb strings.Builder
	WriteFig9(&sb, []Fig9Point{{Patients: 10, Elapsed: time.Millisecond, PerTrigger: 100 * time.Microsecond, Alerts: 1}})
	if !strings.Contains(sb.String(), "Figure 9") || !strings.Contains(sb.String(), "10") {
		t.Error("fig9 output")
	}
	sb.Reset()
	WriteFig10(&sb, []Fig10Point{{Patients: 10, SummaryTime: time.Millisecond, TriggerTime: time.Millisecond, Triggers: 4}})
	if !strings.Contains(sb.String(), "Figure 10") {
		t.Error("fig10 output")
	}
	sb.Reset()
	WriteAblation(&sb, []AblationPoint{{Regions: 5, Patients: 100, Naive: time.Second, Summary: time.Millisecond, Speedup: 1000}})
	if !strings.Contains(sb.String(), "Ablation") || !strings.Contains(sb.String(), "1000.0x") {
		t.Error("ablation output")
	}
}

func TestRunRuleScaling(t *testing.T) {
	pts, err := RunRuleScaling(200, []int{1, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Rules != 1 || pts[1].Rules != 8 {
		t.Fatalf("points: %+v", pts)
	}
	// More rules on the same event cannot be cheaper.
	if pts[1].Elapsed < pts[0].Elapsed/2 {
		t.Errorf("rule scaling suspicious: %v then %v", pts[0].Elapsed, pts[1].Elapsed)
	}
	var sb strings.Builder
	WriteRuleScaling(&sb, pts)
	if !strings.Contains(sb.String(), "Rule scaling") {
		t.Error("writer output")
	}
}
