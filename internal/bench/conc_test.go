package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestConcSmoke runs the concurrency series at smoke scale and checks the
// invariants that must hold at any scale: readers make progress in both
// modes, the writer makes progress, every commit is counted and fsyncs
// never exceed commits.
func TestConcSmoke(t *testing.T) {
	cfg := SmokeConcConfig()

	reads, err := RunConcReads(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(cfg.Readers); len(reads) != want {
		t.Fatalf("got %d read points, want %d", len(reads), want)
	}
	for _, p := range reads {
		if p.Reads <= 0 {
			t.Errorf("%d %s readers made no reads", p.Readers, p.Mode)
		}
		if p.WriterTxs <= 0 {
			t.Errorf("%d %s: writer made no progress", p.Readers, p.Mode)
		}
	}

	commits, err := RunConcCommits(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(commits) != len(cfg.Writers) {
		t.Fatalf("got %d commit points, want %d", len(commits), len(cfg.Writers))
	}
	for _, p := range commits {
		if want := int64(p.Writers * cfg.CommitsPerWriter); p.Commits != want {
			t.Errorf("%d writers: %d commits counted, want %d", p.Writers, p.Commits, want)
		}
		if p.Fsyncs < 1 || p.Fsyncs > p.Commits {
			t.Errorf("%d writers: %d fsyncs for %d commits", p.Writers, p.Fsyncs, p.Commits)
		}
	}

	var buf bytes.Buffer
	WriteConc(&buf, reads, commits)
	for _, col := range []string{"reads/sec", "fsyncs/tx", "snapshot", "rwmutex"} {
		if !strings.Contains(buf.String(), col) {
			t.Errorf("WriteConc output missing %q", col)
		}
	}
}
