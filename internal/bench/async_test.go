package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAsyncPipelineSmoke(t *testing.T) {
	pts, err := RunAsyncPipeline(SmokeAsyncConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3", len(pts))
	}
	byMode := map[string]AsyncPoint{}
	for _, p := range pts {
		if p.Achieved <= 0 {
			t.Errorf("%s: tx/sec = %f", p.Mode, p.Achieved)
		}
		byMode[p.Mode] = p
	}
	// Deferral changes when alerts appear, not whether: both rule modes
	// must materialize the same alert set (v in 91..99 per 100 writes).
	if byMode["sync"].Alerts == 0 || byMode["sync"].Alerts != byMode["async"].Alerts {
		t.Errorf("alerts: sync=%d async=%d, want equal and non-zero",
			byMode["sync"].Alerts, byMode["async"].Alerts)
	}
	if byMode["baseline"].Alerts != 0 {
		t.Errorf("baseline alerts = %d, want 0", byMode["baseline"].Alerts)
	}

	var buf bytes.Buffer
	WriteAsync(&buf, pts)
	for _, want := range []string{"mode", "baseline", "sync", "async", "drain"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("table missing %q:\n%s", want, buf.String())
		}
	}
}
