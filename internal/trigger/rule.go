package trigger

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/cypher"
	"repro/internal/metrics"
)

// Errors reported by rule compilation and the engine.
var (
	ErrRuleExists       = errors.New("trigger: rule already installed")
	ErrRuleNotFound     = errors.New("trigger: rule not found")
	ErrEmptyRule        = errors.New("trigger: rule needs a guard, an alert or an action")
	ErrCascadeDepth     = errors.New("trigger: cascade depth limit exceeded")
	ErrNonTerminating   = errors.New("trigger: rule introduces a triggering cycle")
	ErrGuardNotIntraHub = errors.New("trigger: guard reaches outside the rule's hub")
	// ErrAsyncFallback is returned by an AsyncSink to decline an activation
	// without failing the transaction: the engine then evaluates the rule
	// synchronously, as if no sink were installed. Embedders use it while
	// their pipeline is not (yet) running.
	ErrAsyncFallback = errors.New("trigger: async pipeline not running")
)

// Phase selects when a rule's alert query runs relative to the triggering
// transaction, mirroring the APOC trigger phases the paper's Fig. 6/7
// translation targets (§IV-B) and the coupling modes of the active-database
// literature.
type Phase int

// Rule phases.
const (
	// Before runs the whole rule — guard, alert query, alert-node
	// production — inside the writing transaction (APOC's "before" phase;
	// immediate coupling). This is the default.
	Before Phase = iota
	// AfterAsync runs only the guard inside the writing transaction;
	// passing bindings are handed to the engine's AsyncSink and the alert
	// query runs later against a committed snapshot, producing alert nodes
	// in a follow-up transaction (APOC's "afterAsync" phase; detached
	// coupling). Engines without an AsyncSink fall back to synchronous
	// evaluation.
	AfterAsync
)

// String returns the APOC-style phase name.
func (p Phase) String() string {
	switch p {
	case AfterAsync:
		return "afterAsync"
	default:
		return "before"
	}
}

// ParsePhase parses an APOC-style phase name. The empty string means Before.
func ParsePhase(s string) (Phase, error) {
	switch s {
	case "", "before":
		return Before, nil
	case "afterAsync", "afterasync", "async":
		return AfterAsync, nil
	default:
		return Before, fmt.Errorf("trigger: unknown phase %q (want before or afterAsync)", s)
	}
}

// Rule is the paper's reactive-rule quadruple <Event, Guard, Alert,
// AlertNode>, plus an optional fully reactive Action (the generalization
// §V discusses).
//
//   - Event selects the graph changes that activate the rule.
//   - Guard is a Cypher expression evaluated with the transition variables
//     (NEW, OLD, …) bound; it should be a cheap, intra-hub check. Empty
//     means "always true".
//   - Alert is a Cypher query, arbitrarily complex and possibly inter-hub;
//     each row it returns denotes a critical situation.
//   - For every critical row the engine creates an Alert node labeled
//     AlertLabel carrying the mandatory properties rule, hub and dateTime
//     plus one property per result column — unless Action is set, in which
//     case the engine runs Action instead, with the row's columns and the
//     transition variables bound.
type Rule struct {
	// Name identifies the rule (unique within an engine).
	Name string
	// Hub is the knowledge hub that owns (authored) the rule.
	Hub string
	// Event selects the activating graph changes.
	Event Event
	// Guard is an optional Cypher predicate over the transition variables.
	Guard string
	// Alert is an optional Cypher query; rows denote critical situations.
	Alert string
	// AlertLabel overrides the label of produced alert nodes ("Alert").
	AlertLabel string
	// Action, when set, replaces alert-node creation with a Cypher write
	// statement executed once per critical row (or once per activation if
	// Alert is empty).
	Action string
	// Phase selects synchronous (Before, default) or asynchronous
	// (AfterAsync) alert evaluation.
	Phase Phase
	// Composite, when non-empty, marks this rule as one compiled step of a
	// composite (CEP) rule with that name: a passing guard does not run an
	// alert query but is handed to the engine's StepSink, which advances
	// the composite rule's durable partial-match automaton inside the same
	// transaction (internal/cep compiles its operators down to such
	// rules). StepIndex is the step's position within the composite rule.
	Composite string
	StepIndex int
}

// compiledRule holds the rule's prepared artifacts: the guard as a
// CompiledExpr and the alert/action as Plans. All three are compiled once
// at install time; steady-state evaluation binds NEW/OLD and runs closures,
// with no per-event parsing or AST walking.
type compiledRule struct {
	Rule
	guard  *cypher.CompiledExpr
	alert  *cypher.Plan
	action *cypher.Plan
	paused atomic.Bool
	seq    int

	// firing statistics, updated atomically outside the engine lock
	nChecks      atomic.Int64
	nActivations atomic.Int64
	nAlertNodes  atomic.Int64

	// per-rule metric children, resolved once at Install (nil when the
	// engine is uninstrumented; nil instruments no-op)
	mFired    *metrics.Counter
	mRejected *metrics.Counter
}

func compileRule(r Rule, defaultAlertLabel string) (*compiledRule, error) {
	if r.Name == "" {
		return nil, fmt.Errorf("trigger: rule needs a name")
	}
	// Composite step rules may be bare selectors: the step event itself is
	// the payload, delivered to the StepSink.
	if r.Guard == "" && r.Alert == "" && r.Action == "" && r.Composite == "" {
		return nil, fmt.Errorf("%w: %s", ErrEmptyRule, r.Name)
	}
	if r.AlertLabel == "" {
		r.AlertLabel = defaultAlertLabel
	}
	cr := &compiledRule{Rule: r}
	if r.Guard != "" {
		g, err := cypher.PrepareExpr(r.Guard)
		if err != nil {
			return nil, fmt.Errorf("trigger: rule %s guard: %w", r.Name, err)
		}
		cr.guard = g
	}
	if r.Alert != "" {
		plan, err := cypher.Prepare(r.Alert)
		if err != nil {
			return nil, fmt.Errorf("trigger: rule %s alert: %w", r.Name, err)
		}
		cr.alert = plan
	}
	if r.Action != "" {
		plan, err := cypher.Prepare(r.Action)
		if err != nil {
			return nil, fmt.Errorf("trigger: rule %s action: %w", r.Name, err)
		}
		cr.action = plan
	}
	return cr, nil
}

// footprint summarizes what the rule can read and write, for
// classification and termination analysis.
type footprint struct {
	readLabels   []string
	readRelTypes []string
	created      []string // node labels the actions may create
	createdRels  []string
	setsLabels   []string
	setsProps    []string
	removesProps []string
	deletes      bool
}

func (cr *compiledRule) footprint() footprint {
	var fp footprint
	add := func(info *cypher.StatementInfo, write bool) {
		fp.readLabels = append(fp.readLabels, info.MatchedNodeLabels...)
		fp.readRelTypes = append(fp.readRelTypes, info.MatchedRelTypes...)
		if write {
			fp.created = append(fp.created, info.CreatedNodeLabels...)
			fp.createdRels = append(fp.createdRels, info.CreatedRelTypes...)
			fp.setsLabels = append(fp.setsLabels, info.SetLabels...)
			fp.setsProps = append(fp.setsProps, info.SetPropKeys...)
			fp.removesProps = append(fp.removesProps, info.RemovedPropKeys...)
			if info.Deletes {
				fp.deletes = true
			}
		}
	}
	if cr.guard != nil {
		add(cypher.InspectExpr(cr.guard.Expr()), false)
	}
	if cr.alert != nil {
		// The alert query may itself contain write clauses in action-less
		// mode (discouraged but possible), so treat it as read+write.
		add(cypher.Inspect(cr.alert.Statement()), true)
	}
	if cr.action != nil {
		add(cypher.Inspect(cr.action.Statement()), true)
	}
	if cr.action == nil {
		// Alert-node mode always creates a node with the alert label.
		fp.created = append(fp.created, cr.AlertLabel)
	}
	// The event selector is also part of the read set.
	if cr.Event.Label != "" {
		switch cr.Event.Kind {
		case CreateRelationship, DeleteRelationship:
			fp.readRelTypes = append(fp.readRelTypes, cr.Event.Label)
		default:
			fp.readLabels = append(fp.readLabels, cr.Event.Label)
		}
	}
	return fp
}

// RuleScope classifies the reach of a rule across hubs (§III-C).
type RuleScope int

// Rule scopes.
const (
	ScopeUnknown RuleScope = iota
	IntraHub
	InterHub
)

func (s RuleScope) String() string {
	switch s {
	case IntraHub:
		return "intra-hub"
	case InterHub:
		return "inter-hub"
	default:
		return "unknown"
	}
}

// RuleState classifies whether a rule consults one or several states of the
// knowledge graph (§III-C).
type RuleState int

// Rule state classes.
const (
	StateUnknown RuleState = iota
	SingleState
	MultiState
)

func (s RuleState) String() string {
	switch s {
	case SingleState:
		return "single-state"
	case MultiState:
		return "multi-state"
	default:
		return "unknown"
	}
}

// Classification is the two-axis rule taxonomy of §III-C.
type Classification struct {
	Scope RuleScope
	State RuleState
	// Hubs lists the hubs whose knowledge the rule touches.
	Hubs []string
}

// LabelHubResolver maps a node label to its owning hub.
type LabelHubResolver func(label string) (hubName string, ok bool)

// defaultStateLabels are the labels whose presence in a rule body indicates
// consultation of historical state (the Essential Summary machinery).
var defaultStateLabels = map[string]bool{
	"Summary": true,
	"Current": true,
	"Alert":   true,
}

// Classify computes the scope and state class of a rule by static analysis
// of its guard, alert and action. resolve maps labels to hubs; nil means no
// hub information (scope stays unknown unless only the rule's own hub is
// involved). stateLabels overrides the default {Summary, Current, Alert}.
func Classify(cr *compiledRule, resolve LabelHubResolver, stateLabels map[string]bool) Classification {
	if stateLabels == nil {
		stateLabels = defaultStateLabels
	}
	fp := cr.footprint()
	hubs := map[string]bool{}
	if cr.Hub != "" {
		hubs[cr.Hub] = true
	}
	unresolved := false
	state := SingleState
	for _, l := range fp.readLabels {
		if stateLabels[l] || l == cr.AlertLabel {
			state = MultiState
			continue // summary structures are shared, not hub knowledge
		}
		if resolve == nil {
			unresolved = true
			continue
		}
		if h, ok := resolve(l); ok {
			hubs[h] = true
		} else {
			unresolved = true
		}
	}
	cls := Classification{State: state}
	for h := range hubs {
		cls.Hubs = append(cls.Hubs, h)
	}
	sort.Strings(cls.Hubs)
	switch {
	case len(hubs) > 1:
		cls.Scope = InterHub
	case unresolved:
		cls.Scope = ScopeUnknown
	default:
		cls.Scope = IntraHub
	}
	return cls
}
