package trigger

// A PG-Triggers-style textual syntax for reactive rules. The paper (§II)
// positions its rules as an application of the authors' PG-Triggers
// proposal for standard triggers on property graphs; this file implements
// a declaration syntax in that spirit so rules can be shipped as text
// (shell scripts, HTTP payloads, config files) rather than Go structs:
//
//	CREATE TRIGGER R2 ON HUB A
//	AFTER CREATE OF NODE Sequence
//	WHEN NEW.variant IS NULL
//	ALERT
//	  MATCH (u:Sequence)-[:SequencedAt]->(:Lab)-[:LocatedIn]->(r:Region)
//	  WHERE u.variant IS NULL
//	  WITH r.name AS region, count(u) AS counter WHERE counter > 100
//	  RETURN region, counter
//
// Sections are introduced by keywords at the start of a line (case
// insensitive): the header (CREATE TRIGGER … [ON HUB …]), the event
// (AFTER …), then optionally WHEN (guard), ALERT (alert query) and DO
// (action statement). The guard ends where the next section begins, so
// multi-line guards and alerts need no delimiters.
//
// Event forms:
//
//	AFTER CREATE OF NODE [Label]
//	AFTER DELETE OF NODE [Label]
//	AFTER CREATE OF RELATIONSHIP [Type]
//	AFTER DELETE OF RELATIONSHIP [Type]
//	AFTER SET OF LABEL Label
//	AFTER REMOVE OF LABEL Label
//	AFTER SET OF PROPERTY [Label.]key | AFTER SET OF PROPERTY [Label]
//	AFTER REMOVE OF PROPERTY [Label.]key
//
// Inserting ASYNC after AFTER (e.g. AFTER ASYNC CREATE OF NODE Sequence)
// installs the rule with Phase AfterAsync: the guard still runs in the
// writing transaction, but the alert query is evaluated asynchronously.
//
// Parse errors carry the byte offset of the offending clause within the
// declaration plus the clause text itself, so multi-rule scripts can point
// at the exact spot.

import (
	"fmt"
	"strings"
)

// dslErrf builds a parse error that names the offending clause and its
// byte offset within the declaration source.
func dslErrf(off int, clause, format string, args ...any) error {
	c := collapseSpace(clause)
	if len(c) > 60 {
		c = c[:57] + "..."
	}
	msg := fmt.Sprintf(format, args...)
	return fmt.Errorf("trigger dsl: %s (byte %d: %q)", msg, off, c)
}

// ParseRule parses one CREATE TRIGGER declaration into a Rule. The result
// still needs Engine.Install (which compiles the embedded Cypher).
func ParseRule(src string) (Rule, error) {
	var r Rule
	sections, err := splitSections(src)
	if err != nil {
		return r, err
	}
	if err := parseHeader(sections.header, &r); err != nil {
		return r, err
	}
	if sections.event.text == "" {
		return r, fmt.Errorf("trigger dsl: missing AFTER event clause")
	}
	ev, phase, err := parseEventClause(sections.event)
	if err != nil {
		return r, err
	}
	r.Event = ev
	r.Phase = phase
	r.Guard = strings.TrimSpace(sections.when.text)
	r.Alert = strings.TrimSpace(sections.alert.text)
	r.Action = strings.TrimSpace(sections.do.text)
	if r.Guard == "" && r.Alert == "" && r.Action == "" {
		return r, fmt.Errorf("trigger dsl: trigger %s needs WHEN, ALERT or DO", r.Name)
	}
	return r, nil
}

// IsTriggerStatement reports whether src looks like a CREATE TRIGGER
// declaration (so shells and servers can route it away from the query
// engine).
func IsTriggerStatement(src string) bool {
	fields := strings.Fields(src)
	return len(fields) >= 2 &&
		strings.EqualFold(fields[0], "CREATE") &&
		strings.EqualFold(fields[1], "TRIGGER")
}

// section is one keyword-introduced part of a declaration, remembering
// where its text begins in the source so errors can point at it.
type section struct {
	text string
	off  int // byte offset of the section's text within the source
}

type ruleSections struct {
	header section
	event  section
	when   section
	alert  section
	do     section
}

// splitSections cuts the source into sections at lines beginning with the
// section keywords, tracking the byte offset where each section's text
// starts.
func splitSections(src string) (ruleSections, error) {
	var out ruleSections
	name := "header"
	bufs := map[string]*strings.Builder{
		"header": {}, "event": {}, "when": {}, "alert": {}, "do": {},
	}
	offs := map[string]int{}
	seen := map[string]bool{}
	lineStart := 0
	for _, line := range strings.Split(src, "\n") {
		nextStart := lineStart + len(line) + 1
		indent := len(line) - len(strings.TrimLeft(line, " \t\r"))
		trimmed := strings.TrimSpace(line)
		first := ""
		if f := strings.Fields(trimmed); len(f) > 0 {
			first = strings.ToUpper(f[0])
		}
		contentOff := lineStart + indent
		switch first {
		case "AFTER":
			name = "event"
		case "WHEN", "ALERT", "DO":
			name = strings.ToLower(first)
			rest := trimmed[len(first):]
			contentOff += len(first) + (len(rest) - len(strings.TrimLeft(rest, " \t")))
			trimmed = strings.TrimSpace(rest)
			line = trimmed
		}
		if first == "AFTER" || first == "WHEN" || first == "ALERT" || first == "DO" {
			if seen[name] {
				return out, dslErrf(lineStart+indent, line,
					"duplicate %s section", strings.ToUpper(name))
			}
			seen[name] = true
			offs[name] = contentOff
		}
		bufs[name].WriteString(line)
		bufs[name].WriteByte('\n')
		lineStart = nextStart
	}
	trim := func(name string) section {
		return section{text: strings.TrimSpace(bufs[name].String()), off: offs[name]}
	}
	out.header = trim("header")
	out.event = trim("event")
	out.when = trim("when")
	out.alert = trim("alert")
	out.do = trim("do")
	return out, nil
}

func parseHeader(header section, r *Rule) error {
	fields := strings.Fields(header.text)
	if len(fields) < 3 || !strings.EqualFold(fields[0], "CREATE") ||
		!strings.EqualFold(fields[1], "TRIGGER") {
		return dslErrf(header.off, header.text, "expected CREATE TRIGGER <name>")
	}
	r.Name = fields[2]
	rest := fields[3:]
	if len(rest) == 0 {
		return nil
	}
	if len(rest) >= 3 && strings.EqualFold(rest[0], "ON") && strings.EqualFold(rest[1], "HUB") {
		r.Hub = rest[2]
		rest = rest[3:]
	}
	if len(rest) != 0 {
		return dslErrf(header.off, header.text,
			"unexpected %q after trigger header", strings.Join(rest, " "))
	}
	return nil
}

func parseEventClause(clause section) (Event, Phase, error) {
	fields := strings.Fields(clause.text)
	if len(fields) < 2 || !strings.EqualFold(fields[0], "AFTER") {
		return Event{}, Before, dslErrf(clause.off, clause.text,
			"expected AFTER <verb> OF <target>")
	}
	phase := Before
	if strings.EqualFold(fields[1], "ASYNC") {
		phase = AfterAsync
		fields = append(fields[:1], fields[2:]...)
	}
	ev, err := parseEventFields(fields[1:], true)
	if err != nil {
		return Event{}, phase, dslErrf(clause.off, clause.text, "%s", err)
	}
	return ev, phase, nil
}

// ParseEventSpec parses the verb/target part of an event clause — e.g.
// "CREATE OF NODE Sequence", or the shorthand "CREATE NODE Sequence"
// without OF — as it appears after AFTER in trigger declarations and
// inside composite-event atoms (internal/cep).
func ParseEventSpec(spec string) (Event, error) {
	return parseEventFields(strings.Fields(spec), false)
}

func parseEventFields(fields []string, requireOF bool) (Event, error) {
	hasOF := len(fields) >= 2 && strings.EqualFold(fields[1], "OF")
	if hasOF {
		fields = append(fields[:1:1], fields[2:]...)
	} else if requireOF {
		if len(fields) == 0 {
			return Event{}, fmt.Errorf("expected <verb> OF <target>")
		}
		return Event{}, fmt.Errorf("expected OF after %s", strings.ToUpper(fields[0]))
	}
	if len(fields) < 2 {
		return Event{}, fmt.Errorf("expected <verb> OF <target>")
	}
	verb := strings.ToUpper(fields[0])
	target := strings.ToUpper(fields[1])
	selector := ""
	if len(fields) >= 3 {
		selector = fields[2]
	}
	if len(fields) > 3 {
		return Event{}, fmt.Errorf("unexpected %q in event clause",
			strings.Join(fields[3:], " "))
	}

	switch target {
	case "NODE":
		switch verb {
		case "CREATE":
			return Event{Kind: CreateNode, Label: selector}, nil
		case "DELETE":
			return Event{Kind: DeleteNode, Label: selector}, nil
		}
	case "RELATIONSHIP", "EDGE":
		switch verb {
		case "CREATE":
			return Event{Kind: CreateRelationship, Label: selector}, nil
		case "DELETE":
			return Event{Kind: DeleteRelationship, Label: selector}, nil
		}
	case "LABEL":
		if selector == "" {
			return Event{}, fmt.Errorf("SET/REMOVE OF LABEL needs a label name")
		}
		switch verb {
		case "SET":
			return Event{Kind: SetLabel, Label: selector}, nil
		case "REMOVE":
			return Event{Kind: RemoveLabel, Label: selector}, nil
		}
	case "PROPERTY":
		label, key := "", ""
		if selector != "" {
			if i := strings.IndexByte(selector, '.'); i >= 0 {
				label, key = selector[:i], selector[i+1:]
			} else {
				key = selector
			}
		}
		switch verb {
		case "SET":
			return Event{Kind: SetProperty, Label: label, PropKey: key}, nil
		case "REMOVE":
			return Event{Kind: RemoveProperty, Label: label, PropKey: key}, nil
		}
	}
	return Event{}, fmt.Errorf("unsupported event %s OF %s", verb, target)
}

// InstallText parses a CREATE TRIGGER declaration and installs it.
func (e *Engine) InstallText(src string) (Rule, error) {
	r, err := ParseRule(src)
	if err != nil {
		return r, err
	}
	return r, e.Install(r)
}
