package trigger

// A PG-Triggers-style textual syntax for reactive rules. The paper (§II)
// positions its rules as an application of the authors' PG-Triggers
// proposal for standard triggers on property graphs; this file implements
// a declaration syntax in that spirit so rules can be shipped as text
// (shell scripts, HTTP payloads, config files) rather than Go structs:
//
//	CREATE TRIGGER R2 ON HUB A
//	AFTER CREATE OF NODE Sequence
//	WHEN NEW.variant IS NULL
//	ALERT
//	  MATCH (u:Sequence)-[:SequencedAt]->(:Lab)-[:LocatedIn]->(r:Region)
//	  WHERE u.variant IS NULL
//	  WITH r.name AS region, count(u) AS counter WHERE counter > 100
//	  RETURN region, counter
//
// Sections are introduced by keywords at the start of a line (case
// insensitive): the header (CREATE TRIGGER … [ON HUB …]), the event
// (AFTER …), then optionally WHEN (guard), ALERT (alert query) and DO
// (action statement). The guard ends where the next section begins, so
// multi-line guards and alerts need no delimiters.
//
// Event forms:
//
//	AFTER CREATE OF NODE [Label]
//	AFTER DELETE OF NODE [Label]
//	AFTER CREATE OF RELATIONSHIP [Type]
//	AFTER DELETE OF RELATIONSHIP [Type]
//	AFTER SET OF LABEL Label
//	AFTER REMOVE OF LABEL Label
//	AFTER SET OF PROPERTY [Label.]key | AFTER SET OF PROPERTY [Label]
//	AFTER REMOVE OF PROPERTY [Label.]key
//
// Inserting ASYNC after AFTER (e.g. AFTER ASYNC CREATE OF NODE Sequence)
// installs the rule with Phase AfterAsync: the guard still runs in the
// writing transaction, but the alert query is evaluated asynchronously.

import (
	"fmt"
	"strings"
)

// ParseRule parses one CREATE TRIGGER declaration into a Rule. The result
// still needs Engine.Install (which compiles the embedded Cypher).
func ParseRule(src string) (Rule, error) {
	var r Rule
	sections, err := splitSections(src)
	if err != nil {
		return r, err
	}
	if err := parseHeader(sections.header, &r); err != nil {
		return r, err
	}
	if sections.event == "" {
		return r, fmt.Errorf("trigger dsl: missing AFTER event clause")
	}
	ev, phase, err := parseEventClause(sections.event)
	if err != nil {
		return r, err
	}
	r.Event = ev
	r.Phase = phase
	r.Guard = strings.TrimSpace(sections.when)
	r.Alert = strings.TrimSpace(sections.alert)
	r.Action = strings.TrimSpace(sections.do)
	if r.Guard == "" && r.Alert == "" && r.Action == "" {
		return r, fmt.Errorf("trigger dsl: trigger %s needs WHEN, ALERT or DO", r.Name)
	}
	return r, nil
}

// IsTriggerStatement reports whether src looks like a CREATE TRIGGER
// declaration (so shells and servers can route it away from the query
// engine).
func IsTriggerStatement(src string) bool {
	fields := strings.Fields(src)
	return len(fields) >= 2 &&
		strings.EqualFold(fields[0], "CREATE") &&
		strings.EqualFold(fields[1], "TRIGGER")
}

type ruleSections struct {
	header string
	event  string
	when   string
	alert  string
	do     string
}

// splitSections cuts the source into sections at lines beginning with the
// section keywords.
func splitSections(src string) (ruleSections, error) {
	var out ruleSections
	section := "header"
	var bufs = map[string]*strings.Builder{
		"header": {}, "event": {}, "when": {}, "alert": {}, "do": {},
	}
	seen := map[string]bool{}
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		first := ""
		if f := strings.Fields(trimmed); len(f) > 0 {
			first = strings.ToUpper(f[0])
		}
		switch first {
		case "AFTER":
			section = "event"
		case "WHEN":
			section = "when"
			trimmed = strings.TrimSpace(trimmed[len("WHEN"):])
			line = trimmed
		case "ALERT":
			section = "alert"
			trimmed = strings.TrimSpace(trimmed[len("ALERT"):])
			line = trimmed
		case "DO":
			section = "do"
			trimmed = strings.TrimSpace(trimmed[len("DO"):])
			line = trimmed
		}
		if first == "AFTER" || first == "WHEN" || first == "ALERT" || first == "DO" {
			if seen[section] {
				return out, fmt.Errorf("trigger dsl: duplicate %s section", strings.ToUpper(section))
			}
			seen[section] = true
		}
		bufs[section].WriteString(line)
		bufs[section].WriteByte('\n')
	}
	out.header = strings.TrimSpace(bufs["header"].String())
	out.event = strings.TrimSpace(bufs["event"].String())
	out.when = strings.TrimSpace(bufs["when"].String())
	out.alert = strings.TrimSpace(bufs["alert"].String())
	out.do = strings.TrimSpace(bufs["do"].String())
	return out, nil
}

func parseHeader(header string, r *Rule) error {
	fields := strings.Fields(header)
	if len(fields) < 3 || !strings.EqualFold(fields[0], "CREATE") ||
		!strings.EqualFold(fields[1], "TRIGGER") {
		return fmt.Errorf("trigger dsl: expected CREATE TRIGGER <name>")
	}
	r.Name = fields[2]
	rest := fields[3:]
	if len(rest) == 0 {
		return nil
	}
	if len(rest) >= 3 && strings.EqualFold(rest[0], "ON") && strings.EqualFold(rest[1], "HUB") {
		r.Hub = rest[2]
		rest = rest[3:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("trigger dsl: unexpected %q after trigger header", strings.Join(rest, " "))
	}
	return nil
}

func parseEventClause(clause string) (Event, Phase, error) {
	fields := strings.Fields(clause)
	if len(fields) < 2 || !strings.EqualFold(fields[0], "AFTER") {
		return Event{}, Before, fmt.Errorf("trigger dsl: expected AFTER <verb> OF <target>")
	}
	phase := Before
	if strings.EqualFold(fields[1], "ASYNC") {
		phase = AfterAsync
		fields = append(fields[:1], fields[2:]...)
	}
	if len(fields) < 4 {
		return Event{}, phase, fmt.Errorf("trigger dsl: expected AFTER <verb> OF <target>")
	}
	verb := strings.ToUpper(fields[1])
	if !strings.EqualFold(fields[2], "OF") {
		return Event{}, phase, fmt.Errorf("trigger dsl: expected OF after %s", verb)
	}
	target := strings.ToUpper(fields[3])
	selector := ""
	if len(fields) >= 5 {
		selector = fields[4]
	}
	if len(fields) > 5 {
		return Event{}, phase, fmt.Errorf("trigger dsl: unexpected %q in event clause",
			strings.Join(fields[5:], " "))
	}

	switch target {
	case "NODE":
		switch verb {
		case "CREATE":
			return Event{Kind: CreateNode, Label: selector}, phase, nil
		case "DELETE":
			return Event{Kind: DeleteNode, Label: selector}, phase, nil
		}
	case "RELATIONSHIP", "EDGE":
		switch verb {
		case "CREATE":
			return Event{Kind: CreateRelationship, Label: selector}, phase, nil
		case "DELETE":
			return Event{Kind: DeleteRelationship, Label: selector}, phase, nil
		}
	case "LABEL":
		if selector == "" {
			return Event{}, phase, fmt.Errorf("trigger dsl: SET/REMOVE OF LABEL needs a label name")
		}
		switch verb {
		case "SET":
			return Event{Kind: SetLabel, Label: selector}, phase, nil
		case "REMOVE":
			return Event{Kind: RemoveLabel, Label: selector}, phase, nil
		}
	case "PROPERTY":
		label, key := "", ""
		if selector != "" {
			if i := strings.IndexByte(selector, '.'); i >= 0 {
				label, key = selector[:i], selector[i+1:]
			} else {
				key = selector
			}
		}
		switch verb {
		case "SET":
			return Event{Kind: SetProperty, Label: label, PropKey: key}, phase, nil
		case "REMOVE":
			return Event{Kind: RemoveProperty, Label: label, PropKey: key}, phase, nil
		}
	}
	return Event{}, phase, fmt.Errorf("trigger dsl: unsupported event AFTER %s OF %s", verb, target)
}

// InstallText parses a CREATE TRIGGER declaration and installs it.
func (e *Engine) InstallText(src string) (Rule, error) {
	r, err := ParseRule(src)
	if err != nil {
		return r, err
	}
	return r, e.Install(r)
}
