package trigger

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/value"
)

// DefaultAlertLabel is the label of produced alert nodes.
const DefaultAlertLabel = "Alert"

// DefaultMaxCascadeDepth bounds cascading rule rounds within one
// transaction.
const DefaultMaxCascadeDepth = 16

// AlertHook is invoked for every alert node the engine creates, within the
// same transaction; the Essential Summary manager uses it to attach alerts
// to the current summary node.
type AlertHook func(tx *graph.Tx, alert graph.NodeID) error

// EngineMetrics holds the engine's optional instrumentation. All fields may
// be nil (instrument methods on nil receivers no-op). Set it before
// installing rules: per-rule counters are resolved once at Install so the
// firing path never performs a label lookup.
type EngineMetrics struct {
	// RuleFired counts guard passes (activations), labelled by rule.
	RuleFired *metrics.CounterVec
	// GuardRejected counts guard evaluations that returned false, labelled
	// by rule — the cheap filtering the paper's design leans on.
	GuardRejected *metrics.CounterVec
	// AlertQuerySeconds observes the latency of each alert-query execution,
	// the potentially expensive inter-hub part of a rule.
	AlertQuerySeconds *metrics.Histogram
	// AlertsCreated counts materialized alert nodes.
	AlertsCreated *metrics.Counter
}

// AsyncItem is one passing activation of an AfterAsync rule, handed to the
// engine's AsyncSink for deferred alert evaluation.
type AsyncItem struct {
	// Rule names the activated rule; Hub is the rule's owning hub.
	Rule string
	Hub  string
	// Binding holds the transition variables of the activation (NEW, OLD,
	// …); EncodeBinding serializes it for a durable queue.
	Binding Binding
}

// AsyncSink stages one AfterAsync activation, inside the writing
// transaction, onto whatever queue the embedder maintains. It returns false
// (and no error) when the item was shed by backpressure.
type AsyncSink func(tx *graph.Tx, item AsyncItem) (bool, error)

// StepItem is one passing activation of a composite-rule step, handed to
// the engine's StepSink so the composite automaton can advance its durable
// partial-match state inside the writing transaction.
type StepItem struct {
	// Composite names the composite rule the step belongs to; Step is the
	// step's index within it.
	Composite string
	Step      int
	// Rule is the compiled step rule's own name; Hub its owning hub.
	Rule string
	Hub  string
	// Binding holds the transition variables of the activation.
	Binding Binding
}

// StepSink advances one composite-rule step inside the writing
// transaction. Installed by the CEP manager (internal/cep) before the
// first write; when nil, rules carrying a Composite marker are inert (the
// state fallback forks use).
type StepSink func(tx *graph.Tx, item StepItem) error

// Engine manages reactive rules and fires them against transaction change
// records, the role apoc.trigger plays in the paper's Neo4j prototype.
type Engine struct {
	mu sync.RWMutex

	rules   map[string]*compiledRule
	index   dispatchIndex
	nextSeq int

	// MaxCascadeDepth bounds rounds of cascading activations per
	// transaction (0 means DefaultMaxCascadeDepth).
	MaxCascadeDepth int
	// StrictTermination makes Install reject rules that introduce a cycle
	// into the triggering graph.
	StrictTermination bool
	// EnforceIntraHubGuards makes Install reject rules whose guard
	// provably reads knowledge owned by a hub other than the rule's own —
	// the paper's requirement that guards be evaluated within a single hub
	// (§III-B). Requires a Resolver; unresolvable labels are allowed.
	EnforceIntraHubGuards bool
	// AlertLabel is the default label for alert nodes ("Alert").
	AlertLabel string
	// Clock supplies the timestamp recorded on alert nodes; nil = time.Now.
	Clock func() time.Time
	// OnAlert is called for each created alert node.
	OnAlert AlertHook
	// Resolver maps labels to hubs for rule classification; may be nil.
	Resolver LabelHubResolver
	// StateLabels overrides the labels treated as historical state in
	// classification; nil = {Summary, Current, Alert}.
	StateLabels map[string]bool
	// AsyncSink, when set, receives the passing bindings of AfterAsync
	// rules instead of the engine running their alert query in-transaction.
	// Nil means AfterAsync rules are evaluated synchronously, like Before
	// rules (the fallback forks use). Set before the first write.
	AsyncSink AsyncSink
	// StepSink, when set, receives the passing bindings of composite step
	// rules (Rule.Composite != ""); nil makes such rules inert. Set before
	// the first write.
	StepSink StepSink
	// SkipLabels names node labels whose create/delete events are invisible
	// to rule matching — the async pipeline's PendingAlert bookkeeping
	// nodes. The changes still reach commit validators and the WAL; only
	// event dispatch ignores them. Set before the first write.
	SkipLabels map[string]bool
	// Metrics is the engine's optional instrumentation; set before Install.
	Metrics EngineMetrics
}

// NewEngine returns an engine with default settings.
func NewEngine() *Engine {
	return &Engine{
		rules:      make(map[string]*compiledRule),
		index:      make(dispatchIndex),
		AlertLabel: DefaultAlertLabel,
	}
}

func (e *Engine) alertLabel() string {
	if e.AlertLabel == "" {
		return DefaultAlertLabel
	}
	return e.AlertLabel
}

func (e *Engine) maxDepth() int {
	if e.MaxCascadeDepth <= 0 {
		return DefaultMaxCascadeDepth
	}
	return e.MaxCascadeDepth
}

func (e *Engine) now() time.Time {
	if e.Clock != nil {
		return e.Clock()
	}
	return time.Now()
}

// Install compiles and registers a rule. With StrictTermination set, the
// rule is rejected if it would make the triggering graph cyclic.
func (e *Engine) Install(r Rule) error {
	cr, err := compileRule(r, e.alertLabel())
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.rules[r.Name]; dup {
		return fmt.Errorf("%w: %s", ErrRuleExists, r.Name)
	}
	if e.StrictTermination {
		candidate := append(e.ruleListLocked(), cr)
		if cycles := findCycles(candidate); len(cycles) > 0 {
			return fmt.Errorf("%w: %s (cycle: %v)", ErrNonTerminating, r.Name, cycles[0])
		}
	}
	if e.EnforceIntraHubGuards && cr.guard != nil && e.Resolver != nil {
		state := e.StateLabels
		if state == nil {
			state = defaultStateLabels
		}
		info := cypher.InspectExpr(cr.guard.Expr())
		for _, l := range info.MatchedNodeLabels {
			if state[l] || l == cr.AlertLabel {
				continue
			}
			if owner, ok := e.Resolver(l); ok && owner != cr.Hub {
				return fmt.Errorf("%w: %s guard reads :%s (hub %s)",
					ErrGuardNotIntraHub, r.Name, l, owner)
			}
		}
	}
	cr.seq = e.nextSeq
	e.nextSeq++
	// Per-rule metric children are resolved from the registry by name, so
	// dropping and reinstalling a rule under the same name resumes its
	// registry counters where they left off (Prometheus counters are
	// cumulative by design). RuleStats, by contrast, live on the compiled
	// rule and restart from zero on reinstall.
	cr.mFired = e.Metrics.RuleFired.With(r.Name)
	cr.mRejected = e.Metrics.GuardRejected.With(r.Name)
	e.rules[r.Name] = cr
	e.index = buildDispatch(e.rules)
	return nil
}

// Drop removes a rule.
func (e *Engine) Drop(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.rules[name]; !ok {
		return fmt.Errorf("%w: %s", ErrRuleNotFound, name)
	}
	delete(e.rules, name)
	e.index = buildDispatch(e.rules)
	return nil
}

// Pause suspends a rule without removing it (apoc.trigger.pause).
func (e *Engine) Pause(name string) error { return e.setPaused(name, true) }

// Resume reactivates a paused rule (apoc.trigger.resume).
func (e *Engine) Resume(name string) error { return e.setPaused(name, false) }

func (e *Engine) setPaused(name string, paused bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	cr, ok := e.rules[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrRuleNotFound, name)
	}
	cr.paused.Store(paused)
	return nil
}

// RuleStats counts a rule's lifetime firing activity.
type RuleStats struct {
	GuardChecks int64 // event occurrences evaluated
	Activations int64 // guard passes
	AlertNodes  int64 // alert nodes produced
}

// RuleInfo describes an installed rule.
type RuleInfo struct {
	Rule
	Paused         bool
	Classification Classification
	Stats          RuleStats
}

// Rules lists installed rules in installation order.
func (e *Engine) Rules() []RuleInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]RuleInfo, 0, len(e.rules))
	for _, cr := range e.ruleListLocked() {
		out = append(out, RuleInfo{
			Rule:           cr.Rule,
			Paused:         cr.paused.Load(),
			Classification: Classify(cr, e.Resolver, e.StateLabels),
			Stats: RuleStats{
				GuardChecks: cr.nChecks.Load(),
				Activations: cr.nActivations.Load(),
				AlertNodes:  cr.nAlertNodes.Load(),
			},
		})
	}
	return out
}

// ClassifyRule returns the classification of one installed rule.
func (e *Engine) ClassifyRule(name string) (Classification, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	cr, ok := e.rules[name]
	if !ok {
		return Classification{}, fmt.Errorf("%w: %s", ErrRuleNotFound, name)
	}
	return Classify(cr, e.Resolver, e.StateLabels), nil
}

func (e *Engine) ruleListLocked() []*compiledRule {
	out := make([]*compiledRule, 0, len(e.rules))
	for _, cr := range e.rules {
		out = append(out, cr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// Activation records one rule firing.
type Activation struct {
	Rule   string
	Round  int
	Alerts []graph.NodeID // alert nodes created by this activation
}

// Report summarizes one Process invocation.
type Report struct {
	Rounds      int
	GuardChecks int
	GuardPasses int
	AlertRuns   int
	AlertNodes  int
	Activations []Activation
	// RulesConsidered counts rules examined across all rounds after the
	// (EventKind, Label) dispatch index filtered out rules that trivially
	// cannot match the round's changes.
	RulesConsidered int
	// AsyncEnqueued counts AfterAsync activations handed to the AsyncSink;
	// AsyncShed counts those the sink dropped under backpressure.
	AsyncEnqueued int
	AsyncShed     int
	// CompositeSteps counts composite-step activations handed to the
	// StepSink.
	CompositeSteps int
}

// dispatchIndex buckets compiled rules by the (EventKind, Label) pairs their
// selectors can match; the "" bucket of a kind holds its wildcard selectors.
// Rebuilt on Install/Drop under the engine lock and read immutably by
// Process, it lets a round skip every rule whose selector cannot possibly
// match the round's changes.
type dispatchIndex map[EventKind]map[string][]*compiledRule

func buildDispatch(rules map[string]*compiledRule) dispatchIndex {
	idx := make(dispatchIndex)
	for _, cr := range rules {
		byLabel := idx[cr.Event.Kind]
		if byLabel == nil {
			byLabel = make(map[string][]*compiledRule)
			idx[cr.Event.Kind] = byLabel
		}
		byLabel[cr.Event.Label] = append(byLabel[cr.Event.Label], cr)
	}
	return idx
}

// candidates returns, in installation order, the rules whose selector could
// match at least one change in data. Label-selective rules are matched
// against the labels (or relationship types) the changed entities carry.
func (idx dispatchIndex) candidates(tx *graph.Tx, data *graph.TxData) []*compiledRule {
	seen := make(map[int]bool)
	var out []*compiledRule
	add := func(kind EventKind, label string) {
		for _, cr := range idx[kind][label] {
			if !seen[cr.seq] {
				seen[cr.seq] = true
				out = append(out, cr)
			}
		}
	}
	entity := func(kind EventKind, labels []string) {
		add(kind, "")
		for _, l := range labels {
			add(kind, l)
		}
	}
	for _, id := range data.CreatedNodes {
		if ls, ok := tx.NodeLabels(id); ok {
			entity(CreateNode, ls)
		}
	}
	for _, snap := range data.DeletedNodes {
		entity(DeleteNode, snap.Labels)
	}
	for _, id := range data.CreatedRels {
		if typ, _, _, ok := tx.RelEndpoints(id); ok {
			entity(CreateRelationship, []string{typ})
		}
	}
	for _, snap := range data.DeletedRels {
		entity(DeleteRelationship, []string{snap.Type})
	}
	for _, lc := range data.AssignedLabels {
		entity(SetLabel, []string{lc.Label})
	}
	for _, lc := range data.RemovedLabels {
		entity(RemoveLabel, []string{lc.Label})
	}
	propChange := func(kind EventKind, pc graph.PropChange) {
		if pc.Kind == graph.NodeEntity {
			if ls, ok := tx.NodeLabels(pc.Node); ok {
				entity(kind, ls)
			}
		} else if typ, _, _, ok := tx.RelEndpoints(pc.Rel); ok {
			entity(kind, []string{typ})
		}
	}
	for _, pc := range data.AssignedProps {
		propChange(SetProperty, pc)
	}
	for _, pc := range data.RemovedProps {
		propChange(RemoveProperty, pc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// filterSkipped returns data minus the changes that touch nodes carrying a
// label in SkipLabels: their create/delete events, and the property and
// label changes on them (partial-match bookkeeping nodes are updated in
// place as composite automata advance). The returned record is a copy when
// anything was filtered; the original stays complete for commit validators
// and the WAL.
func (e *Engine) filterSkipped(tx *graph.Tx, data *graph.TxData) *graph.TxData {
	if len(e.SkipLabels) == 0 {
		return data
	}
	skip := func(labels []string) bool {
		for _, l := range labels {
			if e.SkipLabels[l] {
				return true
			}
		}
		return false
	}
	skipNode := func(id graph.NodeID) bool {
		ls, ok := tx.NodeLabels(id)
		return ok && skip(ls)
	}
	skipProp := func(pc graph.PropChange) bool {
		return pc.Kind == graph.NodeEntity && skipNode(pc.Node)
	}
	n := 0
	for _, id := range data.CreatedNodes {
		if skipNode(id) {
			n++
		}
	}
	for _, snap := range data.DeletedNodes {
		if skip(snap.Labels) {
			n++
		}
	}
	for _, pc := range data.AssignedProps {
		if skipProp(pc) {
			n++
		}
	}
	for _, pc := range data.RemovedProps {
		if skipProp(pc) {
			n++
		}
	}
	for _, lc := range data.AssignedLabels {
		if skipNode(lc.Node) {
			n++
		}
	}
	for _, lc := range data.RemovedLabels {
		if skipNode(lc.Node) {
			n++
		}
	}
	if n == 0 {
		return data
	}
	out := *data
	out.CreatedNodes = make([]graph.NodeID, 0, len(data.CreatedNodes))
	for _, id := range data.CreatedNodes {
		if skipNode(id) {
			continue
		}
		out.CreatedNodes = append(out.CreatedNodes, id)
	}
	out.DeletedNodes = make([]graph.Node, 0, len(data.DeletedNodes))
	for _, snap := range data.DeletedNodes {
		if skip(snap.Labels) {
			continue
		}
		out.DeletedNodes = append(out.DeletedNodes, snap)
	}
	filterProps := func(in []graph.PropChange) []graph.PropChange {
		outp := make([]graph.PropChange, 0, len(in))
		for _, pc := range in {
			if skipProp(pc) {
				continue
			}
			outp = append(outp, pc)
		}
		return outp
	}
	out.AssignedProps = filterProps(data.AssignedProps)
	out.RemovedProps = filterProps(data.RemovedProps)
	filterLabels := func(in []graph.LabelChange) []graph.LabelChange {
		outl := make([]graph.LabelChange, 0, len(in))
		for _, lc := range in {
			if skipNode(lc.Node) {
				continue
			}
			outl = append(outl, lc)
		}
		return outl
	}
	out.AssignedLabels = filterLabels(data.AssignedLabels)
	out.RemovedLabels = filterLabels(data.RemovedLabels)
	return &out
}

// Process fires the installed rules against the changes in data, cascading
// over the changes the rules themselves make until quiescence or the depth
// bound. It must be called with the transaction's change record already
// extracted (tx.ResetData()); on return the transaction's record again
// contains every change, so commit-time validators see the full picture.
func (e *Engine) Process(tx *graph.Tx, data *graph.TxData) (*Report, error) {
	e.mu.RLock()
	idx := e.index
	e.mu.RUnlock()

	report := &Report{}
	total := data
	cur := data
	for round := 0; ; round++ {
		if cur.Empty() {
			break
		}
		if round >= e.maxDepth() {
			tx.MergeData(total)
			return report, fmt.Errorf("%w (%d rounds)", ErrCascadeDepth, round)
		}
		report.Rounds = round + 1
		match := e.filterSkipped(tx, cur)
		if !match.Empty() {
			cands := idx.candidates(tx, match)
			report.RulesConsidered += len(cands)
			for _, cr := range cands {
				if cr.paused.Load() {
					continue
				}
				if err := e.fireRule(tx, cr, match, round, report); err != nil {
					tx.MergeData(total)
					return report, err
				}
			}
		}
		next := tx.ResetData()
		total.Merge(next)
		cur = next
	}
	tx.MergeData(total)
	return report, nil
}

func (e *Engine) fireRule(tx *graph.Tx, cr *compiledRule, data *graph.TxData,
	round int, report *Report) error {
	occ := cr.Event.occurrences(tx, data)
	if len(occ) == 0 {
		return nil
	}
	now := e.now()
	for _, bind := range occ {
		report.GuardChecks++
		cr.nChecks.Add(1)
		if cr.guard != nil {
			ok, err := cr.guard.EvalBool(tx, &cypher.Options{
				Bindings: bind,
				Now:      func() time.Time { return now },
			})
			if err != nil {
				return fmt.Errorf("trigger: rule %s guard: %w", cr.Name, err)
			}
			if !ok {
				cr.mRejected.Inc()
				continue
			}
		}
		report.GuardPasses++
		cr.nActivations.Add(1)
		cr.mFired.Inc()
		if cr.Composite != "" {
			if e.StepSink == nil {
				continue // no automaton attached (forks): steps are inert
			}
			if err := e.StepSink(tx, StepItem{
				Composite: cr.Composite, Step: cr.StepIndex,
				Rule: cr.Name, Hub: cr.Hub, Binding: bind,
			}); err != nil {
				return fmt.Errorf("trigger: rule %s step: %w", cr.Name, err)
			}
			report.CompositeSteps++
			continue
		}
		if cr.Phase == AfterAsync && e.AsyncSink != nil {
			enqueued, err := e.AsyncSink(tx, AsyncItem{
				Rule: cr.Name, Hub: cr.Hub, Binding: bind,
			})
			switch {
			case errors.Is(err, ErrAsyncFallback):
				// No pipeline attached: evaluate synchronously below.
			case err != nil:
				return fmt.Errorf("trigger: rule %s async enqueue: %w", cr.Name, err)
			case enqueued:
				report.AsyncEnqueued++
				continue
			default:
				report.AsyncShed++
				continue
			}
		}
		act := Activation{Rule: cr.Name, Round: round}

		var rows [][]value.Value
		var cols []string
		if cr.alert != nil {
			report.AlertRuns++
			var t0 time.Time
			if e.Metrics.AlertQuerySeconds != nil {
				t0 = time.Now()
			}
			res, err := cr.alert.Execute(tx, &cypher.Options{
				Bindings: bind,
				Now:      func() time.Time { return now },
			})
			if !t0.IsZero() {
				e.Metrics.AlertQuerySeconds.ObserveSince(t0)
			}
			if err != nil {
				return fmt.Errorf("trigger: rule %s alert: %w", cr.Name, err)
			}
			rows, cols = res.Rows, res.Columns
		} else {
			// No alert query: a passing guard is itself critical.
			rows = [][]value.Value{nil}
		}

		for _, rowVals := range rows {
			if cr.action != nil {
				actBind := make(Binding, len(bind)+len(rowVals))
				for k, v := range bind {
					actBind[k] = v
				}
				for i, c := range cols {
					actBind[c] = rowVals[i]
				}
				if _, err := cr.action.Execute(tx, &cypher.Options{
					Bindings: actBind,
					Now:      func() time.Time { return now },
				}); err != nil {
					return fmt.Errorf("trigger: rule %s action: %w", cr.Name, err)
				}
				continue
			}
			id, err := e.createAlertNode(tx, cr, now, cols, rowVals)
			if err != nil {
				return fmt.Errorf("trigger: rule %s: %w", cr.Name, err)
			}
			act.Alerts = append(act.Alerts, id)
			report.AlertNodes++
			cr.nAlertNodes.Add(1)
			e.Metrics.AlertsCreated.Inc()
		}
		if cr.alert != nil || cr.action != nil || len(act.Alerts) > 0 {
			report.Activations = append(report.Activations, act)
		}
	}
	return nil
}

// createAlertNode materializes one alert node with the mandatory rule, hub
// and dateTime properties (§III-B) plus the alert query's columns.
func (e *Engine) createAlertNode(tx *graph.Tx, cr *compiledRule, now time.Time,
	cols []string, rowVals []value.Value) (graph.NodeID, error) {
	props := map[string]value.Value{
		"rule":     value.Str(cr.Name),
		"hub":      value.Str(cr.Hub),
		"dateTime": value.DateTime(now),
	}
	for i, c := range cols {
		v := rowVals[i]
		// Entity references are stored by identifier.
		if id, ok := v.EntityID(); ok {
			v = value.Int(id)
		}
		props[c] = v
	}
	id, err := tx.CreateNode([]string{cr.AlertLabel}, props)
	if err != nil {
		return 0, err
	}
	if e.OnAlert != nil {
		if err := e.OnAlert(tx, id); err != nil {
			return 0, err
		}
	}
	return id, nil
}
