package trigger

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/value"
)

// DefaultAlertLabel is the label of produced alert nodes.
const DefaultAlertLabel = "Alert"

// DefaultMaxCascadeDepth bounds cascading rule rounds within one
// transaction.
const DefaultMaxCascadeDepth = 16

// AlertHook is invoked for every alert node the engine creates, within the
// same transaction; the Essential Summary manager uses it to attach alerts
// to the current summary node.
type AlertHook func(tx *graph.Tx, alert graph.NodeID) error

// EngineMetrics holds the engine's optional instrumentation. All fields may
// be nil (instrument methods on nil receivers no-op). Set it before
// installing rules: per-rule counters are resolved once at Install so the
// firing path never performs a label lookup.
type EngineMetrics struct {
	// RuleFired counts guard passes (activations), labelled by rule.
	RuleFired *metrics.CounterVec
	// GuardRejected counts guard evaluations that returned false, labelled
	// by rule — the cheap filtering the paper's design leans on.
	GuardRejected *metrics.CounterVec
	// AlertQuerySeconds observes the latency of each alert-query execution,
	// the potentially expensive inter-hub part of a rule.
	AlertQuerySeconds *metrics.Histogram
	// AlertsCreated counts materialized alert nodes.
	AlertsCreated *metrics.Counter
}

// Engine manages reactive rules and fires them against transaction change
// records, the role apoc.trigger plays in the paper's Neo4j prototype.
type Engine struct {
	mu sync.RWMutex

	rules   map[string]*compiledRule
	nextSeq int

	// MaxCascadeDepth bounds rounds of cascading activations per
	// transaction (0 means DefaultMaxCascadeDepth).
	MaxCascadeDepth int
	// StrictTermination makes Install reject rules that introduce a cycle
	// into the triggering graph.
	StrictTermination bool
	// EnforceIntraHubGuards makes Install reject rules whose guard
	// provably reads knowledge owned by a hub other than the rule's own —
	// the paper's requirement that guards be evaluated within a single hub
	// (§III-B). Requires a Resolver; unresolvable labels are allowed.
	EnforceIntraHubGuards bool
	// AlertLabel is the default label for alert nodes ("Alert").
	AlertLabel string
	// Clock supplies the timestamp recorded on alert nodes; nil = time.Now.
	Clock func() time.Time
	// OnAlert is called for each created alert node.
	OnAlert AlertHook
	// Resolver maps labels to hubs for rule classification; may be nil.
	Resolver LabelHubResolver
	// StateLabels overrides the labels treated as historical state in
	// classification; nil = {Summary, Current, Alert}.
	StateLabels map[string]bool
	// Metrics is the engine's optional instrumentation; set before Install.
	Metrics EngineMetrics
}

// NewEngine returns an engine with default settings.
func NewEngine() *Engine {
	return &Engine{
		rules:      make(map[string]*compiledRule),
		AlertLabel: DefaultAlertLabel,
	}
}

func (e *Engine) alertLabel() string {
	if e.AlertLabel == "" {
		return DefaultAlertLabel
	}
	return e.AlertLabel
}

func (e *Engine) maxDepth() int {
	if e.MaxCascadeDepth <= 0 {
		return DefaultMaxCascadeDepth
	}
	return e.MaxCascadeDepth
}

func (e *Engine) now() time.Time {
	if e.Clock != nil {
		return e.Clock()
	}
	return time.Now()
}

// Install compiles and registers a rule. With StrictTermination set, the
// rule is rejected if it would make the triggering graph cyclic.
func (e *Engine) Install(r Rule) error {
	cr, err := compileRule(r, e.alertLabel())
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.rules[r.Name]; dup {
		return fmt.Errorf("%w: %s", ErrRuleExists, r.Name)
	}
	if e.StrictTermination {
		candidate := append(e.ruleListLocked(), cr)
		if cycles := findCycles(candidate); len(cycles) > 0 {
			return fmt.Errorf("%w: %s (cycle: %v)", ErrNonTerminating, r.Name, cycles[0])
		}
	}
	if e.EnforceIntraHubGuards && cr.guard != nil && e.Resolver != nil {
		state := e.StateLabels
		if state == nil {
			state = defaultStateLabels
		}
		info := cypher.InspectExpr(cr.guard)
		for _, l := range info.MatchedNodeLabels {
			if state[l] || l == cr.AlertLabel {
				continue
			}
			if owner, ok := e.Resolver(l); ok && owner != cr.Hub {
				return fmt.Errorf("%w: %s guard reads :%s (hub %s)",
					ErrGuardNotIntraHub, r.Name, l, owner)
			}
		}
	}
	cr.seq = e.nextSeq
	e.nextSeq++
	cr.mFired = e.Metrics.RuleFired.With(r.Name)
	cr.mRejected = e.Metrics.GuardRejected.With(r.Name)
	e.rules[r.Name] = cr
	return nil
}

// Drop removes a rule.
func (e *Engine) Drop(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.rules[name]; !ok {
		return fmt.Errorf("%w: %s", ErrRuleNotFound, name)
	}
	delete(e.rules, name)
	return nil
}

// Pause suspends a rule without removing it (apoc.trigger.pause).
func (e *Engine) Pause(name string) error { return e.setPaused(name, true) }

// Resume reactivates a paused rule (apoc.trigger.resume).
func (e *Engine) Resume(name string) error { return e.setPaused(name, false) }

func (e *Engine) setPaused(name string, paused bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	cr, ok := e.rules[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrRuleNotFound, name)
	}
	cr.paused = paused
	return nil
}

// RuleStats counts a rule's lifetime firing activity.
type RuleStats struct {
	GuardChecks int64 // event occurrences evaluated
	Activations int64 // guard passes
	AlertNodes  int64 // alert nodes produced
}

// RuleInfo describes an installed rule.
type RuleInfo struct {
	Rule
	Paused         bool
	Classification Classification
	Stats          RuleStats
}

// Rules lists installed rules in installation order.
func (e *Engine) Rules() []RuleInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]RuleInfo, 0, len(e.rules))
	for _, cr := range e.ruleListLocked() {
		out = append(out, RuleInfo{
			Rule:           cr.Rule,
			Paused:         cr.paused,
			Classification: Classify(cr, e.Resolver, e.StateLabels),
			Stats: RuleStats{
				GuardChecks: cr.nChecks.Load(),
				Activations: cr.nActivations.Load(),
				AlertNodes:  cr.nAlertNodes.Load(),
			},
		})
	}
	return out
}

// ClassifyRule returns the classification of one installed rule.
func (e *Engine) ClassifyRule(name string) (Classification, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	cr, ok := e.rules[name]
	if !ok {
		return Classification{}, fmt.Errorf("%w: %s", ErrRuleNotFound, name)
	}
	return Classify(cr, e.Resolver, e.StateLabels), nil
}

func (e *Engine) ruleListLocked() []*compiledRule {
	out := make([]*compiledRule, 0, len(e.rules))
	for _, cr := range e.rules {
		out = append(out, cr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// Activation records one rule firing.
type Activation struct {
	Rule   string
	Round  int
	Alerts []graph.NodeID // alert nodes created by this activation
}

// Report summarizes one Process invocation.
type Report struct {
	Rounds      int
	GuardChecks int
	GuardPasses int
	AlertRuns   int
	AlertNodes  int
	Activations []Activation
}

// Process fires the installed rules against the changes in data, cascading
// over the changes the rules themselves make until quiescence or the depth
// bound. It must be called with the transaction's change record already
// extracted (tx.ResetData()); on return the transaction's record again
// contains every change, so commit-time validators see the full picture.
func (e *Engine) Process(tx *graph.Tx, data *graph.TxData) (*Report, error) {
	e.mu.RLock()
	rules := e.ruleListLocked()
	e.mu.RUnlock()

	report := &Report{}
	total := data
	cur := data
	for round := 0; ; round++ {
		if cur.Empty() {
			break
		}
		if round >= e.maxDepth() {
			tx.MergeData(total)
			return report, fmt.Errorf("%w (%d rounds)", ErrCascadeDepth, round)
		}
		report.Rounds = round + 1
		for _, cr := range rules {
			if cr.paused {
				continue
			}
			if err := e.fireRule(tx, cr, cur, round, report); err != nil {
				tx.MergeData(total)
				return report, err
			}
		}
		next := tx.ResetData()
		total.Merge(next)
		cur = next
	}
	tx.MergeData(total)
	return report, nil
}

func (e *Engine) fireRule(tx *graph.Tx, cr *compiledRule, data *graph.TxData,
	round int, report *Report) error {
	occ := cr.Event.occurrences(tx, data)
	if len(occ) == 0 {
		return nil
	}
	now := e.now()
	for _, bind := range occ {
		report.GuardChecks++
		cr.nChecks.Add(1)
		if cr.guard != nil {
			ok, err := cypher.EvalPredicate(tx, cr.guard, &cypher.Options{
				Bindings: bind,
				Now:      func() time.Time { return now },
			})
			if err != nil {
				return fmt.Errorf("trigger: rule %s guard: %w", cr.Name, err)
			}
			if !ok {
				cr.mRejected.Inc()
				continue
			}
		}
		report.GuardPasses++
		cr.nActivations.Add(1)
		cr.mFired.Inc()
		act := Activation{Rule: cr.Name, Round: round}

		var rows [][]value.Value
		var cols []string
		if cr.alert != nil {
			report.AlertRuns++
			var t0 time.Time
			if e.Metrics.AlertQuerySeconds != nil {
				t0 = time.Now()
			}
			res, err := cypher.Execute(tx, cr.alert, &cypher.Options{
				Bindings: bind,
				Now:      func() time.Time { return now },
			})
			if !t0.IsZero() {
				e.Metrics.AlertQuerySeconds.ObserveSince(t0)
			}
			if err != nil {
				return fmt.Errorf("trigger: rule %s alert: %w", cr.Name, err)
			}
			rows, cols = res.Rows, res.Columns
		} else {
			// No alert query: a passing guard is itself critical.
			rows = [][]value.Value{nil}
		}

		for _, rowVals := range rows {
			if cr.action != nil {
				actBind := make(Binding, len(bind)+len(rowVals))
				for k, v := range bind {
					actBind[k] = v
				}
				for i, c := range cols {
					actBind[c] = rowVals[i]
				}
				if _, err := cypher.Execute(tx, cr.action, &cypher.Options{
					Bindings: actBind,
					Now:      func() time.Time { return now },
				}); err != nil {
					return fmt.Errorf("trigger: rule %s action: %w", cr.Name, err)
				}
				continue
			}
			id, err := e.createAlertNode(tx, cr, now, cols, rowVals)
			if err != nil {
				return fmt.Errorf("trigger: rule %s: %w", cr.Name, err)
			}
			act.Alerts = append(act.Alerts, id)
			report.AlertNodes++
			cr.nAlertNodes.Add(1)
			e.Metrics.AlertsCreated.Inc()
		}
		if cr.alert != nil || cr.action != nil || len(act.Alerts) > 0 {
			report.Activations = append(report.Activations, act)
		}
	}
	return nil
}

// createAlertNode materializes one alert node with the mandatory rule, hub
// and dateTime properties (§III-B) plus the alert query's columns.
func (e *Engine) createAlertNode(tx *graph.Tx, cr *compiledRule, now time.Time,
	cols []string, rowVals []value.Value) (graph.NodeID, error) {
	props := map[string]value.Value{
		"rule":     value.Str(cr.Name),
		"hub":      value.Str(cr.Hub),
		"dateTime": value.DateTime(now),
	}
	for i, c := range cols {
		v := rowVals[i]
		// Entity references are stored by identifier.
		if id, ok := v.EntityID(); ok {
			v = value.Int(id)
		}
		props[c] = v
	}
	id, err := tx.CreateNode([]string{cr.AlertLabel}, props)
	if err != nil {
		return 0, err
	}
	if e.OnAlert != nil {
		if err := e.OnAlert(tx, id); err != nil {
			return 0, err
		}
	}
	return id, nil
}
