package trigger

// Termination analysis in the Baralis–Ceri–Widom tradition the paper cites:
// build the triggering graph — rule A has an edge to rule B when an action
// of A can generate an event that activates B — and look for cycles. A
// cycle-free triggering graph guarantees termination of any cascade; cycles
// are conservative warnings (they may still terminate at runtime, which is
// why the engine additionally enforces a cascade depth bound).

import "sort"

// TriggeringEdge is one edge of the triggering graph.
type TriggeringEdge struct {
	From string
	To   string
	Why  string
}

// canTrigger reports whether the actions of a can generate an event that
// activates b, with an explanation.
func canTrigger(a, b *compiledRule) (bool, string) {
	fa := a.footprint()
	ev := b.Event
	switch ev.Kind {
	case CreateNode:
		for _, l := range fa.created {
			if ev.Label == "" || ev.Label == l {
				return true, "creates node :" + l
			}
		}
	case CreateRelationship:
		for _, t := range fa.createdRels {
			if ev.Label == "" || ev.Label == t {
				return true, "creates relationship :" + t
			}
		}
	case SetLabel:
		for _, l := range fa.setsLabels {
			if ev.Label == "" || ev.Label == l {
				return true, "sets label :" + l
			}
		}
	case RemoveLabel:
		// REMOVE clauses are folded into setsLabels' complement; be
		// conservative: any rule that deletes or rewrites labels may fire
		// label-removal rules.
		if fa.deletes {
			return true, "deletes entities"
		}
	case SetProperty:
		for _, k := range fa.setsProps {
			if ev.PropKey == "" || k == "*" || ev.PropKey == k {
				return true, "sets property ." + k
			}
		}
		// Creating a node with the selected label also implies its
		// properties appear, but creation events are distinct from
		// property-set events in our model, as in Neo4j.
	case RemoveProperty:
		for _, k := range fa.removesProps {
			if ev.PropKey == "" || ev.PropKey == k {
				return true, "removes property ." + k
			}
		}
		if fa.deletes {
			return true, "deletes entities"
		}
	case DeleteNode, DeleteRelationship:
		if fa.deletes {
			return true, "deletes entities"
		}
	}
	return false, ""
}

// TriggeringGraph computes all edges among the given rules.
func triggeringGraph(rules []*compiledRule) []TriggeringEdge {
	var edges []TriggeringEdge
	for _, a := range rules {
		for _, b := range rules {
			if ok, why := canTrigger(a, b); ok {
				edges = append(edges, TriggeringEdge{From: a.Name, To: b.Name, Why: why})
			}
		}
	}
	return edges
}

// findCycles returns the elementary cycles (as rule-name paths) reachable
// in the triggering graph of the rules; an empty result certifies
// termination.
func findCycles(rules []*compiledRule) [][]string {
	adj := make(map[string][]string)
	for _, e := range triggeringGraph(rules) {
		adj[e.From] = append(adj[e.From], e.To)
	}
	var cycles [][]string
	state := make(map[string]int) // 0 unvisited, 1 on stack, 2 done
	var stack []string

	var dfs func(n string)
	dfs = func(n string) {
		state[n] = 1
		stack = append(stack, n)
		for _, m := range adj[n] {
			switch state[m] {
			case 0:
				dfs(m)
			case 1:
				// Found a cycle: slice the stack from m's position.
				for i, s := range stack {
					if s == m {
						cycle := append([]string(nil), stack[i:]...)
						cycles = append(cycles, cycle)
						break
					}
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[n] = 2
	}
	names := make([]string, 0, len(rules))
	for _, r := range rules {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	for _, n := range names {
		if state[n] == 0 {
			dfs(n)
		}
	}
	return cycles
}

// TriggeringGraph exposes the triggering graph of the installed rules.
func (e *Engine) TriggeringGraph() []TriggeringEdge {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return triggeringGraph(e.ruleListLocked())
}

// CheckTermination returns the triggering-graph cycles among the installed
// rules; an empty result certifies that every cascade terminates.
func (e *Engine) CheckTermination() [][]string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return findCycles(e.ruleListLocked())
}
