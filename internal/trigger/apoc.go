package trigger

// The paper's §IV-B defines a syntax-directed translation from reactive
// knowledge rules into Neo4j APOC triggers (Figs. 6 and 7): the trigger
// statement UNWINDs the transaction's created nodes into the cNode
// transition variable, applies the guard, and uses apoc.do.when to run the
// alert and create the Alert node. TranslateAPOC implements that
// translation, so rules authored against this library can be exported to a
// real Neo4j + APOC deployment.

import (
	"fmt"
	"strings"

	"repro/internal/cypher"
)

// apocSources maps event kinds to the APOC transaction-data parameter the
// Fig. 6 scheme UNWINDs. Label/property events use map-shaped parameters in
// APOC and are outside the paper's translation, which covers creation and
// deletion events.
var apocSources = map[EventKind]string{
	CreateNode:         "$createdNodes",
	DeleteNode:         "$deletedNodes",
	CreateRelationship: "$createdRelationships",
	DeleteRelationship: "$deletedRelationships",
}

// TranslateAPOC renders the rule as a CALL apoc.trigger.install statement
// following the paper's syntax-directed translation. dbName is the target
// database ("neo4j" by convention); phase is the APOC action time
// ("before", "after" or "afterAsync"; empty means the rule's own Phase, so
// AfterAsync rules emit {phase: 'afterAsync'}).
func TranslateAPOC(r Rule, dbName, phase string) (string, error) {
	if dbName == "" {
		dbName = "neo4j"
	}
	if phase == "" {
		phase = r.Phase.String()
	}
	source, ok := apocSources[r.Event.Kind]
	if !ok {
		return "", fmt.Errorf("trigger: APOC translation covers creation and deletion events, not %s",
			r.Event.Kind)
	}
	if r.Action != "" {
		return "", fmt.Errorf("trigger: APOC translation covers alert-node rules; rule %s has a custom action", r.Name)
	}
	if r.Composite != "" {
		return "", fmt.Errorf("trigger: rule %s is a step of composite rule %s; composite rules are exported by the cep manager", r.Name, r.Composite)
	}
	alertLabel := r.AlertLabel
	if alertLabel == "" {
		alertLabel = DefaultAlertLabel
	}

	// The do.when condition: the changed entity carries the selected label
	// (the paper's "NEW:Sequence" check), plus the rule's guard.
	conds := []string{}
	switch r.Event.Kind {
	case CreateNode, DeleteNode:
		if r.Event.Label != "" {
			conds = append(conds, fmt.Sprintf("'%s' IN labels(NEW)", r.Event.Label))
		}
	case CreateRelationship, DeleteRelationship:
		if r.Event.Label != "" {
			conds = append(conds, fmt.Sprintf("type(NEW) = '%s'", r.Event.Label))
		}
	}
	if r.Guard != "" {
		conds = append(conds, "("+collapseSpace(r.Guard)+")")
	}
	condition := "true"
	if len(conds) > 0 {
		condition = strings.Join(conds, " AND ")
	}

	// The do.when action: the alert query extended with the Alert-node
	// creation carrying the mandatory properties and the alert columns.
	action, err := buildAPOCAction(r, alertLabel)
	if err != nil {
		return "", err
	}

	statement := fmt.Sprintf(
		"UNWIND %s AS cNode\nWITH cNode AS NEW\nCALL apoc.do.when(\n  %s,\n  %s,\n  '',\n  {NEW: NEW}\n) YIELD value RETURN *",
		source, condition, apocQuote(action))

	return fmt.Sprintf("CALL apoc.trigger.install(%s, %s,\n%s,\n{phase: '%s'});",
		"'"+dbName+"'", "'"+r.Name+"'", apocQuote(statement), phase), nil
}

// buildAPOCAction assembles the alert query plus alert-node creation. The
// alert's result columns become both the WITH projection and the Alert
// node's payload properties, mirroring Fig. 7.
func buildAPOCAction(r Rule, alertLabel string) (string, error) {
	if r.Alert == "" {
		// Guard-only rule: the passing guard is itself critical.
		return fmt.Sprintf("CREATE (:%s {rule: '%s', hub: '%s', dateTime: datetime()})",
			alertLabel, r.Name, r.Hub), nil
	}
	stmt, err := cypher.Parse(r.Alert)
	if err != nil {
		return "", fmt.Errorf("trigger: rule %s alert: %w", r.Name, err)
	}
	cols := cypher.ResultColumns(stmt)
	if len(cols) == 0 {
		return "", fmt.Errorf("trigger: rule %s alert must end in RETURN with named columns for APOC translation", r.Name)
	}
	// Strip the final RETURN and replace it with WITH + CREATE, as the
	// Fig. 7 trigger does.
	alertText := collapseSpace(r.Alert)
	idx := strings.LastIndex(strings.ToUpper(alertText), "RETURN ")
	if idx < 0 {
		return "", fmt.Errorf("trigger: rule %s alert has no RETURN clause", r.Name)
	}
	body := strings.TrimSpace(alertText[:idx])
	projection := strings.TrimSpace(alertText[idx+len("RETURN "):])

	props := []string{
		fmt.Sprintf("rule: '%s'", r.Name),
		fmt.Sprintf("hub: '%s'", r.Hub),
		"dateTime: datetime()",
	}
	for _, c := range cols {
		props = append(props, fmt.Sprintf("%s: %s", c, c))
	}
	return fmt.Sprintf("%s WITH %s CREATE (:%s {%s})",
		body, projection, alertLabel, strings.Join(props, ", ")), nil
}

// apocQuote renders s as a double-quoted Cypher string literal.
func apocQuote(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return `"` + s + `"`
}

// collapseSpace normalizes the whitespace of embedded Cypher so the emitted
// trigger stays on few lines, like the paper's Fig. 7 listing.
func collapseSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// TranslateAllAPOC renders every installed rule that the Fig. 6 scheme
// covers; rules with unsupported event kinds are skipped and reported in
// the second return value.
func (e *Engine) TranslateAllAPOC(dbName, phase string) (translated []string, skipped []string) {
	for _, info := range e.Rules() {
		out, err := TranslateAPOC(info.Rule, dbName, phase)
		if err != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %v", info.Name, err))
			continue
		}
		translated = append(translated, out)
	}
	return translated, skipped
}
