package trigger

import (
	"strings"
	"testing"
)

func TestConfluenceAlertOnlyRulesAreSafe(t *testing.T) {
	e := newTestEngine()
	_ = e.Install(Rule{
		Name:  "A",
		Event: Event{Kind: CreateNode, Label: "X"},
		Alert: "RETURN NEW.v AS v",
	})
	_ = e.Install(Rule{
		Name:  "B",
		Event: Event{Kind: CreateNode, Label: "X"},
		Alert: "MATCH (y:Other) RETURN y.v AS v",
	})
	if warns := e.CheckConfluence(); len(warns) != 0 {
		t.Errorf("alert-only rules reported non-confluent: %v", warns)
	}
}

func TestConfluenceDetectsSharedPropertyWrite(t *testing.T) {
	e := newTestEngine()
	_ = e.Install(Rule{
		Name:   "SetterA",
		Event:  Event{Kind: CreateNode, Label: "Case"},
		Action: "MATCH (r:Region) SET r.level = 'high'",
	})
	_ = e.Install(Rule{
		Name:   "SetterB",
		Event:  Event{Kind: CreateNode, Label: "Case"},
		Action: "MATCH (r:Region) SET r.level = 'low'",
	})
	warns := e.CheckConfluence()
	if len(warns) != 1 {
		t.Fatalf("warnings: %v", warns)
	}
	if !strings.Contains(warns[0].String(), ".level") {
		t.Errorf("warning should name the property: %s", warns[0])
	}
}

func TestConfluenceDetectsWriterReaderConflict(t *testing.T) {
	e := newTestEngine()
	_ = e.Install(Rule{
		Name:   "Writer",
		Event:  Event{Kind: CreateNode, Label: "Case"},
		Action: "CREATE (:Flag)",
	})
	_ = e.Install(Rule{
		Name:  "Reader",
		Event: Event{Kind: CreateNode, Label: "Case"},
		Alert: "MATCH (f:Flag) RETURN count(f) AS flags",
	})
	warns := e.CheckConfluence()
	if len(warns) != 1 {
		t.Fatalf("warnings: %v", warns)
	}
	if !strings.Contains(warns[0].Why, ":Flag") {
		t.Errorf("why: %s", warns[0].Why)
	}
}

func TestConfluenceDisjointEventsDoNotConflict(t *testing.T) {
	e := newTestEngine()
	_ = e.Install(Rule{
		Name:   "OnX",
		Event:  Event{Kind: CreateNode, Label: "X"},
		Action: "MATCH (r:Region) SET r.level = 1",
	})
	_ = e.Install(Rule{
		Name:   "OnY",
		Event:  Event{Kind: CreateNode, Label: "Y"},
		Action: "MATCH (r:Region) SET r.level = 2",
	})
	if warns := e.CheckConfluence(); len(warns) != 0 {
		t.Errorf("rules on disjoint events cannot race: %v", warns)
	}
}

func TestConfluenceWildcardPropAndDeletes(t *testing.T) {
	e := newTestEngine()
	_ = e.Install(Rule{
		Name:   "Replacer",
		Event:  Event{Kind: CreateNode},
		Action: "MATCH (r:Region) SET r += {a: 1}",
	})
	_ = e.Install(Rule{
		Name:   "Tweaker",
		Event:  Event{Kind: CreateNode, Label: "Z"},
		Action: "MATCH (r:Region) SET r.b = 2",
	})
	warns := e.CheckConfluence()
	if len(warns) != 1 {
		t.Fatalf("wildcard prop writes should conflict: %v", warns)
	}
	e2 := newTestEngine()
	_ = e2.Install(Rule{
		Name:   "Deleter",
		Event:  Event{Kind: CreateNode, Label: "Z"},
		Action: "MATCH (o:Old) DETACH DELETE o",
	})
	_ = e2.Install(Rule{
		Name:  "Scanner",
		Event: Event{Kind: CreateNode, Label: "Z"},
		Alert: "MATCH (o:Old) RETURN count(o) AS n",
	})
	if warns := e2.CheckConfluence(); len(warns) != 1 {
		t.Fatalf("delete/read should conflict: %v", warns)
	}
}

func TestEventOverlap(t *testing.T) {
	cases := []struct {
		a, b Event
		want bool
	}{
		{Event{Kind: CreateNode, Label: "X"}, Event{Kind: CreateNode, Label: "X"}, true},
		{Event{Kind: CreateNode, Label: "X"}, Event{Kind: CreateNode}, true},
		{Event{Kind: CreateNode, Label: "X"}, Event{Kind: CreateNode, Label: "Y"}, false},
		{Event{Kind: CreateNode}, Event{Kind: DeleteNode}, false},
		{Event{Kind: SetProperty, PropKey: "a"}, Event{Kind: SetProperty, PropKey: "b"}, false},
		{Event{Kind: SetProperty, PropKey: "a"}, Event{Kind: SetProperty}, true},
	}
	for _, c := range cases {
		if got := eventOverlap(c.a, c.b); got != c.want {
			t.Errorf("overlap(%v, %v) = %v", c.a, c.b, got)
		}
	}
}

func TestConfluenceAlertReaderConflictsWithProducer(t *testing.T) {
	e := newTestEngine()
	// R5-style producer and an R4-style rule reading Alert nodes on the
	// same event: firing order within a round is observable.
	_ = e.Install(Rule{
		Name:  "producer",
		Event: Event{Kind: CreateNode, Label: "IcuPatient"},
		Alert: "RETURN NEW.region AS Region",
	})
	_ = e.Install(Rule{
		Name:  "reader",
		Event: Event{Kind: CreateNode, Label: "IcuPatient"},
		Alert: "MATCH (a:Alert {rule: 'producer'}) RETURN max(a.Region) AS prev",
	})
	warns := e.CheckConfluence()
	if len(warns) != 1 {
		t.Fatalf("alert reader should be flagged: %v", warns)
	}
	if !strings.Contains(warns[0].Why, ":Alert") {
		t.Errorf("why: %s", warns[0].Why)
	}
}
