package trigger

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/value"
)

// EncodeBinding serializes a binding as JSON with full type fidelity
// (datetimes, durations, nested maps, node/relationship references), so an
// AfterAsync activation can be stored on a durable pending queue and decoded
// after a restart.
func EncodeBinding(b Binding) (string, error) {
	m := make(map[string]any, len(b))
	for k, v := range b {
		m[k] = value.ToJSON(v)
	}
	raw, err := json.Marshal(m)
	if err != nil {
		return "", fmt.Errorf("trigger: encode binding: %w", err)
	}
	return string(raw), nil
}

// DecodeBinding reverses EncodeBinding.
func DecodeBinding(s string) (Binding, error) {
	var m map[string]any
	if err := json.Unmarshal([]byte(s), &m); err != nil {
		return nil, fmt.Errorf("trigger: decode binding: %w", err)
	}
	b := make(Binding, len(m))
	for k, raw := range m {
		v, err := value.FromJSON(raw)
		if err != nil {
			return nil, fmt.Errorf("trigger: decode binding %s: %w", k, err)
		}
		b[k] = v
	}
	return b, nil
}

// EvaluateAsync runs the alert query of an AfterAsync rule against tx —
// typically a read-only transaction pinned to a committed snapshot — with
// the recorded binding's transition variables bound. It performs no writes.
// Rules without an alert query return a single nil row: the recorded guard
// pass is itself the critical situation.
func (e *Engine) EvaluateAsync(tx *graph.Tx, ruleName string, bind Binding) (cols []string, rows [][]value.Value, err error) {
	e.mu.RLock()
	cr, ok := e.rules[ruleName]
	e.mu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrRuleNotFound, ruleName)
	}
	if cr.alert == nil {
		return nil, [][]value.Value{nil}, nil
	}
	now := e.now()
	var t0 time.Time
	if e.Metrics.AlertQuerySeconds != nil {
		t0 = time.Now()
	}
	res, err := cr.alert.Execute(tx, &cypher.Options{
		Bindings: bind,
		Now:      func() time.Time { return now },
	})
	if !t0.IsZero() {
		e.Metrics.AlertQuerySeconds.ObserveSince(t0)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("trigger: rule %s alert: %w", ruleName, err)
	}
	return res.Columns, res.Rows, nil
}

// MaterializeAsync produces the alert nodes (or runs the rule's Action) for
// the critical rows EvaluateAsync returned, inside the follow-up write
// transaction tx. The caller is expected to delete the pending-queue entry
// in the same transaction, making dequeue and materialization atomic.
func (e *Engine) MaterializeAsync(tx *graph.Tx, ruleName string, bind Binding,
	cols []string, rows [][]value.Value) ([]graph.NodeID, error) {
	e.mu.RLock()
	cr, ok := e.rules[ruleName]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrRuleNotFound, ruleName)
	}
	now := e.now()
	var alerts []graph.NodeID
	for _, rowVals := range rows {
		if cr.action != nil {
			actBind := make(Binding, len(bind)+len(rowVals))
			for k, v := range bind {
				actBind[k] = v
			}
			for i, c := range cols {
				actBind[c] = rowVals[i]
			}
			if _, err := cr.action.Execute(tx, &cypher.Options{
				Bindings: actBind,
				Now:      func() time.Time { return now },
			}); err != nil {
				return alerts, fmt.Errorf("trigger: rule %s action: %w", cr.Name, err)
			}
			continue
		}
		id, err := e.createAlertNode(tx, cr, now, cols, rowVals)
		if err != nil {
			return alerts, fmt.Errorf("trigger: rule %s: %w", cr.Name, err)
		}
		alerts = append(alerts, id)
		cr.nAlertNodes.Add(1)
		e.Metrics.AlertsCreated.Inc()
	}
	return alerts, nil
}
