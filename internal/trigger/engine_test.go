package trigger

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/value"
)

var fixedNow = time.Date(2023, 4, 1, 12, 0, 0, 0, time.UTC)

// run executes a write statement and fires the engine, committing on
// success; it returns the engine's report.
func run(t *testing.T, s *graph.Store, e *Engine, query string) *Report {
	t.Helper()
	rep, err := runErr(s, e, query)
	if err != nil {
		t.Fatalf("run %q: %v", query, err)
	}
	return rep
}

func runErr(s *graph.Store, e *Engine, query string) (*Report, error) {
	tx := s.Begin(graph.ReadWrite)
	if _, err := cypher.Run(tx, query, nil); err != nil {
		tx.Rollback()
		return nil, err
	}
	data := tx.ResetData()
	rep, err := e.Process(tx, data)
	if err != nil {
		tx.Rollback()
		return rep, err
	}
	if err := tx.Commit(); err != nil {
		return rep, err
	}
	return rep, nil
}

func count(t *testing.T, s *graph.Store, query string) int64 {
	t.Helper()
	var n int64
	err := s.View(func(tx *graph.Tx) error {
		res, err := cypher.Run(tx, query, nil)
		if err != nil {
			return err
		}
		v, ok := res.Value()
		if !ok {
			return errors.New("expected single value")
		}
		n, _ = v.AsInt()
		return nil
	})
	if err != nil {
		t.Fatalf("count %q: %v", query, err)
	}
	return n
}

func newTestEngine() *Engine {
	e := NewEngine()
	e.Clock = func() time.Time { return fixedNow }
	return e
}

func TestSimpleCreateNodeRule(t *testing.T) {
	s := graph.NewStore()
	e := newTestEngine()
	err := e.Install(Rule{
		Name:  "R0",
		Hub:   "E",
		Event: Event{Kind: CreateNode, Label: "Mutation"},
		Guard: "NEW.severity = 'high'",
		Alert: "RETURN NEW.id AS mutation",
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := run(t, s, e, "CREATE (:Mutation {id: 'M1', severity: 'high'})")
	if rep.GuardChecks != 1 || rep.GuardPasses != 1 || rep.AlertNodes != 1 {
		t.Errorf("report: %+v", rep)
	}
	if n := count(t, s, "MATCH (a:Alert) RETURN count(a)"); n != 1 {
		t.Fatalf("alerts = %d", n)
	}
	// Alert node carries mandatory props + columns.
	_ = s.View(func(tx *graph.Tx) error {
		res, _ := cypher.Run(tx, "MATCH (a:Alert) RETURN a.rule, a.hub, a.dateTime, a.mutation", nil)
		r := res.Rows[0]
		if r[0].String() != `"R0"` || r[1].String() != `"E"` || r[3].String() != `"M1"` {
			t.Errorf("alert props: %v", r)
		}
		if ts, _ := r[2].AsDateTime(); !ts.Equal(fixedNow) {
			t.Error("dateTime should use engine clock")
		}
		return nil
	})
	// A non-matching event does not fire.
	rep = run(t, s, e, "CREATE (:Mutation {id: 'M2', severity: 'low'})")
	if rep.GuardPasses != 0 || rep.AlertNodes != 0 {
		t.Errorf("low severity fired: %+v", rep)
	}
	// A different label does not even check the guard.
	rep = run(t, s, e, "CREATE (:Sequence {id: 'S1'})")
	if rep.GuardChecks != 0 {
		t.Errorf("wrong label checked: %+v", rep)
	}
}

func TestGuardlessRule(t *testing.T) {
	s := graph.NewStore()
	e := newTestEngine()
	_ = e.Install(Rule{
		Name:  "All",
		Event: Event{Kind: CreateNode, Label: "X"},
		Alert: "RETURN 1 AS one",
	})
	rep := run(t, s, e, "CREATE (:X), (:X), (:Y)")
	if rep.AlertNodes != 2 {
		t.Errorf("alert nodes = %d, want 2 (one per created :X node)", rep.AlertNodes)
	}
}

func TestAlertRowsProduceMultipleAlertNodes(t *testing.T) {
	s := graph.NewStore()
	_ = s.Update(func(tx *graph.Tx) error {
		for i := 0; i < 3; i++ {
			if _, err := tx.CreateNode([]string{"Region"},
				map[string]value.Value{"name": value.Str(string(rune('a' + i))), "critical": value.Bool(true)}); err != nil {
				return err
			}
		}
		return nil
	})
	e := newTestEngine()
	_ = e.Install(Rule{
		Name:  "PerRegion",
		Event: Event{Kind: CreateNode, Label: "Patient"},
		Alert: "MATCH (r:Region {critical: true}) RETURN r.name AS region",
	})
	rep := run(t, s, e, "CREATE (:Patient {id: 1})")
	if rep.AlertNodes != 3 {
		t.Errorf("alert nodes = %d, want 3", rep.AlertNodes)
	}
}

func TestEmptyAlertRowsMeansNotCritical(t *testing.T) {
	s := graph.NewStore()
	e := newTestEngine()
	_ = e.Install(Rule{
		Name:  "NeverCritical",
		Event: Event{Kind: CreateNode, Label: "X"},
		Alert: "MATCH (z:Zilch) RETURN z",
	})
	rep := run(t, s, e, "CREATE (:X)")
	if rep.AlertRuns != 1 || rep.AlertNodes != 0 {
		t.Errorf("report: %+v", rep)
	}
}

func TestDeleteNodeEventBindsOld(t *testing.T) {
	s := graph.NewStore()
	_ = s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Doc"}, map[string]value.Value{"title": value.Str("T")})
		return err
	})
	e := newTestEngine()
	_ = e.Install(Rule{
		Name:  "OnDelete",
		Event: Event{Kind: DeleteNode, Label: "Doc"},
		Guard: "OLD.title IS NOT NULL",
		Alert: "RETURN OLD.title AS title",
	})
	rep := run(t, s, e, "MATCH (d:Doc) DELETE d")
	if rep.AlertNodes != 1 {
		t.Fatalf("report: %+v", rep)
	}
	_ = s.View(func(tx *graph.Tx) error {
		res, _ := cypher.Run(tx, "MATCH (a:Alert) RETURN a.title", nil)
		if res.Rows[0][0].String() != `"T"` {
			t.Errorf("OLD binding: %v", res.Rows)
		}
		return nil
	})
}

func TestRelationshipEvents(t *testing.T) {
	s := graph.NewStore()
	_ = s.Update(func(tx *graph.Tx) error {
		_, _ = tx.CreateNode([]string{"A"}, nil)
		_, _ = tx.CreateNode([]string{"B"}, nil)
		return nil
	})
	e := newTestEngine()
	_ = e.Install(Rule{
		Name:  "OnLink",
		Event: Event{Kind: CreateRelationship, Label: "LINKS"},
		Alert: "RETURN type(NEW) AS t",
	})
	rep := run(t, s, e, "MATCH (a:A), (b:B) CREATE (a)-[:LINKS]->(b)")
	if rep.AlertNodes != 1 {
		t.Fatalf("create rel: %+v", rep)
	}
	_ = e.Install(Rule{
		Name:  "OnUnlink",
		Event: Event{Kind: DeleteRelationship, Label: "LINKS"},
		Guard: "OLDTYPE = 'LINKS'",
		Alert: "RETURN 1 AS gone",
	})
	rep = run(t, s, e, "MATCH ()-[r:LINKS]->() DELETE r")
	if rep.AlertNodes != 1 {
		t.Fatalf("delete rel: %+v", rep)
	}
}

func TestLabelAndPropertyEvents(t *testing.T) {
	s := graph.NewStore()
	_ = s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Case"}, map[string]value.Value{"status": value.Str("open")})
		return err
	})
	e := newTestEngine()
	_ = e.Install(Rule{
		Name:  "OnEscalate",
		Event: Event{Kind: SetLabel, Label: "Escalated"},
		Alert: "RETURN LABEL AS label",
	})
	_ = e.Install(Rule{
		Name:  "OnStatusChange",
		Event: Event{Kind: SetProperty, Label: "Case", PropKey: "status"},
		Guard: "OLDVALUE = 'open' AND NEWVALUE = 'closed'",
		Alert: "RETURN KEY AS k",
	})
	_ = e.Install(Rule{
		Name:  "OnStatusRemoved",
		Event: Event{Kind: RemoveProperty, PropKey: "status"},
		Alert: "RETURN 1 AS removed",
	})
	rep := run(t, s, e, "MATCH (c:Case) SET c:Escalated, c.status = 'closed'")
	if rep.AlertNodes != 2 {
		t.Fatalf("set events: %+v", rep)
	}
	rep = run(t, s, e, "MATCH (c:Case) REMOVE c.status")
	if rep.AlertNodes != 1 {
		t.Fatalf("remove property: %+v", rep)
	}
}

func TestCascadingRules(t *testing.T) {
	s := graph.NewStore()
	e := newTestEngine()
	// Seed → Derived via action; a second rule watches Derived.
	_ = e.Install(Rule{
		Name:   "Derive",
		Event:  Event{Kind: CreateNode, Label: "Seed"},
		Action: "CREATE (:Derived {from: NEW.id})",
	})
	_ = e.Install(Rule{
		Name:  "WatchDerived",
		Event: Event{Kind: CreateNode, Label: "Derived"},
		Alert: "RETURN NEW.from AS origin",
	})
	rep := run(t, s, e, "CREATE (:Seed {id: 7})")
	if rep.Rounds < 2 {
		t.Errorf("expected cascade, rounds = %d", rep.Rounds)
	}
	if n := count(t, s, "MATCH (a:Alert) RETURN count(a)"); n != 1 {
		t.Errorf("alerts = %d", n)
	}
	if n := count(t, s, "MATCH (d:Derived {from: 7}) RETURN count(d)"); n != 1 {
		t.Errorf("derived nodes = %d", n)
	}
}

func TestCascadeDepthBound(t *testing.T) {
	s := graph.NewStore()
	e := newTestEngine()
	e.MaxCascadeDepth = 4
	// Self-perpetuating rule.
	_ = e.Install(Rule{
		Name:   "Loop",
		Event:  Event{Kind: CreateNode, Label: "Ping"},
		Action: "CREATE (:Ping)",
	})
	_, err := runErr(s, e, "CREATE (:Ping)")
	if !errors.Is(err, ErrCascadeDepth) {
		t.Fatalf("expected depth error, got %v", err)
	}
	// The failed transaction must leave nothing behind.
	if got := s.Stats().Nodes; got != 0 {
		t.Errorf("store has %d nodes after aborted cascade", got)
	}
}

func TestStrictTerminationRejectsCycle(t *testing.T) {
	e := newTestEngine()
	e.StrictTermination = true
	if err := e.Install(Rule{
		Name:   "SelfLoop",
		Event:  Event{Kind: CreateNode, Label: "Ping"},
		Action: "CREATE (:Ping)",
	}); !errors.Is(err, ErrNonTerminating) {
		t.Errorf("self-triggering rule should be rejected: %v", err)
	}
	// Alert-node rules watching the alert label also cycle.
	if err := e.Install(Rule{
		Name:  "AlertWatcher",
		Event: Event{Kind: CreateNode, Label: "Alert"},
		Alert: "RETURN 1 AS x",
	}); !errors.Is(err, ErrNonTerminating) {
		t.Errorf("alert-on-alert should be rejected: %v", err)
	}
	// A benign rule passes.
	if err := e.Install(Rule{
		Name:  "Fine",
		Event: Event{Kind: CreateNode, Label: "Patient"},
		Alert: "RETURN 1 AS x",
	}); err != nil {
		t.Errorf("benign rule rejected: %v", err)
	}
}

func TestTerminationAnalysis(t *testing.T) {
	e := newTestEngine()
	_ = e.Install(Rule{
		Name:   "AtoB",
		Event:  Event{Kind: CreateNode, Label: "A"},
		Action: "CREATE (:B)",
	})
	_ = e.Install(Rule{
		Name:   "BtoA",
		Event:  Event{Kind: CreateNode, Label: "B"},
		Action: "CREATE (:A)",
	})
	cycles := e.CheckTermination()
	if len(cycles) == 0 {
		t.Fatal("A→B→A cycle not detected")
	}
	edges := e.TriggeringGraph()
	if len(edges) != 2 {
		t.Errorf("triggering graph edges = %d, want 2 (%+v)", len(edges), edges)
	}
}

func TestPauseResumeDropList(t *testing.T) {
	s := graph.NewStore()
	e := newTestEngine()
	_ = e.Install(Rule{Name: "P", Event: Event{Kind: CreateNode, Label: "X"}, Alert: "RETURN 1 AS x"})
	if err := e.Pause("P"); err != nil {
		t.Fatal(err)
	}
	rep := run(t, s, e, "CREATE (:X)")
	if rep.AlertNodes != 0 {
		t.Error("paused rule fired")
	}
	if err := e.Resume("P"); err != nil {
		t.Fatal(err)
	}
	rep = run(t, s, e, "CREATE (:X)")
	if rep.AlertNodes != 1 {
		t.Error("resumed rule did not fire")
	}
	infos := e.Rules()
	if len(infos) != 1 || infos[0].Name != "P" || infos[0].Paused {
		t.Errorf("rules: %+v", infos)
	}
	if err := e.Drop("P"); err != nil {
		t.Fatal(err)
	}
	if err := e.Drop("P"); !errors.Is(err, ErrRuleNotFound) {
		t.Error("double drop")
	}
	if err := e.Pause("P"); !errors.Is(err, ErrRuleNotFound) {
		t.Error("pause missing")
	}
}

func TestInstallErrors(t *testing.T) {
	e := newTestEngine()
	if err := e.Install(Rule{Name: "", Alert: "RETURN 1"}); err == nil {
		t.Error("nameless rule")
	}
	if err := e.Install(Rule{Name: "Empty", Event: Event{Kind: CreateNode}}); !errors.Is(err, ErrEmptyRule) {
		t.Error("empty rule")
	}
	if err := e.Install(Rule{Name: "BadGuard", Guard: "((", Event: Event{Kind: CreateNode}}); err == nil {
		t.Error("bad guard should fail to compile")
	}
	if err := e.Install(Rule{Name: "BadAlert", Alert: "MATCHX", Event: Event{Kind: CreateNode}}); err == nil {
		t.Error("bad alert should fail to compile")
	}
	_ = e.Install(Rule{Name: "Dup", Alert: "RETURN 1 AS x", Event: Event{Kind: CreateNode}})
	if err := e.Install(Rule{Name: "Dup", Alert: "RETURN 1 AS x", Event: Event{Kind: CreateNode}}); !errors.Is(err, ErrRuleExists) {
		t.Error("duplicate install")
	}
}

func TestActionReceivesAlertColumns(t *testing.T) {
	s := graph.NewStore()
	_ = s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Region"}, map[string]value.Value{"name": value.Str("lom")})
		return err
	})
	e := newTestEngine()
	_ = e.Install(Rule{
		Name:   "Tag",
		Event:  Event{Kind: CreateNode, Label: "Patient"},
		Alert:  "MATCH (r:Region) RETURN r AS region, r.name AS rname",
		Action: "SET region.flagged = rname",
	})
	run(t, s, e, "CREATE (:Patient)")
	_ = s.View(func(tx *graph.Tx) error {
		res, _ := cypher.Run(tx, "MATCH (r:Region) RETURN r.flagged", nil)
		if res.Rows[0][0].String() != `"lom"` {
			t.Errorf("action binding: %v", res.Rows)
		}
		return nil
	})
}

func TestOnAlertHook(t *testing.T) {
	s := graph.NewStore()
	e := newTestEngine()
	var hooked []graph.NodeID
	e.OnAlert = func(tx *graph.Tx, alert graph.NodeID) error {
		hooked = append(hooked, alert)
		return nil
	}
	_ = e.Install(Rule{Name: "H", Event: Event{Kind: CreateNode, Label: "X"}, Alert: "RETURN 1 AS x"})
	run(t, s, e, "CREATE (:X)")
	if len(hooked) != 1 {
		t.Errorf("hook calls = %d", len(hooked))
	}
}

func TestEntityColumnStoredAsID(t *testing.T) {
	s := graph.NewStore()
	e := newTestEngine()
	_ = e.Install(Rule{
		Name:  "Ent",
		Event: Event{Kind: CreateNode, Label: "X"},
		Alert: "RETURN NEW AS theNode",
	})
	run(t, s, e, "CREATE (:X)")
	_ = s.View(func(tx *graph.Tx) error {
		res, _ := cypher.Run(tx, "MATCH (a:Alert) RETURN a.theNode", nil)
		if res.Rows[0][0].Kind() != value.KindInt {
			t.Errorf("entity column should be stored as id, got %s", res.Rows[0][0].Kind())
		}
		return nil
	})
}

func TestClassification(t *testing.T) {
	e := newTestEngine()
	e.Resolver = func(label string) (string, bool) {
		switch label {
		case "Mutation", "Effect":
			return "E", true
		case "Sequence", "Lab":
			return "A", true
		case "Region":
			return "R", true
		}
		return "", false
	}
	// R1: intra-hub, single-state (mutation + effect, both hub E).
	_ = e.Install(Rule{
		Name:  "R1",
		Hub:   "E",
		Event: Event{Kind: CreateNode, Label: "Mutation"},
		Alert: "MATCH (NEW)-[:HasEffect]->(ef:Effect {level: 'critical'}) RETURN ef",
	})
	// R2: inter-hub (lab in A, region in R), single-state.
	_ = e.Install(Rule{
		Name:  "R2",
		Hub:   "A",
		Event: Event{Kind: CreateNode, Label: "Sequence"},
		Guard: "NEW.variant IS NULL",
		Alert: `MATCH (u:Sequence)-[:SequencedAt]->(:Lab)-[:LocatedIn]->(r:Region)
		        WHERE u.variant IS NULL
		        WITH r, count(u) AS unassigned WHERE unassigned > 100
		        RETURN r.name AS region, unassigned`,
	})
	// R4-style: multi-state (touches Summary/Current).
	_ = e.Install(Rule{
		Name:  "R4",
		Hub:   "C",
		Event: Event{Kind: CreateNode, Label: "Sequence"},
		Alert: `MATCH (a:Alert {rule: 'R5'})-[:has]-(:Summary)-[:next]-(:Current)
		        RETURN a.IcuPatients AS prev`,
	})
	c1, _ := e.ClassifyRule("R1")
	if c1.Scope != IntraHub || c1.State != SingleState {
		t.Errorf("R1: %+v", c1)
	}
	c2, _ := e.ClassifyRule("R2")
	if c2.Scope != InterHub || c2.State != SingleState {
		t.Errorf("R2: %+v", c2)
	}
	if len(c2.Hubs) != 2 {
		t.Errorf("R2 hubs: %v", c2.Hubs)
	}
	c4, _ := e.ClassifyRule("R4")
	if c4.State != MultiState {
		t.Errorf("R4: %+v", c4)
	}
	if _, err := e.ClassifyRule("nope"); !errors.Is(err, ErrRuleNotFound) {
		t.Error("classify missing rule")
	}
	// String renderings.
	if IntraHub.String() != "intra-hub" || InterHub.String() != "inter-hub" ||
		SingleState.String() != "single-state" || MultiState.String() != "multi-state" {
		t.Error("enum strings")
	}
	if !strings.Contains(Event{Kind: SetProperty, Label: "Case", PropKey: "s"}.String(), "Case.s") {
		t.Error("event string")
	}
}

func TestValidatorSeesMergedChanges(t *testing.T) {
	s := graph.NewStore()
	// A validator that rejects any transaction creating more than 2 nodes
	// must also see nodes created by cascaded rules.
	boom := errors.New("too many")
	s.AddValidator(func(tx *graph.Tx) error {
		if len(tx.Data().CreatedNodes) > 2 {
			return boom
		}
		return nil
	})
	e := newTestEngine()
	_ = e.Install(Rule{
		Name:   "Fanout",
		Event:  Event{Kind: CreateNode, Label: "Seed"},
		Action: "CREATE (:Leaf), (:Leaf)",
	})
	_, err := runErr(s, e, "CREATE (:Seed)")
	if !errors.Is(err, boom) {
		t.Fatalf("validator should see rule-created nodes: %v", err)
	}
	if s.Stats().Nodes != 0 {
		t.Error("aborted transaction left nodes behind")
	}
}

func TestPerRuleStats(t *testing.T) {
	s := graph.NewStore()
	e := newTestEngine()
	_ = e.Install(Rule{
		Name:  "counted",
		Event: Event{Kind: CreateNode, Label: "X"},
		Guard: "NEW.fire = true",
		Alert: "RETURN 1 AS one",
	})
	run(t, s, e, "CREATE (:X {fire: true}), (:X {fire: false}), (:X {fire: true})")
	infos := e.Rules()
	if len(infos) != 1 {
		t.Fatal("rules")
	}
	st := infos[0].Stats
	if st.GuardChecks != 3 || st.Activations != 2 || st.AlertNodes != 2 {
		t.Errorf("stats: %+v", st)
	}
	run(t, s, e, "CREATE (:X {fire: true})")
	st = e.Rules()[0].Stats
	if st.GuardChecks != 4 || st.AlertNodes != 3 {
		t.Errorf("stats accumulate: %+v", st)
	}
}

func TestEnforceIntraHubGuards(t *testing.T) {
	e := newTestEngine()
	e.EnforceIntraHubGuards = true
	e.Resolver = func(label string) (string, bool) {
		switch label {
		case "Sequence", "Lab":
			return "A", true
		case "Region":
			return "R", true
		}
		return "", false
	}
	// A guard staying inside the rule's hub installs fine.
	if err := e.Install(Rule{
		Name:  "local",
		Hub:   "A",
		Event: Event{Kind: CreateNode, Label: "Sequence"},
		Guard: "NEW.variant IS NULL AND (NEW)-[:SequencedAt]->(:Lab)",
		Alert: "RETURN 1 AS x",
	}); err != nil {
		t.Fatalf("intra-hub guard rejected: %v", err)
	}
	// A guard traversing into another hub is rejected.
	if err := e.Install(Rule{
		Name:  "leaky",
		Hub:   "A",
		Event: Event{Kind: CreateNode, Label: "Sequence"},
		Guard: "(NEW)-[:SequencedAt]->(:Lab)-[:LocatedIn]->(:Region)",
		Alert: "RETURN 1 AS x",
	}); !errors.Is(err, ErrGuardNotIntraHub) {
		t.Fatalf("cross-hub guard accepted: %v", err)
	}
	// Unresolvable labels stay permitted (conservative).
	if err := e.Install(Rule{
		Name:  "unknownLabel",
		Hub:   "A",
		Event: Event{Kind: CreateNode, Label: "Sequence"},
		Guard: "(NEW)-[:X]->(:SomethingElse)",
		Alert: "RETURN 1 AS x",
	}); err != nil {
		t.Fatalf("unresolvable label rejected: %v", err)
	}
	// The ALERT may reach anywhere — only guards are constrained.
	if err := e.Install(Rule{
		Name:  "globalAlert",
		Hub:   "A",
		Event: Event{Kind: CreateNode, Label: "Sequence"},
		Guard: "NEW.variant IS NULL",
		Alert: "MATCH (:Lab)-[:LocatedIn]->(r:Region) RETURN r.name AS region",
	}); err != nil {
		t.Fatalf("inter-hub alert rejected: %v", err)
	}
}

func BenchmarkGuardEvaluation(b *testing.B) {
	s := graph.NewStore()
	e := NewEngine()
	_ = e.Install(Rule{
		Name:  "bench",
		Event: Event{Kind: CreateNode, Label: "P"},
		Guard: "NEW.v > 10 AND NEW.kind = 'x'",
		Alert: "RETURN NEW.v AS v",
	})
	tx := s.Begin(graph.ReadWrite)
	defer tx.Rollback()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cypher.Run(tx, "CREATE (:P {v: 5, kind: 'x'})", nil); err != nil {
			b.Fatal(err)
		}
		data := tx.ResetData()
		if _, err := e.Process(tx, data); err != nil {
			b.Fatal(err)
		}
		// Process restores the merged change record for commit validators;
		// drain it so the next iteration only sees its own event.
		tx.ResetData()
	}
}

func BenchmarkAlertNodeProduction(b *testing.B) {
	s := graph.NewStore()
	e := NewEngine()
	_ = e.Install(Rule{
		Name:  "bench",
		Event: Event{Kind: CreateNode, Label: "P"},
		Alert: "RETURN NEW.v AS v",
	})
	tx := s.Begin(graph.ReadWrite)
	defer tx.Rollback()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cypher.Run(tx, "CREATE (:P {v: 5})", nil); err != nil {
			b.Fatal(err)
		}
		data := tx.ResetData()
		if _, err := e.Process(tx, data); err != nil {
			b.Fatal(err)
		}
		tx.ResetData()
	}
}

// Pausing a rule while another goroutine is processing events must be safe:
// the paused flag is read by Process without holding the engine lock, so it
// is atomic. Run with -race to exercise the guarantee this test documents.
func TestPauseRaceWithProcess(t *testing.T) {
	s := graph.NewStore()
	e := newTestEngine()
	_ = e.Install(Rule{
		Name:  "flip",
		Event: Event{Kind: CreateNode, Label: "P"},
		Alert: "RETURN 1 AS one",
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = e.Pause("flip")
				_ = e.Resume("flip")
			}
		}
	}()
	for i := 0; i < 200; i++ {
		run(t, s, e, "CREATE (:P)")
	}
	close(stop)
	wg.Wait()
	// Every Process saw the rule either paused or active — never torn.
	fired := count(t, s, "MATCH (a:Alert) RETURN count(a) AS n")
	if fired < 0 || fired > 200 {
		t.Fatalf("alerts = %d, want within [0, 200]", fired)
	}
}

// The dispatch index must hand Process only the rules whose event kind and
// label can match the transaction, not the whole rule list.
func TestDispatchIndexSkipsIrrelevantRules(t *testing.T) {
	s := graph.NewStore()
	e := newTestEngine()
	for i := 0; i < 100; i++ {
		_ = e.Install(Rule{
			Name:  fmt.Sprintf("other%d", i),
			Event: Event{Kind: CreateNode, Label: fmt.Sprintf("L%d", i)},
			Alert: "RETURN 1 AS one",
		})
	}
	// Row-less alert queries keep the graph free of Alert nodes, so no
	// cascade rounds muddy the dispatch counts.
	_ = e.Install(Rule{
		Name:  "hit",
		Event: Event{Kind: CreateNode, Label: "Hit"},
		Guard: "true = true",
		Alert: "MATCH (z:Zilch) RETURN z",
	})
	rep := run(t, s, e, "CREATE (:Hit)")
	if rep.RulesConsidered != 1 {
		t.Fatalf("RulesConsidered = %d, want 1 (100 irrelevant rules skipped)", rep.RulesConsidered)
	}
	if rep.GuardChecks != 1 || rep.GuardPasses != 1 {
		t.Fatalf("report = %+v, want the hit rule to fire once", rep)
	}

	// A label-less rule is a wildcard: considered for every event of its kind.
	_ = e.Install(Rule{
		Name:  "wild",
		Event: Event{Kind: CreateNode},
		Alert: "MATCH (z:Zilch) RETURN z",
	})
	rep = run(t, s, e, "CREATE (:Hit)")
	if rep.RulesConsidered != 2 {
		t.Fatalf("RulesConsidered = %d, want 2 (hit + wildcard)", rep.RulesConsidered)
	}

	// Deleting an indexed-away label still dispatches to its delete rules.
	rep = run(t, s, e, "MATCH (h:Hit) DELETE h")
	if rep.RulesConsidered != 0 {
		t.Fatalf("RulesConsidered = %d on delete, want 0", rep.RulesConsidered)
	}
}

// Candidates activated under several labels of one node are deduplicated.
func TestDispatchIndexDedupsMultiLabelMatches(t *testing.T) {
	s := graph.NewStore()
	e := newTestEngine()
	_ = e.Install(Rule{
		Name:  "wild",
		Event: Event{Kind: CreateNode},
		Alert: "MATCH (z:Zilch) RETURN z",
	})
	_ = e.Install(Rule{
		Name:  "labelled",
		Event: Event{Kind: CreateNode, Label: "A"},
		Alert: "MATCH (z:Zilch) RETURN z",
	})
	rep := run(t, s, e, "CREATE (:A:B)")
	if rep.RulesConsidered != 2 {
		t.Fatalf("RulesConsidered = %d, want 2 (no duplicates)", rep.RulesConsidered)
	}
	// Each rule's guard ran once; a duplicated candidate would double-check.
	if rep.GuardChecks != 2 {
		t.Fatalf("GuardChecks = %d, want 2", rep.GuardChecks)
	}
}

// Dropping a rule and re-installing it under the same name resets its
// RuleStats (the compiled rule is new) but keeps accumulating into the same
// registry counters (Prometheus counters are cumulative by design).
func TestDropReinstallStatsSemantics(t *testing.T) {
	s := graph.NewStore()
	reg := metrics.NewRegistry()
	e := newTestEngine()
	e.Metrics = EngineMetrics{
		RuleFired:     reg.CounterVec("fired", "rule", "test"),
		GuardRejected: reg.CounterVec("rejected", "rule", "test"),
	}
	install := func() {
		if err := e.Install(Rule{
			Name:  "cycle",
			Event: Event{Kind: CreateNode, Label: "X"},
			Alert: "RETURN 1 AS one",
		}); err != nil {
			t.Fatal(err)
		}
	}
	install()
	run(t, s, e, "CREATE (:X)")
	run(t, s, e, "CREATE (:X)")
	if st := e.Rules()[0].Stats; st.Activations != 2 {
		t.Fatalf("activations before drop = %d, want 2", st.Activations)
	}
	if err := e.Drop("cycle"); err != nil {
		t.Fatal(err)
	}
	install()
	run(t, s, e, "CREATE (:X)")
	if st := e.Rules()[0].Stats; st.Activations != 1 {
		t.Fatalf("RuleStats after reinstall = %d activations, want 1 (reset)", st.Activations)
	}
	if got := reg.CounterVec("fired", "rule", "test").With("cycle").Value(); got != 3 {
		t.Fatalf("registry counter after reinstall = %d, want 3 (cumulative)", got)
	}
}

// An AfterAsync rule without a sink — or whose sink reports the pipeline is
// not running — evaluates synchronously, exactly like a Before rule.
func TestAsyncPhaseSyncFallback(t *testing.T) {
	s := graph.NewStore()
	e := newTestEngine()
	_ = e.Install(Rule{
		Name:  "deferred",
		Event: Event{Kind: CreateNode, Label: "P"},
		Alert: "RETURN NEW.v AS v",
		Phase: AfterAsync,
	})

	// No sink installed at all.
	rep := run(t, s, e, "CREATE (:P {v: 1})")
	if rep.AsyncEnqueued != 0 || rep.AlertNodes != 1 {
		t.Fatalf("no-sink report = %+v, want synchronous alert", rep)
	}

	// Sink present but answering "pipeline not running".
	e.AsyncSink = func(tx *graph.Tx, item AsyncItem) (bool, error) {
		return false, ErrAsyncFallback
	}
	rep = run(t, s, e, "CREATE (:P {v: 2})")
	if rep.AsyncEnqueued != 0 || rep.AlertNodes != 1 {
		t.Fatalf("fallback report = %+v, want synchronous alert", rep)
	}
}

// A live sink receives the activation instead of the engine evaluating it.
func TestAsyncPhaseEnqueuesToSink(t *testing.T) {
	s := graph.NewStore()
	e := newTestEngine()
	var got []AsyncItem
	e.AsyncSink = func(tx *graph.Tx, item AsyncItem) (bool, error) {
		got = append(got, item)
		return true, nil
	}
	_ = e.Install(Rule{
		Name:  "deferred",
		Hub:   "H",
		Event: Event{Kind: CreateNode, Label: "P"},
		Guard: "NEW.v > 10",
		Alert: "RETURN NEW.v AS v",
		Phase: AfterAsync,
	})
	rep := run(t, s, e, "CREATE (:P {v: 5}), (:P {v: 50})")
	if rep.AsyncEnqueued != 1 || rep.AlertNodes != 0 {
		t.Fatalf("report = %+v, want one enqueue and no synchronous alerts", rep)
	}
	if len(got) != 1 || got[0].Rule != "deferred" || got[0].Hub != "H" {
		t.Fatalf("sink received %+v", got)
	}
	// The binding carries the guard's NEW context for later evaluation.
	if _, ok := got[0].Binding["NEW"]; !ok {
		t.Fatalf("sink binding = %v, want NEW bound", got[0].Binding)
	}
}

func BenchmarkDispatchManyIrrelevantRules(b *testing.B) {
	s := graph.NewStore()
	e := NewEngine()
	for i := 0; i < 200; i++ {
		_ = e.Install(Rule{
			Name:  fmt.Sprintf("other%d", i),
			Event: Event{Kind: CreateNode, Label: fmt.Sprintf("L%d", i)},
			Guard: "NEW.v > 10",
			Alert: "RETURN NEW.v AS v",
		})
	}
	_ = e.Install(Rule{
		Name:  "hot",
		Event: Event{Kind: CreateNode, Label: "P"},
		Guard: "NEW.v > 10",
		Alert: "RETURN NEW.v AS v",
	})
	tx := s.Begin(graph.ReadWrite)
	defer tx.Rollback()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cypher.Run(tx, "CREATE (:P {v: 5})", nil); err != nil {
			b.Fatal(err)
		}
		data := tx.ResetData()
		rep, err := e.Process(tx, data)
		if err != nil {
			b.Fatal(err)
		}
		if rep.RulesConsidered != 1 {
			b.Fatalf("RulesConsidered = %d", rep.RulesConsidered)
		}
		tx.ResetData()
	}
}
