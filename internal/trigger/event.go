// Package trigger implements the paper's reactive rules for knowledge
// graphs (§III-B): Event–Guard–Alert quadruples evaluated over the change
// records of graph transactions, with Alert-node production, cascade
// control, rule classification (§III-C) and conservative termination
// analysis in the tradition of active databases.
package trigger

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/value"
)

// EventKind enumerates the graph-change events a rule can monitor —
// creation/deletion of nodes and relationships and setting/removal of
// labels and properties, exactly the event taxonomy of §III-B.
type EventKind int

// Event kinds.
const (
	CreateNode EventKind = iota
	DeleteNode
	CreateRelationship
	DeleteRelationship
	SetLabel
	RemoveLabel
	SetProperty
	RemoveProperty
)

// String returns the event kind name.
func (k EventKind) String() string {
	switch k {
	case CreateNode:
		return "CREATE NODE"
	case DeleteNode:
		return "DELETE NODE"
	case CreateRelationship:
		return "CREATE RELATIONSHIP"
	case DeleteRelationship:
		return "DELETE RELATIONSHIP"
	case SetLabel:
		return "SET LABEL"
	case RemoveLabel:
		return "REMOVE LABEL"
	case SetProperty:
		return "SET PROPERTY"
	case RemoveProperty:
		return "REMOVE PROPERTY"
	default:
		return fmt.Sprintf("EVENT(%d)", int(k))
	}
}

// Event selects the graph changes that activate a rule. Label restricts
// node events to nodes carrying the label (like relational triggers
// targeting a table, as the paper prescribes) and relationship events to
// the relationship type; for SetLabel/RemoveLabel it names the label
// assigned or removed. PropKey optionally narrows property events to one
// key. Empty selectors match everything of the kind.
type Event struct {
	Kind    EventKind
	Label   string
	PropKey string
}

// String renders the event selector.
func (e Event) String() string {
	s := e.Kind.String()
	if e.Label != "" {
		s += " " + e.Label
	}
	if e.PropKey != "" {
		s += "." + e.PropKey
	}
	return s
}

// Binding carries the transition variables made visible to a rule's guard
// and alert for one event occurrence: NEW for the affected live entity,
// OLD for deleted snapshots and previous property values, plus KEY / LABEL
// metadata where applicable.
type Binding map[string]value.Value

// occurrences enumerates the bindings for every change in data matching
// the event selector. Entities deleted later in the same round are skipped.
func (e Event) occurrences(tx *graph.Tx, data *graph.TxData) []Binding {
	var out []Binding
	switch e.Kind {
	case CreateNode:
		for _, id := range data.CreatedNodes {
			if !tx.NodeExists(id) {
				continue
			}
			if e.Label != "" && !tx.NodeHasLabel(id, e.Label) {
				continue
			}
			out = append(out, Binding{"NEW": value.Node(int64(id))})
		}
	case DeleteNode:
		for _, snap := range data.DeletedNodes {
			if e.Label != "" && !snap.HasLabel(e.Label) {
				continue
			}
			out = append(out, Binding{
				"NEW":       value.Null,
				"OLD":       value.Map(snap.Props),
				"OLDLABELS": labelList(snap.Labels),
			})
		}
	case CreateRelationship:
		for _, id := range data.CreatedRels {
			typ, _, _, ok := tx.RelEndpoints(id)
			if !ok {
				continue
			}
			if e.Label != "" && typ != e.Label {
				continue
			}
			out = append(out, Binding{"NEW": value.Relationship(int64(id))})
		}
	case DeleteRelationship:
		for _, snap := range data.DeletedRels {
			if e.Label != "" && snap.Type != e.Label {
				continue
			}
			out = append(out, Binding{
				"NEW":     value.Null,
				"OLD":     value.Map(snap.Props),
				"OLDTYPE": value.Str(snap.Type),
			})
		}
	case SetLabel, RemoveLabel:
		changes := data.AssignedLabels
		if e.Kind == RemoveLabel {
			changes = data.RemovedLabels
		}
		for _, lc := range changes {
			if e.Label != "" && lc.Label != e.Label {
				continue
			}
			if !tx.NodeExists(lc.Node) {
				continue
			}
			out = append(out, Binding{
				"NEW":   value.Node(int64(lc.Node)),
				"LABEL": value.Str(lc.Label),
			})
		}
	case SetProperty, RemoveProperty:
		changes := data.AssignedProps
		if e.Kind == RemoveProperty {
			changes = data.RemovedProps
		}
		for _, pc := range changes {
			if e.PropKey != "" && pc.Key != e.PropKey {
				continue
			}
			b := Binding{
				"KEY":      value.Str(pc.Key),
				"OLDVALUE": pc.Old,
				"NEWVALUE": pc.New,
			}
			if pc.Kind == graph.NodeEntity {
				if !tx.NodeExists(pc.Node) {
					continue
				}
				if e.Label != "" && !tx.NodeHasLabel(pc.Node, e.Label) {
					continue
				}
				b["NEW"] = value.Node(int64(pc.Node))
			} else {
				typ, _, _, ok := tx.RelEndpoints(pc.Rel)
				if !ok {
					continue
				}
				if e.Label != "" && typ != e.Label {
					continue
				}
				b["NEW"] = value.Relationship(int64(pc.Rel))
			}
			out = append(out, b)
		}
	}
	return out
}

func labelList(labels []string) value.Value {
	out := make([]value.Value, len(labels))
	for i, l := range labels {
		out[i] = value.Str(l)
	}
	return value.ListOf(out)
}
