package trigger

import (
	"strings"
	"testing"
)

// fig3Rule is the paper's R2 (Fig. 3), whose APOC translation is Fig. 7.
var fig3Rule = Rule{
	Name:  "R2",
	Hub:   "A",
	Event: Event{Kind: CreateNode, Label: "Sequence"},
	Guard: "NEW.variant IS NULL",
	Alert: `MATCH (u:Sequence)-[:SequencedAt]->(:Lab)-[:LocatedIn]->(r:Region)
	        WHERE u.variant IS NULL
	        WITH r.name AS region, count(u) AS counter
	        WHERE counter > 100
	        RETURN region, counter`,
}

func TestTranslateAPOCFig7Shape(t *testing.T) {
	out, err := TranslateAPOC(fig3Rule, "neo4j", "before")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"CALL apoc.trigger.install('neo4j', 'R2'",
		"UNWIND $createdNodes AS cNode",
		"apoc.do.when",
		"'Sequence' IN labels(NEW)",
		"NEW.variant IS NULL",
		"CREATE (:Alert {rule: 'R2', hub: 'A', dateTime: datetime(), region: region, counter: counter})",
		"{phase: 'before'}",
		"YIELD value RETURN *",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("translation missing %q:\n%s", want, out)
		}
	}
	// The original RETURN must have been replaced by WITH + CREATE.
	if strings.Count(strings.ToUpper(out), "RETURN REGION") > 0 {
		t.Errorf("alert RETURN should be rewritten:\n%s", out)
	}
}

func TestTranslateAPOCDefaults(t *testing.T) {
	out, err := TranslateAPOC(fig3Rule, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "'neo4j'") || !strings.Contains(out, "{phase: 'before'}") {
		t.Errorf("defaults not applied:\n%s", out)
	}
}

func TestTranslateAPOCEventKinds(t *testing.T) {
	del := Rule{
		Name:  "onDelete",
		Hub:   "C",
		Event: Event{Kind: DeleteNode, Label: "Doc"},
		Alert: "RETURN 1 AS gone",
	}
	out, err := TranslateAPOC(del, "neo4j", "after")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "$deletedNodes") || !strings.Contains(out, "{phase: 'after'}") {
		t.Errorf("delete translation:\n%s", out)
	}
	rel := Rule{
		Name:  "onLink",
		Event: Event{Kind: CreateRelationship, Label: "LINKS"},
		Alert: "RETURN 1 AS linked",
	}
	out, err = TranslateAPOC(rel, "neo4j", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "$createdRelationships") || !strings.Contains(out, "type(NEW) = 'LINKS'") {
		t.Errorf("rel translation:\n%s", out)
	}
	// Guard-only rule translates to an unconditional alert node.
	guardOnly := Rule{
		Name:  "g",
		Hub:   "E",
		Event: Event{Kind: CreateNode, Label: "X"},
		Guard: "NEW.v > 1",
	}
	out, err = TranslateAPOC(guardOnly, "neo4j", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CREATE (:Alert {rule: 'g', hub: 'E', dateTime: datetime()})") {
		t.Errorf("guard-only translation:\n%s", out)
	}
}

func TestTranslateAPOCUnsupported(t *testing.T) {
	if _, err := TranslateAPOC(Rule{
		Name:  "p",
		Event: Event{Kind: SetProperty, PropKey: "x"},
		Alert: "RETURN 1 AS one",
	}, "", ""); err == nil {
		t.Error("property events are outside the Fig. 6 scheme")
	}
	if _, err := TranslateAPOC(Rule{
		Name:   "a",
		Event:  Event{Kind: CreateNode},
		Action: "CREATE (:X)",
	}, "", ""); err == nil {
		t.Error("action rules are not alert-node rules")
	}
	if _, err := TranslateAPOC(Rule{
		Name:  "bad",
		Event: Event{Kind: CreateNode},
		Alert: "MATCH (n) DELETE n", // no RETURN
	}, "", ""); err == nil {
		t.Error("alert without RETURN cannot be translated")
	}
}

func TestTranslateAllAPOC(t *testing.T) {
	e := newTestEngine()
	_ = e.Install(fig3Rule)
	_ = e.Install(Rule{
		Name:  "propRule",
		Event: Event{Kind: SetProperty, PropKey: "status"},
		Alert: "RETURN 1 AS one",
	})
	translated, skipped := e.TranslateAllAPOC("neo4j", "before")
	if len(translated) != 1 || len(skipped) != 1 {
		t.Fatalf("translated=%d skipped=%d", len(translated), len(skipped))
	}
	if !strings.Contains(skipped[0], "propRule") {
		t.Errorf("skip reason: %v", skipped)
	}
}

func TestTranslateAPOCRulePhase(t *testing.T) {
	// With no explicit phase argument, the rule's own phase decides the
	// APOC trigger phase: AfterAsync rules install as {phase: 'afterAsync'}.
	async := fig3Rule
	async.Phase = AfterAsync
	out, err := TranslateAPOC(async, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "{phase: 'afterAsync'}") {
		t.Errorf("AfterAsync rule not translated to afterAsync phase:\n%s", out)
	}
	// An explicit phase argument still overrides.
	out, err = TranslateAPOC(async, "", "before")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "{phase: 'before'}") {
		t.Errorf("explicit phase not honored:\n%s", out)
	}
}
