package trigger

// Confluence analysis, the second classic property of reactive computations
// the paper cites alongside termination (§III-B, [11]): when several rules
// are activated by the same event, the final state should not depend on the
// order in which the engine fires them. This file implements a conservative
// static check: two rules are reported as potentially non-confluent when
// the same event can activate both and their write footprints conflict
// (one writes what the other reads or writes).

import "strings"

// ConfluenceWarning reports one potentially order-dependent rule pair.
type ConfluenceWarning struct {
	RuleA string
	RuleB string
	Event string // the shared activating event
	Why   string
}

// eventOverlap reports whether some single graph change can activate both
// selectors.
func eventOverlap(a, b Event) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Label != "" && b.Label != "" && a.Label != b.Label {
		return false
	}
	if a.Kind == SetProperty || a.Kind == RemoveProperty {
		if a.PropKey != "" && b.PropKey != "" && a.PropKey != b.PropKey {
			return false
		}
	}
	return true
}

// writesConflict reports whether the write footprint of a conflicts with
// the read or write footprint of b, with an explanation.
func writesConflict(a, b footprint) (bool, string) {
	if a.deletes && (len(b.readLabels) > 0 || len(b.readRelTypes) > 0 || b.deletes) {
		return true, "deletes entities the other may read"
	}
	// Writer/reader label overlap.
	for _, wl := range a.created {
		for _, rl := range b.readLabels {
			if wl == rl {
				return true, "creates :" + wl + " which the other reads"
			}
		}
	}
	for _, wt := range a.createdRels {
		for _, rt := range b.readRelTypes {
			if wt == rt {
				return true, "creates relationship :" + wt + " which the other reads"
			}
		}
	}
	// Property writes vs. property writes or reads are conservative: any
	// shared key (or a wildcard) conflicts.
	for _, ka := range a.setsProps {
		for _, kb := range b.setsProps {
			if ka == "*" || kb == "*" || ka == kb {
				return true, "both set property ." + nonWildcard(ka, kb)
			}
		}
		for _, kb := range b.removesProps {
			if ka == "*" || ka == kb {
				return true, "one sets and one removes property ." + nonWildcard(ka, kb)
			}
		}
	}
	for _, la := range a.setsLabels {
		for _, lb := range b.setsLabels {
			if la == lb {
				return true, "both set label :" + la
			}
		}
	}
	return false, ""
}

func nonWildcard(a, b string) string {
	if a != "*" {
		return a
	}
	return b
}

// alertOnly reports whether the rule's only write effect is alert-node
// creation: alert nodes carry fresh identity and are append-only, so two
// alert-only rules commute even when they read the same data.
func alertOnly(fp footprint, alertLabel string) bool {
	if fp.deletes || len(fp.setsProps) > 0 || len(fp.setsLabels) > 0 ||
		len(fp.removesProps) > 0 || len(fp.createdRels) > 0 {
		return false
	}
	for _, l := range fp.created {
		if l != alertLabel {
			return false
		}
	}
	return true
}

// readsLabel reports whether the footprint's read set contains the label.
func readsLabel(fp footprint, label string) bool {
	for _, l := range fp.readLabels {
		if l == label {
			return true
		}
	}
	return false
}

// CheckConfluence conservatively reports rule pairs whose outcome may
// depend on firing order. Pairs of alert-node-only rules are confluent by
// construction and never reported.
func (e *Engine) CheckConfluence() []ConfluenceWarning {
	e.mu.RLock()
	rules := e.ruleListLocked()
	e.mu.RUnlock()

	var out []ConfluenceWarning
	for i := 0; i < len(rules); i++ {
		for j := i + 1; j < len(rules); j++ {
			a, b := rules[i], rules[j]
			if !eventOverlap(a.Event, b.Event) {
				continue
			}
			fa, fb := a.footprint(), b.footprint()
			if alertOnly(fa, a.AlertLabel) && alertOnly(fb, b.AlertLabel) &&
				!readsLabel(fa, b.AlertLabel) && !readsLabel(fb, a.AlertLabel) {
				// Two append-only alert producers commute — unless one of
				// them reads the other's alerts, in which case the firing
				// order within a round is observable.
				continue
			}
			if conflict, why := writesConflict(fa, fb); conflict {
				out = append(out, ConfluenceWarning{
					RuleA: a.Name, RuleB: b.Name,
					Event: a.Event.String(), Why: why,
				})
				continue
			}
			if conflict, why := writesConflict(fb, fa); conflict {
				out = append(out, ConfluenceWarning{
					RuleA: a.Name, RuleB: b.Name,
					Event: a.Event.String(), Why: why,
				})
			}
		}
	}
	return out
}

// String renders a warning.
func (w ConfluenceWarning) String() string {
	var sb strings.Builder
	sb.WriteString(w.RuleA)
	sb.WriteString(" / ")
	sb.WriteString(w.RuleB)
	sb.WriteString(" on ")
	sb.WriteString(w.Event)
	sb.WriteString(": ")
	sb.WriteString(w.Why)
	return sb.String()
}
