package trigger

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestParseRuleFull(t *testing.T) {
	src := `CREATE TRIGGER R2 ON HUB A
AFTER CREATE OF NODE Sequence
WHEN NEW.variant IS NULL
ALERT
  MATCH (u:Sequence) WHERE u.variant IS NULL
  WITH count(u) AS unassigned WHERE unassigned > 2
  RETURN unassigned`
	r, err := ParseRule(src)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "R2" || r.Hub != "A" {
		t.Errorf("header: %+v", r)
	}
	if r.Event.Kind != CreateNode || r.Event.Label != "Sequence" {
		t.Errorf("event: %+v", r.Event)
	}
	if r.Guard != "NEW.variant IS NULL" {
		t.Errorf("guard: %q", r.Guard)
	}
	if !strings.Contains(r.Alert, "RETURN unassigned") {
		t.Errorf("alert: %q", r.Alert)
	}
	if r.Action != "" {
		t.Errorf("action: %q", r.Action)
	}
}

func TestParseRuleEventForms(t *testing.T) {
	cases := []struct {
		clause string
		want   Event
	}{
		{"AFTER CREATE OF NODE Patient", Event{Kind: CreateNode, Label: "Patient"}},
		{"AFTER CREATE OF NODE", Event{Kind: CreateNode}},
		{"AFTER DELETE OF NODE Doc", Event{Kind: DeleteNode, Label: "Doc"}},
		{"AFTER CREATE OF RELATIONSHIP LINKS", Event{Kind: CreateRelationship, Label: "LINKS"}},
		{"AFTER DELETE OF EDGE LINKS", Event{Kind: DeleteRelationship, Label: "LINKS"}},
		{"AFTER SET OF LABEL Escalated", Event{Kind: SetLabel, Label: "Escalated"}},
		{"AFTER REMOVE OF LABEL Escalated", Event{Kind: RemoveLabel, Label: "Escalated"}},
		{"AFTER SET OF PROPERTY Case.status", Event{Kind: SetProperty, Label: "Case", PropKey: "status"}},
		{"AFTER SET OF PROPERTY status", Event{Kind: SetProperty, PropKey: "status"}},
		{"AFTER REMOVE OF PROPERTY Case.status", Event{Kind: RemoveProperty, Label: "Case", PropKey: "status"}},
	}
	for _, c := range cases {
		r, err := ParseRule("CREATE TRIGGER T\n" + c.clause + "\nWHEN true")
		if err != nil {
			t.Errorf("%s: %v", c.clause, err)
			continue
		}
		if r.Event != c.want {
			t.Errorf("%s: got %+v, want %+v", c.clause, r.Event, c.want)
		}
	}
}

func TestParseRuleErrors(t *testing.T) {
	bad := []string{
		"",
		"CREATE RULE x\nAFTER CREATE OF NODE\nWHEN true",
		"CREATE TRIGGER\nAFTER CREATE OF NODE\nWHEN true",
		"CREATE TRIGGER x EXTRA\nAFTER CREATE OF NODE\nWHEN true",
		"CREATE TRIGGER x",                                   // no event
		"CREATE TRIGGER x\nAFTER CREATE OF NODE",             // no body
		"CREATE TRIGGER x\nAFTER EXPLODE OF NODE\nWHEN true", // bad verb
		"CREATE TRIGGER x\nAFTER CREATE NODE\nWHEN true",     // missing OF
		"CREATE TRIGGER x\nAFTER SET OF LABEL\nWHEN true",    // label required
		"CREATE TRIGGER x\nAFTER CREATE OF NODE A B\nWHEN true",
		"CREATE TRIGGER x\nAFTER CREATE OF NODE\nWHEN true\nWHEN false",
	}
	for _, src := range bad {
		if _, err := ParseRule(src); err == nil {
			t.Errorf("ParseRule(%q) should fail", src)
		}
	}
}

// TestParseRuleErrorOffsets pins the error contract: parse errors name the
// offending clause and its byte offset within the declaration source.
func TestParseRuleErrorOffsets(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		msg    string // substring the error must contain
		off    int    // expected byte offset
		clause string // expected quoted clause (collapsed)
	}{
		{
			name:   "bad header",
			src:    "CREATE RULE x\nAFTER CREATE OF NODE\nWHEN true",
			msg:    "expected CREATE TRIGGER <name>",
			off:    0,
			clause: "CREATE RULE x",
		},
		{
			name:   "header junk",
			src:    "CREATE TRIGGER x EXTRA\nAFTER CREATE OF NODE\nWHEN true",
			msg:    `unexpected "EXTRA" after trigger header`,
			off:    0,
			clause: "CREATE TRIGGER x EXTRA",
		},
		{
			name:   "missing OF",
			src:    "CREATE TRIGGER x\nAFTER CREATE NODE\nWHEN true",
			msg:    "expected OF after CREATE",
			off:    17, // start of the AFTER line
			clause: "AFTER CREATE NODE",
		},
		{
			name:   "bad verb",
			src:    "CREATE TRIGGER x\nAFTER EXPLODE OF NODE\nWHEN true",
			msg:    "unsupported event EXPLODE OF NODE",
			off:    17,
			clause: "AFTER EXPLODE OF NODE",
		},
		{
			name:   "event junk",
			src:    "CREATE TRIGGER x\nAFTER CREATE OF NODE A B\nWHEN true",
			msg:    `unexpected "B" in event clause`,
			off:    17,
			clause: "AFTER CREATE OF NODE A B",
		},
		{
			name:   "label needs name",
			src:    "CREATE TRIGGER x\n  AFTER SET OF LABEL\nWHEN true",
			msg:    "SET/REMOVE OF LABEL needs a label name",
			off:    19, // indentation is not part of the clause
			clause: "AFTER SET OF LABEL",
		},
		{
			name:   "duplicate section",
			src:    "CREATE TRIGGER x\nAFTER CREATE OF NODE\nWHEN true\nWHEN false",
			msg:    "duplicate WHEN section",
			off:    48, // start of the second WHEN line
			clause: "false",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseRule(c.src)
			if err == nil {
				t.Fatalf("ParseRule(%q) should fail", c.src)
			}
			got := err.Error()
			if !strings.Contains(got, c.msg) {
				t.Fatalf("error %q does not mention %q", got, c.msg)
			}
			want := fmt.Sprintf("(byte %d: %q)", c.off, c.clause)
			if !strings.Contains(got, want) {
				t.Fatalf("error %q does not carry %q", got, want)
			}
		})
	}
}

func TestParseEventSpecShorthand(t *testing.T) {
	// The composite DSL's atoms accept the event grammar without OF; the
	// AFTER clause stays strict.
	ev, err := ParseEventSpec("CREATE NODE Txn")
	if err != nil {
		t.Fatalf("ParseEventSpec: %v", err)
	}
	if ev.Kind != CreateNode || ev.Label != "Txn" {
		t.Fatalf("event = %+v", ev)
	}
	ev, err = ParseEventSpec("SET OF PROPERTY Txn.amount")
	if err != nil {
		t.Fatalf("ParseEventSpec: %v", err)
	}
	if ev.Kind != SetProperty || ev.Label != "Txn" || ev.PropKey != "amount" {
		t.Fatalf("event = %+v", ev)
	}
	if _, err := ParseEventSpec("EXPLODE NODE"); err == nil {
		t.Fatal("bad verb should fail")
	}
}

func TestIsTriggerStatement(t *testing.T) {
	if !IsTriggerStatement("  create trigger X\nAFTER CREATE OF NODE") {
		t.Error("case-insensitive detection")
	}
	if IsTriggerStatement("CREATE (:Trigger)") {
		t.Error("node creation is not a trigger statement")
	}
	if IsTriggerStatement("MATCH (n) RETURN n") {
		t.Error("query is not a trigger statement")
	}
}

func TestInstallTextEndToEnd(t *testing.T) {
	s := graph.NewStore()
	e := newTestEngine()
	r, err := e.InstallText(`CREATE TRIGGER watcher ON HUB E
AFTER CREATE OF NODE Mutation
WHEN NEW.severity = 'high'
ALERT RETURN NEW.id AS mid
DO CREATE (:Escalation {mutation: mid, hub: 'E'})`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "watcher" || r.Action == "" {
		t.Errorf("parsed rule: %+v", r)
	}
	rep := run(t, s, e, "CREATE (:Mutation {id: 'M1', severity: 'high'})")
	if rep.GuardPasses != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if n := count(t, s, "MATCH (e:Escalation {mutation: 'M1'}) RETURN count(e)"); n != 1 {
		t.Errorf("action did not run: %d", n)
	}
	// A DSL rule with broken Cypher fails at install, not at fire time.
	if _, err := e.InstallText("CREATE TRIGGER broken\nAFTER CREATE OF NODE X\nWHEN ((("); err == nil {
		t.Error("broken guard should fail installation")
	}
}

func TestInstallTextSingleLineSections(t *testing.T) {
	s := graph.NewStore()
	e := newTestEngine()
	if _, err := e.InstallText(`CREATE TRIGGER oneliner
AFTER CREATE OF NODE Thing
ALERT RETURN NEW.v AS v`); err != nil {
		t.Fatal(err)
	}
	rep := run(t, s, e, "CREATE (:Thing {v: 7})")
	if rep.AlertNodes != 1 {
		t.Errorf("report: %+v", rep)
	}
}

func TestParseRulePhases(t *testing.T) {
	cases := []struct {
		clause string
		want   Phase
	}{
		{"AFTER CREATE OF NODE Sequence", Before},
		{"AFTER ASYNC CREATE OF NODE Sequence", AfterAsync},
		{"AFTER ASYNC DELETE OF EDGE LINKS", AfterAsync},
		{"AFTER ASYNC SET OF PROPERTY Case.status", AfterAsync},
	}
	for _, c := range cases {
		r, err := ParseRule("CREATE TRIGGER T\n" + c.clause + "\nWHEN true")
		if err != nil {
			t.Errorf("%s: %v", c.clause, err)
			continue
		}
		if r.Phase != c.want {
			t.Errorf("%s: phase = %v, want %v", c.clause, r.Phase, c.want)
		}
	}
	// ASYNC must not swallow the operation keyword.
	if _, err := ParseRule("CREATE TRIGGER T\nAFTER ASYNC OF NODE X\nWHEN true"); err == nil {
		t.Error("AFTER ASYNC OF accepted without an operation")
	}
}

func TestParsePhase(t *testing.T) {
	cases := []struct {
		in   string
		want Phase
		ok   bool
	}{
		{"", Before, true},
		{"before", Before, true},
		{"afterAsync", AfterAsync, true},
		{"afterasync", AfterAsync, true},
		{"async", AfterAsync, true},
		{"during", Before, false},
	}
	for _, c := range cases {
		got, err := ParsePhase(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParsePhase(%q) err = %v", c.in, err)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParsePhase(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if Before.String() != "before" || AfterAsync.String() != "afterAsync" {
		t.Errorf("Phase.String: %q, %q", Before.String(), AfterAsync.String())
	}
}
