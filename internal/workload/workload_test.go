package workload

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/periodic"
	"repro/internal/trigger"
	"repro/internal/value"
)

func newKB() *core.KnowledgeBase {
	return core.New(core.Config{
		Clock: periodic.NewManualClock(time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC)),
	})
}

func TestBuildBaseGraph(t *testing.T) {
	kb := newKB()
	sc, err := Build(kb, Config{Seed: 1, Regions: 5, HospitalsPerRegion: 2, LabsPerRegion: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Regions()) != 5 {
		t.Errorf("regions = %d", len(sc.Regions()))
	}
	st := kb.GraphStats()
	// 5 regions + 10 hospitals + 5 labs.
	if st.Nodes != 20 {
		t.Errorf("nodes = %d, want 20", st.Nodes)
	}
	if st.Relationships != 15 {
		t.Errorf("rels = %d, want 15", st.Relationships)
	}
	res, err := kb.Query("MATCH (:Hospital)-[:LocatedIn]->(r:Region {name: 'region-00'}) RETURN count(*)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Value(); v.String() != "2" {
		t.Errorf("hospitals in region-00: %s", v)
	}
}

func TestAdmissionsDeterministic(t *testing.T) {
	kb1 := newKB()
	sc1, _ := Build(kb1, Config{Seed: 7, Regions: 3})
	kb2 := newKB()
	sc2, _ := Build(kb2, Config{Seed: 7, Regions: 3})
	a1 := sc1.Admissions(50, 0)
	a2 := sc2.Admissions(50, 0)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("admission %d differs: %+v vs %+v", i, a1[i], a2[i])
		}
	}
	if a1[0].RegionDay != RegionDayKey(a1[0].Region, 0) {
		t.Error("regionDay composite")
	}
}

func TestAdmitWritesPatients(t *testing.T) {
	kb := newKB()
	sc, _ := Build(kb, Config{Seed: 1, Regions: 4})
	adms := sc.Admissions(40, 0)
	if err := sc.Admit(kb, adms, AdmitOptions{Batch: 8, LinkHospital: true}); err != nil {
		t.Fatal(err)
	}
	res, _ := kb.Query("MATCH (p:Patient) RETURN count(p)", nil)
	if v, _ := res.Value(); v.String() != "40" {
		t.Errorf("patients: %s", v)
	}
	res, _ = kb.Query("MATCH (:Patient)-[:TreatedAt]->(h:Hospital) RETURN count(*)", nil)
	if v, _ := res.Value(); v.String() != "40" {
		t.Errorf("treatedAt edges: %s", v)
	}
	// Indexed per-region-day count matches a scan.
	res, _ = kb.Query("MATCH (p:Patient {regionDay: $k}) RETURN count(p)",
		map[string]value.Value{"k": value.Str(RegionDayKey(sc.Regions()[0], 0))})
	fast, _ := res.Value()
	res, _ = kb.Query("MATCH (p:Patient) WHERE p.region = $r AND p.day = 0 RETURN count(p)",
		map[string]value.Value{"r": value.Str(sc.Regions()[0])})
	slow, _ := res.Value()
	if !value.SameValue(fast, slow) {
		t.Errorf("indexed count %s != scan %s", fast, slow)
	}
}

func TestStatsMaintenance(t *testing.T) {
	kb := newKB()
	sc, _ := Build(kb, Config{Seed: 2, Regions: 2})
	adms := sc.Admissions(30, 0)
	if err := sc.Admit(kb, adms, AdmitOptions{MaintainStats: true, Batch: 5}); err != nil {
		t.Fatal(err)
	}
	// Every admission incremented exactly one RegionStat; totals match.
	res, _ := kb.Query("MATCH (s:RegionStat) RETURN sum(s.patients)", nil)
	if v, _ := res.Value(); v.String() != "30" {
		t.Errorf("stat total: %s", v)
	}
	// Closing the day materializes DailyRegionStat per active region.
	if err := sc.CloseDay(kb, 0); err != nil {
		t.Fatal(err)
	}
	res, _ = kb.Query("MATCH (d:DailyRegionStat {day: 0}) RETURN sum(d.patients)", nil)
	if v, _ := res.Value(); v.String() != "30" {
		t.Errorf("daily stat total: %s", v)
	}
	// Closing a day with no admissions creates nothing.
	if err := sc.CloseDay(kb, 5); err != nil {
		t.Fatal(err)
	}
	res, _ = kb.Query("MATCH (d:DailyRegionStat {day: 5}) RETURN count(d)", nil)
	if v, _ := res.Value(); v.String() != "0" {
		t.Errorf("empty day stats: %s", v)
	}
}

func TestNaiveRuleFiresOnGrowth(t *testing.T) {
	kb := newKB()
	sc, err := Build(kb, Config{Seed: 3, Regions: 1})
	if err != nil {
		t.Fatal(err)
	}
	name, guard, alert := NaiveRuleSpec()
	if err := kb.InstallRule(trigger.Rule{
		Name:  name,
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Patient"},
		Guard: guard,
		Alert: alert,
	}); err != nil {
		t.Fatal(err)
	}
	// Day 0: 5 patients; day 1: 10 patients → 50% growth, alerts fire for
	// the day-1 insertions once yesterday>0 and growth>10%.
	if err := sc.Admit(kb, sc.Admissions(5, 0), AdmitOptions{LinkHospital: true}); err != nil {
		t.Fatal(err)
	}
	alerts, _ := kb.Alerts()
	if len(alerts) != 0 {
		t.Fatalf("no alert should fire on day 0, got %d", len(alerts))
	}
	if err := sc.Admit(kb, sc.Admissions(10, 1), AdmitOptions{LinkHospital: true}); err != nil {
		t.Fatal(err)
	}
	alerts, _ = kb.Alerts()
	if len(alerts) == 0 {
		t.Fatal("day-1 growth should raise alerts")
	}
	a := alerts[len(alerts)-1]
	today, _ := a.Props["today"].AsInt()
	yesterday, _ := a.Props["yesterday"].AsInt()
	if today != 10 || yesterday != 5 {
		t.Errorf("alert counters: today=%d yesterday=%d", today, yesterday)
	}
}

func TestSummaryRuleFiresOncePerRegion(t *testing.T) {
	kb := newKB()
	sc, err := Build(kb, Config{Seed: 4, Regions: 3})
	if err != nil {
		t.Fatal(err)
	}
	name, guard, alert := SummaryRuleSpec()
	if err := kb.InstallRule(trigger.Rule{
		Name:  name,
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "DailyRegionStat"},
		Guard: guard,
		Alert: alert,
	}); err != nil {
		t.Fatal(err)
	}
	opt := AdmitOptions{MaintainStats: true, Batch: 10}
	if err := sc.Admit(kb, sc.Admissions(30, 0), opt); err != nil {
		t.Fatal(err)
	}
	if err := sc.CloseDay(kb, 0); err != nil {
		t.Fatal(err)
	}
	if err := sc.Admit(kb, sc.Admissions(90, 1), opt); err != nil {
		t.Fatal(err)
	}
	if err := sc.CloseDay(kb, 1); err != nil {
		t.Fatal(err)
	}
	alerts, _ := kb.Alerts()
	if len(alerts) == 0 || len(alerts) > 3 {
		t.Fatalf("summary alerts = %d, want 1..3 (at most one per region)", len(alerts))
	}
	// The summary design and the naive design agree on who is critical.
	for _, a := range alerts {
		today, _ := a.Props["today"].AsInt()
		yesterday, _ := a.Props["yesterday"].AsInt()
		if yesterday == 0 || float64(today-yesterday)/float64(today) <= NaiveRuleThreshold {
			t.Errorf("non-critical alert: %+v", a.Props)
		}
	}
}

func TestSkewedRegions(t *testing.T) {
	kb := newKB()
	sc, _ := Build(kb, Config{Seed: 5, Regions: 10, SkewedRegions: true})
	adms := sc.Admissions(1000, 0)
	counts := map[string]int{}
	for _, a := range adms {
		counts[a.Region]++
	}
	if counts[RegionName(0)] <= counts[RegionName(9)] {
		t.Errorf("skew should favor low-rank regions: r0=%d r9=%d",
			counts[RegionName(0)], counts[RegionName(9)])
	}
}

func TestEquivalenceNaiveVsSummaryAlerts(t *testing.T) {
	// Both designs must flag the same critical regions (the paper claims
	// "the same semantics"). Build identical streams, run both, compare the
	// sets of flagged regions on day 1.
	stream := func() (*core.KnowledgeBase, *Scenario) {
		kb := newKB()
		sc, err := Build(kb, Config{Seed: 42, Regions: 4})
		if err != nil {
			t.Fatal(err)
		}
		return kb, sc
	}

	// Naive.
	kbN, scN := stream()
	nName, nGuard, nAlert := NaiveRuleSpec()
	_ = kbN.InstallRule(trigger.Rule{
		Name: nName, Event: trigger.Event{Kind: trigger.CreateNode, Label: "Patient"},
		Guard: nGuard, Alert: nAlert,
	})
	_ = scN.Admit(kbN, scN.Admissions(40, 0), AdmitOptions{})
	_ = scN.Admit(kbN, scN.Admissions(120, 1), AdmitOptions{})
	naiveRegions := map[string]bool{}
	alertsN, _ := kbN.Alerts()
	for _, a := range alertsN {
		r, _ := a.Props["region"].AsString()
		naiveRegions[r] = true
	}

	// Summary.
	kbS, scS := stream()
	sName, sGuard, sAlert := SummaryRuleSpec()
	_ = kbS.InstallRule(trigger.Rule{
		Name: sName, Event: trigger.Event{Kind: trigger.CreateNode, Label: "DailyRegionStat"},
		Guard: sGuard, Alert: sAlert,
	})
	_ = scS.Admit(kbS, scS.Admissions(40, 0), AdmitOptions{MaintainStats: true})
	_ = scS.CloseDay(kbS, 0)
	_ = scS.Admit(kbS, scS.Admissions(120, 1), AdmitOptions{MaintainStats: true})
	_ = scS.CloseDay(kbS, 1)
	summaryRegions := map[string]bool{}
	alertsS, _ := kbS.Alerts()
	for _, a := range alertsS {
		r, _ := a.Props["region"].AsString()
		summaryRegions[r] = true
	}

	// The summary design evaluates end-of-day totals; every region it
	// flags must also have been flagged (at some intra-day point) by the
	// naive design.
	for r := range summaryRegions {
		if !naiveRegions[r] {
			t.Errorf("summary flagged %s but naive did not", r)
		}
	}
	if len(summaryRegions) == 0 {
		t.Error("3x growth must flag at least one region")
	}
}

func TestBumpStatDirect(t *testing.T) {
	kb := newKB()
	sc, _ := Build(kb, Config{Seed: 6, Regions: 1})
	_, err := kb.WriteTx(func(tx *graph.Tx) error {
		for i := 0; i < 3; i++ {
			if err := sc.bumpStat(tx, RegionName(0), 7); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := kb.Query("MATCH (s:RegionStat {key: $k}) RETURN s.patients",
		map[string]value.Value{"k": value.Str(RegionDayKey(RegionName(0), 7))})
	if v, _ := res.Value(); v.String() != "3" {
		t.Errorf("bumped stat = %s", v)
	}
}
