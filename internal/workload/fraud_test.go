package workload

import (
	"testing"
	"time"

	"repro/internal/cep"
	"repro/internal/core"
	"repro/internal/periodic"
)

func TestFraudStreamDeterministic(t *testing.T) {
	s1, err := BuildFraud(newKB(), FraudConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := BuildFraud(newKB(), FraudConfig{Seed: 9})
	for m := 0; m < 30; m++ {
		e1, e2 := s1.Minute(m), s2.Minute(m)
		if len(e1) != len(e2) {
			t.Fatalf("minute %d: %d vs %d events", m, len(e1), len(e2))
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Fatalf("minute %d event %d differs: %+v vs %+v", m, i, e1[i], e2[i])
			}
		}
	}
}

func TestFraudStreamSeedsAnomalies(t *testing.T) {
	s, err := BuildFraud(newKB(), DefaultFraudConfig())
	if err != nil {
		t.Fatal(err)
	}
	var bursts, bigs, confirms int
	for m := 0; m < 200; m++ {
		flaggedPerAccount := map[string]int{}
		for _, ev := range s.Minute(m) {
			switch {
			case ev.Kind == FraudConfirmation:
				confirms++
			case ev.Flagged:
				flaggedPerAccount[ev.Account]++
			case ev.Amount > 900:
				bigs++
			}
		}
		for _, n := range flaggedPerAccount {
			if n >= 3 {
				bursts++
			}
		}
	}
	if bursts == 0 || bigs == 0 || confirms == 0 {
		t.Fatalf("anomalies missing: bursts=%d bigs=%d confirms=%d", bursts, bigs, confirms)
	}
	// Big transactions come in pairs and some confirmations go missing, so
	// strictly fewer confirmations than big transactions.
	if confirms >= bigs {
		t.Errorf("expected missing confirmations: bigs=%d confirms=%d", bigs, confirms)
	}
}

// TestFraudCompositeEndToEnd runs an hour of the stream against the full
// composite-rule pack and expects every anomaly class to surface as alerts.
func TestFraudCompositeEndToEnd(t *testing.T) {
	clock := periodic.NewManualClock(time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC))
	kb := core.New(core.Config{Clock: clock})
	s, err := BuildFraud(kb, FraudConfig{
		Seed: 4, Accounts: 20, TxnsPerMinute: 10,
		BurstChance: 0.3, PairChance: 0.3, MissingConfirmRate: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := cep.Enable(kb, cep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range CompositeRulePack(5 * time.Minute) {
		if err := m.Install(r); err != nil {
			t.Fatalf("install %s: %v", r.Name, err)
		}
	}
	for min := 0; min < 60; min++ {
		if err := s.Ingest(kb, s.Minute(min), IngestOptions{Batch: 4}); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Minute)
		if _, err := m.DrainOnce(); err != nil {
			t.Fatal(err)
		}
	}
	// Let the last absence windows lapse.
	clock.Advance(10 * time.Minute)
	if _, err := m.DrainOnce(); err != nil {
		t.Fatal(err)
	}
	alerts, err := kb.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	byRule := map[string]int{}
	for _, a := range alerts {
		byRule[a.Rule]++
	}
	for _, rule := range []string{VelocityRule, BigPairRule, UnconfirmedRule} {
		if byRule[rule] == 0 {
			t.Errorf("no alerts for %s (got %v)", rule, byRule)
		}
	}
}

func TestFraudNaiveVelocityRule(t *testing.T) {
	kb := newKB()
	s, err := BuildFraud(kb, FraudConfig{
		Seed: 4, Accounts: 20, TxnsPerMinute: 10, BurstChance: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := kb.InstallRule(NaiveVelocityRuleSpec(5)); err != nil {
		t.Fatal(err)
	}
	for min := 0; min < 30; min++ {
		if err := s.Ingest(kb, s.Minute(min), IngestOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	alerts, err := kb.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	var hits int
	for _, a := range alerts {
		if a.Rule == NaiveVelocityRule() {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("naive velocity rule never fired")
	}
}
