// Package workload generates the synthetic COVID-19 scenario the paper's
// evaluation (§IV-D) runs on: a partitioned knowledge graph of regions,
// hospitals and labs, plus deterministic streams of patient admissions
// spread over consecutive days. Real surveillance data is proprietary
// (GISAID/hospital records), so the generator substitutes a seeded
// synthetic equivalent that exercises the same code paths.
//
// Build populates a knowledge base with the static scenario (regions,
// hospitals, labs, hubs and indexes) and returns a Scenario whose
// Admissions method yields deterministic per-day admission batches: the
// same Config.Seed always produces the same stream, so benchmark runs and
// regression tests are reproducible bit-for-bit. Admit ingests a batch
// through the full reactive pipeline with configurable transaction batching
// (AdmitOptions.Batch is patients per transaction; the paper's setting is
// 1, one trigger activation per transaction) and optional per-(region, day)
// statistics maintenance for the summary-based rule design.
//
// NaiveRuleSpec and SummaryRuleSpec return the two rule designs the
// evaluation compares: the naive rule fires per patient and re-aggregates,
// the summary rule fires once per region and day on DailyRegionStat nodes.
// internal/bench wires these into the Fig. 9 / Fig. 10 measurements.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/value"
)

// Config parameterizes a scenario.
type Config struct {
	// Seed makes the generated stream deterministic.
	Seed int64
	// Regions is the number of regional partitions (the paper's experiment
	// groups patients by region; Italy has 20).
	Regions int
	// HospitalsPerRegion and LabsPerRegion size the clinical and analysis
	// hubs.
	HospitalsPerRegion int
	LabsPerRegion      int
	// SkewedRegions makes admission volume non-uniform across regions
	// (a Zipf-flavored 1/(rank+1) weighting) when true.
	SkewedRegions bool
}

// DefaultConfig mirrors the paper's setting of 20 regions.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		Regions:            20,
		HospitalsPerRegion: 2,
		LabsPerRegion:      1,
	}
}

func (c Config) withDefaults() Config {
	if c.Regions <= 0 {
		c.Regions = 20
	}
	if c.HospitalsPerRegion <= 0 {
		c.HospitalsPerRegion = 1
	}
	if c.LabsPerRegion <= 0 {
		c.LabsPerRegion = 1
	}
	return c
}

// Scenario is a built scenario: the base graph exists in the knowledge
// base, and the scenario object generates admission streams over it.
type Scenario struct {
	Cfg       Config
	regions   []string
	hospitals map[string][]graph.NodeID // region -> hospital node ids
	rng       *rand.Rand
	weights   []float64
	nextID    int64
}

// RegionName returns the canonical name of region i.
func RegionName(i int) string { return fmt.Sprintf("region-%02d", i) }

// Build creates the base partitioned graph (regions, hospitals, labs) in
// the knowledge base and returns the scenario handle. It also creates the
// property indexes the experiments rely on.
func Build(kb *core.KnowledgeBase, cfg Config) (*Scenario, error) {
	cfg = cfg.withDefaults()
	s := &Scenario{
		Cfg:       cfg,
		hospitals: make(map[string][]graph.NodeID),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	// Indexes for the experiments: per-(region,day) patient counting and
	// daily statistic lookup.
	for _, idx := range [][2]string{
		{"Region", "name"},
		{"Patient", "regionDay"},
		{"DailyRegionStat", "key"},
		{"RegionStat", "key"},
	} {
		if err := kb.CreateIndex(idx[0], idx[1]); err != nil {
			return nil, err
		}
	}
	_, err := kb.WriteTx(func(tx *graph.Tx) error {
		for r := 0; r < cfg.Regions; r++ {
			name := RegionName(r)
			s.regions = append(s.regions, name)
			region, err := tx.CreateNode([]string{"Region"}, map[string]value.Value{
				"name": value.Str(name),
				"hub":  value.Str("R"),
			})
			if err != nil {
				return err
			}
			for h := 0; h < cfg.HospitalsPerRegion; h++ {
				hosp, err := tx.CreateNode([]string{"Hospital"}, map[string]value.Value{
					"name": value.Str(fmt.Sprintf("%s/hospital-%d", name, h)),
					"hub":  value.Str("C"),
				})
				if err != nil {
					return err
				}
				if _, err := tx.CreateRel(hosp, region, "LocatedIn", nil); err != nil {
					return err
				}
				s.hospitals[name] = append(s.hospitals[name], hosp)
			}
			for l := 0; l < cfg.LabsPerRegion; l++ {
				lab, err := tx.CreateNode([]string{"Lab"}, map[string]value.Value{
					"name": value.Str(fmt.Sprintf("%s/lab-%d", name, l)),
					"hub":  value.Str("A"),
				})
				if err != nil {
					return err
				}
				if _, err := tx.CreateRel(lab, region, "LocatedIn", nil); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if cfg.SkewedRegions {
		s.weights = make([]float64, cfg.Regions)
		total := 0.0
		for i := range s.weights {
			s.weights[i] = 1.0 / float64(i+1)
			total += s.weights[i]
		}
		for i := range s.weights {
			s.weights[i] /= total
		}
	}
	return s, nil
}

// Regions lists the region names.
func (s *Scenario) Regions() []string { return s.regions }

// pickRegion draws a region index (uniform or skewed).
func (s *Scenario) pickRegion() int {
	if s.weights == nil {
		return s.rng.Intn(len(s.regions))
	}
	x := s.rng.Float64()
	for i, w := range s.weights {
		if x < w {
			return i
		}
		x -= w
	}
	return len(s.regions) - 1
}

// Admission is one patient-admission event.
type Admission struct {
	ID        string
	Region    string
	Day       int
	RegionDay string // "region#day" composite for indexed counting
}

// Admissions generates n deterministic admissions for the given day.
func (s *Scenario) Admissions(n, day int) []Admission {
	out := make([]Admission, n)
	for i := range out {
		r := s.regions[s.pickRegion()]
		s.nextID++
		out[i] = Admission{
			ID:        fmt.Sprintf("p%d", s.nextID),
			Region:    r,
			Day:       day,
			RegionDay: RegionDayKey(r, day),
		}
	}
	return out
}

// RegionDayKey builds the composite (region, day) lookup key.
func RegionDayKey(region string, day int) string {
	return fmt.Sprintf("%s#%d", region, day)
}

// AdmitOptions tunes how admissions are written.
type AdmitOptions struct {
	// Batch is the number of patients per transaction (default 1: one
	// trigger activation per transaction, as in the paper's experiment).
	Batch int
	// MaintainStats makes the "patient creation script" additionally
	// increment the per-(region, day) RegionStat counter — the extra
	// operation the paper adds for the summary-based design (§IV-D).
	MaintainStats bool
	// LinkHospital attaches each patient to a hospital of its region via
	// TreatedAt (needed by rules that traverse; the scaling experiments
	// keep it on to exercise realistic insert cost).
	LinkHospital bool
}

// Admit writes the admissions into the knowledge base, firing reactive
// rules per transaction.
func (s *Scenario) Admit(kb *core.KnowledgeBase, adms []Admission, opt AdmitOptions) error {
	batch := opt.Batch
	if batch <= 0 {
		batch = 1
	}
	for start := 0; start < len(adms); start += batch {
		end := start + batch
		if end > len(adms) {
			end = len(adms)
		}
		chunk := adms[start:end]
		_, err := kb.WriteTx(func(tx *graph.Tx) error {
			for _, a := range chunk {
				props := map[string]value.Value{
					"id":        value.Str(a.ID),
					"region":    value.Str(a.Region),
					"day":       value.Int(int64(a.Day)),
					"regionDay": value.Str(a.RegionDay),
					"hub":       value.Str("C"),
				}
				pid, err := tx.CreateNode([]string{"Patient"}, props)
				if err != nil {
					return err
				}
				if opt.LinkHospital {
					hs := s.hospitals[a.Region]
					if len(hs) > 0 {
						h := hs[int(s.nextID)%len(hs)]
						if _, err := tx.CreateRel(pid, h, "TreatedAt", nil); err != nil {
							return err
						}
					}
				}
				if opt.MaintainStats {
					if err := s.bumpStat(tx, a.Region, a.Day); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// bumpStat increments the running (region, day) patient counter — the
// paper's "new operation" added to the patient creation script.
func (s *Scenario) bumpStat(tx *graph.Tx, region string, day int) error {
	key := RegionDayKey(region, day)
	ids, _ := tx.NodesByProp("RegionStat", "key", value.Str(key))
	if len(ids) > 0 {
		cur, _ := tx.NodeProp(ids[0], "patients")
		n, _ := cur.AsInt()
		return tx.SetNodeProp(ids[0], "patients", value.Int(n+1))
	}
	_, err := tx.CreateNode([]string{"RegionStat"}, map[string]value.Value{
		"key":      value.Str(key),
		"region":   value.Str(region),
		"day":      value.Int(int64(day)),
		"patients": value.Int(1),
	})
	return err
}

// CloseDay materializes the day's regional statistics as DailyRegionStat
// nodes (one per region with admissions), the analog of linking the daily
// summary node to regional statistics; rules monitoring DailyRegionStat
// creation fire here — once per region, not once per patient.
func (s *Scenario) CloseDay(kb *core.KnowledgeBase, day int) error {
	_, err := kb.WriteTx(func(tx *graph.Tx) error {
		for _, region := range s.regions {
			key := RegionDayKey(region, day)
			ids, _ := tx.NodesByProp("RegionStat", "key", value.Str(key))
			if len(ids) == 0 {
				continue
			}
			cnt, _ := tx.NodeProp(ids[0], "patients")
			if _, err := tx.CreateNode([]string{"DailyRegionStat"}, map[string]value.Value{
				"key":      value.Str(key),
				"region":   value.Str(region),
				"day":      value.Int(int64(day)),
				"patients": cnt,
			}); err != nil {
				return err
			}
		}
		return nil
	})
	return err
}

// NaiveRuleThreshold is the critical-growth threshold of the paper's
// alerting rule: admissions growing by 10% across two consecutive days.
const NaiveRuleThreshold = 0.1

// NaiveRule is the paper's first design (Fig. 9): the guard is simply the
// creation of a new patient; the alert compares the patient's region's
// admission counters for the current and previous day, using count-store
// lookups (countNodes over the regionDay index).
func NaiveRule() string { return "fig9-naive" }

// NaiveRuleSpec returns the rule definition for the Fig. 9 experiment.
func NaiveRuleSpec() (name, guard, alert string) {
	name = NaiveRule()
	guard = "" // the event itself (a new patient) is the whole guard
	alert = `WITH NEW.region AS region,
	              countNodes('Patient', 'regionDay', NEW.region + '#' + toString(NEW.day)) AS today,
	              countNodes('Patient', 'regionDay', NEW.region + '#' + toString(NEW.day - 1)) AS yesterday
	         WHERE yesterday > 0 AND toFloat(today - yesterday) / toFloat(today) > 0.1
	         RETURN region, today, yesterday`
	return name, guard, alert
}

// SummaryRuleSpec returns the rule of the second design (Fig. 10): it is
// triggered once per region per day, on the creation of the daily regional
// statistic, and compares it with the previous day's statistic.
func SummaryRuleSpec() (name, guard, alert string) {
	name = "fig10-summary"
	guard = "NEW.day > 0"
	alert = `MATCH (y:DailyRegionStat {key: NEW.region + '#' + toString(NEW.day - 1)})
	         WITH NEW.region AS region, NEW.patients AS today, y.patients AS yesterday
	         WHERE yesterday > 0 AND toFloat(today - yesterday) / toFloat(today) > 0.1
	         RETURN region, today, yesterday`
	return name, guard, alert
}
