package workload

// The fraud / transaction-monitoring domain: the second synthetic scenario,
// built to exercise composite events (internal/cep). A payments hub (P)
// holds accounts, transactions and confirmations; a merchants hub (M) holds
// the merchant directory. BuildFraud creates the static graph; Minute
// yields a deterministic per-minute event stream with seeded anomalies —
// flagged-transaction bursts (velocity), high-value transaction pairs, and
// high-value transactions whose confirmation never arrives — each the
// target of one composite rule in CompositeRulePack.
//
// NaiveVelocityRuleSpec is the single-event strawman the cep benchmark
// compares against: a plain trigger that fires on every flagged transaction
// and re-scans the account's recent history with an aggregate query, paying
// the scan on the write path instead of keeping O(1) durable partial state.

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/trigger"
	"repro/internal/value"
)

// FraudConfig parameterizes the transaction-monitoring scenario.
type FraudConfig struct {
	// Seed makes the generated stream deterministic.
	Seed int64
	// Accounts and Merchants size the static graph.
	Accounts  int
	Merchants int
	// TxnsPerMinute is the baseline transaction volume.
	TxnsPerMinute int
	// BurstChance is the per-minute probability of one account emitting a
	// burst of three flagged transactions (the velocity anomaly).
	BurstChance float64
	// PairChance is the per-minute probability of one account emitting two
	// high-value (>900) transactions one minute apart.
	PairChance float64
	// MissingConfirmRate is the fraction of high-value transactions whose
	// confirmation never arrives (the absence anomaly); the rest are
	// confirmed two minutes later.
	MissingConfirmRate float64
	// FlagNoise is the fraction of baseline transactions flagged at random
	// (below-threshold noise for the velocity rule).
	FlagNoise float64
}

// DefaultFraudConfig is sized so a few hundred minutes of stream contain
// every anomaly several times.
func DefaultFraudConfig() FraudConfig {
	return FraudConfig{
		Seed:               1,
		Accounts:           50,
		Merchants:          10,
		TxnsPerMinute:      20,
		BurstChance:        0.10,
		PairChance:         0.10,
		MissingConfirmRate: 0.25,
		FlagNoise:          0.01,
	}
}

func (c FraudConfig) withDefaults() FraudConfig {
	if c.Accounts <= 0 {
		c.Accounts = 50
	}
	if c.Merchants <= 0 {
		c.Merchants = 10
	}
	if c.TxnsPerMinute <= 0 {
		c.TxnsPerMinute = 20
	}
	return c
}

// Fraud event kinds.
const (
	FraudTxn          = "txn"
	FraudConfirmation = "confirmation"
)

// FraudEvent is one element of the transaction stream.
type FraudEvent struct {
	Kind     string // FraudTxn or FraudConfirmation
	ID       string
	Account  string
	Merchant string
	Amount   int64 // transactions only
	Flagged  bool  // transactions only
	Minute   int
}

// FraudScenario generates the deterministic event stream over a built
// fraud graph.
type FraudScenario struct {
	Cfg       FraudConfig
	accounts  []string
	merchants []string
	rng       *rand.Rand
	nextID    int64
	pending   map[int][]FraudEvent // events scheduled for future minutes
}

// AccountName returns the canonical name of account i.
func AccountName(i int) string { return fmt.Sprintf("acct-%03d", i) }

// BuildFraud creates the static fraud graph — the payments hub P (Account,
// Txn, Confirmation), the merchants hub M (Merchant) and the indexes the
// naive re-scan rule relies on — and returns the stream generator.
func BuildFraud(kb *core.KnowledgeBase, cfg FraudConfig) (*FraudScenario, error) {
	cfg = cfg.withDefaults()
	s := &FraudScenario{
		Cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		pending: make(map[int][]FraudEvent),
	}
	if err := kb.DefineHub("P", "payments", "Account", "Txn", "Confirmation"); err != nil {
		return nil, err
	}
	if err := kb.DefineHub("M", "merchants", "Merchant"); err != nil {
		return nil, err
	}
	for _, idx := range [][2]string{
		{"Account", "id"},
		{"Txn", "account"},
	} {
		if err := kb.CreateIndex(idx[0], idx[1]); err != nil {
			return nil, err
		}
	}
	err := kb.Store().Update(func(tx *graph.Tx) error {
		for i := 0; i < cfg.Accounts; i++ {
			name := AccountName(i)
			s.accounts = append(s.accounts, name)
			if _, err := tx.CreateNode([]string{"Account"}, map[string]value.Value{
				"id": value.Str(name), "hub": value.Str("P"),
			}); err != nil {
				return err
			}
		}
		for i := 0; i < cfg.Merchants; i++ {
			name := fmt.Sprintf("merch-%02d", i)
			s.merchants = append(s.merchants, name)
			if _, err := tx.CreateNode([]string{"Merchant"}, map[string]value.Value{
				"id": value.Str(name), "hub": value.Str("M"),
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Accounts lists the account names.
func (s *FraudScenario) Accounts() []string { return s.accounts }

func (s *FraudScenario) newTxn(minute int, account string, amount int64, flagged bool) FraudEvent {
	s.nextID++
	return FraudEvent{
		Kind:     FraudTxn,
		ID:       fmt.Sprintf("t%d", s.nextID),
		Account:  account,
		Merchant: s.merchants[s.rng.Intn(len(s.merchants))],
		Amount:   amount,
		Flagged:  flagged,
		Minute:   minute,
	}
}

// schedule queues ev for a later minute; emitBig also books (or seeds the
// absence of) the transaction's confirmation.
func (s *FraudScenario) schedule(minute int, ev FraudEvent) {
	ev.Minute = minute
	s.pending[minute] = append(s.pending[minute], ev)
}

func (s *FraudScenario) emitBig(minute int, account string) FraudEvent {
	ev := s.newTxn(minute, account, 901+s.rng.Int63n(4000), false)
	if s.rng.Float64() >= s.Cfg.MissingConfirmRate {
		s.schedule(minute+2, FraudEvent{
			Kind:    FraudConfirmation,
			ID:      "c-" + ev.ID,
			Account: account,
		})
	}
	return ev
}

// Minute generates the event stream of one minute: scheduled deliveries
// (pair closers, confirmations), the baseline volume, and freshly seeded
// anomalies. Calls must proceed minute by minute from 0; the same Seed
// always produces the same stream.
func (s *FraudScenario) Minute(m int) []FraudEvent {
	out := append([]FraudEvent(nil), s.pending[m]...)
	delete(s.pending, m)
	for i := 0; i < s.Cfg.TxnsPerMinute; i++ {
		account := s.accounts[s.rng.Intn(len(s.accounts))]
		flagged := s.rng.Float64() < s.Cfg.FlagNoise
		out = append(out, s.newTxn(m, account, 1+s.rng.Int63n(500), flagged))
	}
	if s.rng.Float64() < s.Cfg.BurstChance {
		account := s.accounts[s.rng.Intn(len(s.accounts))]
		for i := 0; i < 3; i++ {
			out = append(out, s.newTxn(m, account, 1+s.rng.Int63n(500), true))
		}
	}
	if s.rng.Float64() < s.Cfg.PairChance {
		account := s.accounts[s.rng.Intn(len(s.accounts))]
		out = append(out, s.emitBig(m, account))
		s.schedule(m+1, s.emitBig(m+1, account))
	}
	return out
}

// IngestOptions tunes how fraud events are written.
type IngestOptions struct {
	// Batch is the number of events per transaction (default 1: one
	// trigger round per event, event time = commit order).
	Batch int
}

// Ingest writes the events into the knowledge base through the full
// reactive pipeline.
func (s *FraudScenario) Ingest(kb *core.KnowledgeBase, events []FraudEvent, opt IngestOptions) error {
	batch := opt.Batch
	if batch <= 0 {
		batch = 1
	}
	for start := 0; start < len(events); start += batch {
		end := start + batch
		if end > len(events) {
			end = len(events)
		}
		chunk := events[start:end]
		_, err := kb.WriteTx(func(tx *graph.Tx) error {
			for _, ev := range chunk {
				var err error
				switch ev.Kind {
				case FraudTxn:
					_, err = tx.CreateNode([]string{"Txn"}, map[string]value.Value{
						"id":       value.Str(ev.ID),
						"account":  value.Str(ev.Account),
						"merchant": value.Str(ev.Merchant),
						"amount":   value.Int(ev.Amount),
						"flagged":  value.Bool(ev.Flagged),
						"minute":   value.Int(int64(ev.Minute)),
						"hub":      value.Str("P"),
					})
				case FraudConfirmation:
					_, err = tx.CreateNode([]string{"Confirmation"}, map[string]value.Value{
						"id":      value.Str(ev.ID),
						"account": value.Str(ev.Account),
						"minute":  value.Int(int64(ev.Minute)),
						"hub":     value.Str("P"),
					})
				default:
					err = fmt.Errorf("workload: unknown fraud event kind %q", ev.Kind)
				}
				if err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Composite rule names of the fraud pack.
const (
	VelocityRule    = "fraud-velocity"
	BigPairRule     = "fraud-big-pair"
	UnconfirmedRule = "fraud-unconfirmed"
)

// CompositeRulePack returns the three composite rules the fraud stream is
// seeded to trip: a flagged-transaction velocity count, a high-value
// transaction pair sequence, and an unconfirmed-transaction absence.
func CompositeRulePack(window time.Duration) []cep.Rule {
	txn := trigger.Event{Kind: trigger.CreateNode, Label: "Txn"}
	conf := trigger.Event{Kind: trigger.CreateNode, Label: "Confirmation"}
	return []cep.Rule{
		{
			Name: VelocityRule, Hub: "P", Op: cep.Count, Threshold: 3, Window: window,
			Steps: []cep.Step{{Event: txn, Guard: "NEW.flagged", Key: "NEW.account"}},
			Alert: "RETURN KEY AS account, MATCHES AS hits",
		},
		{
			Name: BigPairRule, Hub: "P", Op: cep.Sequence, Window: window,
			Steps: []cep.Step{
				{Event: txn, Guard: "NEW.amount > 900", Key: "NEW.account"},
				{Event: txn, Guard: "NEW.amount > 900", Key: "NEW.account"},
			},
			Alert: "RETURN KEY AS account, LAST.amount AS amount",
		},
		{
			Name: UnconfirmedRule, Hub: "P", Op: cep.Sequence, Window: window,
			Steps: []cep.Step{
				{Event: txn, Guard: "NEW.amount > 900", Key: "NEW.account"},
				{Event: conf, Key: "NEW.account", Negated: true},
			},
			Alert: "RETURN KEY AS account, FIRST.id AS txn",
		},
	}
}

// NaiveVelocityRule is the name of the re-scan strawman.
func NaiveVelocityRule() string { return "naive-velocity" }

// NaiveVelocityRuleSpec returns the single-event design of the velocity
// rule: fire on every flagged transaction and re-aggregate the account's
// recent history with an indexed scan — no partial state, the whole window
// recomputed inside each triggering transaction.
func NaiveVelocityRuleSpec(windowMinutes int) trigger.Rule {
	return trigger.Rule{
		Name:  NaiveVelocityRule(),
		Hub:   "P",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Txn"},
		Guard: "NEW.flagged",
		Alert: fmt.Sprintf(`MATCH (t:Txn {account: NEW.account})
		        WHERE t.flagged AND t.minute >= NEW.minute - %d
		        WITH NEW.account AS account, count(t) AS hits
		        WHERE hits >= 3
		        RETURN account, hits`, windowMinutes-1),
	}
}
