package metrics

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// Sample is one value of a family: the child for one label value.
type Sample struct {
	// LabelValue is the value of the family's label key ("" for unlabelled
	// families).
	LabelValue string
	// Value is the counter count or gauge reading; unused for histograms.
	Value float64
	// Hist is set for histogram families.
	Hist *HistogramSnapshot
}

// FamilySnapshot is a point-in-time view of one metric family.
type FamilySnapshot struct {
	Name    string
	Help    string
	Type    string // "counter", "gauge" or "histogram"
	Label   string // label key, "" for unlabelled families
	Samples []Sample
}

// Gather snapshots every family in registration order, children in
// first-use order. Each atomic is read once; histogram snapshots are
// internally consistent (see Histogram.Snapshot).
func (r *Registry) Gather() []FamilySnapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := append([]*family(nil), r.fams...)
	r.mu.RUnlock()

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ.String(), Label: f.label}
		f.mu.RLock()
		order := append([]string(nil), f.order...)
		children := make([]any, len(order))
		for i, lv := range order {
			children[i] = f.children[lv]
		}
		f.mu.RUnlock()
		for i, c := range children {
			s := Sample{LabelValue: order[i]}
			switch m := c.(type) {
			case *Counter:
				s.Value = float64(m.Value())
			case *Gauge:
				s.Value = m.Value()
			case *Histogram:
				s.Hist = m.Snapshot()
			}
			fs.Samples = append(fs.Samples, s)
		}
		out = append(out, fs)
	}
	return out
}

// WritePrometheus encodes the registry in the Prometheus text exposition
// format (version 0.0.4): one # HELP and # TYPE line per family, then one
// sample line per child — counters and gauges as plain values, histograms as
// cumulative le buckets plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fs := range r.Gather() {
		if fs.Help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(fs.Name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(fs.Help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(fs.Name)
		bw.WriteByte(' ')
		bw.WriteString(fs.Type)
		bw.WriteByte('\n')
		for _, s := range fs.Samples {
			if s.Hist != nil {
				writeHistogram(bw, fs, s)
				continue
			}
			bw.WriteString(fs.Name)
			writeLabels(bw, fs.Label, s.LabelValue, "", 0)
			bw.WriteByte(' ')
			bw.WriteString(formatValue(s.Value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

func writeHistogram(bw *bufio.Writer, fs FamilySnapshot, s Sample) {
	h := s.Hist
	cum := int64(0)
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		bw.WriteString(fs.Name)
		bw.WriteString("_bucket")
		writeLabels(bw, fs.Label, s.LabelValue, "le", bound)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatInt(cum, 10))
		bw.WriteByte('\n')
	}
	bw.WriteString(fs.Name)
	bw.WriteString("_bucket")
	writeLabels(bw, fs.Label, s.LabelValue, "le", math.Inf(1))
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(h.Count, 10))
	bw.WriteByte('\n')
	bw.WriteString(fs.Name)
	bw.WriteString("_sum")
	writeLabels(bw, fs.Label, s.LabelValue, "", 0)
	bw.WriteByte(' ')
	bw.WriteString(formatValue(h.Sum))
	bw.WriteByte('\n')
	bw.WriteString(fs.Name)
	bw.WriteString("_count")
	writeLabels(bw, fs.Label, s.LabelValue, "", 0)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(h.Count, 10))
	bw.WriteByte('\n')
}

// writeLabels renders the label set: the family's own label (when present)
// and, for histogram buckets, the le bound (+Inf spelled Prometheus-style).
func writeLabels(bw *bufio.Writer, key, value, leKey string, le float64) {
	hasLabel := key != ""
	hasLe := leKey != ""
	if !hasLabel && !hasLe {
		return
	}
	bw.WriteByte('{')
	if hasLabel {
		bw.WriteString(key)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabel(value))
		bw.WriteByte('"')
		if hasLe {
			bw.WriteByte(',')
		}
	}
	if hasLe {
		bw.WriteString(leKey)
		bw.WriteString(`="`)
		if math.IsInf(le, 1) {
			bw.WriteString("+Inf")
		} else {
			bw.WriteString(formatValue(le))
		}
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
