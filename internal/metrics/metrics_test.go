package metrics

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a test counter")
	c.Inc()
	c.Add(4)
	c.Add(-2) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_total", "a test counter"); again != c {
		t.Fatal("re-registration should return the same counter")
	}
}

func TestNilInstrumentsNoop(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var hv *HistogramVec
	var r *Registry
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(2)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if cv.With("x") != nil || hv.With("x") != nil {
		t.Fatal("nil vec With should return nil")
	}
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry should hand out nil instruments")
	}
	if r.Gather() != nil || r.Names() != nil {
		t.Fatal("nil registry should gather nothing")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot() != nil {
		t.Fatal("nil instruments should read as zero")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "")
	g.Set(10)
	g.Add(-3.5)
	if got := g.Value(); got != 6.5 {
		t.Fatalf("gauge = %v, want 6.5", got)
	}
	n := 42
	r.GaugeFunc("test_gauge_fn", "", func() float64 { return float64(n) })
	snap := findFamily(t, r, "test_gauge_fn")
	if v := snap.Samples[0].Value; v != 42 {
		t.Fatalf("gauge func = %v, want 42", v)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type mismatch")
		}
	}()
	r.Gauge("dup", "")
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.05, 0.5, 5, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if want := []int64{2, 1, 1, 1}; !equalInts(s.Counts, want) {
		t.Fatalf("bucket counts = %v, want %v", s.Counts, want)
	}
	if math.Abs(s.Sum-105.6) > 1e-9 {
		t.Fatalf("sum = %v, want 105.6", s.Sum)
	}
	// p50 rank 2.5 falls in the first bucket (cumulative 2 < 2.5 <= 3 is the
	// second bucket [0.1, 1]): interpolate within it.
	q := s.Quantile(0.5)
	if q < 0.1 || q > 1 {
		t.Fatalf("p50 = %v, want within (0.1, 1]", q)
	}
	// The overflow bucket reports the largest finite bound.
	if q := s.Quantile(1); q != 10 {
		t.Fatalf("p100 = %v, want 10", q)
	}
	if math.Abs(s.Mean()-105.6/5) > 1e-9 {
		t.Fatalf("mean = %v, want %v", s.Mean(), 105.6/5)
	}
	if sum := s.Summary(); !strings.Contains(sum, "count=5") {
		t.Fatalf("summary %q should contain count=5", sum)
	}
}

func TestVecChildrenAndLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("rule_fired_total", "rule", "")
	v.With("R1").Inc()
	v.With("R1").Inc()
	v.With(`R"2\x`).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `rule_fired_total{rule="R1"} 2`) {
		t.Fatalf("missing labelled sample in:\n%s", out)
	}
	if !strings.Contains(out, `rule_fired_total{rule="R\"2\\x"} 1`) {
		t.Fatalf("label escaping wrong in:\n%s", out)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "counts things").Add(3)
	r.Gauge("g", "").Set(1.5)
	h := r.HistogramVec("h_seconds", "policy", "latency", []float64{0.5, 2}).With("always")
	h.Observe(0.1)
	h.Observe(1)
	h.Observe(99)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP c_total counts things",
		"# TYPE c_total counter",
		"c_total 3",
		"# TYPE g gauge",
		"g 1.5",
		"# TYPE h_seconds histogram",
		`h_seconds_bucket{policy="always",le="0.5"} 1`,
		`h_seconds_bucket{policy="always",le="2"} 2`,
		`h_seconds_bucket{policy="always",le="+Inf"} 3`,
		`h_seconds_sum{policy="always"} 100.1`,
		`h_seconds_count{policy="always"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
	}
}

// TestConcurrentUpdatesAndGather exercises the registry under the race
// detector: parallel increments and observations while encoders run, then
// exact final counts, plus the encoder-consistency property that cumulative
// bucket counts are monotone and _count equals the +Inf bucket.
func TestConcurrentUpdatesAndGather(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	v := r.CounterVec("conc_labelled_total", "who", "")
	h := r.Histogram("conc_seconds", "", []float64{0.001, 0.01, 0.1, 1})
	g := r.Gauge("conc_gauge", "")

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			who := string(rune('a' + w%4))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				v.With(who).Inc()
				h.Observe(float64(i%100) / 500)
				g.Add(1)
			}
		}(w)
	}
	// Encoders race the writers; every snapshot they take must be internally
	// consistent.
	stop := make(chan struct{})
	var enc sync.WaitGroup
	enc.Add(1)
	go func() {
		defer enc.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
			checkHistogramConsistency(t, buf.String(), "conc_seconds")
		}
	}()
	wg.Wait()
	close(stop)
	enc.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	var labelled int64
	for _, s := range findFamily(t, r, "conc_labelled_total").Samples {
		labelled += int64(s.Value)
	}
	if labelled != workers*perWorker {
		t.Fatalf("labelled sum = %d, want %d", labelled, workers*perWorker)
	}
	hs := h.Snapshot()
	if hs.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", hs.Count, workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*perWorker)
	}
}

// checkHistogramConsistency parses the encoded buckets of name and asserts
// cumulative monotonicity and count == +Inf cumulative.
func checkHistogramConsistency(t *testing.T, out, name string) {
	t.Helper()
	prev := int64(-1)
	lastBucket := int64(0)
	var count int64
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, name+"_bucket"):
			fields := strings.Fields(line)
			n, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q", line)
			}
			if n < prev {
				t.Fatalf("cumulative buckets decreased: %q after %d", line, prev)
			}
			prev = n
			lastBucket = n
		case strings.HasPrefix(line, name+"_count"):
			fields := strings.Fields(line)
			count, _ = strconv.ParseInt(fields[len(fields)-1], 10, 64)
		}
	}
	if count != lastBucket {
		t.Fatalf("_count %d != +Inf bucket %d", count, lastBucket)
	}
}

func findFamily(t *testing.T, r *Registry, name string) FamilySnapshot {
	t.Helper()
	for _, fs := range r.Gather() {
		if fs.Name == name {
			return fs
		}
	}
	t.Fatalf("family %s not found", name)
	return FamilySnapshot{}
}

func equalInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
