// Package metrics is a small, dependency-free instrumentation registry for
// the reactive knowledge management system: atomic counters, gauges and
// fixed-bucket histograms, grouped into named families and exportable in the
// Prometheus text exposition format.
//
// The package exists because the paper's evaluation (Fig. 9/10) is entirely
// about where reactive time goes — rule firing, alert queries, summary
// rollovers, log fsyncs — and none of that is visible without low-overhead
// runtime instrumentation on the hot paths.
//
// Design constraints, in order:
//
//   - Hot-path updates are wait-free and allocation-free: a Counter.Inc is
//     one atomic add; a Histogram.Observe is a scan over a fixed bucket
//     layout plus three atomic operations. No locks, no maps, no interface
//     dispatch on the update path.
//   - Instruments are nil-safe: every method on a nil *Counter, *Gauge or
//     *Histogram is a no-op, so packages can carry optional instrumentation
//     without guarding each call site.
//   - Labelled families (CounterVec, HistogramVec) resolve a label value to
//     a child instrument once — callers cache the child (the trigger engine
//     caches per-rule counters at install time) so label lookup never sits
//     on a hot path.
//   - Registration is idempotent: asking for an existing name of the same
//     type returns the existing instrument, so wiring code can run twice
//     (e.g. after a durable store swap) without duplicating families.
//     Re-using a name with a different type or label key panics — that is a
//     programming error, not a runtime condition.
//
// Encoding (WritePrometheus, Gather) reads each atomic once; histogram
// cumulative bucket values are computed from a single pass over the bucket
// counts, so `le`-cumulative monotonicity and count == +Inf-cumulative hold
// by construction even while writers race the encoder.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// metricType enumerates the supported instrument kinds.
type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	case histogramType:
		return "histogram"
	default:
		return fmt.Sprintf("metricType(%d)", int(t))
	}
}

// Counter is a monotonically increasing count. The zero value is ready to
// use; all methods on a nil *Counter are no-ops.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be non-negative; negative deltas are ignored so a
// counter can never go backwards).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. The zero value is ready to use;
// all methods on a nil *Gauge are no-ops. A Gauge created by GaugeFunc is
// read through its callback instead.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
	fn   func() float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the stored value.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value (the callback's result for a GaugeFunc).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// family is one named metric with all its labelled children.
type family struct {
	name    string
	help    string
	typ     metricType
	label   string    // label key, "" for unlabelled families
	buckets []float64 // histogram bucket upper bounds

	mu       sync.RWMutex
	order    []string // label values in first-use order ("" for unlabelled)
	children map[string]any
}

func (f *family) child(labelValue string, create func() any) any {
	f.mu.RLock()
	c, ok := f.children[labelValue]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[labelValue]; ok {
		return c
	}
	c = create()
	f.children[labelValue] = c
	f.order = append(f.order, labelValue)
	return c
}

// Registry holds named metric families. The zero value is not usable; use
// NewRegistry. A nil *Registry is safe: every registration method returns a
// nil instrument (whose methods no-op) and Gather returns nothing.
type Registry struct {
	mu     sync.RWMutex
	fams   []*family // registration order
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// lookup returns the family, registering it on first use. It panics when
// name is already registered with a different type or label key.
func (r *Registry) lookup(name, help string, typ metricType, label string, buckets []float64) *family {
	r.mu.RLock()
	f, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		if f, ok = r.byName[name]; !ok {
			f = &family{
				name: name, help: help, typ: typ, label: label,
				buckets:  buckets,
				children: make(map[string]any),
			}
			r.byName[name] = f
			r.fams = append(r.fams, f)
		}
		r.mu.Unlock()
	}
	if f.typ != typ || f.label != label {
		panic(fmt.Sprintf("metrics: %s re-registered as %s/%q (was %s/%q)",
			name, typ, label, f.typ, f.label))
	}
	return f
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, counterType, "", nil)
	return f.child("", func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, gaugeType, "", nil)
	return f.child("", func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed by fn at read time
// (cardinality gauges read live store counters this way). Registering the
// same name again keeps the first callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.lookup(name, help, gaugeType, "", nil)
	f.child("", func() any { return &Gauge{fn: fn} })
}

// Histogram returns the fixed-bucket histogram registered under name,
// creating it on first use with the given bucket upper bounds (nil =
// LatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = LatencyBuckets
	}
	f := r.lookup(name, help, histogramType, "", buckets)
	return f.child("", func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterVec is a family of counters distinguished by one label.
type CounterVec struct {
	fam *family
}

// CounterVec returns the labelled counter family registered under name,
// creating it on first use.
func (r *Registry) CounterVec(name, label, help string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.lookup(name, help, counterType, label, nil)}
}

// With returns the child counter for the given label value, creating it on
// first use. Callers should cache the child when the increment sits on a hot
// path.
func (v *CounterVec) With(labelValue string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.child(labelValue, func() any { return &Counter{} }).(*Counter)
}

// HistogramVec is a family of histograms distinguished by one label.
type HistogramVec struct {
	fam *family
}

// HistogramVec returns the labelled histogram family registered under name,
// creating it on first use with the given bucket layout (nil =
// LatencyBuckets).
func (r *Registry) HistogramVec(name, label, help string, buckets []float64) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = LatencyBuckets
	}
	return &HistogramVec{fam: r.lookup(name, help, histogramType, label, buckets)}
}

// With returns the child histogram for the given label value, creating it on
// first use.
func (v *HistogramVec) With(labelValue string) *Histogram {
	if v == nil {
		return nil
	}
	return v.fam.child(labelValue, func() any { return newHistogram(v.fam.buckets) }).(*Histogram)
}

// Names returns the registered family names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f.name)
	}
	sort.Strings(out)
	return out
}
