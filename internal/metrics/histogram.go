package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the default bucket layout for latency histograms: upper
// bounds in seconds spanning 1µs to 10s, roughly three buckets per decade.
// The layout is fixed at registration so Observe never allocates or resizes.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram counts observations into a fixed set of buckets. Updates are
// wait-free and allocation-free: a scan over the (small, fixed) bound slice,
// one atomic add on the bucket, and a CAS loop on the floating-point sum.
// All methods on a nil *Histogram are no-ops.
type Histogram struct {
	bounds []float64      // upper bounds; observations > bounds[len-1] land in the overflow bucket
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf overflow bucket
	sum    atomic.Uint64  // float64 bits of the observation sum
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Snapshot returns a point-in-time copy of the histogram. The per-bucket
// counts are read in one pass, so derived cumulative values are monotone
// even while writers race the snapshot.
func (h *Histogram) Snapshot() *HistogramSnapshot {
	if h == nil {
		return nil
	}
	s := &HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistogramSnapshot is a consistent view of a histogram's buckets.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, parallel to Counts[:len(Bounds)]
	Counts []int64   // per-bucket (non-cumulative) counts; last is +Inf
	Count  int64     // total observations (sum of Counts)
	Sum    float64   // sum of observed values
}

// Mean returns the average observation, 0 when empty.
func (s *HistogramSnapshot) Mean() float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket that contains it, the same estimate Prometheus's
// histogram_quantile computes. Observations in the +Inf overflow bucket
// report the largest finite bound.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: no finite upper bound to interpolate toward.
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Summary renders the snapshot as one human-readable line: observation
// count, mean, and the p50/p90/p99 latency estimates. Durations are
// formatted because every histogram in this system observes seconds.
func (s *HistogramSnapshot) Summary() string {
	if s == nil || s.Count == 0 {
		return "count=0"
	}
	return fmt.Sprintf("count=%d mean=%s p50=%s p90=%s p99=%s",
		s.Count, fmtSeconds(s.Mean()), fmtSeconds(s.Quantile(0.5)),
		fmtSeconds(s.Quantile(0.9)), fmtSeconds(s.Quantile(0.99)))
}

// fmtSeconds renders a second count as a rounded time.Duration.
func fmtSeconds(v float64) string {
	d := time.Duration(v * float64(time.Second))
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Nanosecond).String()
	}
}
