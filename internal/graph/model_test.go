package graph

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

// modelNode mirrors a store node in plain maps, for model-based testing.
type modelNode struct {
	labels map[string]bool
	props  map[string]value.Value
}

type modelRel struct {
	typ        string
	start, end NodeID
}

// model is a reference implementation of the store's semantics.
type model struct {
	nodes map[NodeID]*modelNode
	rels  map[RelID]*modelRel
}

func newModel() *model {
	return &model{nodes: make(map[NodeID]*modelNode), rels: make(map[RelID]*modelRel)}
}

// TestStoreAgainstModel drives a long random operation sequence against
// both the store and a trivial reference model, checking agreement after
// every committed transaction — including transactions that roll back,
// which must leave the store exactly where the model says it was.
func TestStoreAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := NewStore()
	if err := s.CreateIndex("L0", "p0"); err != nil {
		t.Fatal(err)
	}
	m := newModel()

	labels := []string{"L0", "L1", "L2"}
	props := []string{"p0", "p1"}
	relTypes := []string{"R0", "R1"}

	nodeIDs := func(mm *model) []NodeID {
		out := make([]NodeID, 0, len(mm.nodes))
		for id := range mm.nodes {
			out = append(out, id)
		}
		return out
	}
	pick := func(ids []NodeID) NodeID { return ids[rng.Intn(len(ids))] }

	for round := 0; round < 300; round++ {
		rollback := rng.Intn(5) == 0
		// Snapshot the model for rollback rounds.
		shadow := newModel()
		for id, n := range m.nodes {
			cn := &modelNode{labels: map[string]bool{}, props: map[string]value.Value{}}
			for l := range n.labels {
				cn.labels[l] = true
			}
			for k, v := range n.props {
				cn.props[k] = v
			}
			shadow.nodes[id] = cn
		}
		for id, r := range m.rels {
			shadow.rels[id] = &modelRel{typ: r.typ, start: r.start, end: r.end}
		}

		tx := s.Begin(ReadWrite)
		for op := 0; op < 1+rng.Intn(6); op++ {
			switch rng.Intn(7) {
			case 0: // create node
				l := labels[rng.Intn(len(labels))]
				p := props[rng.Intn(len(props))]
				v := value.Int(int64(rng.Intn(4)))
				id, err := tx.CreateNode([]string{l}, map[string]value.Value{p: v})
				if err != nil {
					t.Fatal(err)
				}
				m.nodes[id] = &modelNode{
					labels: map[string]bool{l: true},
					props:  map[string]value.Value{p: v},
				}
			case 1: // detach delete node
				ids := nodeIDs(m)
				if len(ids) == 0 {
					continue
				}
				id := pick(ids)
				if err := tx.DeleteNode(id, true); err != nil {
					t.Fatal(err)
				}
				delete(m.nodes, id)
				for rid, r := range m.rels {
					if r.start == id || r.end == id {
						delete(m.rels, rid)
					}
				}
			case 2: // create rel
				ids := nodeIDs(m)
				if len(ids) == 0 {
					continue
				}
				a, b := pick(ids), pick(ids)
				typ := relTypes[rng.Intn(len(relTypes))]
				rid, err := tx.CreateRel(a, b, typ, nil)
				if err != nil {
					t.Fatal(err)
				}
				m.rels[rid] = &modelRel{typ: typ, start: a, end: b}
			case 3: // delete rel
				for rid := range m.rels {
					if err := tx.DeleteRel(rid); err != nil {
						t.Fatal(err)
					}
					delete(m.rels, rid)
					break
				}
			case 4: // set prop
				ids := nodeIDs(m)
				if len(ids) == 0 {
					continue
				}
				id := pick(ids)
				p := props[rng.Intn(len(props))]
				v := value.Int(int64(rng.Intn(4)))
				if err := tx.SetNodeProp(id, p, v); err != nil {
					t.Fatal(err)
				}
				m.nodes[id].props[p] = v
			case 5: // set label
				ids := nodeIDs(m)
				if len(ids) == 0 {
					continue
				}
				id := pick(ids)
				l := labels[rng.Intn(len(labels))]
				if err := tx.SetLabel(id, l); err != nil {
					t.Fatal(err)
				}
				m.nodes[id].labels[l] = true
			case 6: // remove label
				ids := nodeIDs(m)
				if len(ids) == 0 {
					continue
				}
				id := pick(ids)
				l := labels[rng.Intn(len(labels))]
				if err := tx.RemoveLabel(id, l); err != nil {
					t.Fatal(err)
				}
				delete(m.nodes[id].labels, l)
			}
		}
		if rollback {
			tx.Rollback()
			m = shadow
		} else if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		checkAgainstModel(t, s, m, round)
		if t.Failed() {
			return
		}
	}
}

func checkAgainstModel(t *testing.T, s *Store, m *model, round int) {
	t.Helper()
	_ = s.View(func(tx *Tx) error {
		if tx.NodeCount() != len(m.nodes) {
			t.Errorf("round %d: nodes %d != model %d", round, tx.NodeCount(), len(m.nodes))
		}
		if tx.RelCount() != len(m.rels) {
			t.Errorf("round %d: rels %d != model %d", round, tx.RelCount(), len(m.rels))
		}
		// Per-node agreement.
		for id, mn := range m.nodes {
			labels, ok := tx.NodeLabels(id)
			if !ok {
				t.Errorf("round %d: node %d missing", round, id)
				continue
			}
			if len(labels) != len(mn.labels) {
				t.Errorf("round %d: node %d labels %v != model %v", round, id, labels, mn.labels)
			}
			for _, l := range labels {
				if !mn.labels[l] {
					t.Errorf("round %d: node %d extra label %s", round, id, l)
				}
			}
			for k, want := range mn.props {
				got, has := tx.NodeProp(id, k)
				if !has || !value.SameValue(got, want) {
					t.Errorf("round %d: node %d prop %s = %s, want %s", round, id, k, got, want)
				}
			}
		}
		// Label index agreement.
		for _, l := range []string{"L0", "L1", "L2"} {
			indexed := tx.NodesByLabel(l)
			count := 0
			for _, mn := range m.nodes {
				if mn.labels[l] {
					count++
				}
			}
			if len(indexed) != count {
				t.Errorf("round %d: label index %s has %d, model %d", round, l, len(indexed), count)
			}
		}
		// Property index agreement for the indexed (L0, p0).
		for v := int64(0); v < 4; v++ {
			indexed, ok := tx.NodesByProp("L0", "p0", value.Int(v))
			if !ok {
				t.Errorf("round %d: index vanished", round)
				break
			}
			count := 0
			for _, mn := range m.nodes {
				if mn.labels["L0"] {
					if pv, has := mn.props["p0"]; has && value.SameValue(pv, value.Int(v)) {
						count++
					}
				}
			}
			if len(indexed) != count {
				t.Errorf("round %d: prop index p0=%d has %d, model %d", round, v, len(indexed), count)
			}
		}
		// Adjacency agreement.
		for rid, mr := range m.rels {
			typ, start, end, ok := tx.RelEndpoints(rid)
			if !ok || typ != mr.typ || start != mr.start || end != mr.end {
				t.Errorf("round %d: rel %d mismatch", round, rid)
			}
		}
		for id := range m.nodes {
			deg := 0
			for _, mr := range m.rels {
				if mr.start == id {
					deg++
				}
				if mr.end == id && mr.start != id {
					deg++
				}
			}
			if got := tx.Degree(id, Both); got != deg {
				t.Errorf("round %d: node %d degree %d != model %d", round, id, got, deg)
			}
		}
		return nil
	})
}
