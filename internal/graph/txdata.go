package graph

import "repro/internal/value"

// EntityKind distinguishes node and relationship targets in change records.
type EntityKind int

// Entity kinds.
const (
	NodeEntity EntityKind = iota
	RelEntity
)

// LabelChange records a label assigned to or removed from a node.
type LabelChange struct {
	Node  NodeID
	Label string
}

// PropChange records a property assignment or removal on a node or
// relationship. For assignments Old is the previous value (NULL if the
// property was absent) and New the value written; for removals New is NULL.
type PropChange struct {
	Kind EntityKind
	Node NodeID // valid when Kind == NodeEntity
	Rel  RelID  // valid when Kind == RelEntity
	Key  string
	Old  value.Value
	New  value.Value
}

// TxData accumulates the changes made by a transaction, in the shape that
// graph databases expose to trigger frameworks: created/deleted entities and
// label/property transitions. Deleted entities are recorded as snapshots so
// that rules can still inspect the OLD state.
type TxData struct {
	CreatedNodes   []NodeID
	DeletedNodes   []Node
	CreatedRels    []RelID
	DeletedRels    []Rel
	AssignedLabels []LabelChange
	RemovedLabels  []LabelChange
	AssignedProps  []PropChange
	RemovedProps   []PropChange
}

// Empty reports whether the transaction made no changes.
func (d *TxData) Empty() bool {
	return len(d.CreatedNodes) == 0 && len(d.DeletedNodes) == 0 &&
		len(d.CreatedRels) == 0 && len(d.DeletedRels) == 0 &&
		len(d.AssignedLabels) == 0 && len(d.RemovedLabels) == 0 &&
		len(d.AssignedProps) == 0 && len(d.RemovedProps) == 0
}

// Merge appends the changes of other into d. Used by rule engines that
// accumulate the effects of cascading rule executions.
func (d *TxData) Merge(other *TxData) {
	d.CreatedNodes = append(d.CreatedNodes, other.CreatedNodes...)
	d.DeletedNodes = append(d.DeletedNodes, other.DeletedNodes...)
	d.CreatedRels = append(d.CreatedRels, other.CreatedRels...)
	d.DeletedRels = append(d.DeletedRels, other.DeletedRels...)
	d.AssignedLabels = append(d.AssignedLabels, other.AssignedLabels...)
	d.RemovedLabels = append(d.RemovedLabels, other.RemovedLabels...)
	d.AssignedProps = append(d.AssignedProps, other.AssignedProps...)
	d.RemovedProps = append(d.RemovedProps, other.RemovedProps...)
}

// Compact removes records that cancel out within the same transaction:
// nodes and relationships both created and deleted disappear entirely
// (together with their label and property changes), and label or property
// changes on deleted pre-existing entities are dropped because the deletion
// snapshot already captures the final OLD state.
func (d *TxData) Compact() {
	createdNodes := make(map[NodeID]bool, len(d.CreatedNodes))
	for _, id := range d.CreatedNodes {
		createdNodes[id] = true
	}
	createdRels := make(map[RelID]bool, len(d.CreatedRels))
	for _, id := range d.CreatedRels {
		createdRels[id] = true
	}
	deletedNodes := make(map[NodeID]bool, len(d.DeletedNodes))
	for _, n := range d.DeletedNodes {
		deletedNodes[n.ID] = true
	}
	deletedRels := make(map[RelID]bool, len(d.DeletedRels))
	for _, r := range d.DeletedRels {
		deletedRels[r.ID] = true
	}

	d.CreatedNodes = filterNodeIDs(d.CreatedNodes, func(id NodeID) bool { return !deletedNodes[id] })
	d.CreatedRels = filterRelIDs(d.CreatedRels, func(id RelID) bool { return !deletedRels[id] })

	keepDeletedNodes := d.DeletedNodes[:0]
	for _, n := range d.DeletedNodes {
		if !createdNodes[n.ID] {
			keepDeletedNodes = append(keepDeletedNodes, n)
		}
	}
	d.DeletedNodes = keepDeletedNodes

	keepDeletedRels := d.DeletedRels[:0]
	for _, r := range d.DeletedRels {
		if !createdRels[r.ID] {
			keepDeletedRels = append(keepDeletedRels, r)
		}
	}
	d.DeletedRels = keepDeletedRels

	nodeGone := func(id NodeID) bool { return deletedNodes[id] }
	relGone := func(id RelID) bool { return deletedRels[id] }

	d.AssignedLabels = filterLabelChanges(d.AssignedLabels, nodeGone)
	d.RemovedLabels = filterLabelChanges(d.RemovedLabels, nodeGone)
	d.AssignedProps = filterPropChanges(d.AssignedProps, nodeGone, relGone)
	d.RemovedProps = filterPropChanges(d.RemovedProps, nodeGone, relGone)
}

func filterNodeIDs(ids []NodeID, keep func(NodeID) bool) []NodeID {
	out := ids[:0]
	for _, id := range ids {
		if keep(id) {
			out = append(out, id)
		}
	}
	return out
}

func filterRelIDs(ids []RelID, keep func(RelID) bool) []RelID {
	out := ids[:0]
	for _, id := range ids {
		if keep(id) {
			out = append(out, id)
		}
	}
	return out
}

func filterLabelChanges(cs []LabelChange, gone func(NodeID) bool) []LabelChange {
	out := cs[:0]
	for _, c := range cs {
		if !gone(c.Node) {
			out = append(out, c)
		}
	}
	return out
}

func filterPropChanges(cs []PropChange, nodeGone func(NodeID) bool, relGone func(RelID) bool) []PropChange {
	out := cs[:0]
	for _, c := range cs {
		if c.Kind == NodeEntity && nodeGone(c.Node) {
			continue
		}
		if c.Kind == RelEntity && relGone(c.Rel) {
			continue
		}
		out = append(out, c)
	}
	return out
}
