package graph

// Regression tests for the mirror-aware relationship counters: a bridge
// stores a full half in both endpoint shards under one identifier, and
// MultiView.RelCount/AllRels must count and enumerate it exactly once —
// without the full dedupe scan they originally did. HomeRelCount (records
// minus mirror halves) is the per-shard primitive; it must track creates,
// deletes and Export/Import round trips.

import (
	"strings"
	"testing"

	"repro/internal/value"
)

// dedupeScanRels is the ground truth the counters are checked against: the
// union of every shard's raw relationship records.
func dedupeScanRels(v *MultiView) map[RelID]bool {
	seen := make(map[RelID]bool)
	for i := 0; i < v.NumShards(); i++ {
		for _, id := range v.ShardTx(i).AllRels() {
			seen[id] = true
		}
	}
	return seen
}

func checkRelCounters(t *testing.T, ss *ShardedStore, when string) {
	t.Helper()
	v := ss.View()
	defer v.Rollback()
	truth := dedupeScanRels(v)
	if got := v.RelCount(); got != len(truth) {
		t.Fatalf("%s: RelCount = %d, dedupe scan says %d", when, got, len(truth))
	}
	all := v.AllRels()
	if len(all) != len(truth) {
		t.Fatalf("%s: AllRels returned %d ids, dedupe scan says %d", when, len(all), len(truth))
	}
	for _, id := range all {
		if !truth[id] {
			t.Fatalf("%s: AllRels returned unknown rel %d", when, id)
		}
	}
	// Per shard, the home count must equal the raw records whose ID lies in
	// the shard's own band (everything else is a mirror half).
	for i := 0; i < v.NumShards(); i++ {
		tx := v.ShardTx(i)
		home := 0
		for _, id := range tx.AllRels() {
			if ShardOfRel(id) == i {
				home++
			}
		}
		if got := tx.HomeRelCount(); got != home {
			t.Fatalf("%s: shard %d HomeRelCount = %d, band scan says %d", when, i, got, home)
		}
	}
}

// TestShardMirrorRelCounters drives a bridge-heavy two-shard store through
// creates and deletes of plain and bridge relationships (in both
// directions, so each shard holds mirror halves) and checks RelCount,
// AllRels and HomeRelCount against a full dedupe scan at every step.
func TestShardMirrorRelCounters(t *testing.T) {
	ss := newShardedT(t, 2)

	// Plain intra-shard relationships on both shards.
	intra := make([]RelID, 0, 4)
	for i := 0; i < 2; i++ {
		i := i
		if err := ss.Update(i, func(tx *Tx) error {
			for j := 0; j < 2; j++ {
				a, err := tx.CreateNode([]string{"N"}, nil)
				if err != nil {
					return err
				}
				b, err := tx.CreateNode([]string{"N"}, nil)
				if err != nil {
					return err
				}
				id, err := tx.CreateRel(a, b, "PLAIN", nil)
				if err != nil {
					return err
				}
				intra = append(intra, id)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	// More bridges than plain rels, in both directions: shard 0 holds homes
	// for the 0->1 bridges and mirrors for the 1->0 ones, and vice versa.
	var bridges []RelID
	for i := 0; i < 5; i++ {
		_, _, rid := bridgeOnce(t, ss, 0, 1)
		bridges = append(bridges, rid)
		_, _, rid = bridgeOnce(t, ss, 1, 0)
		bridges = append(bridges, rid)
	}
	checkRelCounters(t, ss, "after creates")

	if ShardOfRel(bridges[0]) != 0 || ShardOfRel(bridges[1]) != 1 {
		t.Fatalf("bridge IDs not allocated from their start shards: %v", bridges[:2])
	}

	// Delete one bridge of each direction through a bridge transaction and
	// one plain relationship through its shard.
	bt, err := ss.BeginBridge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.DeleteRel(bridges[0]); err != nil {
		t.Fatal(err)
	}
	if err := bt.DeleteRel(bridges[1]); err != nil {
		t.Fatal(err)
	}
	if err := bt.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if err := ss.Update(0, func(tx *Tx) error { return tx.DeleteRel(intra[0]) }); err != nil {
		t.Fatal(err)
	}
	checkRelCounters(t, ss, "after deletes")

	// Export/Import round trip: the mirror counter is not serialized, so
	// Import must rebuild it from the ID bands for the counters to survive
	// a durable restart (checkpoint + recovery uses this path).
	stores := make([]*Store, 2)
	for i := range stores {
		var b strings.Builder
		if err := ss.Shard(i).Export(&b); err != nil {
			t.Fatal(err)
		}
		stores[i] = NewStore()
		if err := stores[i].Import(strings.NewReader(b.String())); err != nil {
			t.Fatal(err)
		}
	}
	ss2, err := AttachShards(stores)
	if err != nil {
		t.Fatal(err)
	}
	checkRelCounters(t, ss2, "after export/import")

	// And the reattached store keeps counting correctly as bridges churn.
	_, _, rid := bridgeOnce(t, ss2, 1, 0)
	bt, err = ss2.BeginBridge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.DeleteRel(rid); err != nil {
		t.Fatal(err)
	}
	if err := bt.Commit(nil); err != nil {
		t.Fatal(err)
	}
	checkRelCounters(t, ss2, "after post-import churn")
}

// TestShardMirrorAllRelsNoMirrorFastPath checks the mirror-free fast path:
// with no bridges, AllRels on a multi-shard view must still return every
// relationship exactly once.
func TestShardMirrorAllRelsNoMirrorFastPath(t *testing.T) {
	ss := newShardedT(t, 3)
	for i := 0; i < 3; i++ {
		i := i
		if err := ss.Update(i, func(tx *Tx) error {
			a, err := tx.CreateNode([]string{"N"}, nil)
			if err != nil {
				return err
			}
			b, err := tx.CreateNode([]string{"N"}, nil)
			if err != nil {
				return err
			}
			_, err = tx.CreateRel(a, b, "PLAIN", map[string]value.Value{"s": value.Int(int64(i))})
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	checkRelCounters(t, ss, "no bridges")
}
