package graph

import (
	"fmt"

	"repro/internal/value"
)

type indexKey struct {
	label string
	prop  string
}

// propIndex maps a property value (by hash key) to the set of nodes of the
// indexed label carrying that value.
type propIndex struct {
	byValue map[string]map[NodeID]struct{}
}

// CreateIndex creates a property index on (label, prop) and populates it
// from the existing nodes. Equality lookups by the query planner and key
// constraints use it. Not safe to call while transactions are open.
func (s *Store) CreateIndex(label, prop string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := indexKey{label, prop}
	if _, exists := s.indexes[key]; exists {
		return fmt.Errorf("%w: %s.%s", ErrIndexExists, label, prop)
	}
	idx := &propIndex{byValue: make(map[string]map[NodeID]struct{})}
	s.indexes[key] = idx
	for id := range s.byLabel[label] {
		rec := s.nodes[id]
		if v, ok := rec.props[prop]; ok {
			idx.insert(v, id)
		}
	}
	return nil
}

// DropIndex removes a property index.
func (s *Store) DropIndex(label, prop string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := indexKey{label, prop}
	if _, exists := s.indexes[key]; !exists {
		return fmt.Errorf("%w: %s.%s", ErrIndexNotFound, label, prop)
	}
	delete(s.indexes, key)
	return nil
}

// HasIndex reports whether an index exists on (label, prop). The caller
// must hold a transaction (any mode).
func (tx *Tx) HasIndex(label, prop string) bool {
	_, ok := tx.s.indexes[indexKey{label, prop}]
	return ok
}

// NodesByProp returns the nodes of the given label whose property equals v,
// using the property index. The second result is false when no index exists
// on (label, prop), in which case the caller must fall back to a scan.
func (tx *Tx) NodesByProp(label, prop string, v value.Value) ([]NodeID, bool) {
	idx, ok := tx.s.indexes[indexKey{label, prop}]
	if !ok {
		return nil, false
	}
	set := idx.byValue[v.HashKey()]
	out := make([]NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	return out, true
}

// CountByProp returns the number of nodes of the given label whose property
// equals v, in O(1) via the property index — the analog of a graph
// database's count store. The second result is false when no index exists.
func (tx *Tx) CountByProp(label, prop string, v value.Value) (int, bool) {
	idx, ok := tx.s.indexes[indexKey{label, prop}]
	if !ok {
		return 0, false
	}
	return len(idx.byValue[v.HashKey()]), true
}

func (idx *propIndex) insert(v value.Value, id NodeID) {
	k := v.HashKey()
	set, ok := idx.byValue[k]
	if !ok {
		set = make(map[NodeID]struct{})
		idx.byValue[k] = set
	}
	set[id] = struct{}{}
}

func (idx *propIndex) remove(v value.Value, id NodeID) {
	k := v.HashKey()
	if set, ok := idx.byValue[k]; ok {
		delete(set, id)
		if len(set) == 0 {
			delete(idx.byValue, k)
		}
	}
}

// indexInsertNode updates all indexes matching any of the node's labels for
// property (key, v).
func (s *Store) indexInsertNode(rec *nodeRec, key string, v value.Value) {
	for label := range rec.labels {
		if idx, ok := s.indexes[indexKey{label, key}]; ok {
			idx.insert(v, rec.id)
		}
	}
}

func (s *Store) indexRemoveNode(rec *nodeRec, key string, v value.Value) {
	for label := range rec.labels {
		if idx, ok := s.indexes[indexKey{label, key}]; ok {
			idx.remove(v, rec.id)
		}
	}
}

func (s *Store) indexInsertNodeForLabel(rec *nodeRec, label, key string, v value.Value) {
	if idx, ok := s.indexes[indexKey{label, key}]; ok {
		idx.insert(v, rec.id)
	}
}

func (s *Store) indexRemoveNodeForLabel(rec *nodeRec, label, key string, v value.Value) {
	if idx, ok := s.indexes[indexKey{label, key}]; ok {
		idx.remove(v, rec.id)
	}
}
