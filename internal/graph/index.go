package graph

import (
	"fmt"
	"maps"

	"repro/internal/value"
)

type indexKey struct {
	label string
	prop  string
}

// propIndex maps a property value (by hash key) to the set of nodes of the
// indexed label carrying that value. Like every other snapshot component it
// is immutable once published; write transactions clone the byValue table
// and the touched posting sets copy-on-write.
type propIndex struct {
	byValue map[string]map[NodeID]struct{}
}

// CreateIndex creates a property index on (label, prop), populates it from
// the committed state, and publishes a new snapshot carrying it. Equality
// lookups by the query planner and key constraints use it. Open read-only
// transactions keep their pinned snapshot and do not see the index; it must
// not race an open read-write transaction (it would block behind it).
func (s *Store) CreateIndex(label, prop string) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	base := s.snap.Load()
	key := indexKey{label, prop}
	if _, exists := base.indexes[key]; exists {
		return fmt.Errorf("%w: %s.%s", ErrIndexExists, label, prop)
	}
	idx := &propIndex{byValue: make(map[string]map[NodeID]struct{})}
	for id := range base.byLabel[label] {
		if v, ok := base.nodes[id].props[prop]; ok {
			idx.insert(v, id)
		}
	}
	next := *base
	next.indexes = maps.Clone(base.indexes)
	next.indexes[key] = idx
	s.snap.Store(&next)
	s.metrics.Load().SnapshotsPublished.Inc()
	return nil
}

// DropIndex removes a property index, publishing a new snapshot without it.
func (s *Store) DropIndex(label, prop string) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	base := s.snap.Load()
	key := indexKey{label, prop}
	if _, exists := base.indexes[key]; !exists {
		return fmt.Errorf("%w: %s.%s", ErrIndexNotFound, label, prop)
	}
	next := *base
	next.indexes = maps.Clone(base.indexes)
	delete(next.indexes, key)
	s.snap.Store(&next)
	s.metrics.Load().SnapshotsPublished.Inc()
	return nil
}

// HasIndex reports whether an index exists on (label, prop) in the
// transaction's view.
func (tx *Tx) HasIndex(label, prop string) bool {
	_, ok := tx.view.indexes[indexKey{label, prop}]
	return ok
}

// NodesByProp returns the nodes of the given label whose property equals v,
// using the property index. The second result is false when no index exists
// on (label, prop), in which case the caller must fall back to a scan.
func (tx *Tx) NodesByProp(label, prop string, v value.Value) ([]NodeID, bool) {
	idx, ok := tx.view.indexes[indexKey{label, prop}]
	if !ok {
		return nil, false
	}
	set := idx.byValue[v.HashKey()]
	out := make([]NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	return out, true
}

// CountByProp returns the number of nodes of the given label whose property
// equals v, in O(1) via the property index — the analog of a graph
// database's count store. The second result is false when no index exists.
func (tx *Tx) CountByProp(label, prop string, v value.Value) (int, bool) {
	idx, ok := tx.view.indexes[indexKey{label, prop}]
	if !ok {
		return 0, false
	}
	return len(idx.byValue[v.HashKey()]), true
}

// insert and remove mutate the index directly; they are only valid on
// private, not-yet-published indexes (CreateIndex population, Import).
// In-transaction maintenance goes through Tx.idxInsert/idxRemove, which
// clone copy-on-write first.
func (idx *propIndex) insert(v value.Value, id NodeID) {
	k := v.HashKey()
	set, ok := idx.byValue[k]
	if !ok {
		set = make(map[NodeID]struct{})
		idx.byValue[k] = set
	}
	set[id] = struct{}{}
}

// indexInsertNode updates, for every label of rec, the matching private
// index for property (key, v). Only valid while building a not-yet-published
// snapshot (Import).
func (sn *snapshot) indexInsertNode(rec *nodeRec, key string, v value.Value) {
	for label := range rec.labels {
		if idx, ok := sn.indexes[indexKey{label, key}]; ok {
			idx.insert(v, rec.id)
		}
	}
}
