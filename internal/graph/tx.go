package graph

import (
	"errors"
	"fmt"
	"maps"
	"sort"
	"time"

	"repro/internal/value"
)

// Tx is a transaction over a Store. Read methods are valid in both modes;
// write methods fail with ErrReadOnly in a read-only transaction. A
// transaction must be finished with Commit or Rollback exactly once;
// Rollback after Commit is a no-op, which makes `defer tx.Rollback()` safe.
//
// A read-write transaction edits a private working copy of the committed
// snapshot (copy-on-write, tracked by work) and publishes it at Commit;
// Rollback simply discards the copy. A read-only transaction shares the
// immutable committed snapshot and must never reach a write method.
type Tx struct {
	s    *Store
	mode Mode
	done bool
	data *TxData
	// view is the state this transaction reads: the pinned committed
	// snapshot for ReadOnly, the private working copy for ReadWrite.
	view *snapshot
	// w tracks what the working copy has cloned so far; nil for ReadOnly.
	w *work
	// apply marks a replication-apply transaction (BeginApply): it passes
	// the follower-mode write gate and skips validators.
	apply bool
	// metrics is the store's instrumentation as of Begin.
	metrics *Metrics
	// deferred holds OnCommitted callbacks, run after publication.
	deferred []func() error
	// start is set at Begin when transaction-latency instrumentation is
	// wired; zero otherwise.
	start time.Time
}

// work records which parts of the working copy are already private to the
// transaction, so each map and record is cloned at most once however many
// times it is touched.
type work struct {
	// wrote is set by the first effective write; Commit publishes the
	// working copy only when it is set.
	wrote bool

	nodesCloned    bool
	relsCloned     bool
	labelsCloned   bool
	relTypesCloned bool
	indexesCloned  bool

	clonedNodes       map[NodeID]struct{}
	clonedRels        map[RelID]struct{}
	clonedLabelSets   map[string]struct{}
	clonedRelTypeSets map[string]struct{}
	clonedIdx         map[indexKey]struct{}
	// clonedIdxSets maps an index (already cloned) to the set of value-hash
	// posting sets cloned within it.
	clonedIdxSets map[indexKey]map[string]struct{}
}

func newWork() *work {
	return &work{
		clonedNodes:       make(map[NodeID]struct{}),
		clonedRels:        make(map[RelID]struct{}),
		clonedLabelSets:   make(map[string]struct{}),
		clonedRelTypeSets: make(map[string]struct{}),
		clonedIdx:         make(map[indexKey]struct{}),
		clonedIdxSets:     make(map[indexKey]map[string]struct{}),
	}
}

// Data exposes the changes made so far by this transaction. The caller must
// not mutate the returned record.
func (tx *Tx) Data() *TxData { return tx.data }

// IsApply reports whether this is a replication-apply transaction
// (BeginApply). Commit hooks that derive log records from transactions use
// it to skip applied batches, which the apply path mirrors into the local
// log itself with the leader's sequence numbers.
func (tx *Tx) IsApply() bool { return tx.apply }

// ResetData replaces the change record with an empty one and returns the
// previous record. Rule engines use this to process changes in rounds while
// the transaction stays open.
func (tx *Tx) ResetData() *TxData {
	old := tx.data
	tx.data = &TxData{}
	return old
}

// MergeData folds a previously extracted change record back into the
// transaction, so commit-time validators observe the full set of changes
// even after rule engines processed them in rounds via ResetData.
func (tx *Tx) MergeData(d *TxData) {
	d.Merge(tx.data)
	tx.data = d
}

// OnCommitted registers fn to run after the transaction has committed — its
// snapshot published and the write lock released — in registration order.
// Commit returns the joined errors of all callbacks, but by then the
// transaction IS committed in memory: a callback error cannot roll it back.
// The write-ahead log uses this for its group-commit durability wait, so
// the fsync of one transaction overlaps the in-memory work of the next; the
// caveat is the standard early-lock-release one — on an fsync error the
// commit is visible in memory but not durable, and Commit reports it.
func (tx *Tx) OnCommitted(fn func() error) error {
	if err := tx.writable(); err != nil {
		return err
	}
	tx.deferred = append(tx.deferred, fn)
	return nil
}

// Commit runs the store validators and the commit hook, publishes the
// transaction's working copy as the new committed snapshot, releases the
// write lock, and then runs any OnCommitted callbacks. If a validator or
// the hook fails, the transaction is rolled back and the error returned; a
// callback error is returned too, but cannot undo the publication.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	if tx.mode != ReadWrite {
		tx.done = true
		return nil
	}
	if !tx.apply {
		if tx.s.follower.Load() {
			tx.rollbackWrite()
			return ErrFollowerStore
		}
		if vs := tx.s.validators.Load(); vs != nil {
			for _, v := range *vs {
				if err := v(tx); err != nil {
					tx.rollbackWrite()
					return err
				}
			}
		}
	}
	if h := tx.s.commitHook; h != nil {
		if err := h(tx); err != nil {
			tx.rollbackWrite()
			return fmt.Errorf("graph: commit hook: %w", err)
		}
	}
	tx.done = true
	if tx.w.wrote {
		tx.s.snap.Store(tx.view)
		tx.metrics.SnapshotsPublished.Inc()
	}
	tx.metrics.TxCommits.Inc()
	if !tx.start.IsZero() {
		tx.metrics.TxSeconds.ObserveSince(tx.start)
	}
	tx.s.writeMu.Unlock()
	var errs []error
	for _, fn := range tx.deferred {
		if err := fn(); err != nil {
			errs = append(errs, err)
		}
	}
	tx.deferred = nil
	return errors.Join(errs...)
}

// Rollback discards all changes made by the transaction — the working copy
// is simply dropped, the committed snapshot was never touched. Calling it
// after Commit (or twice) is a no-op.
func (tx *Tx) Rollback() {
	if tx.done {
		return
	}
	if tx.mode != ReadWrite {
		tx.done = true
		return
	}
	tx.rollbackWrite()
}

func (tx *Tx) rollbackWrite() {
	tx.done = true
	tx.deferred = nil
	tx.metrics.TxRollbacks.Inc()
	if !tx.start.IsZero() {
		tx.metrics.TxSeconds.ObserveSince(tx.start)
	}
	tx.s.writeMu.Unlock()
}

func (tx *Tx) writable() error {
	if tx.done {
		return ErrTxDone
	}
	if tx.mode != ReadWrite {
		return ErrReadOnly
	}
	return nil
}

// ---- Copy-on-write helpers ----
//
// The working copy starts as a struct copy of the committed snapshot: every
// map is still shared. The helpers below make one level at a time private —
// first the top-level map (a clone of the pointer/set table), then the
// individual record or set — each exactly once per transaction. Reads
// always go through tx.view, so the transaction sees its own writes while
// concurrent readers keep seeing the untouched committed snapshot.

func (tx *Tx) wNodes() map[NodeID]*nodeRec {
	if !tx.w.nodesCloned {
		tx.view.nodes = maps.Clone(tx.view.nodes)
		tx.w.nodesCloned = true
	}
	tx.w.wrote = true
	return tx.view.nodes
}

// wNode returns a node record the transaction may mutate, cloning the
// committed record on first touch.
func (tx *Tx) wNode(id NodeID) (*nodeRec, bool) {
	rec, ok := tx.view.nodes[id]
	if !ok {
		return nil, false
	}
	if _, private := tx.w.clonedNodes[id]; !private {
		rec = rec.clone()
		tx.wNodes()[id] = rec
		tx.w.clonedNodes[id] = struct{}{}
		tx.metrics.RecordsCloned.Inc()
	}
	return rec, true
}

// putNode installs a record created by this transaction (already private).
func (tx *Tx) putNode(rec *nodeRec) {
	tx.wNodes()[rec.id] = rec
	tx.w.clonedNodes[rec.id] = struct{}{}
}

func (tx *Tx) wRels() map[RelID]*relRec {
	if !tx.w.relsCloned {
		tx.view.rels = maps.Clone(tx.view.rels)
		tx.w.relsCloned = true
	}
	tx.w.wrote = true
	return tx.view.rels
}

func (tx *Tx) wRel(id RelID) (*relRec, bool) {
	rec, ok := tx.view.rels[id]
	if !ok {
		return nil, false
	}
	if _, private := tx.w.clonedRels[id]; !private {
		rec = rec.clone()
		tx.wRels()[id] = rec
		tx.w.clonedRels[id] = struct{}{}
		tx.metrics.RecordsCloned.Inc()
	}
	return rec, true
}

func (tx *Tx) putRel(rec *relRec) {
	tx.wRels()[rec.id] = rec
	tx.w.clonedRels[rec.id] = struct{}{}
}

// wLabelSet returns a mutable membership set for label, creating or cloning
// it as needed.
func (tx *Tx) wLabelSet(label string) map[NodeID]struct{} {
	if !tx.w.labelsCloned {
		tx.view.byLabel = maps.Clone(tx.view.byLabel)
		tx.w.labelsCloned = true
	}
	tx.w.wrote = true
	set, ok := tx.view.byLabel[label]
	if !ok {
		set = make(map[NodeID]struct{})
		tx.view.byLabel[label] = set
		tx.w.clonedLabelSets[label] = struct{}{}
		return set
	}
	if _, private := tx.w.clonedLabelSets[label]; !private {
		set = maps.Clone(set)
		tx.view.byLabel[label] = set
		tx.w.clonedLabelSets[label] = struct{}{}
	}
	return set
}

func (tx *Tx) wRelTypeSet(typ string) map[RelID]struct{} {
	if !tx.w.relTypesCloned {
		tx.view.byRelType = maps.Clone(tx.view.byRelType)
		tx.w.relTypesCloned = true
	}
	tx.w.wrote = true
	set, ok := tx.view.byRelType[typ]
	if !ok {
		set = make(map[RelID]struct{})
		tx.view.byRelType[typ] = set
		tx.w.clonedRelTypeSets[typ] = struct{}{}
		return set
	}
	if _, private := tx.w.clonedRelTypeSets[typ]; !private {
		set = maps.Clone(set)
		tx.view.byRelType[typ] = set
		tx.w.clonedRelTypeSets[typ] = struct{}{}
	}
	return set
}

// wIndex returns a mutable propIndex for ik, or nil when no such index
// exists. The index's byValue table is cloned on first touch; individual
// posting sets are cloned lazily by idxInsert/idxRemove.
func (tx *Tx) wIndex(ik indexKey) *propIndex {
	idx, ok := tx.view.indexes[ik]
	if !ok {
		return nil
	}
	if _, private := tx.w.clonedIdx[ik]; !private {
		if !tx.w.indexesCloned {
			tx.view.indexes = maps.Clone(tx.view.indexes)
			tx.w.indexesCloned = true
		}
		idx = &propIndex{byValue: maps.Clone(idx.byValue)}
		tx.view.indexes[ik] = idx
		tx.w.clonedIdx[ik] = struct{}{}
		tx.w.clonedIdxSets[ik] = make(map[string]struct{})
	}
	tx.w.wrote = true
	return idx
}

func (tx *Tx) idxInsert(ik indexKey, v value.Value, id NodeID) {
	idx := tx.wIndex(ik)
	if idx == nil {
		return
	}
	k := v.HashKey()
	sets := tx.w.clonedIdxSets[ik]
	set, ok := idx.byValue[k]
	if !ok {
		set = make(map[NodeID]struct{})
		idx.byValue[k] = set
		sets[k] = struct{}{}
	} else if _, private := sets[k]; !private {
		set = maps.Clone(set)
		idx.byValue[k] = set
		sets[k] = struct{}{}
	}
	set[id] = struct{}{}
}

func (tx *Tx) idxRemove(ik indexKey, v value.Value, id NodeID) {
	idx := tx.wIndex(ik)
	if idx == nil {
		return
	}
	k := v.HashKey()
	set, ok := idx.byValue[k]
	if !ok {
		return
	}
	sets := tx.w.clonedIdxSets[ik]
	if _, private := sets[k]; !private {
		set = maps.Clone(set)
		idx.byValue[k] = set
		sets[k] = struct{}{}
	}
	delete(set, id)
	if len(set) == 0 {
		delete(idx.byValue, k)
	}
}

// indexInsertNode updates all indexes matching any of the node's labels for
// property (key, v).
func (tx *Tx) indexInsertNode(rec *nodeRec, key string, v value.Value) {
	for label := range rec.labels {
		tx.idxInsert(indexKey{label, key}, v, rec.id)
	}
}

func (tx *Tx) indexRemoveNode(rec *nodeRec, key string, v value.Value) {
	for label := range rec.labels {
		tx.idxRemove(indexKey{label, key}, v, rec.id)
	}
}

// ---- Write operations ----

// CreateNode creates a node with the given labels and properties and
// returns its identifier. NULL-valued properties are not stored.
func (tx *Tx) CreateNode(labels []string, props map[string]value.Value) (NodeID, error) {
	if err := tx.writable(); err != nil {
		return 0, err
	}
	tx.view.nextNode++
	id := tx.view.nextNode
	return id, tx.createNode(id, labels, props)
}

func (tx *Tx) createNode(id NodeID, labels []string, props map[string]value.Value) error {
	rec := &nodeRec{
		id:     id,
		labels: make(map[string]struct{}, len(labels)),
		props:  make(map[string]value.Value, len(props)),
		out:    make(map[RelID]*relRec),
		in:     make(map[RelID]*relRec),
	}
	for _, l := range labels {
		rec.labels[l] = struct{}{}
	}
	for k, v := range props {
		if !v.IsNull() {
			rec.props[k] = v
		}
	}
	tx.putNode(rec)
	for l := range rec.labels {
		tx.wLabelSet(l)[id] = struct{}{}
	}
	for k, v := range rec.props {
		tx.indexInsertNode(rec, k, v)
	}
	tx.data.CreatedNodes = append(tx.data.CreatedNodes, id)
	return nil
}

// DeleteNode removes a node. If the node still has relationships the call
// fails with ErrHasRels unless detach is true, in which case all incident
// relationships are deleted first (DETACH DELETE).
func (tx *Tx) DeleteNode(id NodeID, detach bool) error {
	if err := tx.writable(); err != nil {
		return err
	}
	rec, ok := tx.view.nodes[id]
	if !ok {
		return fmtErrNode(id)
	}
	if len(rec.out) > 0 || len(rec.in) > 0 {
		if !detach {
			return ErrHasRels
		}
		// Collect incident relationship identifiers up front (a self-loop
		// appears in both out and in) — deleting them mutates these maps.
		rids := make(map[RelID]struct{}, len(rec.out)+len(rec.in))
		for rid := range rec.out {
			rids[rid] = struct{}{}
		}
		for rid := range rec.in {
			rids[rid] = struct{}{}
		}
		for rid := range rids {
			if err := tx.DeleteRel(rid); err != nil {
				return err
			}
		}
		rec = tx.view.nodes[id] // detach replaced the record copy-on-write
	}
	snap := snapshotNode(rec)
	for l := range rec.labels {
		delete(tx.wLabelSet(l), id)
	}
	for k, v := range rec.props {
		tx.indexRemoveNode(rec, k, v)
	}
	delete(tx.wNodes(), id)
	tx.data.DeletedNodes = append(tx.data.DeletedNodes, snap)
	return nil
}

// CreateRel creates a relationship of the given type from start to end.
func (tx *Tx) CreateRel(start, end NodeID, typ string, props map[string]value.Value) (RelID, error) {
	if err := tx.writable(); err != nil {
		return 0, err
	}
	if _, ok := tx.view.nodes[start]; !ok {
		return 0, fmtErrNode(start)
	}
	if _, ok := tx.view.nodes[end]; !ok {
		return 0, fmtErrNode(end)
	}
	tx.view.nextRel++
	id := tx.view.nextRel
	return id, tx.createRel(id, start, end, typ, props)
}

func (tx *Tx) createRel(id RelID, start, end NodeID, typ string, props map[string]value.Value) error {
	rec := &relRec{id: id, typ: typ, start: start, end: end,
		props: make(map[string]value.Value, len(props))}
	for k, v := range props {
		if !v.IsNull() {
			rec.props[k] = v
		}
	}
	tx.putRel(rec)
	sRec, _ := tx.wNode(start)
	sRec.out[id] = rec
	eRec, _ := tx.wNode(end)
	eRec.in[id] = rec
	tx.wRelTypeSet(typ)[id] = struct{}{}
	tx.data.CreatedRels = append(tx.data.CreatedRels, id)
	return nil
}

// DeleteRel removes a relationship.
func (tx *Tx) DeleteRel(id RelID) error {
	if err := tx.writable(); err != nil {
		return err
	}
	rec, ok := tx.view.rels[id]
	if !ok {
		return fmtErrRel(id)
	}
	snap := snapshotRel(rec)
	delete(tx.wRels(), id)
	// A bridge half-relationship (sharded stores) has one endpoint in another
	// shard; only locally present endpoints carry adjacency entries.
	if sRec, ok := tx.wNode(rec.start); ok {
		delete(sRec.out, id)
	}
	if eRec, ok := tx.wNode(rec.end); ok {
		delete(eRec.in, id)
	}
	delete(tx.wRelTypeSet(rec.typ), id)
	if tx.relIsMirror(id) {
		tx.view.mirrorRels--
	}
	tx.data.DeletedRels = append(tx.data.DeletedRels, snap)
	return nil
}

// SetLabel adds a label to a node; adding a label the node already carries
// is a no-op that records no change.
func (tx *Tx) SetLabel(id NodeID, label string) error {
	if err := tx.writable(); err != nil {
		return err
	}
	if rec, ok := tx.view.nodes[id]; !ok {
		return fmtErrNode(id)
	} else if _, has := rec.labels[label]; has {
		return nil
	}
	rec, _ := tx.wNode(id)
	rec.labels[label] = struct{}{}
	tx.wLabelSet(label)[id] = struct{}{}
	for k, v := range rec.props {
		tx.idxInsert(indexKey{label, k}, v, id)
	}
	tx.data.AssignedLabels = append(tx.data.AssignedLabels, LabelChange{Node: id, Label: label})
	return nil
}

// RemoveLabel removes a label from a node; removing an absent label is a
// no-op that records no change.
func (tx *Tx) RemoveLabel(id NodeID, label string) error {
	if err := tx.writable(); err != nil {
		return err
	}
	if rec, ok := tx.view.nodes[id]; !ok {
		return fmtErrNode(id)
	} else if _, has := rec.labels[label]; !has {
		return nil
	}
	rec, _ := tx.wNode(id)
	delete(rec.labels, label)
	delete(tx.wLabelSet(label), id)
	for k, v := range rec.props {
		tx.idxRemove(indexKey{label, k}, v, id)
	}
	tx.data.RemovedLabels = append(tx.data.RemovedLabels, LabelChange{Node: id, Label: label})
	return nil
}

// SetNodeProp assigns a property on a node. Assigning NULL removes the
// property (Cypher SET semantics).
func (tx *Tx) SetNodeProp(id NodeID, key string, v value.Value) error {
	if err := tx.writable(); err != nil {
		return err
	}
	cur, ok := tx.view.nodes[id]
	if !ok {
		return fmtErrNode(id)
	}
	old, had := cur.props[key]
	if v.IsNull() {
		if !had {
			return nil
		}
		rec, _ := tx.wNode(id)
		delete(rec.props, key)
		tx.indexRemoveNode(rec, key, old)
		tx.data.RemovedProps = append(tx.data.RemovedProps,
			PropChange{Kind: NodeEntity, Node: id, Key: key, Old: old, New: value.Null})
		return nil
	}
	rec, _ := tx.wNode(id)
	rec.props[key] = v
	if had {
		tx.indexRemoveNode(rec, key, old)
	}
	tx.indexInsertNode(rec, key, v)
	oldRecorded := value.Null
	if had {
		oldRecorded = old
	}
	tx.data.AssignedProps = append(tx.data.AssignedProps,
		PropChange{Kind: NodeEntity, Node: id, Key: key, Old: oldRecorded, New: v})
	return nil
}

// RemoveNodeProp removes a property from a node; removing an absent
// property is a no-op.
func (tx *Tx) RemoveNodeProp(id NodeID, key string) error {
	return tx.SetNodeProp(id, key, value.Null)
}

// SetRelProp assigns a property on a relationship; assigning NULL removes it.
func (tx *Tx) SetRelProp(id RelID, key string, v value.Value) error {
	if err := tx.writable(); err != nil {
		return err
	}
	cur, ok := tx.view.rels[id]
	if !ok {
		return fmtErrRel(id)
	}
	old, had := cur.props[key]
	if v.IsNull() {
		if !had {
			return nil
		}
		rec, _ := tx.wRel(id)
		delete(rec.props, key)
		tx.data.RemovedProps = append(tx.data.RemovedProps,
			PropChange{Kind: RelEntity, Rel: id, Key: key, Old: old, New: value.Null})
		return nil
	}
	rec, _ := tx.wRel(id)
	rec.props[key] = v
	oldRecorded := value.Null
	if had {
		oldRecorded = old
	}
	tx.data.AssignedProps = append(tx.data.AssignedProps,
		PropChange{Kind: RelEntity, Rel: id, Key: key, Old: oldRecorded, New: v})
	return nil
}

// RemoveRelProp removes a property from a relationship.
func (tx *Tx) RemoveRelProp(id RelID, key string) error {
	return tx.SetRelProp(id, key, value.Null)
}

// ---- Replay operations ----
//
// Write-ahead-log recovery must reproduce the exact identifiers the
// pre-crash run allocated, so it cannot go through CreateNode/CreateRel
// (which draw fresh identifiers). The WithID variants below are the replay
// primitives; they fail if the identifier is already in use and advance the
// allocation counters past the replayed identifier.

// CreateNodeWithID creates a node under a caller-chosen identifier.
func (tx *Tx) CreateNodeWithID(id NodeID, labels []string, props map[string]value.Value) error {
	if err := tx.writable(); err != nil {
		return err
	}
	if _, exists := tx.view.nodes[id]; exists {
		return fmt.Errorf("graph: node %d already exists", id)
	}
	if id > tx.view.nextNode {
		tx.view.nextNode = id
	}
	return tx.createNode(id, labels, props)
}

// CreateRelWithID creates a relationship under a caller-chosen identifier.
func (tx *Tx) CreateRelWithID(id RelID, start, end NodeID, typ string, props map[string]value.Value) error {
	if err := tx.writable(); err != nil {
		return err
	}
	if _, exists := tx.view.rels[id]; exists {
		return fmt.Errorf("graph: relationship %d already exists", id)
	}
	if _, ok := tx.view.nodes[start]; !ok {
		return fmtErrNode(start)
	}
	if _, ok := tx.view.nodes[end]; !ok {
		return fmtErrNode(end)
	}
	if id > tx.view.nextRel {
		tx.view.nextRel = id
	}
	return tx.createRel(id, start, end, typ, props)
}

// CreateBridgeRelWithID creates the local half of a cross-shard
// ("knowledge bridge") relationship under a caller-chosen identifier: at
// least one endpoint must be a local node, and only locally present
// endpoints get adjacency entries — the missing endpoint lives in another
// shard, which holds the mirror half under the same identifier. The
// sharded engine (ShardedStore.BridgeTx) and write-ahead-log replay of
// bridge operations are the intended callers; on an unsharded store every
// endpoint is local and CreateRelWithID is the right primitive.
//
// The relationship-identifier counter is advanced only when id belongs to
// this store's allocation band: the mirror half carries the home shard's
// identifier, which must never drag a foreign shard's counter into another
// band.
func (tx *Tx) CreateBridgeRelWithID(id RelID, start, end NodeID, typ string, props map[string]value.Value) error {
	if err := tx.writable(); err != nil {
		return err
	}
	if _, exists := tx.view.rels[id]; exists {
		return fmt.Errorf("graph: relationship %d already exists", id)
	}
	_, hasStart := tx.view.nodes[start]
	_, hasEnd := tx.view.nodes[end]
	if !hasStart && !hasEnd {
		return fmt.Errorf("graph: bridge relationship %d: neither endpoint (%d, %d) is local", id, start, end)
	}
	if ShardOfRel(id) == ShardOfRel(tx.view.nextRel) && id > tx.view.nextRel {
		tx.view.nextRel = id
	}
	return tx.createBridgeHalf(id, start, end, typ, props)
}

// createBridgeHalf installs one shard's half of a bridge relationship:
// the record itself, the type-set entry and adjacency for whichever
// endpoints are locally present.
func (tx *Tx) createBridgeHalf(id RelID, start, end NodeID, typ string, props map[string]value.Value) error {
	rec := &relRec{id: id, typ: typ, start: start, end: end,
		props: make(map[string]value.Value, len(props))}
	for k, v := range props {
		if !v.IsNull() {
			rec.props[k] = v
		}
	}
	tx.putRel(rec)
	if sRec, ok := tx.wNode(start); ok {
		sRec.out[id] = rec
	}
	if eRec, ok := tx.wNode(end); ok {
		eRec.in[id] = rec
	}
	tx.wRelTypeSet(typ)[id] = struct{}{}
	if tx.relIsMirror(id) {
		tx.view.mirrorRels++
	}
	tx.data.CreatedRels = append(tx.data.CreatedRels, id)
	return nil
}

// relIsMirror reports whether a relationship identifier belongs to another
// shard's allocation band — i.e. the local record is the mirror half of a
// bridge whose home is the peer shard. The store's own band is read off the
// nextRel counter, which by invariant never leaves it (CreateBridgeRelWithID
// and Import both band-guard their counter raises).
func (tx *Tx) relIsMirror(id RelID) bool {
	return ShardOfRel(id) != ShardOfRel(tx.view.nextRel)
}

// HomeRelCount returns the number of relationships whose home is this
// store: every record except bridge mirror halves. Summing it across the
// shards of a sharded store counts each bridge exactly once, in O(1) per
// shard.
func (tx *Tx) HomeRelCount() int { return len(tx.view.rels) - tx.view.mirrorRels }

// Counters returns the identifier-allocation counters (the identifiers of
// the most recently created node and relationship).
func (tx *Tx) Counters() (NodeID, RelID) { return tx.view.nextNode, tx.view.nextRel }

// EnsureCounters raises the identifier-allocation counters to at least the
// given values. Replay uses it so that a recovered store allocates the same
// identifiers the pre-crash run would have, even when the final replayed
// transaction created and then deleted the highest-numbered entities.
func (tx *Tx) EnsureCounters(nextNode NodeID, nextRel RelID) error {
	if err := tx.writable(); err != nil {
		return err
	}
	if nextNode > tx.view.nextNode {
		tx.view.nextNode = nextNode
		tx.w.wrote = true
	}
	if nextRel > tx.view.nextRel {
		tx.view.nextRel = nextRel
		tx.w.wrote = true
	}
	return nil
}

// ---- Read operations ----

// NodeExists reports whether the node is present.
func (tx *Tx) NodeExists(id NodeID) bool {
	_, ok := tx.view.nodes[id]
	return ok
}

// Node returns a snapshot of the node.
func (tx *Tx) Node(id NodeID) (Node, bool) {
	rec, ok := tx.view.nodes[id]
	if !ok {
		return Node{}, false
	}
	return snapshotNode(rec), true
}

// Rel returns a snapshot of the relationship.
func (tx *Tx) Rel(id RelID) (Rel, bool) {
	rec, ok := tx.view.rels[id]
	if !ok {
		return Rel{}, false
	}
	return snapshotRel(rec), true
}

// NodeLabels returns the labels of a node, sorted.
func (tx *Tx) NodeLabels(id NodeID) ([]string, bool) {
	rec, ok := tx.view.nodes[id]
	if !ok {
		return nil, false
	}
	labels := make([]string, 0, len(rec.labels))
	for l := range rec.labels {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels, true
}

// NodeHasLabel reports whether the node carries the label.
func (tx *Tx) NodeHasLabel(id NodeID, label string) bool {
	rec, ok := tx.view.nodes[id]
	if !ok {
		return false
	}
	_, has := rec.labels[label]
	return has
}

// NodeProp returns a node property value; the second result is false if the
// node does not exist or lacks the property.
func (tx *Tx) NodeProp(id NodeID, key string) (value.Value, bool) {
	rec, ok := tx.view.nodes[id]
	if !ok {
		return value.Null, false
	}
	v, has := rec.props[key]
	return v, has
}

// NodePropKeys returns the property keys of a node, sorted.
func (tx *Tx) NodePropKeys(id NodeID) []string {
	rec, ok := tx.view.nodes[id]
	if !ok {
		return nil
	}
	keys := make([]string, 0, len(rec.props))
	for k := range rec.props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// RelProp returns a relationship property value.
func (tx *Tx) RelProp(id RelID, key string) (value.Value, bool) {
	rec, ok := tx.view.rels[id]
	if !ok {
		return value.Null, false
	}
	v, has := rec.props[key]
	return v, has
}

// RelPropKeys returns the property keys of a relationship, sorted.
func (tx *Tx) RelPropKeys(id RelID) []string {
	rec, ok := tx.view.rels[id]
	if !ok {
		return nil
	}
	keys := make([]string, 0, len(rec.props))
	for k := range rec.props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// RelEndpoints returns the type, start and end of a relationship without
// copying its properties.
func (tx *Tx) RelEndpoints(id RelID) (typ string, start, end NodeID, ok bool) {
	rec, found := tx.view.rels[id]
	if !found {
		return "", 0, 0, false
	}
	return rec.typ, rec.start, rec.end, true
}

// RelHandle is a lightweight relationship descriptor used during traversal.
type RelHandle struct {
	ID    RelID
	Type  string
	Start NodeID
	End   NodeID
}

// Other returns the endpoint opposite to id.
func (r RelHandle) Other(id NodeID) NodeID {
	if r.Start == id {
		return r.End
	}
	return r.Start
}

// RelsOf returns the relationships incident to a node in the given
// direction, optionally filtered to a set of types (nil means all types).
// For Direction Both, self-loops are reported once.
func (tx *Tx) RelsOf(id NodeID, dir Direction, types []string) []RelHandle {
	rec, ok := tx.view.nodes[id]
	if !ok {
		return nil
	}
	match := func(typ string) bool {
		if len(types) == 0 {
			return true
		}
		for _, t := range types {
			if t == typ {
				return true
			}
		}
		return false
	}
	var out []RelHandle
	appendRel := func(r *relRec) {
		out = append(out, RelHandle{ID: r.id, Type: r.typ, Start: r.start, End: r.end})
	}
	if dir == Outgoing || dir == Both {
		for _, r := range rec.out {
			if match(r.typ) {
				appendRel(r)
			}
		}
	}
	if dir == Incoming || dir == Both {
		for _, r := range rec.in {
			if match(r.typ) && r.start != r.end { // self-loop already reported
				appendRel(r)
			}
		}
	}
	return out
}

// Degree returns the number of relationships incident to a node in the
// given direction.
func (tx *Tx) Degree(id NodeID, dir Direction) int {
	rec, ok := tx.view.nodes[id]
	if !ok {
		return 0
	}
	switch dir {
	case Outgoing:
		return len(rec.out)
	case Incoming:
		return len(rec.in)
	default:
		n := len(rec.out) + len(rec.in)
		for _, r := range rec.out {
			if r.start == r.end {
				n--
			}
		}
		return n
	}
}

// NodesByLabel returns the identifiers of all nodes carrying the label.
func (tx *Tx) NodesByLabel(label string) []NodeID {
	set := tx.view.byLabel[label]
	out := make([]NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	return out
}

// CountByLabel returns the number of nodes carrying the label without
// materializing their identifiers.
func (tx *Tx) CountByLabel(label string) int {
	return len(tx.view.byLabel[label])
}

// AllNodes returns the identifiers of every node.
func (tx *Tx) AllNodes() []NodeID {
	out := make([]NodeID, 0, len(tx.view.nodes))
	for id := range tx.view.nodes {
		out = append(out, id)
	}
	return out
}

// AllRels returns the identifiers of every relationship.
func (tx *Tx) AllRels() []RelID {
	out := make([]RelID, 0, len(tx.view.rels))
	for id := range tx.view.rels {
		out = append(out, id)
	}
	return out
}

// RelsByType returns the identifiers of all relationships of the type.
func (tx *Tx) RelsByType(typ string) []RelID {
	set := tx.view.byRelType[typ]
	out := make([]RelID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	return out
}

// NodeCount returns the number of nodes.
func (tx *Tx) NodeCount() int { return len(tx.view.nodes) }

// RelCount returns the number of relationships.
func (tx *Tx) RelCount() int { return len(tx.view.rels) }
