package graph

import (
	"fmt"
	"time"

	"repro/internal/value"
)

// Tx is a transaction over a Store. Read methods are valid in both modes;
// write methods fail with ErrReadOnly in a read-only transaction. A
// transaction must be finished with Commit or Rollback exactly once;
// Rollback after Commit is a no-op, which makes `defer tx.Rollback()` safe.
type Tx struct {
	s    *Store
	mode Mode
	done bool
	data *TxData
	undo []func()
	// start is set at Begin when transaction-latency instrumentation is
	// wired; zero otherwise.
	start time.Time
}

// Data exposes the changes made so far by this transaction. The caller must
// not mutate the returned record.
func (tx *Tx) Data() *TxData { return tx.data }

// ResetData replaces the change record with an empty one and returns the
// previous record. Rule engines use this to process changes in rounds while
// the transaction stays open.
func (tx *Tx) ResetData() *TxData {
	old := tx.data
	tx.data = &TxData{}
	return old
}

// MergeData folds a previously extracted change record back into the
// transaction, so commit-time validators observe the full set of changes
// even after rule engines processed them in rounds via ResetData.
func (tx *Tx) MergeData(d *TxData) {
	d.Merge(tx.data)
	tx.data = d
}

// Commit runs the store validators and the commit hook, then publishes the
// transaction. If a validator or the hook fails, the transaction is rolled
// back and the error returned.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	if tx.mode == ReadWrite {
		for _, v := range tx.s.validators {
			if err := v(tx); err != nil {
				tx.rollbackLocked()
				return err
			}
		}
		if h := tx.s.commitHook; h != nil {
			if err := h(tx); err != nil {
				tx.rollbackLocked()
				return fmt.Errorf("graph: commit hook: %w", err)
			}
		}
	}
	tx.done = true
	if tx.mode == ReadWrite {
		tx.s.metrics.TxCommits.Inc()
		if !tx.start.IsZero() {
			tx.s.metrics.TxSeconds.ObserveSince(tx.start)
		}
	}
	tx.unlock()
	return nil
}

// Rollback undoes all changes made by the transaction. Calling it after
// Commit (or twice) is a no-op.
func (tx *Tx) Rollback() {
	if tx.done {
		return
	}
	tx.rollbackLocked()
}

func (tx *Tx) rollbackLocked() {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		tx.undo[i]()
	}
	tx.undo = nil
	tx.done = true
	if tx.mode == ReadWrite {
		tx.s.metrics.TxRollbacks.Inc()
		if !tx.start.IsZero() {
			tx.s.metrics.TxSeconds.ObserveSince(tx.start)
		}
	}
	tx.unlock()
}

func (tx *Tx) unlock() {
	if tx.mode == ReadWrite {
		tx.s.mu.Unlock()
	} else {
		tx.s.mu.RUnlock()
	}
}

func (tx *Tx) writable() error {
	if tx.done {
		return ErrTxDone
	}
	if tx.mode != ReadWrite {
		return ErrReadOnly
	}
	return nil
}

// ---- Write operations ----

// CreateNode creates a node with the given labels and properties and
// returns its identifier. NULL-valued properties are not stored.
func (tx *Tx) CreateNode(labels []string, props map[string]value.Value) (NodeID, error) {
	if err := tx.writable(); err != nil {
		return 0, err
	}
	s := tx.s
	s.nextNode++
	id := s.nextNode
	rec := &nodeRec{
		id:     id,
		labels: make(map[string]struct{}, len(labels)),
		props:  make(map[string]value.Value, len(props)),
		out:    make(map[RelID]*relRec),
		in:     make(map[RelID]*relRec),
	}
	for _, l := range labels {
		rec.labels[l] = struct{}{}
	}
	for k, v := range props {
		if !v.IsNull() {
			rec.props[k] = v
		}
	}
	s.nodes[id] = rec
	for l := range rec.labels {
		s.labelSet(l)[id] = struct{}{}
	}
	for k, v := range rec.props {
		s.indexInsertNode(rec, k, v)
	}
	tx.data.CreatedNodes = append(tx.data.CreatedNodes, id)
	tx.undo = append(tx.undo, func() {
		for l := range rec.labels {
			delete(s.byLabel[l], id)
		}
		for k, v := range rec.props {
			s.indexRemoveNode(rec, k, v)
		}
		delete(s.nodes, id)
	})
	return id, nil
}

// DeleteNode removes a node. If the node still has relationships the call
// fails with ErrHasRels unless detach is true, in which case all incident
// relationships are deleted first (DETACH DELETE).
func (tx *Tx) DeleteNode(id NodeID, detach bool) error {
	if err := tx.writable(); err != nil {
		return err
	}
	s := tx.s
	rec, ok := s.nodes[id]
	if !ok {
		return fmtErrNode(id)
	}
	if len(rec.out) > 0 || len(rec.in) > 0 {
		if !detach {
			return ErrHasRels
		}
		for rid := range rec.out {
			if err := tx.DeleteRel(rid); err != nil {
				return err
			}
		}
		for rid := range rec.in {
			if err := tx.DeleteRel(rid); err != nil {
				return err
			}
		}
	}
	snap := snapshotNode(rec)
	for l := range rec.labels {
		delete(s.byLabel[l], id)
	}
	for k, v := range rec.props {
		s.indexRemoveNode(rec, k, v)
	}
	delete(s.nodes, id)
	tx.data.DeletedNodes = append(tx.data.DeletedNodes, snap)
	tx.undo = append(tx.undo, func() {
		s.nodes[id] = rec
		for l := range rec.labels {
			s.labelSet(l)[id] = struct{}{}
		}
		for k, v := range rec.props {
			s.indexInsertNode(rec, k, v)
		}
	})
	return nil
}

// CreateRel creates a relationship of the given type from start to end.
func (tx *Tx) CreateRel(start, end NodeID, typ string, props map[string]value.Value) (RelID, error) {
	if err := tx.writable(); err != nil {
		return 0, err
	}
	s := tx.s
	sRec, ok := s.nodes[start]
	if !ok {
		return 0, fmtErrNode(start)
	}
	eRec, ok := s.nodes[end]
	if !ok {
		return 0, fmtErrNode(end)
	}
	s.nextRel++
	id := s.nextRel
	rec := &relRec{id: id, typ: typ, start: sRec, end: eRec,
		props: make(map[string]value.Value, len(props))}
	for k, v := range props {
		if !v.IsNull() {
			rec.props[k] = v
		}
	}
	s.rels[id] = rec
	sRec.out[id] = rec
	eRec.in[id] = rec
	s.relTypeSet(typ)[id] = struct{}{}
	tx.data.CreatedRels = append(tx.data.CreatedRels, id)
	tx.undo = append(tx.undo, func() {
		delete(s.rels, id)
		delete(sRec.out, id)
		delete(eRec.in, id)
		delete(s.byRelType[typ], id)
	})
	return id, nil
}

// DeleteRel removes a relationship.
func (tx *Tx) DeleteRel(id RelID) error {
	if err := tx.writable(); err != nil {
		return err
	}
	s := tx.s
	rec, ok := s.rels[id]
	if !ok {
		return fmtErrRel(id)
	}
	snap := snapshotRel(rec)
	delete(s.rels, id)
	delete(rec.start.out, id)
	delete(rec.end.in, id)
	delete(s.byRelType[rec.typ], id)
	tx.data.DeletedRels = append(tx.data.DeletedRels, snap)
	tx.undo = append(tx.undo, func() {
		s.rels[id] = rec
		rec.start.out[id] = rec
		rec.end.in[id] = rec
		s.relTypeSet(rec.typ)[id] = struct{}{}
	})
	return nil
}

// SetLabel adds a label to a node; adding a label the node already carries
// is a no-op that records no change.
func (tx *Tx) SetLabel(id NodeID, label string) error {
	if err := tx.writable(); err != nil {
		return err
	}
	s := tx.s
	rec, ok := s.nodes[id]
	if !ok {
		return fmtErrNode(id)
	}
	if _, has := rec.labels[label]; has {
		return nil
	}
	rec.labels[label] = struct{}{}
	s.labelSet(label)[id] = struct{}{}
	for k, v := range rec.props {
		s.indexInsertNodeForLabel(rec, label, k, v)
	}
	tx.data.AssignedLabels = append(tx.data.AssignedLabels, LabelChange{Node: id, Label: label})
	tx.undo = append(tx.undo, func() {
		delete(rec.labels, label)
		delete(s.byLabel[label], id)
		for k, v := range rec.props {
			s.indexRemoveNodeForLabel(rec, label, k, v)
		}
	})
	return nil
}

// RemoveLabel removes a label from a node; removing an absent label is a
// no-op that records no change.
func (tx *Tx) RemoveLabel(id NodeID, label string) error {
	if err := tx.writable(); err != nil {
		return err
	}
	s := tx.s
	rec, ok := s.nodes[id]
	if !ok {
		return fmtErrNode(id)
	}
	if _, has := rec.labels[label]; !has {
		return nil
	}
	delete(rec.labels, label)
	delete(s.byLabel[label], id)
	for k, v := range rec.props {
		s.indexRemoveNodeForLabel(rec, label, k, v)
	}
	tx.data.RemovedLabels = append(tx.data.RemovedLabels, LabelChange{Node: id, Label: label})
	tx.undo = append(tx.undo, func() {
		rec.labels[label] = struct{}{}
		s.labelSet(label)[id] = struct{}{}
		for k, v := range rec.props {
			s.indexInsertNodeForLabel(rec, label, k, v)
		}
	})
	return nil
}

// SetNodeProp assigns a property on a node. Assigning NULL removes the
// property (Cypher SET semantics).
func (tx *Tx) SetNodeProp(id NodeID, key string, v value.Value) error {
	if err := tx.writable(); err != nil {
		return err
	}
	s := tx.s
	rec, ok := s.nodes[id]
	if !ok {
		return fmtErrNode(id)
	}
	old, had := rec.props[key]
	if v.IsNull() {
		if !had {
			return nil
		}
		delete(rec.props, key)
		s.indexRemoveNode(rec, key, old)
		tx.data.RemovedProps = append(tx.data.RemovedProps,
			PropChange{Kind: NodeEntity, Node: id, Key: key, Old: old, New: value.Null})
		tx.undo = append(tx.undo, func() {
			rec.props[key] = old
			s.indexInsertNode(rec, key, old)
		})
		return nil
	}
	rec.props[key] = v
	if had {
		s.indexRemoveNode(rec, key, old)
	}
	s.indexInsertNode(rec, key, v)
	oldRecorded := value.Null
	if had {
		oldRecorded = old
	}
	tx.data.AssignedProps = append(tx.data.AssignedProps,
		PropChange{Kind: NodeEntity, Node: id, Key: key, Old: oldRecorded, New: v})
	tx.undo = append(tx.undo, func() {
		s.indexRemoveNode(rec, key, v)
		if had {
			rec.props[key] = old
			s.indexInsertNode(rec, key, old)
		} else {
			delete(rec.props, key)
		}
	})
	return nil
}

// RemoveNodeProp removes a property from a node; removing an absent
// property is a no-op.
func (tx *Tx) RemoveNodeProp(id NodeID, key string) error {
	return tx.SetNodeProp(id, key, value.Null)
}

// SetRelProp assigns a property on a relationship; assigning NULL removes it.
func (tx *Tx) SetRelProp(id RelID, key string, v value.Value) error {
	if err := tx.writable(); err != nil {
		return err
	}
	rec, ok := tx.s.rels[id]
	if !ok {
		return fmtErrRel(id)
	}
	old, had := rec.props[key]
	if v.IsNull() {
		if !had {
			return nil
		}
		delete(rec.props, key)
		tx.data.RemovedProps = append(tx.data.RemovedProps,
			PropChange{Kind: RelEntity, Rel: id, Key: key, Old: old, New: value.Null})
		tx.undo = append(tx.undo, func() { rec.props[key] = old })
		return nil
	}
	rec.props[key] = v
	oldRecorded := value.Null
	if had {
		oldRecorded = old
	}
	tx.data.AssignedProps = append(tx.data.AssignedProps,
		PropChange{Kind: RelEntity, Rel: id, Key: key, Old: oldRecorded, New: v})
	tx.undo = append(tx.undo, func() {
		if had {
			rec.props[key] = old
		} else {
			delete(rec.props, key)
		}
	})
	return nil
}

// RemoveRelProp removes a property from a relationship.
func (tx *Tx) RemoveRelProp(id RelID, key string) error {
	return tx.SetRelProp(id, key, value.Null)
}

// ---- Replay operations ----
//
// Write-ahead-log recovery must reproduce the exact identifiers the
// pre-crash run allocated, so it cannot go through CreateNode/CreateRel
// (which draw fresh identifiers). The WithID variants below are the replay
// primitives; they fail if the identifier is already in use and advance the
// allocation counters past the replayed identifier.

// CreateNodeWithID creates a node under a caller-chosen identifier.
func (tx *Tx) CreateNodeWithID(id NodeID, labels []string, props map[string]value.Value) error {
	if err := tx.writable(); err != nil {
		return err
	}
	s := tx.s
	if _, exists := s.nodes[id]; exists {
		return fmt.Errorf("graph: node %d already exists", id)
	}
	prevNext := s.nextNode
	if id > s.nextNode {
		s.nextNode = id
	}
	rec := &nodeRec{
		id:     id,
		labels: make(map[string]struct{}, len(labels)),
		props:  make(map[string]value.Value, len(props)),
		out:    make(map[RelID]*relRec),
		in:     make(map[RelID]*relRec),
	}
	for _, l := range labels {
		rec.labels[l] = struct{}{}
	}
	for k, v := range props {
		if !v.IsNull() {
			rec.props[k] = v
		}
	}
	s.nodes[id] = rec
	for l := range rec.labels {
		s.labelSet(l)[id] = struct{}{}
	}
	for k, v := range rec.props {
		s.indexInsertNode(rec, k, v)
	}
	tx.data.CreatedNodes = append(tx.data.CreatedNodes, id)
	tx.undo = append(tx.undo, func() {
		for l := range rec.labels {
			delete(s.byLabel[l], id)
		}
		for k, v := range rec.props {
			s.indexRemoveNode(rec, k, v)
		}
		delete(s.nodes, id)
		s.nextNode = prevNext
	})
	return nil
}

// CreateRelWithID creates a relationship under a caller-chosen identifier.
func (tx *Tx) CreateRelWithID(id RelID, start, end NodeID, typ string, props map[string]value.Value) error {
	if err := tx.writable(); err != nil {
		return err
	}
	s := tx.s
	if _, exists := s.rels[id]; exists {
		return fmt.Errorf("graph: relationship %d already exists", id)
	}
	sRec, ok := s.nodes[start]
	if !ok {
		return fmtErrNode(start)
	}
	eRec, ok := s.nodes[end]
	if !ok {
		return fmtErrNode(end)
	}
	prevNext := s.nextRel
	if id > s.nextRel {
		s.nextRel = id
	}
	rec := &relRec{id: id, typ: typ, start: sRec, end: eRec,
		props: make(map[string]value.Value, len(props))}
	for k, v := range props {
		if !v.IsNull() {
			rec.props[k] = v
		}
	}
	s.rels[id] = rec
	sRec.out[id] = rec
	eRec.in[id] = rec
	s.relTypeSet(typ)[id] = struct{}{}
	tx.data.CreatedRels = append(tx.data.CreatedRels, id)
	tx.undo = append(tx.undo, func() {
		delete(s.rels, id)
		delete(sRec.out, id)
		delete(eRec.in, id)
		delete(s.byRelType[typ], id)
		s.nextRel = prevNext
	})
	return nil
}

// Counters returns the identifier-allocation counters (the identifiers of
// the most recently created node and relationship).
func (tx *Tx) Counters() (NodeID, RelID) { return tx.s.nextNode, tx.s.nextRel }

// EnsureCounters raises the identifier-allocation counters to at least the
// given values. Replay uses it so that a recovered store allocates the same
// identifiers the pre-crash run would have, even when the final replayed
// transaction created and then deleted the highest-numbered entities.
func (tx *Tx) EnsureCounters(nextNode NodeID, nextRel RelID) error {
	if err := tx.writable(); err != nil {
		return err
	}
	s := tx.s
	prevNode, prevRel := s.nextNode, s.nextRel
	if nextNode > s.nextNode {
		s.nextNode = nextNode
	}
	if nextRel > s.nextRel {
		s.nextRel = nextRel
	}
	tx.undo = append(tx.undo, func() {
		s.nextNode, s.nextRel = prevNode, prevRel
	})
	return nil
}

// ---- Read operations ----

// NodeExists reports whether the node is present.
func (tx *Tx) NodeExists(id NodeID) bool {
	_, ok := tx.s.nodes[id]
	return ok
}

// Node returns a snapshot of the node.
func (tx *Tx) Node(id NodeID) (Node, bool) {
	rec, ok := tx.s.nodes[id]
	if !ok {
		return Node{}, false
	}
	return snapshotNode(rec), true
}

// Rel returns a snapshot of the relationship.
func (tx *Tx) Rel(id RelID) (Rel, bool) {
	rec, ok := tx.s.rels[id]
	if !ok {
		return Rel{}, false
	}
	return snapshotRel(rec), true
}

// NodeLabels returns the labels of a node, sorted.
func (tx *Tx) NodeLabels(id NodeID) ([]string, bool) {
	rec, ok := tx.s.nodes[id]
	if !ok {
		return nil, false
	}
	labels := make([]string, 0, len(rec.labels))
	for l := range rec.labels {
		labels = append(labels, l)
	}
	sortStrings(labels)
	return labels, true
}

// NodeHasLabel reports whether the node carries the label.
func (tx *Tx) NodeHasLabel(id NodeID, label string) bool {
	rec, ok := tx.s.nodes[id]
	if !ok {
		return false
	}
	_, has := rec.labels[label]
	return has
}

// NodeProp returns a node property value; the second result is false if the
// node does not exist or lacks the property.
func (tx *Tx) NodeProp(id NodeID, key string) (value.Value, bool) {
	rec, ok := tx.s.nodes[id]
	if !ok {
		return value.Null, false
	}
	v, has := rec.props[key]
	return v, has
}

// NodePropKeys returns the property keys of a node, sorted.
func (tx *Tx) NodePropKeys(id NodeID) []string {
	rec, ok := tx.s.nodes[id]
	if !ok {
		return nil
	}
	keys := make([]string, 0, len(rec.props))
	for k := range rec.props {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

// RelProp returns a relationship property value.
func (tx *Tx) RelProp(id RelID, key string) (value.Value, bool) {
	rec, ok := tx.s.rels[id]
	if !ok {
		return value.Null, false
	}
	v, has := rec.props[key]
	return v, has
}

// RelPropKeys returns the property keys of a relationship, sorted.
func (tx *Tx) RelPropKeys(id RelID) []string {
	rec, ok := tx.s.rels[id]
	if !ok {
		return nil
	}
	keys := make([]string, 0, len(rec.props))
	for k := range rec.props {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

// RelEndpoints returns the type, start and end of a relationship without
// copying its properties.
func (tx *Tx) RelEndpoints(id RelID) (typ string, start, end NodeID, ok bool) {
	rec, found := tx.s.rels[id]
	if !found {
		return "", 0, 0, false
	}
	return rec.typ, rec.start.id, rec.end.id, true
}

// RelHandle is a lightweight relationship descriptor used during traversal.
type RelHandle struct {
	ID    RelID
	Type  string
	Start NodeID
	End   NodeID
}

// Other returns the endpoint opposite to id.
func (r RelHandle) Other(id NodeID) NodeID {
	if r.Start == id {
		return r.End
	}
	return r.Start
}

// RelsOf returns the relationships incident to a node in the given
// direction, optionally filtered to a set of types (nil means all types).
// For Direction Both, self-loops are reported once.
func (tx *Tx) RelsOf(id NodeID, dir Direction, types []string) []RelHandle {
	rec, ok := tx.s.nodes[id]
	if !ok {
		return nil
	}
	match := func(typ string) bool {
		if len(types) == 0 {
			return true
		}
		for _, t := range types {
			if t == typ {
				return true
			}
		}
		return false
	}
	var out []RelHandle
	appendRel := func(r *relRec) {
		out = append(out, RelHandle{ID: r.id, Type: r.typ, Start: r.start.id, End: r.end.id})
	}
	if dir == Outgoing || dir == Both {
		for _, r := range rec.out {
			if match(r.typ) {
				appendRel(r)
			}
		}
	}
	if dir == Incoming || dir == Both {
		for _, r := range rec.in {
			if match(r.typ) && r.start != r.end { // self-loop already reported
				appendRel(r)
			}
		}
	}
	return out
}

// Degree returns the number of relationships incident to a node in the
// given direction.
func (tx *Tx) Degree(id NodeID, dir Direction) int {
	rec, ok := tx.s.nodes[id]
	if !ok {
		return 0
	}
	switch dir {
	case Outgoing:
		return len(rec.out)
	case Incoming:
		return len(rec.in)
	default:
		n := len(rec.out) + len(rec.in)
		for _, r := range rec.out {
			if r.start == r.end {
				n--
			}
		}
		return n
	}
}

// NodesByLabel returns the identifiers of all nodes carrying the label.
func (tx *Tx) NodesByLabel(label string) []NodeID {
	set := tx.s.byLabel[label]
	out := make([]NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	return out
}

// CountByLabel returns the number of nodes carrying the label without
// materializing their identifiers.
func (tx *Tx) CountByLabel(label string) int {
	return len(tx.s.byLabel[label])
}

// AllNodes returns the identifiers of every node.
func (tx *Tx) AllNodes() []NodeID {
	out := make([]NodeID, 0, len(tx.s.nodes))
	for id := range tx.s.nodes {
		out = append(out, id)
	}
	return out
}

// AllRels returns the identifiers of every relationship.
func (tx *Tx) AllRels() []RelID {
	out := make([]RelID, 0, len(tx.s.rels))
	for id := range tx.s.rels {
		out = append(out, id)
	}
	return out
}

// RelsByType returns the identifiers of all relationships of the type.
func (tx *Tx) RelsByType(typ string) []RelID {
	set := tx.s.byRelType[typ]
	out := make([]RelID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	return out
}

// NodeCount returns the number of nodes.
func (tx *Tx) NodeCount() int { return len(tx.s.nodes) }

// RelCount returns the number of relationships.
func (tx *Tx) RelCount() int { return len(tx.s.rels) }
