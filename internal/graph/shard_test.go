package graph

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/value"
)

func newShardedT(t *testing.T, n int) *ShardedStore {
	t.Helper()
	ss, err := NewSharded(n)
	if err != nil {
		t.Fatalf("NewSharded(%d): %v", n, err)
	}
	return ss
}

// TestShardIDBanding checks that every shard allocates identifiers inside
// its own band and that ShardOfNode/ShardOfRel recover the shard.
func TestShardIDBanding(t *testing.T) {
	const n = 3
	ss := newShardedT(t, n)
	for i := 0; i < n; i++ {
		i := i
		var id NodeID
		var rid RelID
		if err := ss.Update(i, func(tx *Tx) error {
			var err error
			id, err = tx.CreateNode([]string{"N"}, nil)
			if err != nil {
				return err
			}
			other, err := tx.CreateNode([]string{"N"}, nil)
			if err != nil {
				return err
			}
			rid, err = tx.CreateRel(id, other, "R", nil)
			return err
		}); err != nil {
			t.Fatalf("shard %d update: %v", i, err)
		}
		if got := ShardOfNode(id); got != i {
			t.Fatalf("ShardOfNode(%d) = %d, want %d", id, got, i)
		}
		if got := ShardOfRel(rid); got != i {
			t.Fatalf("ShardOfRel(%d) = %d, want %d", rid, got, i)
		}
		if id < ShardBaseNode(i) || (i+1 < MaxShards && id >= ShardBaseNode(i+1)) {
			t.Fatalf("node %d outside shard %d band", id, i)
		}
	}
}

func TestShardBounds(t *testing.T) {
	if _, err := NewSharded(0); !errors.Is(err, ErrBadShard) {
		t.Fatalf("NewSharded(0) err = %v, want ErrBadShard", err)
	}
	if _, err := NewSharded(MaxShards + 1); !errors.Is(err, ErrBadShard) {
		t.Fatalf("NewSharded(MaxShards+1) err = %v, want ErrBadShard", err)
	}
	ss := newShardedT(t, 2)
	if err := ss.Update(2, func(tx *Tx) error { return nil }); !errors.Is(err, ErrBadShard) {
		t.Fatalf("Update(2) err = %v, want ErrBadShard", err)
	}
	if _, err := ss.BeginBridge(0, 0); !errors.Is(err, ErrSameShard) {
		t.Fatalf("BeginBridge(0,0) err = %v, want ErrSameShard", err)
	}
	if _, err := ss.BeginBridge(0, 5); !errors.Is(err, ErrBadShard) {
		t.Fatalf("BeginBridge(0,5) err = %v, want ErrBadShard", err)
	}
}

// bridgeOnce creates one A-(BRIDGES)->B bridge between shards a and b and
// returns the three identifiers.
func bridgeOnce(t *testing.T, ss *ShardedStore, a, b int) (NodeID, NodeID, RelID) {
	t.Helper()
	bt, err := ss.BeginBridge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	na, err := bt.CreateNodeIn(a, []string{"A"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := bt.CreateNodeIn(b, []string{"B"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := bt.CreateRel(na, nb, "BRIDGES", map[string]value.Value{"w": value.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.Commit(nil); err != nil {
		t.Fatal(err)
	}
	return na, nb, rid
}

// TestBridgeHalves checks that a bridge relationship is visible from both
// endpoint shards under one identifier allocated from the home shard.
func TestBridgeHalves(t *testing.T) {
	ss := newShardedT(t, 2)
	na, nb, rid := bridgeOnce(t, ss, 0, 1)

	if got := ShardOfRel(rid); got != 0 {
		t.Fatalf("bridge home shard = %d, want 0 (start node's shard)", got)
	}
	for i, id := range []NodeID{na, nb} {
		if err := ss.Shard(i).View(func(tx *Tx) error {
			rels := tx.RelsOf(id, Both, nil)
			if len(rels) != 1 || rels[0].ID != rid {
				return fmt.Errorf("shard %d RelsOf(%d) = %v, want the bridge", i, id, rels)
			}
			if rels[0].Other(id) != []NodeID{nb, na}[i] {
				return fmt.Errorf("shard %d bridge endpoint mismatch", i)
			}
			r, ok := tx.Rel(rid)
			if !ok || r.Start != na || r.End != nb || r.Type != "BRIDGES" {
				return fmt.Errorf("shard %d Rel(%d) = %+v, %v", i, rid, r, ok)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Deleting the bridge removes both halves.
	bt, err := ss.BeginBridge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.DeleteRel(rid); err != nil {
		t.Fatal(err)
	}
	if err := bt.Commit(nil); err != nil {
		t.Fatal(err)
	}
	for i, id := range []NodeID{na, nb} {
		if err := ss.Shard(i).View(func(tx *Tx) error {
			if rels := tx.RelsOf(id, Both, nil); len(rels) != 0 {
				return fmt.Errorf("shard %d still holds bridge half %v", i, rels)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBridgeDetachDelete checks that deleting a bridge endpoint with detach
// removes the mirrored half from the peer shard too.
func TestBridgeDetachDelete(t *testing.T) {
	ss := newShardedT(t, 2)
	na, nb, rid := bridgeOnce(t, ss, 0, 1)

	bt, err := ss.BeginBridge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.DeleteNode(na, true); err != nil {
		t.Fatal(err)
	}
	if err := bt.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if err := ss.Shard(1).View(func(tx *Tx) error {
		if !tx.NodeExists(nb) {
			return errors.New("peer endpoint deleted")
		}
		if rels := tx.RelsOf(nb, Both, nil); len(rels) != 0 {
			return fmt.Errorf("dangling bridge half %v after detach delete", rels)
		}
		if _, ok := tx.Rel(rid); ok {
			return errors.New("bridge half still readable in peer shard")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestBridgeRollback checks that rolling back a bridge transaction leaves
// both shards untouched, and that a finished bridge transaction rejects
// further use.
func TestBridgeRollback(t *testing.T) {
	ss := newShardedT(t, 2)
	bt, err := ss.BeginBridge(1, 0) // any order; locks sort ascending
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := bt.Shards(); lo != 0 || hi != 1 {
		t.Fatalf("Shards() = (%d, %d), want (0, 1)", lo, hi)
	}
	na, err := bt.CreateNodeIn(0, []string{"A"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := bt.CreateNodeIn(1, []string{"B"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bt.CreateRel(na, nb, "BRIDGES", nil); err != nil {
		t.Fatal(err)
	}
	bt.Rollback()
	for i := 0; i < 2; i++ {
		if err := ss.Shard(i).View(func(tx *Tx) error {
			if n := tx.NodeCount(); n != 0 {
				return fmt.Errorf("shard %d has %d nodes after rollback", i, n)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bt.Commit(nil); !errors.Is(err, ErrBridgeTxDone) {
		t.Fatalf("Commit after Rollback err = %v, want ErrBridgeTxDone", err)
	}
	if _, err := bt.CreateRel(na, nb, "BRIDGES", nil); !errors.Is(err, ErrBridgeTxDone) {
		t.Fatalf("CreateRel after Rollback err = %v, want ErrBridgeTxDone", err)
	}
}

// TestBridgeSealError checks that a failing seal callback aborts the commit
// on both shards.
func TestBridgeSealError(t *testing.T) {
	ss := newShardedT(t, 2)
	bt, err := ss.BeginBridge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bt.CreateNodeIn(0, []string{"A"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := bt.CreateNodeIn(1, []string{"B"}, nil); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("seal failed")
	if err := bt.Commit(func(lo, hi *Tx) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Commit err = %v, want the seal error", err)
	}
	for i := 0; i < 2; i++ {
		if err := ss.Shard(i).View(func(tx *Tx) error {
			if n := tx.NodeCount(); n != 0 {
				return fmt.Errorf("shard %d has %d nodes after failed seal", i, n)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBridgeSameShardRel checks that a BridgeTx CreateRel with both
// endpoints in one shard produces an ordinary intra-shard relationship.
func TestBridgeSameShardRel(t *testing.T) {
	ss := newShardedT(t, 2)
	bt, err := ss.BeginBridge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := bt.CreateNodeIn(0, []string{"A"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bt.CreateNodeIn(0, []string{"A"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := bt.CreateRel(a, b, "LOCAL", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if ShardOfRel(rid) != 0 {
		t.Fatalf("intra-shard rel landed in shard %d", ShardOfRel(rid))
	}
	if err := ss.Shard(1).View(func(tx *Tx) error {
		if _, ok := tx.Rel(rid); ok {
			return errors.New("intra-shard rel mirrored into the peer shard")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestMultiViewCounts checks the cross-shard read view: label unions, and
// node/rel counts that count each bridge exactly once.
func TestMultiViewCounts(t *testing.T) {
	ss := newShardedT(t, 3)
	for i := 0; i < 3; i++ {
		i := i
		if err := ss.Update(i, func(tx *Tx) error {
			for j := 0; j < i+1; j++ {
				if _, err := tx.CreateNode([]string{"N", fmt.Sprintf("S%d", i)}, nil); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	na, nb, rid := bridgeOnce(t, ss, 0, 2)

	v := ss.View()
	defer v.Rollback()
	if got := v.NodeCount(); got != 6+2 {
		t.Fatalf("NodeCount = %d, want 8", got)
	}
	if got := v.CountByLabel("N"); got != 6 {
		t.Fatalf("CountByLabel(N) = %d, want 6", got)
	}
	if got := len(v.NodesByLabel("S1")); got != 2 {
		t.Fatalf("NodesByLabel(S1) = %d ids, want 2", got)
	}
	// The bridge is stored in both shard 0 and shard 2 but counted once.
	if got := v.RelCount(); got != 1 {
		t.Fatalf("RelCount = %d, want 1", got)
	}
	if rels := v.AllRels(); len(rels) != 1 || rels[0] != rid {
		t.Fatalf("AllRels = %v, want [%d]", rels, rid)
	}
	if r, ok := v.Rel(rid); !ok || r.Start != na || r.End != nb {
		t.Fatalf("Rel(%d) = %+v, %v", rid, r, ok)
	}
	if rels := v.RelsOf(nb, Both, nil); len(rels) != 1 || rels[0].ID != rid {
		t.Fatalf("RelsOf(far endpoint) = %v, want the bridge half", rels)
	}
	if got := len(v.AllNodes()); got != 8 {
		t.Fatalf("AllNodes = %d ids, want 8", got)
	}
}

// TestBarrierViewSeesWholeBridges hammers one bridge pair with commits
// while repeatedly taking BarrierViews: a consistent cut must never show a
// bridge half in one shard without its mirror in the other.
func TestBarrierViewSeesWholeBridges(t *testing.T) {
	ss := newShardedT(t, 2)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			bridgeOnce(t, ss, 0, 1)
		}
	}()
	for i := 0; i < 200; i++ {
		v, err := ss.BarrierView(nil)
		if err != nil {
			t.Fatal(err)
		}
		var halves [2]map[RelID]bool
		for s := 0; s < 2; s++ {
			halves[s] = make(map[RelID]bool)
			for _, id := range v.ShardTx(s).AllRels() {
				halves[s][id] = true
			}
		}
		v.Rollback()
		for id := range halves[0] {
			if !halves[1][id] {
				t.Fatalf("barrier view saw bridge %d in shard 0 only", id)
			}
		}
		for id := range halves[1] {
			if !halves[0][id] {
				t.Fatalf("barrier view saw bridge %d in shard 1 only", id)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestConcurrentShardWriters commits from many goroutines — per-shard
// writers plus bridge writers over every adjacent pair — and checks the
// final state. Run under -race this doubles as the engine's data-race test.
func TestConcurrentShardWriters(t *testing.T) {
	const (
		shards  = 4
		perGoro = 25
	)
	ss := newShardedT(t, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				if err := ss.Update(s, func(tx *Tx) error {
					_, err := tx.CreateNode([]string{"Intra"}, nil)
					return err
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for s := 0; s < shards; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			peer := (s + 1) % shards
			for i := 0; i < perGoro; i++ {
				bt, err := ss.BeginBridge(s, peer)
				if err != nil {
					t.Error(err)
					return
				}
				a, err := bt.CreateNodeIn(s, []string{"End"}, nil)
				if err == nil {
					var b NodeID
					b, err = bt.CreateNodeIn(peer, []string{"End"}, nil)
					if err == nil {
						_, err = bt.CreateRel(a, b, "BRIDGES", nil)
					}
				}
				if err != nil {
					bt.Rollback()
					t.Error(err)
					return
				}
				if err := bt.Commit(nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	v := ss.View()
	defer v.Rollback()
	if got := v.CountByLabel("Intra"); got != shards*perGoro {
		t.Fatalf("Intra nodes = %d, want %d", got, shards*perGoro)
	}
	if got := v.CountByLabel("End"); got != 2*shards*perGoro {
		t.Fatalf("End nodes = %d, want %d", got, 2*shards*perGoro)
	}
	if got := v.RelCount(); got != shards*perGoro {
		t.Fatalf("bridges = %d, want %d", got, shards*perGoro)
	}
}

// TestAttachShards round-trips shard contents through Export/Import and
// re-attaches the stores, checking counters stay banded.
func TestAttachShards(t *testing.T) {
	ss := newShardedT(t, 3)
	for i := 0; i < 3; i++ {
		if err := ss.Update(i, func(tx *Tx) error {
			_, err := tx.CreateNode([]string{"N"}, nil)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	bridgeOnce(t, ss, 0, 1)

	stores := make([]*Store, 3)
	for i := range stores {
		var b strings.Builder
		if err := ss.Shard(i).Export(&b); err != nil {
			t.Fatal(err)
		}
		stores[i] = NewStore()
		if err := stores[i].Import(strings.NewReader(b.String())); err != nil {
			t.Fatal(err)
		}
	}
	// An empty extra store exercises the band-seeding path for recovered
	// shards with no records.
	stores = append(stores, NewStore())
	ss2, err := AttachShards(stores)
	if err != nil {
		t.Fatal(err)
	}
	var id NodeID
	if err := ss2.Update(3, func(tx *Tx) error {
		var err error
		id, err = tx.CreateNode([]string{"Fresh"}, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if ShardOfNode(id) != 3 {
		t.Fatalf("empty attached shard allocated into band %d", ShardOfNode(id))
	}
	v := ss2.View()
	defer v.Rollback()
	if got := v.NodeCount(); got != 3+2+1 {
		t.Fatalf("NodeCount after attach = %d, want 6", got)
	}
	if got := v.RelCount(); got != 1 {
		t.Fatalf("RelCount after attach = %d, want 1", got)
	}
}
