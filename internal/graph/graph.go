// Package graph implements an in-memory transactional property-graph store.
//
// The store follows the property-graph data model used by the paper: nodes
// and directed relationships carry labels (a set, for nodes; a single type,
// for relationships) and typed properties. Transactions capture every change
// they make (creation and deletion of nodes and relationships, assignment
// and removal of labels and properties) into a TxData record — the same
// shape of transaction event data that Neo4j exposes to APOC triggers — so a
// reactive-rule engine can be layered on top without the store knowing about
// rules.
//
// Concurrency: the store is a single-writer, multi-reader structure guarded
// by an RWMutex. A read-write transaction holds the write lock from Begin
// until Commit or Rollback; read-only transactions share the read lock.
// Changes are applied eagerly and undone on rollback, so a transaction
// always reads its own writes.
package graph

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/value"
)

// NodeID identifies a node within a store.
type NodeID int64

// RelID identifies a relationship within a store.
type RelID int64

// Direction selects which relationships of a node to traverse.
type Direction int

// Traversal directions.
const (
	Outgoing Direction = iota
	Incoming
	Both
)

// Errors returned by store operations.
var (
	ErrNodeNotFound  = errors.New("graph: node not found")
	ErrRelNotFound   = errors.New("graph: relationship not found")
	ErrHasRels       = errors.New("graph: cannot delete node with relationships (use detach)")
	ErrTxDone        = errors.New("graph: transaction already finished")
	ErrReadOnly      = errors.New("graph: write in read-only transaction")
	ErrIndexExists   = errors.New("graph: index already exists")
	ErrIndexNotFound = errors.New("graph: index not found")
)

// Node is an immutable snapshot of a node.
type Node struct {
	ID     NodeID
	Labels []string
	Props  map[string]value.Value
}

// HasLabel reports whether the snapshot carries the label.
func (n Node) HasLabel(label string) bool {
	for _, l := range n.Labels {
		if l == label {
			return true
		}
	}
	return false
}

// Rel is an immutable snapshot of a relationship.
type Rel struct {
	ID    RelID
	Type  string
	Start NodeID
	End   NodeID
	Props map[string]value.Value
}

// Other returns the endpoint of r opposite to id.
func (r Rel) Other(id NodeID) NodeID {
	if r.Start == id {
		return r.End
	}
	return r.Start
}

type nodeRec struct {
	id     NodeID
	labels map[string]struct{}
	props  map[string]value.Value
	out    map[RelID]*relRec
	in     map[RelID]*relRec
}

type relRec struct {
	id    RelID
	typ   string
	start *nodeRec
	end   *nodeRec
	props map[string]value.Value
}

// Validator is invoked at commit time with the committing transaction; a
// non-nil error aborts the commit and rolls the transaction back. Schema and
// key constraints plug in here.
type Validator func(tx *Tx) error

// CommitHook is invoked when a read-write transaction commits, after every
// validator has passed and while the transaction (and the store's write
// lock) is still live. A non-nil error aborts the commit and rolls the
// transaction back. The write-ahead log plugs in here: it reads the final
// state of the transaction's changes and appends them as one durable
// record, so a transaction is either fully logged or fully rolled back.
type CommitHook func(tx *Tx) error

// Metrics holds the store's optional instrumentation. All fields may be
// nil (instrument methods on nil receivers no-op), so an unwired store pays
// only a nil check per transaction.
type Metrics struct {
	// TxCommits counts committed read-write transactions.
	TxCommits *metrics.Counter
	// TxRollbacks counts rolled-back read-write transactions (explicit
	// rollbacks plus validator- and hook-aborted commits).
	TxRollbacks *metrics.Counter
	// TxSeconds observes read-write transaction latency from Begin to
	// Commit or Rollback — the write-lock hold time.
	TxSeconds *metrics.Histogram
}

// Store is an in-memory property-graph database.
type Store struct {
	mu         sync.RWMutex
	nodes      map[NodeID]*nodeRec
	rels       map[RelID]*relRec
	byLabel    map[string]map[NodeID]struct{}
	byRelType  map[string]map[RelID]struct{}
	indexes    map[indexKey]*propIndex
	nextNode   NodeID
	nextRel    RelID
	validators []Validator
	commitHook CommitHook
	metrics    Metrics
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		nodes:     make(map[NodeID]*nodeRec),
		rels:      make(map[RelID]*relRec),
		byLabel:   make(map[string]map[NodeID]struct{}),
		byRelType: make(map[string]map[RelID]struct{}),
		indexes:   make(map[indexKey]*propIndex),
	}
}

// AddValidator registers a commit-time validator. Not safe to call
// concurrently with open transactions.
func (s *Store) AddValidator(v Validator) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.validators = append(s.validators, v)
}

// SetCommitHook installs (or, with nil, removes) the commit hook. At most
// one hook is supported; it is not copied by Clone, so forks of a durable
// store are purely in-memory. Not safe to call concurrently with open
// transactions.
func (s *Store) SetCommitHook(h CommitHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commitHook = h
}

// SetMetrics installs the store's instrumentation. Like SetCommitHook it is
// not safe to call concurrently with open transactions; Clone does not copy
// it, so forks are unobserved unless re-wired.
func (s *Store) SetMetrics(m Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = m
}

// LabelCount returns the number of nodes currently carrying label. It is a
// map-size read under the read lock, cheap enough for scrape-time
// cardinality gauges.
func (s *Store) LabelCount(label string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byLabel[label])
}

// Mode selects the access mode of a transaction.
type Mode int

// Transaction modes.
const (
	ReadOnly Mode = iota
	ReadWrite
)

// Begin starts a transaction. A ReadWrite transaction holds the store's
// write lock until Commit or Rollback; callers must always finish it.
func (s *Store) Begin(mode Mode) *Tx {
	if mode == ReadWrite {
		s.mu.Lock()
		tx := &Tx{s: s, mode: mode, data: &TxData{}}
		if s.metrics.TxSeconds != nil {
			tx.start = time.Now()
		}
		return tx
	}
	s.mu.RLock()
	return &Tx{s: s, mode: mode, data: &TxData{}}
}

// View runs fn inside a read-only transaction.
func (s *Store) View(fn func(tx *Tx) error) error {
	tx := s.Begin(ReadOnly)
	defer tx.Rollback()
	return fn(tx)
}

// Update runs fn inside a read-write transaction, committing on success and
// rolling back if fn or a commit validator fails.
func (s *Store) Update(fn func(tx *Tx) error) error {
	tx := s.Begin(ReadWrite)
	if err := fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// Clone returns a deep copy of the store's data (nodes, relationships,
// labels, properties, indexes, identifier counters). Validators are shared:
// they are closures over schema and hub definitions, which forks are meant
// to keep. Clone is the substrate for what-if forking (§V of the paper).
func (s *Store) Clone() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ns := NewStore()
	ns.nextNode = s.nextNode
	ns.nextRel = s.nextRel
	ns.validators = append([]Validator(nil), s.validators...)
	for id, rec := range s.nodes {
		nrec := &nodeRec{
			id:     rec.id,
			labels: make(map[string]struct{}, len(rec.labels)),
			props:  make(map[string]value.Value, len(rec.props)),
			out:    make(map[RelID]*relRec, len(rec.out)),
			in:     make(map[RelID]*relRec, len(rec.in)),
		}
		for l := range rec.labels {
			nrec.labels[l] = struct{}{}
			ns.labelSet(l)[id] = struct{}{}
		}
		for k, v := range rec.props {
			nrec.props[k] = v // values are immutable
		}
		ns.nodes[id] = nrec
	}
	for id, rec := range s.rels {
		nrec := &relRec{
			id:    rec.id,
			typ:   rec.typ,
			start: ns.nodes[rec.start.id],
			end:   ns.nodes[rec.end.id],
			props: make(map[string]value.Value, len(rec.props)),
		}
		for k, v := range rec.props {
			nrec.props[k] = v
		}
		ns.rels[id] = nrec
		nrec.start.out[id] = nrec
		nrec.end.in[id] = nrec
		ns.relTypeSet(rec.typ)[id] = struct{}{}
	}
	for key, idx := range s.indexes {
		nidx := &propIndex{byValue: make(map[string]map[NodeID]struct{}, len(idx.byValue))}
		for hk, set := range idx.byValue {
			nset := make(map[NodeID]struct{}, len(set))
			for id := range set {
				nset[id] = struct{}{}
			}
			nidx.byValue[hk] = nset
		}
		ns.indexes[key] = nidx
	}
	return ns
}

// Stats reports the current size of the store.
type Stats struct {
	Nodes         int
	Relationships int
	Labels        int
	RelTypes      int
	Indexes       int
}

// Stats returns a snapshot of store-size counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Nodes:         len(s.nodes),
		Relationships: len(s.rels),
		Labels:        len(s.byLabel),
		RelTypes:      len(s.byRelType),
		Indexes:       len(s.indexes),
	}
}

func (s *Store) labelSet(label string) map[NodeID]struct{} {
	set, ok := s.byLabel[label]
	if !ok {
		set = make(map[NodeID]struct{})
		s.byLabel[label] = set
	}
	return set
}

func (s *Store) relTypeSet(typ string) map[RelID]struct{} {
	set, ok := s.byRelType[typ]
	if !ok {
		set = make(map[RelID]struct{})
		s.byRelType[typ] = set
	}
	return set
}

func snapshotNode(n *nodeRec) Node {
	labels := make([]string, 0, len(n.labels))
	for l := range n.labels {
		labels = append(labels, l)
	}
	sortStrings(labels)
	props := make(map[string]value.Value, len(n.props))
	for k, v := range n.props {
		props[k] = v
	}
	return Node{ID: n.id, Labels: labels, Props: props}
}

func snapshotRel(r *relRec) Rel {
	props := make(map[string]value.Value, len(r.props))
	for k, v := range r.props {
		props[k] = v
	}
	return Rel{ID: r.id, Type: r.typ, Start: r.start.id, End: r.end.id, Props: props}
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

func fmtErrNode(id NodeID) error { return fmt.Errorf("%w: %d", ErrNodeNotFound, id) }
func fmtErrRel(id RelID) error   { return fmt.Errorf("%w: %d", ErrRelNotFound, id) }
