// Package graph implements an in-memory transactional property-graph store
// with snapshot-isolated reads.
//
// The store follows the property-graph data model used by the paper: nodes
// and directed relationships carry labels (a set, for nodes; a single type,
// for relationships) and typed properties. Transactions capture every change
// they make (creation and deletion of nodes and relationships, assignment
// and removal of labels and properties) into a TxData record — the same
// shape of transaction event data that Neo4j exposes to APOC triggers — so a
// reactive-rule engine can be layered on top without the store knowing about
// rules.
//
// Concurrency: the store is single-writer, multi-version. The committed
// state is an immutable snapshot published through an atomic pointer. A
// read-write transaction serializes on the store's write lock from Begin
// until Commit or Rollback and builds a private working copy of exactly what
// it touches — dirty node/relationship records, label and relationship-type
// sets, and property-index postings are cloned copy-on-write; untouched
// structure stays shared with the committed snapshot. Commit publishes the
// working copy as the next snapshot in one atomic store; Rollback just
// discards it. A read-write transaction always reads its own writes.
//
// Read-only transactions (Begin(ReadOnly), View) grab the current snapshot
// pointer and take no lock at all: readers never block behind writers, never
// observe a transaction in progress, and keep seeing the same consistent
// committed state for their whole lifetime, however long a concurrent write
// takes. Clone shares the committed snapshot instead of deep-copying it, so
// forking is an O(1) snapshot grab and the two stores diverge copy-on-write
// from then on.
package graph

import (
	"errors"
	"fmt"
	"maps"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/value"
)

// NodeID identifies a node within a store.
type NodeID int64

// RelID identifies a relationship within a store.
type RelID int64

// Direction selects which relationships of a node to traverse.
type Direction int

// Traversal directions.
const (
	Outgoing Direction = iota
	Incoming
	Both
)

// Errors returned by store operations.
var (
	ErrNodeNotFound  = errors.New("graph: node not found")
	ErrRelNotFound   = errors.New("graph: relationship not found")
	ErrHasRels       = errors.New("graph: cannot delete node with relationships (use detach)")
	ErrTxDone        = errors.New("graph: transaction already finished")
	ErrReadOnly      = errors.New("graph: write in read-only transaction")
	ErrIndexExists   = errors.New("graph: index already exists")
	ErrIndexNotFound = errors.New("graph: index not found")
	ErrFollowerStore = errors.New("graph: store is in follower mode (writes come from replication only)")
)

// Node is an immutable snapshot of a node.
type Node struct {
	ID     NodeID
	Labels []string
	Props  map[string]value.Value
}

// HasLabel reports whether the snapshot carries the label.
func (n Node) HasLabel(label string) bool {
	for _, l := range n.Labels {
		if l == label {
			return true
		}
	}
	return false
}

// Rel is an immutable snapshot of a relationship.
type Rel struct {
	ID    RelID
	Type  string
	Start NodeID
	End   NodeID
	Props map[string]value.Value
}

// Other returns the endpoint of r opposite to id.
func (r Rel) Other(id NodeID) NodeID {
	if r.Start == id {
		return r.End
	}
	return r.Start
}

// nodeRec is one version of a node. Once a record has been published in a
// committed snapshot it is immutable; a write transaction that touches it
// first installs a private clone in its working copy (copy-on-write).
type nodeRec struct {
	id     NodeID
	labels map[string]struct{}
	props  map[string]value.Value
	out    map[RelID]*relRec
	in     map[RelID]*relRec
}

func (n *nodeRec) clone() *nodeRec {
	return &nodeRec{
		id:     n.id,
		labels: maps.Clone(n.labels),
		props:  maps.Clone(n.props),
		out:    maps.Clone(n.out),
		in:     maps.Clone(n.in),
	}
}

// relRec is one version of a relationship. Endpoints are held by identifier,
// not pointer, so a record stays valid however its endpoint nodes are
// copy-on-write cloned across versions.
type relRec struct {
	id    RelID
	typ   string
	start NodeID
	end   NodeID
	props map[string]value.Value
}

func (r *relRec) clone() *relRec {
	c := *r
	c.props = maps.Clone(r.props)
	return &c
}

// snapshot is one committed version of the whole store. Every snapshot
// reachable from Store.snap (or pinned by a read-only transaction or a
// clone) is immutable: write transactions clone what they touch and publish
// a fresh snapshot at commit.
type snapshot struct {
	nodes     map[NodeID]*nodeRec
	rels      map[RelID]*relRec
	byLabel   map[string]map[NodeID]struct{}
	byRelType map[string]map[RelID]struct{}
	indexes   map[indexKey]*propIndex
	nextNode  NodeID
	nextRel   RelID
	// mirrorRels counts the bridge mirror halves held by this store:
	// relationship records whose identifier belongs to another shard's
	// allocation band. It is maintained on every bridge-half install and
	// delete (and by Import), so home-relationship counts — len(rels) minus
	// mirrorRels — are O(1) instead of an O(E) band scan. Always zero on an
	// unsharded store.
	mirrorRels int
}

func emptySnapshot() *snapshot {
	return &snapshot{
		nodes:     make(map[NodeID]*nodeRec),
		rels:      make(map[RelID]*relRec),
		byLabel:   make(map[string]map[NodeID]struct{}),
		byRelType: make(map[string]map[RelID]struct{}),
		indexes:   make(map[indexKey]*propIndex),
	}
}

// labelSet and relTypeSet are construction helpers for private (not yet
// published) snapshots; Import uses them. Published snapshots are never
// mutated.
func (sn *snapshot) labelSet(label string) map[NodeID]struct{} {
	set, ok := sn.byLabel[label]
	if !ok {
		set = make(map[NodeID]struct{})
		sn.byLabel[label] = set
	}
	return set
}

func (sn *snapshot) relTypeSet(typ string) map[RelID]struct{} {
	set, ok := sn.byRelType[typ]
	if !ok {
		set = make(map[RelID]struct{})
		sn.byRelType[typ] = set
	}
	return set
}

// Validator is invoked at commit time with the committing transaction; a
// non-nil error aborts the commit and rolls the transaction back. Schema and
// key constraints plug in here.
type Validator func(tx *Tx) error

// CommitHook is invoked when a read-write transaction commits, after every
// validator has passed, while the transaction is still live and before its
// snapshot is published. A non-nil error aborts the commit and rolls the
// transaction back. The write-ahead log plugs in here: it reads the final
// state of the transaction's changes and appends them as one durable
// record, so a transaction is either fully logged or fully rolled back. A
// hook that wants work done after publication (for example waiting on a
// group-commit fsync outside the write lock) registers it with
// Tx.OnCommitted.
type CommitHook func(tx *Tx) error

// Metrics holds the store's optional instrumentation. All fields may be
// nil (instrument methods on nil receivers no-op), so an unwired store pays
// only a nil check per transaction.
type Metrics struct {
	// TxCommits counts committed read-write transactions.
	TxCommits *metrics.Counter
	// TxRollbacks counts rolled-back read-write transactions (explicit
	// rollbacks plus validator- and hook-aborted commits).
	TxRollbacks *metrics.Counter
	// TxSeconds observes read-write transaction latency from Begin to
	// Commit or Rollback — the write-lock hold time.
	TxSeconds *metrics.Histogram
	// SnapshotsPublished counts committed snapshot versions published
	// (write-transaction commits, index creation/drop, imports).
	SnapshotsPublished *metrics.Counter
	// SnapshotReads counts read-only transactions served lock-free from a
	// published snapshot.
	SnapshotReads *metrics.Counter
	// RecordsCloned counts node and relationship records cloned
	// copy-on-write by write transactions — the per-commit COW footprint.
	RecordsCloned *metrics.Counter
	// LockWaitSeconds observes how long Begin(ReadWrite) waited for the
	// store's write lock. On a sharded store this is the per-shard writer
	// queueing delay (rkm_shard_lock_wait_seconds).
	LockWaitSeconds *metrics.Histogram
}

// Store is an in-memory property-graph database.
type Store struct {
	// writeMu serializes read-write transactions, index creation/drop and
	// Import. The read path never takes it.
	writeMu sync.Mutex
	// snap is the current committed snapshot: loaded atomically (and
	// lock-free) by readers, swapped at commit under writeMu.
	snap atomic.Pointer[snapshot]
	// validators is an immutable slice, swapped whole by AddValidator so
	// Clone can copy it without blocking behind an open write transaction.
	validators atomic.Pointer[[]Validator]
	// commitHook is guarded by writeMu.
	commitHook CommitHook
	// metrics is stored as a pointer so the lock-free read path can load it
	// atomically.
	metrics atomic.Pointer[Metrics]
	// follower, when set, rejects every ordinary read-write commit with
	// ErrFollowerStore: the only writes a replica accepts are replayed leader
	// records applied through BeginApply (see internal/replica).
	follower atomic.Bool
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	s.snap.Store(emptySnapshot())
	s.metrics.Store(&Metrics{})
	return s
}

// AddValidator registers a commit-time validator. Safe to call concurrently
// with readers; like all configuration it must not race an open write
// transaction.
func (s *Store) AddValidator(v Validator) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	var vs []Validator
	if old := s.validators.Load(); old != nil {
		vs = append(vs, *old...)
	}
	vs = append(vs, v)
	s.validators.Store(&vs)
}

// SetCommitHook installs (or, with nil, removes) the commit hook. At most
// one hook is supported; it is not shared by Clone, so forks of a durable
// store are purely in-memory. Not safe to call concurrently with open write
// transactions.
func (s *Store) SetCommitHook(h CommitHook) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.commitHook = h
}

// SetMetrics installs the store's instrumentation. Clone does not share it,
// so forks are unobserved unless re-wired.
func (s *Store) SetMetrics(m Metrics) {
	s.metrics.Store(&m)
}

// SetFollowerMode switches the store's write gate. In follower mode every
// ordinary read-write transaction fails at Commit with ErrFollowerStore;
// only transactions started with BeginApply (the replication apply path) and
// Import (bootstrap) may change the graph. Reads are unaffected.
func (s *Store) SetFollowerMode(on bool) { s.follower.Store(on) }

// FollowerMode reports whether the store only accepts replicated writes.
func (s *Store) FollowerMode() bool { return s.follower.Load() }

// BeginApply starts a read-write transaction for applying replicated leader
// records: it bypasses the follower-mode write gate and the commit-time
// validators (the leader already validated the original transaction — a
// follower must apply the record stream verbatim or diverge). Everything
// else — write lock, copy-on-write, commit hook, snapshot publication —
// behaves exactly like Begin(ReadWrite).
func (s *Store) BeginApply() *Tx {
	tx := s.Begin(ReadWrite)
	tx.apply = true
	return tx
}

// LabelCount returns the number of nodes currently carrying label. It is a
// lock-free map-size read on the committed snapshot, so scrape-time
// cardinality gauges never stall behind a writer.
func (s *Store) LabelCount(label string) int {
	return len(s.snap.Load().byLabel[label])
}

// Mode selects the access mode of a transaction.
type Mode int

// Transaction modes.
const (
	ReadOnly Mode = iota
	ReadWrite
)

// Begin starts a transaction. A ReadWrite transaction holds the store's
// write lock until Commit or Rollback; callers must always finish it. A
// ReadOnly transaction takes no lock: it pins the current committed
// snapshot and observes exactly that state for its whole lifetime.
func (s *Store) Begin(mode Mode) *Tx {
	m := s.metrics.Load()
	if mode == ReadWrite {
		var w0 time.Time
		if m.LockWaitSeconds != nil {
			w0 = time.Now()
		}
		s.writeMu.Lock()
		if !w0.IsZero() {
			m.LockWaitSeconds.ObserveSince(w0)
		}
		base := s.snap.Load()
		view := *base // struct copy: maps stay shared until copied-on-write
		tx := &Tx{s: s, mode: mode, data: &TxData{}, view: &view, w: newWork(), metrics: m}
		if m.TxSeconds != nil {
			tx.start = time.Now()
		}
		return tx
	}
	m.SnapshotReads.Inc()
	return &Tx{s: s, mode: mode, data: &TxData{}, view: s.snap.Load(), metrics: m}
}

// View runs fn inside a read-only transaction. It never blocks behind a
// writer: fn sees the most recently committed snapshot.
func (s *Store) View(fn func(tx *Tx) error) error {
	tx := s.Begin(ReadOnly)
	defer tx.Rollback()
	return fn(tx)
}

// Update runs fn inside a read-write transaction, committing on success and
// rolling back if fn or a commit validator fails.
func (s *Store) Update(fn func(tx *Tx) error) error {
	tx := s.Begin(ReadWrite)
	if err := fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// SnapshotView runs barrier while the write lock is held — no commit can
// interleave — and returns a read-only transaction pinned to the committed
// snapshot of that instant. Checkpointing passes a barrier that cuts the
// write-ahead log, pairing the log position exactly with the returned view,
// and then exports from the view after the lock is released, so writers
// wait only for the barrier, never for the export or the disk.
func (s *Store) SnapshotView(barrier func() error) (*Tx, error) {
	m := s.metrics.Load()
	s.writeMu.Lock()
	err := barrier()
	sn := s.snap.Load()
	s.writeMu.Unlock()
	if err != nil {
		return nil, err
	}
	m.SnapshotReads.Inc()
	return &Tx{s: s, mode: ReadOnly, data: &TxData{}, view: sn, metrics: m}, nil
}

// Clone returns an independent store over the same data. It is an O(1)
// snapshot grab, not a deep copy: the committed snapshot is shared, and
// writes on either store diverge from it copy-on-write — changes in one are
// never visible in the other. Validators are shared (they are closures over
// schema and hub definitions, which forks are meant to keep); the commit
// hook and metrics are not, so forks of a durable store are purely
// in-memory and unobserved unless re-wired. Clone is the substrate for
// what-if forking (§V of the paper) and never blocks behind a writer.
func (s *Store) Clone() *Store {
	ns := &Store{}
	ns.snap.Store(s.snap.Load())
	if vs := s.validators.Load(); vs != nil {
		cp := append([]Validator(nil), *vs...)
		ns.validators.Store(&cp)
	}
	ns.metrics.Store(&Metrics{})
	return ns
}

// Stats reports the current size of the store.
type Stats struct {
	Nodes         int
	Relationships int
	Labels        int
	RelTypes      int
	Indexes       int
}

// Stats returns a snapshot of store-size counters. Lock-free.
func (s *Store) Stats() Stats {
	sn := s.snap.Load()
	return Stats{
		Nodes:         len(sn.nodes),
		Relationships: len(sn.rels),
		Labels:        len(sn.byLabel),
		RelTypes:      len(sn.byRelType),
		Indexes:       len(sn.indexes),
	}
}

func snapshotNode(n *nodeRec) Node {
	labels := make([]string, 0, len(n.labels))
	for l := range n.labels {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	props := make(map[string]value.Value, len(n.props))
	for k, v := range n.props {
		props[k] = v
	}
	return Node{ID: n.id, Labels: labels, Props: props}
}

func snapshotRel(r *relRec) Rel {
	props := make(map[string]value.Value, len(r.props))
	for k, v := range r.props {
		props[k] = v
	}
	return Rel{ID: r.id, Type: r.typ, Start: r.start, End: r.end, Props: props}
}

func fmtErrNode(id NodeID) error { return fmt.Errorf("%w: %d", ErrNodeNotFound, id) }
func fmtErrRel(id RelID) error   { return fmt.Errorf("%w: %d", ErrRelNotFound, id) }
