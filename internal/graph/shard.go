package graph

// Hub sharding: the store-level half of the partitioned storage engine.
//
// The paper's partition unit — every node is owned by exactly one knowledge
// hub, and only knowledge bridges cross hub borders (§III-A) — becomes the
// storage engine's unit of parallelism: a ShardedStore is an array of
// ordinary Stores, one per shard, each keeping its own single-writer lock,
// committed-snapshot pointer and (in a durable deployment) write-ahead-log
// segment stream. Intra-hub transactions, the common case, run entirely
// inside one shard and therefore commit fully in parallel across shards;
// cross-hub bridge writes take the two-shard BridgeTx path, which locks the
// two shards in deterministic (ascending-index) order and commits both
// sides together.
//
// Identifier bands make routing trivial: shard i allocates NodeIDs and
// RelIDs with i in the top bits (ShardOfNode / ShardOfRel recover the shard
// from any identifier in O(1)). A bridge relationship is stored twice — a
// "half" in each endpoint's shard under one identifier allocated from the
// start node's (home) shard — so per-shard traversal sees bridges from both
// sides without any cross-shard hop; reads of the relationship itself route
// to the home shard.

import (
	"errors"
	"fmt"

	"repro/internal/value"
)

// ShardShift is the bit position of the shard index inside a NodeID or
// RelID: shard i allocates identifiers in [i<<ShardShift, (i+1)<<ShardShift).
const ShardShift = 48

// MaxShards bounds the number of shards an identifier can encode.
const MaxShards = 1 << 14

// Errors reported by the sharded store.
var (
	ErrBadShard      = errors.New("graph: shard index out of range")
	ErrNotBridge     = errors.New("graph: entity does not belong to this bridge transaction's shards")
	ErrSameShard     = errors.New("graph: bridge transaction requires two distinct shards")
	ErrBridgeTxDone  = errors.New("graph: bridge transaction already finished")
	ErrShardMismatch = errors.New("graph: store counters do not match the shard's identifier band")
)

// ShardOfNode returns the shard index encoded in a node identifier.
func ShardOfNode(id NodeID) int { return int(id >> ShardShift) }

// ShardOfRel returns the shard index encoded in a relationship identifier.
func ShardOfRel(id RelID) int { return int(id >> ShardShift) }

// ShardBaseNode returns the first identifier of a shard's node band minus
// one — the value the shard's allocation counter is seeded with.
func ShardBaseNode(shard int) NodeID { return NodeID(shard) << ShardShift }

// ShardBaseRel is ShardBaseNode for relationship identifiers.
func ShardBaseRel(shard int) RelID { return RelID(shard) << ShardShift }

// ShardedStore is a property graph partitioned into per-hub shards, each an
// ordinary Store with its own write lock and snapshot pointer. It adds
// exactly three things over the array: identifier-band allocation (so every
// entity identifier names its shard), the two-shard BridgeTx commit path,
// and cross-shard read views (MultiView).
type ShardedStore struct {
	shards []*Store
}

// NewSharded creates n empty shards with banded identifier allocation.
func NewSharded(n int) (*ShardedStore, error) {
	if n < 1 || n > MaxShards {
		return nil, fmt.Errorf("%w: %d (want 1..%d)", ErrBadShard, n, MaxShards)
	}
	stores := make([]*Store, n)
	for i := range stores {
		s := NewStore()
		// The store was created in this call and has no readers or hooks
		// yet, so seeding the private snapshot's counters directly is safe.
		sn := s.snap.Load()
		sn.nextNode = ShardBaseNode(i)
		sn.nextRel = ShardBaseRel(i)
		stores[i] = s
	}
	return &ShardedStore{shards: stores}, nil
}

// AttachShards wraps existing stores (typically just recovered from
// per-shard write-ahead logs) as a sharded store, raising each store's
// identifier counters to its band base so an empty recovered shard does not
// allocate into shard 0's band. It must be called before commit hooks or
// follower mode are installed on the stores.
func AttachShards(stores []*Store) (*ShardedStore, error) {
	if len(stores) < 1 || len(stores) > MaxShards {
		return nil, fmt.Errorf("%w: %d stores", ErrBadShard, len(stores))
	}
	for i, s := range stores {
		tx := s.Begin(ReadWrite)
		if err := tx.EnsureCounters(ShardBaseNode(i), ShardBaseRel(i)); err != nil {
			tx.Rollback()
			return nil, err
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
		nn, nr := stores[i].snap.Load().nextNode, stores[i].snap.Load().nextRel
		if ShardOfNode(nn) != i || ShardOfRel(nr) != i {
			return nil, fmt.Errorf("%w: shard %d counters (%d, %d)", ErrShardMismatch, i, nn, nr)
		}
	}
	return &ShardedStore{shards: stores}, nil
}

// NumShards returns the number of shards.
func (ss *ShardedStore) NumShards() int { return len(ss.shards) }

// Shard returns shard i's underlying store. Single-shard transactions —
// the intra-hub common case — go straight through it: Begin, Update and
// View on the shard behave exactly as on an unsharded store and serialize
// only against writers of the same shard.
func (ss *ShardedStore) Shard(i int) *Store { return ss.shards[i] }

// Update runs fn in a read-write transaction on one shard (an intra-hub
// write). It commits on success and serializes only against that shard's
// writers.
func (ss *ShardedStore) Update(shard int, fn func(tx *Tx) error) error {
	if shard < 0 || shard >= len(ss.shards) {
		return fmt.Errorf("%w: %d", ErrBadShard, shard)
	}
	return ss.shards[shard].Update(fn)
}

// ---- Cross-shard read views ----

// MultiView is a read view spanning every shard: one lock-free read-only
// transaction per shard, each pinned to that shard's committed snapshot.
// Reads route by identifier band. The per-shard snapshots are grabbed
// independently (View) or under an all-shards write barrier (BarrierView);
// only the latter is a single consistent cut across shards.
type MultiView struct {
	ss  *ShardedStore
	txs []*Tx
}

// View pins the current committed snapshot of every shard, lock-free. The
// snapshots are taken independently, so a concurrent bridge commit may be
// visible in one shard and not yet in the other; per-shard reads are
// snapshot-isolated as usual. Callers must Rollback the view when done.
func (ss *ShardedStore) View() *MultiView {
	txs := make([]*Tx, len(ss.shards))
	for i, s := range ss.shards {
		txs[i] = s.Begin(ReadOnly)
	}
	return &MultiView{ss: ss, txs: txs}
}

// BarrierView takes every shard's write lock in ascending order, runs
// barrier (which may be nil) while all commits are quiesced, pins every
// shard's snapshot of that instant, and releases the locks: a consistent
// global cut. Sharded checkpointing passes a barrier that cuts all
// write-ahead-log streams, pairing log positions exactly with the view.
func (ss *ShardedStore) BarrierView(barrier func() error) (*MultiView, error) {
	for _, s := range ss.shards {
		s.writeMu.Lock()
	}
	var err error
	if barrier != nil {
		err = barrier()
	}
	txs := make([]*Tx, len(ss.shards))
	for i, s := range ss.shards {
		txs[i] = &Tx{s: s, mode: ReadOnly, data: &TxData{}, view: s.snap.Load(), metrics: s.metrics.Load()}
	}
	for i := len(ss.shards) - 1; i >= 0; i-- {
		ss.shards[i].writeMu.Unlock()
	}
	if err != nil {
		return nil, err
	}
	for _, s := range ss.shards {
		s.metrics.Load().SnapshotReads.Inc()
	}
	return &MultiView{ss: ss, txs: txs}, nil
}

// Rollback releases the view's per-shard read transactions.
func (v *MultiView) Rollback() {
	for _, tx := range v.txs {
		tx.Rollback()
	}
}

// ShardTx returns the view's read-only transaction over shard i, for
// whole-shard scans and the full Tx read API.
func (v *MultiView) ShardTx(i int) *Tx { return v.txs[i] }

// NumShards returns the number of shards the view spans.
func (v *MultiView) NumShards() int { return len(v.txs) }

func (v *MultiView) nodeTx(id NodeID) (*Tx, bool) {
	s := ShardOfNode(id)
	if s < 0 || s >= len(v.txs) {
		return nil, false
	}
	return v.txs[s], true
}

func (v *MultiView) relTx(id RelID) (*Tx, bool) {
	s := ShardOfRel(id)
	if s < 0 || s >= len(v.txs) {
		return nil, false
	}
	return v.txs[s], true
}

// Node returns a snapshot of the node, routed to its shard.
func (v *MultiView) Node(id NodeID) (Node, bool) {
	tx, ok := v.nodeTx(id)
	if !ok {
		return Node{}, false
	}
	return tx.Node(id)
}

// NodeExists reports whether the node exists, routed to its shard.
func (v *MultiView) NodeExists(id NodeID) bool {
	tx, ok := v.nodeTx(id)
	return ok && tx.NodeExists(id)
}

// NodeLabels returns the node's labels, routed to its shard.
func (v *MultiView) NodeLabels(id NodeID) ([]string, bool) {
	tx, ok := v.nodeTx(id)
	if !ok {
		return nil, false
	}
	return tx.NodeLabels(id)
}

// NodeHasLabel reports whether the node carries the label, routed to its
// shard.
func (v *MultiView) NodeHasLabel(id NodeID, label string) bool {
	tx, ok := v.nodeTx(id)
	return ok && tx.NodeHasLabel(id, label)
}

// NodeProp returns one property of a node, routed to its shard.
func (v *MultiView) NodeProp(id NodeID, key string) (value.Value, bool) {
	tx, ok := v.nodeTx(id)
	if !ok {
		return value.Null, false
	}
	return tx.NodeProp(id, key)
}

// NodePropKeys returns the node's property keys, routed to its shard.
func (v *MultiView) NodePropKeys(id NodeID) []string {
	tx, ok := v.nodeTx(id)
	if !ok {
		return nil
	}
	return tx.NodePropKeys(id)
}

// Rel returns a snapshot of the relationship from its home shard (a bridge
// relationship's home is its start node's shard).
func (v *MultiView) Rel(id RelID) (Rel, bool) {
	s := ShardOfRel(id)
	if s < 0 || s >= len(v.txs) {
		return Rel{}, false
	}
	return v.txs[s].Rel(id)
}

// RelProp returns one property of a relationship, routed to its home shard.
// Both halves of a bridge store the full property map, so the home half is
// always sufficient.
func (v *MultiView) RelProp(id RelID, key string) (value.Value, bool) {
	tx, ok := v.relTx(id)
	if !ok {
		return value.Null, false
	}
	return tx.RelProp(id, key)
}

// RelPropKeys returns the relationship's property keys, routed to its home
// shard.
func (v *MultiView) RelPropKeys(id RelID) []string {
	tx, ok := v.relTx(id)
	if !ok {
		return nil
	}
	return tx.RelPropKeys(id)
}

// RelEndpoints returns the relationship's type and endpoint identifiers,
// routed to its home shard. A bridge's far endpoint identifier names the
// peer shard; resolving it routes there by band.
func (v *MultiView) RelEndpoints(id RelID) (typ string, start, end NodeID, ok bool) {
	tx, txOK := v.relTx(id)
	if !txOK {
		return "", 0, 0, false
	}
	return tx.RelEndpoints(id)
}

// Degree counts the relationships incident to a node, routed to the node's
// shard (bridge halves are stored with each endpoint, so the local count is
// complete).
func (v *MultiView) Degree(id NodeID, dir Direction) int {
	tx, ok := v.nodeTx(id)
	if !ok {
		return 0
	}
	return tx.Degree(id, dir)
}

// RelsOf returns the relationships incident to a node — including bridge
// halves, whose far endpoint lives in another shard — routed to the node's
// shard.
func (v *MultiView) RelsOf(id NodeID, dir Direction, types []string) []RelHandle {
	tx, ok := v.nodeTx(id)
	if !ok {
		return nil
	}
	return tx.RelsOf(id, dir, types)
}

// NodesByLabel unions the label's membership across all shards.
func (v *MultiView) NodesByLabel(label string) []NodeID {
	var out []NodeID
	for _, tx := range v.txs {
		out = append(out, tx.NodesByLabel(label)...)
	}
	return out
}

// CountByLabel sums the label's membership across all shards.
func (v *MultiView) CountByLabel(label string) int {
	n := 0
	for _, tx := range v.txs {
		n += tx.CountByLabel(label)
	}
	return n
}

// NodesByProp unions the property index's matches across all shards. The
// second result is false — fall back to a scan — unless every shard carries
// the (label, prop) index: a partial union would silently drop the shards
// without one.
func (v *MultiView) NodesByProp(label, prop string, val value.Value) ([]NodeID, bool) {
	var out []NodeID
	for _, tx := range v.txs {
		ids, ok := tx.NodesByProp(label, prop, val)
		if !ok {
			return nil, false
		}
		out = append(out, ids...)
	}
	return out, true
}

// CountByProp sums the property index's match counts across all shards; the
// second result is false unless every shard carries the index.
func (v *MultiView) CountByProp(label, prop string, val value.Value) (int, bool) {
	n := 0
	for _, tx := range v.txs {
		c, ok := tx.CountByProp(label, prop, val)
		if !ok {
			return 0, false
		}
		n += c
	}
	return n, true
}

// HasIndex reports whether every shard carries an index on (label, prop) —
// the condition under which cross-shard index lookups are complete.
func (v *MultiView) HasIndex(label, prop string) bool {
	for _, tx := range v.txs {
		if !tx.HasIndex(label, prop) {
			return false
		}
	}
	return true
}

// NodeCount sums the node counts of all shards.
func (v *MultiView) NodeCount() int {
	n := 0
	for _, tx := range v.txs {
		n += tx.NodeCount()
	}
	return n
}

// RelCount counts relationships across all shards, counting each bridge
// once (by its home half). O(shards): each shard's snapshot tracks how many
// of its records are bridge mirror halves, so no relationship scan is
// needed.
func (v *MultiView) RelCount() int {
	n := 0
	for _, tx := range v.txs {
		n += tx.HomeRelCount()
	}
	return n
}

// AllNodes returns every node identifier across all shards.
func (v *MultiView) AllNodes() []NodeID {
	var out []NodeID
	for _, tx := range v.txs {
		out = append(out, tx.AllNodes()...)
	}
	return out
}

// AllRels returns every relationship identifier across all shards, each
// bridge reported once (by its home half). The result is pre-sized from the
// per-shard home counters, and shards holding no mirror halves append their
// identifiers without any per-identifier band test.
func (v *MultiView) AllRels() []RelID {
	out := make([]RelID, 0, v.RelCount())
	for i, tx := range v.txs {
		ids := tx.AllRels()
		if tx.view.mirrorRels == 0 {
			out = append(out, ids...)
			continue
		}
		for _, id := range ids {
			if ShardOfRel(id) == i {
				out = append(out, id)
			}
		}
	}
	return out
}

// ---- Bridge transactions ----

// BridgeTx is a read-write transaction spanning exactly two shards — the
// storage half of a knowledge-bridge write. BeginBridge locks the two
// shards in ascending index order (every bridge, whatever hub pair it
// connects, acquires locks in the same global order, so bridge writers
// never deadlock against each other or against intra-hub writers). Writes
// route by identifier band; a cross-shard CreateRel stores a half in each
// shard under one identifier from the start node's band. Commit publishes
// both shards together after an optional seal callback — the hook point
// where the durable two-shard commit protocol (internal/wal ShardSet)
// appends its prepare and commit records while both locks are still held.
type BridgeTx struct {
	ss     *ShardedStore
	lo, hi *Tx
	loIdx  int
	hiIdx  int
	done   bool
}

// BeginBridge starts a two-shard transaction over shards a and b (any
// order, a != b), locking in ascending index order.
func (ss *ShardedStore) BeginBridge(a, b int) (*BridgeTx, error) {
	if a == b {
		return nil, ErrSameShard
	}
	if a < 0 || a >= len(ss.shards) || b < 0 || b >= len(ss.shards) {
		return nil, fmt.Errorf("%w: (%d, %d)", ErrBadShard, a, b)
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	loTx := ss.shards[lo].Begin(ReadWrite)
	hiTx := ss.shards[hi].Begin(ReadWrite)
	return &BridgeTx{ss: ss, lo: loTx, hi: hiTx, loIdx: lo, hiIdx: hi}, nil
}

// Shards returns the two shard indexes the transaction spans, ascending.
func (bt *BridgeTx) Shards() (lo, hi int) { return bt.loIdx, bt.hiIdx }

// ShardTx returns the underlying per-shard transaction for one of the two
// spanned shards, giving access to the full Tx read/write API for writes
// that are local to that shard.
func (bt *BridgeTx) ShardTx(shard int) (*Tx, error) {
	switch shard {
	case bt.loIdx:
		return bt.lo, nil
	case bt.hiIdx:
		return bt.hi, nil
	}
	return nil, fmt.Errorf("%w: shard %d", ErrNotBridge, shard)
}

func (bt *BridgeTx) txForNode(id NodeID) (*Tx, error) {
	return bt.ShardTx(ShardOfNode(id))
}

// CreateNodeIn creates a node in the given shard (which must be one of the
// two spanned shards).
func (bt *BridgeTx) CreateNodeIn(shard int, labels []string, props map[string]value.Value) (NodeID, error) {
	tx, err := bt.ShardTx(shard)
	if err != nil {
		return 0, err
	}
	return tx.CreateNode(labels, props)
}

// CreateRel creates a relationship between two nodes of the spanned
// shards. Endpoints in the same shard produce an ordinary intra-shard
// relationship; endpoints in different shards produce a knowledge bridge —
// one identifier (allocated from the start node's shard), one half stored
// in each shard, so traversal works from both sides.
func (bt *BridgeTx) CreateRel(start, end NodeID, typ string, props map[string]value.Value) (RelID, error) {
	if bt.done {
		return 0, ErrBridgeTxDone
	}
	sTx, err := bt.txForNode(start)
	if err != nil {
		return 0, err
	}
	eTx, err := bt.txForNode(end)
	if err != nil {
		return 0, err
	}
	if !sTx.NodeExists(start) {
		return 0, fmtErrNode(start)
	}
	if !eTx.NodeExists(end) {
		return 0, fmtErrNode(end)
	}
	if sTx == eTx {
		return sTx.CreateRel(start, end, typ, props)
	}
	// Bridge: allocate from the home (start) shard's band, then install one
	// half per shard under that identifier.
	sTx.view.nextRel++
	id := sTx.view.nextRel
	if err := sTx.createBridgeHalf(id, start, end, typ, props); err != nil {
		return 0, err
	}
	if err := eTx.createBridgeHalf(id, start, end, typ, props); err != nil {
		return 0, err
	}
	return id, nil
}

// DeleteRel deletes a relationship; a bridge loses both halves.
func (bt *BridgeTx) DeleteRel(id RelID) error {
	if bt.done {
		return ErrBridgeTxDone
	}
	home, err := bt.ShardTx(ShardOfRel(id))
	if err != nil {
		return err
	}
	if err := home.DeleteRel(id); err != nil {
		return err
	}
	other := bt.lo
	if other == home {
		other = bt.hi
	}
	if _, ok := other.view.rels[id]; ok {
		return other.DeleteRel(id)
	}
	return nil
}

// DeleteNode deletes a node, routed to its shard. With detach, incident
// bridge relationships lose both halves (the mirror in the peer shard is
// deleted too, which is why bridge-connected nodes must be deleted through
// a BridgeTx spanning their peers, not a single-shard transaction).
func (bt *BridgeTx) DeleteNode(id NodeID, detach bool) error {
	if bt.done {
		return ErrBridgeTxDone
	}
	tx, err := bt.txForNode(id)
	if err != nil {
		return err
	}
	if detach {
		other := bt.lo
		if other == tx {
			other = bt.hi
		}
		for _, r := range tx.RelsOf(id, Both, nil) {
			if _, ok := other.view.rels[r.ID]; ok {
				if err := other.DeleteRel(r.ID); err != nil {
					return err
				}
			}
		}
	}
	return tx.DeleteNode(id, detach)
}

// SetNodeProp assigns a property on a node, routed to its shard.
func (bt *BridgeTx) SetNodeProp(id NodeID, key string, v value.Value) error {
	tx, err := bt.txForNode(id)
	if err != nil {
		return err
	}
	return tx.SetNodeProp(id, key, v)
}

// SetLabel adds a label to a node, routed to its shard.
func (bt *BridgeTx) SetLabel(id NodeID, label string) error {
	tx, err := bt.txForNode(id)
	if err != nil {
		return err
	}
	return tx.SetLabel(id, label)
}

// Node returns a snapshot of the node, routed to its shard.
func (bt *BridgeTx) Node(id NodeID) (Node, bool) {
	tx, err := bt.txForNode(id)
	if err != nil {
		return Node{}, false
	}
	return tx.Node(id)
}

// Rel returns a snapshot of the relationship from its home shard.
func (bt *BridgeTx) Rel(id RelID) (Rel, bool) {
	tx, err := bt.ShardTx(ShardOfRel(id))
	if err != nil {
		return Rel{}, false
	}
	return tx.Rel(id)
}

// Rollback discards both shards' working copies and releases both locks.
// Calling it after Commit (or twice) is a no-op.
func (bt *BridgeTx) Rollback() {
	if bt.done {
		return
	}
	bt.done = true
	bt.hi.Rollback()
	bt.lo.Rollback()
}

// Commit finishes the bridge transaction: both shards' validators run,
// then seal (if non-nil) runs while both write locks are still held — the
// durable engine appends its prepare record to the higher shard's log and
// its commit record to the lower shard's log there, and waits for both to
// reach stable storage, so by the time either snapshot is visible the
// bridge outcome is decided — and finally both working copies are
// published and the locks released (higher shard first). An error from a
// validator or from seal rolls the whole transaction back. Publication of
// the two snapshots is not a single atomic step: an independent View may
// briefly see the bridge in one shard and not the other; BarrierView sees
// either both or neither.
func (bt *BridgeTx) Commit(seal func(lo, hi *Tx) error) error {
	if bt.done {
		return ErrBridgeTxDone
	}
	for _, tx := range []*Tx{bt.lo, bt.hi} {
		if err := tx.preCommitChecks(); err != nil {
			bt.Rollback()
			return err
		}
	}
	if seal != nil {
		if err := seal(bt.lo, bt.hi); err != nil {
			bt.Rollback()
			return fmt.Errorf("graph: bridge seal: %w", err)
		}
	}
	bt.done = true
	dHi := bt.hi.publishAndUnlock()
	dLo := bt.lo.publishAndUnlock()
	var errs []error
	for _, fn := range append(dLo, dHi...) {
		if err := fn(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// preCommitChecks runs the commit-time gates of Tx.Commit — follower mode
// and validators — without the hook, publication or lock release, so a
// two-shard commit can check both sides before either publishes.
func (tx *Tx) preCommitChecks() error {
	if tx.done {
		return ErrTxDone
	}
	if tx.apply {
		return nil
	}
	if tx.s.follower.Load() {
		return ErrFollowerStore
	}
	if vs := tx.s.validators.Load(); vs != nil {
		for _, v := range *vs {
			if err := v(tx); err != nil {
				return err
			}
		}
	}
	return nil
}

// publishAndUnlock is the tail of Tx.Commit for one side of a bridge
// commit: publish the working copy (if anything was written), record
// metrics, release the write lock, and hand back the deferred OnCommitted
// callbacks for the bridge to run once both shards are published.
func (tx *Tx) publishAndUnlock() []func() error {
	tx.done = true
	if tx.w.wrote {
		tx.s.snap.Store(tx.view)
		tx.metrics.SnapshotsPublished.Inc()
	}
	tx.metrics.TxCommits.Inc()
	if !tx.start.IsZero() {
		tx.metrics.TxSeconds.ObserveSince(tx.start)
	}
	tx.s.writeMu.Unlock()
	d := tx.deferred
	tx.deferred = nil
	return d
}
