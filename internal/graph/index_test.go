package graph

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestIndexCreateAndLookup(t *testing.T) {
	s := NewStore()
	var ids []NodeID
	_ = s.Update(func(tx *Tx) error {
		for i := 0; i < 10; i++ {
			id := mustCreateNode(t, tx, []string{"Region"},
				map[string]value.Value{"name": value.Str(string(rune('a' + i)))})
			ids = append(ids, id)
		}
		return nil
	})
	if err := s.CreateIndex("Region", "name"); err != nil {
		t.Fatal(err)
	}
	_ = s.View(func(tx *Tx) error {
		if !tx.HasIndex("Region", "name") {
			t.Error("HasIndex")
		}
		got, ok := tx.NodesByProp("Region", "name", value.Str("c"))
		if !ok || len(got) != 1 || got[0] != ids[2] {
			t.Errorf("lookup = %v ok=%v", got, ok)
		}
		if got, ok := tx.NodesByProp("Region", "name", value.Str("zz")); !ok || len(got) != 0 {
			t.Error("lookup of absent value should be empty but indexed")
		}
		if _, ok := tx.NodesByProp("Region", "other", value.Str("c")); ok {
			t.Error("unindexed prop should report no index")
		}
		return nil
	})
}

func TestIndexMaintainedOnMutations(t *testing.T) {
	s := NewStore()
	if err := s.CreateIndex("P", "k"); err != nil {
		t.Fatal(err)
	}
	var id NodeID
	lookup := func(v value.Value) int {
		var n int
		_ = s.View(func(tx *Tx) error {
			got, _ := tx.NodesByProp("P", "k", v)
			n = len(got)
			return nil
		})
		return n
	}
	// Created after the index exists.
	_ = s.Update(func(tx *Tx) error {
		id = mustCreateNode(t, tx, []string{"P"}, map[string]value.Value{"k": value.Int(1)})
		return nil
	})
	if lookup(value.Int(1)) != 1 {
		t.Error("insert should index")
	}
	// Property update moves the entry.
	_ = s.Update(func(tx *Tx) error { return tx.SetNodeProp(id, "k", value.Int(2)) })
	if lookup(value.Int(1)) != 0 || lookup(value.Int(2)) != 1 {
		t.Error("update should move index entry")
	}
	// Property removal clears it.
	_ = s.Update(func(tx *Tx) error { return tx.RemoveNodeProp(id, "k") })
	if lookup(value.Int(2)) != 0 {
		t.Error("removal should unindex")
	}
	// Re-add, then delete the node.
	_ = s.Update(func(tx *Tx) error { return tx.SetNodeProp(id, "k", value.Int(3)) })
	_ = s.Update(func(tx *Tx) error { return tx.DeleteNode(id, false) })
	if lookup(value.Int(3)) != 0 {
		t.Error("node delete should unindex")
	}
}

func TestIndexMaintainedOnLabelChanges(t *testing.T) {
	s := NewStore()
	if err := s.CreateIndex("L", "k"); err != nil {
		t.Fatal(err)
	}
	var id NodeID
	_ = s.Update(func(tx *Tx) error {
		id = mustCreateNode(t, tx, []string{"Other"}, map[string]value.Value{"k": value.Int(7)})
		return nil
	})
	count := func() int {
		var n int
		_ = s.View(func(tx *Tx) error {
			got, _ := tx.NodesByProp("L", "k", value.Int(7))
			n = len(got)
			return nil
		})
		return n
	}
	if count() != 0 {
		t.Error("node without label must not be indexed")
	}
	_ = s.Update(func(tx *Tx) error { return tx.SetLabel(id, "L") })
	if count() != 1 {
		t.Error("gaining the label should index existing property")
	}
	_ = s.Update(func(tx *Tx) error { return tx.RemoveLabel(id, "L") })
	if count() != 0 {
		t.Error("losing the label should unindex")
	}
}

func TestIndexRollback(t *testing.T) {
	s := NewStore()
	if err := s.CreateIndex("L", "k"); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin(ReadWrite)
	id, _ := tx.CreateNode([]string{"L"}, map[string]value.Value{"k": value.Int(5)})
	_ = id
	tx.Rollback()
	_ = s.View(func(tx *Tx) error {
		got, _ := tx.NodesByProp("L", "k", value.Int(5))
		if len(got) != 0 {
			t.Error("rollback must clean index entries")
		}
		return nil
	})
}

func TestIndexDuplicateAndDrop(t *testing.T) {
	s := NewStore()
	if err := s.CreateIndex("A", "p"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("A", "p"); !errors.Is(err, ErrIndexExists) {
		t.Errorf("duplicate index: %v", err)
	}
	if err := s.DropIndex("A", "p"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropIndex("A", "p"); !errors.Is(err, ErrIndexNotFound) {
		t.Errorf("drop missing index: %v", err)
	}
}

func TestIndexBackfillsExistingNodes(t *testing.T) {
	s := NewStore()
	_ = s.Update(func(tx *Tx) error {
		for i := 0; i < 5; i++ {
			mustCreateNode(t, tx, []string{"B"}, map[string]value.Value{"v": value.Int(int64(i % 2))})
		}
		return nil
	})
	if err := s.CreateIndex("B", "v"); err != nil {
		t.Fatal(err)
	}
	_ = s.View(func(tx *Tx) error {
		zeros, _ := tx.NodesByProp("B", "v", value.Int(0))
		ones, _ := tx.NodesByProp("B", "v", value.Int(1))
		if len(zeros) != 3 || len(ones) != 2 {
			t.Errorf("backfill: zeros=%d ones=%d", len(zeros), len(ones))
		}
		return nil
	})
}

// Property: after an arbitrary sequence of set/remove operations, an index
// lookup agrees with a full scan.
func TestPropIndexAgreesWithScan(t *testing.T) {
	type op struct {
		Node uint8
		Val  int8
		Del  bool
	}
	f := func(ops []op) bool {
		s := NewStore()
		if err := s.CreateIndex("N", "v"); err != nil {
			return false
		}
		ids := make(map[uint8]NodeID)
		err := s.Update(func(tx *Tx) error {
			for _, o := range ops {
				id, ok := ids[o.Node%8]
				if !ok {
					var err error
					id, err = tx.CreateNode([]string{"N"}, nil)
					if err != nil {
						return err
					}
					ids[o.Node%8] = id
				}
				if o.Del {
					if err := tx.RemoveNodeProp(id, "v"); err != nil {
						return err
					}
				} else if err := tx.SetNodeProp(id, "v", value.Int(int64(o.Val%4))); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return false
		}
		ok := true
		_ = s.View(func(tx *Tx) error {
			for v := int64(-4); v <= 4; v++ {
				indexed, has := tx.NodesByProp("N", "v", value.Int(v))
				if !has {
					ok = false
					return nil
				}
				var scanned int
				for _, id := range tx.NodesByLabel("N") {
					if pv, got := tx.NodeProp(id, "v"); got && value.SameValue(pv, value.Int(v)) {
						scanned++
					}
				}
				if len(indexed) != scanned {
					ok = false
					return nil
				}
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
