package graph

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/value"
)

// exportDoc is the on-disk JSON document shape.
type exportDoc struct {
	Format   string       `json:"format"`
	Nodes    []exportNode `json:"nodes"`
	Rels     []exportRel  `json:"relationships"`
	NextNode int64        `json:"nextNode"`
	NextRel  int64        `json:"nextRel"`
}

type exportNode struct {
	ID     int64          `json:"id"`
	Labels []string       `json:"labels,omitempty"`
	Props  map[string]any `json:"props,omitempty"`
}

type exportRel struct {
	ID    int64          `json:"id"`
	Type  string         `json:"type"`
	Start int64          `json:"start"`
	End   int64          `json:"end"`
	Props map[string]any `json:"props,omitempty"`
}

// exportFormat tags the document version.
const exportFormat = "reactive-graph/v1"

// Export writes the store's content (nodes, relationships, identifier
// counters — not indexes or validators, which are configuration) as JSON.
// The output is deterministic: entities are ordered by identifier and keys
// sort lexicographically, so two stores with equal content export
// byte-identical documents.
func (s *Store) Export(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.exportLocked(w)
}

// Export writes the store's content as seen by the transaction. It is the
// in-transaction variant of Store.Export, used by checkpointing to snapshot
// the store consistently with the write-ahead-log position while the
// transaction's lock excludes concurrent commits.
func (tx *Tx) Export(w io.Writer) error {
	if tx.done {
		return ErrTxDone
	}
	return tx.s.exportLocked(w)
}

func (s *Store) exportLocked(w io.Writer) error {
	doc := exportDoc{
		Format:   exportFormat,
		NextNode: int64(s.nextNode),
		NextRel:  int64(s.nextRel),
	}
	nodeIDs := make([]NodeID, 0, len(s.nodes))
	for id := range s.nodes {
		nodeIDs = append(nodeIDs, id)
	}
	sort.Slice(nodeIDs, func(i, j int) bool { return nodeIDs[i] < nodeIDs[j] })
	for _, id := range nodeIDs {
		rec := s.nodes[id]
		en := exportNode{ID: int64(id)}
		for l := range rec.labels {
			en.Labels = append(en.Labels, l)
		}
		sortStrings(en.Labels)
		if len(rec.props) > 0 {
			en.Props = make(map[string]any, len(rec.props))
			for k, v := range rec.props {
				en.Props[k] = value.ToJSON(v)
			}
		}
		doc.Nodes = append(doc.Nodes, en)
	}
	relIDs := make([]RelID, 0, len(s.rels))
	for id := range s.rels {
		relIDs = append(relIDs, id)
	}
	sort.Slice(relIDs, func(i, j int) bool { return relIDs[i] < relIDs[j] })
	for _, id := range relIDs {
		rec := s.rels[id]
		er := exportRel{
			ID: int64(id), Type: rec.typ,
			Start: int64(rec.start.id), End: int64(rec.end.id),
		}
		if len(rec.props) > 0 {
			er.Props = make(map[string]any, len(rec.props))
			for k, v := range rec.props {
				er.Props[k] = value.ToJSON(v)
			}
		}
		doc.Rels = append(doc.Rels, er)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// Import loads a document produced by Export into the store, which must be
// empty. Identifiers are preserved; indexes already created on the store
// are populated as nodes arrive. Validators do NOT run during import (the
// data was valid when exported); subsequent transactions are validated as
// usual.
func (s *Store) Import(r io.Reader) error {
	var doc exportDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("graph: import: %w", err)
	}
	if doc.Format != exportFormat {
		return fmt.Errorf("graph: import: unknown format %q", doc.Format)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.nodes) != 0 || len(s.rels) != 0 {
		return fmt.Errorf("graph: import requires an empty store")
	}
	for _, en := range doc.Nodes {
		rec := &nodeRec{
			id:     NodeID(en.ID),
			labels: make(map[string]struct{}, len(en.Labels)),
			props:  make(map[string]value.Value, len(en.Props)),
			out:    make(map[RelID]*relRec),
			in:     make(map[RelID]*relRec),
		}
		for _, l := range en.Labels {
			rec.labels[l] = struct{}{}
			s.labelSet(l)[rec.id] = struct{}{}
		}
		for k, raw := range en.Props {
			v, err := value.FromJSON(raw)
			if err != nil {
				return fmt.Errorf("graph: import node %d prop %s: %w", en.ID, k, err)
			}
			if !v.IsNull() {
				rec.props[k] = v
			}
		}
		s.nodes[rec.id] = rec
		for k, v := range rec.props {
			s.indexInsertNode(rec, k, v)
		}
	}
	for _, er := range doc.Rels {
		start, ok := s.nodes[NodeID(er.Start)]
		if !ok {
			return fmt.Errorf("graph: import rel %d: start node %d missing", er.ID, er.Start)
		}
		end, ok := s.nodes[NodeID(er.End)]
		if !ok {
			return fmt.Errorf("graph: import rel %d: end node %d missing", er.ID, er.End)
		}
		rec := &relRec{
			id: RelID(er.ID), typ: er.Type, start: start, end: end,
			props: make(map[string]value.Value, len(er.Props)),
		}
		for k, raw := range er.Props {
			v, err := value.FromJSON(raw)
			if err != nil {
				return fmt.Errorf("graph: import rel %d prop %s: %w", er.ID, k, err)
			}
			if !v.IsNull() {
				rec.props[k] = v
			}
		}
		s.rels[rec.id] = rec
		start.out[rec.id] = rec
		end.in[rec.id] = rec
		s.relTypeSet(rec.typ)[rec.id] = struct{}{}
	}
	s.nextNode = NodeID(doc.NextNode)
	s.nextRel = RelID(doc.NextRel)
	for _, en := range doc.Nodes {
		if NodeID(en.ID) > s.nextNode {
			s.nextNode = NodeID(en.ID)
		}
	}
	for _, er := range doc.Rels {
		if RelID(er.ID) > s.nextRel {
			s.nextRel = RelID(er.ID)
		}
	}
	return nil
}
