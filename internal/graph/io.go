package graph

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/value"
)

// exportDoc is the on-disk JSON document shape.
type exportDoc struct {
	Format   string       `json:"format"`
	Nodes    []exportNode `json:"nodes"`
	Rels     []exportRel  `json:"relationships"`
	NextNode int64        `json:"nextNode"`
	NextRel  int64        `json:"nextRel"`
}

type exportNode struct {
	ID     int64          `json:"id"`
	Labels []string       `json:"labels,omitempty"`
	Props  map[string]any `json:"props,omitempty"`
}

type exportRel struct {
	ID    int64          `json:"id"`
	Type  string         `json:"type"`
	Start int64          `json:"start"`
	End   int64          `json:"end"`
	Props map[string]any `json:"props,omitempty"`
}

// exportFormat tags the document version.
const exportFormat = "reactive-graph/v1"

// Export writes the store's content (nodes, relationships, identifier
// counters — not indexes or validators, which are configuration) as JSON.
// The output is deterministic: entities are ordered by identifier and keys
// sort lexicographically, so two stores with equal content export
// byte-identical documents. Export reads the committed snapshot lock-free
// and never blocks a writer, however large the store.
func (s *Store) Export(w io.Writer) error {
	return s.snap.Load().export(w)
}

// Export writes the store's content as seen by the transaction: a
// read-write transaction exports its own uncommitted state, a read-only
// transaction its pinned snapshot. Checkpointing pairs a SnapshotView with
// the write-ahead-log position and exports from it after the write lock is
// released.
func (tx *Tx) Export(w io.Writer) error {
	if tx.done {
		return ErrTxDone
	}
	return tx.view.export(w)
}

func (sn *snapshot) export(w io.Writer) error {
	doc := exportDoc{
		Format:   exportFormat,
		NextNode: int64(sn.nextNode),
		NextRel:  int64(sn.nextRel),
	}
	nodeIDs := make([]NodeID, 0, len(sn.nodes))
	for id := range sn.nodes {
		nodeIDs = append(nodeIDs, id)
	}
	sort.Slice(nodeIDs, func(i, j int) bool { return nodeIDs[i] < nodeIDs[j] })
	for _, id := range nodeIDs {
		rec := sn.nodes[id]
		en := exportNode{ID: int64(id)}
		for l := range rec.labels {
			en.Labels = append(en.Labels, l)
		}
		sort.Strings(en.Labels)
		if len(rec.props) > 0 {
			en.Props = make(map[string]any, len(rec.props))
			for k, v := range rec.props {
				en.Props[k] = value.ToJSON(v)
			}
		}
		doc.Nodes = append(doc.Nodes, en)
	}
	relIDs := make([]RelID, 0, len(sn.rels))
	for id := range sn.rels {
		relIDs = append(relIDs, id)
	}
	sort.Slice(relIDs, func(i, j int) bool { return relIDs[i] < relIDs[j] })
	for _, id := range relIDs {
		rec := sn.rels[id]
		er := exportRel{
			ID: int64(id), Type: rec.typ,
			Start: int64(rec.start), End: int64(rec.end),
		}
		if len(rec.props) > 0 {
			er.Props = make(map[string]any, len(rec.props))
			for k, v := range rec.props {
				er.Props[k] = value.ToJSON(v)
			}
		}
		doc.Rels = append(doc.Rels, er)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// Import loads a document produced by Export into the store, which must be
// empty. Identifiers are preserved; indexes already created on the store
// are populated as nodes arrive. Validators do NOT run during import (the
// data was valid when exported); subsequent transactions are validated as
// usual. The document is assembled into a private snapshot and published
// atomically, so on error the store is left unchanged and concurrent
// readers never observe a partial import.
func (s *Store) Import(r io.Reader) error {
	var doc exportDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("graph: import: %w", err)
	}
	if doc.Format != exportFormat {
		return fmt.Errorf("graph: import: unknown format %q", doc.Format)
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	base := s.snap.Load()
	if len(base.nodes) != 0 || len(base.rels) != 0 {
		return fmt.Errorf("graph: import requires an empty store")
	}
	next := emptySnapshot()
	for key := range base.indexes {
		next.indexes[key] = &propIndex{byValue: make(map[string]map[NodeID]struct{})}
	}
	for _, en := range doc.Nodes {
		rec := &nodeRec{
			id:     NodeID(en.ID),
			labels: make(map[string]struct{}, len(en.Labels)),
			props:  make(map[string]value.Value, len(en.Props)),
			out:    make(map[RelID]*relRec),
			in:     make(map[RelID]*relRec),
		}
		for _, l := range en.Labels {
			rec.labels[l] = struct{}{}
			next.labelSet(l)[rec.id] = struct{}{}
		}
		for k, raw := range en.Props {
			v, err := value.FromJSON(raw)
			if err != nil {
				return fmt.Errorf("graph: import node %d prop %s: %w", en.ID, k, err)
			}
			if !v.IsNull() {
				rec.props[k] = v
			}
		}
		next.nodes[rec.id] = rec
		for k, v := range rec.props {
			next.indexInsertNode(rec, k, v)
		}
	}
	for _, er := range doc.Rels {
		// A bridge half-relationship (exported from one shard of a sharded
		// store) has one endpoint in another shard: tolerate a single missing
		// endpoint and attach adjacency only on the locally present ones.
		start, hasStart := next.nodes[NodeID(er.Start)]
		end, hasEnd := next.nodes[NodeID(er.End)]
		if !hasStart && !hasEnd {
			return fmt.Errorf("graph: import rel %d: both endpoints (%d, %d) missing", er.ID, er.Start, er.End)
		}
		rec := &relRec{
			id: RelID(er.ID), typ: er.Type, start: NodeID(er.Start), end: NodeID(er.End),
			props: make(map[string]value.Value, len(er.Props)),
		}
		for k, raw := range er.Props {
			v, err := value.FromJSON(raw)
			if err != nil {
				return fmt.Errorf("graph: import rel %d prop %s: %w", er.ID, k, err)
			}
			if !v.IsNull() {
				rec.props[k] = v
			}
		}
		next.rels[rec.id] = rec
		if hasStart {
			start.out[rec.id] = rec
		}
		if hasEnd {
			end.in[rec.id] = rec
		}
		next.relTypeSet(rec.typ)[rec.id] = struct{}{}
	}
	next.nextNode = NodeID(doc.NextNode)
	next.nextRel = RelID(doc.NextRel)
	// The document's own counters fix the store's allocation band; raising a
	// counter past an imported identifier must stay inside it. A shard's
	// export can contain bridge mirror halves whose identifiers belong to the
	// peer shard's band — letting one of those raise nextRel would drag the
	// counter into a foreign band and corrupt every later allocation (and
	// trip AttachShards' band check on reopen). Those foreign-band records
	// are exactly the mirror halves, so the same band test rebuilds the
	// mirrorRels counter.
	band := ShardOfRel(next.nextRel)
	for _, en := range doc.Nodes {
		if id := NodeID(en.ID); ShardOfNode(id) == ShardOfNode(next.nextNode) && id > next.nextNode {
			next.nextNode = id
		}
	}
	for _, er := range doc.Rels {
		id := RelID(er.ID)
		if ShardOfRel(id) != band {
			next.mirrorRels++
			continue
		}
		if id > next.nextRel {
			next.nextRel = id
		}
	}
	s.snap.Store(next)
	s.metrics.Load().SnapshotsPublished.Inc()
	return nil
}
