package graph

import (
	"errors"
	"testing"

	"repro/internal/value"
)

func TestFollowerModeRejectsOrdinaryWrites(t *testing.T) {
	s := NewStore()
	if err := s.Update(func(tx *Tx) error {
		_, err := tx.CreateNode([]string{"Seed"}, nil)
		return err
	}); err != nil {
		t.Fatalf("seed: %v", err)
	}
	s.SetFollowerMode(true)
	if !s.FollowerMode() {
		t.Fatal("FollowerMode not set")
	}

	err := s.Update(func(tx *Tx) error {
		_, err := tx.CreateNode([]string{"X"}, nil)
		return err
	})
	if !errors.Is(err, ErrFollowerStore) {
		t.Fatalf("ordinary write on follower: err = %v, want ErrFollowerStore", err)
	}
	if s.Stats().Nodes != 1 {
		t.Fatalf("rejected write leaked: %d nodes", s.Stats().Nodes)
	}

	// Reads stay open.
	if err := s.View(func(tx *Tx) error {
		if _, ok := tx.Node(NodeID(1)); !ok {
			return errors.New("seed node missing")
		}
		return nil
	}); err != nil {
		t.Fatalf("read on follower: %v", err)
	}
}

func TestBeginApplyBypassesFollowerGateAndValidators(t *testing.T) {
	s := NewStore()
	s.AddValidator(func(tx *Tx) error {
		return errors.New("validator must not run on apply")
	})
	s.SetFollowerMode(true)

	tx := s.BeginApply()
	if _, err := tx.CreateNode([]string{"Replicated"}, map[string]value.Value{"i": value.Int(1)}); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("apply commit: %v", err)
	}
	if s.LabelCount("Replicated") != 1 {
		t.Fatal("applied node missing")
	}
}
