package graph

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/value"
)

func mustCreateNode(t *testing.T, tx *Tx, labels []string, props map[string]value.Value) NodeID {
	t.Helper()
	id, err := tx.CreateNode(labels, props)
	if err != nil {
		t.Fatalf("CreateNode: %v", err)
	}
	return id
}

func mustCreateRel(t *testing.T, tx *Tx, start, end NodeID, typ string) RelID {
	t.Helper()
	id, err := tx.CreateRel(start, end, typ, nil)
	if err != nil {
		t.Fatalf("CreateRel: %v", err)
	}
	return id
}

func TestCreateAndReadNode(t *testing.T) {
	s := NewStore()
	tx := s.Begin(ReadWrite)
	defer tx.Rollback()
	id := mustCreateNode(t, tx, []string{"Person", "Patient"},
		map[string]value.Value{"name": value.Str("Ada"), "age": value.Int(36)})
	n, ok := tx.Node(id)
	if !ok {
		t.Fatal("node should exist")
	}
	if len(n.Labels) != 2 || n.Labels[0] != "Patient" || n.Labels[1] != "Person" {
		t.Errorf("labels = %v", n.Labels)
	}
	if !n.HasLabel("Person") || n.HasLabel("Robot") {
		t.Error("HasLabel")
	}
	if v, ok := tx.NodeProp(id, "name"); !ok || !value.SameValue(v, value.Str("Ada")) {
		t.Error("name prop")
	}
	if _, ok := tx.NodeProp(id, "missing"); ok {
		t.Error("missing prop should not exist")
	}
	if !tx.NodeHasLabel(id, "Patient") {
		t.Error("NodeHasLabel")
	}
	if keys := tx.NodePropKeys(id); len(keys) != 2 || keys[0] != "age" {
		t.Errorf("prop keys = %v", keys)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Nodes; got != 1 {
		t.Errorf("store has %d nodes, want 1", got)
	}
}

func TestNullPropsNotStored(t *testing.T) {
	s := NewStore()
	_ = s.Update(func(tx *Tx) error {
		id := mustCreateNode(t, tx, []string{"N"},
			map[string]value.Value{"a": value.Null, "b": value.Int(1)})
		if _, ok := tx.NodeProp(id, "a"); ok {
			t.Error("null property should not be stored")
		}
		return nil
	})
}

func TestRollbackUndoesEverything(t *testing.T) {
	s := NewStore()
	var keep NodeID
	_ = s.Update(func(tx *Tx) error {
		keep = mustCreateNode(t, tx, []string{"Keep"}, map[string]value.Value{"v": value.Int(1)})
		return nil
	})

	tx := s.Begin(ReadWrite)
	n1 := mustCreateNode(t, tx, []string{"Temp"}, nil)
	mustCreateRel(t, tx, keep, n1, "REL")
	if err := tx.SetNodeProp(keep, "v", value.Int(2)); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetLabel(keep, "Extra"); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()

	err := s.View(func(tx *Tx) error {
		if tx.NodeCount() != 1 || tx.RelCount() != 0 {
			t.Errorf("rollback left %d nodes %d rels", tx.NodeCount(), tx.RelCount())
		}
		if v, _ := tx.NodeProp(keep, "v"); !value.SameValue(v, value.Int(1)) {
			t.Error("property not restored")
		}
		if tx.NodeHasLabel(keep, "Extra") {
			t.Error("label not removed on rollback")
		}
		if len(tx.NodesByLabel("Temp")) != 0 {
			t.Error("label index not cleaned")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeleteNodeRequiresDetach(t *testing.T) {
	s := NewStore()
	var a, b NodeID
	_ = s.Update(func(tx *Tx) error {
		a = mustCreateNode(t, tx, []string{"A"}, nil)
		b = mustCreateNode(t, tx, []string{"B"}, nil)
		mustCreateRel(t, tx, a, b, "R")
		return nil
	})
	err := s.Update(func(tx *Tx) error { return tx.DeleteNode(a, false) })
	if !errors.Is(err, ErrHasRels) {
		t.Errorf("expected ErrHasRels, got %v", err)
	}
	if err := s.Update(func(tx *Tx) error { return tx.DeleteNode(a, true) }); err != nil {
		t.Fatalf("detach delete: %v", err)
	}
	_ = s.View(func(tx *Tx) error {
		if tx.NodeCount() != 1 || tx.RelCount() != 0 {
			t.Error("detach delete should remove node and rels")
		}
		if tx.Degree(b, Both) != 0 {
			t.Error("remaining node should have no rels")
		}
		return nil
	})
}

func TestRelTraversal(t *testing.T) {
	s := NewStore()
	var hub, s1, s2, s3 NodeID
	_ = s.Update(func(tx *Tx) error {
		hub = mustCreateNode(t, tx, []string{"Hub"}, nil)
		s1 = mustCreateNode(t, tx, []string{"Spoke"}, nil)
		s2 = mustCreateNode(t, tx, []string{"Spoke"}, nil)
		s3 = mustCreateNode(t, tx, []string{"Spoke"}, nil)
		mustCreateRel(t, tx, hub, s1, "LINKS")
		mustCreateRel(t, tx, hub, s2, "LINKS")
		mustCreateRel(t, tx, s3, hub, "FEEDS")
		return nil
	})
	_ = s.View(func(tx *Tx) error {
		if got := len(tx.RelsOf(hub, Outgoing, nil)); got != 2 {
			t.Errorf("outgoing = %d, want 2", got)
		}
		if got := len(tx.RelsOf(hub, Incoming, nil)); got != 1 {
			t.Errorf("incoming = %d, want 1", got)
		}
		if got := len(tx.RelsOf(hub, Both, nil)); got != 3 {
			t.Errorf("both = %d, want 3", got)
		}
		if got := len(tx.RelsOf(hub, Both, []string{"LINKS"})); got != 2 {
			t.Errorf("typed both = %d, want 2", got)
		}
		if got := len(tx.RelsOf(hub, Outgoing, []string{"FEEDS"})); got != 0 {
			t.Errorf("typed outgoing = %d, want 0", got)
		}
		if tx.Degree(hub, Both) != 3 || tx.Degree(hub, Outgoing) != 2 || tx.Degree(hub, Incoming) != 1 {
			t.Error("degree mismatch")
		}
		rels := tx.RelsOf(s1, Incoming, nil)
		if len(rels) != 1 || rels[0].Other(s1) != hub {
			t.Error("Other endpoint")
		}
		return nil
	})
}

func TestSelfLoopCountedOnce(t *testing.T) {
	s := NewStore()
	var n NodeID
	_ = s.Update(func(tx *Tx) error {
		n = mustCreateNode(t, tx, []string{"N"}, nil)
		mustCreateRel(t, tx, n, n, "SELF")
		return nil
	})
	_ = s.View(func(tx *Tx) error {
		if got := len(tx.RelsOf(n, Both, nil)); got != 1 {
			t.Errorf("self loop reported %d times, want 1", got)
		}
		if tx.Degree(n, Both) != 1 {
			t.Errorf("self loop degree = %d, want 1", tx.Degree(n, Both))
		}
		return nil
	})
}

func TestLabelIndexMaintained(t *testing.T) {
	s := NewStore()
	var id NodeID
	_ = s.Update(func(tx *Tx) error {
		id = mustCreateNode(t, tx, []string{"A"}, nil)
		return nil
	})
	_ = s.Update(func(tx *Tx) error {
		if err := tx.SetLabel(id, "B"); err != nil {
			return err
		}
		return tx.RemoveLabel(id, "A")
	})
	_ = s.View(func(tx *Tx) error {
		if len(tx.NodesByLabel("A")) != 0 {
			t.Error("A index should be empty")
		}
		if got := tx.NodesByLabel("B"); len(got) != 1 || got[0] != id {
			t.Error("B index should contain node")
		}
		if tx.CountByLabel("B") != 1 {
			t.Error("CountByLabel")
		}
		return nil
	})
}

func TestSetLabelIdempotent(t *testing.T) {
	s := NewStore()
	_ = s.Update(func(tx *Tx) error {
		id := mustCreateNode(t, tx, []string{"A"}, nil)
		if err := tx.SetLabel(id, "A"); err != nil {
			return err
		}
		if len(tx.Data().AssignedLabels) != 0 {
			t.Error("re-adding existing label should record no change")
		}
		if err := tx.RemoveLabel(id, "Z"); err != nil {
			return err
		}
		if len(tx.Data().RemovedLabels) != 0 {
			t.Error("removing absent label should record no change")
		}
		return nil
	})
}

func TestPropSetNullRemoves(t *testing.T) {
	s := NewStore()
	var id NodeID
	_ = s.Update(func(tx *Tx) error {
		id = mustCreateNode(t, tx, []string{"N"}, map[string]value.Value{"p": value.Int(1)})
		return nil
	})
	_ = s.Update(func(tx *Tx) error {
		if err := tx.SetNodeProp(id, "p", value.Null); err != nil {
			return err
		}
		if _, ok := tx.NodeProp(id, "p"); ok {
			t.Error("SET p = null should remove")
		}
		d := tx.Data()
		if len(d.RemovedProps) != 1 || len(d.AssignedProps) != 0 {
			t.Error("removal should be recorded as RemovedProps")
		}
		if !value.SameValue(d.RemovedProps[0].Old, value.Int(1)) {
			t.Error("old value recorded")
		}
		return nil
	})
}

func TestTxDataRecordsChanges(t *testing.T) {
	s := NewStore()
	tx := s.Begin(ReadWrite)
	defer tx.Rollback()
	a := mustCreateNode(t, tx, []string{"A"}, nil)
	b := mustCreateNode(t, tx, []string{"B"}, nil)
	r := mustCreateRel(t, tx, a, b, "R")
	_ = tx.SetNodeProp(a, "x", value.Int(1))
	_ = tx.SetNodeProp(a, "x", value.Int(2))
	_ = tx.SetRelProp(r, "w", value.Float(0.5))
	_ = tx.SetLabel(b, "Extra")
	d := tx.Data()
	if len(d.CreatedNodes) != 2 || len(d.CreatedRels) != 1 {
		t.Error("created counts")
	}
	if len(d.AssignedProps) != 3 {
		t.Errorf("assigned props = %d, want 3", len(d.AssignedProps))
	}
	// Second assignment records prior value.
	if !value.SameValue(d.AssignedProps[1].Old, value.Int(1)) {
		t.Error("second assignment should record old value 1")
	}
	if len(d.AssignedLabels) != 1 || d.AssignedLabels[0].Label != "Extra" {
		t.Error("assigned labels")
	}
}

func TestTxDataCompact(t *testing.T) {
	s := NewStore()
	tx := s.Begin(ReadWrite)
	defer tx.Rollback()
	a := mustCreateNode(t, tx, []string{"A"}, nil)
	tmp := mustCreateNode(t, tx, []string{"Tmp"}, nil)
	r := mustCreateRel(t, tx, a, tmp, "R")
	_ = tx.SetNodeProp(tmp, "x", value.Int(1))
	_ = tx.DeleteRel(r)
	_ = tx.DeleteNode(tmp, false)
	d := tx.Data()
	d.Compact()
	if len(d.CreatedNodes) != 1 || d.CreatedNodes[0] != a {
		t.Errorf("compacted created nodes = %v", d.CreatedNodes)
	}
	if len(d.DeletedNodes) != 0 || len(d.CreatedRels) != 0 || len(d.DeletedRels) != 0 {
		t.Error("created+deleted entities should vanish")
	}
	if len(d.AssignedProps) != 0 {
		t.Error("prop changes on vanished node should be dropped")
	}
}

func TestTxDataCompactKeepsPreexistingDeletes(t *testing.T) {
	s := NewStore()
	var id NodeID
	_ = s.Update(func(tx *Tx) error {
		id = mustCreateNode(t, tx, []string{"A"}, map[string]value.Value{"x": value.Int(9)})
		return nil
	})
	_ = s.Update(func(tx *Tx) error {
		_ = tx.SetNodeProp(id, "x", value.Int(10))
		_ = tx.DeleteNode(id, false)
		d := tx.Data()
		d.Compact()
		if len(d.DeletedNodes) != 1 {
			t.Error("pre-existing delete must remain")
		}
		if len(d.AssignedProps) != 0 {
			t.Error("prop change on deleted node should be dropped")
		}
		// Snapshot carries the final pre-delete state.
		if !value.SameValue(d.DeletedNodes[0].Props["x"], value.Int(10)) {
			t.Error("delete snapshot should carry final state")
		}
		return nil
	})
}

func TestTxDataMergeAndEmpty(t *testing.T) {
	a := &TxData{CreatedNodes: []NodeID{1}}
	b := &TxData{CreatedNodes: []NodeID{2}, AssignedLabels: []LabelChange{{Node: 2, Label: "L"}}}
	if a.Empty() || !(&TxData{}).Empty() {
		t.Error("Empty")
	}
	a.Merge(b)
	if len(a.CreatedNodes) != 2 || len(a.AssignedLabels) != 1 {
		t.Error("Merge")
	}
}

func TestValidatorAbortsCommit(t *testing.T) {
	s := NewStore()
	boom := errors.New("constraint violated")
	s.AddValidator(func(tx *Tx) error {
		if len(tx.Data().CreatedNodes) > 1 {
			return boom
		}
		return nil
	})
	if err := s.Update(func(tx *Tx) error {
		mustCreateNode(t, tx, []string{"A"}, nil)
		return nil
	}); err != nil {
		t.Fatalf("single create should pass: %v", err)
	}
	err := s.Update(func(tx *Tx) error {
		mustCreateNode(t, tx, []string{"A"}, nil)
		mustCreateNode(t, tx, []string{"A"}, nil)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("expected validator error, got %v", err)
	}
	if s.Stats().Nodes != 1 {
		t.Errorf("failed commit must roll back; have %d nodes", s.Stats().Nodes)
	}
}

func TestReadOnlyTxRejectsWrites(t *testing.T) {
	s := NewStore()
	tx := s.Begin(ReadOnly)
	defer tx.Rollback()
	if _, err := tx.CreateNode(nil, nil); !errors.Is(err, ErrReadOnly) {
		t.Errorf("expected ErrReadOnly, got %v", err)
	}
	if err := tx.DeleteNode(1, false); !errors.Is(err, ErrReadOnly) {
		t.Errorf("expected ErrReadOnly, got %v", err)
	}
}

func TestTxDoneErrors(t *testing.T) {
	s := NewStore()
	tx := s.Begin(ReadWrite)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("double commit should fail, got %v", err)
	}
	tx.Rollback() // must be a no-op, not panic
	if _, err := tx.CreateNode(nil, nil); !errors.Is(err, ErrTxDone) {
		t.Errorf("write after commit should fail, got %v", err)
	}
}

func TestMissingEntityErrors(t *testing.T) {
	s := NewStore()
	_ = s.Update(func(tx *Tx) error {
		if err := tx.DeleteNode(99, false); !errors.Is(err, ErrNodeNotFound) {
			t.Error("DeleteNode missing")
		}
		if err := tx.DeleteRel(99); !errors.Is(err, ErrRelNotFound) {
			t.Error("DeleteRel missing")
		}
		if _, err := tx.CreateRel(1, 2, "R", nil); !errors.Is(err, ErrNodeNotFound) {
			t.Error("CreateRel missing endpoint")
		}
		if err := tx.SetNodeProp(99, "k", value.Int(1)); !errors.Is(err, ErrNodeNotFound) {
			t.Error("SetNodeProp missing")
		}
		if err := tx.SetRelProp(99, "k", value.Int(1)); !errors.Is(err, ErrRelNotFound) {
			t.Error("SetRelProp missing")
		}
		if err := tx.SetLabel(99, "L"); !errors.Is(err, ErrNodeNotFound) {
			t.Error("SetLabel missing")
		}
		return nil
	})
	_ = s.View(func(tx *Tx) error {
		if _, ok := tx.Node(99); ok {
			t.Error("Node(99) should not exist")
		}
		if _, ok := tx.Rel(99); ok {
			t.Error("Rel(99) should not exist")
		}
		if _, ok := tx.NodeLabels(99); ok {
			t.Error("NodeLabels(99)")
		}
		if tx.NodePropKeys(99) != nil || tx.RelPropKeys(99) != nil {
			t.Error("prop keys of missing entities")
		}
		if _, _, _, ok := tx.RelEndpoints(99); ok {
			t.Error("RelEndpoints(99)")
		}
		return nil
	})
}

func TestRelSnapshotAndEndpoints(t *testing.T) {
	s := NewStore()
	var a, b NodeID
	var r RelID
	_ = s.Update(func(tx *Tx) error {
		a = mustCreateNode(t, tx, []string{"A"}, nil)
		b = mustCreateNode(t, tx, []string{"B"}, nil)
		var err error
		r, err = tx.CreateRel(a, b, "KNOWS", map[string]value.Value{"since": value.Int(2020)})
		return err
	})
	_ = s.View(func(tx *Tx) error {
		rel, ok := tx.Rel(r)
		if !ok || rel.Type != "KNOWS" || rel.Start != a || rel.End != b {
			t.Error("rel snapshot")
		}
		if !value.SameValue(rel.Props["since"], value.Int(2020)) {
			t.Error("rel props")
		}
		if rel.Other(a) != b || rel.Other(b) != a {
			t.Error("rel Other")
		}
		typ, start, end, ok := tx.RelEndpoints(r)
		if !ok || typ != "KNOWS" || start != a || end != b {
			t.Error("RelEndpoints")
		}
		if v, ok := tx.RelProp(r, "since"); !ok || !value.SameValue(v, value.Int(2020)) {
			t.Error("RelProp")
		}
		if keys := tx.RelPropKeys(r); len(keys) != 1 || keys[0] != "since" {
			t.Error("RelPropKeys")
		}
		return nil
	})
}

func TestRelsByTypeIndex(t *testing.T) {
	s := NewStore()
	_ = s.Update(func(tx *Tx) error {
		a := mustCreateNode(t, tx, nil, nil)
		b := mustCreateNode(t, tx, nil, nil)
		mustCreateRel(t, tx, a, b, "X")
		mustCreateRel(t, tx, a, b, "X")
		mustCreateRel(t, tx, a, b, "Y")
		return nil
	})
	_ = s.View(func(tx *Tx) error {
		if len(tx.RelsByType("X")) != 2 || len(tx.RelsByType("Y")) != 1 || len(tx.RelsByType("Z")) != 0 {
			t.Error("RelsByType")
		}
		if len(tx.AllRels()) != 3 || len(tx.AllNodes()) != 2 {
			t.Error("AllRels/AllNodes")
		}
		return nil
	})
}

func TestConcurrentReaders(t *testing.T) {
	s := NewStore()
	_ = s.Update(func(tx *Tx) error {
		for i := 0; i < 100; i++ {
			mustCreateNode(t, tx, []string{"N"}, map[string]value.Value{"i": value.Int(int64(i))})
		}
		return nil
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = s.View(func(tx *Tx) error {
					if tx.NodeCount() != 100 {
						t.Error("reader saw inconsistent count")
					}
					return nil
				})
			}
		}()
	}
	wg.Wait()
}

func TestConcurrentWriters(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_ = s.Update(func(tx *Tx) error {
					_, err := tx.CreateNode([]string{"W"}, nil)
					return err
				})
			}
		}()
	}
	wg.Wait()
	if got := s.Stats().Nodes; got != 100 {
		t.Errorf("nodes = %d, want 100", got)
	}
}

func TestUpdateRollsBackOnError(t *testing.T) {
	s := NewStore()
	boom := errors.New("boom")
	err := s.Update(func(tx *Tx) error {
		if _, err := tx.CreateNode([]string{"X"}, nil); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal("error should propagate")
	}
	if s.Stats().Nodes != 0 {
		t.Error("failed Update must roll back")
	}
}

func TestStatsCountsLabelsAndTypes(t *testing.T) {
	s := NewStore()
	_ = s.Update(func(tx *Tx) error {
		a := mustCreateNode(t, tx, []string{"A", "B"}, nil)
		b := mustCreateNode(t, tx, []string{"B"}, nil)
		mustCreateRel(t, tx, a, b, "T1")
		return nil
	})
	st := s.Stats()
	if st.Labels != 2 || st.RelTypes != 1 || st.Nodes != 2 || st.Relationships != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func BenchmarkCreateNodes(b *testing.B) {
	s := NewStore()
	tx := s.Begin(ReadWrite)
	defer tx.Rollback()
	props := map[string]value.Value{"name": value.Str("x")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tx.CreateNode([]string{"Bench"}, props); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraverse(b *testing.B) {
	s := NewStore()
	var hub NodeID
	_ = s.Update(func(tx *Tx) error {
		hub, _ = tx.CreateNode([]string{"Hub"}, nil)
		for i := 0; i < 100; i++ {
			n, _ := tx.CreateNode([]string{"Spoke"}, nil)
			if _, err := tx.CreateRel(hub, n, "LINKS", nil); err != nil {
				return err
			}
		}
		return nil
	})
	tx := s.Begin(ReadOnly)
	defer tx.Rollback()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rels := tx.RelsOf(hub, Outgoing, nil)
		if len(rels) != 100 {
			b.Fatal("bad degree")
		}
	}
}

func ExampleStore_Update() {
	s := NewStore()
	_ = s.Update(func(tx *Tx) error {
		region, _ := tx.CreateNode([]string{"Region"}, map[string]value.Value{
			"name": value.Str("Lombardy"),
		})
		hospital, _ := tx.CreateNode([]string{"Hospital"}, nil)
		_, _ = tx.CreateRel(hospital, region, "LocatedIn", nil)
		_ = region
		return nil
	})
	_ = s.View(func(tx *Tx) error {
		fmt.Println(tx.NodeCount(), tx.RelCount())
		return nil
	})
	// Output: 2 1
}
