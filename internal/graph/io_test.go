package graph

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/value"
)

func buildRichStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	err := s.Update(func(tx *Tx) error {
		a, _ := tx.CreateNode([]string{"Person", "Patient"}, map[string]value.Value{
			"name":  value.Str("Ada"),
			"age":   value.Int(36),
			"score": value.Float(0.75),
			"tags":  value.List(value.Str("x"), value.Int(1)),
			"meta":  value.Map(map[string]value.Value{"k": value.Bool(true)}),
			"since": value.DateTime(time.Date(2023, 4, 1, 12, 0, 0, 0, time.UTC)),
			"wait":  value.Duration(90 * time.Minute),
		})
		b, _ := tx.CreateNode([]string{"Hospital"}, nil)
		_, err := tx.CreateRel(a, b, "TreatedAt", map[string]value.Value{"ward": value.Str("ICU")})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExportImportRoundTrip(t *testing.T) {
	s := buildRichStore(t)
	var buf bytes.Buffer
	if err := s.Export(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if err := restored.Import(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Stats().Nodes != 2 || restored.Stats().Relationships != 1 {
		t.Fatalf("stats: %+v", restored.Stats())
	}
	_ = restored.View(func(tx *Tx) error {
		ids := tx.NodesByLabel("Person")
		if len(ids) != 1 {
			t.Fatal("label index rebuilt")
		}
		n, _ := tx.Node(ids[0])
		if !value.SameValue(n.Props["age"], value.Int(36)) {
			t.Errorf("age kind lost: %s (%s)", n.Props["age"], n.Props["age"].Kind())
		}
		if !value.SameValue(n.Props["score"], value.Float(0.75)) {
			t.Error("float lost")
		}
		if n.Props["since"].Kind() != value.KindDateTime {
			t.Error("datetime kind lost")
		}
		if d, _ := n.Props["wait"].AsDuration(); d != 90*time.Minute {
			t.Error("duration lost")
		}
		if l, _ := n.Props["tags"].AsList(); len(l) != 2 || l[1].Kind() != value.KindInt {
			t.Error("list element kinds lost")
		}
		rels := tx.RelsOf(ids[0], Outgoing, []string{"TreatedAt"})
		if len(rels) != 1 {
			t.Fatal("relationship lost")
		}
		if v, _ := tx.RelProp(rels[0].ID, "ward"); !value.SameValue(v, value.Str("ICU")) {
			t.Error("rel prop lost")
		}
		return nil
	})
	// New ids continue past the imported ones.
	_ = restored.Update(func(tx *Tx) error {
		id, _ := tx.CreateNode(nil, nil)
		if id <= 2 {
			t.Errorf("id counter not restored: %d", id)
		}
		return nil
	})
}

// TestExportImportNestedAndTemporal pins down the encodings most likely to
// be lossy: datetimes with sub-second precision and zone offsets, negative
// durations, values nested several levels deep, and falsy values (false,
// "", 0) that a careless omitempty would drop. Export must also be
// byte-deterministic — the durability layer compares recovered stores by
// their export bytes.
func TestExportImportNestedAndTemporal(t *testing.T) {
	zone := time.FixedZone("UTC+5:30", 5*3600+1800)
	props := map[string]value.Value{
		"nanos":  value.DateTime(time.Date(2023, 4, 1, 23, 59, 59, 987654321, time.UTC)),
		"offset": value.DateTime(time.Date(2023, 4, 1, 6, 30, 0, 123000000, zone)),
		"negdur": value.Duration(-90*time.Minute - 250*time.Millisecond),
		"falsy":  value.Bool(false),
		"empty":  value.Str(""),
		"zero":   value.Int(0),
		"deep": value.List(
			value.Map(map[string]value.Value{
				"when": value.DateTime(time.Date(2020, 2, 29, 12, 0, 0, 1, time.UTC)),
				"inner": value.List(
					value.Duration(time.Nanosecond),
					value.Map(map[string]value.Value{"$int": value.Str("not a tag")}),
				),
			}),
			value.List(value.List(value.Null)),
		),
	}
	s := NewStore()
	err := s.Update(func(tx *Tx) error {
		_, err := tx.CreateNode([]string{"T"}, props)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	var first, second bytes.Buffer
	if err := s.Export(&first); err != nil {
		t.Fatal(err)
	}
	if err := s.Export(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatal("Export is not deterministic")
	}

	restored := NewStore()
	if err := restored.Import(bytes.NewReader(first.Bytes())); err != nil {
		t.Fatal(err)
	}
	_ = restored.View(func(tx *Tx) error {
		ids := tx.NodesByLabel("T")
		if len(ids) != 1 {
			t.Fatal("node lost")
		}
		n, _ := tx.Node(ids[0])
		for k, want := range props {
			got, ok := n.Props[k]
			if !ok {
				t.Errorf("prop %q lost entirely", k)
				continue
			}
			if !value.SameValue(got, want) {
				t.Errorf("prop %q changed: %s -> %s", k, want, got)
			}
		}
		// Instants survive exactly, including sub-second precision and the
		// zone offset (RFC3339Nano keeps the offset, not the zone name).
		in, _ := n.Props["offset"].AsDateTime()
		orig, _ := props["offset"].AsDateTime()
		if !in.Equal(orig) {
			t.Errorf("offset instant changed: %s -> %s", orig, in)
		}
		_, origOff := orig.Zone()
		_, inOff := in.Zone()
		if origOff != inOff {
			t.Errorf("zone offset changed: %d -> %d", origOff, inOff)
		}
		return nil
	})

	// Re-exporting the imported store reproduces the original bytes.
	var again bytes.Buffer
	if err := restored.Export(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != first.String() {
		t.Fatal("export → import → export is not a fixed point")
	}
}

func TestImportPopulatesExistingIndexes(t *testing.T) {
	s := buildRichStore(t)
	var buf bytes.Buffer
	if err := s.Export(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if err := restored.CreateIndex("Person", "name"); err != nil {
		t.Fatal(err)
	}
	if err := restored.Import(&buf); err != nil {
		t.Fatal(err)
	}
	_ = restored.View(func(tx *Tx) error {
		ids, ok := tx.NodesByProp("Person", "name", value.Str("Ada"))
		if !ok || len(ids) != 1 {
			t.Error("index not populated during import")
		}
		return nil
	})
}

func TestImportErrors(t *testing.T) {
	s := NewStore()
	if err := s.Import(strings.NewReader("not json")); err == nil {
		t.Error("bad json")
	}
	if err := s.Import(strings.NewReader(`{"format":"other/v9"}`)); err == nil {
		t.Error("unknown format")
	}
	// Non-empty store.
	_ = s.Update(func(tx *Tx) error {
		_, err := tx.CreateNode(nil, nil)
		return err
	})
	if err := s.Import(strings.NewReader(`{"format":"reactive-graph/v1"}`)); err == nil {
		t.Error("non-empty store")
	}
	// Dangling endpoints.
	fresh := NewStore()
	doc := `{"format":"reactive-graph/v1","nodes":[],"relationships":[{"id":1,"type":"R","start":1,"end":2}]}`
	if err := fresh.Import(strings.NewReader(doc)); err == nil {
		t.Error("dangling endpoints")
	}
}

func TestValueJSONRoundTripProperty(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		vals := []value.Value{
			value.Null, value.Bool(b), value.Int(i), value.Float(fl), value.Str(s),
			value.List(value.Int(i), value.Str(s), value.Null),
			value.Map(map[string]value.Value{"a": value.Int(i), "$int": value.Str(s)}),
			value.DateTime(time.Unix(i%1e9, 0).UTC()),
			value.Duration(time.Duration(i % 1e12)),
			value.Node(i), value.Relationship(i),
		}
		for _, v := range vals {
			got, err := value.FromJSON(value.ToJSON(v))
			if err != nil {
				return false
			}
			if !value.SameValue(got, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestValueJSONThroughEncoding(t *testing.T) {
	// The full path: ToJSON → encoding/json → FromJSON must preserve
	// integer width beyond float64 precision.
	big := value.Int(1<<62 + 12345)
	data, err := json.Marshal(value.ToJSON(big))
	if err != nil {
		t.Fatal(err)
	}
	var decoded any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	got, err := value.FromJSON(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !value.SameValue(got, big) {
		t.Errorf("big int mangled: %s", got)
	}
}
