package graph

import "repro/internal/value"

// ReadView is the read surface the query engine executes against: the
// method set shared by *Tx (one store's snapshot — unsharded, or a single
// shard) and *MultiView (a cross-shard view that routes every lookup by
// identifier band and aggregates scans and cardinalities over all shards).
// Compiled plans hold a ReadView only for the duration of one execution;
// the write clauses additionally require the view to be a *Tx (cross-shard
// views are read-only by design — writes take shard locks, views take
// none).
//
// Traversal contract: RelsOf returns every relationship half stored with
// the node, including bridge halves whose far endpoint lives in another
// shard. Both halves of a bridge carry the same identifier, so a traversal
// that tracks visited relationship identifiers (as the matcher does) binds
// each bridge exactly once no matter which side it arrives from.
type ReadView interface {
	NodeExists(id NodeID) bool
	Node(id NodeID) (Node, bool)
	NodeLabels(id NodeID) ([]string, bool)
	NodeHasLabel(id NodeID, label string) bool
	NodeProp(id NodeID, key string) (value.Value, bool)
	NodePropKeys(id NodeID) []string

	Rel(id RelID) (Rel, bool)
	RelProp(id RelID, key string) (value.Value, bool)
	RelPropKeys(id RelID) []string
	RelEndpoints(id RelID) (typ string, start, end NodeID, ok bool)

	RelsOf(id NodeID, dir Direction, types []string) []RelHandle
	Degree(id NodeID, dir Direction) int

	NodesByLabel(label string) []NodeID
	CountByLabel(label string) int
	NodesByProp(label, prop string, v value.Value) ([]NodeID, bool)
	CountByProp(label, prop string, v value.Value) (int, bool)
	HasIndex(label, prop string) bool

	NodeCount() int
	AllNodes() []NodeID

	// StoreKey identifies the backing store (the *Store of a Tx, the
	// *ShardedStore of a MultiView). Two views with equal keys read the
	// same store, so per-store caches — compiled plan variants costed
	// against one store's statistics — key on it. The result is always
	// comparable.
	StoreKey() any
}

// Compile-time interface checks: both view types implement ReadView.
var (
	_ ReadView = (*Tx)(nil)
	_ ReadView = (*MultiView)(nil)
)

// StoreKey identifies the transaction's backing store.
func (tx *Tx) StoreKey() any { return tx.s }

// StoreKey identifies the view's backing sharded store.
func (v *MultiView) StoreKey() any { return v.ss }
