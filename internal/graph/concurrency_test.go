package graph

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/value"
)

// TestReadOnlySeesPinnedSnapshot: a read-only transaction keeps observing
// the committed state it began on, however many commits land meanwhile.
func TestReadOnlySeesPinnedSnapshot(t *testing.T) {
	s := NewStore()
	var id NodeID
	if err := s.Update(func(tx *Tx) error {
		var err error
		id, err = tx.CreateNode([]string{"P"}, map[string]value.Value{"v": value.Int(1)})
		return err
	}); err != nil {
		t.Fatal(err)
	}

	ro := s.Begin(ReadOnly)
	defer ro.Rollback()

	if err := s.Update(func(tx *Tx) error {
		if err := tx.SetNodeProp(id, "v", value.Int(2)); err != nil {
			return err
		}
		_, err := tx.CreateNode([]string{"P"}, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	if v, _ := ro.NodeProp(id, "v"); !value.SameValue(v, value.Int(1)) {
		t.Fatalf("pinned snapshot saw v=%v, want 1", v)
	}
	if n := ro.CountByLabel("P"); n != 1 {
		t.Fatalf("pinned snapshot saw %d P nodes, want 1", n)
	}
	if err := s.View(func(tx *Tx) error {
		if v, _ := tx.NodeProp(id, "v"); !value.SameValue(v, value.Int(2)) {
			t.Errorf("fresh view saw v=%v, want 2", v)
		}
		if n := tx.CountByLabel("P"); n != 2 {
			t.Errorf("fresh view saw %d P nodes, want 2", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestReadersDoNotBlockBehindWriter: Begin(ReadOnly) and View complete
// while a read-write transaction holds the write lock.
func TestReadersDoNotBlockBehindWriter(t *testing.T) {
	s := NewStore()
	if err := s.Update(func(tx *Tx) error {
		_, err := tx.CreateNode([]string{"P"}, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	w := s.Begin(ReadWrite) // hold the write lock
	defer w.Rollback()
	if _, err := w.CreateNode([]string{"P"}, nil); err != nil {
		t.Fatal(err)
	}

	done := make(chan int, 1)
	go func() {
		var n int
		_ = s.View(func(tx *Tx) error {
			n = tx.CountByLabel("P")
			return nil
		})
		done <- n
	}()
	select {
	case n := <-done:
		if n != 1 {
			t.Fatalf("reader saw %d committed P nodes, want 1 (writer uncommitted)", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read-only view blocked behind an open write transaction")
	}
}

// TestWriterReadsItsOwnWrites: a read-write transaction observes its
// uncommitted changes through every read path, including index lookups.
func TestWriterReadsItsOwnWrites(t *testing.T) {
	s := NewStore()
	if err := s.CreateIndex("P", "k"); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin(ReadWrite)
	defer tx.Rollback()
	id, err := tx.CreateNode([]string{"P"}, map[string]value.Value{"k": value.Str("x")})
	if err != nil {
		t.Fatal(err)
	}
	if !tx.NodeExists(id) {
		t.Fatal("writer does not see its created node")
	}
	if ids, ok := tx.NodesByProp("P", "k", value.Str("x")); !ok || len(ids) != 1 {
		t.Fatalf("index lookup in writer got %v ok=%v, want the new node", ids, ok)
	}
	if n, ok := tx.CountByProp("P", "k", value.Str("x")); !ok || n != 1 {
		t.Fatalf("count-by-prop in writer got %d ok=%v, want 1", n, ok)
	}
	if err := tx.SetNodeProp(id, "k", value.Str("y")); err != nil {
		t.Fatal(err)
	}
	if ids, _ := tx.NodesByProp("P", "k", value.Str("x")); len(ids) != 0 {
		t.Fatalf("stale index posting after prop change: %v", ids)
	}
}

// TestRollbackDiscardsEverything: after a rollback touching nodes, rels,
// labels, properties and indexed values, the committed state is
// byte-identical to before, and the identifier counters are untouched by
// the discarded work.
func TestRollbackDiscardsEverything(t *testing.T) {
	s := NewStore()
	if err := s.CreateIndex("P", "k"); err != nil {
		t.Fatal(err)
	}
	var p1, p2 NodeID
	if err := s.Update(func(tx *Tx) error {
		p1, _ = tx.CreateNode([]string{"P"}, map[string]value.Value{"k": value.Int(1)})
		p2, _ = tx.CreateNode([]string{"P"}, map[string]value.Value{"k": value.Int(2)})
		_, err := tx.CreateRel(p1, p2, "KNOWS", nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	var before bytes.Buffer
	if err := s.Export(&before); err != nil {
		t.Fatal(err)
	}

	tx := s.Begin(ReadWrite)
	if _, err := tx.CreateNode([]string{"P", "Q"}, map[string]value.Value{"k": value.Int(3)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetNodeProp(p1, "k", value.Int(9)); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetLabel(p2, "Q"); err != nil {
		t.Fatal(err)
	}
	if err := tx.DeleteNode(p1, true); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()

	var after bytes.Buffer
	if err := s.Export(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatalf("store changed across rollback:\nbefore: %s\nafter:  %s", before.String(), after.String())
	}
	if err := s.View(func(tx *Tx) error {
		if ids, _ := tx.NodesByProp("P", "k", value.Int(9)); len(ids) != 0 {
			t.Errorf("index kept rolled-back posting: %v", ids)
		}
		if ids, _ := tx.NodesByProp("P", "k", value.Int(1)); len(ids) != 1 {
			t.Errorf("index lost committed posting: %v", ids)
		}
		if n := tx.CountByLabel("Q"); n != 0 {
			t.Errorf("label set kept rolled-back membership: %d", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestViewInsideUpdate: a read-only view taken while a write transaction is
// open (even from the same goroutine) serves the committed snapshot instead
// of deadlocking — the classic scrape-during-long-write scenario.
func TestViewInsideUpdate(t *testing.T) {
	s := NewStore()
	if err := s.Update(func(tx *Tx) error {
		_, err := tx.CreateNode([]string{"P"}, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	err := s.Update(func(tx *Tx) error {
		if _, err := tx.CreateNode([]string{"P"}, nil); err != nil {
			return err
		}
		// A concurrent reader (metrics scrape, health check) must see the
		// last committed state, not block and not see the open write.
		return s.View(func(ro *Tx) error {
			if n := ro.CountByLabel("P"); n != 1 {
				return fmt.Errorf("view inside update saw %d P nodes, want 1", n)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := s.Stats().Nodes; n != 2 {
		t.Fatalf("committed nodes = %d, want 2", n)
	}
}

// TestCloneSharesSnapshotAndDiverges covers the Clone contract: O(1) grab
// of the committed snapshot, full independence afterwards — including
// relationship-type membership, which the old deep copy got wrong.
func TestCloneSharesSnapshotAndDiverges(t *testing.T) {
	s := NewStore()
	var a, b NodeID
	if err := s.Update(func(tx *Tx) error {
		a, _ = tx.CreateNode([]string{"P"}, nil)
		b, _ = tx.CreateNode([]string{"P"}, nil)
		_, err := tx.CreateRel(a, b, "KNOWS", nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	c := s.Clone()
	if err := c.Update(func(tx *Tx) error {
		if _, err := tx.CreateRel(b, a, "KNOWS", nil); err != nil {
			return err
		}
		_, err := tx.CreateNode([]string{"Q"}, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(func(tx *Tx) error {
		return tx.DeleteNode(a, true)
	}); err != nil {
		t.Fatal(err)
	}

	check := func(st *Store, wantKnows, wantNodes int, name string) {
		if err := st.View(func(tx *Tx) error {
			if n := len(tx.RelsByType("KNOWS")); n != wantKnows {
				t.Errorf("%s: %d KNOWS rels, want %d", name, n, wantKnows)
			}
			if n := tx.NodeCount(); n != wantNodes {
				t.Errorf("%s: %d nodes, want %d", name, n, wantNodes)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	check(c, 2, 3, "clone")
	check(s, 0, 1, "original")
}

// TestConcurrentViewUpdateClone is the -race workhorse: writers stream
// commits while readers check snapshot invariants and cloners fork the
// store, all concurrently.
func TestConcurrentViewUpdateClone(t *testing.T) {
	s := NewStore()
	if err := s.CreateIndex("Acct", "bal"); err != nil {
		t.Fatal(err)
	}
	// Invariant: every committed state holds exactly two Acct nodes whose
	// "bal" values sum to 100, linked by one PAYS relationship.
	var a, b NodeID
	if err := s.Update(func(tx *Tx) error {
		a, _ = tx.CreateNode([]string{"Acct"}, map[string]value.Value{"bal": value.Int(40)})
		b, _ = tx.CreateNode([]string{"Acct"}, map[string]value.Value{"bal": value.Int(60)})
		_, err := tx.CreateRel(a, b, "PAYS", nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	const writers, readers, cloners = 2, 4, 2
	iters := 300
	if testing.Short() {
		iters = 50
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	fail := make(chan error, writers+readers+cloners)

	checkInvariant := func(tx *Tx, who string) error {
		ids := tx.NodesByLabel("Acct")
		if len(ids) != 2 {
			return fmt.Errorf("%s: %d Acct nodes, want 2", who, len(ids))
		}
		var sum int64
		for _, id := range ids {
			v, ok := tx.NodeProp(id, "bal")
			if !ok {
				return fmt.Errorf("%s: node %d lost bal", who, id)
			}
			n, _ := v.AsInt()
			sum += n
		}
		if sum != 100 {
			return fmt.Errorf("%s: balances sum to %d, want 100", who, sum)
		}
		if n := len(tx.RelsByType("PAYS")); n != 1 {
			return fmt.Errorf("%s: %d PAYS rels, want 1", who, n)
		}
		return nil
	}

	var wgWriters sync.WaitGroup
	for w := 0; w < writers; w++ {
		wgWriters.Add(1)
		go func(seed int64) {
			defer wgWriters.Done()
			for i := 0; i < iters; i++ {
				d := int64((seed*31 + int64(i)) % 10)
				err := s.Update(func(tx *Tx) error {
					av, _ := tx.NodeProp(a, "bal")
					bv, _ := tx.NodeProp(b, "bal")
					an, _ := av.AsInt()
					bn, _ := bv.AsInt()
					if err := tx.SetNodeProp(a, "bal", value.Int(an-d)); err != nil {
						return err
					}
					return tx.SetNodeProp(b, "bal", value.Int(bn+d))
				})
				if err != nil {
					fail <- err
					return
				}
			}
		}(int64(w + 1))
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if err := s.View(func(tx *Tx) error { return checkInvariant(tx, "reader") }); err != nil {
					fail <- err
					return
				}
			}
		}()
	}
	for c := 0; c < cloners; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				fork := s.Clone()
				// Mutate the fork and re-check it — divergence must never
				// leak back into the parent.
				err := fork.Update(func(tx *Tx) error {
					if err := checkInvariant(tx, "fork"); err != nil {
						return err
					}
					_, err := tx.CreateNode([]string{"Scratch"}, nil)
					return err
				})
				if err != nil {
					fail <- err
					return
				}
			}
		}()
	}

	wgWriters.Wait() // writers are bounded; readers/cloners loop until told
	stop.Store(true)
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}
	if err := s.View(func(tx *Tx) error { return checkInvariant(tx, "final") }); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotViewBarrier: the barrier runs with commits excluded and the
// returned view matches the state at the barrier, surviving later commits.
func TestSnapshotViewBarrier(t *testing.T) {
	s := NewStore()
	if err := s.Update(func(tx *Tx) error {
		_, err := tx.CreateNode([]string{"P"}, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	view, err := s.SnapshotView(func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer view.Rollback()
	if err := s.Update(func(tx *Tx) error {
		_, err := tx.CreateNode([]string{"P"}, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if n := view.CountByLabel("P"); n != 1 {
		t.Fatalf("snapshot view saw %d P nodes, want 1", n)
	}
	if _, err := s.SnapshotView(func() error { return errors.New("cut failed") }); err == nil {
		t.Fatal("SnapshotView swallowed barrier error")
	}
}

// TestOnCommittedRunsAfterPublish: callbacks run post-commit in order, see
// the published state, and their errors surface from Commit without
// un-publishing.
func TestOnCommittedRunsAfterPublish(t *testing.T) {
	s := NewStore()
	var order []string
	tx := s.Begin(ReadWrite)
	if _, err := tx.CreateNode([]string{"P"}, nil); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("fsync failed")
	if err := tx.OnCommitted(func() error {
		// The snapshot must already be published and the lock free.
		if err := s.View(func(ro *Tx) error {
			if n := ro.CountByLabel("P"); n != 1 {
				return fmt.Errorf("callback saw %d P nodes, want 1", n)
			}
			return nil
		}); err != nil {
			return err
		}
		order = append(order, "first")
		return boom
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.OnCommitted(func() error {
		order = append(order, "second")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	err := tx.Commit()
	if !errors.Is(err, boom) {
		t.Fatalf("Commit error = %v, want the callback error", err)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("callback order = %v", order)
	}
	if n := s.Stats().Nodes; n != 1 {
		t.Fatalf("commit with failing callback left %d nodes, want 1 (still committed)", n)
	}
	// Rollback discards pending callbacks.
	tx2 := s.Begin(ReadWrite)
	ran := false
	if _, err := tx2.CreateNode([]string{"P"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx2.OnCommitted(func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	tx2.Rollback()
	if ran {
		t.Fatal("OnCommitted callback ran after rollback")
	}
}
