package federation

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/periodic"
	"repro/internal/trigger"
)

var fedStart = time.Date(2023, 4, 1, 8, 0, 0, 0, time.UTC)

func newKB() *core.KnowledgeBase {
	return core.New(core.Config{Clock: periodic.NewManualClock(fedStart)})
}

// clinicalKB produces alerts on ICU admissions.
func clinicalKB(t *testing.T) *core.KnowledgeBase {
	t.Helper()
	kb := newKB()
	if err := kb.InstallRule(trigger.Rule{
		Name:  "icu",
		Hub:   "C",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "IcuPatient"},
		Alert: "RETURN NEW.region AS region",
	}); err != nil {
		t.Fatal(err)
	}
	return kb
}

func admit(t *testing.T, kb *core.KnowledgeBase, region string) {
	t.Helper()
	if _, err := kb.Execute(
		"CREATE (:IcuPatient {region: '"+region+"', hub: 'C'})", nil); err != nil {
		t.Fatal(err)
	}
}

func TestJoinAndSubscribeValidation(t *testing.T) {
	f := New()
	if _, err := f.Join("clinic", newKB()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Join("clinic", newKB()); !errors.Is(err, ErrNodeExists) {
		t.Error("duplicate join")
	}
	if err := f.Subscribe("clinic", "clinic"); !errors.Is(err, ErrSelfLink) {
		t.Error("self link")
	}
	if err := f.Subscribe("clinic", "ghost"); !errors.Is(err, ErrNodeNotFound) {
		t.Error("unknown target")
	}
	if err := f.Subscribe("ghost", "clinic"); !errors.Is(err, ErrNodeNotFound) {
		t.Error("unknown source")
	}
	if got := len(f.Participants()); got != 1 {
		t.Errorf("participants = %d", got)
	}
}

func TestSyncReplicatesAlerts(t *testing.T) {
	f := New()
	clinic := clinicalKB(t)
	region := newKB()
	_, _ = f.Join("clinic", clinic)
	_, _ = f.Join("region", region)
	if err := f.Subscribe("clinic", "region"); err != nil {
		t.Fatal(err)
	}

	admit(t, clinic, "Lombardy")
	admit(t, clinic, "Veneto")
	n, err := f.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replicated = %d", n)
	}
	remote, err := RemoteAlerts(region)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != 2 {
		t.Fatalf("remote alerts = %d", len(remote))
	}
	if remote[0].Rule != "icu" || remote[0].Hub != "C" {
		t.Errorf("remote alert: %+v", remote[0])
	}
	if origin, _ := remote[0].Props["origin"].AsString(); origin != "clinic" {
		t.Errorf("origin: %v", remote[0].Props)
	}
	// Sync is idempotent.
	if n, _ := f.Sync(); n != 0 {
		t.Errorf("second sync replicated %d", n)
	}
	// New alerts after the high-water mark replicate.
	admit(t, clinic, "Lombardy")
	if n, _ := f.Sync(); n != 1 {
		t.Errorf("incremental sync replicated %d", n)
	}
}

func TestRuleFilteredSubscription(t *testing.T) {
	f := New()
	src := clinicalKB(t)
	if err := src.InstallRule(trigger.Rule{
		Name:  "noise",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Misc"},
		Alert: "RETURN 1 AS one",
	}); err != nil {
		t.Fatal(err)
	}
	dst := newKB()
	_, _ = f.Join("src", src)
	_, _ = f.Join("dst", dst)
	if err := f.Subscribe("src", "dst", "icu"); err != nil {
		t.Fatal(err)
	}
	admit(t, src, "Lombardy")
	if _, err := src.Execute("CREATE (:Misc)", nil); err != nil {
		t.Fatal(err)
	}
	n, err := f.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("filtered sync replicated %d", n)
	}
	remote, _ := RemoteAlerts(dst)
	if len(remote) != 1 || remote[0].Rule != "icu" {
		t.Errorf("remote: %+v", remote)
	}
	// The skipped alert does not reappear on later syncs (high-water mark
	// advanced past it).
	if n, _ := f.Sync(); n != 0 {
		t.Errorf("skipped alert resurfaced: %d", n)
	}
}

func TestRemoteAlertsTriggerTargetRules(t *testing.T) {
	// The cross-organization reaction: the regional KB reacts to the
	// clinical KB's replicated alerts.
	f := New()
	clinic := clinicalKB(t)
	region := newKB()
	if err := region.InstallRule(trigger.Rule{
		Name:   "escalate",
		Hub:    "R",
		Event:  trigger.Event{Kind: trigger.CreateNode, Label: RemoteAlertLabel},
		Guard:  "NEW.origin = 'clinic'",
		Action: "CREATE (:PolicyReview {region: NEW.region, hub: 'R'})",
	}); err != nil {
		t.Fatal(err)
	}
	_, _ = f.Join("clinic", clinic)
	_, _ = f.Join("region", region)
	_ = f.Subscribe("clinic", "region")

	admit(t, clinic, "Lombardy")
	if _, err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	res, err := region.Query("MATCH (p:PolicyReview) RETURN p.region", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != `"Lombardy"` {
		t.Errorf("cross-organization reaction: %v", res.Rows)
	}
}

// TestConcurrentSync exercises the "safe for concurrent use" contract under
// the race detector: several goroutines call Sync while admissions keep
// producing fresh alerts. Whatever the interleaving, every alert must end up
// in the target exactly once.
func TestConcurrentSync(t *testing.T) {
	f := New()
	clinic := clinicalKB(t)
	region := newKB()
	_, _ = f.Join("clinic", clinic)
	_, _ = f.Join("region", region)
	if err := f.Subscribe("clinic", "region"); err != nil {
		t.Fatal(err)
	}

	const writers, admitsPerWriter, syncers = 4, 25, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < admitsPerWriter; i++ {
				admit(t, clinic, "Lombardy")
			}
		}()
	}
	errCh := make(chan error, syncers)
	for s := 0; s < syncers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := f.Sync(); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if _, err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	remote, err := RemoteAlerts(region)
	if err != nil {
		t.Fatal(err)
	}
	if want := writers * admitsPerWriter; len(remote) != want {
		t.Fatalf("remote alerts = %d, want %d (lost or duplicated under concurrency)", len(remote), want)
	}
	seen := make(map[int64]bool, len(remote))
	for _, a := range remote {
		if seen[int64(a.ID)] {
			t.Fatalf("origin id %d replicated twice", a.ID)
		}
		seen[int64(a.ID)] = true
	}
}

// TestRebuildDoesNotRereplicate is the restart scenario: a fresh Federation
// over the same knowledge bases (in-memory marks gone) must not replicate
// already-delivered alerts again — Subscribe recovers the mark from the
// target and the apply side refuses (origin, originId) duplicates.
func TestRebuildDoesNotRereplicate(t *testing.T) {
	clinic := clinicalKB(t)
	region := newKB()

	f1 := New()
	_, _ = f1.Join("clinic", clinic)
	_, _ = f1.Join("region", region)
	_ = f1.Subscribe("clinic", "region")
	admit(t, clinic, "Lombardy")
	admit(t, clinic, "Veneto")
	if n, err := f1.Sync(); err != nil || n != 2 {
		t.Fatalf("first sync: n=%d err=%v", n, err)
	}

	// The process "restarts": a brand-new Federation over the same KBs.
	f2 := New()
	_, _ = f2.Join("clinic", clinic)
	_, _ = f2.Join("region", region)
	_ = f2.Subscribe("clinic", "region")
	if n, err := f2.Sync(); err != nil || n != 0 {
		t.Fatalf("rebuilt sync replicated %d (err=%v), want 0", n, err)
	}
	// New alerts still flow.
	admit(t, clinic, "Lazio")
	if n, err := f2.Sync(); err != nil || n != 1 {
		t.Fatalf("incremental sync after rebuild: n=%d err=%v", n, err)
	}
	remote, _ := RemoteAlerts(region)
	if len(remote) != 3 {
		t.Fatalf("remote alerts = %d, want 3", len(remote))
	}
}

// TestApplyRemoteAlertsDedup checks the shared idempotent-apply primitive
// directly: redelivery of the same batch, overlap across batches, and
// duplicates within one batch all collapse to a single materialization.
func TestApplyRemoteAlertsDedup(t *testing.T) {
	kb := newKB()
	if err := EnsureRemoteAlertIndex(kb); err != nil {
		t.Fatal(err)
	}
	batch := []core.Alert{
		{ID: 1, Rule: "icu", DateTime: fedStart},
		{ID: 2, Rule: "icu", DateTime: fedStart},
		{ID: 2, Rule: "icu", DateTime: fedStart}, // in-batch duplicate
	}
	applied, dups, err := ApplyRemoteAlerts(kb, "clinic", batch)
	if err != nil || applied != 2 || dups != 1 {
		t.Fatalf("first apply: applied=%d dups=%d err=%v", applied, dups, err)
	}
	// Full redelivery (sender never got the ack).
	applied, dups, err = ApplyRemoteAlerts(kb, "clinic", batch[:2])
	if err != nil || applied != 0 || dups != 2 {
		t.Fatalf("redelivery: applied=%d dups=%d err=%v", applied, dups, err)
	}
	// Same originId from a different origin is distinct knowledge.
	applied, _, err = ApplyRemoteAlerts(kb, "lab", batch[:1])
	if err != nil || applied != 1 {
		t.Fatalf("other origin: applied=%d err=%v", applied, err)
	}
	if mark, _ := HighWaterFor(kb, "clinic"); mark != 2 {
		t.Fatalf("HighWaterFor = %d, want 2", mark)
	}
	remote, _ := RemoteAlerts(kb)
	if len(remote) != 3 {
		t.Fatalf("remote alerts = %d, want 3", len(remote))
	}
}

func TestBidirectionalSubscriptions(t *testing.T) {
	f := New()
	a := clinicalKB(t)
	b := clinicalKB(t)
	_, _ = f.Join("a", a)
	_, _ = f.Join("b", b)
	_ = f.Subscribe("a", "b")
	_ = f.Subscribe("b", "a")
	admit(t, a, "north")
	admit(t, b, "south")
	n, err := f.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("bidirectional sync = %d", n)
	}
	ra, _ := RemoteAlerts(a)
	rb, _ := RemoteAlerts(b)
	if len(ra) != 1 || len(rb) != 1 {
		t.Errorf("remote counts: a=%d b=%d", len(ra), len(rb))
	}
}
