package federation

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/periodic"
	"repro/internal/trigger"
)

var fedStart = time.Date(2023, 4, 1, 8, 0, 0, 0, time.UTC)

func newKB() *core.KnowledgeBase {
	return core.New(core.Config{Clock: periodic.NewManualClock(fedStart)})
}

// clinicalKB produces alerts on ICU admissions.
func clinicalKB(t *testing.T) *core.KnowledgeBase {
	t.Helper()
	kb := newKB()
	if err := kb.InstallRule(trigger.Rule{
		Name:  "icu",
		Hub:   "C",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "IcuPatient"},
		Alert: "RETURN NEW.region AS region",
	}); err != nil {
		t.Fatal(err)
	}
	return kb
}

func admit(t *testing.T, kb *core.KnowledgeBase, region string) {
	t.Helper()
	if _, err := kb.Execute(
		"CREATE (:IcuPatient {region: '"+region+"', hub: 'C'})", nil); err != nil {
		t.Fatal(err)
	}
}

func TestJoinAndSubscribeValidation(t *testing.T) {
	f := New()
	if _, err := f.Join("clinic", newKB()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Join("clinic", newKB()); !errors.Is(err, ErrNodeExists) {
		t.Error("duplicate join")
	}
	if err := f.Subscribe("clinic", "clinic"); !errors.Is(err, ErrSelfLink) {
		t.Error("self link")
	}
	if err := f.Subscribe("clinic", "ghost"); !errors.Is(err, ErrNodeNotFound) {
		t.Error("unknown target")
	}
	if err := f.Subscribe("ghost", "clinic"); !errors.Is(err, ErrNodeNotFound) {
		t.Error("unknown source")
	}
	if got := len(f.Participants()); got != 1 {
		t.Errorf("participants = %d", got)
	}
}

func TestSyncReplicatesAlerts(t *testing.T) {
	f := New()
	clinic := clinicalKB(t)
	region := newKB()
	_, _ = f.Join("clinic", clinic)
	_, _ = f.Join("region", region)
	if err := f.Subscribe("clinic", "region"); err != nil {
		t.Fatal(err)
	}

	admit(t, clinic, "Lombardy")
	admit(t, clinic, "Veneto")
	n, err := f.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replicated = %d", n)
	}
	remote, err := RemoteAlerts(region)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != 2 {
		t.Fatalf("remote alerts = %d", len(remote))
	}
	if remote[0].Rule != "icu" || remote[0].Hub != "C" {
		t.Errorf("remote alert: %+v", remote[0])
	}
	if origin, _ := remote[0].Props["origin"].AsString(); origin != "clinic" {
		t.Errorf("origin: %v", remote[0].Props)
	}
	// Sync is idempotent.
	if n, _ := f.Sync(); n != 0 {
		t.Errorf("second sync replicated %d", n)
	}
	// New alerts after the high-water mark replicate.
	admit(t, clinic, "Lombardy")
	if n, _ := f.Sync(); n != 1 {
		t.Errorf("incremental sync replicated %d", n)
	}
}

func TestRuleFilteredSubscription(t *testing.T) {
	f := New()
	src := clinicalKB(t)
	if err := src.InstallRule(trigger.Rule{
		Name:  "noise",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Misc"},
		Alert: "RETURN 1 AS one",
	}); err != nil {
		t.Fatal(err)
	}
	dst := newKB()
	_, _ = f.Join("src", src)
	_, _ = f.Join("dst", dst)
	if err := f.Subscribe("src", "dst", "icu"); err != nil {
		t.Fatal(err)
	}
	admit(t, src, "Lombardy")
	if _, err := src.Execute("CREATE (:Misc)", nil); err != nil {
		t.Fatal(err)
	}
	n, err := f.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("filtered sync replicated %d", n)
	}
	remote, _ := RemoteAlerts(dst)
	if len(remote) != 1 || remote[0].Rule != "icu" {
		t.Errorf("remote: %+v", remote)
	}
	// The skipped alert does not reappear on later syncs (high-water mark
	// advanced past it).
	if n, _ := f.Sync(); n != 0 {
		t.Errorf("skipped alert resurfaced: %d", n)
	}
}

func TestRemoteAlertsTriggerTargetRules(t *testing.T) {
	// The cross-organization reaction: the regional KB reacts to the
	// clinical KB's replicated alerts.
	f := New()
	clinic := clinicalKB(t)
	region := newKB()
	if err := region.InstallRule(trigger.Rule{
		Name:   "escalate",
		Hub:    "R",
		Event:  trigger.Event{Kind: trigger.CreateNode, Label: RemoteAlertLabel},
		Guard:  "NEW.origin = 'clinic'",
		Action: "CREATE (:PolicyReview {region: NEW.region, hub: 'R'})",
	}); err != nil {
		t.Fatal(err)
	}
	_, _ = f.Join("clinic", clinic)
	_, _ = f.Join("region", region)
	_ = f.Subscribe("clinic", "region")

	admit(t, clinic, "Lombardy")
	if _, err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	res, err := region.Query("MATCH (p:PolicyReview) RETURN p.region", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != `"Lombardy"` {
		t.Errorf("cross-organization reaction: %v", res.Rows)
	}
}

func TestBidirectionalSubscriptions(t *testing.T) {
	f := New()
	a := clinicalKB(t)
	b := clinicalKB(t)
	_, _ = f.Join("a", a)
	_, _ = f.Join("b", b)
	_ = f.Subscribe("a", "b")
	_ = f.Subscribe("b", "a")
	admit(t, a, "north")
	admit(t, b, "south")
	n, err := f.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("bidirectional sync = %d", n)
	}
	ra, _ := RemoteAlerts(a)
	rb, _ := RemoteAlerts(b)
	if len(ra) != 1 || len(rb) != 1 {
		t.Errorf("remote counts: a=%d b=%d", len(ra), len(rb))
	}
}
