// Package federation prototypes the distributed deployment the paper's
// discussion (§V) projects: each knowledge hub (or group of hubs) runs its
// own KnowledgeBase on its own infrastructure, and selected knowledge —
// here, alert nodes, the paper's primary cross-hub currency — propagates
// between participants through explicit subscriptions.
//
// Replicated alerts materialize in the target knowledge base as nodes
// labeled RemoteAlert carrying the origin participant, the original rule,
// hub, timestamp and payload. Because replication runs through the normal
// reactive write path, rules in the target that watch RemoteAlert creation
// fire — one organization's alerts can trigger another organization's
// reactions, the paper's "reactive interaction of several knowledge hubs".
package federation

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/value"
)

// RemoteAlertLabel is the label of replicated alert nodes.
const RemoteAlertLabel = "RemoteAlert"

// Errors reported by the federation.
var (
	ErrNodeExists   = errors.New("federation: participant already joined")
	ErrNodeNotFound = errors.New("federation: participant not found")
	ErrSelfLink     = errors.New("federation: cannot subscribe a participant to itself")
)

// Participant is one organization's knowledge base inside the federation.
type Participant struct {
	Name string
	KB   *core.KnowledgeBase
}

// subscription links a source participant's alerts to a target.
type subscription struct {
	from, to string
	rules    map[string]bool // empty = all rules
	// highWater is the largest source alert node id already replicated.
	highWater graph.NodeID
}

// Federation coordinates participants and alert propagation. All methods
// are safe for concurrent use.
type Federation struct {
	mu   sync.Mutex
	prts map[string]*Participant
	subs []*subscription
}

// New returns an empty federation.
func New() *Federation {
	return &Federation{prts: make(map[string]*Participant)}
}

// Join adds a participant.
func (f *Federation) Join(name string, kb *core.KnowledgeBase) (*Participant, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.prts[name]; dup {
		return nil, fmt.Errorf("%w: %s", ErrNodeExists, name)
	}
	p := &Participant{Name: name, KB: kb}
	f.prts[name] = p
	return p, nil
}

// Participants lists the joined participants sorted by name.
func (f *Federation) Participants() []*Participant {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Participant, 0, len(f.prts))
	for _, p := range f.prts {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Subscribe propagates alerts produced in from to the knowledge base of to.
// With rule names given, only those rules' alerts replicate.
func (f *Federation) Subscribe(from, to string, rules ...string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if from == to {
		return ErrSelfLink
	}
	if _, ok := f.prts[from]; !ok {
		return fmt.Errorf("%w: %s", ErrNodeNotFound, from)
	}
	if _, ok := f.prts[to]; !ok {
		return fmt.Errorf("%w: %s", ErrNodeNotFound, to)
	}
	sub := &subscription{from: from, to: to, rules: make(map[string]bool)}
	for _, r := range rules {
		sub.rules[r] = true
	}
	f.subs = append(f.subs, sub)
	return nil
}

// Sync propagates all new alerts along every subscription and returns the
// number of alerts replicated. Replication is idempotent per subscription
// (a high-water mark tracks what the target has seen) and runs through the
// targets' reactive pipelines, so RemoteAlert rules fire.
func (f *Federation) Sync() (int, error) {
	f.mu.Lock()
	subs := append([]*subscription(nil), f.subs...)
	prts := make(map[string]*Participant, len(f.prts))
	for k, v := range f.prts {
		prts[k] = v
	}
	f.mu.Unlock()

	total := 0
	for _, sub := range subs {
		n, err := f.syncOne(prts, sub)
		total += n
		if err != nil {
			return total, fmt.Errorf("federation: %s→%s: %w", sub.from, sub.to, err)
		}
	}
	return total, nil
}

func (f *Federation) syncOne(prts map[string]*Participant, sub *subscription) (int, error) {
	src := prts[sub.from]
	dst := prts[sub.to]
	alerts, err := src.KB.Alerts()
	if err != nil {
		return 0, err
	}
	var fresh []core.Alert
	maxID := sub.highWater
	for _, a := range alerts {
		if a.ID <= sub.highWater {
			continue
		}
		if len(sub.rules) > 0 && !sub.rules[a.Rule] {
			if a.ID > maxID {
				maxID = a.ID
			}
			continue
		}
		fresh = append(fresh, a)
		if a.ID > maxID {
			maxID = a.ID
		}
	}
	if len(fresh) == 0 {
		sub.advance(maxID)
		return 0, nil
	}
	_, err = dst.KB.WriteTx(func(tx *graph.Tx) error {
		for _, a := range fresh {
			props := map[string]value.Value{
				"origin":   value.Str(src.Name),
				"rule":     value.Str(a.Rule),
				"hub":      value.Str(a.Hub),
				"dateTime": value.DateTime(a.DateTime),
				"originId": value.Int(int64(a.ID)),
			}
			for k, v := range a.Props {
				if _, taken := props[k]; !taken {
					props[k] = v
				}
			}
			if _, err := tx.CreateNode([]string{RemoteAlertLabel}, props); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	sub.advance(maxID)
	return len(fresh), nil
}

func (sub *subscription) advance(id graph.NodeID) {
	if id > sub.highWater {
		sub.highWater = id
	}
}

// RemoteAlerts lists the replicated alerts present in a participant's
// knowledge base, sorted by origin alert id.
func RemoteAlerts(kb *core.KnowledgeBase) ([]core.Alert, error) {
	var out []core.Alert
	err := kb.Store().View(func(tx *graph.Tx) error {
		for _, id := range tx.NodesByLabel(RemoteAlertLabel) {
			n, ok := tx.Node(id)
			if !ok {
				continue
			}
			a := core.Alert{ID: id, Props: make(map[string]value.Value)}
			for k, v := range n.Props {
				switch k {
				case "rule":
					a.Rule, _ = v.AsString()
				case "hub":
					a.Hub, _ = v.AsString()
				case "dateTime":
					a.DateTime, _ = v.AsDateTime()
				default:
					a.Props[k] = v
				}
			}
			out = append(out, a)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}
