// Package federation prototypes the distributed deployment the paper's
// discussion (§V) projects: each knowledge hub (or group of hubs) runs its
// own KnowledgeBase on its own infrastructure, and selected knowledge —
// here, alert nodes, the paper's primary cross-hub currency — propagates
// between participants through explicit subscriptions.
//
// Replicated alerts materialize in the target knowledge base as nodes
// labeled RemoteAlert carrying the origin participant, the original rule,
// hub, timestamp and payload. Because replication runs through the normal
// reactive write path, rules in the target that watch RemoteAlert creation
// fire — one organization's alerts can trigger another organization's
// reactions, the paper's "reactive interaction of several knowledge hubs".
//
// Federation in this package is in-process: every participant lives in one
// address space and Sync moves alerts in a lock-step pass. The cross-process
// variant — the same replication semantics over HTTP with a durable outbox,
// retries and at-least-once delivery — is internal/fednet, which builds on
// the apply-side primitives here (ApplyRemoteAlerts, HighWaterFor) so both
// transports share one idempotency contract: a replicated alert is keyed by
// (origin, originId) and is never materialized twice.
package federation

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/value"
)

// RemoteAlertLabel is the label of replicated alert nodes.
const RemoteAlertLabel = "RemoteAlert"

// Property keys of the idempotency key carried by every replicated alert:
// the participant the alert came from and its node id there. Together they
// identify one origin alert, whichever transport delivered it and however
// many times it was delivered.
const (
	OriginProp   = "origin"
	OriginIDProp = "originId"
)

// Errors reported by the federation.
var (
	ErrNodeExists   = errors.New("federation: participant already joined")
	ErrNodeNotFound = errors.New("federation: participant not found")
	ErrSelfLink     = errors.New("federation: cannot subscribe a participant to itself")
)

// Participant is one organization's knowledge base inside the federation.
type Participant struct {
	Name string
	KB   *core.KnowledgeBase
}

// subscription links a source participant's alerts to a target.
type subscription struct {
	from, to string
	rules    map[string]bool // empty = all rules
	// highWater is the largest source alert node id already replicated.
	// Guarded by the owning Federation's mu: Sync snapshots it under the
	// lock before scanning and advances it under the lock afterwards, so
	// concurrent Sync calls never tear it.
	highWater graph.NodeID
}

// Federation coordinates participants and alert propagation. All methods
// are safe for concurrent use.
type Federation struct {
	mu   sync.Mutex
	prts map[string]*Participant
	subs []*subscription
}

// New returns an empty federation.
func New() *Federation {
	return &Federation{prts: make(map[string]*Participant)}
}

// Join adds a participant.
func (f *Federation) Join(name string, kb *core.KnowledgeBase) (*Participant, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.prts[name]; dup {
		return nil, fmt.Errorf("%w: %s", ErrNodeExists, name)
	}
	p := &Participant{Name: name, KB: kb}
	f.prts[name] = p
	return p, nil
}

// Participants lists the joined participants sorted by name.
func (f *Federation) Participants() []*Participant {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Participant, 0, len(f.prts))
	for _, p := range f.prts {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Subscribe propagates alerts produced in from to the knowledge base of to.
// With rule names given, only those rules' alerts replicate.
//
// The subscription's high-water mark is recovered from the target: alerts
// from this origin that already materialized there (in an earlier process
// life, or through an earlier Federation value over the same knowledge
// bases) are not replicated again.
func (f *Federation) Subscribe(from, to string, rules ...string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if from == to {
		return ErrSelfLink
	}
	if _, ok := f.prts[from]; !ok {
		return fmt.Errorf("%w: %s", ErrNodeNotFound, from)
	}
	dst, ok := f.prts[to]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeNotFound, to)
	}
	mark, err := HighWaterFor(dst.KB, from)
	if err != nil {
		return fmt.Errorf("federation: recover mark %s→%s: %w", from, to, err)
	}
	sub := &subscription{from: from, to: to, rules: make(map[string]bool), highWater: mark}
	for _, r := range rules {
		sub.rules[r] = true
	}
	f.subs = append(f.subs, sub)
	return nil
}

// Sync propagates all new alerts along every subscription and returns the
// number of alerts replicated. Replication is idempotent twice over: a
// high-water mark per subscription skips alerts already scanned, and the
// apply side (ApplyRemoteAlerts) refuses duplicates by (origin, originId).
// Replication runs through the targets' reactive pipelines, so RemoteAlert
// rules fire.
func (f *Federation) Sync() (int, error) {
	f.mu.Lock()
	subs := append([]*subscription(nil), f.subs...)
	prts := make(map[string]*Participant, len(f.prts))
	for k, v := range f.prts {
		prts[k] = v
	}
	f.mu.Unlock()

	total := 0
	for _, sub := range subs {
		n, err := f.syncOne(prts, sub)
		total += n
		if err != nil {
			return total, fmt.Errorf("federation: %s→%s: %w", sub.from, sub.to, err)
		}
	}
	return total, nil
}

func (f *Federation) syncOne(prts map[string]*Participant, sub *subscription) (int, error) {
	src := prts[sub.from]
	dst := prts[sub.to]
	f.mu.Lock()
	mark := sub.highWater
	f.mu.Unlock()
	alerts, err := src.KB.AlertsAfter(mark)
	if err != nil {
		return 0, err
	}
	var fresh []core.Alert
	maxID := mark
	for _, a := range alerts {
		if a.ID > maxID {
			maxID = a.ID
		}
		if len(sub.rules) > 0 && !sub.rules[a.Rule] {
			continue
		}
		fresh = append(fresh, a)
	}
	applied, _, err := ApplyRemoteAlerts(dst.KB, src.Name, fresh)
	if err != nil {
		return 0, err
	}
	f.advance(sub, maxID)
	return applied, nil
}

// advance moves a subscription's high-water mark forward under the lock.
func (f *Federation) advance(sub *subscription, id graph.NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if id > sub.highWater {
		sub.highWater = id
	}
}

// EnsureRemoteAlertIndex creates the (RemoteAlert, originId) property index
// the duplicate check of ApplyRemoteAlerts and the mark recovery of
// HighWaterFor use. It is idempotent; without it both fall back to a label
// scan. Not safe to call while transactions are open on the store.
func EnsureRemoteAlertIndex(kb *core.KnowledgeBase) error {
	err := kb.Store().CreateIndex(RemoteAlertLabel, OriginIDProp)
	if errors.Is(err, graph.ErrIndexExists) {
		return nil
	}
	return err
}

// ApplyRemoteAlerts materializes alerts from origin as RemoteAlert nodes in
// kb, skipping every alert whose (origin, originId) pair is already present
// — in the graph or earlier in the same batch — so redelivery under
// at-least-once transports never duplicates knowledge. The whole batch is
// one transaction through the reactive pipeline: target rules watching
// RemoteAlert creation fire, and on any error nothing is applied.
func ApplyRemoteAlerts(kb *core.KnowledgeBase, origin string, alerts []core.Alert) (applied, duplicates int, err error) {
	if len(alerts) == 0 {
		return 0, 0, nil
	}
	_, err = kb.WriteTx(func(tx *graph.Tx) error {
		for _, a := range alerts {
			if remoteAlertExists(tx, origin, a.ID) {
				duplicates++
				continue
			}
			props := map[string]value.Value{
				OriginProp:   value.Str(origin),
				"rule":       value.Str(a.Rule),
				"hub":        value.Str(a.Hub),
				"dateTime":   value.DateTime(a.DateTime),
				OriginIDProp: value.Int(int64(a.ID)),
			}
			for k, v := range a.Props {
				if _, taken := props[k]; !taken {
					props[k] = v
				}
			}
			if _, err := tx.CreateNode([]string{RemoteAlertLabel}, props); err != nil {
				return err
			}
			applied++
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	return applied, duplicates, nil
}

// remoteAlertExists reports whether a RemoteAlert with the given idempotency
// key is present, preferring the (RemoteAlert, originId) index. Nodes
// created earlier in the same open transaction are visible.
func remoteAlertExists(tx *graph.Tx, origin string, originID graph.NodeID) bool {
	ids, indexed := tx.NodesByProp(RemoteAlertLabel, OriginIDProp, value.Int(int64(originID)))
	if !indexed {
		ids = tx.NodesByLabel(RemoteAlertLabel)
	}
	for _, id := range ids {
		n, ok := tx.Node(id)
		if !ok {
			continue
		}
		if got, _ := n.Props[OriginProp].AsString(); got != origin {
			continue
		}
		if oid, _ := n.Props[OriginIDProp].AsInt(); graph.NodeID(oid) == originID {
			return true
		}
	}
	return false
}

// HighWaterFor returns the largest originId among kb's RemoteAlert nodes
// from the given origin — the replication mark a rebuilt subscription (or a
// restarted sender without its own outbox state) resumes from.
func HighWaterFor(kb *core.KnowledgeBase, origin string) (graph.NodeID, error) {
	var mark graph.NodeID
	err := kb.Store().View(func(tx *graph.Tx) error {
		for _, id := range tx.NodesByLabel(RemoteAlertLabel) {
			n, ok := tx.Node(id)
			if !ok {
				continue
			}
			if got, _ := n.Props[OriginProp].AsString(); got != origin {
				continue
			}
			oid, _ := n.Props[OriginIDProp].AsInt()
			if graph.NodeID(oid) > mark {
				mark = graph.NodeID(oid)
			}
		}
		return nil
	})
	return mark, err
}

// RemoteAlerts lists the replicated alerts present in a participant's
// knowledge base, sorted by origin alert id.
func RemoteAlerts(kb *core.KnowledgeBase) ([]core.Alert, error) {
	var out []core.Alert
	err := kb.Store().View(func(tx *graph.Tx) error {
		for _, id := range tx.NodesByLabel(RemoteAlertLabel) {
			n, ok := tx.Node(id)
			if !ok {
				continue
			}
			a := core.Alert{Props: make(map[string]value.Value)}
			for k, v := range n.Props {
				switch k {
				case "rule":
					a.Rule, _ = v.AsString()
				case "hub":
					a.Hub, _ = v.AsString()
				case "dateTime":
					a.DateTime, _ = v.AsDateTime()
				case OriginIDProp:
					oid, _ := v.AsInt()
					a.ID = graph.NodeID(oid)
					a.Props[k] = v
				default:
					a.Props[k] = v
				}
			}
			out = append(out, a)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}
