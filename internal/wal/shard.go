package wal

// Sharded durability: one write-ahead-log stream per graph shard, plus the
// two-stream commit protocol for cross-shard ("knowledge bridge")
// transactions.
//
// A ShardSet is a directory of per-shard subdirectories (shard-000,
// shard-001, ...), each an ordinary Log — same segment framing, same
// snapshots, same group commit, same cursor/streaming API — so intra-shard
// commits are appended, fsynced and compacted fully independently. What the
// set adds is the bridge protocol:
//
//	hi stream:  [prepare: hi's ops]            ... [done: prepareSeq]
//	lo stream:               [commit: lo's ops + embedded copy of hi's ops]
//
// The commit record in the lower-indexed shard's stream is the single
// commit point. It embeds the prepared half verbatim, so every crash
// outcome recovers:
//
//   - prepare durable, commit lost  → the bridge never committed; replay
//     skips the prepare (its effects were never published in memory either,
//     because the engine holds both shard locks until both records are
//     appended).
//   - commit durable, prepare lost  → the bridge committed; recovery
//     replays the embedded copy into the higher shard and logs a durable
//     reconcile record in its stream, so the repair itself survives the
//     next crash.
//   - both durable                  → ordinary replay, each stream
//     independently.
//
// The done marker licenses compaction: the lower stream may only compact a
// commit record once the higher stream durably knows the bridge committed
// (done or reconcile), otherwise a later crash could leave a prepare with
// no surviving evidence of its commit. AppendBridge writes the marker
// before the shard locks are released, recovery repairs any marker lost to
// a crash, and checkpoints call SyncAll before removing segments —
// together these keep the invariant without cross-shard checkpoint
// coordination: each shard still checkpoints and compacts on its own.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/graph"
)

// ShardDir returns the log directory of one shard within a sharded data
// directory.
func ShardDir(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", shard))
}

// ShardSet is a group of per-shard write-ahead logs sharing one data
// directory, with the two-stream commit protocol for cross-shard
// transactions. Per-shard appends go straight to Log(i); only AppendBridge
// spans streams.
type ShardSet struct {
	dir  string
	logs []*Log
}

// NumShards returns the number of shard streams.
func (s *ShardSet) NumShards() int { return len(s.logs) }

// Log returns shard i's write-ahead log — an ordinary Log: Append,
// WaitDurable, Cut, Checkpoint and Cursor all work per shard.
func (s *ShardSet) Log(i int) *Log { return s.logs[i] }

// SyncAll forces every shard's buffered appends to stable storage. A
// checkpoint of any one shard must call it before compacting segments, so
// done/reconcile markers referencing the compacted records are durable
// first.
func (s *ShardSet) SyncAll() error {
	for _, l := range s.logs {
		if err := l.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close closes every shard's log.
func (s *ShardSet) Close() error {
	var first error
	for _, l := range s.logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// AppendBridge appends a cross-shard transaction to both streams: hiRec
// (the higher-indexed shard's half) as a prepare record in stream hi, then
// loRec extended with an embedded copy of the prepared half as the commit
// record in stream lo. Both shard locks MUST be held by the caller for the
// whole call — the protocol's recovery guarantees depend on nothing else
// entering either stream between the two appends and the done marker.
//
// The returned committed flag tells the caller the transaction's fate: once
// the commit record has been appended, the transaction is committed and any
// later error (a failed durability wait or done-marker append) is reported
// alongside committed=true — the in-memory publication must proceed, exactly
// like a group-commit fsync error on a single-shard commit. With
// committed=false nothing reached the commit point and the caller must roll
// back; a dangling prepare record is harmless (replay skips it).
func (s *ShardSet) AppendBridge(lo, hi int, loRec, hiRec *Record) (committed bool, err error) {
	if lo < 0 || hi >= len(s.logs) || lo >= hi {
		return false, fmt.Errorf("wal: bridge shards (%d, %d) out of range", lo, hi)
	}
	hiRec.Bridge = &BridgeInfo{Stage: BridgePrepare}
	prepSeq, err := s.logs[hi].AppendAsync(hiRec)
	if err != nil {
		return false, fmt.Errorf("wal: bridge prepare: %w", err)
	}
	loRec.Bridge = &BridgeInfo{
		Stage:        BridgeCommit,
		PeerShard:    hi,
		PrepareSeq:   prepSeq,
		PeerOps:      hiRec.Ops,
		PeerNextNode: hiRec.NextNode,
		PeerNextRel:  hiRec.NextRel,
	}
	commitSeq, err := s.logs[lo].AppendAsync(loRec)
	if err != nil {
		return false, fmt.Errorf("wal: bridge commit: %w", err)
	}
	// Commit point passed. Make both records durable — each wait joins its
	// own log's group-commit round, sharing the fsync with whatever
	// intra-shard commits are in flight there — then mark the higher stream.
	if err := s.logs[hi].WaitDurable(prepSeq); err != nil {
		return true, fmt.Errorf("wal: bridge prepare durability: %w", err)
	}
	if err := s.logs[lo].WaitDurable(commitSeq); err != nil {
		return true, fmt.Errorf("wal: bridge commit durability: %w", err)
	}
	done := &Record{Bridge: &BridgeInfo{Stage: BridgeDone, PrepareSeq: prepSeq}}
	if _, err := s.logs[hi].AppendAsync(done); err != nil {
		return true, fmt.Errorf("wal: bridge done marker: %w", err)
	}
	return true, nil
}

// shardScan is the pre-replay state of one shard: its snapshot-restored
// store and the intact live records of its stream, torn tails already
// truncated on disk.
type shardScan struct {
	store   *graph.Store
	records []*Record
	info    *RecoveryInfo
}

// scanShard restores shard snapshot state and collects the stream's intact
// records without applying them — the sharded recovery needs every
// stream's records before it can classify any prepare record.
func scanShard(dir string, opts Options) (*shardScan, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open shard: %w", err)
	}
	segments, snapshots, err := scanDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: open shard: %w", err)
	}
	sc := &shardScan{store: graph.NewStore(), info: &RecoveryInfo{}}
	for _, snap := range snapshots {
		f, err := os.Open(snap.path)
		if err != nil {
			opts.Logf("wal: skipping snapshot %s: %v", snap.path, err)
			continue
		}
		err = sc.store.Import(f)
		f.Close()
		if err != nil {
			opts.Logf("wal: skipping snapshot %s: %v", snap.path, err)
			sc.store = graph.NewStore()
			continue
		}
		sc.info.SnapshotSeq = snap.seq
		sc.info.SnapshotPath = snap.path
		break
	}
	sc.info.LastSeq = sc.info.SnapshotSeq

	for i, seg := range segments {
		res, err := scanSegment(seg.path)
		if err != nil {
			return nil, fmt.Errorf("wal: open shard: %w", err)
		}
		sc.info.SegmentsScanned++
		for _, rec := range res.records {
			if rec.Seq <= sc.info.SnapshotSeq {
				continue
			}
			if rec.Seq != sc.info.LastSeq+1 {
				opts.Logf("wal: %s: sequence gap (want %d, got %d); discarding from there",
					seg.path, sc.info.LastSeq+1, rec.Seq)
				res.torn = true
				res.tornReason = "sequence gap"
				break
			}
			sc.records = append(sc.records, rec)
			sc.info.LastSeq = rec.Seq
		}
		if res.torn {
			st, err := os.Stat(seg.path)
			if err != nil {
				return nil, fmt.Errorf("wal: open shard: %w", err)
			}
			sc.info.DiscardedBytes = st.Size() - res.goodLen
			sc.info.DiscardedPath = seg.path
			for _, later := range segments[i+1:] {
				st, err := os.Stat(later.path)
				if err == nil {
					sc.info.DiscardedBytes += st.Size()
				}
				if err := os.Remove(later.path); err != nil {
					return nil, fmt.Errorf("wal: open shard: drop %s: %w", later.path, err)
				}
			}
			opts.Logf("wal: %s: %s at offset %d; discarded %d byte(s) of torn tail",
				seg.path, res.tornReason, res.goodLen, sc.info.DiscardedBytes)
			if res.goodLen <= int64(len(segMagic)) {
				if err := os.Remove(seg.path); err != nil {
					return nil, fmt.Errorf("wal: open shard: drop %s: %w", seg.path, err)
				}
			} else if err := os.Truncate(seg.path, res.goodLen); err != nil {
				return nil, fmt.Errorf("wal: open shard: truncate %s: %w", seg.path, err)
			}
			break
		}
	}
	return sc, nil
}

func applyToStore(store *graph.Store, rec *Record) error {
	tx := store.Begin(graph.ReadWrite)
	if err := ApplyRecord(tx, rec); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// OpenShardSet recovers an n-shard data directory: every shard's stream is
// scanned, prepare records are classified against the commit evidence of
// all streams, each shard is replayed independently, and bridge
// transactions whose prepare record was lost are reconciled from the
// embedded copy in their commit record (writing a durable reconcile record
// into the repaired stream). The returned stores hold exactly the committed
// state; identifier counters are NOT yet banded — callers wrap the stores
// with graph.AttachShards, which seeds each shard's allocation band.
func OpenShardSet(dir string, n int, opts Options) (*ShardSet, []*graph.Store, []*RecoveryInfo, error) {
	opts = opts.withDefaults()
	if n < 1 {
		return nil, nil, nil, fmt.Errorf("wal: open shard set: need at least 1 shard, got %d", n)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, fmt.Errorf("wal: open shard set: %w", err)
	}

	scans := make([]*shardScan, n)
	for i := range scans {
		sc, err := scanShard(ShardDir(dir, i), opts)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("wal: shard %d: %w", i, err)
		}
		scans[i] = sc
	}

	// Commit evidence: a prepare record in shard H at sequence p is
	// committed iff some live stream holds a commit record naming (H, p), or
	// H's own live stream holds a done/reconcile marker for p. Compacted
	// evidence needs no lookup — the compaction invariants guarantee the
	// prepare was compacted (or marked) along with it.
	committed := make([]map[uint64]bool, n)
	for i := range committed {
		committed[i] = make(map[uint64]bool)
	}
	for i, sc := range scans {
		for _, rec := range sc.records {
			b := rec.Bridge
			if b == nil {
				continue
			}
			switch b.Stage {
			case BridgeCommit:
				if b.PeerShard >= 0 && b.PeerShard < n {
					committed[b.PeerShard][b.PrepareSeq] = true
				}
			case BridgeDone, BridgeReconcile:
				committed[i][b.PrepareSeq] = true
			}
		}
	}

	// Independent per-shard replay. An uncommitted prepare is skipped but
	// its sequence number stays consumed: its effects were never published
	// (the engine holds both shard locks until the commit record is
	// appended), so later records cannot depend on it.
	hasEffect := make([]map[uint64]bool, n) // prepare effects present post-replay
	hasMarker := make([]map[uint64]bool, n) // done/reconcile present in stream
	for i := range hasEffect {
		hasEffect[i] = make(map[uint64]bool)
		hasMarker[i] = make(map[uint64]bool)
	}
	for i, sc := range scans {
		for _, rec := range sc.records {
			stage := ""
			if rec.Bridge != nil {
				stage = rec.Bridge.Stage
			}
			switch stage {
			case BridgePrepare:
				if !committed[i][rec.Seq] {
					sc.info.PreparesAborted++
					opts.Logf("wal: shard %d: skipping uncommitted bridge prepare (seq %d)", i, rec.Seq)
					continue
				}
				hasEffect[i][rec.Seq] = true
			case BridgeDone:
				hasMarker[i][rec.Bridge.PrepareSeq] = true
				continue // marker only, no ops
			case BridgeReconcile:
				hasEffect[i][rec.Bridge.PrepareSeq] = true
				hasMarker[i][rec.Bridge.PrepareSeq] = true
			}
			if err := applyToStore(sc.store, rec); err != nil {
				return nil, nil, nil, fmt.Errorf("wal: shard %d: replay: %w", i, err)
			}
			sc.info.RecordsReplayed++
		}
	}

	logs := make([]*Log, n)
	for i, sc := range scans {
		l := &Log{dir: ShardDir(dir, i), opts: opts, lastSeq: sc.info.LastSeq, synced: sc.info.LastSeq}
		l.syncCond = sync.NewCond(&l.mu)
		logs[i] = l
	}
	set := &ShardSet{dir: dir, logs: logs}

	// Reconciliation: a live commit record whose peer stream shows neither
	// the prepare's effect (snapshot coverage or replay) nor a marker lost
	// that prepare to a torn tail — reapply the embedded half and log it.
	for _, sc := range scans {
		for _, rec := range sc.records {
			b := rec.Bridge
			if b == nil || b.Stage != BridgeCommit || b.PeerShard < 0 || b.PeerShard >= n {
				continue
			}
			peer := scans[b.PeerShard]
			if b.PrepareSeq <= peer.info.SnapshotSeq || hasEffect[b.PeerShard][b.PrepareSeq] {
				continue
			}
			repair := &Record{
				Ops:      b.PeerOps,
				NextNode: b.PeerNextNode,
				NextRel:  b.PeerNextRel,
				Bridge:   &BridgeInfo{Stage: BridgeReconcile, PrepareSeq: b.PrepareSeq},
			}
			if err := applyToStore(peer.store, repair); err != nil {
				return nil, nil, nil, fmt.Errorf("wal: shard %d: reconcile prepare %d: %w",
					b.PeerShard, b.PrepareSeq, err)
			}
			if _, err := logs[b.PeerShard].AppendAsync(repair); err != nil {
				return nil, nil, nil, fmt.Errorf("wal: shard %d: reconcile prepare %d: %w",
					b.PeerShard, b.PrepareSeq, err)
			}
			hasEffect[b.PeerShard][b.PrepareSeq] = true
			hasMarker[b.PeerShard][b.PrepareSeq] = true
			peer.info.BridgesReconciled++
			peer.info.LastSeq = logs[b.PeerShard].lastSeq
			opts.Logf("wal: shard %d: reconciled bridge prepare %d from shard commit record",
				b.PeerShard, b.PrepareSeq)
		}
	}

	// Marker repair: a replayed committed prepare without a done/reconcile
	// marker (the crash hit between the commit fsync and the marker append)
	// gets its marker now, restoring the compaction license.
	for i, sc := range scans {
		for _, rec := range sc.records {
			if rec.Bridge == nil || rec.Bridge.Stage != BridgePrepare {
				continue
			}
			if !committed[i][rec.Seq] || hasMarker[i][rec.Seq] {
				continue
			}
			done := &Record{Bridge: &BridgeInfo{Stage: BridgeDone, PrepareSeq: rec.Seq}}
			if _, err := logs[i].AppendAsync(done); err != nil {
				return nil, nil, nil, fmt.Errorf("wal: shard %d: done marker repair: %w", i, err)
			}
			hasMarker[i][rec.Seq] = true
			sc.info.LastSeq = logs[i].lastSeq
		}
	}
	if err := set.SyncAll(); err != nil {
		return nil, nil, nil, fmt.Errorf("wal: open shard set: %w", err)
	}

	// Background fsync loops start only after recovery appends are durable.
	if opts.Fsync == FsyncInterval {
		for _, l := range logs {
			l.stopSync = make(chan struct{})
			l.syncDone = make(chan struct{})
			go l.syncLoop()
		}
	}

	stores := make([]*graph.Store, n)
	infos := make([]*RecoveryInfo, n)
	for i, sc := range scans {
		stores[i], infos[i] = sc.store, sc.info
	}
	return set, stores, infos, nil
}
