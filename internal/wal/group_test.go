package wal

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/value"
)

// groupHarness wires a store to a log the way core.OpenDurable wires them
// since group commit: append under the write lock, wait for durability
// after publication.
func openGroupHarness(t *testing.T, dir string, opts Options) *harness {
	t.Helper()
	l, store, info, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	store.SetCommitHook(func(tx *graph.Tx) error {
		rec := RecordFromTx(tx)
		if rec == nil {
			return nil
		}
		seq, err := l.AppendAsync(rec)
		if err != nil {
			return err
		}
		return tx.OnCommitted(func() error { return l.WaitDurable(seq) })
	})
	h := &harness{t: t, dir: dir, log: l, store: store, info: info}
	t.Cleanup(func() { _ = l.Close() })
	return h
}

func groupMetrics(reg *metrics.Registry) Metrics {
	return Metrics{
		GroupCommitTxs:      reg.Counter("txs", "t"),
		GroupCommitSyncs:    reg.Counter("syncs", "t"),
		GroupCommitBatchTxs: reg.Histogram("batch", "t", []float64{1, 2, 4, 8}),
	}
}

// TestGroupCommitSharedFsync: concurrent committers that have all appended
// before any waits are made durable by far fewer fsyncs than transactions —
// the leader's one sync covers the whole batch.
func TestGroupCommitSharedFsync(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	reg := metrics.NewRegistry()
	m := groupMetrics(reg)
	l.SetMetrics(m)

	const txs = 16
	seqs := make([]uint64, txs)
	for i := 0; i < txs; i++ {
		rec := &Record{Ops: []Op{{Op: OpCreateNode, Node: int64(i + 1)}}}
		seq, err := l.AppendAsync(rec)
		if err != nil {
			t.Fatal(err)
		}
		seqs[i] = seq
	}

	var wg sync.WaitGroup
	errs := make(chan error, txs)
	for _, seq := range seqs {
		wg.Add(1)
		go func(seq uint64) {
			defer wg.Done()
			if err := l.WaitDurable(seq); err != nil {
				errs <- fmt.Errorf("WaitDurable(%d): %w", seq, err)
			}
		}(seq)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	waited := m.GroupCommitTxs.Value()
	syncs := m.GroupCommitSyncs.Value()
	if waited != txs {
		t.Fatalf("GroupCommitTxs = %d, want %d", waited, txs)
	}
	if syncs < 1 || syncs >= txs {
		t.Fatalf("GroupCommitSyncs = %d for %d pre-appended txs, want batching (1 <= syncs < txs)", syncs, txs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything waited on must be durable across reopen.
	_, store, info, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if info.LastSeq != uint64(txs) {
		t.Fatalf("recovered LastSeq = %d, want %d", info.LastSeq, txs)
	}
	if n := store.Stats().Nodes; n != txs {
		t.Fatalf("recovered %d nodes, want %d", n, txs)
	}
}

// TestGroupCommitConcurrentCommitters drives the full store+log pipeline:
// goroutines race through Update (serialized by the write lock) while their
// durability waits overlap; every committed transaction must survive
// reopen, in order, with no sequence gaps.
func TestGroupCommitConcurrentCommitters(t *testing.T) {
	dir := t.TempDir()
	h := openGroupHarness(t, dir, Options{Fsync: FsyncAlways})
	reg := metrics.NewRegistry()
	m := groupMetrics(reg)
	h.log.SetMetrics(m)

	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := h.store.Update(func(tx *graph.Tx) error {
					_, err := tx.CreateNode([]string{"W"}, map[string]value.Value{
						"worker": value.Int(int64(w)),
						"i":      value.Int(int64(i)),
					})
					return err
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := m.GroupCommitTxs.Value(); got != workers*perWorker {
		t.Fatalf("GroupCommitTxs = %d, want %d", got, workers*perWorker)
	}
	if syncs := m.GroupCommitSyncs.Value(); syncs > m.GroupCommitTxs.Value() {
		t.Fatalf("more syncs (%d) than transactions (%d)", syncs, m.GroupCommitTxs.Value())
	}
	before := h.export()
	if err := h.log.Close(); err != nil {
		t.Fatal(err)
	}

	h2 := openHarness(t, dir, Options{Fsync: FsyncAlways})
	if h2.info.LastSeq != workers*perWorker {
		t.Fatalf("recovered LastSeq = %d, want %d", h2.info.LastSeq, workers*perWorker)
	}
	if after := h2.export(); after != before {
		t.Fatal("recovered state differs from pre-close state")
	}
}

// TestWaitDurableAfterCut: a cut (checkpoint barrier) fsyncs the closed
// segment, so pending waiters are already durable and return immediately.
func TestWaitDurableAfterCut(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	seq, err := l.AppendAsync(&Record{Ops: []Op{{Op: OpCreateNode, Node: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Cut(); err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(seq); err != nil {
		t.Fatalf("WaitDurable after Cut: %v", err)
	}
}

// TestWaitDurableNonAlwaysPolicies: under interval/none policies the wait
// is a no-op — durability is the ticker's or the OS's business.
func TestWaitDurableNonAlwaysPolicies(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncInterval, FsyncNone} {
		dir := t.TempDir()
		l, _, _, err := Open(dir, Options{Fsync: policy})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := l.AppendAsync(&Record{Ops: []Op{{Op: OpCreateNode, Node: 1}}})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.WaitDurable(seq); err != nil {
			t.Fatalf("%v: WaitDurable: %v", policy, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWaitDurableClosed: waiting on a closed log fails with ErrClosed when
// the sequence was never synced... but Close itself flushes and syncs, so
// only a wait entered after closing on a fresh append can observe it.
func TestWaitDurableClosed(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := l.AppendAsync(&Record{Ops: []Op{{Op: OpCreateNode, Node: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Close flushed and fsynced the segment: the record is durable and the
	// wait succeeds even though the log is now closed.
	if err := l.WaitDurable(seq); err != nil {
		t.Fatalf("WaitDurable on closed-but-synced log: %v", err)
	}
	if _, err := l.AppendAsync(&Record{}); err != ErrClosed {
		t.Fatalf("AppendAsync on closed log = %v, want ErrClosed", err)
	}
}
