package wal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
)

// FsyncPolicy selects when appended records are forced to stable storage.
type FsyncPolicy int

// Fsync policies. Always fsyncs after every committed transaction (no
// committed work is ever lost, slowest). Interval fsyncs on a background
// ticker (bounded loss window, near-in-memory throughput). None leaves
// flushing to the operating system (fastest; loss window is the OS page
// cache).
const (
	FsyncAlways FsyncPolicy = iota
	FsyncInterval
	FsyncNone
)

// String returns the flag spelling of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNone:
		return "none"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy parses the flag spelling of a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "none":
		return FsyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or none)", s)
	}
}

// Defaults for Options zero values.
const (
	DefaultFsyncInterval = 100 * time.Millisecond
	DefaultSegmentSize   = 16 << 20
)

// Options tunes a log.
type Options struct {
	// Fsync selects the durability/throughput trade-off (FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the ticker period under FsyncInterval
	// (DefaultFsyncInterval when zero).
	FsyncInterval time.Duration
	// SegmentSize is the rotation threshold in bytes (DefaultSegmentSize
	// when zero).
	SegmentSize int64
	// Logf receives recovery and compaction notices (discarded torn tails,
	// unreadable snapshots); nil discards them.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = DefaultFsyncInterval
	}
	if o.SegmentSize <= 0 {
		o.SegmentSize = DefaultSegmentSize
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Metrics holds the log's optional instrumentation. All fields may be nil
// (instrument methods on nil receivers no-op). Install with SetMetrics.
type Metrics struct {
	// RecordsAppended counts records durably assigned a sequence number.
	RecordsAppended *metrics.Counter
	// BytesAppended counts framed bytes written to segments.
	BytesAppended *metrics.Counter
	// FsyncSeconds observes the latency of each fsync of the active
	// segment, whichever policy forced it.
	FsyncSeconds *metrics.Histogram
	// SegmentsOpened counts segment files started (the first open plus
	// every size- or checkpoint-driven rotation).
	SegmentsOpened *metrics.Counter
	// CheckpointSeconds observes end-to-end checkpoint duration: snapshot
	// install, directory syncs and superseded-file removal.
	CheckpointSeconds *metrics.Histogram
	// GroupCommitTxs counts transactions that went through the group-commit
	// durability wait (WaitDurable under FsyncAlways).
	GroupCommitTxs *metrics.Counter
	// GroupCommitSyncs counts the fsyncs those transactions shared; the
	// ratio GroupCommitTxs / GroupCommitSyncs is the achieved batch factor.
	GroupCommitSyncs *metrics.Counter
	// GroupCommitBatchTxs observes how many transactions each shared fsync
	// made durable.
	GroupCommitBatchTxs *metrics.Histogram
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// RecoveryInfo reports what Open found and replayed.
type RecoveryInfo struct {
	// SnapshotSeq is the sequence number covered by the snapshot the store
	// was restored from (0 = no snapshot, recovery started empty).
	SnapshotSeq uint64
	// SnapshotPath is the snapshot file used ("" when none).
	SnapshotPath string
	// RecordsReplayed counts WAL records applied on top of the snapshot.
	RecordsReplayed int
	// SegmentsScanned counts segment files read.
	SegmentsScanned int
	// DiscardedBytes is the size of the torn tail dropped at the first
	// corrupt record, 0 when the log was clean.
	DiscardedBytes int64
	// DiscardedPath is the segment file the torn tail was found in.
	DiscardedPath string
	// LastSeq is the sequence number recovery ended on; appends continue
	// from LastSeq+1.
	LastSeq uint64
	// PreparesAborted counts bridge prepare records skipped because no
	// commit evidence survived — cross-shard transactions that never
	// reached their commit point (sharded recovery only).
	PreparesAborted int
	// BridgesReconciled counts bridge transactions whose prepare record was
	// lost to a torn tail and reapplied from the embedded copy in the
	// surviving commit record (sharded recovery only).
	BridgesReconciled int
}

// Log is an append-only write-ahead log over a directory. Appends are
// serialized by the committing store's write lock in normal operation, but
// the log carries its own mutex so checkpoints and background fsyncs are
// safe against concurrent commits.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File      // active segment, nil until the first append after open/cut
	w       *bufio.Writer // buffers writes to f
	size    int64         // bytes written to the active segment
	lastSeq uint64
	// synced is the highest sequence number known to be on stable storage;
	// group commit (WaitDurable) advances it one shared fsync at a time.
	synced uint64
	// syncing is set while a group-commit leader runs fsync outside mu;
	// rotation and segment close are deferred until it clears.
	syncing  bool
	syncCond *sync.Cond // signals synced/syncing/closed changes
	dirty    bool       // unflushed or unsynced appends under FsyncInterval
	closed   bool
	stopSync chan struct{} // closes the background fsync goroutine
	syncDone chan struct{}
	metrics  Metrics
}

// SetMetrics installs the log's instrumentation. Call it right after Open,
// before appends begin.
func (l *Log) SetMetrics(m Metrics) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.metrics = m
}

// Open recovers the state persisted in dir — newest loadable snapshot, then
// every intact WAL record after it — into a fresh graph store, and returns
// the log ready for appends together with the recovered store. A torn or
// truncated record ends replay: the tail from that point on is discarded
// (reported via RecoveryInfo and Options.Logf), the torn segment is
// truncated to its last intact record, and later segments are removed,
// because their transactions depend on the discarded ones. Opening a
// nonexistent or empty directory yields an empty store.
func Open(dir string, opts Options) (*Log, *graph.Store, *RecoveryInfo, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	segments, snapshots, err := scanDir(dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	info := &RecoveryInfo{}

	// Restore the newest snapshot that loads; an unreadable one (e.g. the
	// machine died while a checkpoint was finalizing) falls back to the
	// previous snapshot plus the still-present WAL segments.
	store := graph.NewStore()
	for _, snap := range snapshots {
		f, err := os.Open(snap.path)
		if err != nil {
			opts.Logf("wal: skipping snapshot %s: %v", snap.path, err)
			continue
		}
		err = store.Import(f)
		f.Close()
		if err != nil {
			opts.Logf("wal: skipping snapshot %s: %v", snap.path, err)
			store = graph.NewStore()
			continue
		}
		info.SnapshotSeq = snap.seq
		info.SnapshotPath = snap.path
		break
	}
	info.LastSeq = info.SnapshotSeq

	// Replay segments in order, skipping records the snapshot already
	// covers, stopping at the first corruption.
	for i, seg := range segments {
		res, err := scanSegment(seg.path)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("wal: open: %w", err)
		}
		info.SegmentsScanned++
		for _, rec := range res.records {
			if rec.Seq <= info.SnapshotSeq {
				continue
			}
			if rec.Seq != info.LastSeq+1 {
				opts.Logf("wal: %s: sequence gap (want %d, got %d); discarding from there",
					seg.path, info.LastSeq+1, rec.Seq)
				res.torn = true
				res.tornReason = "sequence gap"
				break
			}
			tx := store.Begin(graph.ReadWrite)
			if err := ApplyRecord(tx, rec); err != nil {
				tx.Rollback()
				return nil, nil, nil, fmt.Errorf("wal: open: replay: %w", err)
			}
			if err := tx.Commit(); err != nil {
				return nil, nil, nil, fmt.Errorf("wal: open: replay: %w", err)
			}
			info.RecordsReplayed++
			info.LastSeq = rec.Seq
		}
		if res.torn {
			st, err := os.Stat(seg.path)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("wal: open: %w", err)
			}
			info.DiscardedBytes = st.Size() - res.goodLen
			info.DiscardedPath = seg.path
			for _, later := range segments[i+1:] {
				st, err := os.Stat(later.path)
				if err == nil {
					info.DiscardedBytes += st.Size()
				}
				if err := os.Remove(later.path); err != nil {
					return nil, nil, nil, fmt.Errorf("wal: open: drop %s: %w", later.path, err)
				}
			}
			opts.Logf("wal: %s: %s at offset %d; discarded %d byte(s) of torn tail",
				seg.path, res.tornReason, res.goodLen, info.DiscardedBytes)
			if res.goodLen <= int64(len(segMagic)) {
				if err := os.Remove(seg.path); err != nil {
					return nil, nil, nil, fmt.Errorf("wal: open: drop %s: %w", seg.path, err)
				}
			} else if err := os.Truncate(seg.path, res.goodLen); err != nil {
				return nil, nil, nil, fmt.Errorf("wal: open: truncate %s: %w", seg.path, err)
			}
			break
		}
	}

	l := &Log{dir: dir, opts: opts, lastSeq: info.LastSeq, synced: info.LastSeq}
	l.syncCond = sync.NewCond(&l.mu)
	if opts.Fsync == FsyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, store, info, nil
}

// LastSeq returns the sequence number of the most recently appended (or
// recovered) record.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Append assigns the next sequence number to rec and writes it to the
// active segment, rotating first if the segment is full. Under FsyncAlways
// the record is on stable storage when Append returns; a write error leaves
// the record unassigned so the caller can abort the commit.
func (l *Log) Append(rec *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq, err := l.appendLocked(rec)
	if err != nil {
		return 0, err
	}
	switch l.opts.Fsync {
	case FsyncAlways:
		if err := l.flushLocked(true); err != nil {
			rec.Seq = 0
			l.lastSeq = seq - 1
			return 0, err
		}
	case FsyncInterval:
		l.dirty = true
	}
	return seq, nil
}

// AppendAsync assigns the next sequence number to rec and writes it to the
// active segment WITHOUT forcing it to stable storage, whatever the fsync
// policy. The caller makes it durable later with WaitDurable(seq); keeping
// the two apart lets a committer publish its transaction and release the
// store's write lock before waiting on the disk, so concurrent committers
// share one batched fsync (group commit).
func (l *Log) AppendAsync(rec *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq, err := l.appendLocked(rec)
	if err != nil {
		return 0, err
	}
	if l.opts.Fsync == FsyncInterval {
		l.dirty = true
	}
	return seq, nil
}

func (l *Log) appendLocked(rec *Record) (uint64, error) {
	if l.closed {
		return 0, ErrClosed
	}
	rec.Seq = l.lastSeq + 1
	payload, err := json.Marshal(rec)
	if err != nil {
		rec.Seq = 0
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	// Rotation is deferred while a group-commit fsync is in flight: closing
	// the file a leader is syncing would fail, and the few extra records go
	// to the oversized segment harmlessly.
	if l.f == nil || (l.size >= l.opts.SegmentSize && !l.syncing) {
		if err := l.openSegmentLocked(rec.Seq); err != nil {
			rec.Seq = 0
			return 0, err
		}
	}
	buf := frame(nil, payload)
	if _, err := l.w.Write(buf); err != nil {
		rec.Seq = 0
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(buf))
	l.lastSeq = rec.Seq
	l.metrics.RecordsAppended.Inc()
	l.metrics.BytesAppended.Add(int64(len(buf)))
	return rec.Seq, nil
}

// WaitDurable blocks until the record with the given sequence number is on
// stable storage. Under FsyncInterval and FsyncNone it returns immediately
// (durability is the ticker's or the operating system's business). Under
// FsyncAlways it is the follower half of group commit: if an fsync is
// already in flight the caller waits for it; otherwise the caller becomes
// the leader, flushes everything appended so far and runs one fsync outside
// the log mutex — making every concurrent committer durable in a single
// disk operation while later appends keep landing in the buffer.
func (l *Log) WaitDurable(seq uint64) error {
	if l.opts.Fsync != FsyncAlways {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.metrics.GroupCommitTxs.Inc()
	for l.synced < seq {
		if l.closed {
			return ErrClosed
		}
		if l.syncing {
			l.syncCond.Wait()
			continue
		}
		if err := l.leaderSyncLocked(); err != nil {
			return err
		}
	}
	return nil
}

// leaderSyncLocked makes everything appended so far durable with one fsync,
// run outside the mutex so followers can append the next batch meanwhile.
// Called with l.mu held and l.syncing false; returns with l.mu held.
func (l *Log) leaderSyncLocked() error {
	target := l.lastSeq
	prev := l.synced
	if l.f == nil {
		// Segment was cut; the close flushed and fsynced everything.
		l.synced = target
		l.syncCond.Broadcast()
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	f := l.f
	fsyncHist := l.metrics.FsyncSeconds
	l.syncing = true
	l.mu.Unlock()
	var t0 time.Time
	if fsyncHist != nil {
		t0 = time.Now()
	}
	err := f.Sync()
	if !t0.IsZero() {
		fsyncHist.ObserveSince(t0)
	}
	l.mu.Lock()
	l.syncing = false
	l.syncCond.Broadcast()
	if err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.synced = target
	if l.lastSeq == target {
		l.dirty = false
	}
	l.metrics.GroupCommitSyncs.Inc()
	l.metrics.GroupCommitBatchTxs.Observe(float64(target - prev))
	return nil
}

// Cut closes the active segment, so the next append starts a fresh one, and
// returns the last appended sequence number. Checkpointing calls it as the
// barrier of a graph.SnapshotView: with commits briefly quiesced, the
// returned sequence number is exactly the state the pinned snapshot holds.
// Cut waits out any group-commit fsync in flight.
func (l *Log) Cut() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	for l.syncing {
		l.syncCond.Wait()
	}
	if err := l.closeSegmentLocked(); err != nil {
		return 0, err
	}
	return l.lastSeq, nil
}

// Checkpoint durably installs snapshot (a graph.Export document covering
// all records up to and including seq) and compacts the log: the snapshot
// is written to a temporary file, fsynced, renamed into place, and only
// then are the segments and snapshots it supersedes deleted. A crash at any
// point leaves either the old snapshot with the full log, or the new
// snapshot with any not-yet-deleted (and then skipped) old segments — both
// recover to the same state.
func (l *Log) Checkpoint(seq uint64, snapshot []byte) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	ckptHist := l.metrics.CheckpointSeconds
	l.mu.Unlock()
	if ckptHist != nil {
		defer ckptHist.ObserveSince(time.Now())
	}

	if err := writeSnapshotFile(l.dir, seq, snapshot); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}

	// The snapshot is durable; everything it covers can go. Segments whose
	// first record is newer than seq hold post-checkpoint commits and stay.
	segments, snapshots, err := scanDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	for _, seg := range segments {
		if seg.seq <= seq {
			if err := os.Remove(seg.path); err != nil {
				return fmt.Errorf("wal: checkpoint: %w", err)
			}
		}
	}
	for _, snap := range snapshots {
		if snap.seq < seq {
			if err := os.Remove(snap.path); err != nil {
				return fmt.Errorf("wal: checkpoint: %w", err)
			}
		}
	}
	if err := syncDir(l.dir); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	return nil
}

// writeSnapshotFile durably installs a snapshot document covering records
// up to and including seq into dir: written to a temporary file, fsynced,
// renamed into place, directory synced.
func writeSnapshotFile(dir string, seq uint64, snapshot []byte) error {
	final := filepath.Join(dir, snapshotName(seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(snapshot); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(dir)
}

// Close flushes and fsyncs the active segment and stops the background
// fsync goroutine. The log cannot be used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	for l.syncing {
		l.syncCond.Wait()
	}
	l.closed = true
	err := l.closeSegmentLocked()
	l.syncCond.Broadcast()
	l.mu.Unlock()
	if l.stopSync != nil {
		close(l.stopSync)
		<-l.syncDone
	}
	return err
}

// Sync forces buffered appends to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.f == nil {
		return nil
	}
	return l.flushLocked(true)
}

func (l *Log) openSegmentLocked(firstSeq uint64) error {
	if err := l.closeSegmentLocked(); err != nil {
		return err
	}
	path := filepath.Join(l.dir, segmentName(firstSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: segment: %w", err)
	}
	w := bufio.NewWriterSize(f, 64<<10)
	if _, err := w.WriteString(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment: %w", err)
	}
	l.f, l.w, l.size = f, w, int64(len(segMagic))
	l.metrics.SegmentsOpened.Inc()
	return nil
}

func (l *Log) closeSegmentLocked() error {
	if l.f == nil {
		return nil
	}
	err := l.flushLocked(true)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f, l.w, l.size, l.dirty = nil, nil, 0, false
	return err
}

func (l *Log) flushLocked(sync bool) error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if sync {
		var t0 time.Time
		if l.metrics.FsyncSeconds != nil {
			t0 = time.Now()
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		if !t0.IsZero() {
			l.metrics.FsyncSeconds.ObserveSince(t0)
		}
		l.synced = l.lastSeq
	}
	l.dirty = false
	return nil
}

// syncLoop is the FsyncInterval background flusher.
func (l *Log) syncLoop() {
	defer close(l.syncDone)
	ticker := time.NewTicker(l.opts.FsyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-l.stopSync:
			return
		case <-ticker.C:
			l.mu.Lock()
			if !l.closed && l.dirty && l.f != nil {
				if err := l.flushLocked(true); err != nil {
					l.opts.Logf("wal: background fsync: %v", err)
				}
			}
			l.mu.Unlock()
		}
	}
}
