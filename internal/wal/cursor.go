package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// This file is the leader half of WAL-shipping replication: a replayable
// cursor that streams committed records to followers, plus the directory
// seeding primitives a follower uses to bootstrap its own log from a leader
// snapshot (see internal/replica).
//
// A Cursor reads the same segment files the appender writes, through its own
// read-only file handle, and never takes the log mutex while touching the
// disk — it only consults the mutex-guarded watermarks to decide how far it
// may read. Two invariants make that safe:
//
//   - Segment bytes are append-only while a segment is active and immutable
//     once it is cut; checkpointing only ever removes whole segment files.
//     A torn frame at the end of the active segment is an in-flight append
//     and is simply left for the next poll.
//   - A cursor serves only records at or below the log's durability
//     watermark (DurableSeq). A follower can therefore never hold a record
//     that a crashed-and-restarted leader has lost — the divergence that
//     would otherwise fork the replica permanently.

// TruncatedError reports that a cursor's position precedes the log's
// retained tail: a checkpoint has compacted the requested records into a
// snapshot. The reader must re-bootstrap from a snapshot covering TailStart
// and stream from there.
type TruncatedError struct {
	// Requested is the first sequence number the cursor needed.
	Requested uint64
	// TailStart is the earliest position a fresh cursor can stream from
	// (the argument to give Cursor after loading a covering snapshot).
	TailStart uint64
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("wal: records before seq %d are compacted (tail starts after %d); re-bootstrap from a snapshot",
		e.Requested, e.TailStart)
}

// DurableSeq returns the highest sequence number a replication cursor may
// serve: the fsync watermark under FsyncAlways and FsyncInterval, or
// everything appended under FsyncNone (which promises no durability to
// begin with, so shipping the unsynced tail loses nothing that was ever
// guaranteed).
func (l *Log) DurableSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opts.Fsync == FsyncNone {
		return l.lastSeq
	}
	return l.synced
}

// replicationBound returns DurableSeq and, under FsyncNone, flushes the
// append buffer first so every servable record is actually on file. Under
// the other policies the watermark only advances after a flush+fsync, so
// synced records are on file by construction and the readers never touch
// the write path.
func (l *Log) replicationBound() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.opts.Fsync != FsyncNone {
		return l.synced, nil
	}
	if l.f != nil {
		if err := l.w.Flush(); err != nil {
			return 0, fmt.Errorf("wal: flush: %w", err)
		}
	}
	return l.lastSeq, nil
}

// TailStart returns the earliest position a Cursor can currently stream
// from: Cursor(TailStart()) replays every retained record. A follower whose
// apply cursor is older than TailStart must re-bootstrap from a snapshot.
func (l *Log) TailStart() (uint64, error) {
	l.mu.Lock()
	last := l.lastSeq
	l.mu.Unlock()
	segments, snapshots, err := scanDir(l.dir)
	if err != nil {
		return 0, err
	}
	if len(segments) > 0 {
		return segments[0].seq - 1, nil
	}
	if len(snapshots) > 0 {
		return snapshots[0].seq, nil
	}
	return last, nil
}

// Cursor is a replayable tail reader over the log: successive Next calls
// return the records after the cursor's position, in order, exactly once,
// surviving segment rotation (Cut) underneath it. A cursor is not safe for
// concurrent use by multiple goroutines, but any number of cursors may read
// while one appender writes.
type Cursor struct {
	l    *Log
	next uint64 // sequence number of the next record to deliver

	f    *os.File // open segment, nil between segments
	path string
	off  int64 // read offset past the last consumed frame
}

// Cursor returns a cursor positioned just past sequence number after
// (after=0 streams the whole retained log). The position may precede the
// retained tail; Next then reports a *TruncatedError.
func (l *Log) Cursor(after uint64) *Cursor {
	return &Cursor{l: l, next: after + 1}
}

// Pos returns the sequence number of the last record Next delivered (or the
// initial position).
func (c *Cursor) Pos() uint64 { return c.next - 1 }

// Close releases the cursor's file handle. The cursor remains usable; the
// next Next call reopens the segment it needs.
func (c *Cursor) Close() {
	if c.f != nil {
		c.f.Close()
		c.f, c.path, c.off = nil, "", 0
	}
}

// Next returns up to max records following the cursor's position (max <= 0
// means 256). An empty result means the cursor is caught up with the
// durable watermark — poll again later. Next returns a *TruncatedError when
// the position has been compacted away by a checkpoint.
func (c *Cursor) Next(max int) ([]*Record, error) {
	if max <= 0 {
		max = 256
	}
	bound, err := c.l.replicationBound()
	if err != nil {
		return nil, err
	}
	var out []*Record
	for len(out) < max && c.next <= bound {
		if c.f == nil {
			if _, err := c.seek(); err != nil {
				return out, err
			}
			if c.f == nil {
				return out, nil // no segment holds c.next yet
			}
		}
		got, err := c.readFrames(&out, bound, max)
		if err != nil {
			return out, err
		}
		if got == 0 {
			// The open segment is exhausted below the bound: either a
			// rotation moved the stream to a newer segment, or the appender
			// simply has not flushed more bytes here yet.
			moved, err := c.seek()
			if err != nil {
				return out, err
			}
			if !moved {
				return out, nil
			}
		}
	}
	return out, nil
}

// seek positions the cursor on the segment holding c.next, keeping the
// already-open file when it is still the right one. It returns whether the
// open file changed. A position older than every retained segment and
// snapshot yields a *TruncatedError.
func (c *Cursor) seek() (bool, error) {
	segments, snapshots, err := scanDir(c.l.dir)
	if err != nil {
		return false, err
	}
	var target fileRef
	found := false
	for _, seg := range segments {
		if seg.seq > c.next {
			break
		}
		target = seg
		found = true
	}
	if !found {
		if len(segments) > 0 {
			return false, &TruncatedError{Requested: c.next, TailStart: segments[0].seq - 1}
		}
		if len(snapshots) > 0 && snapshots[0].seq >= c.next {
			return false, &TruncatedError{Requested: c.next, TailStart: snapshots[0].seq}
		}
		c.Close()
		return false, nil
	}
	if c.f != nil && c.path == target.path {
		return false, nil
	}
	f, err := os.Open(target.path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil // a checkpoint raced the scan; the next poll re-resolves
		}
		return false, err
	}
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != segMagic {
		f.Close()
		if err != nil {
			return false, nil // header still being written; retry next poll
		}
		return false, fmt.Errorf("wal: cursor: %s: bad segment header", target.path)
	}
	c.Close()
	c.f, c.path, c.off = f, target.path, int64(len(segMagic))
	return true, nil
}

// readFrames parses intact frames from the current offset, appending
// records with sequence numbers in [c.next, bound] to out (up to max total)
// and skipping older ones. It returns how many records it consumed
// (delivered or skipped). The offset only advances past fully intact,
// consumed frames, so a torn in-flight append self-heals on the next call.
func (c *Cursor) readFrames(out *[]*Record, bound uint64, max int) (int, error) {
	st, err := c.f.Stat()
	if err != nil {
		return 0, err
	}
	avail := st.Size() - c.off
	if avail <= 0 {
		return 0, nil
	}
	data := make([]byte, avail)
	n, err := c.f.ReadAt(data, c.off)
	if err != nil && err != io.EOF {
		return 0, err
	}
	data = data[:n]
	consumed := 0
	off := 0
	for len(*out) < max {
		rest := len(data) - off
		if rest < frameHdrSize {
			break
		}
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > maxRecordSize || rest-frameHdrSize < length {
			break // in-flight append; the tail lands by the next poll
		}
		payload := data[off+frameHdrSize : off+frameHdrSize+length]
		if crc32.Checksum(payload, crcTable) != sum {
			break // frame only partially flushed
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		if rec.Seq > bound {
			break // appended but not durable yet: not servable
		}
		size := frameHdrSize + length
		if rec.Seq < c.next {
			c.off += int64(size)
			off += size
			consumed++
			continue
		}
		if rec.Seq != c.next {
			return consumed, fmt.Errorf("wal: cursor: %s: sequence gap (want %d, got %d)",
				c.path, c.next, rec.Seq)
		}
		*out = append(*out, &rec)
		c.next = rec.Seq + 1
		c.off += int64(size)
		off += size
		consumed++
	}
	return consumed, nil
}

// AppendReplicated appends a record shipped from a replication leader,
// preserving the leader-assigned sequence number, so a follower's log
// mirrors the leader's record stream exactly and the follower's LastSeq is
// its durable apply cursor. Records must arrive in order: rec.Seq must be
// exactly LastSeq()+1. Durability follows the log's fsync policy; batch
// callers append many records and then WaitDurable the last one, sharing
// one group-commit fsync.
func (l *Log) AppendReplicated(rec *Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if rec.Seq != l.lastSeq+1 {
		return fmt.Errorf("wal: replicated append out of order: got seq %d, want %d",
			rec.Seq, l.lastSeq+1)
	}
	want := rec.Seq
	if _, err := l.appendLocked(rec); err != nil {
		rec.Seq = want
		return err
	}
	if l.opts.Fsync == FsyncInterval {
		l.dirty = true
	}
	return nil
}

// HasState reports whether dir already holds log state (segments or
// snapshots). A missing directory counts as empty.
func HasState(dir string) (bool, error) {
	segments, snapshots, err := scanDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	return len(segments)+len(snapshots) > 0, nil
}

// SeedSnapshot installs a leader snapshot (a graph.Export document covering
// records up to and including seq) as the bootstrap image of a fresh
// replica directory: a subsequent Open recovers it and replicated appends
// continue at seq+1. It refuses a directory that already holds log state;
// seq 0 (an empty leader) seeds nothing.
func SeedSnapshot(dir string, seq uint64, snapshot []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: seed: %w", err)
	}
	has, err := HasState(dir)
	if err != nil {
		return fmt.Errorf("wal: seed: %w", err)
	}
	if has {
		return fmt.Errorf("wal: seed: %s already holds log state", dir)
	}
	if seq == 0 {
		return nil
	}
	if err := writeSnapshotFile(dir, seq, snapshot); err != nil {
		return fmt.Errorf("wal: seed: %w", err)
	}
	return nil
}

// RemoveState deletes every segment and snapshot in dir, so a replica whose
// cursor fell behind the leader's retained tail can re-bootstrap from a
// fresh snapshot. Any log over dir must be closed first.
func RemoveState(dir string) error {
	segments, snapshots, err := scanDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, f := range append(segments, snapshots...) {
		if err := os.Remove(f.path); err != nil {
			return err
		}
	}
	return syncDir(dir)
}
