package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// On-disk layout of a log directory:
//
//	wal-<firstSeq, 16 hex digits>.seg    log segments, first record's seq in the name
//	snapshot-<seq, 16 hex digits>.json   graph.Export documents covering records ≤ seq
//	*.tmp                                in-flight snapshot writes, discarded on open
//
// A segment starts with an 8-byte magic string, followed by framed records:
//
//	+----------------------+----------------------+------------------+
//	| length uint32 LE     | CRC32-C uint32 LE    | payload (JSON)   |
//	+----------------------+----------------------+------------------+
//
// The CRC covers the payload. A record whose frame extends past the end of
// the file, whose length is implausible, or whose CRC does not match marks
// the torn tail: everything from that point on is discarded at recovery.

const (
	segMagic      = "RKMWAL1\n"
	frameHdrSize  = 8
	maxRecordSize = 1 << 30

	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snapshot-"
	snapSuffix = ".json"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix)
}

func snapshotName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix)
}

func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hexPart := name[len(prefix) : len(name)-len(suffix)]
	if len(hexPart) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// frame appends the length/CRC header and payload to buf.
func frame(buf, payload []byte) []byte {
	var hdr [frameHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	return append(append(buf, hdr[:]...), payload...)
}

// scanResult is the outcome of walking one segment file.
type scanResult struct {
	records []*Record
	// goodLen is the byte offset just past the last intact record; anything
	// beyond it is the torn tail.
	goodLen int64
	// torn reports whether the file ends in a corrupt or truncated record.
	torn bool
	// tornReason describes the first corruption encountered.
	tornReason string
}

// scanSegment decodes every intact record of a segment file, stopping at
// the first corrupt or truncated one.
func scanSegment(path string) (scanResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return scanResult{}, err
	}
	res := scanResult{}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		res.torn = true
		res.tornReason = "bad segment header"
		return res, nil
	}
	off := int64(len(segMagic))
	res.goodLen = off
	for {
		rest := int64(len(data)) - off
		if rest == 0 {
			return res, nil
		}
		if rest < frameHdrSize {
			res.torn = true
			res.tornReason = "truncated record header"
			return res, nil
		}
		length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > maxRecordSize || rest-frameHdrSize < length {
			res.torn = true
			res.tornReason = "truncated record payload"
			return res, nil
		}
		payload := data[off+frameHdrSize : off+frameHdrSize+length]
		if crc32.Checksum(payload, crcTable) != sum {
			res.torn = true
			res.tornReason = "checksum mismatch"
			return res, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			res.torn = true
			res.tornReason = "undecodable record payload"
			return res, nil
		}
		off += frameHdrSize + length
		res.goodLen = off
		res.records = append(res.records, &rec)
	}
}

// fileRef is a directory entry carrying the sequence number encoded in its
// name.
type fileRef struct {
	path string
	seq  uint64
}

// scanDir lists the segments (ascending by first sequence) and snapshots
// (descending by covered sequence) of a log directory, removing stale
// temporary files left by an interrupted checkpoint.
func scanDir(dir string) (segments, snapshots []fileRef, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if seq, ok := parseSeqName(name, segPrefix, segSuffix); ok {
			segments = append(segments, fileRef{filepath.Join(dir, name), seq})
		} else if seq, ok := parseSeqName(name, snapPrefix, snapSuffix); ok {
			snapshots = append(snapshots, fileRef{filepath.Join(dir, name), seq})
		}
	}
	sort.Slice(segments, func(i, j int) bool { return segments[i].seq < segments[j].seq })
	sort.Slice(snapshots, func(i, j int) bool { return snapshots[i].seq > snapshots[j].seq })
	return segments, snapshots, nil
}

// syncDir fsyncs a directory so renames and removals inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
