package wal

// Fault injection for the two-shard bridge commit protocol: a workload with
// a cross-shard bridge transaction is committed under FsyncAlways, then the
// shard directory tree is copied and mutilated to the exact file states a
// crash could leave at each stage of AppendBridge — prepare durable but
// commit lost, commit durable but prepare lost, both durable but the done
// marker lost — and recovery must land on the committed outcome every time:
// an aborted bridge leaves no trace, a committed bridge is applied exactly
// once (reconciled from the embedded copy when the prepare was torn away),
// and two recoveries of the same crash image export byte-identical shards.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/value"
)

// copyTree copies a shard directory tree (one level of subdirectories).
func copyTree(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			t.Fatalf("unexpected file %s at shard-set root", e.Name())
		}
		sub := filepath.Join(dst, e.Name())
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		files, err := os.ReadDir(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			data, err := os.ReadFile(filepath.Join(src, e.Name(), f.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(sub, f.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	return dst
}

// shardHarness is a sharded store wired to a ShardSet the way
// core.OpenShardedDurable wires them.
type shardHarness struct {
	t     *testing.T
	dir   string
	set   *ShardSet
	ss    *graph.ShardedStore
	infos []*RecoveryInfo
}

func openShardHarness(t *testing.T, dir string, n int, opts Options) *shardHarness {
	t.Helper()
	set, stores, infos, err := OpenShardSet(dir, n, opts)
	if err != nil {
		t.Fatalf("OpenShardSet: %v", err)
	}
	ss, err := graph.AttachShards(stores)
	if err != nil {
		t.Fatalf("AttachShards: %v", err)
	}
	for i := 0; i < n; i++ {
		l := set.Log(i)
		ss.Shard(i).SetCommitHook(func(tx *graph.Tx) error {
			rec := RecordFromTx(tx)
			if rec == nil {
				return nil
			}
			_, err := l.Append(rec)
			return err
		})
	}
	h := &shardHarness{t: t, dir: dir, set: set, ss: ss, infos: infos}
	t.Cleanup(func() { _ = set.Close() })
	return h
}

func (h *shardHarness) update(shard int, fn func(tx *graph.Tx) error) {
	h.t.Helper()
	if err := h.ss.Update(shard, fn); err != nil {
		h.t.Fatalf("update shard %d: %v", shard, err)
	}
}

// bridge commits fn through the two-shard protocol, sealing with
// AppendBridge exactly like core's sealBridge.
func (h *shardHarness) bridge(a, b int, fn func(bt *graph.BridgeTx) error) {
	h.t.Helper()
	bt, err := h.ss.BeginBridge(a, b)
	if err != nil {
		h.t.Fatal(err)
	}
	if err := fn(bt); err != nil {
		bt.Rollback()
		h.t.Fatal(err)
	}
	lo, hi := bt.Shards()
	err = bt.Commit(func(loTx, hiTx *graph.Tx) error {
		loRec, hiRec := RecordFromTx(loTx), RecordFromTx(hiTx)
		committed, err := h.set.AppendBridge(lo, hi, loRec, hiRec)
		if err != nil && !committed {
			return err
		}
		return err
	})
	if err != nil {
		h.t.Fatalf("bridge commit: %v", err)
	}
}

func (h *shardHarness) export(shard int) string {
	h.t.Helper()
	var b strings.Builder
	if err := h.ss.Shard(shard).Export(&b); err != nil {
		h.t.Fatalf("export shard %d: %v", shard, err)
	}
	return b.String()
}

func (h *shardHarness) exports(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = h.export(i)
	}
	return out
}

func (h *shardHarness) close() {
	h.t.Helper()
	if err := h.set.Close(); err != nil {
		h.t.Fatal(err)
	}
}

// buildBridgeWorkload commits two intra-shard transactions per shard and
// then one bridge transaction between shards 0 and 1, returning the
// per-shard exports before and after the bridge.
func buildBridgeWorkload(t *testing.T, h *shardHarness) (pre, post []string) {
	t.Helper()
	ends := make([]graph.NodeID, 2)
	for s := 0; s < 2; s++ {
		s := s
		for i := 0; i < 2; i++ {
			i := i
			h.update(s, func(tx *graph.Tx) error {
				id, err := tx.CreateNode([]string{"Event"}, map[string]value.Value{
					"shard": value.Int(int64(s)), "i": value.Int(int64(i)),
				})
				ends[s] = id
				return err
			})
		}
	}
	pre = h.exports(2)
	h.bridge(0, 1, func(bt *graph.BridgeTx) error {
		a, err := bt.CreateNodeIn(0, []string{"Span"}, nil)
		if err != nil {
			return err
		}
		b, err := bt.CreateNodeIn(1, []string{"Span"}, nil)
		if err != nil {
			return err
		}
		if _, err := bt.CreateRel(a, b, "BRIDGES", map[string]value.Value{"w": value.Int(7)}); err != nil {
			return err
		}
		// A shard-local side effect inside the bridge, so each half carries
		// more than the bridge rel itself.
		return bt.SetNodeProp(ends[0], "bridged", value.Bool(true))
	})
	return pre, h.exports(2)
}

// segOffsets locates shard i's single segment and the frame offsets within.
func segOffsets(t *testing.T, dir string, shard int) (path string, offs []int64, size int64) {
	t.Helper()
	sdir := ShardDir(dir, shard)
	segs := listFiles(t, sdir, segSuffix)
	if len(segs) != 1 {
		t.Fatalf("shard %d segments = %v, want one", shard, segs)
	}
	path = filepath.Join(sdir, segs[0])
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, frameOffsets(t, path), st.Size()
}

// TestBridgeCrashStages mutilates a crash image at each stage of the
// two-shard commit protocol and checks each recovery outcome.
func TestBridgeCrashStages(t *testing.T) {
	dir := t.TempDir()
	h := openShardHarness(t, dir, 2, Options{Fsync: FsyncAlways})
	pre, post := buildBridgeWorkload(t, h)
	h.close()

	// Stream shapes: shard 0 (lo) holds [intra, intra, bridge commit];
	// shard 1 (hi) holds [intra, intra, bridge prepare, done marker].
	_, loOffs, _ := segOffsets(t, dir, 0)
	if len(loOffs) != 3 {
		t.Fatalf("lo stream has %d records, want 3", len(loOffs))
	}
	_, hiOffs, _ := segOffsets(t, dir, 1)
	if len(hiOffs) != 4 {
		t.Fatalf("hi stream has %d records, want 4", len(hiOffs))
	}

	// Crash after the prepare fsync, before the commit record reached disk:
	// the lo stream misses the commit, the hi stream misses the done marker
	// (it is only appended after the commit is durable). The bridge never
	// committed — recovery must skip the dangling prepare.
	t.Run("commit-lost", func(t *testing.T) {
		crash := copyTree(t, dir)
		loSeg, loOffs, _ := segOffsets(t, crash, 0)
		hiSeg, hiOffs, _ := segOffsets(t, crash, 1)
		if err := os.Truncate(loSeg, loOffs[2]); err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(hiSeg, hiOffs[3]); err != nil {
			t.Fatal(err)
		}
		h2 := openShardHarness(t, crash, 2, Options{Fsync: FsyncAlways})
		for s := 0; s < 2; s++ {
			if got := h2.export(s); got != pre[s] {
				t.Fatalf("shard %d: aborted bridge left a trace in recovered state", s)
			}
		}
		if h2.infos[1].PreparesAborted != 1 {
			t.Fatalf("hi PreparesAborted = %d, want 1", h2.infos[1].PreparesAborted)
		}
		if h2.infos[0].RecordsReplayed != 2 || h2.infos[1].RecordsReplayed != 2 {
			t.Fatalf("replayed = (%d, %d), want (2, 2)",
				h2.infos[0].RecordsReplayed, h2.infos[1].RecordsReplayed)
		}
		// The set must keep working: a fresh bridge after recovery survives
		// another round trip.
		h2.bridge(0, 1, func(bt *graph.BridgeTx) error {
			a, err := bt.CreateNodeIn(0, []string{"Retry"}, nil)
			if err != nil {
				return err
			}
			b, err := bt.CreateNodeIn(1, []string{"Retry"}, nil)
			if err != nil {
				return err
			}
			_, err = bt.CreateRel(a, b, "BRIDGES", nil)
			return err
		})
		want := h2.exports(2)
		h2.close()
		h3 := openShardHarness(t, crash, 2, Options{Fsync: FsyncAlways})
		for s := 0; s < 2; s++ {
			if got := h3.export(s); got != want[s] {
				t.Fatalf("shard %d: post-crash bridge lost on second recovery", s)
			}
		}
	})

	// Crash that tears the prepare out of the hi stream while the commit
	// record survives in lo: the bridge committed, so recovery must reapply
	// the hi half from the commit record's embedded copy — exactly once,
	// with the repair itself durable across further recoveries.
	t.Run("prepare-lost", func(t *testing.T) {
		crash := copyTree(t, dir)
		hiSeg, hiOffs, _ := segOffsets(t, crash, 1)
		if err := os.Truncate(hiSeg, hiOffs[2]); err != nil {
			t.Fatal(err)
		}
		h2 := openShardHarness(t, crash, 2, Options{Fsync: FsyncAlways})
		for s := 0; s < 2; s++ {
			if got := h2.export(s); got != post[s] {
				t.Fatalf("shard %d: recovered state differs from committed bridge state", s)
			}
		}
		if h2.infos[1].BridgesReconciled != 1 {
			t.Fatalf("BridgesReconciled = %d, want 1", h2.infos[1].BridgesReconciled)
		}
		h2.close()
		// Second recovery: the reconcile record replays as the hi half; no
		// second reconciliation, identical bytes (exactly-once application).
		h3 := openShardHarness(t, crash, 2, Options{Fsync: FsyncAlways})
		for s := 0; s < 2; s++ {
			if got := h3.export(s); got != post[s] {
				t.Fatalf("shard %d: second recovery diverged", s)
			}
		}
		if h3.infos[1].BridgesReconciled != 0 {
			t.Fatalf("second recovery reconciled %d bridges, want 0",
				h3.infos[1].BridgesReconciled)
		}
	})

	// Crash between the commit fsync and the done-marker append: both halves
	// are durable, only the compaction license is missing. Recovery replays
	// normally and repairs the marker.
	t.Run("done-marker-lost", func(t *testing.T) {
		crash := copyTree(t, dir)
		hiSeg, hiOffs, _ := segOffsets(t, crash, 1)
		if err := os.Truncate(hiSeg, hiOffs[3]); err != nil {
			t.Fatal(err)
		}
		h2 := openShardHarness(t, crash, 2, Options{Fsync: FsyncAlways})
		for s := 0; s < 2; s++ {
			if got := h2.export(s); got != post[s] {
				t.Fatalf("shard %d: recovered state differs from committed bridge state", s)
			}
		}
		if h2.infos[1].BridgesReconciled != 0 || h2.infos[1].PreparesAborted != 0 {
			t.Fatalf("info = %+v, want plain replay", h2.infos[1])
		}
		h2.close()
		// The repaired marker must now be durable in the hi stream.
		if !hiStreamHasDoneMarker(t, crash, 3) {
			t.Fatal("done marker not repaired in the hi stream")
		}
	})
}

// hiStreamHasDoneMarker reports whether shard 1's stream holds a durable
// done or reconcile marker for the given prepare sequence.
func hiStreamHasDoneMarker(t *testing.T, dir string, prepSeq uint64) bool {
	t.Helper()
	sdir := ShardDir(dir, 1)
	for _, name := range listFiles(t, sdir, segSuffix) {
		res, err := scanSegment(filepath.Join(sdir, name))
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range res.records {
			if b := rec.Bridge; b != nil && b.PrepareSeq == prepSeq &&
				(b.Stage == BridgeDone || b.Stage == BridgeReconcile) {
				return true
			}
		}
	}
	return false
}

// TestBridgeCommitTornEveryOffset truncates the lo stream at every byte
// offset within the bridge commit record (the hi stream consistently missing
// its done marker, as in a real crash): any partial commit record aborts the
// bridge, the full record commits it, and re-recovering the same image is
// byte-identical in both shards.
func TestBridgeCommitTornEveryOffset(t *testing.T) {
	dir := t.TempDir()
	h := openShardHarness(t, dir, 2, Options{Fsync: FsyncAlways})
	pre, post := buildBridgeWorkload(t, h)
	h.close()

	_, loOffs, loLen := segOffsets(t, dir, 0)
	commitStart := loOffs[2]
	for cut := commitStart; cut <= loLen; cut++ {
		crash := copyTree(t, dir)
		loSeg, _, _ := segOffsets(t, crash, 0)
		hiSeg, hiOffs, _ := segOffsets(t, crash, 1)
		if err := os.Truncate(loSeg, cut); err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(hiSeg, hiOffs[3]); err != nil {
			t.Fatal(err)
		}
		want := pre
		if cut == loLen {
			want = post
		}
		h2 := openShardHarness(t, crash, 2, Options{Fsync: FsyncAlways})
		got := h2.exports(2)
		for s := 0; s < 2; s++ {
			if got[s] != want[s] {
				t.Fatalf("cut at %d/%d: shard %d recovered wrong state", cut, loLen, s)
			}
		}
		h2.close()
		// Recovery is deterministic and repairs are durable: recovering the
		// recovered image again exports byte-identical shards.
		h3 := openShardHarness(t, crash, 2, Options{Fsync: FsyncAlways})
		for s := 0; s < 2; s++ {
			if h3.export(s) != got[s] {
				t.Fatalf("cut at %d: shard %d second recovery not byte-identical", cut, s)
			}
		}
		h3.close()
	}
}

// TestShardCheckpointKeepsBridgeEvidence checkpoints the lo shard (compacting
// its commit record away) and then tears the prepare out of the hi stream:
// because checkpoints SyncAll first, the done marker must already be durable
// and the hi shard must still recover the bridge (from marker-licensed
// replay, never by losing it).
func TestShardCheckpointKeepsBridgeEvidence(t *testing.T) {
	dir := t.TempDir()
	h := openShardHarness(t, dir, 2, Options{Fsync: FsyncAlways})
	_, post := buildBridgeWorkload(t, h)

	// Checkpoint shard 0 the way core.CheckpointShard does: cut, SyncAll,
	// export, compact.
	var seq uint64
	view, err := h.ss.Shard(0).SnapshotView(func() error {
		var err error
		seq, err = h.set.Log(0).Cut()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	exportErr := view.Export(&buf)
	view.Rollback()
	if exportErr != nil {
		t.Fatal(exportErr)
	}
	if err := h.set.SyncAll(); err != nil {
		t.Fatal(err)
	}
	if err := h.set.Log(0).Checkpoint(seq, []byte(buf.String())); err != nil {
		t.Fatal(err)
	}
	h.close()

	// The commit record is compacted out of lo; the hi stream still holds
	// prepare + done. A crash image cannot lose the prepare without a torn
	// tail, which also consumes the done marker that followed it.
	crash := copyTree(t, dir)
	_, hiOffs, _ := segOffsets(t, crash, 1)
	if len(hiOffs) != 4 {
		t.Fatalf("hi stream has %d records, want 4", len(hiOffs))
	}
	h2 := openShardHarness(t, crash, 2, Options{Fsync: FsyncAlways})
	for s := 0; s < 2; s++ {
		if got := h2.export(s); got != post[s] {
			t.Fatalf("shard %d: state lost after lo-only checkpoint", s)
		}
	}
	if h2.infos[0].SnapshotSeq != seq {
		t.Fatalf("lo SnapshotSeq = %d, want %d", h2.infos[0].SnapshotSeq, seq)
	}
	h2.close()
}

// TestConcurrentBridgeRecovery runs many bridge and intra-shard commits
// concurrently, closes cleanly, and checks recovery reproduces every shard
// byte-for-byte — the protocol under contention, not just one staged tx.
func TestConcurrentBridgeRecovery(t *testing.T) {
	dir := t.TempDir()
	const shards = 3
	h := openShardHarness(t, dir, shards, Options{Fsync: FsyncAlways})
	done := make(chan error, 2*shards)
	for s := 0; s < shards; s++ {
		s := s
		go func() {
			for i := 0; i < 10; i++ {
				if err := h.ss.Update(s, func(tx *graph.Tx) error {
					_, err := tx.CreateNode([]string{"Intra"}, map[string]value.Value{
						"s": value.Int(int64(s)), "i": value.Int(int64(i)),
					})
					return err
				}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
		go func() {
			peer := (s + 1) % shards
			for i := 0; i < 10; i++ {
				bt, err := h.ss.BeginBridge(s, peer)
				if err == nil {
					var a, b graph.NodeID
					a, err = bt.CreateNodeIn(s, []string{"End"}, nil)
					if err == nil {
						b, err = bt.CreateNodeIn(peer, []string{"End"}, nil)
					}
					if err == nil {
						_, err = bt.CreateRel(a, b, "BRIDGES", nil)
					}
					if err != nil {
						bt.Rollback()
					} else {
						lo, hi := bt.Shards()
						err = bt.Commit(func(loTx, hiTx *graph.Tx) error {
							committed, err := h.set.AppendBridge(lo, hi,
								RecordFromTx(loTx), RecordFromTx(hiTx))
							if err != nil && !committed {
								return err
							}
							return err
						})
					}
				}
				if err != nil {
					done <- fmt.Errorf("bridge %d->%d: %w", s, peer, err)
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 2*shards; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	want := h.exports(shards)
	h.close()

	h2 := openShardHarness(t, dir, shards, Options{Fsync: FsyncAlways})
	for s := 0; s < shards; s++ {
		if got := h2.export(s); got != want[s] {
			t.Fatalf("shard %d: recovery differs from pre-close state", s)
		}
	}
	var aborted, reconciled int
	for _, info := range h2.infos {
		aborted += info.PreparesAborted
		reconciled += info.BridgesReconciled
	}
	if aborted != 0 || reconciled != 0 {
		t.Fatalf("clean shutdown recovered with %d aborts, %d reconciles", aborted, reconciled)
	}
}
