package wal

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/value"
)

// commitNode commits one single-node transaction (the commit hook appends
// the record) and returns nothing; sequence numbers advance by one each.
func commitNode(h *harness, i int) {
	h.t.Helper()
	h.update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Item"}, map[string]value.Value{"i": value.Int(int64(i))})
		return err
	})
}

// drain reads records from cur until it has n of them, failing the test if
// a read errors or no progress happens for several seconds. Empty polls
// sleep briefly so a concurrent committer is never starved for CPU.
func drain(t *testing.T, cur *Cursor, n int) []*Record {
	t.Helper()
	var out []*Record
	lastProgress := time.Now()
	for len(out) < n {
		recs, err := cur.Next(n - len(out))
		if err != nil {
			t.Fatalf("cursor: %v", err)
		}
		if len(recs) == 0 {
			if time.Since(lastProgress) > 15*time.Second {
				t.Fatalf("cursor stalled at %d/%d records", len(out), n)
			}
			time.Sleep(100 * time.Microsecond)
			continue
		}
		lastProgress = time.Now()
		out = append(out, recs...)
	}
	return out
}

// assertContiguous verifies recs carry sequence numbers from..from+len-1 in
// order — every record exactly once.
func assertContiguous(t *testing.T, recs []*Record, from uint64) {
	t.Helper()
	for i, rec := range recs {
		if want := from + uint64(i); rec.Seq != want {
			t.Fatalf("record %d: seq %d, want %d", i, rec.Seq, want)
		}
	}
}

func TestCursorStreamsTail(t *testing.T) {
	h := openHarness(t, t.TempDir(), Options{Fsync: FsyncAlways})
	for i := 0; i < 20; i++ {
		commitNode(h, i)
	}
	cur := h.log.Cursor(0)
	defer cur.Close()
	recs := drain(t, cur, 20)
	assertContiguous(t, recs, 1)

	// Caught up: empty poll, no error.
	if recs, err := cur.Next(64); err != nil || len(recs) != 0 {
		t.Fatalf("caught-up poll: %v records, err %v", len(recs), err)
	}

	// New appends become visible to the same cursor.
	commitNode(h, 20)
	recs = drain(t, cur, 1)
	assertContiguous(t, recs, 21)

	// A fresh cursor from the middle sees only the suffix.
	mid := h.log.Cursor(15)
	defer mid.Close()
	recs = drain(t, mid, 6)
	assertContiguous(t, recs, 16)
}

func TestCursorSurvivesCut(t *testing.T) {
	h := openHarness(t, t.TempDir(), Options{Fsync: FsyncAlways})
	for i := 0; i < 5; i++ {
		commitNode(h, i)
	}
	cur := h.log.Cursor(0)
	defer cur.Close()
	got := drain(t, cur, 3) // cursor mid-segment

	if _, err := h.log.Cut(); err != nil {
		t.Fatalf("Cut: %v", err)
	}
	for i := 5; i < 10; i++ {
		commitNode(h, i) // lands in a fresh segment
	}
	got = append(got, drain(t, cur, 7)...)
	assertContiguous(t, got, 1)
}

// TestCursorConcurrentCutStream is the satellite race test: one goroutine
// appends records and rotates segments underneath a streaming cursor; the
// cursor must deliver every record exactly once, in order. Run with -race.
func TestCursorConcurrentCutStream(t *testing.T) {
	const total = 400
	h := openHarness(t, t.TempDir(), Options{Fsync: FsyncAlways})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			commitNode(h, i)
			if i%37 == 36 {
				if _, err := h.log.Cut(); err != nil {
					t.Errorf("Cut: %v", err)
					return
				}
			}
		}
	}()
	cur := h.log.Cursor(0)
	defer cur.Close()
	recs := drain(t, cur, total)
	wg.Wait()
	assertContiguous(t, recs, 1)
	if extra, err := cur.Next(64); err != nil || len(extra) != 0 {
		t.Fatalf("after full drain: %d extra records, err %v", len(extra), err)
	}
}

func TestCursorDurabilityBound(t *testing.T) {
	h := openHarness(t, t.TempDir(), Options{Fsync: FsyncAlways})
	commitNode(h, 0)

	// Append asynchronously without waiting for durability: the record is
	// in the log's buffer (and maybe on file), but below no fsync yet.
	seq, err := h.log.AppendAsync(&Record{Ops: []Op{{Op: OpCreateNode, Node: 99, Labels: []string{"X"}}}, NextNode: 100})
	if err != nil {
		t.Fatalf("AppendAsync: %v", err)
	}

	cur := h.log.Cursor(0)
	defer cur.Close()
	recs := drain(t, cur, 1)
	assertContiguous(t, recs, 1)
	if got, err := cur.Next(64); err != nil || len(got) != 0 {
		t.Fatalf("unsynced record visible to cursor: %d records, err %v", len(got), err)
	}

	if err := h.log.WaitDurable(seq); err != nil {
		t.Fatalf("WaitDurable: %v", err)
	}
	recs = drain(t, cur, 1)
	if recs[0].Seq != seq {
		t.Fatalf("got seq %d, want %d", recs[0].Seq, seq)
	}
}

func TestCursorTruncatedByCheckpoint(t *testing.T) {
	h := openHarness(t, t.TempDir(), Options{Fsync: FsyncAlways})
	for i := 0; i < 10; i++ {
		commitNode(h, i)
	}
	ckpt := h.checkpoint() // compacts records 1..10 into a snapshot
	for i := 10; i < 13; i++ {
		commitNode(h, i)
	}

	// A cursor behind the checkpoint must be told to re-bootstrap.
	cur := h.log.Cursor(4)
	defer cur.Close()
	_, err := cur.Next(64)
	var te *TruncatedError
	if !errors.As(err, &te) {
		t.Fatalf("want TruncatedError, got %v", err)
	}
	if te.TailStart != ckpt {
		t.Fatalf("TailStart = %d, want %d", te.TailStart, ckpt)
	}

	// A cursor at the advertised tail start streams the retained suffix.
	ts, err := h.log.TailStart()
	if err != nil {
		t.Fatalf("TailStart: %v", err)
	}
	if ts != ckpt {
		t.Fatalf("log.TailStart = %d, want %d", ts, ckpt)
	}
	tail := h.log.Cursor(ts)
	defer tail.Close()
	recs := drain(t, tail, 3)
	assertContiguous(t, recs, ckpt+1)
}

func TestCursorFsyncNoneSeesBufferedAppends(t *testing.T) {
	h := openHarness(t, t.TempDir(), Options{Fsync: FsyncNone})
	for i := 0; i < 8; i++ {
		commitNode(h, i)
	}
	// Nothing was flushed or fsynced, yet the cursor must see everything:
	// FsyncNone promises no durability, so the bound is the appended tip.
	cur := h.log.Cursor(0)
	defer cur.Close()
	assertContiguous(t, drain(t, cur, 8), 1)
}

func TestAppendReplicatedMirrorsLeaderSeqs(t *testing.T) {
	leader := openHarness(t, t.TempDir(), Options{Fsync: FsyncAlways})
	for i := 0; i < 6; i++ {
		commitNode(leader, i)
	}
	cur := leader.log.Cursor(0)
	defer cur.Close()
	recs := drain(t, cur, 6)

	fdir := t.TempDir()
	flog, fstore, _, err := Open(fdir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatalf("Open follower: %v", err)
	}
	for _, rec := range recs {
		tx := fstore.Begin(graph.ReadWrite)
		if err := ApplyRecord(tx, rec); err != nil {
			t.Fatalf("apply: %v", err)
		}
		if err := flog.AppendReplicated(rec); err != nil {
			t.Fatalf("AppendReplicated: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
	if err := flog.AppendReplicated(&Record{Seq: 42}); err == nil {
		t.Fatal("out-of-order replicated append accepted")
	}
	if got, want := flog.LastSeq(), leader.log.LastSeq(); got != want {
		t.Fatalf("follower LastSeq %d, want %d", got, want)
	}
	if err := flog.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// The mirrored log recovers to the leader's exact state, and the
	// recovered position is the durable apply cursor.
	rlog, rstore, info, err := Open(fdir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rlog.Close()
	if info.LastSeq != leader.log.LastSeq() {
		t.Fatalf("recovered LastSeq %d, want %d", info.LastSeq, leader.log.LastSeq())
	}
	if exp, fexp := exportOf(t, leader.store), exportOf(t, rstore); exp != fexp {
		t.Fatalf("follower export differs from leader:\n%s\nvs\n%s", fexp, exp)
	}
}

func exportOf(t *testing.T, s *graph.Store) string {
	t.Helper()
	var b strings.Builder
	if err := s.Export(&b); err != nil {
		t.Fatalf("export: %v", err)
	}
	return b.String()
}

func TestSeedSnapshotBootstrapsFreshDir(t *testing.T) {
	leader := openHarness(t, t.TempDir(), Options{Fsync: FsyncAlways})
	for i := 0; i < 7; i++ {
		commitNode(leader, i)
	}
	snap := exportOf(t, leader.store)
	seq := leader.log.LastSeq()

	dir := t.TempDir()
	if has, _ := HasState(dir); has {
		t.Fatal("fresh dir reports state")
	}
	if err := SeedSnapshot(dir, seq, []byte(snap)); err != nil {
		t.Fatalf("SeedSnapshot: %v", err)
	}
	if has, _ := HasState(dir); !has {
		t.Fatal("seeded dir reports no state")
	}
	if err := SeedSnapshot(dir, seq, []byte(snap)); err == nil {
		t.Fatal("re-seed of a non-empty dir accepted")
	}

	l, store, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open seeded: %v", err)
	}
	if info.SnapshotSeq != seq || info.LastSeq != seq {
		t.Fatalf("recovered seq %d/%d, want %d", info.SnapshotSeq, info.LastSeq, seq)
	}
	if got := exportOf(t, store); got != snap {
		t.Fatal("seeded store differs from leader snapshot")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	if err := RemoveState(dir); err != nil {
		t.Fatalf("RemoveState: %v", err)
	}
	if has, _ := HasState(dir); has {
		t.Fatal("RemoveState left state behind")
	}
}
