// Package wal implements the durability subsystem of the knowledge base: an
// append-only, segment-rotated write-ahead log of committed transactions,
// plus snapshot-based log compaction and crash recovery.
//
// Every committed read-write transaction becomes one Record — a sequence of
// logical operations in the same eight event kinds the trigger engine
// consumes (create/delete node, create/delete relationship, set/remove
// label, set/remove property). Records are canonical: the operations are
// derived from the transaction's final state at commit time, so applying a
// record to the pre-transaction store always reproduces the
// post-transaction store, regardless of the order in which the transaction
// interleaved its writes. Alert nodes produced by reactive rules are
// ordinary created nodes inside the record, which is why recovery replays
// the log with rule triggering suppressed: the rules' effects are already
// in the log.
//
// On disk, each record is length-prefixed and CRC32-C-checksummed; see
// segment.go for the framing and wal.go for the log itself.
package wal

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/value"
)

// Operation kinds — the eight event kinds of graph.TxData.
const (
	OpCreateNode  = "createNode"
	OpDeleteNode  = "deleteNode"
	OpCreateRel   = "createRel"
	OpDeleteRel   = "deleteRel"
	OpSetLabel    = "setLabel"
	OpRemoveLabel = "removeLabel"
	OpSetProp     = "setProp"
	OpRemoveProp  = "removeProp"
)

// Op is one logical operation within a transaction record. Node and Rel
// identify the target entity; property values use the tagged JSON encoding
// of value.ToJSON so typed values (datetime, duration, nested list/map)
// survive the round trip. For property operations, On distinguishes
// relationship targets ("rel") from the default node target.
type Op struct {
	Op     string   `json:"op"`
	Node   int64    `json:"node,omitempty"`
	Rel    int64    `json:"rel,omitempty"`
	On     string   `json:"on,omitempty"`
	Type   string   `json:"type,omitempty"`
	Start  int64    `json:"start,omitempty"`
	End    int64    `json:"end,omitempty"`
	Label  string   `json:"label,omitempty"`
	Labels []string `json:"labels,omitempty"`
	Key    string   `json:"key,omitempty"`
	// Value deliberately has no omitempty: false and "" are valid stored
	// values and must not collapse into JSON null (= property removal).
	Value any            `json:"value"`
	Props map[string]any `json:"props,omitempty"`
	// Ext marks a createRel operation whose endpoints span shards
	// (ExtBridge): replay must install a half-relationship that tolerates
	// the foreign endpoint being absent from this shard's store.
	Ext string `json:"ext,omitempty"`
}

// onRel marks a property operation as targeting a relationship.
const onRel = "rel"

// ExtBridge marks a createRel op as one shard's half of a cross-shard
// ("knowledge bridge") relationship.
const ExtBridge = "bridge"

// Bridge-record stages (BridgeInfo.Stage). A cross-shard transaction spans
// two shard log streams: a prepare record in the higher shard's stream
// (carrying that shard's ops), then the commit record in the lower shard's
// stream (carrying that shard's ops plus an embedded copy of the prepare's
// ops) — the single commit point — and finally a done marker appended to
// the higher stream recording that the commit is durable, which licenses
// the lower stream to compact the commit record. Recovery writes a
// reconcile record into the higher stream when the commit record survived a
// crash but the prepare did not.
const (
	BridgePrepare   = "prepare"
	BridgeCommit    = "commit"
	BridgeDone      = "done"
	BridgeReconcile = "reconcile"
)

// BridgeInfo is the cross-shard commit-protocol metadata attached to a
// record by the sharded durability engine (ShardSet); nil on ordinary
// single-shard records.
//
// A prepare record's identity is its own sequence number; the records that
// refer to it name it with PrepareSeq. On a commit record, the Peer* fields
// carry the higher shard's half of the transaction — its ops and
// identifier counters — so recovery can reapply that half (a reconcile)
// when the prepare record was lost to a torn tail.
type BridgeInfo struct {
	// Stage is one of BridgePrepare, BridgeCommit, BridgeDone,
	// BridgeReconcile.
	Stage string `json:"stage"`
	// PeerShard (commit records) is the shard whose stream holds the
	// prepare record.
	PeerShard int `json:"peerShard,omitempty"`
	// PrepareSeq names the prepare record: in the peer's stream for a
	// commit record, in this same stream for done and reconcile records.
	PrepareSeq uint64 `json:"prepareSeq,omitempty"`
	// PeerOps, PeerNextNode and PeerNextRel (commit records) embed the
	// prepared half: the higher shard's operations and counters.
	PeerOps      []Op  `json:"peerOps,omitempty"`
	PeerNextNode int64 `json:"peerNextNode,omitempty"`
	PeerNextRel  int64 `json:"peerNextRel,omitempty"`
}

// Record is one committed transaction. Seq is assigned by Log.Append and is
// strictly increasing across the life of a log directory. NextNode and
// NextRel capture the store's identifier-allocation counters at commit, so
// recovery reproduces identifier allocation exactly even when the
// transaction's highest-numbered entities were created and deleted within
// it (and therefore appear in no operation).
type Record struct {
	Seq      uint64 `json:"seq"`
	Ops      []Op   `json:"ops"`
	NextNode int64  `json:"nextNode"`
	NextRel  int64  `json:"nextRel"`
	// Bridge carries the cross-shard commit-protocol metadata on records
	// written by a sharded log set; nil on ordinary records.
	Bridge *BridgeInfo `json:"bridge,omitempty"`
}

func propsJSON(props map[string]value.Value) map[string]any {
	if len(props) == 0 {
		return nil
	}
	out := make(map[string]any, len(props))
	for k, v := range props {
		out[k] = value.ToJSON(v)
	}
	return out
}

func propsFromJSON(raw map[string]any) (map[string]value.Value, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	out := make(map[string]value.Value, len(raw))
	for k, e := range raw {
		v, err := value.FromJSON(e)
		if err != nil {
			return nil, fmt.Errorf("wal: prop %s: %w", k, err)
		}
		out[k] = v
	}
	return out, nil
}

// RecordFromTx derives the canonical record of a committing transaction.
// It must be called while the transaction is still live (the commit hook is
// the intended call site) because it reads the final state of every changed
// entity from the transaction. It returns nil if the transaction made no
// effective changes. The transaction's change data is compacted in place
// (a semantics-preserving normalization).
func RecordFromTx(tx *graph.Tx) *Record {
	data := tx.Data()
	data.Compact()
	if data.Empty() {
		return nil
	}
	rec := &Record{}
	nextNode, nextRel := tx.Counters()
	rec.NextNode, rec.NextRel = int64(nextNode), int64(nextRel)

	// Created entities are logged as full snapshots of their state at
	// commit, so later label/property changes to them need no ops of their
	// own.
	createdNodes := make(map[graph.NodeID]bool, len(data.CreatedNodes))
	for _, id := range data.CreatedNodes {
		createdNodes[id] = true
	}
	createdRels := make(map[graph.RelID]bool, len(data.CreatedRels))
	for _, id := range data.CreatedRels {
		createdRels[id] = true
	}

	for _, id := range data.CreatedNodes {
		n, ok := tx.Node(id)
		if !ok {
			continue // created and deleted; Compact should have removed it
		}
		rec.Ops = append(rec.Ops, Op{
			Op: OpCreateNode, Node: int64(id),
			Labels: n.Labels, Props: propsJSON(n.Props),
		})
	}
	for _, id := range data.CreatedRels {
		r, ok := tx.Rel(id)
		if !ok {
			continue
		}
		op := Op{
			Op: OpCreateRel, Rel: int64(id), Type: r.Type,
			Start: int64(r.Start), End: int64(r.End), Props: propsJSON(r.Props),
		}
		// A half-relationship has its foreign endpoint in another shard;
		// mark it so replay uses the endpoint-tolerant bridge primitive.
		if !tx.NodeExists(r.Start) || !tx.NodeExists(r.End) {
			op.Ext = ExtBridge
		}
		rec.Ops = append(rec.Ops, op)
	}
	// Deletions of pre-existing entities: relationships first so that node
	// deletion replays onto detached nodes.
	for _, r := range data.DeletedRels {
		rec.Ops = append(rec.Ops, Op{Op: OpDeleteRel, Rel: int64(r.ID)})
	}
	for _, n := range data.DeletedNodes {
		rec.Ops = append(rec.Ops, Op{Op: OpDeleteNode, Node: int64(n.ID)})
	}

	// Label and property changes on surviving pre-existing entities,
	// canonicalized to the entity's final state at commit. TxData splits
	// assignments and removals into separate lists and thereby loses their
	// relative order; reading the final state restores a replayable record.
	type labelKey struct {
		node  graph.NodeID
		label string
	}
	seenLabels := make(map[labelKey]bool)
	addLabel := func(c graph.LabelChange) {
		if createdNodes[c.Node] || !tx.NodeExists(c.Node) {
			return
		}
		k := labelKey{c.Node, c.Label}
		if seenLabels[k] {
			return
		}
		seenLabels[k] = true
		op := Op{Node: int64(c.Node), Label: c.Label}
		if tx.NodeHasLabel(c.Node, c.Label) {
			op.Op = OpSetLabel
		} else {
			op.Op = OpRemoveLabel
		}
		rec.Ops = append(rec.Ops, op)
	}
	for _, c := range data.AssignedLabels {
		addLabel(c)
	}
	for _, c := range data.RemovedLabels {
		addLabel(c)
	}

	type propKey struct {
		kind graph.EntityKind
		node graph.NodeID
		rel  graph.RelID
		key  string
	}
	seenProps := make(map[propKey]bool)
	addProp := func(c graph.PropChange) {
		k := propKey{c.Kind, 0, 0, c.Key}
		if c.Kind == graph.NodeEntity {
			if createdNodes[c.Node] || !tx.NodeExists(c.Node) {
				return
			}
			k.node = c.Node
		} else {
			if createdRels[c.Rel] {
				return
			}
			if _, _, _, ok := tx.RelEndpoints(c.Rel); !ok {
				return
			}
			k.rel = c.Rel
		}
		if seenProps[k] {
			return
		}
		seenProps[k] = true
		var op Op
		if c.Kind == graph.NodeEntity {
			op.Node = int64(c.Node)
			if v, has := tx.NodeProp(c.Node, c.Key); has {
				op.Op, op.Key, op.Value = OpSetProp, c.Key, value.ToJSON(v)
			} else {
				op.Op, op.Key = OpRemoveProp, c.Key
			}
		} else {
			op.Rel, op.On = int64(c.Rel), onRel
			if v, has := tx.RelProp(c.Rel, c.Key); has {
				op.Op, op.Key, op.Value = OpSetProp, c.Key, value.ToJSON(v)
			} else {
				op.Op, op.Key = OpRemoveProp, c.Key
			}
		}
		rec.Ops = append(rec.Ops, op)
	}
	for _, c := range data.AssignedProps {
		addProp(c)
	}
	for _, c := range data.RemovedProps {
		addProp(c)
	}

	if len(rec.Ops) == 0 {
		return nil
	}
	return rec
}

// ApplyRecord replays one record into an open read-write transaction.
// Records are canonical, so replaying a record onto the state that preceded
// it reproduces the committed post-state exactly.
func ApplyRecord(tx *graph.Tx, rec *Record) error {
	for i, op := range rec.Ops {
		var err error
		switch op.Op {
		case OpCreateNode:
			var props map[string]value.Value
			if props, err = propsFromJSON(op.Props); err == nil {
				err = tx.CreateNodeWithID(graph.NodeID(op.Node), op.Labels, props)
			}
		case OpCreateRel:
			var props map[string]value.Value
			if props, err = propsFromJSON(op.Props); err == nil {
				if op.Ext == ExtBridge {
					err = tx.CreateBridgeRelWithID(graph.RelID(op.Rel),
						graph.NodeID(op.Start), graph.NodeID(op.End), op.Type, props)
				} else {
					err = tx.CreateRelWithID(graph.RelID(op.Rel),
						graph.NodeID(op.Start), graph.NodeID(op.End), op.Type, props)
				}
			}
		case OpDeleteNode:
			err = tx.DeleteNode(graph.NodeID(op.Node), true)
		case OpDeleteRel:
			err = tx.DeleteRel(graph.RelID(op.Rel))
		case OpSetLabel:
			err = tx.SetLabel(graph.NodeID(op.Node), op.Label)
		case OpRemoveLabel:
			err = tx.RemoveLabel(graph.NodeID(op.Node), op.Label)
		case OpSetProp:
			var v value.Value
			if v, err = value.FromJSON(op.Value); err == nil {
				if op.On == onRel {
					err = tx.SetRelProp(graph.RelID(op.Rel), op.Key, v)
				} else {
					err = tx.SetNodeProp(graph.NodeID(op.Node), op.Key, v)
				}
			}
		case OpRemoveProp:
			if op.On == onRel {
				err = tx.RemoveRelProp(graph.RelID(op.Rel), op.Key)
			} else {
				err = tx.RemoveNodeProp(graph.NodeID(op.Node), op.Key)
			}
		default:
			err = fmt.Errorf("unknown op %q", op.Op)
		}
		if err != nil {
			return fmt.Errorf("wal: apply record %d op %d (%s): %w", rec.Seq, i, op.Op, err)
		}
	}
	return tx.EnsureCounters(graph.NodeID(rec.NextNode), graph.RelID(rec.NextRel))
}
