package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/value"
)

// harness is a store wired to a log the way core.OpenDurable wires them.
type harness struct {
	t     *testing.T
	dir   string
	log   *Log
	store *graph.Store
	info  *RecoveryInfo
}

func openHarness(t *testing.T, dir string, opts Options) *harness {
	t.Helper()
	l, store, info, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	store.SetCommitHook(func(tx *graph.Tx) error {
		rec := RecordFromTx(tx)
		if rec == nil {
			return nil
		}
		_, err := l.Append(rec)
		return err
	})
	h := &harness{t: t, dir: dir, log: l, store: store, info: info}
	t.Cleanup(func() { _ = l.Close() })
	return h
}

func (h *harness) update(fn func(tx *graph.Tx) error) {
	h.t.Helper()
	if err := h.store.Update(fn); err != nil {
		h.t.Fatalf("update: %v", err)
	}
}

func (h *harness) export() string {
	h.t.Helper()
	var b strings.Builder
	if err := h.store.Export(&b); err != nil {
		h.t.Fatalf("export: %v", err)
	}
	return b.String()
}

// checkpoint mirrors core.(*KnowledgeBase).Checkpoint.
func (h *harness) checkpoint() uint64 {
	h.t.Helper()
	var seq uint64
	view, err := h.store.SnapshotView(func() error {
		var err error
		seq, err = h.log.Cut()
		return err
	})
	if err == nil {
		defer view.Rollback()
		var buf strings.Builder
		if err = view.Export(&buf); err == nil {
			err = h.log.Checkpoint(seq, []byte(buf.String()))
		}
	}
	if err != nil {
		h.t.Fatalf("checkpoint: %v", err)
	}
	return seq
}

func listFiles(t *testing.T, dir, suffix string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), suffix) {
			out = append(out, e.Name())
		}
	}
	return out
}

// typedProps exercises every value kind the snapshot format must preserve.
func typedProps() map[string]value.Value {
	return map[string]value.Value{
		"str":   value.Str("hello"),
		"empty": value.Str(""),
		"yes":   value.Bool(true),
		"no":    value.Bool(false),
		"n":     value.Int(42),
		"big":   value.Int(1<<60 + 7),
		"f":     value.Float(2.5),
		"whole": value.Float(3.0),
		"when":  value.DateTime(time.Date(2023, 4, 1, 12, 30, 0, 123456789, time.UTC)),
		"span":  value.Duration(36*time.Hour + 15*time.Minute),
		"list": value.ListOf([]value.Value{
			value.Int(1),
			value.ListOf([]value.Value{value.Str("nested"), value.Bool(false)}),
			value.Map(map[string]value.Value{"k": value.Duration(time.Second)}),
		}),
		"map": value.Map(map[string]value.Value{
			"inner": value.Map(map[string]value.Value{"deep": value.DateTime(time.Date(2020, 1, 2, 3, 4, 5, 0, time.UTC))}),
			"ns":    value.ListOf([]value.Value{value.Float(1.5), value.Int(2)}),
		}),
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	h := openHarness(t, dir, Options{Fsync: FsyncAlways})

	var n1, n2, n3 graph.NodeID
	h.update(func(tx *graph.Tx) error {
		var err error
		if n1, err = tx.CreateNode([]string{"Person", "Admin"}, typedProps()); err != nil {
			return err
		}
		if n2, err = tx.CreateNode([]string{"Person"}, map[string]value.Value{"name": value.Str("b")}); err != nil {
			return err
		}
		if n3, err = tx.CreateNode([]string{"Temp"}, nil); err != nil {
			return err
		}
		_, err = tx.CreateRel(n1, n2, "KNOWS", map[string]value.Value{"since": value.Int(2019)})
		return err
	})
	h.update(func(tx *graph.Tx) error {
		// Exercise every event kind, including order-sensitive sequences
		// (set then remove, remove then set) and a delete of the
		// highest-numbered node (counter fidelity).
		if err := tx.SetLabel(n2, "Flagged"); err != nil {
			return err
		}
		if err := tx.RemoveLabel(n1, "Admin"); err != nil {
			return err
		}
		if err := tx.SetNodeProp(n2, "score", value.Int(1)); err != nil {
			return err
		}
		if err := tx.RemoveNodeProp(n2, "score"); err != nil {
			return err
		}
		if err := tx.RemoveNodeProp(n1, "str"); err != nil {
			return err
		}
		if err := tx.SetNodeProp(n1, "str", value.Str("rewritten")); err != nil {
			return err
		}
		return tx.DeleteNode(n3, true)
	})
	want := h.export()
	wantSeq := h.log.LastSeq()
	if err := h.log.Close(); err != nil {
		t.Fatal(err)
	}

	h2 := openHarness(t, dir, Options{Fsync: FsyncAlways})
	if got := h2.export(); got != want {
		t.Fatalf("recovered export differs\nwant:\n%s\ngot:\n%s", want, got)
	}
	if h2.log.LastSeq() != wantSeq {
		t.Fatalf("LastSeq = %d, want %d", h2.log.LastSeq(), wantSeq)
	}
	if h2.info.RecordsReplayed != 2 || h2.info.DiscardedBytes != 0 {
		t.Fatalf("info = %+v, want 2 replayed and no discard", h2.info)
	}

	// Identifier allocation must continue where the pre-crash run left off
	// (n3 was the highest node id and was deleted again).
	h2.update(func(tx *graph.Tx) error {
		id, err := tx.CreateNode([]string{"Person"}, nil)
		if err != nil {
			return err
		}
		if id != n3+1 {
			t.Errorf("post-recovery node id = %d, want %d", id, n3+1)
		}
		return nil
	})
}

func TestTypedValuesSurviveRecovery(t *testing.T) {
	dir := t.TempDir()
	h := openHarness(t, dir, Options{Fsync: FsyncAlways})
	var id graph.NodeID
	h.update(func(tx *graph.Tx) error {
		var err error
		id, err = tx.CreateNode([]string{"T"}, typedProps())
		return err
	})
	if err := h.log.Close(); err != nil {
		t.Fatal(err)
	}
	h2 := openHarness(t, dir, Options{Fsync: FsyncAlways})
	err := h2.store.View(func(tx *graph.Tx) error {
		want := typedProps()
		for k, wv := range want {
			gv, ok := tx.NodeProp(id, k)
			if !ok {
				t.Errorf("prop %s missing after recovery", k)
				continue
			}
			if eq, known := value.Equal(gv, wv); !known || !eq {
				t.Errorf("prop %s = %v, want %v", k, gv, wv)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRollbackReachesNeitherWALNorDisk(t *testing.T) {
	dir := t.TempDir()
	h := openHarness(t, dir, Options{Fsync: FsyncAlways})

	tx := h.store.Begin(graph.ReadWrite)
	if _, err := tx.CreateNode([]string{"Ghost"}, nil); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()

	if got := h.log.LastSeq(); got != 0 {
		t.Fatalf("LastSeq after rollback = %d, want 0", got)
	}
	if segs := listFiles(t, dir, segSuffix); len(segs) != 0 {
		t.Fatalf("segments after rollback = %v, want none", segs)
	}

	// The next committed transaction takes sequence number 1 as if the
	// rolled-back one never existed.
	h.update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Real"}, nil)
		return err
	})
	if got := h.log.LastSeq(); got != 1 {
		t.Fatalf("LastSeq after first commit = %d, want 1", got)
	}
	if err := h.log.Close(); err != nil {
		t.Fatal(err)
	}
	h2 := openHarness(t, dir, Options{Fsync: FsyncAlways})
	err := h2.store.View(func(tx *graph.Tx) error {
		if n := len(tx.NodesByLabel("Ghost")); n != 0 {
			t.Errorf("recovered %d Ghost nodes, want 0", n)
		}
		if n := len(tx.NodesByLabel("Real")); n != 1 {
			t.Errorf("recovered %d Real nodes, want 1", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSegmentRotationAndRecovery(t *testing.T) {
	dir := t.TempDir()
	// A 1-byte threshold rotates on every append.
	h := openHarness(t, dir, Options{Fsync: FsyncAlways, SegmentSize: 1})
	const txs = 7
	for i := 0; i < txs; i++ {
		h.update(func(tx *graph.Tx) error {
			_, err := tx.CreateNode([]string{"N"}, map[string]value.Value{"i": value.Int(int64(i))})
			return err
		})
	}
	want := h.export()
	if segs := listFiles(t, dir, segSuffix); len(segs) != txs {
		t.Fatalf("segments = %d, want %d", len(segs), txs)
	}
	if err := h.log.Close(); err != nil {
		t.Fatal(err)
	}
	h2 := openHarness(t, dir, Options{Fsync: FsyncAlways})
	if got := h2.export(); got != want {
		t.Fatalf("recovered export differs after rotation")
	}
	if h2.info.SegmentsScanned != txs || h2.info.RecordsReplayed != txs {
		t.Fatalf("info = %+v, want %d segments and records", h2.info, txs)
	}
}

func TestCheckpointCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	h := openHarness(t, dir, Options{Fsync: FsyncAlways})
	for i := 0; i < 4; i++ {
		h.update(func(tx *graph.Tx) error {
			_, err := tx.CreateNode([]string{"Pre"}, map[string]value.Value{"i": value.Int(int64(i))})
			return err
		})
	}
	seq := h.checkpoint()
	if seq != 4 {
		t.Fatalf("checkpoint seq = %d, want 4", seq)
	}
	if segs := listFiles(t, dir, segSuffix); len(segs) != 0 {
		t.Fatalf("segments after checkpoint = %v, want none", segs)
	}
	if snaps := listFiles(t, dir, snapSuffix); len(snaps) != 1 {
		t.Fatalf("snapshots after checkpoint = %v, want one", snaps)
	}
	for i := 0; i < 3; i++ {
		h.update(func(tx *graph.Tx) error {
			_, err := tx.CreateNode([]string{"Post"}, map[string]value.Value{"i": value.Int(int64(i))})
			return err
		})
	}
	// A second checkpoint supersedes the first.
	h.checkpoint()
	h.update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Tail"}, nil)
		return err
	})
	want := h.export()
	if err := h.log.Close(); err != nil {
		t.Fatal(err)
	}

	h2 := openHarness(t, dir, Options{Fsync: FsyncAlways})
	if got := h2.export(); got != want {
		t.Fatalf("recovered export differs after checkpoints")
	}
	if h2.info.SnapshotSeq != 7 || h2.info.RecordsReplayed != 1 {
		t.Fatalf("info = %+v, want snapshot seq 7 and 1 replayed record", h2.info)
	}
	if snaps := listFiles(t, dir, snapSuffix); len(snaps) != 1 {
		t.Fatalf("snapshots = %v, want only the newest", snaps)
	}
}

func TestFsyncPolicyParse(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNone} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted garbage")
	}
}

func TestIntervalFsyncFlushes(t *testing.T) {
	dir := t.TempDir()
	h := openHarness(t, dir, Options{Fsync: FsyncInterval, FsyncInterval: 5 * time.Millisecond})
	h.update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"N"}, nil)
		return err
	})
	deadline := time.Now().Add(2 * time.Second)
	for {
		segs := listFiles(t, dir, segSuffix)
		if len(segs) == 1 {
			if st, err := os.Stat(filepath.Join(dir, segs[0])); err == nil && st.Size() > int64(len(segMagic)) {
				res, err := scanSegment(filepath.Join(dir, segs[0]))
				if err == nil && len(res.records) == 1 {
					break
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("interval fsync never flushed the record")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := h.log.Close(); err != nil {
		t.Fatal(err)
	}
}

// frameOffsets returns the byte offset where each record's frame starts.
func frameOffsets(t *testing.T, path string) []int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		t.Fatalf("%s: bad segment header", path)
	}
	var offs []int64
	off := int64(len(segMagic))
	for off < int64(len(data)) {
		if int64(len(data))-off < frameHdrSize {
			t.Fatalf("%s: trailing garbage", path)
		}
		offs = append(offs, off)
		length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		off += frameHdrSize + length
	}
	return offs
}
