package wal

// Fault-injection tests: simulated crashes are produced by copying the log
// directory at a chosen moment (the files a real crash would leave behind,
// given FsyncAlways) and then mutilating the copy — truncating the last
// record at every byte offset, flipping bytes mid-stream, leaving
// checkpoint temp files around — before recovering from it.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/value"
)

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// buildWorkload commits txs transactions and returns the export after each
// one (exports[i] = state after i+1 commits).
func buildWorkload(t *testing.T, h *harness, txs int) []string {
	t.Helper()
	exports := make([]string, 0, txs)
	var nodes []graph.NodeID
	for i := 0; i < txs; i++ {
		i := i
		h.update(func(tx *graph.Tx) error {
			id, err := tx.CreateNode([]string{"Event"}, map[string]value.Value{
				"i":    value.Int(int64(i)),
				"name": value.Str(fmt.Sprintf("event-%d", i)),
			})
			if err != nil {
				return err
			}
			if len(nodes) > 0 {
				if _, err := tx.CreateRel(nodes[len(nodes)-1], id, "NEXT", nil); err != nil {
					return err
				}
			}
			if i%3 == 2 && len(nodes) > 1 {
				if err := tx.SetNodeProp(nodes[0], "touched", value.Int(int64(i))); err != nil {
					return err
				}
				if err := tx.DeleteNode(nodes[1], true); err != nil {
					return err
				}
				nodes = append(nodes[:1], nodes[2:]...)
			}
			nodes = append(nodes, id)
			return nil
		})
		exports = append(exports, h.export())
	}
	return exports
}

// TestTornTailEveryOffset truncates the final segment at every byte offset
// within the last record (including its frame header) and checks that
// recovery lands exactly on the previous committed state, discarding and
// reporting the torn tail.
func TestTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	h := openHarness(t, dir, Options{Fsync: FsyncAlways})
	const txs = 5
	exports := buildWorkload(t, h, txs)
	if err := h.log.Close(); err != nil {
		t.Fatal(err)
	}

	segs := listFiles(t, dir, segSuffix)
	if len(segs) != 1 {
		t.Fatalf("segments = %v, want one", segs)
	}
	segPath := filepath.Join(dir, segs[0])
	offs := frameOffsets(t, segPath)
	if len(offs) != txs {
		t.Fatalf("records in segment = %d, want %d", len(offs), txs)
	}
	st, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	fileLen := st.Size()
	lastStart := offs[txs-1]

	for cut := lastStart; cut <= fileLen; cut++ {
		crash := copyDir(t, dir)
		if err := os.Truncate(filepath.Join(crash, segs[0]), cut); err != nil {
			t.Fatal(err)
		}
		h2 := openHarness(t, crash, Options{Fsync: FsyncAlways})
		want := exports[txs-2]
		wantSeq := uint64(txs - 1)
		if cut == fileLen {
			want = exports[txs-1]
			wantSeq = txs
		}
		if got := h2.export(); got != want {
			t.Fatalf("cut at %d/%d: recovered state differs from last committed state", cut, fileLen)
		}
		if h2.log.LastSeq() != wantSeq {
			t.Fatalf("cut at %d: LastSeq = %d, want %d", cut, h2.log.LastSeq(), wantSeq)
		}
		if cut < fileLen {
			if h2.info.DiscardedBytes != cut-lastStart {
				t.Fatalf("cut at %d: DiscardedBytes = %d, want %d",
					cut, h2.info.DiscardedBytes, cut-lastStart)
			}
			// A truncation exactly on the record boundary is a clean
			// prefix, not a torn tail; past it, the path must be reported.
			if cut > lastStart && h2.info.DiscardedPath == "" {
				t.Fatalf("cut at %d: DiscardedPath not reported", cut)
			}
		} else if h2.info.DiscardedBytes != 0 {
			t.Fatalf("clean log reported %d discarded bytes", h2.info.DiscardedBytes)
		}
		// The log must keep working after a torn-tail recovery: the torn
		// segment was truncated to its last intact record, and new appends
		// land in a fresh segment.
		h2.update(func(tx *graph.Tx) error {
			_, err := tx.CreateNode([]string{"PostCrash"}, nil)
			return err
		})
		want2 := h2.export()
		if err := h2.log.Close(); err != nil {
			t.Fatal(err)
		}
		h3 := openHarness(t, crash, Options{Fsync: FsyncAlways})
		if got := h3.export(); got != want2 {
			t.Fatalf("cut at %d: second recovery differs after post-crash commit", cut)
		}
		if err := h3.log.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorruptRecordMidStream flips a byte inside an early record: recovery
// must stop there, discard everything after it (including later segments),
// and report how much was dropped.
func TestCorruptRecordMidStream(t *testing.T) {
	dir := t.TempDir()
	h := openHarness(t, dir, Options{Fsync: FsyncAlways, SegmentSize: 1}) // one record per segment
	const txs = 4
	exports := buildWorkload(t, h, txs)
	if err := h.log.Close(); err != nil {
		t.Fatal(err)
	}

	segs := listFiles(t, dir, segSuffix)
	if len(segs) != txs {
		t.Fatalf("segments = %d, want %d", len(segs), txs)
	}
	crash := copyDir(t, dir)
	second := filepath.Join(crash, segs[1])
	data, err := os.ReadFile(second)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // corrupt the payload, CRC now mismatches
	if err := os.WriteFile(second, data, 0o644); err != nil {
		t.Fatal(err)
	}

	h2 := openHarness(t, crash, Options{Fsync: FsyncAlways})
	if got := h2.export(); got != exports[0] {
		t.Fatalf("recovered state differs from the state before the corrupt record")
	}
	if h2.log.LastSeq() != 1 {
		t.Fatalf("LastSeq = %d, want 1", h2.log.LastSeq())
	}
	if h2.info.DiscardedBytes == 0 {
		t.Fatal("corruption not reported in DiscardedBytes")
	}
	// The corrupt segment and everything after it are gone from disk.
	left := listFiles(t, crash, segSuffix)
	if len(left) != 1 || left[0] != segs[0] {
		t.Fatalf("segments after recovery = %v, want only %s", left, segs[0])
	}
}

// TestKillMidCheckpoint simulates deaths at both vulnerable points of a
// checkpoint: before the snapshot rename (a stray .tmp file remains) and
// after the rename but before old segments are deleted.
func TestKillMidCheckpoint(t *testing.T) {
	dir := t.TempDir()
	h := openHarness(t, dir, Options{Fsync: FsyncAlways})
	exports := buildWorkload(t, h, 6)
	want := exports[5]

	// Death before rename: a partial snapshot temp file must be ignored
	// and removed; recovery uses the full log.
	crash := copyDir(t, dir)
	tmp := filepath.Join(crash, snapshotName(6)+".tmp")
	if err := os.WriteFile(tmp, []byte(`{"format":"reactive-graph/v1","nodes":[`), 0o644); err != nil {
		t.Fatal(err)
	}
	h2 := openHarness(t, crash, Options{Fsync: FsyncAlways})
	if got := h2.export(); got != want {
		t.Fatal("recovery with stray snapshot temp file differs from committed state")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stray snapshot temp file not cleaned up")
	}
	if err := h2.log.Close(); err != nil {
		t.Fatal(err)
	}

	// Death after rename, before compaction: the snapshot covers seq 4 but
	// every segment is still present; replay must skip the covered records
	// and apply only 5 and 6.
	crash2 := copyDir(t, dir)
	snap4 := []byte(exports[3])
	if err := os.WriteFile(filepath.Join(crash2, snapshotName(4)), snap4, 0o644); err != nil {
		t.Fatal(err)
	}
	h3 := openHarness(t, crash2, Options{Fsync: FsyncAlways})
	if got := h3.export(); got != want {
		t.Fatal("recovery with un-compacted snapshot differs from committed state")
	}
	if h3.info.SnapshotSeq != 4 || h3.info.RecordsReplayed != 2 {
		t.Fatalf("info = %+v, want snapshot seq 4 and 2 replayed records", h3.info)
	}
	if err := h3.log.Close(); err != nil {
		t.Fatal(err)
	}

	// An unreadable *renamed* snapshot (torn by the filesystem) must fall
	// back to the previous snapshot, or to pure log replay when there is
	// none, as long as the covered segments were not yet deleted.
	crash3 := copyDir(t, dir)
	if err := os.WriteFile(filepath.Join(crash3, snapshotName(5)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	h4 := openHarness(t, crash3, Options{Fsync: FsyncAlways})
	if got := h4.export(); got != want {
		t.Fatal("recovery with unreadable snapshot differs from committed state")
	}
	if h4.info.SnapshotSeq != 0 {
		t.Fatalf("unreadable snapshot was not skipped: %+v", h4.info)
	}
}
